// somp - a from-scratch OpenMP-like fork/join runtime (the paper's substrate).
//
// Workloads are written against this API the way OpenMP programs are written
// against pragmas:
//
//   somp::Parallel(8, [&](somp::Ctx& ctx) {              // #pragma omp parallel
//     ctx.For(0, n, [&](int64_t i) { ... });             // #pragma omp for
//     ctx.Barrier();                                     // #pragma omp barrier
//     ctx.Critical("name", [&] { ... });                 // #pragma omp critical
//     ctx.Single([&] { ... });                           // #pragma omp single
//     ctx.Parallel(2, [&](somp::Ctx& inner) { ... });    // nested parallel
//   });
//
// The runtime maintains per-thread offset-span labels (src/osl) across forks,
// barriers, and joins, drives the registered Tool with OMPT-style callbacks
// (src/somp/tool.h), and reuses pooled worker threads across regions.
//
// Deliberate scope limits, matching the paper: no OpenMP tasking (SWORD's
// offset-span labels cannot express task concurrency - SIII-C), no target
// offload. Worksharing constructs assume SPMD use: every team member reaches
// the same For/Single/Sections/Barrier sites in the same order, as OpenMP
// itself requires.
#pragma once

#include <cstdint>
#include <functional>
#include <source_location>
#include <string>
#include <vector>

#include "osl/label.h"
#include "somp/tool.h"

namespace sword::somp {

class Team;

struct RuntimeConfig {
  Tool* tool = nullptr;          // not owned; null = baseline (no analysis)
  uint32_t default_threads = 4;  // span when Parallel(0, ...) is used
};

/// Process-wide runtime state: tool registration and id generators.
class Runtime {
 public:
  static Runtime& Get();

  /// Must not be called while any parallel region is active.
  void Configure(const RuntimeConfig& config);

  /// Resets region/mutex counters so consecutive harness runs start from a
  /// clean id space. Must be called outside parallel regions.
  void ResetIds();

  Tool* tool() const { return config_.tool; }
  uint32_t default_threads() const { return config_.default_threads; }

  /// Signals the tool that the measured program finished (flush point).
  void Shutdown();

  RegionId NextRegionId();
  /// Dense mutex ids: named criticals and Lock objects share one id space.
  MutexId InternNamedMutex(const std::string& name);
  MutexId NewLockId();

  /// Region-depth bookkeeping (used to guard Configure/ResetIds).
  void EnterRegion();
  void ExitRegion();

  /// The std::mutex backing a mutex id (lazily created, never destroyed
  /// while the runtime lives).
  void LockMutex(MutexId id);
  void UnlockMutex(MutexId id);

 private:
  Runtime() = default;
  struct Impl;
  Impl& impl();
  RuntimeConfig config_;
};

// Schedule lives in tool.h (WorkshareInfo carries it to tools).

struct ForOpts {
  Schedule schedule = Schedule::kStatic;
  int64_t chunk = 0;     // 0 = runtime default for the schedule
  bool nowait = false;   // skip the implicit barrier after the loop
};

/// Per-team-member execution context. Passed by reference into region
/// bodies; never stored beyond the region.
class Ctx {
 public:
  /// Live state of the innermost worksharing loop executing on this lane.
  /// The frame lives on For's stack; `iter` is updated before each body
  /// call, so a tool callback or sink thunk running inside the loop can
  /// read the current iteration through the pointer returned by
  /// workshare(). Valid only between OnWorkshareBegin and OnWorkshareEnd.
  struct WorkshareFrame {
    WorkshareInfo info;
    int64_t iter = 0;                  // iteration currently executing
    WorkshareFrame* parent = nullptr;  // enclosing loop's frame, if nested
  };
  uint32_t thread_num() const { return lane_; }
  uint32_t num_threads() const;
  RegionId region() const;
  RegionId parent_region() const;
  /// Nesting depth: 1 for the outermost parallel region.
  uint32_t level() const;
  /// Barriers this thread has crossed in this region (= current barrier
  /// interval index).
  uint64_t barrier_phase() const { return phase_; }
  const osl::Label& label() const { return label_; }
  const std::vector<MutexId>& held_mutexes() const { return held_; }
  /// The innermost active worksharing loop's frame, or null outside one.
  /// Only maintained while a tool is registered (baseline runs skip it).
  const WorkshareFrame* workshare() const { return ws_frame_; }

  /// Explicit barrier (#pragma omp barrier).
  void Barrier();

  /// Worksharing loop over [begin, end). Implicit barrier at the end unless
  /// opts.nowait. The defaulted source_location interns the callsite as the
  /// loop's stable identity (WorkshareInfo::site) for tools.
  void For(int64_t begin, int64_t end, const std::function<void(int64_t)>& body,
           ForOpts opts = {},
           const std::source_location& site = std::source_location::current());

  /// Named critical section (#pragma omp critical(name)).
  void Critical(const std::string& name, const std::function<void()>& body);

  /// One team member executes the body (#pragma omp single). Implicit
  /// barrier at the end unless nowait.
  void Single(const std::function<void()>& body, bool nowait = false);

  /// Lane 0 executes the body; no barrier (#pragma omp master).
  void Master(const std::function<void()>& body);

  /// Ordered section inside a For (#pragma omp ordered): bodies execute in
  /// ascending iteration order, one at a time. Call once per iteration with
  /// that iteration's index; every iteration of the enclosing loop must
  /// call it (OpenMP's ordered contract). `begin` is the loop's lower
  /// bound. Tools observe it as a mutex acquire/release (the serialization
  /// also creates the corresponding happens-before edges).
  void Ordered(int64_t iteration, int64_t begin, const std::function<void()>& body);

  /// Distributes section bodies across the team (#pragma omp sections).
  /// Implicit barrier at the end unless nowait. Distribution is
  /// first-come-first-served by default (like mainstream OpenMP runtimes);
  /// static_dist pins section i to lane i % num_threads, which some
  /// runtimes use and which makes cross-thread execution deterministic.
  void Sections(const std::vector<std::function<void()>>& sections,
                bool nowait = false, bool static_dist = false);

  /// Nested parallel region; this thread becomes lane 0 of the inner team.
  void Parallel(uint32_t span, const std::function<void(Ctx&)>& body);

  /// Explicit lock API (omp_set_lock / omp_unset_lock).
  void LockAcquire(MutexId id);
  void LockRelease(MutexId id);

 private:
  friend class Team;
  friend void ParallelImpl(Ctx* parent, uint32_t span,
                           const std::function<void(Ctx&)>& body);
  friend Ctx* CurrentCtx();

  Ctx(Team* team, uint32_t lane, osl::Label label, Ctx* parent)
      : team_(team), lane_(lane), label_(std::move(label)), parent_(parent) {}

  void BarrierImpl(BarrierKind kind);
  void BarrierIfNeeded(bool nowait) {
    if (!nowait) BarrierImpl(BarrierKind::kWorkshare);
  }

  Team* team_;
  uint32_t lane_;
  osl::Label label_;
  Ctx* parent_;
  uint64_t phase_ = 0;     // barriers crossed
  uint64_t ws_seq_ = 0;    // worksharing instances encountered
  WorkshareFrame* ws_frame_ = nullptr;  // innermost live For frame
  std::vector<MutexId> held_;
};

/// Enters a parallel region from sequential code (#pragma omp parallel).
/// span == 0 uses RuntimeConfig::default_threads.
void Parallel(uint32_t span, const std::function<void(Ctx&)>& body);

/// Convenience: Parallel + For(static) in one call
/// (#pragma omp parallel for).
void ParallelFor(uint32_t span, int64_t begin, int64_t end,
                 const std::function<void(Ctx&, int64_t)>& body);

/// The calling thread's innermost context, or null outside parallel regions.
Ctx* CurrentCtx();

/// RAII lock bound to a fresh runtime mutex id (omp_init_lock analogue).
class Lock {
 public:
  Lock() : id_(Runtime::Get().NewLockId()) {}
  MutexId id() const { return id_; }

  void Acquire();
  void Release();

  /// Scoped acquire/release.
  class Guard {
   public:
    explicit Guard(Lock& lock) : lock_(lock) { lock_.Acquire(); }
    ~Guard() { lock_.Release(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    Lock& lock_;
  };

 private:
  MutexId id_;
};

}  // namespace sword::somp
