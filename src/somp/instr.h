// Memory-access instrumentation shim - the LLVM-pass substitute.
//
// The paper's compiler pass rewrites every load/store executed inside a
// parallel region into a runtime callback carrying (address, size, kind, pc).
// Here workloads perform shared-memory accesses through these functions; each
// call site's std::source_location plays the role of the program counter.
//
// Semantics:
//  - the underlying memory operation really happens, via relaxed
//    std::atomic_ref, so intentionally racy workloads do not execute C++
//    undefined behaviour while still presenting races to the detectors;
//  - the registered Tool receives OnAccess when (and only when) the calling
//    thread is inside a parallel region - sequential accesses are invisible,
//    exactly like the paper's pass which only instruments parallel code;
//  - atomic_* variants set kAccessAtomic, matching "#pragma omp atomic":
//    two atomic accesses never race with each other.
#pragma once

#include <atomic>
#include <cstring>
#include <source_location>
#include <type_traits>

#include "somp/runtime.h"
#include "somp/sink.h"
#include "somp/srcloc.h"
#include "somp/tool.h"

namespace sword::instr {

namespace detail {

template <typename T>
inline void Record(const T& location, uint8_t flags, const std::source_location& loc) {
  somp::Ctx* const ctx = somp::CurrentCtx();
  if (!ctx) return;  // sequential code is not instrumented
  // Fast path: the tool installed a per-thread sink for this context
  // (somp/sink.h); one function-pointer call replaces the Runtime lookup +
  // virtual dispatch + the tool's own TLS re-check.
  somp::ThreadEventSink& sink = somp::tls_event_sink;
  if (sink.on_access && sink.ctx == ctx &&
      sink.epoch == somp::SinkEpoch().load(std::memory_order_relaxed)) {
    sink.on_access(sink.state, reinterpret_cast<uint64_t>(&location),
                   static_cast<uint8_t>(sizeof(T)), flags,
                   somp::InternSrcLoc(loc));
    return;
  }
  somp::Tool* const tool = somp::Runtime::Get().tool();
  if (!tool) return;
  tool->OnAccess(*ctx, reinterpret_cast<uint64_t>(&location),
                 static_cast<uint8_t>(sizeof(T)), flags, somp::InternSrcLoc(loc));
}

/// Shared body of write_range/read_range: one range event through the sink
/// or the tool's OnRangeAccess (whose default rechunks for legacy tools).
inline void RecordRange(const void* ptr, size_t bytes, uint8_t flags,
                        const std::source_location& loc) {
  somp::Ctx* const ctx = somp::CurrentCtx();
  if (!ctx) return;
  const uint64_t addr = reinterpret_cast<uint64_t>(ptr);
  somp::ThreadEventSink& sink = somp::tls_event_sink;
  if (sink.on_range && sink.ctx == ctx &&
      sink.epoch == somp::SinkEpoch().load(std::memory_order_relaxed)) {
    sink.on_range(sink.state, addr, bytes, flags, somp::InternSrcLoc(loc));
    return;
  }
  somp::Tool* const tool = somp::Runtime::Get().tool();
  if (!tool) return;
  tool->OnRangeAccess(*ctx, addr, bytes, flags, somp::InternSrcLoc(loc));
}

template <typename T>
constexpr void CheckInstrumentable() {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "instrument scalar types only (<= 8 bytes)");
}

}  // namespace detail

/// Instrumented plain load (a racy candidate read).
template <typename T>
inline T load(const T& x,
              const std::source_location& loc = std::source_location::current()) {
  detail::CheckInstrumentable<T>();
  detail::Record(x, somp::kAccessRead, loc);
  return std::atomic_ref<T>(const_cast<T&>(x)).load(std::memory_order_relaxed);
}

/// Instrumented plain store (a racy candidate write).
template <typename T>
inline void store(T& x, T value,
                  const std::source_location& loc = std::source_location::current()) {
  detail::CheckInstrumentable<T>();
  detail::Record(x, somp::kAccessWrite, loc);
  std::atomic_ref<T>(x).store(value, std::memory_order_relaxed);
}

/// Instrumented atomic load (#pragma omp atomic read).
template <typename T>
inline T atomic_load(const T& x,
                     const std::source_location& loc = std::source_location::current()) {
  detail::CheckInstrumentable<T>();
  detail::Record(x, static_cast<uint8_t>(somp::kAccessRead | somp::kAccessAtomic), loc);
  return std::atomic_ref<T>(const_cast<T&>(x)).load(std::memory_order_seq_cst);
}

/// Instrumented atomic store (#pragma omp atomic write).
template <typename T>
inline void atomic_store(T& x, T value,
                         const std::source_location& loc = std::source_location::current()) {
  detail::CheckInstrumentable<T>();
  detail::Record(x, static_cast<uint8_t>(somp::kAccessWrite | somp::kAccessAtomic), loc);
  std::atomic_ref<T>(x).store(value, std::memory_order_seq_cst);
}

/// Instrumented atomic fetch-add (#pragma omp atomic update). Returns the
/// previous value. Works for integral and floating-point T.
template <typename T>
inline T atomic_add(T& x, T delta,
                    const std::source_location& loc = std::source_location::current()) {
  detail::CheckInstrumentable<T>();
  detail::Record(x, static_cast<uint8_t>(somp::kAccessWrite | somp::kAccessAtomic), loc);
  if constexpr (std::is_integral_v<T>) {
    return std::atomic_ref<T>(x).fetch_add(delta, std::memory_order_seq_cst);
  } else {
    // CAS loop for floating point.
    std::atomic_ref<T> ref(x);
    T cur = ref.load(std::memory_order_relaxed);
    while (!ref.compare_exchange_weak(cur, cur + delta, std::memory_order_seq_cst)) {
    }
    return cur;
  }
}

/// Read-modify-write expressed as separate instrumented load + store
/// (i.e. "x++" WITHOUT atomicity - the classic racy increment).
template <typename T>
inline void racy_increment(T& x, T delta = T{1},
                           const std::source_location& loc = std::source_location::current()) {
  const T v = load(x, loc);
  store(x, static_cast<T>(v + delta), loc);
}

/// Instrumented bulk write (memset/memcpy destinations). Reported as ONE
/// range event (tools with native range support log a single strided run;
/// the Tool::OnRangeAccess default rechunks into <= 128-byte accesses, the
/// TSan-style historical stream). The bytes themselves are written with
/// plain memset (callers own the actual data movement when they need real
/// contents).
inline void write_range(void* ptr, size_t bytes, int fill = 0,
                        const std::source_location& loc = std::source_location::current()) {
  std::memset(ptr, fill, bytes);
  detail::RecordRange(ptr, bytes, somp::kAccessWrite, loc);
}

/// Instrumented bulk read (memcpy sources, checksum scans).
inline void read_range(const void* ptr, size_t bytes,
                       const std::source_location& loc = std::source_location::current()) {
  detail::RecordRange(ptr, bytes, somp::kAccessRead, loc);
}

}  // namespace sword::instr
