// Reduction worksharing helper (#pragma omp parallel for reduction(op:var)).
//
// Each member accumulates into a private partial, the partials are combined
// into the shared target under a named critical (through the instrumentation
// shims, so detectors see a correctly synchronized pattern), and a barrier
// publishes the result. Equivalent to what OpenMP compilers lower
// reductions into; race-free by construction and verified by the
// "forreduce-no" benchmark.
#pragma once

#include <functional>

#include "somp/instr.h"
#include "somp/runtime.h"

namespace sword::somp {

/// Runs `body(i, partial)` over [begin, end) with a per-member `partial`
/// initialized to `identity`, then combines the partials into `shared` with
/// `combine`. Ends with a barrier; `shared` may be read by every member
/// afterwards. Must be called by all team members (it is a worksharing
/// construct).
template <typename T, typename Combine>
void ForReduce(Ctx& ctx, int64_t begin, int64_t end, T& shared, T identity,
               Combine combine, const std::function<void(int64_t, T&)>& body,
               ForOpts opts = {}) {
  T partial = identity;
  opts.nowait = true;  // the combine phase below provides the barrier
  ctx.For(begin, end, [&](int64_t i) { body(i, partial); }, opts);
  ctx.Critical("somp-reduce", [&] {
    const T current = instr::load(shared);
    instr::store(shared, combine(current, partial));
  });
  ctx.Barrier();
}

}  // namespace sword::somp
