// Reusable worker-thread pool for fork/join teams.
//
// OpenMP runtimes keep their workers alive between parallel regions; spawning
// OS threads per region would dominate runtime for workloads like LULESH that
// open hundreds of thousands of tiny regions. Workers are parked on a
// condition variable, handed one task at a time, and returned to the free
// list when it completes. The pool grows on demand (nested regions may need
// more workers than the outer team width) and joins everything on destruction.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sword::somp {

class WorkerPool {
 public:
  WorkerPool();
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs `task` on a pooled worker thread. Returns a completion handle;
  /// Wait() blocks until the task finished and the worker is back in the
  /// free list.
  class Ticket {
   public:
    void Wait();

   private:
    friend class WorkerPool;
    struct State;
    std::shared_ptr<State> state_;
  };

  Ticket Submit(std::function<void()> task);

  /// Workers ever created (monotone; tests and memory accounting).
  size_t WorkerCount() const;

 private:
  struct Worker;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<Worker*> idle_;
};

/// The process-wide pool used by the somp runtime.
WorkerPool& GlobalPool();

}  // namespace sword::somp
