#include "somp/runtime.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>

#include "common/log.h"
#include "somp/pool.h"
#include "somp/sink.h"
#include "somp/srcloc.h"

namespace sword::somp {

// Fast-path sink storage (somp/sink.h). The epoch lives behind an accessor
// so every translation unit shares one instance regardless of link order.
thread_local ThreadEventSink tls_event_sink;

std::atomic<uint64_t>& SinkEpoch() {
  static std::atomic<uint64_t> epoch{1};
  return epoch;
}

lockfree::QsbrDomain& SinkQsbr() {
  // Leaked like the Runtime singleton: sink-holding threads may unregister
  // (TLS destructors) after static destruction would have run.
  static lockfree::QsbrDomain* domain = new lockfree::QsbrDomain();
  return *domain;
}

namespace {

/// Per-thread QSBR participation handle; slot claimed on the thread's first
/// sink install and returned when the thread exits.
struct SinkQsbrHandle {
  uint32_t slot = lockfree::QsbrDomain::kInvalidSlot;
  bool tried = false;
  ~SinkQsbrHandle() {
    if (slot != lockfree::QsbrDomain::kInvalidSlot) {
      SinkQsbr().Unregister(slot);
    }
  }
};

thread_local SinkQsbrHandle tls_sink_qsbr;

/// Threads that found the QSBR domain full (satellite telemetry; the
/// silent-skip used to be invisible, which made "why is tracing slow on
/// this 300-thread app" undiagnosable).
std::atomic<uint64_t> g_sink_qsbr_overflows{0};

}  // namespace

uint64_t SinkQsbrOverflows() {
  return g_sink_qsbr_overflows.load(std::memory_order_relaxed);
}

void InstallThreadSink(ThreadEventSink sink) {
  SinkQsbrHandle& handle = tls_sink_qsbr;
  if (!handle.tried) {
    handle.tried = true;
    handle.slot = SinkQsbr().Register();
    if (handle.slot == lockfree::QsbrDomain::kInvalidSlot) {
      // Counted once per THREAD (not per install attempt): the counter
      // answers "how many threads are stuck on the virtual path".
      g_sink_qsbr_overflows.fetch_add(1, std::memory_order_relaxed);
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true)) {
        SWORD_WARN() << "sink QSBR domain full ("
                     << lockfree::QsbrDomain::kMaxParticipants
                     << " slots): additional threads trace via the slower "
                        "virtual path";
      }
    }
  }
  if (handle.slot == lockfree::QsbrDomain::kInvalidSlot) {
    // Untracked thread (domain full): installing a sink the retirer cannot
    // see would break RetireSinks' proof, so don't - the virtual path is
    // always correct, just slower.
    return;
  }
  sink.epoch = CurrentSinkEpoch();
  // Online BEFORE the sink becomes usable: a retirer that samples this slot
  // as quiescent can conclude no sink is installed here.
  SinkQsbr().Online(handle.slot);
  tls_event_sink = sink;
}

void ClearThreadSink() {
  tls_event_sink = ThreadEventSink{};
  const uint32_t slot = tls_sink_qsbr.slot;
  if (slot != lockfree::QsbrDomain::kInvalidSlot) SinkQsbr().Quiescent(slot);
}

bool RetireSinks() {
  if (SinkQsbr().SynchronizeIfQuiescent()) return true;
  InvalidateSinks();
  return false;
}

namespace {

constexpr RegionId kNoRegion = ~0ULL;

thread_local Ctx* tls_ctx = nullptr;

/// Offset-span label of the sequential (root) program point on this thread.
/// Advances past each top-level region so consecutive regions are ordered.
thread_local osl::Label tls_root_label = osl::Label::Initial();

}  // namespace

// ---------------------------------------------------------------------------
// Team: one fork/join instance.

class Team {
 public:
  Team(RegionId region, RegionId parent_region, uint32_t span, uint32_t level)
      : region_(region), parent_region_(parent_region), span_(span), level_(level) {}

  RegionId region() const { return region_; }
  RegionId parent_region() const { return parent_region_; }
  uint32_t span() const { return span_; }
  uint32_t level() const { return level_; }

  /// Central barrier: blocks until all `span` members arrive.
  void Wait() {
    std::unique_lock lock(barrier_mutex_);
    const uint64_t gen = generation_;
    if (++arrived_ == span_) {
      arrived_ = 0;
      generation_++;
      barrier_cv_.notify_all();
      return;
    }
    barrier_cv_.wait(lock, [&] { return generation_ != gen; });
  }

  /// True for exactly one caller per workshare sequence number (Single).
  bool ClaimSingle(uint64_t seq) {
    std::lock_guard lock(ws_mutex_);
    return singles_claimed_.insert(seq).second;
  }

  /// Shared iteration dispenser for dynamic/guided loops and Sections.
  struct Workshare {
    std::atomic<int64_t> next{0};
    int64_t end = 0;
  };

  Workshare& GetWorkshare(uint64_t seq, int64_t begin, int64_t end) {
    std::lock_guard lock(ws_mutex_);
    auto [it, inserted] = workshares_.try_emplace(seq);
    if (inserted) {
      it->second.next.store(begin, std::memory_order_relaxed);
      it->second.end = end;
    }
    return it->second;
  }

  /// Ordered-construct turn taking: blocks until `iteration` is the next
  /// value of ws.next.
  void WaitOrderedTurn(Workshare& ws, int64_t iteration) {
    std::unique_lock lock(ws_mutex_);
    ordered_cv_.wait(lock, [&] {
      return ws.next.load(std::memory_order_relaxed) == iteration;
    });
  }

  void SignalOrderedDone(Workshare& ws, int64_t iteration) {
    {
      std::lock_guard lock(ws_mutex_);
      ws.next.store(iteration + 1, std::memory_order_relaxed);
    }
    ordered_cv_.notify_all();
  }

 private:
  const RegionId region_;
  const RegionId parent_region_;
  const uint32_t span_;
  const uint32_t level_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  uint32_t arrived_ = 0;
  uint64_t generation_ = 0;

  std::mutex ws_mutex_;
  std::condition_variable ordered_cv_;
  std::set<uint64_t> singles_claimed_;
  std::map<uint64_t, Workshare> workshares_;
};

// ---------------------------------------------------------------------------
// Runtime.

struct Runtime::Impl {
  std::atomic<RegionId> next_region{0};
  std::atomic<MutexId> next_mutex{0};
  std::atomic<int> active_regions{0};

  std::mutex table_mutex;
  std::unordered_map<std::string, MutexId> named_mutexes;
  std::map<MutexId, std::unique_ptr<std::mutex>> mutexes;

  std::mutex& MutexFor(MutexId id) {
    std::lock_guard lock(table_mutex);
    auto [it, inserted] = mutexes.try_emplace(id);
    if (inserted) it->second = std::make_unique<std::mutex>();
    return *it->second;
  }
};

Runtime& Runtime::Get() {
  static Runtime* runtime = new Runtime();
  return *runtime;
}

Runtime::Impl& Runtime::impl() {
  static Impl* impl = new Impl();
  return *impl;
}

void Runtime::Configure(const RuntimeConfig& config) {
  assert(impl().active_regions.load() == 0 &&
         "Configure must not run during a parallel region");
  // Sinks installed for the previous tool point at its per-thread state;
  // retire them all (the threads themselves may be parked in a pool and
  // unreachable from here). Outside a parallel region every tracked thread
  // is at a quiescent point with its sink cleared, so this normally proves
  // safety without an epoch bump; the bump is the fallback.
  (void)RetireSinks();
  config_ = config;
}

void Runtime::ResetIds() {
  assert(impl().active_regions.load() == 0);
  impl().next_region.store(0);
  // Mutex ids are NOT reset: Lock objects created by workloads may outlive a
  // run, and stale ids must not collide with fresh ones.
  tls_root_label = osl::Label::Initial();
}

void Runtime::Shutdown() {
  if (config_.tool) config_.tool->OnRuntimeShutdown();
}

RegionId Runtime::NextRegionId() { return impl().next_region.fetch_add(1); }

MutexId Runtime::InternNamedMutex(const std::string& name) {
  std::lock_guard lock(impl().table_mutex);
  auto it = impl().named_mutexes.find(name);
  if (it != impl().named_mutexes.end()) return it->second;
  const MutexId id = impl().next_mutex.fetch_add(1);
  impl().named_mutexes.emplace(name, id);
  return id;
}

MutexId Runtime::NewLockId() { return impl().next_mutex.fetch_add(1); }

void Runtime::LockMutex(MutexId id) { impl().MutexFor(id).lock(); }

void Runtime::UnlockMutex(MutexId id) { impl().MutexFor(id).unlock(); }

void Runtime::EnterRegion() { impl().active_regions.fetch_add(1); }

void Runtime::ExitRegion() { impl().active_regions.fetch_sub(1); }

// ---------------------------------------------------------------------------
// Parallel region execution.

void ParallelImpl(Ctx* parent, uint32_t span, const std::function<void(Ctx&)>& body) {
  Runtime& rt = Runtime::Get();
  if (span == 0) span = rt.default_threads();
  assert(span >= 1);
  Tool* const tool = rt.tool();

  const RegionId rid = rt.NextRegionId();
  const osl::Label parent_label = parent ? parent->label() : tls_root_label;
  Team team(rid, parent ? parent->region() : kNoRegion, span,
            parent ? parent->level() + 1 : 1);

  rt.EnterRegion();
  if (tool) tool->OnParallelBegin(parent, rid, span);

  auto run_member = [&](uint32_t lane) {
    Ctx ctx(&team, lane, parent_label.Fork(lane, span), parent);
    Ctx* const prev = tls_ctx;
    tls_ctx = &ctx;
    if (tool) tool->OnImplicitTaskBegin(ctx);
    body(ctx);
    // Region-end implicit barrier: ends the member's last barrier interval.
    // The physical synchronization is the join below; no OnBarrierExit
    // follows because no access can occur between it and the task end.
    if (tool) tool->OnBarrierEnter(ctx, ctx.barrier_phase(), BarrierKind::kRegionEnd);
    if (tool) tool->OnImplicitTaskEnd(ctx);
    tls_ctx = prev;
  };

  std::vector<WorkerPool::Ticket> tickets;
  tickets.reserve(span - 1);
  for (uint32_t lane = 1; lane < span; lane++) {
    tickets.push_back(GlobalPool().Submit([&run_member, lane] { run_member(lane); }));
  }
  run_member(0);  // the encountering thread participates as lane 0
  for (auto& ticket : tickets) ticket.Wait();

  if (tool) tool->OnParallelEnd(parent, rid);
  rt.ExitRegion();

  // Advance the encountering point's label past the join so the next sibling
  // region is sequentially ordered after this one (mod-span continuation;
  // teammates of the encountering thread stay concurrent with the subtree).
  if (parent) {
    parent->label_ = parent->label_.AfterJoin();
  } else {
    tls_root_label = tls_root_label.AfterJoin();
  }
}

void Parallel(uint32_t span, const std::function<void(Ctx&)>& body) {
  assert(tls_ctx == nullptr &&
         "use ctx.Parallel() for nested regions so labels nest correctly");
  ParallelImpl(nullptr, span, body);
}

void ParallelFor(uint32_t span, int64_t begin, int64_t end,
                 const std::function<void(Ctx&, int64_t)>& body) {
  Parallel(span, [&](Ctx& ctx) {
    ctx.For(begin, end, [&](int64_t i) { body(ctx, i); });
  });
}

Ctx* CurrentCtx() { return tls_ctx; }

// ---------------------------------------------------------------------------
// Ctx.

uint32_t Ctx::num_threads() const { return team_->span(); }
RegionId Ctx::region() const { return team_->region(); }
RegionId Ctx::parent_region() const { return team_->parent_region(); }
uint32_t Ctx::level() const { return team_->level(); }

void Ctx::BarrierImpl(BarrierKind kind) {
  Tool* const tool = Runtime::Get().tool();
  if (tool) tool->OnBarrierEnter(*this, phase_, kind);
  team_->Wait();
  label_ = label_.AfterBarrier();
  const uint64_t crossed = phase_++;
  if (tool) tool->OnBarrierExit(*this, crossed);
}

void Ctx::Barrier() { BarrierImpl(BarrierKind::kExplicit); }

void Ctx::For(int64_t begin, int64_t end, const std::function<void(int64_t)>& body,
              ForOpts opts, const std::source_location& site) {
  const uint64_t seq = ws_seq_++;
  const int64_t n = end - begin;
  const uint32_t span = team_->span();
  Tool* const tool = Runtime::Get().tool();

  // Frame lives on this stack for the duration of the loop; tools read the
  // current iteration through ctx.workshare()->iter. Baseline runs (no
  // tool) skip the frame entirely - the only per-iteration cost they could
  // see is the frame.iter store, which stays because it is one stack store
  // against an indirect std::function call.
  WorkshareFrame frame;
  if (tool) {
    frame.info.site = InternSrcLoc(site);
    frame.info.seq = seq;
    frame.info.begin = begin;
    frame.info.end = end;
    frame.info.schedule = opts.schedule;
    frame.info.chunk = opts.chunk;
    frame.info.nowait = opts.nowait;
    if (opts.schedule == Schedule::kStatic && opts.chunk <= 0 && n > 0) {
      const int64_t block = (n + span - 1) / span;
      const int64_t lo =
          std::min(end, begin + static_cast<int64_t>(lane_) * block);
      frame.info.lane_begin = lo;
      frame.info.lane_end = std::min(end, lo + block);
    }
    frame.parent = ws_frame_;
    ws_frame_ = &frame;
    tool->OnWorkshareBegin(*this, frame.info);
  }

  if (n > 0) {
    switch (opts.schedule) {
      case Schedule::kStatic: {
        if (opts.chunk <= 0) {
          // One contiguous block per lane (OpenMP default static).
          const int64_t block = (n + span - 1) / span;
          const int64_t lo = begin + static_cast<int64_t>(lane_) * block;
          const int64_t hi = std::min(end, lo + block);
          for (int64_t i = lo; i < hi; i++) {
            frame.iter = i;
            body(i);
          }
        } else {
          // Round-robin chunks of the given size (static,chunk).
          const int64_t chunk = opts.chunk;
          for (int64_t base = begin + static_cast<int64_t>(lane_) * chunk; base < end;
               base += chunk * span) {
            const int64_t hi = std::min(end, base + chunk);
            for (int64_t i = base; i < hi; i++) {
              frame.iter = i;
              body(i);
            }
          }
        }
        break;
      }
      case Schedule::kDynamic: {
        const int64_t chunk = opts.chunk > 0 ? opts.chunk : 1;
        auto& ws = team_->GetWorkshare(seq, begin, end);
        while (true) {
          const int64_t lo = ws.next.fetch_add(chunk, std::memory_order_relaxed);
          if (lo >= end) break;
          const int64_t hi = std::min(end, lo + chunk);
          for (int64_t i = lo; i < hi; i++) {
            frame.iter = i;
            body(i);
          }
        }
        break;
      }
      case Schedule::kGuided: {
        const int64_t min_chunk = opts.chunk > 0 ? opts.chunk : 1;
        auto& ws = team_->GetWorkshare(seq, begin, end);
        bool drained = false;
        while (!drained) {
          int64_t cur = ws.next.load(std::memory_order_relaxed);
          int64_t take, hi;
          do {
            if (cur >= end) {
              drained = true;
              break;
            }
            const int64_t remaining = end - cur;
            take = std::max<int64_t>(min_chunk, remaining / (2 * span));
            hi = std::min(end, cur + take);
          } while (!ws.next.compare_exchange_weak(cur, hi, std::memory_order_relaxed));
          if (drained) break;
          for (int64_t i = cur; i < hi; i++) {
            frame.iter = i;
            body(i);
          }
        }
        break;
      }
    }
  }

  if (tool) {
    tool->OnWorkshareEnd(*this, frame.info);
    ws_frame_ = frame.parent;
  }
  BarrierIfNeeded(opts.nowait);
}

void Ctx::Critical(const std::string& name, const std::function<void()>& body) {
  const MutexId id = Runtime::Get().InternNamedMutex(name);
  LockAcquire(id);
  body();
  LockRelease(id);
}

void Ctx::Single(const std::function<void()>& body, bool nowait) {
  const uint64_t seq = ws_seq_++;
  if (team_->ClaimSingle(seq)) body();
  if (!nowait) BarrierImpl(BarrierKind::kWorkshare);
}

void Ctx::Master(const std::function<void()>& body) {
  if (lane_ == 0) body();
}

void Ctx::Ordered(int64_t iteration, int64_t begin,
                  const std::function<void()>& body) {
  // Bound to the ENCLOSING loop: during a For body every member's ws_seq_
  // holds the same value (the loop consumed one sequence number for the
  // whole team), so it identifies the loop instance without being consumed
  // here - Ordered runs once per ITERATION and must not desynchronize the
  // team's workshare numbering. The high bit keeps the ordered state from
  // colliding with the next construct's workshare entry.
  const uint64_t seq = ws_seq_ | (1ULL << 63);
  auto& ws = team_->GetWorkshare(seq, begin, 0);
  // Wait for our turn: ws.next holds the next iteration allowed to enter.
  team_->WaitOrderedTurn(ws, iteration);
  // The ordered region is reported as a runtime mutex so both detectors see
  // the protection: accesses inside distinct ordered bodies can never race
  // (they are totally ordered by construction).
  const MutexId mutex = Runtime::Get().InternNamedMutex(
      "somp-ordered-" + std::to_string(team_->region()) + "-" + std::to_string(seq));
  held_.push_back(mutex);
  if (Tool* tool = Runtime::Get().tool()) tool->OnMutexAcquired(*this, mutex);
  body();
  if (Tool* tool = Runtime::Get().tool()) tool->OnMutexReleased(*this, mutex);
  for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
    if (*it == mutex) {
      held_.erase(std::next(it).base());
      break;
    }
  }
  team_->SignalOrderedDone(ws, iteration);
}

void Ctx::Sections(const std::vector<std::function<void()>>& sections, bool nowait,
                   bool static_dist) {
  const uint64_t seq = ws_seq_++;
  if (static_dist) {
    for (size_t i = lane_; i < sections.size(); i += team_->span()) {
      sections[i]();
    }
  } else {
    auto& ws = team_->GetWorkshare(seq, 0, static_cast<int64_t>(sections.size()));
    while (true) {
      const int64_t i = ws.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= static_cast<int64_t>(sections.size())) break;
      sections[static_cast<size_t>(i)]();
    }
  }
  if (!nowait) BarrierImpl(BarrierKind::kWorkshare);
}

void Ctx::Parallel(uint32_t span, const std::function<void(Ctx&)>& body) {
  ParallelImpl(this, span, body);
}

void Ctx::LockAcquire(MutexId id) {
  Runtime::Get().LockMutex(id);
  held_.push_back(id);
  if (Tool* tool = Runtime::Get().tool()) tool->OnMutexAcquired(*this, id);
}

void Ctx::LockRelease(MutexId id) {
  if (Tool* tool = Runtime::Get().tool()) tool->OnMutexReleased(*this, id);
  for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
    if (*it == id) {
      held_.erase(std::next(it).base());
      break;
    }
  }
  Runtime::Get().UnlockMutex(id);
}

// ---------------------------------------------------------------------------
// Lock.

void Lock::Acquire() {
  Ctx* ctx = CurrentCtx();
  if (ctx) {
    ctx->LockAcquire(id_);
  } else {
    Runtime::Get().LockMutex(id_);
  }
}

void Lock::Release() {
  Ctx* ctx = CurrentCtx();
  if (ctx) {
    ctx->LockRelease(id_);
  } else {
    Runtime::Get().UnlockMutex(id_);
  }
}

}  // namespace sword::somp
