#include "somp/srcloc.h"

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace sword::somp {
namespace {

struct SiteKey {
  const char* file;  // source_location file_name pointers are stable per site
  uint32_t line;
  uint32_t column;
  friend bool operator==(const SiteKey&, const SiteKey&) = default;
};

struct SiteKeyHash {
  size_t operator()(const SiteKey& k) const {
    uint64_t h = reinterpret_cast<uintptr_t>(k.file);
    h = h * 0x9e3779b97f4a7c15ULL + k.line;
    h = h * 0x9e3779b97f4a7c15ULL + k.column;
    return static_cast<size_t>(h ^ (h >> 32));
  }
};

struct GlobalTable {
  std::shared_mutex mutex;
  std::unordered_map<SiteKey, PcId, SiteKeyHash> index;
  std::deque<SrcLoc> locs;  // deque: stable references across growth
};

GlobalTable& Table() {
  static GlobalTable table;
  return table;
}

}  // namespace

std::string SrcLoc::ToString() const {
  // Strip the directory part; reports stay readable.
  const size_t slash = file.rfind('/');
  const std::string base = slash == std::string::npos ? file : file.substr(slash + 1);
  return base + ":" + std::to_string(line);
}

PcId InternSrcLoc(const std::source_location& loc) {
  const SiteKey key{loc.file_name(), loc.line(), loc.column()};

  thread_local std::unordered_map<SiteKey, PcId, SiteKeyHash> cache;
  if (auto it = cache.find(key); it != cache.end()) return it->second;

  GlobalTable& table = Table();
  {
    std::shared_lock lock(table.mutex);
    if (auto it = table.index.find(key); it != table.index.end()) {
      cache.emplace(key, it->second);
      return it->second;
    }
  }
  std::unique_lock lock(table.mutex);
  if (auto it = table.index.find(key); it != table.index.end()) {
    cache.emplace(key, it->second);
    return it->second;
  }
  const PcId id = static_cast<PcId>(table.locs.size());
  table.locs.push_back(SrcLoc{loc.file_name(), loc.function_name(), loc.line(),
                              loc.column()});
  table.index.emplace(key, id);
  cache.emplace(key, id);
  return id;
}

const SrcLoc& LookupSrcLoc(PcId id) {
  GlobalTable& table = Table();
  std::shared_lock lock(table.mutex);
  return table.locs.at(id);
}

size_t SrcLocCount() {
  GlobalTable& table = Table();
  std::shared_lock lock(table.mutex);
  return table.locs.size();
}

}  // namespace sword::somp
