#include "somp/pool.h"

namespace sword::somp {

WorkerPool::WorkerPool() = default;

struct WorkerPool::Ticket::State {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
};

void WorkerPool::Ticket::Wait() {
  if (!state_) return;
  std::unique_lock lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
}

struct WorkerPool::Worker {
  std::mutex mutex;
  std::condition_variable cv;
  std::function<void()> task;
  std::shared_ptr<Ticket::State> ticket;
  bool stop = false;
  std::thread thread;

  void Run(WorkerPool* pool) {
    while (true) {
      std::function<void()> current;
      std::shared_ptr<Ticket::State> current_ticket;
      {
        std::unique_lock lock(mutex);
        cv.wait(lock, [&] { return stop || task; });
        if (stop && !task) return;
        current = std::move(task);
        task = nullptr;
        current_ticket = std::move(ticket);
        ticket = nullptr;
      }
      current();
      // Return to the free list BEFORE signalling completion, so a waiter
      // that immediately submits again can reuse this worker.
      {
        std::lock_guard pool_lock(pool->mutex_);
        pool->idle_.push_back(this);
      }
      {
        std::lock_guard lock(current_ticket->mutex);
        current_ticket->done = true;
      }
      current_ticket->cv.notify_all();
    }
  }
};

WorkerPool::~WorkerPool() {
  std::vector<std::unique_ptr<Worker>> workers;
  {
    std::lock_guard lock(mutex_);
    workers.swap(workers_);
    idle_.clear();
  }
  for (auto& w : workers) {
    {
      std::lock_guard lock(w->mutex);
      w->stop = true;
    }
    w->cv.notify_all();
  }
  for (auto& w : workers) {
    if (w->thread.joinable()) w->thread.join();
  }
}

WorkerPool::Ticket WorkerPool::Submit(std::function<void()> task) {
  Ticket ticket;
  ticket.state_ = std::make_shared<Ticket::State>();

  Worker* worker = nullptr;
  {
    std::lock_guard lock(mutex_);
    if (!idle_.empty()) {
      worker = idle_.back();
      idle_.pop_back();
    } else {
      workers_.push_back(std::make_unique<Worker>());
      worker = workers_.back().get();
      worker->thread = std::thread([this, worker] { worker->Run(this); });
    }
  }

  {
    std::lock_guard lock(worker->mutex);
    worker->task = std::move(task);
    worker->ticket = ticket.state_;
  }
  worker->cv.notify_one();
  return ticket;
}

size_t WorkerPool::WorkerCount() const {
  std::lock_guard lock(mutex_);
  return workers_.size();
}

WorkerPool& GlobalPool() {
  static WorkerPool* pool = new WorkerPool();  // leaked: workers outlive main
  return *pool;
}

}  // namespace sword::somp
