// VerifierTool: an online self-check of the runtime's concurrency
// bookkeeping - the invariants every detector in this repo depends on.
//
// Registered like any analysis tool, it validates on every callback that
//   - a context's label lane equals its thread number and the label span
//     equals the team width;
//   - the label's innermost phase equals the context's barrier phase;
//   - all team members enter a barrier instance with the SAME phase, and
//     exactly `span` of them do so;
//   - mutex acquire/release events nest (no release without acquire);
//   - accesses only arrive between task begin and task end.
// Violations are collected, not thrown, so tests can assert emptiness.
// tests/test_somp.cpp runs whole workloads under it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "somp/runtime.h"
#include "somp/tool.h"

namespace sword::somp {

class VerifierTool final : public Tool {
 public:
  void OnImplicitTaskBegin(Ctx& ctx) override {
    CheckLabelShape(ctx, "task-begin");
    std::lock_guard lock(mutex_);
    live_tasks_.insert(&ctx);
  }

  void OnImplicitTaskEnd(Ctx& ctx) override {
    std::lock_guard lock(mutex_);
    if (!live_tasks_.erase(&ctx)) {
      errors_.push_back("task-end without matching task-begin");
    }
  }

  void OnBarrierEnter(Ctx& ctx, uint64_t phase, BarrierKind kind) override {
    CheckLabelShape(ctx, "barrier-enter");
    if (phase != ctx.barrier_phase()) {
      Error("barrier-enter phase mismatch: callback " + std::to_string(phase) +
            " vs ctx " + std::to_string(ctx.barrier_phase()));
    }
    if (kind == BarrierKind::kRegionEnd) return;  // no exit follows
    std::lock_guard lock(mutex_);
    BarrierInstance& b = barriers_[{ctx.region(), phase}];
    b.span = ctx.num_threads();
    b.entered++;
    if (b.entered > b.span) {
      errors_.push_back("more barrier entries than team members");
    }
  }

  void OnBarrierExit(Ctx& ctx, uint64_t phase) override {
    // The exit-side label must already be advanced past `phase`.
    if (ctx.label().Phase() != phase + 1) {
      Error("barrier-exit label phase not advanced");
    }
    std::lock_guard lock(mutex_);
    BarrierInstance& b = barriers_[{ctx.region(), phase}];
    b.exited++;
    if (b.exited > b.entered) {
      errors_.push_back("barrier exit before all entries (phase " +
                        std::to_string(phase) + ")");
    }
  }

  void OnMutexAcquired(Ctx& ctx, MutexId mutex) override {
    // The runtime updates held_mutexes() before the callback.
    const auto& held = ctx.held_mutexes();
    if (std::find(held.begin(), held.end(), mutex) == held.end()) {
      Error("acquired mutex not in held set");
    }
  }

  void OnMutexReleased(Ctx& ctx, MutexId mutex) override {
    const auto& held = ctx.held_mutexes();
    if (std::find(held.begin(), held.end(), mutex) == held.end()) {
      Error("released mutex was not held");
    }
  }

  void OnAccess(Ctx& ctx, uint64_t addr, uint8_t size, uint8_t, PcId) override {
    if (size == 0) Error("zero-sized access");
    if (addr == 0) Error("null access address");
    std::lock_guard lock(mutex_);
    if (!live_tasks_.count(&ctx)) {
      errors_.push_back("access outside task begin/end");
    }
    accesses_++;
  }

  std::vector<std::string> errors() const {
    std::lock_guard lock(mutex_);
    return errors_;
  }
  uint64_t accesses() const {
    std::lock_guard lock(mutex_);
    return accesses_;
  }

 private:
  struct BarrierInstance {
    uint32_t span = 0;
    uint32_t entered = 0;
    uint32_t exited = 0;
  };

  void CheckLabelShape(Ctx& ctx, const char* where) {
    const osl::Label& label = ctx.label();
    if (label.empty()) {
      Error(std::string(where) + ": empty label");
      return;
    }
    if (label.Lane() != ctx.thread_num()) {
      Error(std::string(where) + ": label lane != thread_num");
    }
    if (label.Span() != ctx.num_threads()) {
      Error(std::string(where) + ": label span != num_threads");
    }
    if (label.Phase() != ctx.barrier_phase()) {
      Error(std::string(where) + ": label phase != barrier_phase");
    }
    if (label.depth() != ctx.level() + 1) {  // +1 for the root component
      Error(std::string(where) + ": label depth != nesting level + 1");
    }
  }

  void Error(std::string message) {
    std::lock_guard lock(mutex_);
    errors_.push_back(std::move(message));
  }

  mutable std::mutex mutex_;
  std::vector<std::string> errors_;
  std::set<const Ctx*> live_tasks_;
  std::map<std::pair<RegionId, uint64_t>, BarrierInstance> barriers_;
  uint64_t accesses_ = 0;
};

}  // namespace sword::somp
