// Per-thread event sink - the instrumentation fast path.
//
// The generic access path costs a Runtime singleton load, a virtual
// Tool::OnAccess dispatch, and the tool's own TLS handle re-check on every
// instrumented load/store. A tool that wants out of that installs a
// ThreadEventSink in this thread-local: a plain function pointer plus the
// per-thread state it targets (SWORD: the thread's trace writer). The shim
// in instr.h then makes ONE indirect call per access.
//
// Validity rules (who may trust an installed sink):
//  - `ctx` must equal the calling thread's CurrentCtx(). A sink is installed
//    per (thread, segment); when the region ends, its Ctx dies and a new
//    region could reuse the stack slot, so the installer must ALSO clear or
//    reinstall the sink at every segment boundary (SWORD installs in
//    BeginSegmentFor and clears on barrier enter / task end).
//  - `epoch` must equal the current global sink epoch. Any event that
//    invalidates other threads' sinks without running on those threads -
//    tool finalization, tool replacement via Runtime::Configure - bumps the
//    epoch instead of chasing thread-locals it cannot touch. A stale sink
//    fails the check and the caller falls back to the virtual path, which
//    re-resolves the tool safely.
//
// The epoch check is a relaxed atomic load: instrumentation and
// invalidation are not concurrent by the runtime's contract (Configure and
// Finalize happen outside parallel regions); the epoch only needs to become
// visible by the next region's install, which the runtime's own region
// synchronization orders.
//
// Retirement (who may tear down the state a sink points at): installing a
// sink also marks the thread ONLINE in a QSBR domain (SinkQsbr()), and
// clearing it - which SWORD does at every barrier enter and implicit-task
// end - marks it QUIESCENT. RetireSinks() begins a grace period and, when
// every tracked thread is quiescent (the normal Configure/Finalize case,
// since both run outside parallel regions where all sinks are already
// cleared), proves no stale sink can exist WITHOUT bumping the epoch - no
// stop-the-world invalidation, and parked pool threads keep their warm
// next-region install path. Only when some thread is still online
// (mid-region teardown: the crash drain) does it fall back to the epoch
// bump, which the per-access epoch check then catches exactly as before.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/lockfree.h"
#include "somp/tool.h"

namespace sword::somp {

class Ctx;

struct ThreadEventSink {
  using AccessFn = void (*)(void* state, uint64_t addr, uint8_t size,
                            uint8_t flags, PcId pc);
  using RangeFn = void (*)(void* state, uint64_t addr, uint64_t bytes,
                           uint8_t flags, PcId pc);

  AccessFn on_access = nullptr;
  RangeFn on_range = nullptr;
  void* state = nullptr;     // the installing tool's per-thread object
  const Ctx* ctx = nullptr;  // context the sink was installed for
  uint64_t epoch = 0;        // CurrentSinkEpoch() at install time
};

extern thread_local ThreadEventSink tls_event_sink;

/// The global sink-invalidation epoch (monotone, starts at 1).
std::atomic<uint64_t>& SinkEpoch();

inline uint64_t CurrentSinkEpoch() {
  return SinkEpoch().load(std::memory_order_acquire);
}

/// Invalidates every thread's installed sink (they fail the epoch check and
/// fall back to the virtual tool path until reinstalled). The
/// stop-the-world hammer; prefer RetireSinks().
inline void InvalidateSinks() {
  SinkEpoch().fetch_add(1, std::memory_order_acq_rel);
}

/// The QSBR domain tracking which threads currently hold an installed sink.
/// Barriers and implicit-task ends are its quiescent points.
lockfree::QsbrDomain& SinkQsbr();

/// Installs `sink` as the calling thread's fast-path sink (stamping the
/// current epoch) and marks the thread online in SinkQsbr(), registering it
/// on first use. If the domain is out of participant slots the install is
/// skipped entirely - the thread just stays on the virtual tool path, which
/// is always correct.
void InstallThreadSink(ThreadEventSink sink);

/// Clears the calling thread's sink and marks the thread quiescent.
void ClearThreadSink();

/// Threads that could not join the sink QSBR domain because all participant
/// slots were taken (they run on the always-correct virtual path instead).
/// A nonzero value means the process out-scaled the domain: expected on
/// pathological thread churn, but worth surfacing — the first overflow also
/// logs a one-time warning.
uint64_t SinkQsbrOverflows();

/// Retires all installed sinks without touching other threads' TLS: begins
/// a QSBR grace period and returns true when it passed immediately (every
/// tracked thread is at a quiescent point, so no sink is live anywhere and
/// the epoch needs no bump). Otherwise - some thread is still inside a
/// segment, i.e. the caller broke the "outside parallel regions" contract
/// or is the crash drain - falls back to InvalidateSinks() and returns
/// false.
bool RetireSinks();

}  // namespace sword::somp
