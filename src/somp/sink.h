// Per-thread event sink - the instrumentation fast path.
//
// The generic access path costs a Runtime singleton load, a virtual
// Tool::OnAccess dispatch, and the tool's own TLS handle re-check on every
// instrumented load/store. A tool that wants out of that installs a
// ThreadEventSink in this thread-local: a plain function pointer plus the
// per-thread state it targets (SWORD: the thread's trace writer). The shim
// in instr.h then makes ONE indirect call per access.
//
// Validity rules (who may trust an installed sink):
//  - `ctx` must equal the calling thread's CurrentCtx(). A sink is installed
//    per (thread, segment); when the region ends, its Ctx dies and a new
//    region could reuse the stack slot, so the installer must ALSO clear or
//    reinstall the sink at every segment boundary (SWORD installs in
//    BeginSegmentFor and clears on barrier enter / task end).
//  - `epoch` must equal the current global sink epoch. Any event that
//    invalidates other threads' sinks without running on those threads -
//    tool finalization, tool replacement via Runtime::Configure - bumps the
//    epoch instead of chasing thread-locals it cannot touch. A stale sink
//    fails the check and the caller falls back to the virtual path, which
//    re-resolves the tool safely.
//
// The epoch check is a relaxed atomic load: instrumentation and
// invalidation are not concurrent by the runtime's contract (Configure and
// Finalize happen outside parallel regions); the epoch only needs to become
// visible by the next region's install, which the runtime's own region
// synchronization orders.
#pragma once

#include <atomic>
#include <cstdint>

#include "somp/tool.h"

namespace sword::somp {

class Ctx;

struct ThreadEventSink {
  using AccessFn = void (*)(void* state, uint64_t addr, uint8_t size,
                            uint8_t flags, PcId pc);
  using RangeFn = void (*)(void* state, uint64_t addr, uint64_t bytes,
                           uint8_t flags, PcId pc);

  AccessFn on_access = nullptr;
  RangeFn on_range = nullptr;
  void* state = nullptr;     // the installing tool's per-thread object
  const Ctx* ctx = nullptr;  // context the sink was installed for
  uint64_t epoch = 0;        // CurrentSinkEpoch() at install time
};

extern thread_local ThreadEventSink tls_event_sink;

/// The global sink-invalidation epoch (monotone, starts at 1).
std::atomic<uint64_t>& SinkEpoch();

inline uint64_t CurrentSinkEpoch() {
  return SinkEpoch().load(std::memory_order_acquire);
}

/// Invalidates every thread's installed sink (they fail the epoch check and
/// fall back to the virtual tool path until reinstalled).
inline void InvalidateSinks() {
  SinkEpoch().fetch_add(1, std::memory_order_acq_rel);
}

/// Clears the calling thread's sink.
inline void ClearThreadSink() { tls_event_sink = ThreadEventSink{}; }

}  // namespace sword::somp
