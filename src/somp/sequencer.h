// Deterministic cross-thread ordering for schedule-sensitive experiments.
//
// Fig. 1 of the paper shows the same program producing two interleavings: in
// one, Thread 0's write is not ordered with Thread 1's critical section and a
// happens-before detector reports the race; in the other, lock release ->
// acquire creates a happens-before path that MASKS the race. Reproducing
// both deterministically requires forcing which thread wins the lock first.
// A Sequencer is a turn counter: each thread blocks until the global step
// reaches its turn, so a test can pin any total order of marked points.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace sword::somp {

class Sequencer {
 public:
  /// Blocks until the step counter reaches `turn`, executes nothing, and
  /// advances the counter to turn + 1.
  void Await(uint64_t turn) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return step_ == turn; });
    step_++;
    cv_.notify_all();
  }

  /// Blocks until the counter reaches `turn` without consuming it (observer).
  void WaitUntil(uint64_t turn) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return step_ >= turn; });
  }

  uint64_t current() {
    std::lock_guard lock(mutex_);
    return step_;
  }

  void Reset() {
    std::lock_guard lock(mutex_);
    step_ = 0;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  uint64_t step_ = 0;
};

}  // namespace sword::somp
