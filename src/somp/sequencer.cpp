// Sequencer is header-only; this translation unit exists so the target has a
// stable archive even if the header becomes implementation-heavy later.
#include "somp/sequencer.h"
