// Source-location interning.
//
// The LLVM pass in the paper tags every instrumented load/store with its
// program counter; race reports then map PCs back to file:line. Our
// instrumentation shim uses std::source_location instead, interned into
// dense 32-bit PcIds. Interning is on the access hot path, so each thread
// keeps a local cache keyed on the (stable) file-name pointer + line +
// column; the shared table is only touched on a site's first access from a
// thread.
#pragma once

#include <cstdint>
#include <source_location>
#include <string>

namespace sword::somp {

using PcId = uint32_t;

struct SrcLoc {
  std::string file;
  std::string function;
  uint32_t line = 0;
  uint32_t column = 0;

  /// "file.cpp:42" - what race reports print.
  std::string ToString() const;
};

/// Interns `loc`, returning a process-wide dense id. Thread-safe, O(1)
/// amortized via a thread-local cache.
PcId InternSrcLoc(const std::source_location& loc);

/// Reverse lookup; ids are never recycled. Returns a stable reference.
const SrcLoc& LookupSrcLoc(PcId id);

/// Number of interned sites (tests).
size_t SrcLocCount();

}  // namespace sword::somp
