// Tool observation interface - the OMPT equivalent (paper SIII-A).
//
// SWORD collects its traces exclusively through OMPT callbacks plus
// compiler-inserted load/store instrumentation. This interface carries the
// same event vocabulary: thread lifecycle, parallel region begin/end,
// implicit tasks, barriers, mutex acquire/release, and instrumented memory
// accesses. A Tool is registered on the Runtime; both the SWORD collector
// (src/core) and the ARCHER-style happens-before baseline (src/hb) are Tools,
// so every workload runs unmodified under either detector or under none
// (the "baseline" configuration).
//
// Callback threading contract: callbacks for a given Ctx are invoked on that
// context's OS thread, in program order. Callbacks for different contexts
// may be concurrent - tools synchronize their own state (SWORD deliberately
// does not need to: each thread logs independently).
//
// Ordering guarantees the runtime provides:
//  - OnParallelBegin(parent) happens-before every member's OnImplicitTaskBegin;
//  - every member's OnImplicitTaskEnd happens-before OnParallelEnd(parent);
//  - for mid-region barriers, every member's OnBarrierEnter happens-before
//    every member's OnBarrierExit of the same barrier instance;
//  - the region-end barrier emits OnBarrierEnter(kRegionEnd) per member but
//    no OnBarrierExit (no accesses can follow it within the region).
#pragma once

#include <cstdint>

namespace sword::somp {

class Ctx;

using RegionId = uint64_t;
using MutexId = uint32_t;
using PcId = uint32_t;

enum AccessFlags : uint8_t {
  kAccessRead = 0,
  kAccessWrite = 1 << 0,
  kAccessAtomic = 1 << 1,
};

enum class BarrierKind : uint8_t {
  kExplicit,   // Barrier() call (OpenMP "#pragma omp barrier")
  kWorkshare,  // implicit barrier ending For/Single/Sections
  kRegionEnd,  // implicit barrier ending the parallel region
};

enum class Schedule : uint8_t { kStatic, kDynamic, kGuided };

/// Everything a tool can know about one execution of a worksharing loop on
/// one lane, reported at OnWorkshareBegin/OnWorkshareEnd. `site` interns the
/// Ctx::For callsite, so the same textual loop keeps one identity across
/// regions and episodes - the key the static pre-filter (src/prefilter)
/// indexes its per-site state by.
struct WorkshareInfo {
  PcId site = 0;       // interned For callsite (srcloc table)
  uint64_t seq = 0;    // worksharing ordinal within the region
  int64_t begin = 0;   // loop bounds: [begin, end)
  int64_t end = 0;
  Schedule schedule = Schedule::kStatic;
  int64_t chunk = 0;
  bool nowait = false;
  /// This lane's contiguous iteration block [lane_begin, lane_end) - only
  /// meaningful for static no-chunk scheduling (both 0 otherwise, and for
  /// lanes with no iterations).
  int64_t lane_begin = 0;
  int64_t lane_end = 0;
};

class Tool {
 public:
  virtual ~Tool() = default;

  /// A team member starts executing the region body (including the
  /// encountering thread as lane 0).
  virtual void OnImplicitTaskBegin(Ctx& ctx) { (void)ctx; }
  virtual void OnImplicitTaskEnd(Ctx& ctx) { (void)ctx; }

  /// Region lifecycle, reported by the encountering thread. `parent` is
  /// null for a region entered from sequential code.
  virtual void OnParallelBegin(Ctx* parent, RegionId region, uint32_t span) {
    (void)parent;
    (void)region;
    (void)span;
  }
  virtual void OnParallelEnd(Ctx* parent, RegionId region) {
    (void)parent;
    (void)region;
  }

  /// The thread is about to wait at barrier number `phase` of its region
  /// (0-based, identical across the team); its current barrier interval ends
  /// here. Called before the physical wait so threads log independently.
  virtual void OnBarrierEnter(Ctx& ctx, uint64_t phase, BarrierKind kind) {
    (void)ctx;
    (void)phase;
    (void)kind;
  }
  /// The thread crossed barrier `phase`; a new barrier interval begins.
  /// Not emitted for kRegionEnd barriers.
  virtual void OnBarrierExit(Ctx& ctx, uint64_t phase) {
    (void)ctx;
    (void)phase;
  }

  /// A worksharing loop starts/finishes on this lane. Begin is called after
  /// the lane's block is computed and before any iteration runs; End is
  /// called after the lane's last iteration and BEFORE the loop's implicit
  /// barrier (so a tool can still append to the open barrier interval).
  virtual void OnWorkshareBegin(Ctx& ctx, const WorkshareInfo& ws) {
    (void)ctx;
    (void)ws;
  }
  virtual void OnWorkshareEnd(Ctx& ctx, const WorkshareInfo& ws) {
    (void)ctx;
    (void)ws;
  }

  virtual void OnMutexAcquired(Ctx& ctx, MutexId mutex) {
    (void)ctx;
    (void)mutex;
  }
  virtual void OnMutexReleased(Ctx& ctx, MutexId mutex) {
    (void)ctx;
    (void)mutex;
  }

  /// An instrumented memory access (only invoked from within parallel
  /// regions, mirroring the paper's "ignore sequential instructions").
  virtual void OnAccess(Ctx& ctx, uint64_t addr, uint8_t size, uint8_t flags,
                        PcId pc) {
    (void)ctx;
    (void)addr;
    (void)size;
    (void)flags;
    (void)pc;
  }

  /// An instrumented bulk access over [addr, addr+bytes) (memset/memcpy
  /// style). The default breaks the range into <= 128-byte chunk accesses,
  /// so tools without a native range representation observe exactly the
  /// historical per-chunk event stream; SWORD overrides this to log a
  /// single strided run event.
  virtual void OnRangeAccess(Ctx& ctx, uint64_t addr, uint64_t bytes,
                             uint8_t flags, PcId pc) {
    while (bytes > 0) {
      const uint8_t chunk = bytes > 128 ? 128 : static_cast<uint8_t>(bytes);
      OnAccess(ctx, addr, chunk, flags, pc);
      addr += chunk;
      bytes -= chunk;
    }
  }

  /// The outermost parallel work is done; flush any pending state.
  virtual void OnRuntimeShutdown() {}
};

}  // namespace sword::somp
