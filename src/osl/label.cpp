#include "osl/label.h"

#include <cassert>

namespace sword::osl {

Label Label::Fork(uint32_t index, uint32_t span) const {
  assert(span >= 1 && index < span);
  std::vector<Pair> pairs = pairs_;
  pairs.push_back(Pair{index, span, 0});
  return Label(std::move(pairs));
}

Label Label::AfterBarrier() const {
  assert(!pairs_.empty());
  std::vector<Pair> pairs = pairs_;
  pairs.back().phase += 1;
  return Label(std::move(pairs));
}

Label Label::AfterJoin() const {
  assert(!pairs_.empty());
  std::vector<Pair> pairs = pairs_;
  pairs.back().offset += pairs.back().span;
  return Label(std::move(pairs));
}

Label Label::Parent() const {
  assert(pairs_.size() > 1);
  std::vector<Pair> pairs = pairs_;
  pairs.pop_back();
  return Label(std::move(pairs));
}

uint32_t Label::Lane() const {
  assert(!pairs_.empty());
  return pairs_.back().offset % pairs_.back().span;
}

uint32_t Label::Phase() const {
  assert(!pairs_.empty());
  return pairs_.back().phase;
}

uint32_t Label::Span() const {
  assert(!pairs_.empty());
  return pairs_.back().span;
}

std::string Label::ToString() const {
  std::string out;
  for (const Pair& p : pairs_) {
    out += "[" + std::to_string(p.offset) + "," + std::to_string(p.span) + "@" +
           std::to_string(p.phase) + "]";
  }
  return out;
}

void Label::Serialize(ByteWriter& w) const {
  w.PutVarU64(pairs_.size());
  for (const Pair& p : pairs_) {
    w.PutVarU64(p.offset);
    w.PutVarU64(p.span);
    w.PutVarU64(p.phase);
  }
}

Status Label::Deserialize(ByteReader& r, Label* out) {
  uint64_t n;
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&n));
  std::vector<Pair> pairs;
  pairs.reserve(n);
  for (uint64_t i = 0; i < n; i++) {
    uint64_t offset, span, phase;
    SWORD_RETURN_IF_ERROR(r.GetVarU64(&offset));
    SWORD_RETURN_IF_ERROR(r.GetVarU64(&span));
    SWORD_RETURN_IF_ERROR(r.GetVarU64(&phase));
    if (span == 0) return Status::Corrupt("osl: zero span");
    pairs.push_back(Pair{static_cast<uint32_t>(offset), static_cast<uint32_t>(span),
                         static_cast<uint32_t>(phase)});
  }
  *out = Label(std::move(pairs));
  return Status::Ok();
}

bool Sequential(const Label& a, const Label& b) {
  const auto& pa = a.pairs();
  const auto& pb = b.pairs();

  // Find the first position where the labels differ.
  const size_t n = std::min(pa.size(), pb.size());
  size_t i = 0;
  while (i < n && pa[i] == pb[i]) i++;

  // Case 1: prefix (or equal) - ancestor ordering.
  if (i == pa.size() || i == pb.size()) return true;

  const Pair& x = pa[i];
  const Pair& y = pb[i];
  if (x.span != y.span) return false;  // cannot arise from one team instance

  // Case 2a: a team barrier separates different phases, for ANY two lanes.
  if (x.phase != y.phase) return true;

  // Case 2b: the same lane continued across nested joins (mod-span rule).
  return (x.offset % x.span) == (y.offset % y.span);
}

bool Concurrent(const Label& a, const Label& b) { return !Sequential(a, b); }

}  // namespace sword::osl
