// Offset-span labels (Mellor-Crummey), extended with barrier phases - the
// concurrency judgment SWORD's offline analysis is built on (paper SII).
//
// A label is a sequence of [offset, span @ phase] components tracing a
// thread's lineage through nested fork/join regions and barrier phases:
//   - the initial (master) thread has label [0,1@0];
//   - a fork of span s from a thread with label L gives child i the label
//     L.[i,s@0];
//   - a TEAM BARRIER advances the innermost phase: [o,s@p] -> [o,s@p+1].
//     Every member advances together, so phase order across ANY two lanes
//     implies barrier ordering (the paper's Fig. 2: "accesses within
//     sequentially ordered barrier intervals cannot race", e.g. Thread 3 in
//     Barrier Interval 1 vs Thread 4 in Barrier Interval 3);
//   - a JOIN of a nested region advances the ENCOUNTERING thread's own
//     innermost offset: [o,s@p] -> [o+s,s@p]. Only that lane moves, so join
//     ordering is visible to the original mod-span rule but NOT mistaken
//     for a barrier (its teammates are still concurrent with the joined
//     subtree).
//
// Two labels are SEQUENTIAL iff
//   case 1: one is a prefix of the other (ancestor ordering), or
//   case 2: at the first differing component, spans match and either
//       (a) the phases differ             - a team barrier separates them, or
//       (b) offset_x = offset_y (mod span) - the same lane's continuation
//                                           across nested joins
//           (Mellor-Crummey's original rule).
// Otherwise they are CONCURRENT.
//
// Note on fidelity: the paper states case 2 with the mod-span rule only and
// encodes barrier ordering separately through the meta-data's bid column;
// folding the phase into the label (2b above) is the equivalent,
// self-contained formulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace sword::osl {

struct Pair {
  uint32_t offset = 0;
  uint32_t span = 1;
  uint32_t phase = 0;

  friend bool operator==(const Pair&, const Pair&) = default;
};

class Label {
 public:
  Label() = default;
  explicit Label(std::vector<Pair> pairs) : pairs_(std::move(pairs)) {}

  /// The master thread's label: [0,1@0].
  static Label Initial() { return Label({Pair{0, 1, 0}}); }

  /// Label of child `index` in a fork of `span` threads from this label.
  /// Requires index < span and span >= 1.
  Label Fork(uint32_t index, uint32_t span) const;

  /// Label after a team barrier: innermost [o,s@p] becomes [o,s@p+1].
  Label AfterBarrier() const;

  /// The encountering thread's label after a nested region joins back:
  /// innermost [o,s@p] becomes [o+s,s@p].
  Label AfterJoin() const;

  /// Label of the parent context: drops the innermost component.
  /// Requires depth() > 1.
  Label Parent() const;

  /// Lane within the innermost team (offset mod span).
  uint32_t Lane() const;

  /// Barrier phase within the innermost team.
  uint32_t Phase() const;

  /// Span of the innermost team.
  uint32_t Span() const;

  size_t depth() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }
  const std::vector<Pair>& pairs() const { return pairs_; }

  /// "[0,1@0][2,4@1]" - offset, span, phase per component.
  std::string ToString() const;

  void Serialize(ByteWriter& w) const;
  static Status Deserialize(ByteReader& r, Label* out);

  friend bool operator==(const Label&, const Label&) = default;

 private:
  std::vector<Pair> pairs_;
};

/// True iff the executions tagged by the two labels are ordered (case 1 or
/// case 2 above). Symmetric. Equal labels denote the same execution point
/// and are treated as sequential (a thread does not race with itself).
bool Sequential(const Label& a, const Label& b);

/// True iff neither ordering case applies; accesses under concurrent labels
/// may race.
bool Concurrent(const Label& a, const Label& b);

}  // namespace sword::osl
