// Measurement harness: runs one workload under one detector configuration
// and reports the quantities the paper's tables and figures are built from.
//
// Configurations mirror the paper's four: "baseline" (checking disabled),
// "archer" (HB detector, 4 shadow cells), "archer-low" (HB + shadow flush
// between regions), and "sword" (bounded trace collection; optionally
// followed by the offline analysis).
//
// Memory numbers are byte-exact from the instrumented accounting scopes
// (see common/memtrack.h): `baseline_bytes` is the workload's declared data
// footprint, `tool_peak_bytes` the detector's own peak. "Total memory" for
// the figures is baseline + tool, matching how the paper compares
// application-proportional (archer) vs thread-proportional (sword) overhead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "offline/analysis.h"
#include "trace/flusher.h"
#include "trace/governor.h"
#include "workloads/workload.h"

namespace sword::harness {

// kEraser is a beyond-paper baseline: a pure lockset detector (Eraser),
// schedule-independent like SWORD but blind to barriers - see
// src/hb/eraser_tool.h and bench_lockset_comparison.
enum class ToolKind { kBaseline, kArcher, kArcherLow, kSword, kEraser };

const char* ToolName(ToolKind kind);

struct RunConfig {
  ToolKind tool = ToolKind::kBaseline;
  workloads::WorkloadParams params;

  // SWORD knobs.
  uint64_t buffer_bytes = 2 * 1024 * 1024;
  std::string codec = "lzf";
  bool async_flush = true;
  uint32_t flush_workers = 0;          // flusher pool size; 0 = auto
  uint8_t trace_format = trace::kTraceFormatV3;
  bool access_filter = true;           // duplicate-access filter (v3 only)
  bool coalesce = true;                // strided-run coalescing (v3 only)
  bool lockfree = true;                // lock-free trace plane (ablation)
  bool prefilter = false;              // static pre-filter elision (v3 only)
  uint64_t prefilter_budget = 4096;    // solver step budget per overlap query
  bool run_offline = true;             // run the offline analysis afterwards
  uint32_t offline_threads = 1;
  ilp::OverlapEngine engine = ilp::OverlapEngine::kDiophantine;
  bool journal_offline = false;        // checkpoint each analysis bucket
  bool stream_offline = true;          // decoder-to-frozen streaming build
  bool symbolic_offline = true;        // symbolic strided-run intervals
  bool dedup_offline = true;           // repeated-subtrace memoization
  std::string trace_dir;               // empty = fresh temp dir per run

  // Production-survivability knobs (see docs/RESILIENCE.md).
  /// Deterministic fault-plan spec (common/faultfs.h grammar). Non-empty
  /// routes all trace I/O through a FaultFile and applies pool-level
  /// faults; the offline open switches to salvage mode automatically.
  std::string fault_plan;
  bool crash_seal = true;              // fatal-signal trace sealing
  bool adaptive_degradation = false;   // degradation governor
  trace::GovernorConfig governor_config;  // thresholds when adaptive
  uint64_t watchdog_ms = 0;            // flusher enqueue deadline; 0 = block
  bool salvage_offline = false;        // force salvage-mode analysis

  // HB-baseline knobs.
  uint32_t shadow_cells = 4;
  uint64_t archer_memory_cap = 0;      // simulated node memory; 0 = unlimited
};

struct RunResult {
  std::string workload;
  ToolKind tool = ToolKind::kBaseline;
  Status status;

  double dynamic_seconds = 0;       // wall time of the (instrumented) run
  double offline_seconds = 0;       // SWORD offline analysis, single node (OA)
  double offline_max_bucket = 0;    // SWORD distributed proxy (MT)

  uint64_t races = 0;               // deduplicated pc-pair reports
  uint64_t false_alarms = 0;        // reports beyond the workload's ground truth
  bool oom = false;                 // HB detector hit the memory cap

  uint64_t baseline_bytes = 0;      // application data footprint
  uint64_t tool_peak_bytes = 0;     // detector peak memory
  uint64_t log_bytes_on_disk = 0;   // compressed trace size (sword)
  uint64_t events = 0;              // events logged (sword) / accesses seen
  uint64_t events_suppressed = 0;   // duplicate accesses filtered (sword)
  uint64_t events_coalesced = 0;    // accesses folded into runs (sword)
  uint64_t runs_emitted = 0;        // strided run events written (sword)
  uint64_t accesses_dropped = 0;    // accesses seen outside a segment (sword)
  uint64_t degraded_dropped = 0;    // accesses shed by the governor (sword)
  uint64_t events_elided = 0;       // accesses elided at proven-safe sites
  uint64_t elided_lost = 0;         // elided accesses whose receipts were lost
  uint64_t flushes = 0;             // buffer flushes (sword)
  uint64_t trace_threads = 0;       // sword threads (for N*(B+C))
  trace::FlusherStats flusher;      // flush-pipeline counters (sword)

  offline::AnalysisStats analysis;  // populated for sword runs

  uint64_t TotalMemoryBytes() const { return baseline_bytes + tool_peak_bytes; }
};

/// Runs `workload` once under the configuration. Resets runtime ids first;
/// must not be called concurrently with itself.
RunResult RunWorkload(const workloads::Workload& workload, const RunConfig& config);

/// Convenience: run by (suite, name); fails NotFound if unregistered.
Result<RunResult> RunByName(const std::string& suite, const std::string& name,
                            const RunConfig& config);

/// Geometric mean helper for Fig. 6-style aggregation.
double GeometricMean(const std::vector<double>& values);

}  // namespace sword::harness
