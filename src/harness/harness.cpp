#include "harness/harness.h"

#include <cmath>
#include <memory>

#include "common/faultfs.h"
#include "common/fsutil.h"
#include "common/timer.h"
#include "core/sword_tool.h"
#include "hb/archer_tool.h"
#include "hb/eraser_tool.h"
#include "offline/tracestore.h"
#include "somp/runtime.h"

namespace sword::harness {

const char* ToolName(ToolKind kind) {
  switch (kind) {
    case ToolKind::kBaseline:
      return "baseline";
    case ToolKind::kArcher:
      return "archer";
    case ToolKind::kArcherLow:
      return "archer-low";
    case ToolKind::kSword:
      return "sword";
    case ToolKind::kEraser:
      return "eraser";
  }
  return "?";
}

namespace {

void ConfigureRuntime(somp::Tool* tool, uint32_t threads) {
  somp::RuntimeConfig rc;
  rc.tool = tool;
  rc.default_threads = threads == 0 ? 4 : threads;
  somp::Runtime::Get().ResetIds();
  somp::Runtime::Get().Configure(rc);
}

void UnconfigureRuntime() {
  somp::RuntimeConfig rc;
  rc.tool = nullptr;
  somp::Runtime::Get().Configure(rc);
}

}  // namespace

RunResult RunWorkload(const workloads::Workload& workload, const RunConfig& config) {
  RunResult result;
  result.workload = workload.name;
  result.tool = config.tool;
  result.baseline_bytes = workload.baseline_bytes(config.params);

  switch (config.tool) {
    case ToolKind::kBaseline: {
      ConfigureRuntime(nullptr, config.params.threads);
      Timer timer;
      workload.run(config.params);
      result.dynamic_seconds = timer.ElapsedSeconds();
      break;
    }

    case ToolKind::kEraser: {
      hb::EraserTool tool;
      ConfigureRuntime(&tool, config.params.threads);
      Timer timer;
      workload.run(config.params);
      result.dynamic_seconds = timer.ElapsedSeconds();
      result.races = tool.Races().size();
      result.tool_peak_bytes = tool.MemoryBytes();
      break;
    }

    case ToolKind::kArcher:
    case ToolKind::kArcherLow: {
      hb::ArcherConfig ac;
      ac.flush_shadow = config.tool == ToolKind::kArcherLow;
      ac.shadow_cells = config.shadow_cells;
      ac.memory_cap_bytes = config.archer_memory_cap;
      hb::ArcherTool tool(ac);
      ConfigureRuntime(&tool, config.params.threads);
      Timer timer;
      workload.run(config.params);
      result.dynamic_seconds = timer.ElapsedSeconds();
      result.races = tool.Races().size();
      result.oom = tool.OutOfMemory();
      result.tool_peak_bytes = tool.PeakMemoryBytes();
      if (result.oom) {
        result.status = Status::Oom("HB detector exceeded the node memory cap");
      }
      break;
    }

    case ToolKind::kSword: {
      // Fresh trace directory per run unless the caller pins one.
      std::unique_ptr<TempDir> tmp;
      std::string dir = config.trace_dir;
      if (dir.empty()) {
        tmp = std::make_unique<TempDir>("sword-trace");
        dir = tmp->path();
      }
      // Deterministic fault injection: the whole plan replays from its spec
      // string, so any chaos failure reproduces with the same flag.
      testing::FaultPlan plan;
      testing::FaultFile fault_backend;  // must outlive the tool's flusher
      if (!config.fault_plan.empty()) {
        auto parsed = testing::ParseFaultPlan(config.fault_plan);
        if (!parsed.ok()) {
          result.status = parsed.status();
          return result;
        }
        plan = std::move(parsed).value();
        plan.ApplyTo(fault_backend);
      }

      core::SwordConfig sc;
      sc.out_dir = dir;
      sc.buffer_bytes = config.buffer_bytes;
      sc.codec = config.codec;
      sc.async_flush = config.async_flush;
      sc.flush_workers = config.flush_workers;
      sc.trace_format = config.trace_format;
      sc.access_filter = config.access_filter;
      sc.coalesce = config.coalesce;
      sc.lockfree = config.lockfree;
      sc.prefilter = config.prefilter;
      sc.prefilter_budget = config.prefilter_budget;
      sc.crash_seal = config.crash_seal;
      sc.adaptive_degradation = config.adaptive_degradation;
      sc.governor_config = config.governor_config;
      sc.watchdog_ms = config.watchdog_ms;
      if (!plan.empty()) sc.backend = &fault_backend;

      {
        core::SwordTool tool(sc);
        if (plan.alloc_fail_count > 0) {
          tool.buffer_pool().InjectAcquireFailures(plan.alloc_fail_from,
                                                   plan.alloc_fail_count);
        }
        ConfigureRuntime(&tool, config.params.threads);
        Timer timer;
        workload.run(config.params);
        const Status fin = tool.Finalize();  // includes flusher drain
        result.dynamic_seconds = timer.ElapsedSeconds();
        result.tool_peak_bytes = tool.PeakMemoryBytes();
        result.events = tool.EventsLogged();
        result.events_suppressed = tool.EventsSuppressed();
        result.events_coalesced = tool.EventsCoalesced();
        result.runs_emitted = tool.RunsEmitted();
        result.accesses_dropped = tool.AccessesDropped();
        result.degraded_dropped = tool.DegradedDropped();
        result.events_elided = tool.EventsElided();
        result.elided_lost = tool.ElidedLost();
        result.flushes = tool.Flushes();
        result.trace_threads = tool.ThreadCount();
        result.flusher = tool.FlushStats();
        // Under an injected fault plan (or explicit salvage) an I/O failure
        // is the EXPECTED outcome, already booked as drops and gap frames;
        // the run continues into salvage-mode analysis instead of aborting.
        const bool expect_damage = !plan.empty() || config.salvage_offline;
        if (!fin.ok() && !expect_damage) {
          result.status = fin;
          UnconfigureRuntime();
          return result;
        }
        for (const auto& path : tool.LogPaths()) {
          if (auto size = FileSize(path); size.ok()) {
            result.log_bytes_on_disk += size.value();
          }
        }
      }

      if (config.run_offline) {
        offline::StoreOptions so;
        so.salvage = !plan.empty() || config.salvage_offline;
        auto store = offline::TraceStore::OpenDir(dir, so);
        if (!store.ok()) {
          result.status = store.status();
          UnconfigureRuntime();
          return result;
        }
        offline::AnalysisConfig ac;
        ac.engine = config.engine;
        ac.threads = config.offline_threads;
        ac.use_stream = config.stream_offline;
        ac.use_symbolic = config.symbolic_offline;
        ac.use_dedup = config.dedup_offline;
        if (config.journal_offline) {
          ac.journal_path = dir + "/sword_analysis_0of1.journal";
        }
        offline::AnalysisResult analysis = offline::Analyze(store.value(), ac);
        result.status = analysis.status;
        result.races = analysis.races.size();
        result.offline_seconds = analysis.stats.total_seconds;
        result.offline_max_bucket = analysis.stats.max_bucket_seconds;
        result.analysis = analysis.stats;
      }
      break;
    }
  }

  UnconfigureRuntime();
  // Ground-truth bookkeeping for workloads that declare it: anything beyond
  // the known real races is a false alarm (used by the comparison benches).
  if (result.races > static_cast<uint64_t>(workload.total_races)) {
    result.false_alarms = result.races - static_cast<uint64_t>(workload.total_races);
  }
  return result;
}

Result<RunResult> RunByName(const std::string& suite, const std::string& name,
                            const RunConfig& config) {
  const workloads::Workload* w = workloads::WorkloadRegistry::Get().Find(suite, name);
  if (!w) return Status::NotFound(suite + "/" + name);
  return RunWorkload(*w, config);
}

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(std::max(v, 1e-12));
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace sword::harness
