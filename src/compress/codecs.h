// Accessors for the built-in codec singletons. Internal to src/compress;
// everything else goes through FindCompressor()/DefaultCompressor().
#pragma once

#include "compress/compressor.h"

namespace sword {

const Compressor* GetRawCompressor();
const Compressor* GetRleCompressor();
const Compressor* GetLzsCompressor();
const Compressor* GetLzfCompressor();

}  // namespace sword
