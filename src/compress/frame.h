// Framed compressed-block format: the on-disk unit of the trace log files.
//
// Each buffer flush produces one frame:
//   magic (u32) | codec name (len-prefixed) | raw_size (varu64)
//   | payload_size (varu64) | fnv1a64(payload) (u64) | payload bytes
//
// Frames are self-describing so the offline streaming reader can walk a log
// file frame by frame, decompress each into a bounded scratch buffer, and
// never hold more than one decompressed frame in memory (paper SIII-B:
// "streaming algorithm that reads access information from log files in small
// chunks").
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"
#include "compress/compressor.h"

namespace sword {

constexpr uint32_t kFrameMagic = 0x53574446;  // "SWDF"

/// Compresses `data` with `codec` and appends a complete frame to `out`.
Status WriteFrame(const Compressor& codec, const uint8_t* data, size_t n, Bytes* out);

struct FrameView {
  uint64_t raw_size = 0;        // decompressed payload size
  uint64_t frame_size = 0;      // total encoded frame size in bytes
  Bytes data;                   // decompressed payload
};

/// Reads and decompresses one frame starting at reader's position. Verifies
/// the checksum. On success the reader is positioned at the next frame.
Status ReadFrame(ByteReader& reader, FrameView* out);

/// Parses only the frame header to learn sizes without decompressing.
/// Leaves the reader positioned past the whole frame.
Status SkipFrame(ByteReader& reader, uint64_t* raw_size);

}  // namespace sword
