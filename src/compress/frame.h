// Framed compressed-block format: the on-disk unit of the trace log files.
//
// Each buffer flush produces one frame:
//   magic (u32) | codec name (len-prefixed) | raw_size (varu64)
//   | payload_size (varu64) | fnv1a64(payload) (u64) | payload bytes
//
// The magic doubles as the PAYLOAD FORMAT version tag: "SWDF" frames carry
// format-v1 payloads (fixed 16-byte events), "SWF2" frames carry format-v2
// payloads (delta/varint events, see src/trace/event.h), "SW3F" frames carry
// format-v3 payloads (v2 plus coalesced run events). Readers dispatch per
// frame, so one log file may legally mix versions (e.g. a trace resumed by a
// newer writer).
//
// The v3 magic is deliberately NOT "SWF3": that string is one bit away from
// "SWF2", and because v3 payloads are a superset of v2 a bit-flipped v2
// header would decode cleanly as v3 - the checksum only covers the payload,
// so the corruption would go unnoticed. "SW3F" keeps every magic at Hamming
// distance >= 2 from every other, so a single bit flip always lands on an
// invalid magic and is caught.
//
// Frames are self-describing so the offline streaming reader can walk a log
// file frame by frame, decompress each into a bounded scratch buffer, and
// never hold more than one decompressed frame in memory (paper SIII-B:
// "streaming algorithm that reads access information from log files in small
// chunks").
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"
#include "compress/compressor.h"

namespace sword {

constexpr uint32_t kFrameMagic = 0x53574446;    // "SWDF": format-v1 payload
constexpr uint32_t kFrameMagicV2 = 0x53574632;  // "SWF2": format-v2 payload
constexpr uint32_t kFrameMagicV3 = 0x53573346;  // "SW3F": format-v3 payload
constexpr uint32_t kFrameMagicGap = 0x53574750; // "SWGP": drop marker, no payload
// "SWCR": crash marker appended by the fatal-signal sealer. Like the other
// magics it keeps Hamming distance >= 2 from every sibling ('C'^'G' and
// 'R'^'P' are each one bit vs "SWGP", everything else is farther), so a
// single bit flip can never turn one marker kind into another.
constexpr uint32_t kFrameMagicCrash = 0x53574352;

/// Hard cap on a frame's decompressed size. Writers flush one bounded trace
/// buffer per frame (2 MB by default), so any header claiming more than this
/// is corrupt. The checksum only covers the payload, so raw_size must be
/// sanity-checked before it sizes an allocation.
constexpr uint64_t kMaxFrameRawBytes = 64ull << 20;

/// Compresses `data` with `codec` and appends a complete frame to `out`.
/// `payload_format` selects the magic (1, 2, or 3). `scratch` optionally
/// provides reusable compression staging (see CompressScratch): the
/// compressed payload is built in scratch->payload instead of a fresh
/// allocation.
Status WriteFrame(const Compressor& codec, const uint8_t* data, size_t n, Bytes* out,
                  uint8_t payload_format = 1, CompressScratch* scratch = nullptr);

/// Appends a gap frame to `out`: a drop marker the flusher writes after it
/// had to discard data (ENOSPC). It records how many logical (decompressed)
/// bytes and events went missing so every later frame's logical offset stays
/// trustworthy. Layout:
///   kFrameMagicGap (u32) | raw_bytes (varu64) | event_count (varu64)
///   | fnv1a64(the two varints) (u64)
void WriteGapFrame(Bytes* out, uint64_t raw_bytes, uint64_t event_count);

/// Byte size of a crash-marker frame. The layout is FIXED so the fatal-signal
/// handler can emit one with a single write(2) of a pre-staged buffer:
///   kFrameMagicCrash (u32 LE) | signo (u8) | fnv1a64(&signo, 1) (u64 LE)
/// No varints: the handler must not run variable-length encoders, and the
/// reader must be able to tell a torn marker from a complete one by length.
constexpr size_t kCrashMarkerBytes = 4 + 1 + 8;

/// Serializes a crash marker for signal `signo` into `out[kCrashMarkerBytes]`.
/// Async-signal-safe: writes only to the caller's buffer, no allocation.
void EncodeCrashMarker(uint8_t signo, uint8_t out[kCrashMarkerBytes]);

/// Appends a crash-marker frame to `out` (testing/tooling path; the in-signal
/// path uses EncodeCrashMarker + raw write).
void WriteCrashMarkerFrame(Bytes* out, uint8_t signo);

struct FrameView {
  uint8_t payload_format = 1;   // event encoding version (from the magic)
  uint64_t raw_size = 0;        // decompressed payload size (gap: bytes lost)
  uint64_t frame_size = 0;      // total encoded frame size in bytes
  bool is_gap = false;          // drop marker; `data` is empty
  uint64_t dropped_events = 0;  // gap frames only
  bool is_crash = false;        // crash marker; `data` is empty, raw_size 0
  uint8_t crash_signo = 0;      // crash markers only
  Bytes data;                   // decompressed payload
};

/// Reads and decompresses one frame starting at reader's position. Verifies
/// the checksum. On success the reader is positioned at the next frame.
Status ReadFrame(ByteReader& reader, FrameView* out);

/// Parses only the frame header to learn sizes without decompressing.
/// Leaves the reader positioned past the whole frame.
Status SkipFrame(ByteReader& reader, uint64_t* raw_size,
                 uint8_t* payload_format = nullptr);

}  // namespace sword
