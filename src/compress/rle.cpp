#include "compress/codecs.h"

namespace sword {
namespace {

// Byte-level run-length encoding with literal packets.
//
// Packet format (one control byte):
//   0x00..0x7f  -> literal run of (ctrl + 1) bytes follows
//   0x80..0xff  -> repeat run: the next byte repeats (ctrl - 0x80 + 2) times
// Runs longer than the packet maxima are split across packets.
class RleCompressor final : public Compressor {
 public:
  static constexpr size_t kMaxLiteral = 128;
  static constexpr size_t kMaxRun = 129;  // 2..129 encodable

  const char* Name() const override { return "rle"; }

  Status Compress(const uint8_t* input, size_t n, Bytes* out,
                  CompressScratch* /*scratch*/ = nullptr) const override {
    size_t i = 0;
    while (i < n) {
      // Measure the run starting at i.
      size_t run = 1;
      while (i + run < n && input[i + run] == input[i] && run < kMaxRun) run++;
      if (run >= 2) {
        out->push_back(static_cast<uint8_t>(0x80 + (run - 2)));
        out->push_back(input[i]);
        i += run;
        continue;
      }
      // Collect literals until the next run of >= 3 (a 2-run is cheaper kept
      // literal than breaking the literal packet).
      size_t lit_start = i;
      while (i < n && (i - lit_start) < kMaxLiteral) {
        size_t ahead = 1;
        while (i + ahead < n && input[i + ahead] == input[i] && ahead < 3) ahead++;
        if (ahead >= 3) break;
        i++;
      }
      const size_t lit_len = i - lit_start;
      out->push_back(static_cast<uint8_t>(lit_len - 1));
      out->insert(out->end(), input + lit_start, input + lit_start + lit_len);
    }
    return Status::Ok();
  }

  Status Decompress(const uint8_t* input, size_t n, size_t decompressed_size,
                    Bytes* out) const override {
    const size_t start = out->size();
    size_t i = 0;
    while (i < n) {
      const uint8_t ctrl = input[i++];
      if (ctrl < 0x80) {
        const size_t lit_len = static_cast<size_t>(ctrl) + 1;
        if (i + lit_len > n) return Status::Corrupt("rle: truncated literal packet");
        out->insert(out->end(), input + i, input + i + lit_len);
        i += lit_len;
      } else {
        if (i >= n) return Status::Corrupt("rle: truncated run packet");
        const size_t run = static_cast<size_t>(ctrl - 0x80) + 2;
        out->insert(out->end(), run, input[i++]);
      }
      if (out->size() - start > decompressed_size) {
        return Status::Corrupt("rle: output overruns declared size");
      }
    }
    if (out->size() - start != decompressed_size) {
      return Status::Corrupt("rle: output underruns declared size");
    }
    return Status::Ok();
  }
};

}  // namespace

const Compressor* GetRleCompressor() {
  static const RleCompressor instance;
  return &instance;
}

}  // namespace sword
