#include <cstring>

#include "compress/codecs.h"

namespace sword {
namespace {

// LZ77-style codec with a hash-chain match finder; this is the default trace
// codec, standing in for the LZO-class libraries the paper evaluated.
//
// Token stream format:
//   literal token:  0x00 | varint(len)        then `len` literal bytes
//   match token:    0x01 | varint(len) varint(dist)
// Matches have len >= kMinMatch and dist in [1, position]. Varints are LEB128.
// Trace event buffers are highly repetitive (same pc/size/flags with striding
// addresses), which this format captures well.
class LzsCompressor final : public Compressor {
 public:
  static constexpr size_t kMinMatch = 4;
  static constexpr size_t kMaxChainSteps = 32;
  static constexpr size_t kHashBits = 15;
  static constexpr size_t kHashSize = 1u << kHashBits;
  static constexpr uint32_t kNoPos = 0xffffffffu;

  const char* Name() const override { return "lzs"; }

  Status Compress(const uint8_t* input, size_t n, Bytes* out,
                  CompressScratch* scratch = nullptr) const override {
    ByteWriter w(out);
    if (n == 0) return Status::Ok();

    // Hash chains: reuse the caller's scratch vectors when provided (the
    // flusher workers pass per-worker scratch so steady-state compression
    // allocates nothing), else allocate locally.
    std::vector<uint32_t> local_head, local_prev;
    std::vector<uint32_t>& head = scratch ? scratch->chain_head : local_head;
    std::vector<uint32_t>& prev = scratch ? scratch->chain_prev : local_prev;
    head.assign(kHashSize, kNoPos);
    prev.assign(n, kNoPos);

    size_t i = 0;
    size_t literal_start = 0;

    auto flush_literals = [&](size_t end) {
      if (end > literal_start) {
        w.PutU8(0x00);
        w.PutVarU64(end - literal_start);
        w.PutRaw(input + literal_start, end - literal_start);
      }
    };

    while (i + kMinMatch <= n) {
      const uint32_t h = Hash(input + i);
      // Walk the chain of prior positions with the same hash looking for the
      // longest match.
      size_t best_len = 0;
      size_t best_dist = 0;
      uint32_t cand = head[h];
      size_t steps = 0;
      while (cand != kNoPos && steps < kMaxChainSteps) {
        const size_t dist = i - cand;
        size_t len = 0;
        const size_t max_len = n - i;
        while (len < max_len && input[cand + len] == input[i + len]) len++;
        if (len > best_len) {
          best_len = len;
          best_dist = dist;
        }
        cand = prev[cand];
        steps++;
      }

      if (best_len >= kMinMatch) {
        flush_literals(i);
        w.PutU8(0x01);
        w.PutVarU64(best_len);
        w.PutVarU64(best_dist);
        // Insert the skipped positions into the chains so later matches can
        // reference inside this match.
        const size_t match_end = i + best_len;
        while (i < match_end && i + kMinMatch <= n) {
          const uint32_t hh = Hash(input + i);
          prev[i] = head[hh];
          head[hh] = static_cast<uint32_t>(i);
          i++;
        }
        i = match_end;
        literal_start = i;
      } else {
        prev[i] = head[h];
        head[h] = static_cast<uint32_t>(i);
        i++;
      }
    }
    flush_literals(n);
    return Status::Ok();
  }

  Status Decompress(const uint8_t* input, size_t n, size_t decompressed_size,
                    Bytes* out) const override {
    const size_t start = out->size();
    ByteReader r(input, n);
    while (!r.AtEnd()) {
      uint8_t tag;
      SWORD_RETURN_IF_ERROR(r.GetU8(&tag));
      if (tag == 0x00) {
        uint64_t len;
        SWORD_RETURN_IF_ERROR(r.GetVarU64(&len));
        if (r.remaining() < len) return Status::Corrupt("lzs: truncated literals");
        if (out->size() - start + len > decompressed_size) {
          return Status::Corrupt("lzs: literal overruns declared size");
        }
        out->insert(out->end(), r.cursor(), r.cursor() + len);
        SWORD_RETURN_IF_ERROR(r.Skip(len));
      } else if (tag == 0x01) {
        uint64_t len, dist;
        SWORD_RETURN_IF_ERROR(r.GetVarU64(&len));
        SWORD_RETURN_IF_ERROR(r.GetVarU64(&dist));
        const size_t produced = out->size() - start;
        if (dist == 0 || dist > produced) return Status::Corrupt("lzs: bad distance");
        if (produced + len > decompressed_size) {
          return Status::Corrupt("lzs: match overruns declared size");
        }
        // Byte-by-byte copy: overlapping matches (dist < len) replicate, which
        // is the RLE-like case.
        size_t src = out->size() - dist;
        for (uint64_t k = 0; k < len; k++) out->push_back((*out)[src + k]);
      } else {
        return Status::Corrupt("lzs: unknown token tag");
      }
    }
    if (out->size() - start != decompressed_size) {
      return Status::Corrupt("lzs: output size mismatch");
    }
    return Status::Ok();
  }

 private:
  static uint32_t Hash(const uint8_t* p) {
    uint32_t v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> (32 - kHashBits);
  }
};

}  // namespace

const Compressor* GetLzsCompressor() {
  static const LzsCompressor instance;
  return &instance;
}

}  // namespace sword
