#include "compress/compressor.h"

#include "compress/codecs.h"

namespace sword {

const Compressor* FindCompressor(const std::string& name) {
  if (name == "raw") return GetRawCompressor();
  if (name == "rle") return GetRleCompressor();
  if (name == "lzs") return GetLzsCompressor();
  if (name == "lzf") return GetLzfCompressor();
  return nullptr;
}

std::vector<std::string> CompressorNames() { return {"raw", "rle", "lzs", "lzf"}; }

const Compressor* DefaultCompressor() { return GetLzfCompressor(); }

}  // namespace sword
