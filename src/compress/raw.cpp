#include "compress/codecs.h"

namespace sword {
namespace {

/// Identity codec: the "no compression" baseline for the codec ablation.
class RawCompressor final : public Compressor {
 public:
  const char* Name() const override { return "raw"; }

  Status Compress(const uint8_t* input, size_t n, Bytes* out,
                  CompressScratch* /*scratch*/ = nullptr) const override {
    out->insert(out->end(), input, input + n);
    return Status::Ok();
  }

  Status Decompress(const uint8_t* input, size_t n, size_t decompressed_size,
                    Bytes* out) const override {
    if (n != decompressed_size) {
      return Status::Corrupt("raw: size mismatch");
    }
    out->insert(out->end(), input, input + n);
    return Status::Ok();
  }
};

}  // namespace

const Compressor* GetRawCompressor() {
  static const RawCompressor instance;
  return &instance;
}

}  // namespace sword
