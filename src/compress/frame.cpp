#include "compress/frame.h"

namespace sword {
namespace {

Status ReadFrameHeader(ByteReader& reader, uint8_t* payload_format,
                       std::string* codec_name, uint64_t* raw_size,
                       uint64_t* payload_size, uint64_t* checksum) {
  uint32_t magic;
  SWORD_RETURN_IF_ERROR(reader.GetU32(&magic));
  if (magic == kFrameMagic) {
    *payload_format = 1;
  } else if (magic == kFrameMagicV2) {
    *payload_format = 2;
  } else {
    return Status::Corrupt("bad frame magic");
  }
  SWORD_RETURN_IF_ERROR(reader.GetString(codec_name));
  SWORD_RETURN_IF_ERROR(reader.GetVarU64(raw_size));
  SWORD_RETURN_IF_ERROR(reader.GetVarU64(payload_size));
  SWORD_RETURN_IF_ERROR(reader.GetU64(checksum));
  if (*raw_size > kMaxFrameRawBytes) {
    return Status::Corrupt("implausible frame raw size");
  }
  if (reader.remaining() < *payload_size) return Status::Corrupt("truncated frame payload");
  return Status::Ok();
}

}  // namespace

Status WriteFrame(const Compressor& codec, const uint8_t* data, size_t n, Bytes* out,
                  uint8_t payload_format, CompressScratch* scratch) {
  if (payload_format != 1 && payload_format != 2) {
    return Status::Invalid("unknown frame payload format");
  }
  Bytes local_payload;
  Bytes& payload = scratch ? scratch->payload : local_payload;
  payload.clear();
  SWORD_RETURN_IF_ERROR(codec.Compress(data, n, &payload, scratch));

  ByteWriter w(out);
  w.PutU32(payload_format == 1 ? kFrameMagic : kFrameMagicV2);
  w.PutString(codec.Name());
  w.PutVarU64(n);
  w.PutVarU64(payload.size());
  w.PutU64(Fnv1a64(payload.data(), payload.size()));
  w.PutRaw(payload.data(), payload.size());
  return Status::Ok();
}

Status ReadFrame(ByteReader& reader, FrameView* out) {
  const size_t frame_start = reader.position();
  std::string codec_name;
  uint64_t raw_size, payload_size, checksum;
  SWORD_RETURN_IF_ERROR(ReadFrameHeader(reader, &out->payload_format, &codec_name,
                                        &raw_size, &payload_size, &checksum));

  const Compressor* codec = FindCompressor(codec_name);
  if (!codec) return Status::Corrupt("unknown codec in frame: " + codec_name);

  if (Fnv1a64(reader.cursor(), payload_size) != checksum) {
    return Status::Corrupt("frame checksum mismatch");
  }

  out->data.clear();
  out->data.reserve(raw_size);
  SWORD_RETURN_IF_ERROR(
      codec->Decompress(reader.cursor(), payload_size, raw_size, &out->data));
  SWORD_RETURN_IF_ERROR(reader.Skip(payload_size));
  out->raw_size = raw_size;
  out->frame_size = reader.position() - frame_start;
  return Status::Ok();
}

Status SkipFrame(ByteReader& reader, uint64_t* raw_size, uint8_t* payload_format) {
  uint8_t format;
  std::string codec_name;
  uint64_t payload_size, checksum;
  SWORD_RETURN_IF_ERROR(
      ReadFrameHeader(reader, &format, &codec_name, raw_size, &payload_size, &checksum));
  if (payload_format) *payload_format = format;
  return reader.Skip(payload_size);
}

}  // namespace sword
