#include "compress/frame.h"

namespace sword {
namespace {

/// Parses a gap frame body (magic already consumed): raw_bytes varu64 |
/// event_count varu64 | u64 checksum over the two varints' encoded bytes.
Status ReadGapBody(ByteReader& reader, uint64_t* raw_bytes,
                   uint64_t* event_count) {
  const size_t body_start = reader.position();
  SWORD_RETURN_IF_ERROR(reader.GetVarU64(raw_bytes));
  SWORD_RETURN_IF_ERROR(reader.GetVarU64(event_count));
  const size_t body_len = reader.position() - body_start;
  uint64_t checksum;
  SWORD_RETURN_IF_ERROR(reader.GetU64(&checksum));
  const uint8_t* body = reader.cursor() - 8 - body_len;
  if (Fnv1a64(body, body_len) != checksum) {
    return Status::Corrupt("gap frame checksum mismatch");
  }
  if (*raw_bytes > kMaxFrameRawBytes) {
    return Status::Corrupt("implausible gap frame size");
  }
  return Status::Ok();
}

/// Parses a crash-marker body (magic already consumed): signo u8 | u64
/// checksum over the signo byte. Fixed-length, so a torn tail is detected by
/// the bounds-checked reads alone.
Status ReadCrashBody(ByteReader& reader, uint8_t* signo) {
  SWORD_RETURN_IF_ERROR(reader.GetU8(signo));
  uint64_t checksum;
  SWORD_RETURN_IF_ERROR(reader.GetU64(&checksum));
  if (Fnv1a64(signo, 1) != checksum) {
    return Status::Corrupt("crash marker checksum mismatch");
  }
  return Status::Ok();
}

/// Parses a data-frame header. `magic` has already been consumed.
Status ReadFrameHeader(ByteReader& reader, uint32_t magic,
                       uint8_t* payload_format, std::string* codec_name,
                       uint64_t* raw_size, uint64_t* payload_size,
                       uint64_t* checksum) {
  if (magic == kFrameMagic) {
    *payload_format = 1;
  } else if (magic == kFrameMagicV2) {
    *payload_format = 2;
  } else if (magic == kFrameMagicV3) {
    *payload_format = 3;
  } else {
    return Status::Corrupt("bad frame magic");
  }
  SWORD_RETURN_IF_ERROR(reader.GetString(codec_name));
  SWORD_RETURN_IF_ERROR(reader.GetVarU64(raw_size));
  SWORD_RETURN_IF_ERROR(reader.GetVarU64(payload_size));
  SWORD_RETURN_IF_ERROR(reader.GetU64(checksum));
  if (*raw_size > kMaxFrameRawBytes) {
    return Status::Corrupt("implausible frame raw size");
  }
  if (reader.remaining() < *payload_size) return Status::Corrupt("truncated frame payload");
  return Status::Ok();
}

}  // namespace

Status WriteFrame(const Compressor& codec, const uint8_t* data, size_t n, Bytes* out,
                  uint8_t payload_format, CompressScratch* scratch) {
  if (payload_format < 1 || payload_format > 3) {
    return Status::Invalid("unknown frame payload format");
  }
  Bytes local_payload;
  Bytes& payload = scratch ? scratch->payload : local_payload;
  payload.clear();
  SWORD_RETURN_IF_ERROR(codec.Compress(data, n, &payload, scratch));

  ByteWriter w(out);
  w.PutU32(payload_format == 1   ? kFrameMagic
           : payload_format == 2 ? kFrameMagicV2
                                 : kFrameMagicV3);
  w.PutString(codec.Name());
  w.PutVarU64(n);
  w.PutVarU64(payload.size());
  w.PutU64(Fnv1a64(payload.data(), payload.size()));
  w.PutRaw(payload.data(), payload.size());
  return Status::Ok();
}

void WriteGapFrame(Bytes* out, uint64_t raw_bytes, uint64_t event_count) {
  ByteWriter w(out);
  w.PutU32(kFrameMagicGap);
  const size_t body_start = out->size();
  w.PutVarU64(raw_bytes);
  w.PutVarU64(event_count);
  const size_t body_len = out->size() - body_start;
  w.PutU64(Fnv1a64(out->data() + body_start, body_len));
}

void EncodeCrashMarker(uint8_t signo, uint8_t out[kCrashMarkerBytes]) {
  out[0] = static_cast<uint8_t>(kFrameMagicCrash & 0xff);
  out[1] = static_cast<uint8_t>((kFrameMagicCrash >> 8) & 0xff);
  out[2] = static_cast<uint8_t>((kFrameMagicCrash >> 16) & 0xff);
  out[3] = static_cast<uint8_t>((kFrameMagicCrash >> 24) & 0xff);
  out[4] = signo;
  // FNV-1a over the one signo byte, unrolled so the in-signal path never
  // calls into Fnv1a64 (it is safe today, but keeping the handler's
  // dependency surface at zero is the point of the fixed layout).
  uint64_t h = 0xcbf29ce484222325ULL;
  h = (h ^ signo) * 0x100000001b3ULL;
  for (int i = 0; i < 8; ++i) out[5 + i] = static_cast<uint8_t>(h >> (8 * i));
}

void WriteCrashMarkerFrame(Bytes* out, uint8_t signo) {
  uint8_t marker[kCrashMarkerBytes];
  EncodeCrashMarker(signo, marker);
  out->insert(out->end(), marker, marker + kCrashMarkerBytes);
}

Status ReadFrame(ByteReader& reader, FrameView* out) {
  const size_t frame_start = reader.position();
  uint32_t magic;
  SWORD_RETURN_IF_ERROR(reader.GetU32(&magic));
  out->is_gap = false;
  out->dropped_events = 0;
  out->is_crash = false;
  out->crash_signo = 0;
  if (magic == kFrameMagicCrash) {
    SWORD_RETURN_IF_ERROR(ReadCrashBody(reader, &out->crash_signo));
    out->payload_format = 0;
    out->is_crash = true;
    out->raw_size = 0;
    out->frame_size = reader.position() - frame_start;
    out->data.clear();
    return Status::Ok();
  }
  if (magic == kFrameMagicGap) {
    uint64_t raw_bytes, events;
    SWORD_RETURN_IF_ERROR(ReadGapBody(reader, &raw_bytes, &events));
    out->payload_format = 0;
    out->is_gap = true;
    out->dropped_events = events;
    out->raw_size = raw_bytes;
    out->frame_size = reader.position() - frame_start;
    out->data.clear();
    return Status::Ok();
  }
  std::string codec_name;
  uint64_t raw_size, payload_size, checksum;
  SWORD_RETURN_IF_ERROR(ReadFrameHeader(reader, magic, &out->payload_format,
                                        &codec_name, &raw_size, &payload_size,
                                        &checksum));

  const Compressor* codec = FindCompressor(codec_name);
  if (!codec) return Status::Corrupt("unknown codec in frame: " + codec_name);

  if (Fnv1a64(reader.cursor(), payload_size) != checksum) {
    return Status::Corrupt("frame checksum mismatch");
  }

  out->data.clear();
  out->data.reserve(raw_size);
  SWORD_RETURN_IF_ERROR(
      codec->Decompress(reader.cursor(), payload_size, raw_size, &out->data));
  SWORD_RETURN_IF_ERROR(reader.Skip(payload_size));
  out->raw_size = raw_size;
  out->frame_size = reader.position() - frame_start;
  return Status::Ok();
}

Status SkipFrame(ByteReader& reader, uint64_t* raw_size, uint8_t* payload_format) {
  uint32_t magic;
  SWORD_RETURN_IF_ERROR(reader.GetU32(&magic));
  if (magic == kFrameMagicCrash) {
    uint8_t signo;
    SWORD_RETURN_IF_ERROR(ReadCrashBody(reader, &signo));
    *raw_size = 0;
    if (payload_format) *payload_format = 0;  // marker, no payload
    return Status::Ok();
  }
  if (magic == kFrameMagicGap) {
    uint64_t events;
    SWORD_RETURN_IF_ERROR(ReadGapBody(reader, raw_size, &events));
    if (payload_format) *payload_format = 0;  // 0 = gap marker, no payload
    return Status::Ok();
  }
  uint8_t format;
  std::string codec_name;
  uint64_t payload_size, checksum;
  SWORD_RETURN_IF_ERROR(ReadFrameHeader(reader, magic, &format, &codec_name,
                                        raw_size, &payload_size, &checksum));
  if (payload_format) *payload_format = format;
  return reader.Skip(payload_size);
}

}  // namespace sword
