// Block compressor interface.
//
// The paper flushes each thread's full trace buffer through a compressor
// before writing it to the log file, and reports that LZO, Snappy, and LZ4
// performed interchangeably (SWORD shipped LZO). This repo substitutes three
// from-scratch codecs behind the same interface:
//   raw  - identity (the "compression off" baseline)
//   rle  - byte-level run-length encoding
//   lzs  - LZ77-style with a hash-chain match finder (the default, standing
//          in for LZO-class codecs)
// bench_ablation_compression reproduces the paper's codec comparison.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace sword {

/// Reusable per-worker compression state. Codecs that need heap-allocated
/// working memory (lzs's hash-chain arrays) resize-and-reuse these vectors
/// instead of allocating per call; the flusher keeps one scratch per worker
/// so a steady stream of buffer flushes performs zero compression-side
/// allocations. `payload` is staging space for frame assembly
/// (compress/frame.*). Passing nullptr everywhere falls back to per-call
/// allocation, so scratch is purely an optimization.
struct CompressScratch {
  std::vector<uint32_t> chain_head;
  std::vector<uint32_t> chain_prev;
  Bytes payload;
};

class Compressor {
 public:
  virtual ~Compressor() = default;

  /// Stable codec name used in the frame header ("raw", "rle", "lzs").
  virtual const char* Name() const = 0;

  /// Compresses `input` appending to `out` (which is not cleared). `scratch`
  /// optionally provides reusable working memory (see CompressScratch).
  virtual Status Compress(const uint8_t* input, size_t n, Bytes* out,
                          CompressScratch* scratch = nullptr) const = 0;

  /// Decompresses exactly `decompressed_size` bytes into `out`.
  virtual Status Decompress(const uint8_t* input, size_t n, size_t decompressed_size,
                            Bytes* out) const = 0;
};

/// Returns the codec registered under `name`, or nullptr. Codecs are
/// stateless singletons; the returned pointer is never owned by the caller.
const Compressor* FindCompressor(const std::string& name);

/// All registered codec names, in registration order.
std::vector<std::string> CompressorNames();

/// The default codec used by the trace writer ("lzf", the fast LZ).
const Compressor* DefaultCompressor();

}  // namespace sword
