#include <cstring>

#include "compress/codecs.h"

namespace sword {
namespace {

// Fast greedy LZ codec (the "LZ4/Snappy-class" point in the codec space,
// where lzs is the "LZO-class" one). Single-probe hash table, no chains,
// LZ4-style literal-run skip acceleration. Emits the SAME token stream as
// lzs, so the two share a decoder:
//   literal token:  0x00 | varint(len) | bytes
//   match token:    0x01 | varint(len) varint(dist)
// Trace buffers (16-byte periodic records) compress ~3-4x at several
// hundred MB/s, which is what keeps SWORD's flush cost below the HB
// baseline's per-access checking cost.
class LzfCompressor final : public Compressor {
 public:
  static constexpr size_t kMinMatch = 4;
  static constexpr size_t kHashBits = 13;
  static constexpr size_t kHashSize = 1u << kHashBits;
  static constexpr uint32_t kNoPos = 0xffffffffu;

  const char* Name() const override { return "lzf"; }

  Status Compress(const uint8_t* input, size_t n, Bytes* out,
                  CompressScratch* /*scratch*/ = nullptr) const override {
    // The probe table lives on the stack (32 KB); no scratch needed.
    ByteWriter w(out);
    if (n == 0) return Status::Ok();
    out->reserve(out->size() + n / 2 + 64);

    uint32_t table[kHashSize];
    std::memset(table, 0xff, sizeof(table));

    size_t i = 0;
    size_t literal_start = 0;
    size_t literal_run = 0;

    auto flush_literals = [&](size_t end) {
      if (end > literal_start) {
        w.PutU8(0x00);
        w.PutVarU64(end - literal_start);
        w.PutRaw(input + literal_start, end - literal_start);
      }
    };

    while (i + kMinMatch <= n) {
      const uint32_t h = Hash(input + i);
      const uint32_t cand = table[h];
      table[h] = static_cast<uint32_t>(i);

      uint32_t cand_head, cur_head;
      if (cand != kNoPos) {
        std::memcpy(&cand_head, input + cand, 4);
        std::memcpy(&cur_head, input + i, 4);
      }
      if (cand != kNoPos && cand_head == cur_head) {
        size_t len = 4;
        const size_t max_len = n - i;
        while (len < max_len && input[cand + len] == input[i + len]) len++;
        flush_literals(i);
        w.PutU8(0x01);
        w.PutVarU64(len);
        w.PutVarU64(i - cand);
        // Seed the table at the match end so periodic data keeps matching.
        i += len;
        literal_start = i;
        literal_run = 0;
        if (i + kMinMatch <= n) {
          table[Hash(input + i - 2)] = static_cast<uint32_t>(i - 2);
        }
      } else {
        // Literal: accelerate through incompressible stretches.
        i += 1 + (literal_run >> 6);
        literal_run++;
      }
    }
    flush_literals(n);
    return Status::Ok();
  }

  Status Decompress(const uint8_t* input, size_t n, size_t decompressed_size,
                    Bytes* out) const override {
    // Token stream is shared with lzs; delegate to its decoder.
    return GetLzsCompressor()->Decompress(input, n, decompressed_size, out);
  }

 private:
  static uint32_t Hash(const uint8_t* p) {
    uint32_t v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> (32 - kHashBits);
  }
};

}  // namespace

const Compressor* GetLzfCompressor() {
  static const LzfCompressor instance;
  return &instance;
}

}  // namespace sword
