#include "ilp/ilp2.h"

#include <algorithm>
#include <cassert>

namespace sword::ilp {
namespace {

using i128 = __int128;

/// Exact rational number with i128 numerator/denominator (den > 0).
struct Rat {
  i128 num;
  i128 den;

  static Rat FromInt(i128 v) { return Rat{v, 1}; }

  bool operator<(const Rat& o) const { return num * o.den < o.num * den; }
  bool operator<=(const Rat& o) const { return num * o.den <= o.num * den; }
  bool operator==(const Rat& o) const { return num * o.den == o.num * den; }

  int64_t Floor() const {
    i128 q = num / den;
    if (num % den != 0 && num < 0) q--;
    return static_cast<int64_t>(q);
  }
  int64_t Ceil() const {
    i128 q = num / den;
    if (num % den != 0 && num > 0) q++;
    return static_cast<int64_t>(q);
  }
  bool IsInteger() const { return num % den == 0; }
};

Rat Normalize(i128 num, i128 den) {
  if (den < 0) {
    num = -num;
    den = -den;
  }
  return Rat{num, den};
}

struct RatPoint {
  Rat x;
  Rat y;
};

/// All constraints as a*x + b*y <= c, including the box bounds.
std::vector<Ineq> AllConstraints(const Ilp2Problem& p) {
  std::vector<Ineq> cs = p.constraints;
  cs.push_back({1, 0, p.hi_x});    // x <= hi_x
  cs.push_back({-1, 0, -p.lo_x});  // -x <= -lo_x
  cs.push_back({0, 1, p.hi_y});
  cs.push_back({0, -1, -p.lo_y});
  return cs;
}

bool SatisfiesAll(const std::vector<Ineq>& cs, const RatPoint& pt) {
  for (const Ineq& c : cs) {
    // a*x + b*y <= c  with x = xn/xd, y = yn/yd (common denominator product).
    const i128 lhs = static_cast<i128>(c.a) * pt.x.num * pt.y.den +
                     static_cast<i128>(c.b) * pt.y.num * pt.x.den;
    const i128 rhs = static_cast<i128>(c.c) * pt.x.den * pt.y.den;
    if (lhs > rhs) return false;
  }
  return true;
}

/// Solves the 2D LP relaxation exactly: returns any feasible rational point,
/// preferring vertices (intersections of two tight constraints). Feasible
/// regions of bounded 2-var systems are polygons, so if the region is
/// non-empty at least one vertex of the constraint arrangement lies in it.
std::optional<RatPoint> SolveLp2(const std::vector<Ineq>& cs) {
  const size_t m = cs.size();
  for (size_t i = 0; i < m; i++) {
    for (size_t j = i + 1; j < m; j++) {
      // Intersection of the two constraint *lines* a_i x + b_i y = c_i.
      const i128 det = static_cast<i128>(cs[i].a) * cs[j].b -
                       static_cast<i128>(cs[j].a) * cs[i].b;
      if (det == 0) continue;  // parallel
      const i128 xn = static_cast<i128>(cs[i].c) * cs[j].b -
                      static_cast<i128>(cs[j].c) * cs[i].b;
      const i128 yn = static_cast<i128>(cs[i].a) * cs[j].c -
                      static_cast<i128>(cs[j].a) * cs[i].c;
      RatPoint pt{Normalize(xn, det), Normalize(yn, det)};
      if (SatisfiesAll(cs, pt)) return pt;
    }
  }
  return std::nullopt;
}

std::optional<Point> Branch(const Ilp2Problem& p, Ilp2Stats* stats, int depth) {
  // Depth bound: each branch halves a variable's fractional window; 2D
  // problems close within a handful of levels, but stay safe.
  if (depth > 128) return std::nullopt;
  if (p.lo_x > p.hi_x || p.lo_y > p.hi_y) return std::nullopt;

  if (stats) stats->nodes_explored++;

  const std::vector<Ineq> cs = AllConstraints(p);
  if (stats) stats->lp_solves++;
  const auto relax = SolveLp2(cs);
  if (!relax) return std::nullopt;

  // Integral vertex: done.
  if (relax->x.IsInteger() && relax->y.IsInteger()) {
    return Point{relax->x.Floor(), relax->y.Floor()};
  }

  // Round the relaxation point and probe nearby integer points first; this
  // usually terminates without branching.
  for (int dx = 0; dx <= 1; dx++) {
    for (int dy = 0; dy <= 1; dy++) {
      const int64_t ix = relax->x.Floor() + dx;
      const int64_t iy = relax->y.Floor() + dy;
      RatPoint cand{Rat::FromInt(ix), Rat::FromInt(iy)};
      if (ix >= p.lo_x && ix <= p.hi_x && iy >= p.lo_y && iy <= p.hi_y &&
          SatisfiesAll(cs, cand)) {
        return Point{ix, iy};
      }
    }
  }

  // Branch on the first fractional variable.
  if (!relax->x.IsInteger()) {
    Ilp2Problem left = p;
    left.hi_x = std::min(left.hi_x, relax->x.Floor());
    if (auto r = Branch(left, stats, depth + 1)) return r;
    Ilp2Problem right = p;
    right.lo_x = std::max(right.lo_x, relax->x.Floor() + 1);
    return Branch(right, stats, depth + 1);
  }
  Ilp2Problem left = p;
  left.hi_y = std::min(left.hi_y, relax->y.Floor());
  if (auto r = Branch(left, stats, depth + 1)) return r;
  Ilp2Problem right = p;
  right.lo_y = std::max(right.lo_y, relax->y.Floor() + 1);
  return Branch(right, stats, depth + 1);
}

}  // namespace

std::optional<Point> SolveIlp2(const Ilp2Problem& problem, Ilp2Stats* stats) {
  return Branch(problem, stats, 0);
}

}  // namespace sword::ilp
