#include "ilp/ilp2.h"

#include <algorithm>
#include <cassert>

namespace sword::ilp {
namespace {

using i128 = __int128;

/// Exact rational number with i128 numerator/denominator (den > 0).
struct Rat {
  i128 num;
  i128 den;

  static Rat FromInt(i128 v) { return Rat{v, 1}; }

  bool operator<(const Rat& o) const { return num * o.den < o.num * den; }
  bool operator<=(const Rat& o) const { return num * o.den <= o.num * den; }
  bool operator==(const Rat& o) const { return num * o.den == o.num * den; }

  int64_t Floor() const {
    i128 q = num / den;
    if (num % den != 0 && num < 0) q--;
    return static_cast<int64_t>(q);
  }
  int64_t Ceil() const {
    i128 q = num / den;
    if (num % den != 0 && num > 0) q++;
    return static_cast<int64_t>(q);
  }
  bool IsInteger() const { return num % den == 0; }
};

Rat Normalize(i128 num, i128 den) {
  if (den < 0) {
    num = -num;
    den = -den;
  }
  return Rat{num, den};
}

struct RatPoint {
  Rat x;
  Rat y;
};

/// All constraints as a*x + b*y <= c, including the box bounds.
std::vector<Ineq> AllConstraints(const Ilp2Problem& p) {
  std::vector<Ineq> cs = p.constraints;
  cs.push_back({1, 0, p.hi_x});    // x <= hi_x
  cs.push_back({-1, 0, -p.lo_x});  // -x <= -lo_x
  cs.push_back({0, 1, p.hi_y});
  cs.push_back({0, -1, -p.lo_y});
  return cs;
}

bool SatisfiesAll(const std::vector<Ineq>& cs, const RatPoint& pt) {
  for (const Ineq& c : cs) {
    // a*x + b*y <= c  with x = xn/xd, y = yn/yd (common denominator product).
    const i128 lhs = static_cast<i128>(c.a) * pt.x.num * pt.y.den +
                     static_cast<i128>(c.b) * pt.y.num * pt.x.den;
    const i128 rhs = static_cast<i128>(c.c) * pt.x.den * pt.y.den;
    if (lhs > rhs) return false;
  }
  return true;
}

/// Solves the 2D LP relaxation exactly: returns any feasible rational point,
/// preferring vertices (intersections of two tight constraints). Feasible
/// regions of bounded 2-var systems are polygons, so if the region is
/// non-empty at least one vertex of the constraint arrangement lies in it.
std::optional<RatPoint> SolveLp2(const std::vector<Ineq>& cs) {
  const size_t m = cs.size();
  for (size_t i = 0; i < m; i++) {
    for (size_t j = i + 1; j < m; j++) {
      // Intersection of the two constraint *lines* a_i x + b_i y = c_i.
      const i128 det = static_cast<i128>(cs[i].a) * cs[j].b -
                       static_cast<i128>(cs[j].a) * cs[i].b;
      if (det == 0) continue;  // parallel
      const i128 xn = static_cast<i128>(cs[i].c) * cs[j].b -
                      static_cast<i128>(cs[j].c) * cs[i].b;
      const i128 yn = static_cast<i128>(cs[i].a) * cs[j].c -
                      static_cast<i128>(cs[j].a) * cs[i].c;
      RatPoint pt{Normalize(xn, det), Normalize(yn, det)};
      if (SatisfiesAll(cs, pt)) return pt;
    }
  }
  return std::nullopt;
}

/// Shared search state: node accounting against the budget. A zero budget
/// means unlimited.
struct Search {
  Ilp2Stats* stats = nullptr;
  int64_t max_nodes = 0;
  int64_t nodes = 0;
  bool exhausted = false;
};

Ilp2Result Branch(const Ilp2Problem& p, Search& search, int depth) {
  // Depth backstop: each branch halves a variable's fractional window; 2D
  // problems close within a handful of levels. Hitting it anyway means the
  // search was cut short, which must surface as a budget bail-out (treating
  // it as "infeasible" would silently drop a potential race).
  if (depth > 128) {
    search.exhausted = true;
    return {Ilp2Outcome::kBudgetExhausted, {0, 0}};
  }
  if (p.lo_x > p.hi_x || p.lo_y > p.hi_y) return {Ilp2Outcome::kInfeasible, {0, 0}};

  search.nodes++;
  if (search.stats) search.stats->nodes_explored++;
  if (search.max_nodes > 0 && search.nodes > search.max_nodes) {
    search.exhausted = true;
    return {Ilp2Outcome::kBudgetExhausted, {0, 0}};
  }

  const std::vector<Ineq> cs = AllConstraints(p);
  if (search.stats) search.stats->lp_solves++;
  const auto relax = SolveLp2(cs);
  if (!relax) return {Ilp2Outcome::kInfeasible, {0, 0}};

  // Integral vertex: done.
  if (relax->x.IsInteger() && relax->y.IsInteger()) {
    return {Ilp2Outcome::kFeasible, Point{relax->x.Floor(), relax->y.Floor()}};
  }

  // Round the relaxation point and probe nearby integer points first; this
  // usually terminates without branching.
  for (int dx = 0; dx <= 1; dx++) {
    for (int dy = 0; dy <= 1; dy++) {
      const int64_t ix = relax->x.Floor() + dx;
      const int64_t iy = relax->y.Floor() + dy;
      RatPoint cand{Rat::FromInt(ix), Rat::FromInt(iy)};
      if (ix >= p.lo_x && ix <= p.hi_x && iy >= p.lo_y && iy <= p.hi_y &&
          SatisfiesAll(cs, cand)) {
        return {Ilp2Outcome::kFeasible, Point{ix, iy}};
      }
    }
  }

  // Branch on the first fractional variable. A subtree that exhausted the
  // budget poisons the whole answer: the sibling may still find a feasible
  // point (feasible stays trustworthy), but "infeasible" no longer is.
  Ilp2Problem left = p, right = p;
  if (!relax->x.IsInteger()) {
    left.hi_x = std::min(left.hi_x, relax->x.Floor());
    right.lo_x = std::max(right.lo_x, relax->x.Floor() + 1);
  } else {
    left.hi_y = std::min(left.hi_y, relax->y.Floor());
    right.lo_y = std::max(right.lo_y, relax->y.Floor() + 1);
  }
  const Ilp2Result l = Branch(left, search, depth + 1);
  if (l.outcome == Ilp2Outcome::kFeasible) return l;
  const Ilp2Result r = Branch(right, search, depth + 1);
  if (r.outcome == Ilp2Outcome::kFeasible) return r;
  if (search.exhausted) return {Ilp2Outcome::kBudgetExhausted, {0, 0}};
  return {Ilp2Outcome::kInfeasible, {0, 0}};
}

}  // namespace

Ilp2Result SolveIlp2Bounded(const Ilp2Problem& problem, const Ilp2Limits& limits,
                            Ilp2Stats* stats) {
  Search search;
  search.stats = stats;
  search.max_nodes = limits.max_nodes;
  return Branch(problem, search, 0);
}

std::optional<Point> SolveIlp2(const Ilp2Problem& problem, Ilp2Stats* stats) {
  const Ilp2Result r = SolveIlp2Bounded(problem, {}, stats);
  if (r.outcome == Ilp2Outcome::kFeasible) return r.point;
  return std::nullopt;
}

}  // namespace sword::ilp
