// Strided-interval overlap queries (paper SIII-B).
//
// A summarized access interval covers the addresses
//   { b + delta*x + s : 0 <= x <= n, 0 <= s < z }
// (b = first element address, delta = stride, n = element count - 1,
// z = access size in bytes). Two intervals conflict iff they share at least
// one byte address:
//   delta0*x0 + b0 + s0 == delta1*x1 + b1 + s1     (the paper's constraint)
// A plain [lo,hi] range check is necessary but NOT sufficient - interleaved
// strided accesses (Fig. 4) overlap as ranges while touching disjoint bytes.
//
// Two exact engines decide the constraint:
//   kDiophantine - closed form: for each byte-offset difference d = s1 - s0
//                  (|d| < max(z0,z1), at most z0+z1-1 values) solve the
//                  bounded Diophantine equation delta0*x0 - delta1*x1 = b1-b0+d.
//   kIlp         - branch & bound ILP on the equivalent inequality system,
//                  mirroring the paper's GLPK formulation.
// Both return identical answers (property-tested); kDiophantine is the
// default because it is allocation-free and O(z) per query.
#pragma once

#include <cstdint>
#include <optional>

namespace sword::ilp {

/// A strided run of same-sized accesses.
struct StridedInterval {
  uint64_t base = 0;    // address of the first element
  uint64_t stride = 0;  // bytes between consecutive element starts (0 => single)
  uint64_t count = 1;   // number of elements (>= 1)
  uint32_t size = 1;    // bytes touched per element (>= 1)

  /// First byte touched.
  uint64_t lo() const { return base; }
  /// Last byte touched (inclusive).
  uint64_t hi() const { return base + stride * (count - 1) + size - 1; }
};

enum class OverlapEngine { kDiophantine, kIlp };

/// A witness conflict: element indices and the shared byte address.
struct OverlapWitness {
  uint64_t x0 = 0;
  uint64_t x1 = 0;
  uint64_t address = 0;
};

/// Per-query work cap. The analyzer's resource governor sets this so one
/// pathological node pair cannot stall a production analysis; 0 = unlimited.
/// A "step" is one solver stage: one Diophantine equation considered, or one
/// branch-and-bound node.
struct OverlapBudget {
  uint64_t max_steps = 0;
};

/// kUnknown: the step budget ran out before the query could be decided.
/// SOUNDNESS CONTRACT: kDisjoint is only ever returned for a fully decided
/// query - a budget bail-out degrades to kUnknown ("may overlap"), so a
/// potential race is surfaced (as unproven), never silently dropped.
enum class OverlapVerdict : uint8_t { kDisjoint, kOverlap, kUnknown };

struct OverlapResult {
  OverlapVerdict verdict = OverlapVerdict::kDisjoint;
  OverlapWitness witness;  // valid iff verdict == kOverlap
  uint64_t steps = 0;      // solver work actually spent
  bool via_fastpath = false;  // decided by a closed-form fast path, no engine
};

/// Budgeted form of Intersect: decides whether the two intervals share any
/// byte address within `budget.max_steps` of solver work. This legacy
/// overload never takes a closed-form fast path - it is the pure-engine
/// baseline that budget tests and the fast-path property tests compare
/// against.
OverlapResult IntersectBounded(const StridedInterval& a, const StridedInterval& b,
                               OverlapEngine engine, const OverlapBudget& budget);

/// Knobs for the options overload of IntersectBounded.
struct OverlapOptions {
  OverlapEngine engine = OverlapEngine::kDiophantine;
  OverlapBudget budget;
  /// Try IntersectClosedForm before the general engine. The fast paths are
  /// exact and budget-free; uncovered shapes fall through to `engine` under
  /// `budget` as before.
  bool allow_fastpath = true;
};

/// IntersectBounded with an optional closed-form fast-path stage in front of
/// the general engine. With allow_fastpath == false this is exactly the
/// legacy overload.
OverlapResult IntersectBounded(const StridedInterval& a, const StridedInterval& b,
                               const OverlapOptions& options);

/// Closed-form fast paths for the access shapes that dominate real traces:
///   - singleton x singleton and dense x dense (stride <= size: the interval
///     covers its whole [lo,hi] range, so a range check is exact),
///   - dense x anything and equal-stride sparse x sparse (a congruence walk
///     that solves only the byte-offset differences divisible by the stride
///     gcd, with the gcd hoisted out of the loop).
/// Returns nullopt for shapes it does not cover (sparse x sparse with
/// unequal strides) - the caller falls back to the general engine. When it
/// does answer, the verdict AND the witness are identical to what the
/// kDiophantine engine would produce for the same pair (property-tested);
/// kUnknown is never returned.
std::optional<OverlapResult> IntersectClosedForm(const StridedInterval& a,
                                                 const StridedInterval& b);

/// Decides whether the two intervals share any byte address; if so, returns
/// a witness. Exact for all inputs (unlimited budget).
std::optional<OverlapWitness> Intersect(const StridedInterval& a,
                                        const StridedInterval& b,
                                        OverlapEngine engine = OverlapEngine::kDiophantine);

/// Cheap necessary condition used to pre-filter tree queries.
inline bool RangesTouch(const StridedInterval& a, const StridedInterval& b) {
  return a.lo() <= b.hi() && b.lo() <= a.hi();
}

}  // namespace sword::ilp
