#include "ilp/diophantine.h"

#include <algorithm>
#include <cstdlib>

namespace sword::ilp {
namespace {

using i128 = __int128;

/// Ceil division for i128 (rounding toward +infinity).
i128 CeilDiv(i128 num, i128 den) {
  // den > 0 required.
  i128 q = num / den;
  if (num % den != 0 && num > 0) q++;
  return q;
}

/// Floor division for i128 (rounding toward -infinity).
i128 FloorDiv(i128 num, i128 den) {
  // den > 0 required.
  i128 q = num / den;
  if (num % den != 0 && num < 0) q--;
  return q;
}

}  // namespace

ExtGcdResult ExtGcd(int64_t a, int64_t b) {
  // Iterative extended Euclid on magnitudes, then fix signs.
  int64_t old_r = std::abs(a), r = std::abs(b);
  int64_t old_s = 1, s = 0;
  int64_t old_t = 0, t = 1;
  while (r != 0) {
    const int64_t q = old_r / r;
    int64_t tmp = old_r - q * r;
    old_r = r;
    r = tmp;
    tmp = old_s - q * s;
    old_s = s;
    s = tmp;
    tmp = old_t - q * t;
    old_t = t;
    t = tmp;
  }
  ExtGcdResult res;
  res.g = old_r;
  res.x = a < 0 ? -old_s : old_s;
  res.y = b < 0 ? -old_t : old_t;
  return res;
}

std::optional<DioSolution> SolveBoundedDiophantine(int64_t A, int64_t B, int64_t C,
                                                   int64_t lo_x, int64_t hi_x,
                                                   int64_t lo_y, int64_t hi_y,
                                                   DioStats* stats) {
  const ExtGcdResult e = (A != 0 && B != 0) ? ExtGcd(A, B) : ExtGcdResult{0, 0, 0};
  return SolveBoundedDiophantineHoisted(A, B, C, e, lo_x, hi_x, lo_y, hi_y,
                                        stats);
}

std::optional<DioSolution> SolveBoundedDiophantineHoisted(
    int64_t A, int64_t B, int64_t C, const ExtGcdResult& e, int64_t lo_x,
    int64_t hi_x, int64_t lo_y, int64_t hi_y, DioStats* stats) {
  if (stats) stats->steps++;
  if (lo_x > hi_x || lo_y > hi_y) return std::nullopt;

  // Degenerate axes reduce to one-variable divisibility checks.
  if (A == 0 && B == 0) {
    if (C != 0) return std::nullopt;
    return DioSolution{lo_x, lo_y};
  }
  if (A == 0) {
    if (C % B != 0) return std::nullopt;
    const int64_t y = C / B;
    if (y < lo_y || y > hi_y) return std::nullopt;
    return DioSolution{lo_x, y};
  }
  if (B == 0) {
    if (C % A != 0) return std::nullopt;
    const int64_t x = C / A;
    if (x < lo_x || x > hi_x) return std::nullopt;
    return DioSolution{x, lo_y};
  }

  if (stats) stats->steps++;  // the gcd + particular-solution stage
  if (C % e.g != 0) return std::nullopt;

  // Particular solution, then the general family
  //   x = x0 + (B/g) k,   y = y0 - (A/g) k.
  const i128 scale = C / e.g;
  const i128 x0 = static_cast<i128>(e.x) * scale;
  const i128 y0 = static_cast<i128>(e.y) * scale;
  const i128 bx = B / e.g;   // step of x per k
  const i128 ay = A / e.g;   // negative step of y per k

  // Intersect the k-ranges implied by both variable bounds.
  i128 k_lo = -static_cast<i128>(1) << 100;
  i128 k_hi = static_cast<i128>(1) << 100;

  auto clamp_from = [&](i128 base, i128 step, i128 lo, i128 hi) {
    // lo <= base + step*k <= hi
    if (step > 0) {
      k_lo = std::max(k_lo, CeilDiv(lo - base, step));
      k_hi = std::min(k_hi, FloorDiv(hi - base, step));
    } else if (step < 0) {
      // base + step*k in [lo, hi] with step < 0; normalize by negating step:
      const i128 pstep = -step;
      // base - pstep*k in [lo,hi]  =>  (base-hi)/pstep <= k <= (base-lo)/pstep
      k_lo = std::max(k_lo, CeilDiv(base - hi, pstep));
      k_hi = std::min(k_hi, FloorDiv(base - lo, pstep));
    } else {
      if (base < lo || base > hi) {
        k_lo = 1;
        k_hi = 0;  // empty
      }
    }
  };

  clamp_from(x0, bx, lo_x, hi_x);
  clamp_from(y0, -ay, lo_y, hi_y);

  if (k_lo > k_hi) return std::nullopt;

  const i128 k = k_lo;
  const i128 x = x0 + bx * k;
  const i128 y = y0 - ay * k;
  return DioSolution{static_cast<int64_t>(x), static_cast<int64_t>(y)};
}

}  // namespace sword::ilp
