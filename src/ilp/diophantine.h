// Exact bounded linear Diophantine equation solving.
//
// The paper (SIII-B) encodes "do two strided intervals share an address" as
// an integer linear constraint and hands it to GLPK. The constraint is
//   delta0*x0 + b0 + s0 = delta1*x1 + b1 + s1,   0<=xi<=ni, 0<=si<zi
// which, for each candidate byte offset, reduces to a two-variable bounded
// linear Diophantine equation  A*x + B*y = C.  This module decides those
// exactly with the extended Euclidean algorithm - no search, no floating
// point - and is the default engine behind ilp/overlap.h. The branch&bound
// ILP in ilp2.h is the alternative engine (closer to what GLPK does) used to
// cross-check.
#pragma once

#include <cstdint>
#include <optional>

namespace sword::ilp {

struct ExtGcdResult {
  int64_t g;  // gcd(a, b) >= 0
  int64_t x;  // Bezout coefficient: a*x + b*y == g
  int64_t y;
};

/// Extended Euclid. Handles negative inputs; g = gcd(|a|,|b|), and for
/// a == b == 0 returns g == 0, x == y == 0.
ExtGcdResult ExtGcd(int64_t a, int64_t b);

struct DioSolution {
  int64_t x;
  int64_t y;
};

/// Work accounting for budgeted callers (ilp/overlap.h): the solve is closed
/// form, so steps count its constant-cost stages (entry, gcd + bound
/// intersection), giving the overlap engine a concrete unit to charge its
/// step budget against - one unit is roughly one equation considered.
struct DioStats {
  uint64_t steps = 0;
};

/// Finds any integer solution of A*x + B*y == C with lo_x<=x<=hi_x and
/// lo_y<=y<=hi_y, or nullopt if none exists. Exact for all inputs whose
/// intermediate products fit in 128 bits (true for any address arithmetic).
std::optional<DioSolution> SolveBoundedDiophantine(int64_t A, int64_t B, int64_t C,
                                                   int64_t lo_x, int64_t hi_x,
                                                   int64_t lo_y, int64_t hi_y,
                                                   DioStats* stats = nullptr);

/// Same contract, same solution selection, and same step accounting as
/// SolveBoundedDiophantine, but with ExtGcd(A, B) precomputed by the caller.
/// The closed-form overlap fast paths (ilp/overlap.h) solve a family of
/// equations that differ only in C, so they hoist the gcd out of the loop.
/// `e` is only read when A != 0 and B != 0; the degenerate axes never need it.
std::optional<DioSolution> SolveBoundedDiophantineHoisted(
    int64_t A, int64_t B, int64_t C, const ExtGcdResult& e, int64_t lo_x,
    int64_t hi_x, int64_t lo_y, int64_t hi_y, DioStats* stats = nullptr);

}  // namespace sword::ilp
