#include "ilp/overlap.h"

#include <algorithm>

#include "ilp/diophantine.h"
#include "ilp/ilp2.h"

namespace sword::ilp {
namespace {

OverlapResult IntersectDiophantine(const StridedInterval& a,
                                   const StridedInterval& b,
                                   const OverlapBudget& budget) {
  OverlapResult result;
  // Dense intervals (stride <= size) cover their whole [lo,hi] range;
  // a range check is then exact and cheap.
  const bool a_dense = a.count == 1 || a.stride <= a.size;
  const bool b_dense = b.count == 1 || b.stride <= b.size;

  const int64_t A = static_cast<int64_t>(a.stride);
  const int64_t B = static_cast<int64_t>(b.stride);
  const int64_t base_diff =
      static_cast<int64_t>(b.base) - static_cast<int64_t>(a.base);

  if (a_dense && b_dense) {
    result.steps = 1;
    if (!RangesTouch(a, b)) return result;  // kDisjoint
    // Find a concrete witness address in the range intersection.
    const uint64_t addr = std::max(a.lo(), b.lo());
    auto index_of = [](const StridedInterval& iv, uint64_t ad) -> uint64_t {
      if (iv.count == 1 || iv.stride == 0) return 0;
      uint64_t x = (ad - iv.base) / iv.stride;
      if (x >= iv.count) x = iv.count - 1;
      return x;
    };
    result.verdict = OverlapVerdict::kOverlap;
    result.witness = OverlapWitness{index_of(a, addr), index_of(b, addr), addr};
    return result;
  }

  // General case: a.base + A*x0 + s0 == b.base + B*x1 + s1
  //   =>  A*x0 - B*x1 == base_diff + (s1 - s0) == base_diff + d
  // for some d in (-z0, z1). Solve one bounded Diophantine per d, charging
  // each equation's work against the budget. Exhaustion mid-enumeration
  // means the remaining offsets were never ruled out: kUnknown, not
  // kDisjoint.
  const int64_t z0 = a.size, z1 = b.size;
  for (int64_t d = -(z0 - 1); d <= z1 - 1; d++) {
    if (budget.max_steps > 0 && result.steps >= budget.max_steps) {
      result.verdict = OverlapVerdict::kUnknown;
      return result;
    }
    DioStats dio;
    const auto sol = SolveBoundedDiophantine(
        A, -B, base_diff + d, 0, static_cast<int64_t>(a.count) - 1, 0,
        static_cast<int64_t>(b.count) - 1, &dio);
    result.steps += dio.steps;
    if (sol) {
      // Shared address: a.base + A*x + s0 where s0 - s1 = -d; pick s0 so that
      // both offsets are in range: s0 in [max(0,-d), min(z0-1, z1-1-d)].
      const int64_t s0 = std::max<int64_t>(0, -d);
      const uint64_t addr = a.base + a.stride * static_cast<uint64_t>(sol->x) +
                            static_cast<uint64_t>(s0);
      result.verdict = OverlapVerdict::kOverlap;
      result.witness = OverlapWitness{static_cast<uint64_t>(sol->x),
                                      static_cast<uint64_t>(sol->y), addr};
      return result;
    }
  }
  return result;  // every offset ruled out: kDisjoint
}

OverlapResult IntersectIlp(const StridedInterval& a, const StridedInterval& b,
                           const OverlapBudget& budget) {
  OverlapResult result;
  // Mirror the paper's formulation as an inequality system per (s0, s1) pair:
  //   A*x0 - B*x1 == base_diff + s1 - s0
  // encoded as <= and >= halves. Access sizes are tiny (<= 16 bytes), so the
  // (s0, s1) enumeration is bounded by 256 small ILP solves, each charged
  // against the shared step budget by branch-and-bound nodes explored.
  const int64_t A = static_cast<int64_t>(a.stride);
  const int64_t B = static_cast<int64_t>(b.stride);
  const int64_t base_diff =
      static_cast<int64_t>(b.base) - static_cast<int64_t>(a.base);

  // A subproblem cut off by the budget (or the solver's depth backstop)
  // leaves its offset pair undecided; if no later pair proves overlap, the
  // honest answer is kUnknown.
  bool undecided = false;
  for (int64_t s0 = 0; s0 < a.size; s0++) {
    for (int64_t s1 = 0; s1 < b.size; s1++) {
      if (budget.max_steps > 0 && result.steps >= budget.max_steps) {
        result.verdict = OverlapVerdict::kUnknown;
        return result;
      }
      const int64_t C = base_diff + s1 - s0;
      Ilp2Problem prob;
      prob.lo_x = 0;
      prob.hi_x = static_cast<int64_t>(a.count) - 1;
      prob.lo_y = 0;
      prob.hi_y = static_cast<int64_t>(b.count) - 1;
      prob.constraints.push_back({A, -B, C});    //  A*x - B*y <= C
      prob.constraints.push_back({-A, B, -C});   //  A*x - B*y >= C
      Ilp2Limits limits;
      if (budget.max_steps > 0) {
        limits.max_nodes = static_cast<int64_t>(budget.max_steps - result.steps);
      }
      Ilp2Stats stats;
      const Ilp2Result sol = SolveIlp2Bounded(prob, limits, &stats);
      result.steps += static_cast<uint64_t>(stats.nodes_explored);
      if (sol.outcome == Ilp2Outcome::kFeasible) {
        const uint64_t addr = a.base +
                              a.stride * static_cast<uint64_t>(sol.point.x) +
                              static_cast<uint64_t>(s0);
        result.verdict = OverlapVerdict::kOverlap;
        result.witness = OverlapWitness{static_cast<uint64_t>(sol.point.x),
                                        static_cast<uint64_t>(sol.point.y), addr};
        return result;
      }
      if (sol.outcome == Ilp2Outcome::kBudgetExhausted) undecided = true;
    }
  }
  if (undecided) result.verdict = OverlapVerdict::kUnknown;
  return result;
}

}  // namespace

OverlapResult IntersectBounded(const StridedInterval& a, const StridedInterval& b,
                               OverlapEngine engine, const OverlapBudget& budget) {
  if (!RangesTouch(a, b)) return {};  // kDisjoint, exact and free
  if (engine == OverlapEngine::kIlp) return IntersectIlp(a, b, budget);
  return IntersectDiophantine(a, b, budget);
}

OverlapResult IntersectBounded(const StridedInterval& a, const StridedInterval& b,
                               const OverlapOptions& options) {
  if (!RangesTouch(a, b)) return {};  // kDisjoint, exact and free
  if (options.allow_fastpath) {
    if (const auto fast = IntersectClosedForm(a, b)) return *fast;
  }
  if (options.engine == OverlapEngine::kIlp) return IntersectIlp(a, b, options.budget);
  return IntersectDiophantine(a, b, options.budget);
}

std::optional<OverlapResult> IntersectClosedForm(const StridedInterval& a,
                                                 const StridedInterval& b) {
  const bool a_dense = a.count == 1 || a.stride <= a.size;
  const bool b_dense = b.count == 1 || b.stride <= b.size;

  if (a_dense && b_dense) {
    // Dense x dense (covers singleton x singleton): the intervals equal
    // their byte ranges, so the range check is the whole decision. Same
    // code as the kDiophantine dense branch, including witness selection.
    OverlapResult result;
    result.via_fastpath = true;
    result.steps = 1;
    if (!RangesTouch(a, b)) return result;  // kDisjoint
    const uint64_t addr = std::max(a.lo(), b.lo());
    auto index_of = [](const StridedInterval& iv, uint64_t ad) -> uint64_t {
      if (iv.count == 1 || iv.stride == 0) return 0;
      uint64_t x = (ad - iv.base) / iv.stride;
      if (x >= iv.count) x = iv.count - 1;
      return x;
    };
    result.verdict = OverlapVerdict::kOverlap;
    result.witness = OverlapWitness{index_of(a, addr), index_of(b, addr), addr};
    return result;
  }

  // Congruence walk, covering dense x sparse and equal-stride sparse pairs.
  // The general engine tries every byte-offset difference d in the window
  // (-z0, z1) and lets the solver reject the ones where base_diff + d is not
  // divisible by g = gcd(stride_a, stride_b); here we enumerate only the
  // divisible d (stepping by g) with the gcd hoisted, so an equal-stride-8
  // pair solves at most 2 equations instead of 15. Candidate order is the
  // engine's order restricted to solvable d, and each candidate runs the
  // identical solver, so the first hit - and therefore the witness - matches
  // the engine exactly.
  if (!(a_dense != b_dense || a.stride == b.stride)) {
    return std::nullopt;  // sparse x sparse, unequal strides: general engine
  }

  OverlapResult result;
  result.via_fastpath = true;
  const int64_t A = static_cast<int64_t>(a.stride);
  const int64_t B = static_cast<int64_t>(b.stride);
  const int64_t base_diff =
      static_cast<int64_t>(b.base) - static_cast<int64_t>(a.base);
  const int64_t z0 = a.size, z1 = b.size;
  const int64_t d_min = -(z0 - 1), d_max = z1 - 1;

  // The sparse side of the gate has stride > size >= 1, so A and B are never
  // both zero and g > 0. The degenerate one-zero-stride cases reduce to
  // divisibility by the non-zero stride, matching the solver's A==0 / B==0
  // branches.
  const ExtGcdResult e =
      (A != 0 && B != 0) ? ExtGcd(A, -B) : ExtGcdResult{0, 0, 0};
  const int64_t g = A == 0 ? std::abs(B) : (B == 0 ? std::abs(A) : e.g);

  // Smallest d >= d_min with (base_diff + d) divisible by g.
  const int64_t rem = ((base_diff + d_min) % g + g) % g;
  for (int64_t d = d_min + (rem == 0 ? 0 : g - rem); d <= d_max; d += g) {
    result.steps++;
    const auto sol = SolveBoundedDiophantineHoisted(
        A, -B, base_diff + d, e, 0, static_cast<int64_t>(a.count) - 1, 0,
        static_cast<int64_t>(b.count) - 1);
    if (sol) {
      const int64_t s0 = std::max<int64_t>(0, -d);
      const uint64_t addr = a.base + a.stride * static_cast<uint64_t>(sol->x) +
                            static_cast<uint64_t>(s0);
      result.verdict = OverlapVerdict::kOverlap;
      result.witness = OverlapWitness{static_cast<uint64_t>(sol->x),
                                      static_cast<uint64_t>(sol->y), addr};
      return result;
    }
  }
  return result;  // every solvable offset ruled out: kDisjoint
}

std::optional<OverlapWitness> Intersect(const StridedInterval& a,
                                        const StridedInterval& b,
                                        OverlapEngine engine) {
  const OverlapResult r = IntersectBounded(a, b, engine, {});
  if (r.verdict == OverlapVerdict::kOverlap) return r.witness;
  return std::nullopt;
}

}  // namespace sword::ilp
