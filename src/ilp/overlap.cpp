#include "ilp/overlap.h"

#include <algorithm>

#include "ilp/diophantine.h"
#include "ilp/ilp2.h"

namespace sword::ilp {
namespace {

std::optional<OverlapWitness> IntersectDiophantine(const StridedInterval& a,
                                                   const StridedInterval& b) {
  // Dense intervals (stride <= size) cover their whole [lo,hi] range;
  // a range check is then exact and cheap.
  const bool a_dense = a.count == 1 || a.stride <= a.size;
  const bool b_dense = b.count == 1 || b.stride <= b.size;

  const int64_t A = static_cast<int64_t>(a.stride);
  const int64_t B = static_cast<int64_t>(b.stride);
  const int64_t base_diff =
      static_cast<int64_t>(b.base) - static_cast<int64_t>(a.base);

  if (a_dense && b_dense) {
    if (!RangesTouch(a, b)) return std::nullopt;
    // Find a concrete witness address in the range intersection.
    const uint64_t addr = std::max(a.lo(), b.lo());
    auto index_of = [](const StridedInterval& iv, uint64_t ad) -> uint64_t {
      if (iv.count == 1 || iv.stride == 0) return 0;
      uint64_t x = (ad - iv.base) / iv.stride;
      if (x >= iv.count) x = iv.count - 1;
      return x;
    };
    return OverlapWitness{index_of(a, addr), index_of(b, addr), addr};
  }

  // General case: a.base + A*x0 + s0 == b.base + B*x1 + s1
  //   =>  A*x0 - B*x1 == base_diff + (s1 - s0) == base_diff + d
  // for some d in (-z0, z1). Solve one bounded Diophantine per d.
  const int64_t z0 = a.size, z1 = b.size;
  for (int64_t d = -(z0 - 1); d <= z1 - 1; d++) {
    const auto sol = SolveBoundedDiophantine(
        A, -B, base_diff + d, 0, static_cast<int64_t>(a.count) - 1, 0,
        static_cast<int64_t>(b.count) - 1);
    if (sol) {
      // Shared address: a.base + A*x + s0 where s0 - s1 = -d; pick s0 so that
      // both offsets are in range: s0 in [max(0,-d), min(z0-1, z1-1-d)].
      const int64_t s0 = std::max<int64_t>(0, -d);
      const uint64_t addr = a.base + a.stride * static_cast<uint64_t>(sol->x) +
                            static_cast<uint64_t>(s0);
      return OverlapWitness{static_cast<uint64_t>(sol->x),
                            static_cast<uint64_t>(sol->y), addr};
    }
  }
  return std::nullopt;
}

std::optional<OverlapWitness> IntersectIlp(const StridedInterval& a,
                                           const StridedInterval& b) {
  // Mirror the paper's formulation as an inequality system per (s0, s1) pair:
  //   A*x0 - B*x1 == base_diff + s1 - s0
  // encoded as <= and >= halves. Access sizes are tiny (<= 16 bytes), so the
  // (s0, s1) enumeration is bounded by 256 small ILP solves.
  const int64_t A = static_cast<int64_t>(a.stride);
  const int64_t B = static_cast<int64_t>(b.stride);
  const int64_t base_diff =
      static_cast<int64_t>(b.base) - static_cast<int64_t>(a.base);

  for (int64_t s0 = 0; s0 < a.size; s0++) {
    for (int64_t s1 = 0; s1 < b.size; s1++) {
      const int64_t C = base_diff + s1 - s0;
      Ilp2Problem prob;
      prob.lo_x = 0;
      prob.hi_x = static_cast<int64_t>(a.count) - 1;
      prob.lo_y = 0;
      prob.hi_y = static_cast<int64_t>(b.count) - 1;
      prob.constraints.push_back({A, -B, C});    //  A*x - B*y <= C
      prob.constraints.push_back({-A, B, -C});   //  A*x - B*y >= C
      if (auto pt = SolveIlp2(prob)) {
        const uint64_t addr = a.base + a.stride * static_cast<uint64_t>(pt->x) +
                              static_cast<uint64_t>(s0);
        return OverlapWitness{static_cast<uint64_t>(pt->x),
                              static_cast<uint64_t>(pt->y), addr};
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<OverlapWitness> Intersect(const StridedInterval& a,
                                        const StridedInterval& b,
                                        OverlapEngine engine) {
  if (!RangesTouch(a, b)) return std::nullopt;
  if (engine == OverlapEngine::kIlp) return IntersectIlp(a, b);
  return IntersectDiophantine(a, b);
}

}  // namespace sword::ilp
