// A small exact integer-linear-programming feasibility solver for systems of
// linear inequalities over two bounded integer variables.
//
// This is the "GLPK stand-in": the paper solves its interval-intersection
// constraints with an ILP solver, so we provide a real (if small) one -
// branch & bound over an exact rational 2D LP relaxation - alongside the
// closed-form Diophantine engine. Tests cross-check the two engines against
// brute-force enumeration; overlap.h lets callers choose the engine.
//
// All arithmetic is done in __int128 rationals, so the answers are exact for
// any 64-bit coefficients that arise from address arithmetic.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace sword::ilp {

/// One constraint: a*x + b*y <= c.
struct Ineq {
  int64_t a;
  int64_t b;
  int64_t c;
};

struct Point {
  int64_t x;
  int64_t y;
};

/// A feasibility problem over integers (x, y) with box bounds and extra
/// inequality constraints.
struct Ilp2Problem {
  int64_t lo_x = 0, hi_x = 0;
  int64_t lo_y = 0, hi_y = 0;
  std::vector<Ineq> constraints;
};

/// Statistics for tests/benchmarks: how much work branch & bound did.
struct Ilp2Stats {
  int nodes_explored = 0;
  int lp_solves = 0;
};

/// Search budget. Branch & bound on adversarial inputs can explore an
/// unbounded number of nodes; production analyses cap it so one pathological
/// overlap query cannot stall a multi-hour run.
struct Ilp2Limits {
  int64_t max_nodes = 0;  // branch-and-bound nodes; 0 = unlimited
};

/// Tri-state result of a budgeted solve. kBudgetExhausted means the search
/// was cut off before it could PROVE infeasibility - callers that need
/// soundness must treat it as "may be feasible", never as "infeasible".
enum class Ilp2Outcome : uint8_t { kFeasible, kInfeasible, kBudgetExhausted };

struct Ilp2Result {
  Ilp2Outcome outcome = Ilp2Outcome::kInfeasible;
  Point point{0, 0};  // valid iff outcome == kFeasible
};

/// Decides integer feasibility by branch & bound on the LP relaxation, with
/// a node budget. The relaxation is solved exactly by vertex enumeration
/// over constraint pairs (the problem has two variables, so every LP vertex
/// is the intersection of two tight constraints, including the box bounds).
/// Exhausting the budget - or the internal recursion-depth backstop - yields
/// kBudgetExhausted, never a claim of infeasibility.
Ilp2Result SolveIlp2Bounded(const Ilp2Problem& problem, const Ilp2Limits& limits,
                            Ilp2Stats* stats = nullptr);

/// Unbudgeted convenience wrapper; returns a feasible point or nullopt.
/// A depth-backstop bail-out maps to nullopt here, matching the historical
/// behavior; budget-sensitive callers use SolveIlp2Bounded.
std::optional<Point> SolveIlp2(const Ilp2Problem& problem, Ilp2Stats* stats = nullptr);

}  // namespace sword::ilp
