// A small exact integer-linear-programming feasibility solver for systems of
// linear inequalities over two bounded integer variables.
//
// This is the "GLPK stand-in": the paper solves its interval-intersection
// constraints with an ILP solver, so we provide a real (if small) one -
// branch & bound over an exact rational 2D LP relaxation - alongside the
// closed-form Diophantine engine. Tests cross-check the two engines against
// brute-force enumeration; overlap.h lets callers choose the engine.
//
// All arithmetic is done in __int128 rationals, so the answers are exact for
// any 64-bit coefficients that arise from address arithmetic.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace sword::ilp {

/// One constraint: a*x + b*y <= c.
struct Ineq {
  int64_t a;
  int64_t b;
  int64_t c;
};

struct Point {
  int64_t x;
  int64_t y;
};

/// A feasibility problem over integers (x, y) with box bounds and extra
/// inequality constraints.
struct Ilp2Problem {
  int64_t lo_x = 0, hi_x = 0;
  int64_t lo_y = 0, hi_y = 0;
  std::vector<Ineq> constraints;
};

/// Statistics for tests/benchmarks: how much work branch & bound did.
struct Ilp2Stats {
  int nodes_explored = 0;
  int lp_solves = 0;
};

/// Decides integer feasibility by branch & bound on the LP relaxation.
/// Returns a feasible integer point or nullopt. The relaxation is solved
/// exactly by vertex enumeration over constraint pairs (the problem has two
/// variables, so every LP vertex is the intersection of two tight
/// constraints, including the box bounds).
std::optional<Point> SolveIlp2(const Ilp2Problem& problem, Ilp2Stats* stats = nullptr);

}  // namespace sword::ilp
