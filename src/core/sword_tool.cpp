#include "core/sword_tool.h"

#include <csignal>
#include <cstdlib>

#include <cassert>

#include "common/fsutil.h"
#include "compress/compressor.h"
#include "somp/sink.h"
#include "trace/seal.h"

namespace sword::core {

namespace {

/// Live tools, for the crash-drain hooks. Registration happens in the
/// SwordTool ctor/dtor, so the list never holds a dangling pointer.
std::mutex g_live_tools_mutex;
std::vector<SwordTool*> g_live_tools;

void RegisterLiveTool(SwordTool* tool) {
  std::lock_guard lock(g_live_tools_mutex);
  g_live_tools.push_back(tool);
}

void UnregisterLiveTool(SwordTool* tool) {
  std::lock_guard lock(g_live_tools_mutex);
  for (auto it = g_live_tools.begin(); it != g_live_tools.end(); ++it) {
    if (*it == tool) {
      g_live_tools.erase(it);
      return;
    }
  }
}

/// Finalizes every live tool. Called from the atexit hook and (best-effort,
/// knowingly async-signal-unsafe - see InstallCrashDrain's contract) from
/// the termination-signal handler.
void DrainAllLiveTools() {
  std::vector<SwordTool*> tools;
  {
    std::lock_guard lock(g_live_tools_mutex);
    tools = g_live_tools;
  }
  for (SwordTool* tool : tools) (void)tool->Finalize();
}

void CrashDrainSignalHandler(int signo) {
  DrainAllLiveTools();
  // Re-raise with the default disposition so the exit status still says
  // "killed by signal" - the drain must not make a SIGTERM look clean.
  std::signal(signo, SIG_DFL);
  std::raise(signo);
}

}  // namespace

void InstallCrashDrain() {
  static bool installed = [] {
    std::atexit([] { DrainAllLiveTools(); });
    std::signal(SIGTERM, CrashDrainSignalHandler);
    std::signal(SIGINT, CrashDrainSignalHandler);
    return true;
  }();
  (void)installed;
}

namespace {

/// TLS handle: which tool instance this thread is registered with, and its
/// state there. Keyed by a process-unique instance id, NOT the tool's
/// address - a later tool allocated at a recycled address must not match.
struct TlsHandle {
  uint64_t owner_id = 0;
  void* state = nullptr;
};
thread_local TlsHandle tls_handle;

std::atomic<uint64_t> g_next_instance_id{1};

/// Sink trampolines: the instrumentation shim calls these through plain
/// function pointers with the thread's own ThreadTraceWriter as state -
/// no Runtime lookup, no virtual dispatch, no TLS handle re-check.
void SinkAccessThunk(void* state, uint64_t addr, uint8_t size, uint8_t flags,
                     somp::PcId pc) {
  static_cast<trace::ThreadTraceWriter*>(state)->AppendAccess(addr, size, flags, pc);
}

void SinkRangeThunk(void* state, uint64_t addr, uint64_t bytes, uint8_t flags,
                    somp::PcId pc) {
  static_cast<trace::ThreadTraceWriter*>(state)->AppendRange(addr, bytes, flags, pc);
}

trace::IntervalMeta MetaFrom(const somp::Ctx& ctx) {
  trace::IntervalMeta meta;
  meta.region = ctx.region();
  meta.parent_region = ctx.parent_region() == ~0ULL ? trace::IntervalMeta::kNoParent
                                                    : ctx.parent_region();
  meta.phase = ctx.barrier_phase();
  meta.label = ctx.label();
  meta.level = ctx.level();
  meta.lane = ctx.thread_num();
  meta.lockset = ctx.held_mutexes();
  return meta;
}

}  // namespace

SwordTool::SwordTool(SwordConfig config)
    : config_(std::move(config)),
      memory_("sword-rt"),
      governor_(config_.adaptive_degradation
                    ? std::make_unique<trace::DegradationGovernor>(
                          config_.governor_config)
                    : nullptr),
      prefilter_(config_.prefilter &&
                         config_.trace_format >= trace::kTraceFormatV3
                     ? std::make_unique<prefilter::Prefilter>(
                           prefilter::PrefilterConfig{
                               .solver_budget = config_.prefilter_budget})
                     : nullptr),
      flusher_(trace::FlusherConfig{.async = config_.async_flush,
                                    .lockfree = config_.lockfree,
                                    .workers = config_.flush_workers,
                                    .max_queued_jobs = config_.flush_queue_depth,
                                    .memory = &memory_,
                                    .backend = config_.backend,
                                    .watchdog_deadline_ms = config_.watchdog_ms,
                                    .governor = governor_.get()}),
      instance_id_(g_next_instance_id.fetch_add(1)) {
  assert(!config_.out_dir.empty());
  // Best-effort: a missing trace directory should not be fatal here; if it
  // truly cannot be created, the first writer I/O reports the real error.
  (void)MakeDirs(config_.out_dir);
  // Fatal-signal survivability: writers register their paths below; the
  // handler itself is process-global and idempotent.
  if (config_.crash_seal) trace::InstallSealHandlers();
  RegisterLiveTool(this);
}

SwordTool::~SwordTool() {
  (void)Finalize();
  UnregisterLiveTool(this);
}

SwordTool::ThreadState& SwordTool::State() {
  if (tls_handle.owner_id == instance_id_) {
    return *static_cast<ThreadState*>(tls_handle.state);
  }
  auto state = std::make_unique<ThreadState>();
  ThreadState* raw = state.get();
  uint32_t tid;
  {
    std::lock_guard lock(states_mutex_);
    tid = static_cast<uint32_t>(states_.size());
    states_.push_back(std::move(state));
  }
  trace::WriterConfig wc;
  wc.log_path = config_.out_dir + "/sword_t" + std::to_string(tid) + ".log";
  wc.meta_path = config_.out_dir + "/sword_t" + std::to_string(tid) + ".meta";
  wc.buffer_bytes = config_.buffer_bytes;
  wc.codec = FindCompressor(config_.codec);
  wc.flusher = &flusher_;
  wc.format = config_.trace_format;
  wc.access_filter = config_.access_filter;
  wc.coalesce = config_.coalesce;
  wc.meta_checkpoint_interval = config_.meta_checkpoint_interval;
  wc.backend = config_.backend;
  wc.governor = governor_.get();
  wc.crash_seal = config_.crash_seal;
  raw->writer = std::make_unique<trace::ThreadTraceWriter>(tid, wc);
  // The modeled fixed auxiliary overhead (OMPT + thread-local state).
  (void)memory_.Charge(kAuxBytesPerThread);

  tls_handle.owner_id = instance_id_;
  tls_handle.state = raw;
  return *raw;
}

void SwordTool::BeginSegmentFor(ThreadState& ts, somp::Ctx& ctx) {
  ts.writer->BeginSegment(MetaFrom(ctx));
  // (Re)install this thread's fast-path sink for the new segment. The
  // install stamps the current epoch and marks the thread online in the
  // sink QSBR domain; Configure/Finalize retire via that domain (or bump
  // the epoch as the fallback).
  //
  // With the pre-filter off the ORIGINAL writer-state thunks go in - the
  // ablation baseline pays zero extra cost. With it on, the thunks carry the
  // ThreadState so they can consult the thread's live episode first.
  if (prefilter_) {
    somp::InstallThreadSink(somp::ThreadEventSink{
        &PfAccessThunk, &PfRangeThunk, &ts, &ctx, 0});
  } else {
    somp::InstallThreadSink(somp::ThreadEventSink{
        &SinkAccessThunk, &SinkRangeThunk, ts.writer.get(), &ctx, 0});
  }
}

void SwordTool::PfAccessThunk(void* state, uint64_t addr, uint8_t size,
                              uint8_t flags, somp::PcId pc) {
  auto* ts = static_cast<ThreadState*>(state);
  if (ts->episode != nullptr &&
      prefilter::Prefilter::HandleAccess(ts->episode, addr, size, flags, pc,
                                         ts->writer.get())) {
    return;  // elided under proof; the receipt covers it
  }
  ts->writer->AppendAccess(addr, size, flags, pc);
}

void SwordTool::PfRangeThunk(void* state, uint64_t addr, uint64_t bytes,
                             uint8_t flags, somp::PcId pc) {
  auto* ts = static_cast<ThreadState*>(state);
  if (ts->episode != nullptr) {
    prefilter::Prefilter::HandleRange(ts->episode, ts->writer.get());
  }
  ts->writer->AppendRange(addr, bytes, flags, pc);
}

void SwordTool::SuspendEpisodeOf(ThreadState& ts) {
  if (ts.episode != nullptr) {
    prefilter_->SuspendEpisode(ts.episode, ts.writer.get());
  }
}

void SwordTool::OnImplicitTaskBegin(somp::Ctx& ctx) {
  ThreadState& ts = State();
  // A nested region starting inside a tracked loop body interrupts the
  // episode; its receipts must land before the parent's segment closes.
  if (prefilter_) SuspendEpisodeOf(ts);
  // Pause the parent's segment when a nested region starts on this thread.
  if (ts.writer->HasOpenSegment()) ts.writer->EndSegment();
  ts.ctx_stack.push_back(&ctx);
  BeginSegmentFor(ts, ctx);
}

void SwordTool::OnImplicitTaskEnd(somp::Ctx& ctx) {
  ThreadState& ts = State();
  assert(!ts.ctx_stack.empty() && ts.ctx_stack.back() == &ctx);
  (void)ctx;
  ts.ctx_stack.pop_back();
  somp::ClearThreadSink();  // ctx is about to die; never let a sink outlive it
  // Resume the paused parent segment, if any.
  if (!ts.ctx_stack.empty()) BeginSegmentFor(ts, *ts.ctx_stack.back());
}

void SwordTool::OnBarrierEnter(somp::Ctx& ctx, uint64_t phase, somp::BarrierKind kind) {
  (void)ctx;
  (void)phase;
  (void)kind;
  ThreadState& ts = State();
  if (prefilter_) SuspendEpisodeOf(ts);  // receipts before the segment closes
  if (ts.writer->HasOpenSegment()) ts.writer->EndSegment();
  somp::ClearThreadSink();  // no segment is open while waiting at the barrier
}

void SwordTool::OnBarrierExit(somp::Ctx& ctx, uint64_t phase) {
  (void)phase;
  ThreadState& ts = State();
  BeginSegmentFor(ts, ctx);  // ctx's label/phase already advanced
}

void SwordTool::OnWorkshareBegin(somp::Ctx& ctx, const somp::WorkshareInfo& ws) {
  if (!prefilter_) return;
  ThreadState& ts = State();
  if (ts.pf_depth++ == 0) {
    ts.episode = prefilter_->BeginEpisode(ws, ctx.region(), ctx.thread_num(),
                                          ctx.num_threads(), ctx.level());
    if (ts.episode != nullptr) ts.episode->iter = &ctx.workshare()->iter;
  } else {
    // A workshare nested in a tracked loop body: park the outer episode.
    SuspendEpisodeOf(ts);
  }
}

void SwordTool::OnWorkshareEnd(somp::Ctx& ctx, const somp::WorkshareInfo& ws) {
  (void)ctx;
  (void)ws;
  if (!prefilter_) return;
  ThreadState& ts = State();
  if (ts.pf_depth > 0 && --ts.pf_depth == 0 && ts.episode != nullptr) {
    // Before the loop's implicit barrier: receipts join the open segment.
    prefilter_->EndEpisode(ts.episode, ts.writer.get());
    ts.episode = nullptr;
  }
}

void SwordTool::OnMutexAcquired(somp::Ctx& ctx, somp::MutexId mutex) {
  (void)ctx;
  ThreadState& ts = State();
  // Lock acquisition inside a tracked loop body: flush receipts first so the
  // elided prefix sits BEFORE the acquire event in the stream (lockset
  // tracking depends on that order), then stop eliding.
  if (prefilter_) SuspendEpisodeOf(ts);
  ts.writer->Append(trace::RawEvent::MutexAcquire(mutex));
}

void SwordTool::OnMutexReleased(somp::Ctx& ctx, somp::MutexId mutex) {
  (void)ctx;
  ThreadState& ts = State();
  ts.writer->Append(trace::RawEvent::MutexRelease(mutex));
}

void SwordTool::OnAccess(somp::Ctx& ctx, uint64_t addr, uint8_t size, uint8_t flags,
                         somp::PcId pc) {
  // Virtual-path fallback (stale or missing sink); same writer entry point
  // as the sink thunk, so the logged stream is identical either way.
  (void)ctx;
  ThreadState& ts = State();
  if (prefilter_ && ts.episode != nullptr &&
      prefilter::Prefilter::HandleAccess(ts.episode, addr, size, flags, pc,
                                         ts.writer.get())) {
    return;
  }
  ts.writer->AppendAccess(addr, size, flags, pc);
}

void SwordTool::OnRangeAccess(somp::Ctx& ctx, uint64_t addr, uint64_t bytes,
                              uint8_t flags, somp::PcId pc) {
  (void)ctx;
  ThreadState& ts = State();
  if (prefilter_ && ts.episode != nullptr) {
    prefilter::Prefilter::HandleRange(ts.episode, ts.writer.get());
  }
  ts.writer->AppendRange(addr, bytes, flags, pc);
}

void SwordTool::OnRuntimeShutdown() { (void)Finalize(); }

Status SwordTool::Finalize() {
  std::lock_guard lock(states_mutex_);
  if (finalized_) return status_;
  finalized_ = true;
  // Writers are about to be finished; no thread may still hold a sink into
  // one. Normally (Finalize outside parallel regions) every thread already
  // cleared its sink at a barrier or task end and the QSBR grace passes
  // immediately - no epoch bump, parked threads keep their fast path warm.
  // A failed grace (crash drain mid-region) or the --no-lockfree ablation
  // falls back to the stop-the-world epoch bump; stale sinks then fail the
  // per-access epoch check and take the virtual path.
  if (config_.lockfree) {
    (void)somp::RetireSinks();
  } else {
    somp::InvalidateSinks();
  }
  // A normal Finalize runs outside parallel regions, where no episode is
  // live. The crash-drain path can arrive mid-loop: flush each episode's
  // receipts (best-effort, same data-race caveat as the drain itself) so
  // the sealed trace stays address-equivalent up to the seal point. The
  // episode structs are deliberately leaked - the owning thread may still
  // hold the pointer.
  if (prefilter_) {
    for (auto& ts : states_) {
      if (ts->episode != nullptr) prefilter_->SuspendEpisode(ts->episode, ts->writer.get());
    }
  }
  // Order matters: push every writer's buffered events into the pipeline,
  // wait for the pipeline to hit the disk (or give up and account drops),
  // and only THEN write the final metas - whose v3 headers fold in the
  // flusher's per-log drop totals, complete only after the drain.
  for (auto& ts : states_) ts->writer->FlushEvents();
  flusher_.Drain();
  for (auto& ts : states_) {
    const Status s = ts->writer->Finish();
    if (!s.ok() && status_.ok()) status_ = s;
  }
  flusher_.Drain();  // Finish can flush a tail frame; settle it too
  const Status fs = flusher_.status();
  if (!fs.ok() && status_.ok()) status_ = fs;
  // The pre-filter's verdict dossier, for sword-dump --prefilter and the
  // tests. Best-effort like the meta checkpoints.
  if (prefilter_) {
    const std::string json = prefilter_->StateJson();
    (void)WriteFileAtomic(config_.out_dir + "/prefilter.json",
                          Bytes(json.begin(), json.end()), config_.backend);
  }
  return status_;
}

std::vector<std::string> SwordTool::LogPaths() const {
  std::lock_guard lock(states_mutex_);
  std::vector<std::string> paths;
  for (size_t i = 0; i < states_.size(); i++) {
    paths.push_back(config_.out_dir + "/sword_t" + std::to_string(i) + ".log");
  }
  return paths;
}

std::vector<std::string> SwordTool::MetaPaths() const {
  std::lock_guard lock(states_mutex_);
  std::vector<std::string> paths;
  for (size_t i = 0; i < states_.size(); i++) {
    paths.push_back(config_.out_dir + "/sword_t" + std::to_string(i) + ".meta");
  }
  return paths;
}

uint32_t SwordTool::ThreadCount() const {
  std::lock_guard lock(states_mutex_);
  return static_cast<uint32_t>(states_.size());
}

uint64_t SwordTool::Flushes() const {
  std::lock_guard lock(states_mutex_);
  uint64_t total = 0;
  for (const auto& ts : states_) total += ts->writer->flushes();
  return total;
}

uint64_t SwordTool::EventsLogged() const {
  std::lock_guard lock(states_mutex_);
  uint64_t total = 0;
  for (const auto& ts : states_) total += ts->writer->events_logged();
  return total;
}

uint64_t SwordTool::EventsSuppressed() const {
  std::lock_guard lock(states_mutex_);
  uint64_t total = 0;
  for (const auto& ts : states_) total += ts->writer->events_suppressed();
  return total;
}

uint64_t SwordTool::EventsCoalesced() const {
  std::lock_guard lock(states_mutex_);
  uint64_t total = 0;
  for (const auto& ts : states_) total += ts->writer->events_coalesced();
  return total;
}

uint64_t SwordTool::RunsEmitted() const {
  std::lock_guard lock(states_mutex_);
  uint64_t total = 0;
  for (const auto& ts : states_) total += ts->writer->runs_emitted();
  return total;
}

uint64_t SwordTool::AccessesDropped() const {
  std::lock_guard lock(states_mutex_);
  uint64_t total = 0;
  for (const auto& ts : states_) total += ts->writer->accesses_dropped();
  return total;
}

uint64_t SwordTool::DegradedDropped() const {
  std::lock_guard lock(states_mutex_);
  uint64_t total = 0;
  for (const auto& ts : states_) total += ts->writer->degraded_dropped();
  return total;
}

uint64_t SwordTool::EventsElided() const {
  std::lock_guard lock(states_mutex_);
  uint64_t total = 0;
  for (const auto& ts : states_) total += ts->writer->events_elided();
  return total;
}

uint64_t SwordTool::ElidedLost() const {
  std::lock_guard lock(states_mutex_);
  uint64_t total = 0;
  for (const auto& ts : states_) total += ts->writer->elided_lost();
  return total;
}

}  // namespace sword::core
