// SwordTool - the online half of SWORD (paper SIII-A).
//
// Registered as the somp runtime's Tool, it performs the paper's
// bounded-memory log collection:
//  - each SWORD thread (one per OS thread that ever executes parallel work)
//    owns a ThreadTraceWriter with a FIXED 2 MB buffer; full buffers are
//    compressed and flushed asynchronously - threads never coordinate;
//  - OMPT-style callbacks delimit barrier-interval segments, each emitted as
//    one meta-file record (Table I) carrying the offset-span label;
//  - instrumented accesses and mutex acquire/release become 16-byte log
//    events inside the current segment;
//  - total memory is N_threads * (buffer + fixed auxiliary state), the
//    paper's N*(B+C) formula - independent of application footprint.
//
// After the program under test finishes, Finalize() closes all writers and
// drains the flusher; offline::Analyze (src/offline) then consumes the
// log/meta files.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/memtrack.h"
#include "common/status.h"
#include "prefilter/prefilter.h"
#include "somp/runtime.h"
#include "somp/tool.h"
#include "trace/flusher.h"
#include "trace/governor.h"
#include "trace/writer.h"

namespace sword::core {

struct SwordConfig {
  std::string out_dir;                       // required; must exist
  uint64_t buffer_bytes = 2 * 1024 * 1024;   // per-thread trace buffer
  std::string codec = "lzf";                 // "raw", "rle", "lzs", or "lzf"
  bool async_flush = true;
  /// Lock-free trace plane (ring-buffer flush lanes, lock-free buffer pool,
  /// QSBR sink retirement). Ablation: race reports are byte-identical with
  /// it on or off (`--no-lockfree`); only cross-thread coordination differs.
  bool lockfree = true;
  uint32_t flush_workers = 0;                // 0 = min(4, hw_concurrency)
  size_t flush_queue_depth = trace::Flusher::kDefaultMaxQueuedJobs;
  uint8_t trace_format = trace::kTraceFormatV3;  // event encoding version
  /// Online fast-path knobs (effective for trace format v3 only; see
  /// WriterConfig). Both are ablations: race reports are byte-identical
  /// with them on or off.
  bool access_filter = true;
  bool coalesce = true;
  /// Meta checkpoint cadence in closed segments (0 = only at Finalize); see
  /// WriterConfig::meta_checkpoint_interval.
  uint32_t meta_checkpoint_interval = 1;
  /// Write layer for all trace I/O; null = real filesystem. Tests plug a
  /// sword::testing::FaultFile here.
  FileBackend* backend = nullptr;
  /// Install the async-signal-safe fatal-signal sealing handlers
  /// (SIGSEGV/SIGBUS/SIGABRT/SIGFPE/SIGILL -> crash-tagged meta checkpoint
  /// + in-band crash marker) and register every writer with the
  /// SealRegistry. Safe to leave on: it changes nothing unless the process
  /// actually dies of a fatal signal.
  bool crash_seal = true;
  /// Enable the adaptive degradation governor (see trace/governor.h). Off
  /// by default for library embedders (full fidelity, block-on-pressure);
  /// sword-run turns it on for production runs.
  bool adaptive_degradation = false;
  /// Governor thresholds (used only when adaptive_degradation is set).
  trace::GovernorConfig governor_config;
  /// Flusher I/O watchdog deadline in ms (0 = producers may block without
  /// bound, the historical behavior). sword-run sets this for production.
  uint64_t watchdog_ms = 0;
  /// Static pre-filter (src/prefilter): prove worksharing sites race-free
  /// ahead of time and elide their per-access logging, appending exact
  /// footprint receipts instead. Requires trace_format v3 (receipts are
  /// strided-run events); silently stays off on older formats. Off by
  /// default for library embedders; sword-run turns it on
  /// (`--no-prefilter` is the ablation).
  bool prefilter = false;
  /// Solver step budget per model-pair disjointness proof.
  uint64_t prefilter_budget = 4096;
};

/// The paper's measured per-thread auxiliary overhead (thread-local state +
/// OMPT bookkeeping): ~1.3 MB. We charge it as a modeled constant so the
/// memory benches reproduce the ~3.3 MB/thread total.
constexpr uint64_t kAuxBytesPerThread = 1340 * 1024;

class SwordTool final : public somp::Tool {
 public:
  explicit SwordTool(SwordConfig config);
  ~SwordTool() override;

  // --- somp::Tool ---
  void OnImplicitTaskBegin(somp::Ctx& ctx) override;
  void OnImplicitTaskEnd(somp::Ctx& ctx) override;
  void OnBarrierEnter(somp::Ctx& ctx, uint64_t phase, somp::BarrierKind kind) override;
  void OnBarrierExit(somp::Ctx& ctx, uint64_t phase) override;
  void OnWorkshareBegin(somp::Ctx& ctx, const somp::WorkshareInfo& ws) override;
  void OnWorkshareEnd(somp::Ctx& ctx, const somp::WorkshareInfo& ws) override;
  void OnMutexAcquired(somp::Ctx& ctx, somp::MutexId mutex) override;
  void OnMutexReleased(somp::Ctx& ctx, somp::MutexId mutex) override;
  void OnAccess(somp::Ctx& ctx, uint64_t addr, uint8_t size, uint8_t flags,
                somp::PcId pc) override;
  void OnRangeAccess(somp::Ctx& ctx, uint64_t addr, uint64_t bytes,
                     uint8_t flags, somp::PcId pc) override;
  void OnRuntimeShutdown() override;

  /// Closes all writers, drains I/O, returns first error. Idempotent;
  /// called automatically by OnRuntimeShutdown.
  Status Finalize();

  /// First I/O error the flush pipeline hit (sticky); Ok on a clean run.
  /// Valid any time; complete after Finalize.
  Status IoStatus() const { return flusher_.status(); }

  /// Paths of the per-thread trace files written so far (valid after
  /// Finalize).
  std::vector<std::string> LogPaths() const;
  std::vector<std::string> MetaPaths() const;

  /// Bounded memory in use: N * (buffer + aux). The headline number.
  uint64_t MemoryBytes() const { return memory_.current(); }
  uint64_t PeakMemoryBytes() const { return memory_.peak(); }

  uint32_t ThreadCount() const;
  /// Aggregated per-thread writer counters, summed on demand - there is no
  /// shared per-access atomic anywhere on the hot path. EventsLogged counts
  /// ENCODED events (a coalesced run counts once).
  uint64_t EventsLogged() const;
  uint64_t EventsSuppressed() const;
  uint64_t EventsCoalesced() const;
  uint64_t RunsEmitted() const;
  uint64_t AccessesDropped() const;
  /// Accesses shed on the degradation governor's (or an exhausted buffer
  /// pool's) orders, summed over writers. Exact; also in each meta file.
  uint64_t DegradedDropped() const;
  /// Accesses the static pre-filter elided under a disjointness proof, each
  /// covered by an exact footprint receipt (the kElided channel - never
  /// mixed with the dropped/degraded counters above).
  uint64_t EventsElided() const;
  /// Elided accesses whose receipt could not land in a segment (loss).
  uint64_t ElidedLost() const;

  /// The pre-filter, or null when SwordConfig::prefilter is off (or the
  /// trace format predates v3). Exposed for sword-dump and the tests.
  prefilter::Prefilter* prefilter() { return prefilter_.get(); }
  uint64_t BytesWritten() const { return flusher_.bytes_written(); }
  uint64_t Flushes() const;

  /// The degradation governor, or null when adaptive_degradation is off.
  trace::DegradationGovernor* governor() { return governor_.get(); }

  /// The flusher's buffer pool. Exposed for deterministic fault injection
  /// (FaultPlan alloc_fail -> BufferPool::InjectAcquireFailures).
  trace::BufferPool& buffer_pool() { return flusher_.pool(); }

  /// Flush-pipeline observability (queue pressure, producer stalls,
  /// per-worker throughput) for the overhead tables.
  trace::FlusherStats FlushStats() const { return flusher_.stats(); }

 private:
  struct ThreadState {
    std::unique_ptr<trace::ThreadTraceWriter> writer;
    // Stack of contexts whose segments this OS thread has open/paused;
    // the nested-parallelism case pauses the parent's segment.
    std::vector<somp::Ctx*> ctx_stack;
    // Pre-filter state: the innermost tracked workshare episode on this OS
    // thread (null outside worksharing loops or when the site is rejected)
    // and the workshare nesting depth. Only the outermost loop is tracked;
    // nested constructs suspend the episode.
    prefilter::LaneEpisode* episode = nullptr;
    uint32_t pf_depth = 0;
  };

  ThreadState& State();
  void BeginSegmentFor(ThreadState& ts, somp::Ctx& ctx);
  /// Flushes the episode's receipts and parks it (call BEFORE appending the
  /// interrupting event or closing the segment).
  void SuspendEpisodeOf(ThreadState& ts);

  static void PfAccessThunk(void* state, uint64_t addr, uint8_t size,
                            uint8_t flags, somp::PcId pc);
  static void PfRangeThunk(void* state, uint64_t addr, uint64_t bytes,
                           uint8_t flags, somp::PcId pc);

  SwordConfig config_;
  MemoryScope memory_;
  std::unique_ptr<trace::DegradationGovernor> governor_;  // before flusher_
  std::unique_ptr<prefilter::Prefilter> prefilter_;       // null = off
  trace::Flusher flusher_;

  mutable std::mutex states_mutex_;
  std::vector<std::unique_ptr<ThreadState>> states_;
  const uint64_t instance_id_;
  bool finalized_ = false;
  Status status_;
};

/// Installs best-effort SIGTERM/SIGINT handlers and an atexit hook that
/// Finalize() every live SwordTool, so a terminated production run leaves
/// its logs and meta files analyzable up to the last flushed frame instead
/// of losing everything after the final checkpoint. Idempotent.
///
/// Best-effort by design: Finalize takes locks and allocates, which is not
/// async-signal-safe - a handler that fires while a flusher lock is held can
/// deadlock or die. That is an acceptable trade: without the handler the
/// trace tail is ALWAYS lost on SIGTERM; with it the tail is usually saved,
/// and when the handler does die the on-disk state is no worse than the
/// kill -9 case, which salvage-mode analysis already handles.
void InstallCrashDrain();

}  // namespace sword::core
