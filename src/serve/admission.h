// Admission control for the serve daemon, mirroring the online tracer's
// degradation governor (trace/governor.h): explicit load levels, immediate
// step-down on pressure, hysteretic step-up after a calm streak, and every
// transition recorded with a reason bitmask. Where the tracer sheds EVENTS,
// the service sheds RUNS - and shedding is always visible (counted and
// reported), never a silent drop.
//
//   kOpen       admit everything (level 0)
//   kThrottled  admit, but the service stretches its poll cadence (level 1)
//   kShedNew    refuse NEW runs; queued/in-flight runs finish (level 2)
//   kShedAll    refuse new runs AND park queued analyses (level 3); only
//               already-running work proceeds
//
// Pressure inputs are plain counters fed by the single-threaded service
// tick (the daemon's control socket marshals onto that thread), so unlike
// the tracer's governor no atomics are needed; the same packed
// seq|reason|level snapshot shape is kept for the status surface.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/clock.h"

namespace sword::serve {

enum class AdmissionLevel : uint8_t {
  kOpen = 0,
  kThrottled = 1,
  kShedNew = 2,
  kShedAll = 3,
};

constexpr uint8_t kAdmissionLevels = 4;

const char* AdmissionLevelName(uint8_t level);

/// Reason bits recorded with each transition.
constexpr uint8_t kAdmitReasonInflight = 0x01;   // in-flight runs at the cap
constexpr uint8_t kAdmitReasonQueueDepth = 0x02; // queue depth over the soft limit
constexpr uint8_t kAdmitReasonQueueWait = 0x04;  // oldest queued run past deadline
constexpr uint8_t kAdmitReasonLatency = 0x08;    // analysis-latency EWMA
constexpr uint8_t kAdmitReasonRecovered = 0x20;  // step back up (calm streak)

struct AdmissionConfig {
  /// Runs analyzed concurrently... which for the single-analyzer service
  /// means "accepted for analysis but not yet finished" (ingesting counts).
  uint32_t max_inflight = 8;
  /// Queued (settled, awaiting analysis) runs beyond this trip a step-down.
  uint32_t queue_soft_limit = 16;
  /// A queued run older than this trips a step-down: the queue is not just
  /// long but STALE, the canonical overload signal.
  uint64_t queue_deadline_ns = 30ull * 1'000'000'000;
  /// Analysis-latency EWMA (nanos per run, alpha 1/4) that trips a step-down.
  uint64_t latency_step_ns = 0;  // 0 = latency signal disabled
  /// Consecutive calm Evaluate() calls before stepping one level back up.
  uint32_t calm_evals_to_recover = 4;
};

struct AdmissionTransition {
  uint64_t eval = 0;     // Evaluate() ordinal at the transition
  uint8_t level = 0;     // level ENTERED
  uint8_t reason = 0;    // kAdmitReason* bits
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config = {});

  /// Folds the current load picture and steps the level. Call once per
  /// service tick. Step-down is immediate on any tripped signal; step-up is
  /// one level per `calm_evals_to_recover` consecutive calm calls.
  void Evaluate(uint32_t inflight, uint32_t queue_depth,
                uint64_t oldest_queued_wait_ns);

  /// Feeds one finished analysis's wall time into the latency EWMA.
  void NoteAnalysisNanos(uint64_t nanos);

  /// Would a brand-new run be admitted right now?
  bool AdmitNew() const { return level_ < static_cast<uint8_t>(AdmissionLevel::kShedNew); }
  /// May a queued run start its analysis?
  bool AdmitWork() const { return level_ < static_cast<uint8_t>(AdmissionLevel::kShedAll); }

  AdmissionLevel level() const { return static_cast<AdmissionLevel>(level_); }
  uint8_t level_ordinal() const { return level_; }

  /// seq<<16 | reason<<8 | level, same packing as the tracer's governor so
  /// status consumers read both the same way.
  uint64_t PackedState() const {
    return (seq_ << 16) | (static_cast<uint64_t>(last_reason_) << 8) | level_;
  }

  const std::vector<AdmissionTransition>& transitions() const { return transitions_; }
  uint64_t evaluations() const { return evals_; }
  uint64_t runs_shed() const { return runs_shed_; }
  /// The service reports every refusal here so "shed" is a counted outcome.
  void NoteRunShed() { runs_shed_++; }

  const AdmissionConfig& config() const { return config_; }

 private:
  void Transition(uint8_t new_level, uint8_t reason);

  const AdmissionConfig config_;
  uint8_t level_ = 0;
  uint8_t last_reason_ = 0;
  uint64_t seq_ = 0;
  uint64_t evals_ = 0;
  uint32_t calm_streak_ = 0;
  uint64_t latency_ewma_ = 0;  // nanos per analysis, alpha 1/4
  uint64_t runs_shed_ = 0;
  std::vector<AdmissionTransition> transitions_;
};

}  // namespace sword::serve
