#include "serve/ingest.h"

#include <unistd.h>

#include <algorithm>

#include "common/fsutil.h"
#include "trace/meta.h"

namespace sword::serve {

namespace {

/// Per-thread trace file names, matching the writer's sword_t<k>.{log,meta}
/// layout. Enumeration stops at the first thread index with neither file.
std::string LogPath(const std::string& dir, uint32_t tid) {
  return dir + "/sword_t" + std::to_string(tid) + ".log";
}
std::string MetaPath(const std::string& dir, uint32_t tid) {
  return dir + "/sword_t" + std::to_string(tid) + ".meta";
}

class RealIngestIoImpl final : public IngestIo {
 public:
  Result<Bytes> ReadFile(const std::string& path) override {
    return ReadFileBytes(path);
  }
  Result<uint64_t> FileSize(const std::string& path) override {
    return sword::FileSize(path);
  }
  bool Exists(const std::string& path) override { return FileExists(path); }
};

}  // namespace

IngestIo& RealIngestIo() {
  static RealIngestIoImpl io;
  return io;
}

// ---------------------------------------------------------- FaultIngestIo

void FaultIngestIo::ApplyPlan(const testing::FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  transient_left_ = plan.read_transient;
  fail_from_ = plan.read_fail_from;
  fail_count_ = plan.read_fail_count;
  slow_usec_ = plan.read_slow_usec;
  slow_from_ = plan.read_slow_from;
  slow_count_ = plan.read_slow_count;
}

void FaultIngestIo::TransientReads(uint32_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  transient_left_ = count;
}

void FaultIngestIo::FailReads(uint64_t from_call, uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_from_ = from_call;
  fail_count_ = count;
}

void FaultIngestIo::SlowReads(uint32_t usec, uint64_t from_call, uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  slow_usec_ = usec;
  slow_from_ = from_call;
  slow_count_ = count;
}

void FaultIngestIo::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  transient_left_ = 0;
  fail_from_ = fail_count_ = 0;
  slow_usec_ = 0;
  slow_from_ = slow_count_ = 0;
  read_calls_ = 0;
  transients_injected_ = 0;
  failures_injected_ = 0;
}

uint64_t FaultIngestIo::read_calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return read_calls_;
}
uint64_t FaultIngestIo::transients_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transients_injected_;
}
uint64_t FaultIngestIo::failures_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_injected_;
}

Result<Bytes> FaultIngestIo::ReadFile(const std::string& path) {
  uint32_t sleep_usec = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t call = ++read_calls_;
    if (slow_count_ > 0 && call >= slow_from_ && call < slow_from_ + slow_count_) {
      sleep_usec = slow_usec_;
    }
    if (transient_left_ > 0) {
      --transient_left_;
      ++transients_injected_;
      return Status::Unavailable("injected transient read error: " + path);
    }
    if (fail_count_ > 0 && call >= fail_from_ && call < fail_from_ + fail_count_) {
      ++failures_injected_;
      return Status::Io("injected read failure: " + path);
    }
  }
  if (sleep_usec > 0) ::usleep(sleep_usec);
  return base_->ReadFile(path);
}

Result<uint64_t> FaultIngestIo::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

bool FaultIngestIo::Exists(const std::string& path) { return base_->Exists(path); }

// ------------------------------------------------------------- RunIngestor

const char* IngestStateName(IngestState s) {
  switch (s) {
    case IngestState::kGrowing: return "growing";
    case IngestState::kSettled: return "settled";
    case IngestState::kFailed: return "failed";
  }
  return "?";
}

RunIngestor::RunIngestor(std::string dir, const IngestConfig& config,
                         IngestIo* io, ClockFn now)
    : dir_(std::move(dir)),
      config_(config),
      io_(io ? io : &RealIngestIo()),
      now_(now ? std::move(now) : SteadyClock()) {}

Result<Bytes> RunIngestor::ReadWithRetry(const std::string& path) {
  // Transient failures within ONE Poll retry immediately up to the attempt
  // budget (cheap - the fault is EINTR-shaped); an exhausted budget arms the
  // cross-poll backoff so the next Poll waits out the bounded exponential
  // delay instead of hammering a struggling filesystem.
  Status last;
  for (uint32_t attempt = 0; attempt < config_.max_read_attempts; attempt++) {
    auto r = io_->ReadFile(path);
    stats_.reads++;
    if (r.ok()) return r;
    last = r.status();
    if (last.code() != ErrorCode::kUnavailable) break;  // hard: no retry
    stats_.read_retries++;
  }
  return last;
}

Result<uint64_t> RunIngestor::Fingerprint() {
  // fnv-style fold of (file count, sizes): any append or new thread file
  // changes it. Probing sizes is infallible-ish; a file that vanished
  // between Exists and FileSize just reads as absent this poll.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  uint64_t bytes = 0;
  for (uint32_t tid = 0;; tid++) {
    const std::string log = LogPath(dir_, tid);
    const std::string meta = MetaPath(dir_, tid);
    const bool has_log = io_->Exists(log);
    const bool has_meta = io_->Exists(meta);
    if (!has_log && !has_meta) break;
    if (has_log) {
      auto s = io_->FileSize(log);
      const uint64_t n = s.ok() ? s.value() : 0;
      mix(n + 1);
      bytes += n;
    } else {
      mix(0);
    }
    if (has_meta) {
      auto s = io_->FileSize(meta);
      const uint64_t n = s.ok() ? s.value() : 0;
      mix(n + 1);
      bytes += n;
    } else {
      mix(0);
    }
  }
  if (bytes > stats_.bytes_seen) stats_.bytes_seen = bytes;
  return h;
}

void RunIngestor::LiveProbe() {
  // Barrier-interval-granularity probe of a LIVE run: decode every present
  // meta through the salvage decoder. A torn checkpoint tail is the
  // expected shape of a mid-write snapshot and decodes to its clean prefix;
  // only a hard read failure counts against the run.
  stats_.live_probes++;
  uint64_t intervals = 0;
  for (uint32_t tid = 0;; tid++) {
    const std::string meta = MetaPath(dir_, tid);
    const bool has_meta = io_->Exists(meta);
    if (!has_meta && !io_->Exists(LogPath(dir_, tid))) break;
    if (!has_meta) continue;
    auto data = ReadWithRetry(meta);
    if (!data.ok()) {
      last_error_ = data.status();
      hard_failures_++;
      stats_.hard_failures++;
      if (hard_failures_ >= config_.max_hard_failures) {
        state_ = IngestState::kFailed;
        return;
      }
      // Arm the cross-poll backoff: leave the run growing, retry later.
      backoff_ns_ = backoff_ns_ == 0
                        ? config_.backoff_base_ns
                        : std::min<uint64_t>(backoff_ns_ * 2, config_.backoff_max_ns);
      next_attempt_ns_ = now_() + backoff_ns_;
      return;
    }
    trace::MetaFile mf;
    uint64_t dropped = 0;
    if (trace::MetaFile::Decode(data.value(), &mf, /*salvage=*/true, &dropped).ok()) {
      intervals += mf.intervals.size();
    }
    // An undecodable meta on a LIVE run is not failure - the writer may be
    // mid-rename. The settled-run analysis is where damage gets judged.
  }
  if (intervals > stats_.intervals_seen) stats_.intervals_seen = intervals;
  // Probes succeeded: the backoff (if any) has served its purpose.
  backoff_ns_ = 0;
  next_attempt_ns_ = 0;
}

IngestState RunIngestor::Poll() {
  if (state_ != IngestState::kGrowing) return state_;
  if (next_attempt_ns_ != 0 && now_() < next_attempt_ns_) {
    return state_;  // backing off; not due yet
  }
  stats_.polls++;

  // The explicit completion marker wins over quiesce detection: a writer
  // that knows it is done should not cost quiesce_polls of latency.
  if (io_->Exists(dir_ + "/sword.done")) {
    state_ = IngestState::kSettled;
    return state_;
  }

  auto fp = Fingerprint();
  if (!fp.ok()) {
    last_error_ = fp.status();
    if (++hard_failures_ >= config_.max_hard_failures) {
      state_ = IngestState::kFailed;
    }
    return state_;
  }
  if (fp.value() == last_fingerprint_) {
    if (++unchanged_polls_ >= config_.quiesce_polls) {
      state_ = IngestState::kSettled;
    }
    return state_;
  }
  last_fingerprint_ = fp.value();
  unchanged_polls_ = 0;
  LiveProbe();
  return state_;
}

}  // namespace sword::serve
