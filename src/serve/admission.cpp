#include "serve/admission.h"

namespace sword::serve {

const char* AdmissionLevelName(uint8_t level) {
  switch (level) {
    case 0: return "open";
    case 1: return "throttled";
    case 2: return "shed-new";
    case 3: return "shed-all";
  }
  return "?";
}

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config) {}

void AdmissionController::NoteAnalysisNanos(uint64_t nanos) {
  // Same alpha-1/4 EWMA the tracer's governor uses for append latency.
  latency_ewma_ = latency_ewma_ == 0 ? nanos : (latency_ewma_ * 3 + nanos) / 4;
}

void AdmissionController::Transition(uint8_t new_level, uint8_t reason) {
  if (new_level == level_) return;
  level_ = new_level;
  last_reason_ = reason;
  seq_++;
  transitions_.push_back({evals_, new_level, reason});
}

void AdmissionController::Evaluate(uint32_t inflight, uint32_t queue_depth,
                                   uint64_t oldest_queued_wait_ns) {
  evals_++;

  uint8_t pressure = 0;
  if (inflight >= config_.max_inflight) pressure |= kAdmitReasonInflight;
  if (queue_depth > config_.queue_soft_limit) pressure |= kAdmitReasonQueueDepth;
  if (config_.queue_deadline_ns > 0 &&
      oldest_queued_wait_ns > config_.queue_deadline_ns) {
    pressure |= kAdmitReasonQueueWait;
  }
  if (config_.latency_step_ns > 0 && latency_ewma_ > config_.latency_step_ns) {
    pressure |= kAdmitReasonLatency;
  }

  if (pressure != 0) {
    calm_streak_ = 0;
    // Step down IMMEDIATELY - overload is now, hysteresis is only for the
    // way back up (the governor's asymmetry, and for the same reason: a
    // flapping load source must not make admission oscillate per tick).
    if (level_ + 1 < kAdmissionLevels) Transition(level_ + 1, pressure);
    return;
  }

  if (level_ > 0 && ++calm_streak_ >= config_.calm_evals_to_recover) {
    calm_streak_ = 0;
    Transition(level_ - 1, kAdmitReasonRecovered);
  }
}

}  // namespace sword::serve
