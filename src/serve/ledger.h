// The serve daemon's durable memory: one append-only file of finished-run
// verdicts under the state directory.
//
// Restart recovery is the whole point. A daemon that is kill -9'd
// mid-aggregation comes back, replays the ledger, and its aggregate equals
// what it was - byte-identical per-run verdicts - because each record holds
// the run's complete canonical outcome (race list in the journal's wire
// form via SerializeRaceList, status, trace fingerprint, quarantine
// reason). Runs recorded here are never re-analyzed on restart unless
// their trace fingerprint changed.
//
// The file uses the exact framing discipline of the analysis journal
// (magic | varu64 size | fnv1a64 crc | payload): a record torn by
// mid-append death fails its checksum, is dropped on load with accounting,
// and its run is simply re-analyzed after restart. Appends go through the
// injected FileBackend so the chaos harness can ENOSPC the ledger
// deterministically - a failed append degrades restart granularity, never
// correctness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/fsutil.h"
#include "common/status.h"
#include "serve/aggregate.h"

namespace sword::serve {

constexpr uint32_t kLedgerHeaderMagic = 0x53575348;  // "SWSH"
constexpr uint32_t kLedgerRunMagic = 0x53575352;     // "SWSR"
constexpr uint8_t kLedgerVersion = 1;

/// One finished run: its verdict plus how it finished. quarantine != 0
/// means the run was contained, not analyzed; its race list is empty.
struct LedgerRecord {
  RunVerdict verdict;
  std::string dir;         // trace directory (restart re-registration)
  uint8_t quarantine = 0;  // QuarantineReason ordinal, 0 = clean finish
};

struct LedgerLoadResult {
  std::vector<LedgerRecord> records;  // valid records, file order
  uint64_t valid_bytes = 0;           // prefix covered by valid records
  uint64_t records_dropped = 0;       // torn/corrupt tail records discarded
};

/// Parses a ledger file. Fails only when the file is unreadable or the
/// header is invalid; damaged run records degrade with accounting.
Result<LedgerLoadResult> LoadLedger(const std::string& path);

class LedgerWriter {
 public:
  /// Opens `path` for appending: creates it (atomic header write) when
  /// absent, otherwise truncates any torn tail at `valid_bytes` from a
  /// prior Load. `backend` null = real filesystem.
  static Result<LedgerWriter> Open(const std::string& path,
                                   uint64_t valid_bytes,
                                   FileBackend* backend = nullptr);

  /// Appends one finished run. Failures are counted, not fatal: a missing
  /// record only means that run is re-analyzed after a restart.
  Status Append(const LedgerRecord& record);

  uint64_t append_failures() const { return append_failures_; }
  const std::string& path() const { return path_; }

 private:
  LedgerWriter(std::string path, FileBackend* backend)
      : path_(std::move(path)), backend_(backend) {}

  std::string path_;
  FileBackend* backend_;  // never null after Open
  uint64_t append_failures_ = 0;
};

}  // namespace sword::serve
