#include "serve/aggregate.h"

#include <cstdio>

namespace sword::serve {

bool ReportAggregator::AddRun(const RunVerdict& verdict) {
  auto it = runs_.find(verdict.run);
  if (it != runs_.end()) {
    if (it->second.fingerprint == verdict.fingerprint) return false;  // dup
    // Re-traced run: the old verdict is stale in full. Derived sites must
    // be rebuilt because removal is not an incremental merge.
    it->second = verdict;
    Rebuild();
    return true;
  }
  runs_.emplace(verdict.run, verdict);
  MergeVerdict(verdict);
  return true;
}

void ReportAggregator::MergeVerdict(const RunVerdict& verdict) {
  // Within one run the report list is already deduped by code pair, so each
  // verdict contributes at most 1 to a pair's run count.
  for (const RaceReport& race : verdict.races) {
    const uint64_t key = race.Key();
    auto [it, inserted] = sites_.try_emplace(key);
    Site& site = it->second;
    const bool proven = race.confidence == RaceConfidence::kProven;
    if (inserted) {
      site.sample = race;
      site.sample_run = verdict.run;
    } else {
      // Order-free sample election: proven beats unproven; within a tier
      // the lexicographically smallest run name wins. Any merge order of
      // the same verdict set converges on the same sample.
      const bool have_proven =
          site.sample.confidence == RaceConfidence::kProven;
      const bool better = (proven && !have_proven) ||
                          (proven == have_proven && verdict.run < site.sample_run);
      if (better) {
        site.sample = race;
        site.sample_run = verdict.run;
      }
    }
    site.runs++;
    if (proven) site.proven_runs++;
  }
}

void ReportAggregator::Rebuild() {
  sites_.clear();
  for (const auto& [name, verdict] : runs_) MergeVerdict(verdict);
}

std::vector<ReportAggregator::Site> ReportAggregator::Sites() const {
  std::vector<Site> out;
  out.reserve(sites_.size());
  for (const auto& [key, site] : sites_) out.push_back(site);
  return out;
}

uint64_t ReportAggregator::races_total() const {
  uint64_t n = 0;
  for (const auto& [name, verdict] : runs_) n += verdict.races.size();
  return n;
}

std::string ReportAggregator::RenderJson() const {
  // Pairs in key order; addresses as decimal strings (JSON numbers lose
  // 64-bit precision), matching offline/report.cpp's convention.
  std::string out = "{\"runs\":" + std::to_string(runs_.size());
  out += ",\"sites\":[";
  bool first = true;
  for (const auto& [key, site] : sites_) {
    if (!first) out += ",";
    first = false;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"pc1\":%u,\"pc2\":%u,\"address\":\"%llu\","
                  "\"size1\":%u,\"size2\":%u,\"write1\":%s,\"write2\":%s,"
                  "\"proven\":%s,\"runs\":%llu,\"proven_runs\":%llu,"
                  "\"sample_run\":\"%s\"}",
                  site.sample.pc1, site.sample.pc2,
                  static_cast<unsigned long long>(site.sample.address),
                  unsigned(site.sample.size1), unsigned(site.sample.size2),
                  site.sample.write1 ? "true" : "false",
                  site.sample.write2 ? "true" : "false",
                  site.sample.confidence == RaceConfidence::kProven ? "true"
                                                                    : "false",
                  static_cast<unsigned long long>(site.runs),
                  static_cast<unsigned long long>(site.proven_runs),
                  site.sample_run.c_str());
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace sword::serve
