// Incremental trace ingest for the serve daemon.
//
// A fleet run's trace directory is a moving target: the traced application
// is still appending to sword_t<k>.log and checkpointing sword_t<k>.meta
// while the daemon watches. The ingestor's job is to decide, per run, where
// it is in its lifecycle:
//
//   kGrowing  - files are still changing (or too young to tell). The
//               ingestor probes the metas through the salvage decoder at
//               barrier-interval granularity: a torn tail is expected here,
//               not damage, so probes never fail a run for being mid-write.
//   kSettled  - the directory has not changed for `quiesce_polls`
//               consecutive polls, or the writer dropped a `sword.done`
//               marker. Only a settled run gets the canonical analysis -
//               the one whose verdict must be byte-identical run over run.
//   kFailed   - reads kept failing hard past the retry budget. The service
//               quarantines the run with a counted reason.
//
// All reads go through IngestIo, the read-side twin of FileBackend:
// RealIngestIo talks to the filesystem, FaultIngestIo injects deterministic
// transient/hard/slow read faults from the same FaultPlan string the write
// path uses (`read_transient=K;read_fail@F+C;read_slow=USEC@F+C`).
// Transient failures are retried with bounded exponential backoff governed
// by the injected clock; hard failures are counted and eventually fatal.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/faultfs.h"
#include "common/status.h"
#include "serve/clock.h"

namespace sword::serve {

/// Read-side I/O the ingestor goes through. Single-attempt, like
/// FileBackend: the CALLER owns retries, which keeps them testable.
class IngestIo {
 public:
  virtual ~IngestIo() = default;
  /// Whole-file read. kUnavailable = transient, retry; other codes = hard.
  virtual Result<Bytes> ReadFile(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  virtual bool Exists(const std::string& path) = 0;
};

/// The real filesystem.
IngestIo& RealIngestIo();

/// Deterministic read-fault injector, call-numbered like FaultFile's append
/// windows (1-based, counting ReadFile calls only - Exists/FileSize probes
/// stay cheap and reliable so tests can aim faults at data reads).
class FaultIngestIo final : public IngestIo {
 public:
  explicit FaultIngestIo(IngestIo* base = nullptr)
      : base_(base ? base : &RealIngestIo()) {}

  /// Installs the read-side knobs of a parsed fault plan.
  void ApplyPlan(const testing::FaultPlan& plan);
  void TransientReads(uint32_t count);
  void FailReads(uint64_t from_call, uint64_t count);
  void SlowReads(uint32_t usec, uint64_t from_call, uint64_t count);
  void Reset();

  uint64_t read_calls() const;
  uint64_t transients_injected() const;
  uint64_t failures_injected() const;

  Result<Bytes> ReadFile(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  bool Exists(const std::string& path) override;

 private:
  IngestIo* base_;
  mutable std::mutex mu_;
  uint32_t transient_left_ = 0;
  uint64_t fail_from_ = 0, fail_count_ = 0;
  uint32_t slow_usec_ = 0;
  uint64_t slow_from_ = 0, slow_count_ = 0;
  uint64_t read_calls_ = 0;
  uint64_t transients_injected_ = 0;
  uint64_t failures_injected_ = 0;
};

struct IngestConfig {
  /// Total attempts per read, including the first (transient errors only).
  uint32_t max_read_attempts = 5;
  /// Base retry backoff; doubles per retry, capped. The ingestor does not
  /// sleep - it re-arms and tells the caller when the next attempt is due,
  /// so a single service thread can interleave many backed-off runs.
  uint64_t backoff_base_ns = 1'000'000;
  uint64_t backoff_max_ns = 64'000'000;
  /// Consecutive unchanged polls before a run counts as settled.
  uint32_t quiesce_polls = 3;
  /// Hard read failures tolerated across a run's lifetime before kFailed.
  uint32_t max_hard_failures = 3;
};

enum class IngestState : uint8_t { kGrowing = 0, kSettled = 1, kFailed = 2 };

const char* IngestStateName(IngestState s);

/// One poll's outcome, for the service's accounting.
struct IngestPollStats {
  uint64_t polls = 0;
  uint64_t reads = 0;
  uint64_t read_retries = 0;        // transient errors absorbed by backoff
  uint64_t hard_failures = 0;
  uint64_t intervals_seen = 0;      // barrier-interval high-water mark
  uint64_t bytes_seen = 0;          // directory size high-water mark
  uint64_t live_probes = 0;         // salvage meta decodes on a growing run
};

/// Watches one trace directory. Drive with Poll(now) from the service tick;
/// between polls the ingestor holds no file handles, so a run directory can
/// vanish or be replaced without wedging anything.
class RunIngestor {
 public:
  RunIngestor(std::string dir, const IngestConfig& config, IngestIo* io,
              ClockFn now = {});

  /// One observation of the directory. Cheap when nothing changed; does a
  /// salvage meta probe when something did. Returns the state after the
  /// poll. Honors retry backoff: a call before the backoff deadline is a
  /// no-op returning the current state.
  IngestState Poll();

  IngestState state() const { return state_; }
  const std::string& dir() const { return dir_; }
  const IngestPollStats& stats() const { return stats_; }
  const Status& last_error() const { return last_error_; }
  /// True once `sword.done` exists or quiesce_polls unchanged polls passed.
  bool settled() const { return state_ == IngestState::kSettled; }

 private:
  /// Reads `path` through the io layer with the transient-retry budget.
  /// Hard failures and exhausted budgets count toward the run's failure
  /// allowance.
  Result<Bytes> ReadWithRetry(const std::string& path);

  /// Fingerprints the directory: per-thread log/meta sizes summed. A
  /// changed fingerprint resets the quiesce streak.
  Result<uint64_t> Fingerprint();

  /// Decodes every present meta through the salvage decoder and counts
  /// intervals - the barrier-interval granularity probe. A torn tail is
  /// fine; a hard read failure is not.
  void LiveProbe();

  std::string dir_;
  IngestConfig config_;
  IngestIo* io_;
  ClockFn now_;

  IngestState state_ = IngestState::kGrowing;
  IngestPollStats stats_;
  Status last_error_;
  uint64_t last_fingerprint_ = 0;
  uint32_t unchanged_polls_ = 0;
  uint32_t hard_failures_ = 0;
  // Backoff arming: 0 = not backing off.
  uint64_t next_attempt_ns_ = 0;
  uint64_t backoff_ns_ = 0;
};

}  // namespace sword::serve
