#include "serve/service.h"

#include <algorithm>
#include <exception>

#include "common/fsutil.h"
#include "offline/tracestore.h"

namespace sword::serve {
namespace {

std::string Basename(const std::string& path) {
  std::string p = path;
  while (p.size() > 1 && p.back() == '/') p.pop_back();
  const size_t slash = p.find_last_of('/');
  return slash == std::string::npos ? p : p.substr(slash + 1);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// The same cheap trace fingerprint the journal header binds: enough to
/// notice a run was re-traced, cheap enough to compute on every finish.
uint64_t FingerprintOf(const offline::TraceStore& store) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(store.thread_count());
  mix(store.TotalIntervals());
  mix(store.TotalLogBytes());
  return h;
}

}  // namespace

const char* RunPhaseName(RunPhase p) {
  switch (p) {
    case RunPhase::kIngesting: return "ingesting";
    case RunPhase::kQueued: return "queued";
    case RunPhase::kDone: return "done";
    case RunPhase::kQuarantined: return "quarantined";
  }
  return "?";
}

const char* QuarantineReasonName(QuarantineReason r) {
  switch (r) {
    case QuarantineReason::kNone: return "none";
    case QuarantineReason::kIngestFailure: return "ingest-failure";
    case QuarantineReason::kOpenFailure: return "open-failure";
    case QuarantineReason::kAnalysisFailure: return "analysis-failure";
    case QuarantineReason::kAnalyzerCrash: return "analyzer-crash";
  }
  return "?";
}

AnalysisService::AnalysisService(ServiceConfig config, offline::AnalyzerEnv env,
                                 IngestIo* io, ClockFn now)
    : config_(std::move(config)),
      env_(std::move(env)),
      io_(io ? io : &RealIngestIo()),
      now_(now ? std::move(now) : SteadyClock()),
      analyzer_(config_.analysis_threads, env_),
      admission_(config_.admission) {}

std::string AnalysisService::JournalPathForRun(const std::string& name) const {
  return config_.state_dir + "/journal_" + name + ".journal";
}

Status AnalysisService::Recover() {
  std::lock_guard lock(mu_);
  SWORD_RETURN_IF_ERROR(MakeDirs(config_.state_dir));
  const std::string path = config_.state_dir + "/serve.ledger";
  uint64_t valid_bytes = 0;
  if (FileExists(path)) {
    auto loaded = LoadLedger(path);
    if (!loaded.ok()) {
      // A ledger whose HEADER is gone has nothing recoverable; every run
      // re-analyzes from its journal, which is slower but never wrong.
      (void)RemoveFile(path);
      stats_.ledger_dropped++;
    } else {
      valid_bytes = loaded.value().valid_bytes;
      stats_.ledger_dropped += loaded.value().records_dropped;
      for (auto& rec : loaded.value().records) {
        Run run;
        run.name = rec.verdict.run;
        run.dir = rec.dir;
        run.phase = rec.quarantine != 0 ? RunPhase::kQuarantined : RunPhase::kDone;
        run.quarantine = static_cast<QuarantineReason>(rec.quarantine);
        run.status = rec.verdict.status;
        run.verdict = std::move(rec.verdict);
        if (run.phase == RunPhase::kDone) aggregator_.AddRun(run.verdict);
        stats_.ledger_replayed++;
        // Latest record for a name wins (a re-traced run appends a fresh
        // record; the aggregator already replaced the verdict above).
        runs_.insert_or_assign(run.name, std::move(run));
      }
    }
  }
  // The ledger open is the daemon's first write; a transient blip here
  // (storage warming up, momentary contention) must not kill a service
  // whose whole job is absorbing transient I/O faults. Hard errors still
  // fail startup after the bounded retries.
  Status open_status;
  for (uint32_t attempt = 0; attempt < 3; ++attempt) {
    auto writer = LedgerWriter::Open(path, valid_bytes, env_.fs);
    if (writer.ok()) {
      ledger_ = std::make_unique<LedgerWriter>(std::move(writer.value()));
      return Status::Ok();
    }
    open_status = writer.status();
    stats_.ledger_append_failures++;
  }
  return open_status;
}

Status AnalysisService::AddRun(const std::string& trace_dir) {
  std::lock_guard lock(mu_);
  const std::string name = Basename(trace_dir);
  if (const auto it = runs_.find(name); it != runs_.end()) {
    // Idempotent re-registration (watch-dir rescans, restart re-adds): a
    // finished run just refreshes its directory; an active run is a no-op.
    if (it->second.dir.empty()) it->second.dir = trace_dir;
    return Status::Ok();
  }
  if (!admission_.AdmitNew()) {
    stats_.runs_refused++;
    admission_.NoteRunShed();
    return Status::Unavailable("admission: shedding new runs (level " +
                               std::string(AdmissionLevelName(
                                   admission_.level_ordinal())) +
                               ")");
  }
  Run run;
  run.name = name;
  run.dir = trace_dir;
  run.ingestor = std::make_unique<RunIngestor>(trace_dir, config_.ingest, io_, now_);
  stats_.runs_added++;
  runs_.emplace(name, std::move(run));
  return Status::Ok();
}

void AnalysisService::Quarantine(Run& run, QuarantineReason reason, Status status) {
  run.phase = RunPhase::kQuarantined;
  run.quarantine = reason;
  run.status = std::move(status);
  stats_.runs_quarantined++;
  switch (reason) {
    case QuarantineReason::kIngestFailure: stats_.quarantined_ingest++; break;
    case QuarantineReason::kOpenFailure: stats_.quarantined_open++; break;
    case QuarantineReason::kAnalysisFailure: stats_.quarantined_analysis++; break;
    case QuarantineReason::kAnalyzerCrash: stats_.quarantined_crash++; break;
    case QuarantineReason::kNone: break;
  }
  run.verdict = RunVerdict{};
  run.verdict.run = run.name;
  run.verdict.status = run.status;
  RecordLedger(run);
}

void AnalysisService::FinishRun(Run& run, RunVerdict verdict) {
  run.verdict = std::move(verdict);
  run.phase = RunPhase::kDone;
  run.status = run.verdict.status;
  stats_.runs_done++;
  aggregator_.AddRun(run.verdict);
  RecordLedger(run);
}

void AnalysisService::RecordLedger(const Run& run) {
  if (!ledger_) {
    // Lazy open for callers that skipped Recover() (tests mostly).
    if (!MakeDirs(config_.state_dir).ok()) return;
    const std::string path = config_.state_dir + "/serve.ledger";
    uint64_t valid_bytes = 0;
    if (FileExists(path)) {
      if (auto loaded = LoadLedger(path); loaded.ok()) {
        valid_bytes = loaded.value().valid_bytes;
      }
    }
    auto writer = LedgerWriter::Open(path, valid_bytes, env_.fs);
    if (!writer.ok()) {
      stats_.ledger_append_failures++;
      return;
    }
    ledger_ = std::make_unique<LedgerWriter>(std::move(writer.value()));
  }
  LedgerRecord rec;
  rec.verdict = run.verdict;
  rec.dir = run.dir;
  rec.quarantine = static_cast<uint8_t>(run.quarantine);
  if (!ledger_->Append(rec).ok()) {
    // Counted, not fatal: the run's verdict survives in memory, and after a
    // restart the run simply re-analyzes from its journal.
    stats_.ledger_append_failures++;
  }
}

void AnalysisService::AnalyzeRun(Run& run) {
  const uint64_t t0 = now_();
  offline::StoreOptions store_options;
  store_options.salvage = config_.salvage;
  auto store = offline::TraceStore::OpenDir(run.dir, store_options);
  if (!store.ok()) {
    Quarantine(run, QuarantineReason::kOpenFailure, store.status());
    return;
  }

  offline::AnalysisConfig cfg;
  cfg.threads = config_.analysis_threads;
  cfg.solver_step_budget = config_.solver_step_budget;
  cfg.bucket_deadline_ms = config_.bucket_deadline_ms;
  cfg.max_tree_bytes = config_.max_tree_bytes;
  cfg.journal_path = JournalPathForRun(run.name);
  cfg.resume = FileExists(cfg.journal_path);

  stats_.analyses++;
  run.attempts++;
  offline::AnalysisResult result;
  bool crashed = false;
  Status crash_status;
  try {
    result = analyzer_.Analyze(store.value(), cfg);
  } catch (const std::exception& e) {
    crashed = true;
    crash_status = Status::Internal(std::string("analyzer crash: ") + e.what());
  } catch (...) {
    crashed = true;
    crash_status = Status::Internal("analyzer crash");
  }
  if (crashed) {
    // Containment: one poisoned run must never take the daemon down. The
    // run is sealed off with a counted reason; the pool and every other run
    // carry on.
    Quarantine(run, QuarantineReason::kAnalyzerCrash, std::move(crash_status));
    return;
  }

  if (!result.status.ok()) {
    stats_.analysis_failures++;
    if (cfg.resume && !run.journal_reset) {
      // The journal is an optimization, never a reason to lose a run: a
      // torn/mismatched journal is dropped and the analysis retried fresh,
      // once, without consuming the run's attempt budget.
      run.journal_reset = true;
      stats_.journal_resets++;
      (void)RemoveFile(cfg.journal_path);
      run.attempts--;
      AnalyzeRun(run);
      return;
    }
    run.status = result.status;
    if (run.attempts >= config_.max_analysis_attempts) {
      Quarantine(run, QuarantineReason::kAnalysisFailure, result.status);
    }
    // Otherwise the run stays queued and a later tick retries it.
    return;
  }

  admission_.NoteAnalysisNanos(now_() - t0);
  RunVerdict verdict;
  verdict.run = run.name;
  verdict.fingerprint = FingerprintOf(store.value());
  verdict.status = result.status;
  verdict.salvaged = store.value().integrity().salvaged;
  verdict.races = result.races.reports();
  FinishRun(run, std::move(verdict));
}

bool AnalysisService::Tick() {
  std::lock_guard lock(mu_);
  stats_.ticks++;
  bool progress = false;

  // 1. Advance every growing run's ingestor.
  for (auto& [name, run] : runs_) {
    if (run.phase != RunPhase::kIngesting) continue;
    const uint64_t polls_before = run.ingestor->stats().polls;
    const IngestState state = run.ingestor->Poll();
    if (run.ingestor->stats().polls != polls_before) progress = true;
    if (state == IngestState::kSettled) {
      run.phase = RunPhase::kQueued;
      run.queued_at_ns = now_();
      progress = true;
    } else if (state == IngestState::kFailed) {
      Quarantine(run, QuarantineReason::kIngestFailure,
                 run.ingestor->last_error());
      progress = true;
    }
  }

  // 2. Evaluate admission on the fresh load picture.
  uint32_t ingesting = 0, queued = 0;
  uint64_t oldest_wait = 0;
  const uint64_t now = now_();
  for (auto& [name, run] : runs_) {
    if (run.phase == RunPhase::kIngesting) ingesting++;
    if (run.phase == RunPhase::kQueued) {
      queued++;
      if (now > run.queued_at_ns) {
        oldest_wait = std::max(oldest_wait, now - run.queued_at_ns);
      }
    }
  }
  admission_.Evaluate(ingesting + queued, queued, oldest_wait);

  // 3. At most one canonical analysis per tick, FIFO by settle time (name
  // breaks ties - map order - so scheduling is deterministic).
  if (queued > 0 && admission_.AdmitWork()) {
    Run* pick = nullptr;
    for (auto& [name, run] : runs_) {
      if (run.phase != RunPhase::kQueued) continue;
      if (!pick || run.queued_at_ns < pick->queued_at_ns) pick = &run;
    }
    AnalyzeRun(*pick);
    progress = true;
  }
  return progress;
}

bool AnalysisService::Idle() {
  std::lock_guard lock(mu_);
  for (const auto& [name, run] : runs_) {
    if (run.phase == RunPhase::kIngesting || run.phase == RunPhase::kQueued) {
      return false;
    }
  }
  return true;
}

uint32_t AnalysisService::Drain(uint32_t max_ticks) {
  uint32_t ticks = 0;
  while (ticks < max_ticks && !Idle()) {
    Tick();
    ticks++;
  }
  return ticks;
}

std::vector<RunSnapshot> AnalysisService::Runs() {
  std::lock_guard lock(mu_);
  std::vector<RunSnapshot> out;
  out.reserve(runs_.size());
  for (const auto& [name, run] : runs_) {
    RunSnapshot snap;
    snap.name = run.name;
    snap.dir = run.dir;
    snap.phase = run.phase;
    snap.quarantine = run.quarantine;
    snap.status = run.status.ToString();
    snap.races = run.verdict.races.size();
    snap.attempts = run.attempts;
    out.push_back(std::move(snap));
  }
  return out;
}

ServiceStats AnalysisService::Stats() {
  std::lock_guard lock(mu_);
  return stats_;
}

uint64_t AnalysisService::AdmissionPacked() {
  std::lock_guard lock(mu_);
  return admission_.PackedState();
}

std::string AnalysisService::AggregateJson() {
  std::lock_guard lock(mu_);
  return aggregator_.RenderJson();
}

uint64_t AnalysisService::SiteCount() {
  std::lock_guard lock(mu_);
  return aggregator_.site_count();
}

std::string AnalysisService::StatusJson() {
  std::lock_guard lock(mu_);
  std::string out = "{";
  out += "\"ticks\":" + std::to_string(stats_.ticks);
  out += ",\"admission\":{\"level\":\"";
  out += AdmissionLevelName(admission_.level_ordinal());
  out += "\",\"transitions\":" + std::to_string(admission_.transitions().size());
  out += ",\"runs_shed\":" + std::to_string(admission_.runs_shed()) + "}";
  out += ",\"stats\":{";
  out += "\"runs_added\":" + std::to_string(stats_.runs_added);
  out += ",\"runs_refused\":" + std::to_string(stats_.runs_refused);
  out += ",\"runs_done\":" + std::to_string(stats_.runs_done);
  out += ",\"runs_quarantined\":" + std::to_string(stats_.runs_quarantined);
  out += ",\"quarantined_ingest\":" + std::to_string(stats_.quarantined_ingest);
  out += ",\"quarantined_open\":" + std::to_string(stats_.quarantined_open);
  out += ",\"quarantined_analysis\":" + std::to_string(stats_.quarantined_analysis);
  out += ",\"quarantined_crash\":" + std::to_string(stats_.quarantined_crash);
  out += ",\"analyses\":" + std::to_string(stats_.analyses);
  out += ",\"analysis_failures\":" + std::to_string(stats_.analysis_failures);
  out += ",\"journal_resets\":" + std::to_string(stats_.journal_resets);
  out += ",\"ledger_replayed\":" + std::to_string(stats_.ledger_replayed);
  out += ",\"ledger_dropped\":" + std::to_string(stats_.ledger_dropped);
  out += ",\"ledger_append_failures\":" +
         std::to_string(stats_.ledger_append_failures);
  out += "}";
  out += ",\"runs\":[";
  bool first = true;
  for (const auto& [name, run] : runs_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(run.name) + "\"";
    out += ",\"phase\":\"";
    out += RunPhaseName(run.phase);
    out += "\",\"quarantine\":\"";
    out += QuarantineReasonName(run.quarantine);
    out += "\",\"races\":" + std::to_string(run.verdict.races.size());
    out += ",\"attempts\":" + std::to_string(run.attempts);
    out += ",\"status\":\"" + JsonEscape(run.status.ToString()) + "\"}";
  }
  out += "]";
  out += ",\"aggregate\":" + aggregator_.RenderJson();
  out += "}";
  return out;
}

}  // namespace sword::serve
