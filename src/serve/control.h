// Line-delimited JSON control socket for sword-serve.
//
// One AF_UNIX stream socket; each request is one JSON object on one line,
// each response one JSON object on one line. The server handles one client
// at a time and marshals every request onto the handler callback - the
// daemon's handler just calls AnalysisService methods, which serialize on
// the service mutex, so the socket adds no new concurrency to reason about.
//
// Protocol (see README):
//   {"cmd":"status"}                 -> full service snapshot
//   {"cmd":"aggregate"}              -> cross-run aggregate report
//   {"cmd":"add","dir":"/path"}      -> register a trace directory
//   {"cmd":"runs"}                   -> per-run phase/quarantine list
//   {"cmd":"shutdown"}               -> ask the daemon to drain and exit
// Unknown commands get {"ok":false,"error":"..."} - a malformed client can
// never crash the daemon.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"

namespace sword::serve {

/// Extracts the string value of `key` from a flat one-line JSON object.
/// Handles quoted strings (with \" and \\ escapes) and bare tokens
/// (numbers, true/false). Returns "" when the key is absent. This is NOT a
/// JSON parser - it is exactly enough for the flat control protocol, and a
/// malformed line yields "" rather than an error.
std::string JsonField(const std::string& line, const std::string& key);

class ControlServer {
 public:
  /// `handler` receives one request line (no newline) and returns one
  /// response line (newline appended by the server). It runs on the accept
  /// thread.
  using Handler = std::function<std::string(const std::string& line)>;

  ControlServer(std::string socket_path, Handler handler);
  ~ControlServer();

  ControlServer(const ControlServer&) = delete;
  ControlServer& operator=(const ControlServer&) = delete;

  /// Binds and starts the accept thread. Replaces a stale socket file.
  Status Start();

  /// Stops the accept thread and removes the socket file. Idempotent.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }
  uint64_t requests_served() const { return requests_.load(std::memory_order_relaxed); }

 private:
  void AcceptLoop();
  void ServeClient(int fd);

  std::string socket_path_;
  Handler handler_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace sword::serve
