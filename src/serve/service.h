// AnalysisService: the serve daemon's single-threaded core.
//
// One Tick() is one scheduling step: poll every growing run's ingestor,
// promote settled runs to the analysis queue, evaluate admission, and run
// at most one canonical analysis. The control socket and signal handlers
// never touch service state directly - they call the public methods, which
// serialize on one mutex - so every decision the daemon makes happens in a
// deterministic order given the same inputs and clock. That is what lets
// the chaos tests assert byte-identical outcomes under seeded fault plans.
//
// Containment ladder (robustness is the headline):
//   - transient ingest read errors: retried with backoff inside RunIngestor;
//   - repeated hard ingest failures: the run is quarantined
//     (kIngestFailure), counted, recorded in the ledger, and the daemon
//     moves on;
//   - a journal that fails to resume (torn header, knob mismatch): deleted
//     and re-created once (journal_resets), because the journal is an
//     optimization, never a reason to lose a run;
//   - an analysis that fails: retried up to max_analysis_attempts, then
//     quarantined (kAnalysisFailure);
//   - an exception escaping the analyzer (checker crash): caught and
//     quarantined (kAnalyzerCrash) - one poisoned run never takes the
//     daemon down;
//   - daemon death (kill -9): Recover() replays the ledger, reproducing
//     every finished run's verdict byte-for-byte; unfinished runs
//     re-analyze from their per-run journals.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "offline/analysis.h"
#include "serve/admission.h"
#include "serve/aggregate.h"
#include "serve/clock.h"
#include "serve/ingest.h"
#include "serve/ledger.h"

namespace sword::serve {

enum class RunPhase : uint8_t {
  kIngesting = 0,   // growing; RunIngestor is watching it
  kQueued = 1,      // settled; awaiting an analysis slot
  kDone = 2,        // verdict recorded and aggregated
  kQuarantined = 3, // contained with a counted reason
};

const char* RunPhaseName(RunPhase p);

enum class QuarantineReason : uint8_t {
  kNone = 0,
  kIngestFailure = 1,   // hard read failures past the retry budget
  kOpenFailure = 2,     // trace store refused to open
  kAnalysisFailure = 3, // analysis failed max_analysis_attempts times
  kAnalyzerCrash = 4,   // exception escaped the analyzer
};

const char* QuarantineReasonName(QuarantineReason r);

struct ServiceConfig {
  /// Directory for the ledger and the per-run journals. Created if absent.
  std::string state_dir;
  IngestConfig ingest;
  AdmissionConfig admission;
  /// Checker threads for the shared analyzer pool.
  uint32_t analysis_threads = 2;
  /// Open run traces with the salvage policy (the production default: fleet
  /// traces come from runs that may have crashed or been killed).
  bool salvage = true;
  /// Analysis attempts per run before kAnalysisFailure.
  uint32_t max_analysis_attempts = 2;
  // Result-affecting analysis knobs, forwarded to AnalysisConfig.
  uint64_t solver_step_budget = 4'000'000;
  uint32_t bucket_deadline_ms = 0;
  uint64_t max_tree_bytes = 0;
};

struct ServiceStats {
  uint64_t ticks = 0;
  uint64_t runs_added = 0;
  uint64_t runs_refused = 0;      // shed by admission (counted, not silent)
  uint64_t runs_done = 0;
  uint64_t runs_quarantined = 0;
  uint64_t quarantined_ingest = 0;
  uint64_t quarantined_open = 0;
  uint64_t quarantined_analysis = 0;
  uint64_t quarantined_crash = 0;
  uint64_t analyses = 0;          // canonical analyses executed
  uint64_t analysis_failures = 0; // attempts that returned a bad status
  uint64_t journal_resets = 0;    // journals deleted after a failed resume
  uint64_t ledger_replayed = 0;   // runs restored by Recover()
  uint64_t ledger_dropped = 0;    // torn ledger records dropped on Recover()
  uint64_t ledger_append_failures = 0;
};

/// Point-in-time view of one run for status surfaces.
struct RunSnapshot {
  std::string name;
  std::string dir;
  RunPhase phase = RunPhase::kIngesting;
  QuarantineReason quarantine = QuarantineReason::kNone;
  std::string status;     // last status string ("ok" or the error)
  uint64_t races = 0;     // verdict race count (done runs)
  uint32_t attempts = 0;  // analysis attempts so far
};

class AnalysisService {
 public:
  /// `env.fs` (when set) is used for ledger AND journal writes; `io` for
  /// ingest reads; `now` for every timing decision. All default to the real
  /// thing.
  explicit AnalysisService(ServiceConfig config, offline::AnalyzerEnv env = {},
                           IngestIo* io = nullptr, ClockFn now = {});

  /// Replays the ledger from state_dir. Call once before the first Tick
  /// when restarting into an existing state directory; a fresh directory
  /// recovers zero runs. Also (re)opens the ledger for appending.
  Status Recover();

  /// Registers a trace directory as a run (name = basename). Refused with
  /// kUnavailable when admission is shedding new runs (counted), with
  /// kInvalidArgument when the name is already registered and finished with
  /// the same trace still in place.
  Status AddRun(const std::string& trace_dir);

  /// One scheduling step. Returns true if it made progress (a poll advanced
  /// a run, an analysis ran, a verdict landed).
  bool Tick();

  /// Ticks until no run is ingesting or queued. Returns ticks consumed.
  /// `max_ticks` bounds runaway loops in tests.
  uint32_t Drain(uint32_t max_ticks = 1'000'000);

  /// True when no run is ingesting or queued.
  bool Idle();

  std::vector<RunSnapshot> Runs();
  ServiceStats Stats();
  uint64_t AdmissionPacked();
  std::string AggregateJson();
  /// Distinct race sites in the cross-run aggregate (drives the exit code).
  uint64_t SiteCount();
  /// Full status snapshot: {"ticks":..,"admission":{..},"runs":[..],
  /// "stats":{..},"aggregate":{..}}.
  std::string StatusJson();

 private:
  struct Run {
    std::string name;
    std::string dir;
    std::unique_ptr<RunIngestor> ingestor;
    RunPhase phase = RunPhase::kIngesting;
    QuarantineReason quarantine = QuarantineReason::kNone;
    Status status;
    uint64_t queued_at_ns = 0;
    uint32_t attempts = 0;
    bool journal_reset = false;  // fresh-journal retry already spent
    RunVerdict verdict;
  };

  void Quarantine(Run& run, QuarantineReason reason, Status status);
  void FinishRun(Run& run, RunVerdict verdict);
  void RecordLedger(const Run& run);
  /// Runs (or re-runs) the canonical analysis for a queued run.
  void AnalyzeRun(Run& run);
  std::string JournalPathForRun(const std::string& name) const;

  ServiceConfig config_;
  offline::AnalyzerEnv env_;
  IngestIo* io_;
  ClockFn now_;

  std::mutex mu_;  // guards everything below
  offline::Analyzer analyzer_;
  AdmissionController admission_;
  ReportAggregator aggregator_;
  std::map<std::string, Run> runs_;  // by name: deterministic iteration
  std::unique_ptr<LedgerWriter> ledger_;
  ServiceStats stats_;
};

}  // namespace sword::serve
