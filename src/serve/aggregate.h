// Cross-run race aggregation for the serve daemon.
//
// Fleet reality: the same racy code pair shows up in many runs, and the
// operator wants ONE row per code pair with a run count, not a thousand
// copies. The aggregator keys on RaceReport::Key() (the unordered pc pair,
// the same identity sword-offline dedups by) and merges confidence: a pair
// is proven fleet-wide the moment ANY run proves it.
//
// Determinism is the design constraint. The daemon may finish runs in any
// order, die, restart, and replay verdicts from its ledger in yet another
// order - and the aggregate must come out identical every time, because the
// soak test diffs it against a clean single-shot baseline. So every merge
// rule is order-free:
//   - the sample report for a pair comes from the lexicographically
//     smallest run name that reported it (proven beats unproven first);
//   - counts are additive over the set of distinct runs;
//   - rendering walks pairs in key order.
// Re-adding a run (restart replay, watch-dir rescan) with the same trace
// fingerprint is a no-op; a CHANGED fingerprint replaces the old verdict -
// the run was re-traced, and stale races must not linger.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/race_report.h"
#include "common/status.h"

namespace sword::serve {

/// One run's final, canonical analysis outcome.
struct RunVerdict {
  std::string run;                // run name (trace-dir basename); unique
  uint64_t fingerprint = 0;       // trace fingerprint (dedups re-adds)
  Status status;                  // final analysis status
  bool salvaged = false;          // analyzed under salvage policy
  std::vector<RaceReport> races;  // the run's deduped report list, in order
};

class ReportAggregator {
 public:
  /// Merges one verdict. Same run + same fingerprint = no-op (returns
  /// false); same run + new fingerprint replaces the old verdict.
  bool AddRun(const RunVerdict& verdict);

  /// One aggregated row per racing code pair.
  struct Site {
    RaceReport sample;       // from the lexicographically-min proven run
    std::string sample_run;  // which run the sample came from
    uint64_t runs = 0;       // distinct runs reporting this pair
    uint64_t proven_runs = 0;
  };

  /// Pairs in key order - the deterministic output surface.
  std::vector<Site> Sites() const;

  size_t run_count() const { return runs_.size(); }
  size_t site_count() const { return sites_.size(); }
  uint64_t races_total() const;  // sum of per-run race-list lengths

  /// Stable JSON for the control socket / --json snapshots:
  /// {"runs":N,"sites":[{"pc1":..,"pc2":..,"runs":..,"proven_runs":..,
  ///  "sample_run":"..","address":"..",...}]}
  std::string RenderJson() const;

 private:
  void MergeVerdict(const RunVerdict& verdict);
  void Rebuild();

  // Verdicts by run name: the source of truth. Sites are derived, so a
  // replaced verdict triggers a full rebuild (runs are few, races fewer).
  std::map<std::string, RunVerdict> runs_;
  std::map<uint64_t, Site> sites_;
};

}  // namespace sword::serve
