#include "serve/control.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sword::serve {

std::string JsonField(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) pos++;
  if (pos >= line.size() || line[pos] != ':') return "";
  pos++;
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) pos++;
  if (pos >= line.size()) return "";
  if (line[pos] == '"') {
    pos++;
    std::string out;
    while (pos < line.size() && line[pos] != '"') {
      if (line[pos] == '\\' && pos + 1 < line.size()) {
        pos++;
        switch (line[pos]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: out += line[pos];
        }
      } else {
        out += line[pos];
      }
      pos++;
    }
    return out;
  }
  // Bare token: number, true, false, null.
  size_t end = pos;
  while (end < line.size() && line[end] != ',' && line[end] != '}' &&
         line[end] != ' ' && line[end] != '\t') {
    end++;
  }
  return line.substr(pos, end - pos);
}

ControlServer::ControlServer(std::string socket_path, Handler handler)
    : socket_path_(std::move(socket_path)), handler_(std::move(handler)) {}

ControlServer::~ControlServer() { Stop(); }

Status ControlServer::Start() {
  if (socket_path_.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::Invalid("control socket path too long: " + socket_path_);
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Io(std::string("socket: ") + std::strerror(errno));
  }
  // A stale socket file from a kill -9'd daemon must not block restart.
  ::unlink(socket_path_.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path_.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Io("bind " + socket_path_ + ": " + std::strerror(err));
  }
  if (::listen(listen_fd_, 8) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(socket_path_.c_str());
    return Status::Io(std::string("listen: ") + std::strerror(err));
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void ControlServer::Stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // shutdown() unblocks a blocked accept(); close() alone is not portable
  // for that.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(socket_path_.c_str());
}

void ControlServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Stop() shut the listener down, or something unrecoverable happened;
      // either way the loop exits cleanly.
      break;
    }
    ServeClient(fd);
    ::close(fd);
  }
}

void ControlServer::ServeClient(int fd) {
  std::string buffer;
  char chunk[4096];
  while (running_.load(std::memory_order_acquire)) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (n == 0) return;  // client hung up
    buffer.append(chunk, static_cast<size_t>(n));
    size_t nl;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      requests_.fetch_add(1, std::memory_order_relaxed);
      std::string response = handler_(line);
      response += '\n';
      size_t off = 0;
      while (off < response.size()) {
        const ssize_t w = ::write(fd, response.data() + off, response.size() - off);
        if (w < 0) {
          if (errno == EINTR) continue;
          return;  // client gone mid-response; drop it, daemon unaffected
        }
        off += static_cast<size_t>(w);
      }
    }
  }
}

}  // namespace sword::serve
