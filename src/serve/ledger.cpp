#include "serve/ledger.h"

#include "common/bytes.h"
#include "offline/journal.h"

namespace sword::serve {
namespace {

/// Identical framing to the analysis journal (offline/journal.cpp): the
/// checksum is validated before any payload byte is trusted.
void AppendFramed(uint32_t magic, const Bytes& payload, ByteWriter& out) {
  out.PutU32(magic);
  out.PutVarU64(payload.size());
  out.PutU64(Fnv1a64(payload.data(), payload.size()));
  out.PutRaw(payload.data(), payload.size());
}

Status ReadFramed(ByteReader& reader, uint32_t expected_magic, Bytes* payload) {
  if (reader.AtEnd()) return Status::NotFound("end of ledger");
  uint32_t magic = 0;
  SWORD_RETURN_IF_ERROR(reader.GetU32(&magic));
  if (magic != expected_magic) return Status::Corrupt("ledger record magic mismatch");
  uint64_t size = 0;
  SWORD_RETURN_IF_ERROR(reader.GetVarU64(&size));
  uint64_t crc = 0;
  SWORD_RETURN_IF_ERROR(reader.GetU64(&crc));
  if (size > reader.remaining()) return Status::Corrupt("ledger record truncated");
  payload->assign(reader.cursor(), reader.cursor() + size);
  SWORD_RETURN_IF_ERROR(reader.Skip(static_cast<size_t>(size)));
  if (Fnv1a64(payload->data(), payload->size()) != crc) {
    return Status::Corrupt("ledger record checksum mismatch");
  }
  return Status::Ok();
}

void PutString(const std::string& s, ByteWriter& w) {
  w.PutVarU64(s.size());
  w.PutRaw(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

Status GetString(ByteReader& r, std::string* out) {
  uint64_t n = 0;
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&n));
  if (n > r.remaining()) return Status::Corrupt("ledger string truncated");
  out->assign(reinterpret_cast<const char*>(r.cursor()), static_cast<size_t>(n));
  return r.Skip(static_cast<size_t>(n));
}

void SerializeRecord(const LedgerRecord& rec, Bytes* out) {
  ByteWriter w(out);
  PutString(rec.verdict.run, w);
  PutString(rec.dir, w);
  w.PutU64(rec.verdict.fingerprint);
  w.PutU8(static_cast<uint8_t>(rec.verdict.status.code()));
  PutString(rec.verdict.status.message(), w);
  w.PutU8(rec.verdict.salvaged ? 1 : 0);
  w.PutU8(rec.quarantine);
  // The journal's race-list wire form: one serializer on both sides means a
  // replayed verdict is byte-for-byte the analyzed one.
  offline::SerializeRaceList(rec.verdict.races, w);
}

Status ParseRecord(const Bytes& payload, LedgerRecord* rec) {
  ByteReader r(payload);
  SWORD_RETURN_IF_ERROR(GetString(r, &rec->verdict.run));
  SWORD_RETURN_IF_ERROR(GetString(r, &rec->dir));
  SWORD_RETURN_IF_ERROR(r.GetU64(&rec->verdict.fingerprint));
  uint8_t code = 0;
  SWORD_RETURN_IF_ERROR(r.GetU8(&code));
  std::string message;
  SWORD_RETURN_IF_ERROR(GetString(r, &message));
  rec->verdict.status = Status(static_cast<ErrorCode>(code), std::move(message));
  uint8_t salvaged = 0;
  SWORD_RETURN_IF_ERROR(r.GetU8(&salvaged));
  rec->verdict.salvaged = salvaged != 0;
  SWORD_RETURN_IF_ERROR(r.GetU8(&rec->quarantine));
  return offline::ParseRaceList(r, payload.size(), &rec->verdict.races);
}

}  // namespace

Result<LedgerLoadResult> LoadLedger(const std::string& path) {
  const auto file = ReadFileBytes(path);
  if (!file.ok()) return file.status();
  ByteReader reader(file.value());
  LedgerLoadResult result;

  Bytes payload;
  Status s = ReadFramed(reader, kLedgerHeaderMagic, &payload);
  if (!s.ok()) return Status::Corrupt("ledger header unreadable: " + s.ToString());
  if (payload.size() < 1 || payload[0] != kLedgerVersion) {
    return Status::Unsupported("ledger version");
  }
  result.valid_bytes = reader.position();

  while (!reader.AtEnd()) {
    s = ReadFramed(reader, kLedgerRunMagic, &payload);
    if (!s.ok()) {
      result.records_dropped++;
      break;
    }
    LedgerRecord rec;
    s = ParseRecord(payload, &rec);
    if (!s.ok()) {
      result.records_dropped++;
      break;
    }
    result.records.push_back(std::move(rec));
    result.valid_bytes = reader.position();
  }
  return result;
}

Result<LedgerWriter> LedgerWriter::Open(const std::string& path,
                                        uint64_t valid_bytes,
                                        FileBackend* backend) {
  if (backend == nullptr) backend = &RealFileBackend();
  if (!FileExists(path)) {
    Bytes payload;
    payload.push_back(kLedgerVersion);
    ByteWriter file;
    AppendFramed(kLedgerHeaderMagic, payload, file);
    SWORD_RETURN_IF_ERROR(WriteFileAtomic(path, file.buffer(), backend));
    return LedgerWriter(path, backend);
  }
  const auto size = FileSize(path);
  if (!size.ok()) return size.status();
  if (size.value() > valid_bytes) {
    // Torn tail from a mid-append death: drop it so the file stays a clean
    // record sequence.
    SWORD_RETURN_IF_ERROR(backend->Truncate(path, valid_bytes));
  }
  return LedgerWriter(path, backend);
}

Status LedgerWriter::Append(const LedgerRecord& record) {
  Bytes payload;
  SerializeRecord(record, &payload);
  ByteWriter framed;
  AppendFramed(kLedgerRunMagic, payload, framed);
  const AppendOutcome outcome = AppendWithRetry(
      *backend_, path_, framed.buffer().data(), framed.size());
  if (!outcome.status.ok()) {
    append_failures_++;
    // Trim a partial append so a later successful record cannot bury
    // garbage mid-file (load would stop there and drop everything after).
    if (outcome.written > 0) {
      const auto size = FileSize(path_);
      if (size.ok() && size.value() >= outcome.written) {
        (void)backend_->Truncate(path_, size.value() - outcome.written);
      }
    }
    return outcome.status;
  }
  return Status::Ok();
}

}  // namespace sword::serve
