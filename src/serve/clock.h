// The serve daemon's clock hook. Every time-dependent decision in the
// service (retry backoff, queue deadlines, quiesce polls, admission
// hysteresis) reads time through one injected function, so tests drive the
// whole daemon with a manual clock and every timing test is deterministic -
// the same discipline AnalyzerEnv::now_ns applies to the analyzer.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

namespace sword::serve {

/// Monotonic nanosecond clock. Null-constructed std::function is replaced
/// by SteadyClock() at use sites.
using ClockFn = std::function<uint64_t()>;

inline ClockFn SteadyClock() {
  return [] {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  };
}

/// Test clock: time moves only when the test says so.
class ManualClock {
 public:
  explicit ManualClock(uint64_t start_ns = 0) : now_ns_(start_ns) {}
  void Advance(uint64_t ns) { now_ns_ += ns; }
  uint64_t now() const { return now_ns_; }
  ClockFn fn() {
    return [this] { return now_ns_; };
  }

 private:
  uint64_t now_ns_;
};

}  // namespace sword::serve
