#include "hb/archer_tool.h"

namespace sword::hb {

namespace {

// Keyed by a process-unique instance id so a tool allocated at a recycled
// address never matches a stale handle.
struct TlsHandle {
  uint64_t owner_id = 0;
  void* state = nullptr;
  Slot slot = 0;
};
thread_local TlsHandle tls_handle;

std::atomic<uint64_t> g_next_instance_id{1};

}  // namespace

ArcherTool::ArcherTool(ArcherConfig config)
    : config_(config),
      memory_("archer-shadow", config.memory_cap_bytes),
      shadow_(config.shadow_cells, &memory_),
      instance_id_(g_next_instance_id.fetch_add(1)) {}

ArcherTool::~ArcherTool() = default;

ArcherTool::SlotState& ArcherTool::State() {
  if (tls_handle.owner_id == instance_id_) {
    return *static_cast<SlotState*>(tls_handle.state);
  }
  auto state = std::make_unique<SlotState>();
  SlotState* raw = state.get();
  Slot slot;
  {
    std::lock_guard lock(slots_mutex_);
    slot = static_cast<Slot>(slots_.size());
    slots_.push_back(std::move(state));
  }
  raw->clock.Tick(slot);  // own component starts at 1
  tls_handle.owner_id = instance_id_;
  tls_handle.state = raw;
  tls_handle.slot = slot;
  return *raw;
}

void ArcherTool::OnParallelBegin(somp::Ctx* parent, somp::RegionId region,
                                 uint32_t span) {
  (void)parent;
  (void)span;
  SlotState& st = State();  // the encountering thread's clock, parent or root
  std::lock_guard lock(sync_mutex_);
  fork_clocks_[region] = st.clock;
}

void ArcherTool::OnParallelEnd(somp::Ctx* parent, somp::RegionId region) {
  (void)parent;
  SlotState& st = State();
  {
    std::lock_guard lock(sync_mutex_);
    auto it = join_clocks_.find(region);
    if (it != join_clocks_.end()) {
      st.clock.Join(it->second);
      join_clocks_.erase(it);
    }
    fork_clocks_.erase(region);
  }
  st.clock.Tick(tls_handle.slot);

  // archer-low: release shadow between independent outermost regions. The
  // clocks above already order cross-region accesses, so this only saves
  // memory (and costs the flush time) - exactly the paper's description.
  if (config_.flush_shadow && parent == nullptr) shadow_.Flush();
}

void ArcherTool::OnImplicitTaskBegin(somp::Ctx& ctx) {
  SlotState& st = State();
  {
    std::lock_guard lock(sync_mutex_);
    auto it = fork_clocks_.find(ctx.region());
    if (it != fork_clocks_.end()) st.clock.Join(it->second);
  }
  st.clock.Tick(tls_handle.slot);
}

void ArcherTool::OnImplicitTaskEnd(somp::Ctx& ctx) {
  SlotState& st = State();
  {
    std::lock_guard lock(sync_mutex_);
    join_clocks_[ctx.region()].Join(st.clock);
  }
  st.clock.Tick(tls_handle.slot);
}

void ArcherTool::OnBarrierEnter(somp::Ctx& ctx, uint64_t phase, somp::BarrierKind kind) {
  if (kind == somp::BarrierKind::kRegionEnd) return;  // join handles ordering
  SlotState& st = State();
  {
    std::lock_guard lock(sync_mutex_);
    BarrierPot& pot = barrier_pots_[{ctx.region(), phase}];
    pot.span = ctx.num_threads();
    pot.clock.Join(st.clock);
  }
  st.clock.Tick(tls_handle.slot);
}

void ArcherTool::OnBarrierExit(somp::Ctx& ctx, uint64_t phase) {
  SlotState& st = State();
  std::lock_guard lock(sync_mutex_);
  auto it = barrier_pots_.find({ctx.region(), phase});
  if (it == barrier_pots_.end()) return;
  st.clock.Join(it->second.clock);
  if (++it->second.exits == it->second.span) barrier_pots_.erase(it);
}

void ArcherTool::OnMutexAcquired(somp::Ctx& ctx, somp::MutexId mutex) {
  (void)ctx;
  SlotState& st = State();
  std::lock_guard lock(sync_mutex_);
  auto it = lock_clocks_.find(mutex);
  if (it != lock_clocks_.end()) st.clock.Join(it->second);
}

void ArcherTool::OnMutexReleased(somp::Ctx& ctx, somp::MutexId mutex) {
  (void)ctx;
  SlotState& st = State();
  {
    std::lock_guard lock(sync_mutex_);
    lock_clocks_[mutex].Join(st.clock);
  }
  st.clock.Tick(tls_handle.slot);
}

void ArcherTool::OnAccess(somp::Ctx& ctx, uint64_t addr, uint8_t size, uint8_t flags,
                          somp::PcId pc) {
  (void)ctx;
  if (oom_.load(std::memory_order_relaxed)) return;  // analysis already dead
  SlotState& st = State();
  const Slot slot = tls_handle.slot;

  AccessRecord record;
  record.slot = slot;
  record.epoch = st.clock.Get(slot);
  record.addr = addr;
  record.size = size;
  record.flags = flags;
  record.pc = pc;

  const Status status =
      shadow_.ProcessAccess(record, st.clock, [&](const RaceReport& report) {
        std::lock_guard lock(races_mutex_);
        races_.Add(report);
      });
  if (!status.ok()) {
    // Memory cap exceeded: the tool "OOMs" like ARCHER on AMG2013_40.
    oom_.store(true, std::memory_order_relaxed);
  }
}

}  // namespace sword::hb
