// Vector clocks for the happens-before baseline.
//
// The baseline models ARCHER's TSan engine: every synchronization event
// (fork, join, barrier, lock release/acquire) transfers clocks, and two
// accesses race iff neither is ordered before the other. Clock components
// are indexed by SLOT - one per OS worker thread, reused across parallel
// regions like TSan reuses thread contexts - so clocks stay small even for
// workloads with hundreds of thousands of regions.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace sword::hb {

using Slot = uint32_t;
using Epoch = uint64_t;

class VectorClock {
 public:
  VectorClock() = default;

  Epoch Get(Slot slot) const {
    return slot < ticks_.size() ? ticks_[slot] : 0;
  }

  void Set(Slot slot, Epoch epoch) {
    if (slot >= ticks_.size()) ticks_.resize(slot + 1, 0);
    ticks_[slot] = epoch;
  }

  void Tick(Slot slot) { Set(slot, Get(slot) + 1); }

  /// Pointwise maximum (the join used at every synchronization edge).
  void Join(const VectorClock& other) {
    if (other.ticks_.size() > ticks_.size()) ticks_.resize(other.ticks_.size(), 0);
    for (size_t i = 0; i < other.ticks_.size(); i++) {
      ticks_[i] = std::max(ticks_[i], other.ticks_[i]);
    }
  }

  /// True iff an event at (slot, epoch) happens-before a thread whose clock
  /// is *this (i.e. this clock has already absorbed that epoch).
  bool Covers(Slot slot, Epoch epoch) const { return Get(slot) >= epoch; }

  void Clear() { ticks_.clear(); }
  size_t size() const { return ticks_.size(); }
  uint64_t MemoryBytes() const { return ticks_.capacity() * sizeof(Epoch); }

  std::string ToString() const {
    std::string out = "[";
    for (size_t i = 0; i < ticks_.size(); i++) {
      if (i) out += ",";
      out += std::to_string(ticks_[i]);
    }
    return out + "]";
  }

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

 private:
  std::vector<Epoch> ticks_;
};

}  // namespace sword::hb
