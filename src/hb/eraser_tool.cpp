#include "hb/eraser_tool.h"

#include <algorithm>
#include <atomic>

namespace sword::hb {

namespace {

struct TlsHandle {
  uint64_t owner_id = 0;
  void* state = nullptr;
};
thread_local TlsHandle tls_handle;

std::atomic<uint64_t> g_next_instance_id{1};

/// Modeled bytes per tracked granule (state + map overhead), for the
/// comparison bench's memory column.
constexpr uint64_t kChargePerGranule = 24;

}  // namespace

EraserTool::EraserTool()
    : memory_("eraser"), instance_id_(g_next_instance_id.fetch_add(1)) {}

EraserTool::~EraserTool() = default;

EraserTool::ThreadState& EraserTool::State_() {
  if (tls_handle.owner_id == instance_id_) {
    return *static_cast<ThreadState*>(tls_handle.state);
  }
  auto state = std::make_unique<ThreadState>();
  ThreadState* raw = state.get();
  {
    std::lock_guard lock(slots_mutex_);
    raw->id = static_cast<uint32_t>(slots_.size());
    slots_.push_back(std::move(state));
  }
  tls_handle.owner_id = instance_id_;
  tls_handle.state = raw;
  return *raw;
}

void EraserTool::OnImplicitTaskBegin(somp::Ctx& ctx) {
  // Re-sync the cached lockset with the context (locks can be held across
  // region entry only by the encountering thread; the ctx knows).
  ThreadState& ts = State_();
  ts.held = mutexes_.Intern(std::vector<itree::MutexId>(ctx.held_mutexes().begin(),
                                                        ctx.held_mutexes().end()));
}

void EraserTool::OnParallelEnd(somp::Ctx* parent, somp::RegionId region) {
  (void)region;
  // The join edge of a TOP-LEVEL region sequences everything before against
  // everything after; lockset derivatives model thread lifetimes this way
  // (otherwise every pair of sequential regions would false-alarm). Barriers
  // inside a region remain invisible - the interesting weakness.
  if (parent == nullptr) {
    std::lock_guard lock(table_mutex_);
    memory_.Release(granules_.size() * kChargePerGranule);
    granules_.clear();
  }
}

void EraserTool::OnMutexAcquired(somp::Ctx& ctx, somp::MutexId mutex) {
  (void)ctx;
  ThreadState& ts = State_();
  ts.held = mutexes_.WithMutex(ts.held, mutex);
}

void EraserTool::OnMutexReleased(somp::Ctx& ctx, somp::MutexId mutex) {
  (void)ctx;
  ThreadState& ts = State_();
  ts.held = mutexes_.WithoutMutex(ts.held, mutex);
}

/// Virtual lock representing hardware atomicity: two atomic accesses hold
/// it "in common", so atomic-atomic pairs never empty the candidate set.
constexpr itree::MutexId kVirtualAtomicMutex = 0xfffffffe;

void EraserTool::OnAccess(somp::Ctx& ctx, uint64_t addr, uint8_t size, uint8_t flags,
                          somp::PcId pc) {
  (void)ctx;
  ThreadState& ts = State_();
  const bool is_write = flags & 1;
  const itree::MutexSetId held =
      (flags & 2) ? mutexes_.WithMutex(ts.held, kVirtualAtomicMutex) : ts.held;

  uint64_t remaining = size;
  uint64_t a = addr;
  while (remaining > 0) {
    const uint64_t granule = a >> 3;
    const uint64_t in_this = std::min<uint64_t>(remaining, 8 - (a & 7));
    a += in_this;
    remaining -= in_this;

    std::lock_guard lock(table_mutex_);
    auto [it, inserted] = granules_.try_emplace(granule);
    if (inserted) (void)memory_.Charge(kChargePerGranule);
    GranuleState& g = it->second;

    switch (g.state) {
      case State::kVirgin:
        g.state = State::kExclusive;
        g.owner = ts.id;
        g.last_pc = pc;
        break;
      case State::kExclusive:
        if (g.owner == ts.id) {
          g.last_pc = pc;
          break;
        }
        g.state = is_write ? State::kSharedModified : State::kShared;
        g.candidates = held;  // C(v) initialized at first sharing
        g.candidates_valid = true;
        // Report at the transition too: a lock-free write that shares a
        // previously-exclusive granule already has an empty candidate set.
        if (g.state == State::kSharedModified &&
            g.candidates == itree::kEmptyMutexSet && !g.reported) {
          g.reported = true;
          RaceReport report;
          report.pc1 = g.last_pc;
          report.pc2 = pc;
          report.address = granule << 3;
          report.size1 = size;
          report.size2 = size;
          report.write1 = true;
          report.write2 = is_write;
          std::lock_guard races_lock(races_mutex_);
          races_.Add(report);
        }
        g.last_pc = pc;
        break;
      case State::kShared:
        if (is_write) g.state = State::kSharedModified;
        [[fallthrough]];
      case State::kSharedModified: {
        // C(v) := C(v) intersect held(t).
        if (g.candidates_valid) {
          std::vector<itree::MutexId> intersection;
          const auto held_set = mutexes_.Get(held);
          for (itree::MutexId m : mutexes_.Get(g.candidates)) {
            if (std::find(held_set.begin(), held_set.end(), m) != held_set.end()) {
              intersection.push_back(m);
            }
          }
          g.candidates = mutexes_.Intern(std::move(intersection));
        }
        if (g.state == State::kSharedModified &&
            g.candidates == itree::kEmptyMutexSet && !g.reported) {
          g.reported = true;
          RaceReport report;
          report.pc1 = g.last_pc;
          report.pc2 = pc;
          report.address = granule << 3;
          report.size1 = size;
          report.size2 = size;
          report.write1 = true;  // SharedModified implies a write happened
          report.write2 = is_write;
          std::lock_guard races_lock(races_mutex_);
          races_.Add(report);
        }
        break;
      }
    }
    if (g.state != State::kVirgin && g.state != State::kExclusive) {
      g.last_pc = pc;
    }
  }
}

uint64_t EraserTool::GranuleCount() const {
  std::lock_guard lock(table_mutex_);
  return granules_.size();
}

}  // namespace sword::hb
