// VectorClock is header-only; see vectorclock.h.
#include "hb/vectorclock.h"
