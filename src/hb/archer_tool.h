// ArcherTool - the happens-before baseline detector (ARCHER's TSan engine).
//
// This is the comparator the paper evaluates SWORD against: a FastTrack-style
// online race detector with
//  - vector clocks transferred at fork/join, barriers, and lock
//    release->acquire (the release->acquire edge is precisely what produces
//    the schedule-dependent race MASKING of Fig. 1);
//  - 4-cell shadow memory with round-robin eviction (the information loss
//    that misses races in SII's example and Table IV);
//  - application-proportional memory, charged byte-exact and optionally
//    CAPPED to model a compute node's limit: when AMG2013_40's shadow
//    exceeds the cap the analysis aborts with out-of-memory, reproducing
//    Table IV's OOM entries;
//  - a "flush shadow" mode (the paper's archer-low): shadow lines are
//    dropped between outermost parallel regions, trading runtime for memory.
//
// Detected races are deduplicated by source-location pair, like SWORD's
// reports, so the per-benchmark counts are directly comparable.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/memtrack.h"
#include "common/race_report.h"
#include "common/status.h"
#include "hb/shadow.h"
#include "hb/vectorclock.h"
#include "somp/runtime.h"
#include "somp/tool.h"

namespace sword::hb {

struct ArcherConfig {
  bool flush_shadow = false;      // archer-low
  uint32_t shadow_cells = 4;      // cells per 8-byte granule
  uint64_t memory_cap_bytes = 0;  // 0 = unlimited; else OOM when exceeded
};

class ArcherTool final : public somp::Tool {
 public:
  explicit ArcherTool(ArcherConfig config = {});
  ~ArcherTool() override;

  // --- somp::Tool ---
  void OnParallelBegin(somp::Ctx* parent, somp::RegionId region, uint32_t span) override;
  void OnParallelEnd(somp::Ctx* parent, somp::RegionId region) override;
  void OnImplicitTaskBegin(somp::Ctx& ctx) override;
  void OnImplicitTaskEnd(somp::Ctx& ctx) override;
  void OnBarrierEnter(somp::Ctx& ctx, uint64_t phase, somp::BarrierKind kind) override;
  void OnBarrierExit(somp::Ctx& ctx, uint64_t phase) override;
  void OnMutexAcquired(somp::Ctx& ctx, somp::MutexId mutex) override;
  void OnMutexReleased(somp::Ctx& ctx, somp::MutexId mutex) override;
  void OnAccess(somp::Ctx& ctx, uint64_t addr, uint8_t size, uint8_t flags,
                somp::PcId pc) override;

  /// True once the memory cap was exceeded; detection stopped there
  /// (Table IV's "OOM").
  bool OutOfMemory() const { return oom_.load(); }

  const RaceReportSet& Races() const { return races_; }
  uint64_t MemoryBytes() const { return memory_.current(); }
  uint64_t PeakMemoryBytes() const { return memory_.peak(); }
  uint64_t GranuleCount() const { return shadow_.GranuleCount(); }

 private:
  struct SlotState {
    VectorClock clock;
  };

  SlotState& State();

  ArcherConfig config_;
  MemoryScope memory_;
  ShadowMemory shadow_;
  std::atomic<bool> oom_{false};

  std::mutex slots_mutex_;
  std::vector<std::unique_ptr<SlotState>> slots_;

  // Synchronization-object clocks; guarded by sync_mutex_ (sync events are
  // orders of magnitude rarer than accesses).
  std::mutex sync_mutex_;
  std::map<somp::RegionId, VectorClock> fork_clocks_;
  std::map<somp::RegionId, VectorClock> join_clocks_;
  struct BarrierPot {
    VectorClock clock;
    uint32_t exits = 0;
    uint32_t span = 0;
  };
  std::map<std::pair<somp::RegionId, uint64_t>, BarrierPot> barrier_pots_;
  std::map<somp::MutexId, VectorClock> lock_clocks_;

  std::mutex races_mutex_;
  RaceReportSet races_;
  uint64_t instance_id_ = 0;
};

}  // namespace sword::hb
