// EraserTool - a pure lockset detector (Eraser, Savage et al. 1997).
//
// A third point in the detector design space, bracketing SWORD's position
// (paper SII): pure happens-before detectors (ArcherTool) are
// schedule-dependent and MASK races; pure lockset detectors are
// schedule-INdependent but know nothing about barriers or fork/join, so
// they FALSE-ALARM on perfectly synchronized OpenMP code (barrier-separated
// phases, single+barrier initialization, ordered sections...). SWORD's
// barrier-interval + lockset analysis takes the schedule independence
// without the false alarms. bench_lockset_comparison quantifies all three
// on the DataRaceBench suite.
//
// Algorithm (classic Eraser state machine, per 8-byte granule):
//   Virgin -> Exclusive(first thread) -> Shared (second thread reads)
//         -> SharedModified (second thread writes)
//   The candidate set C(v) starts as the locks held at the first
//   cross-thread access and is intersected with the holder's lockset on
//   every later access; an empty C(v) in SharedModified reports a race.
//   Fork/join IS respected at the region level (a new top-level region
//   resets Exclusive ownership), as real Eraser derivatives do for
//   thread-start edges - the false positives come from barriers, which
//   locksets cannot express.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/memtrack.h"
#include "common/race_report.h"
#include "itree/mutexset.h"
#include "somp/runtime.h"
#include "somp/tool.h"

namespace sword::hb {

class EraserTool final : public somp::Tool {
 public:
  EraserTool();
  ~EraserTool() override;

  void OnImplicitTaskBegin(somp::Ctx& ctx) override;
  void OnParallelEnd(somp::Ctx* parent, somp::RegionId region) override;
  void OnMutexAcquired(somp::Ctx& ctx, somp::MutexId mutex) override;
  void OnMutexReleased(somp::Ctx& ctx, somp::MutexId mutex) override;
  void OnAccess(somp::Ctx& ctx, uint64_t addr, uint8_t size, uint8_t flags,
                somp::PcId pc) override;

  const RaceReportSet& Races() const { return races_; }
  uint64_t MemoryBytes() const { return memory_.current(); }
  uint64_t GranuleCount() const;

 private:
  enum class State : uint8_t { kVirgin, kExclusive, kShared, kSharedModified };

  struct GranuleState {
    State state = State::kVirgin;
    uint32_t owner = 0;               // thread id while Exclusive
    itree::MutexSetId candidates = itree::kEmptyMutexSet;
    bool candidates_valid = false;    // false until first cross-thread access
    uint32_t last_pc = 0;
    bool reported = false;
  };

  struct ThreadState {
    uint32_t id = 0;
    itree::MutexSetId held = itree::kEmptyMutexSet;
  };

  ThreadState& State_();

  MemoryScope memory_;
  itree::MutexSetTable mutexes_;

  mutable std::mutex table_mutex_;
  std::unordered_map<uint64_t, GranuleState> granules_;

  std::mutex races_mutex_;
  RaceReportSet races_;

  std::mutex slots_mutex_;
  std::vector<std::unique_ptr<ThreadState>> slots_;
  const uint64_t instance_id_;
};

}  // namespace sword::hb
