#include "hb/shadow.h"

#include <functional>

namespace sword::hb {

ShadowMemory::ShadowMemory(uint32_t cells_per_granule, MemoryScope* memory)
    : cells_per_granule_(cells_per_granule), memory_(memory) {}

Status ShadowMemory::ProcessAccess(const AccessRecord& access, const VectorClock& clock,
                                   const std::function<void(const RaceReport&)>& on_race) {
  // Split the byte range [addr, addr+size) across 8-byte granules.
  uint64_t addr = access.addr;
  uint64_t remaining = access.size;
  while (remaining > 0) {
    const uint64_t granule = addr >> 3;
    const uint8_t offset = static_cast<uint8_t>(addr & 7);
    const uint8_t in_this =
        static_cast<uint8_t>(std::min<uint64_t>(remaining, 8 - offset));
    SWORD_RETURN_IF_ERROR(
        ProcessGranule(granule, offset, in_this, access, clock, on_race));
    addr += in_this;
    remaining -= in_this;
  }
  return Status::Ok();
}

Status ShadowMemory::ProcessGranule(
    uint64_t granule, uint8_t offset, uint8_t size, const AccessRecord& access,
    const VectorClock& clock, const std::function<void(const RaceReport&)>& on_race) {
  Shard& shard = ShardFor(granule);
  std::lock_guard lock(shard.mutex);

  auto it = shard.lines.find(granule);
  if (it == shard.lines.end()) {
    if (memory_) SWORD_RETURN_IF_ERROR(memory_->Charge(ChargePerGranule()));
    it = shard.lines.try_emplace(granule).first;
    it->second.cells.resize(cells_per_granule_);
  }
  Line& line = it->second;

  const bool cur_write = access.flags & 1;
  const bool cur_atomic = access.flags & 2;

  // Race check against every live cell.
  for (const ShadowCell& cell : line.cells) {
    if (cell.empty()) continue;
    if (cell.slot == access.slot) continue;           // same thread: ordered
    if (!cell.Overlaps(offset, size)) continue;       // disjoint bytes
    if (!cell.is_write() && !cur_write) continue;     // read-read
    if (cell.is_atomic() && cur_atomic) continue;     // atomic pair
    if (clock.Covers(cell.slot, cell.epoch)) continue;  // happens-before
    RaceReport report;
    report.pc1 = cell.pc;
    report.pc2 = access.pc;
    report.address = (granule << 3) + std::max(cell.offset, offset);
    report.size1 = cell.size;
    report.size2 = size;
    report.write1 = cell.is_write();
    report.write2 = cur_write;
    on_race(report);
  }

  // Record the access, mirroring TSan's store policy: an access identical to
  // a stored cell (same thread, same epoch, same bytes, same kind) is NOT
  // re-stored; anything else takes a free cell or EVICTS round-robin. In
  // particular, the same thread re-reading a location at later epochs (e.g.
  // across critical sections) occupies additional cells - the "multiple
  // reads by the same thread" that purge a write record in SIV-A.
  ShadowCell* target = nullptr;
  for (ShadowCell& cell : line.cells) {
    if (!cell.empty() && cell.slot == access.slot && cell.epoch == access.epoch &&
        cell.offset == offset && cell.size == size && cell.flags == access.flags) {
      return Status::Ok();  // exact duplicate already recorded
    }
  }
  for (ShadowCell& cell : line.cells) {
    if (cell.empty()) {
      target = &cell;
      break;
    }
  }
  if (!target) {
    // Eviction: the paper's information loss. Deterministic round-robin.
    target = &line.cells[line.next_victim % cells_per_granule_];
    line.next_victim++;
  }
  target->epoch = access.epoch;
  target->slot = access.slot;
  target->offset = offset;
  target->size = size;
  target->flags = access.flags;
  target->pc = access.pc;
  return Status::Ok();
}

void ShadowMemory::Flush() {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    if (memory_) memory_->Release(shard.lines.size() * ChargePerGranule());
    shard.lines.clear();
  }
}

uint64_t ShadowMemory::GranuleCount() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    total += shard.lines.size();
  }
  return total;
}

}  // namespace sword::hb
