// Shadow memory with a fixed number of cells per 8-byte granule.
//
// This reproduces the TSan/ARCHER design the paper critiques (SI, SII):
//  - every 8-byte application word that is ever accessed in a parallel
//    region acquires a shadow line of kCellsPerGranule (default 4) cells;
//  - each cell records one previous access (slot, epoch, byte range within
//    the granule, write/atomic bits);
//  - when a fifth distinct access arrives, a cell is EVICTED round-robin -
//    deterministic here so the paper's missed-race examples reproduce
//    exactly (a write record purged by a stream of reads is forgotten, and
//    later conflicting reads no longer race with anything: SII's
//    "a[i] = a[i] + a[0]" example, DataRaceBench nowait/privatemissing, and
//    the 10 extra AMG races of Table IV);
//  - memory is charged per granule to a capped MemoryScope: the application-
//    proportional overhead that OOMs AMG2013_40 in Table IV.
//
// Shards reduce lock contention; everything is byte-exact accounted.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/memtrack.h"
#include "common/race_report.h"
#include "hb/vectorclock.h"

namespace sword::hb {

struct ShadowCell {
  Epoch epoch = 0;
  Slot slot = 0;
  uint8_t offset = 0;  // first byte within the granule
  uint8_t size = 0;    // 0 = empty cell
  uint8_t flags = 0;   // somp::AccessFlags (write/atomic)
  uint32_t pc = 0;

  bool empty() const { return size == 0; }
  bool is_write() const { return flags & 1; }
  bool is_atomic() const { return flags & 2; }
  bool Overlaps(uint8_t other_offset, uint8_t other_size) const {
    return offset < other_offset + other_size && other_offset < offset + size;
  }
};

struct AccessRecord {
  Slot slot;
  Epoch epoch;
  uint64_t addr;
  uint8_t size;
  uint8_t flags;
  uint32_t pc;
};

class ShadowMemory {
 public:
  /// `memory` carries the cap that models node OOM; may be null (uncapped).
  ShadowMemory(uint32_t cells_per_granule, MemoryScope* memory);

  /// Checks `access` against the recorded cells of its granule(s), reports
  /// conflicts through `on_race`, then records the access (possibly evicting
  /// the round-robin victim). `clock` is the accessing thread's current
  /// vector clock (used for the happens-before test). Returns kOutOfMemory
  /// when the memory cap is hit; the caller stops analysis.
  Status ProcessAccess(const AccessRecord& access, const VectorClock& clock,
                       const std::function<void(const RaceReport&)>& on_race);

  /// Drops every shadow line (the "archer-low" flush between independent
  /// parallel regions). Releases the charged memory.
  void Flush();

  uint64_t GranuleCount() const;
  uint64_t MemoryBytes() const { return memory_ ? memory_->current() : 0; }

  /// Modeled bytes charged per granule with the DEFAULT 4 cells: 4 packed
  /// 8-byte cells plus map overhead, mirroring TSan's "4 shadow words per
  /// application word" (the 5-7x of Fig. 7/8).
  static constexpr uint64_t kChargePerGranule = 40;

  /// The general form: 8 bytes per cell + 8 bytes map overhead, so widening
  /// the shadow (bench_eviction's ablation) costs proportionally more.
  uint64_t ChargePerGranule() const { return 8ull * cells_per_granule_ + 8; }

 private:
  struct Line {
    std::vector<ShadowCell> cells;
    uint32_t next_victim = 0;  // round-robin eviction cursor
  };

  static constexpr size_t kShards = 64;
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<uint64_t, Line> lines;
  };

  Shard& ShardFor(uint64_t granule) {
    return shards_[(granule * 0x9e3779b97f4a7c15ULL) >> 58];
  }

  Status ProcessGranule(uint64_t granule, uint8_t offset, uint8_t size,
                        const AccessRecord& access, const VectorClock& clock,
                        const std::function<void(const RaceReport&)>& on_race);

  const uint32_t cells_per_granule_;
  MemoryScope* memory_;
  std::array<Shard, kShards> shards_;
};

}  // namespace sword::hb
