// AMG-mini: geometric multigrid V-cycle solver (the AMG2013 stand-in).
//
// Two roles in the paper's evaluation:
//
//  RACES (Table IV): AMG2013 carries 14 read-write races inside one large
//  parallel region; ARCHER finds only 4 of them - "it maintains only a
//  limited number of previous accesses, while SWORD detects them since it
//  logs every memory access". Here the same structure is seeded explicitly:
//  4 pinned races any HB detector sees, plus 10 whose write record is purged
//  by shadow-cell eviction (deterministically - see drb_eviction.cpp).
//
//  MEMORY (Fig. 8): the problem-size knob (10..40, mirroring the paper's
//  10^3..40^3 grids) scales the grid as size^3, so the HB baseline's
//  shadow memory grows with the application footprint while SWORD's stays
//  at N_threads * 3.3 MB; past the simulated node cap the HB analysis OOMs,
//  reproducing Table IV's OOM row.
#include <cassert>
#include <cmath>

#include "workloads/hpc/hpc_common.h"
#include "workloads/ompscr/ompscr_common.h"

namespace sword::workloads {
namespace {

using namespace hpc;
using somp::Ctx;

struct Level {
  std::vector<double> u, unew, f, r;
  int64_t n;
};

/// Weighted-Jacobi smoothing sweeps for -u'' = f, tridiag(1, -2, 1) scaled.
void Smooth(Ctx& ctx, Level& lv, int sweeps) {
  for (int s = 0; s < sweeps; s++) {
    auto& src = (s % 2 == 0) ? lv.u : lv.unew;
    auto& dst = (s % 2 == 0) ? lv.unew : lv.u;
    ctx.For(1, lv.n - 1, [&](int64_t i) {
      const size_t idx = static_cast<size_t>(i);
      const double left = instr::load(src[idx - 1]);
      const double right = instr::load(src[idx + 1]);
      const double fi = instr::load(lv.f[idx]);
      const double jac = 0.5 * (left + right + fi);
      const double old = instr::load(src[idx]);
      instr::store(dst[idx], old + 0.8 * (jac - old));
    });
  }
  if (sweeps % 2 == 1) {
    // Copy back so u always holds the latest iterate.
    ctx.For(0, lv.n, [&](int64_t i) {
      instr::store(lv.u[static_cast<size_t>(i)],
                   instr::load(lv.unew[static_cast<size_t>(i)]));
    });
  }
}

/// r = f - A u.
void Residual(Ctx& ctx, Level& lv) {
  ctx.For(1, lv.n - 1, [&](int64_t i) {
    const size_t idx = static_cast<size_t>(i);
    const double au = 2.0 * instr::load(lv.u[idx]) - instr::load(lv.u[idx - 1]) -
                      instr::load(lv.u[idx + 1]);
    instr::store(lv.r[idx], instr::load(lv.f[idx]) - au);
  });
}

void AmgRun(const WorkloadParams& p) {
  const uint64_t s = p.size ? p.size : 20;
  const int64_t n_fine = static_cast<int64_t>(s * s * s);  // the paper's s^3 grid
  const int cycles = 2;

  // Build the level hierarchy down to ~32 points.
  std::vector<Level> levels;
  for (int64_t n = n_fine; n >= 32; n /= 2) {
    Level lv;
    lv.n = n;
    lv.u.assign(static_cast<size_t>(n), 0.0);
    lv.unew.assign(static_cast<size_t>(n), 0.0);
    lv.f.assign(static_cast<size_t>(n), 0.0);
    lv.r.assign(static_cast<size_t>(n), 0.0);
    levels.push_back(std::move(lv));
  }
  // Smooth forcing on the fine grid.
  for (int64_t i = 0; i < n_fine; i++) {
    levels[0].f[static_cast<size_t>(i)] =
        std::sin(3.14159 * static_cast<double>(i) / static_cast<double>(n_fine)) /
        static_cast<double>(n_fine);
  }

  const double initial_res = [&] {
    double acc = 0.0;
    for (int64_t i = 1; i + 1 < n_fine; i++) acc += std::abs(levels[0].f[i]);
    return acc;
  }();

  // The 14 seeded race targets (one large parallel region, like AMG2013's
  // ~400-LOC region).
  double doc_race[4] = {0, 0, 0, 0};
  double evict_race[10] = {0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  somp::Sequencer doc_seq[4];
  somp::Sequencer ev_seq[10];

  somp::Parallel(p.threads, [&](Ctx& ctx) {
    using std::source_location;
    // -- 4 races the HB baseline catches (Table IV "archer: 4").
    ompscr::PinnedDocRace(ctx, doc_seq[0], doc_race[0],
                          source_location::current(), source_location::current());
    ompscr::PinnedDocRace(ctx, doc_seq[1], doc_race[1],
                          source_location::current(), source_location::current());
    ompscr::PinnedDocRace(ctx, doc_seq[2], doc_race[2],
                          source_location::current(), source_location::current());
    ompscr::PinnedDocRace(ctx, doc_seq[3], doc_race[3],
                          source_location::current(), source_location::current());
    // -- 10 races only SWORD reports (shadow-cell eviction purges the write).
    ompscr::EvictionUndocRace(ctx, ev_seq[0], evict_race[0], "amg-e0",
                              source_location::current(), source_location::current());
    ompscr::EvictionUndocRace(ctx, ev_seq[1], evict_race[1], "amg-e1",
                              source_location::current(), source_location::current());
    ompscr::EvictionUndocRace(ctx, ev_seq[2], evict_race[2], "amg-e2",
                              source_location::current(), source_location::current());
    ompscr::EvictionUndocRace(ctx, ev_seq[3], evict_race[3], "amg-e3",
                              source_location::current(), source_location::current());
    ompscr::EvictionUndocRace(ctx, ev_seq[4], evict_race[4], "amg-e4",
                              source_location::current(), source_location::current());
    ompscr::EvictionUndocRace(ctx, ev_seq[5], evict_race[5], "amg-e5",
                              source_location::current(), source_location::current());
    ompscr::EvictionUndocRace(ctx, ev_seq[6], evict_race[6], "amg-e6",
                              source_location::current(), source_location::current());
    ompscr::EvictionUndocRace(ctx, ev_seq[7], evict_race[7], "amg-e7",
                              source_location::current(), source_location::current());
    ompscr::EvictionUndocRace(ctx, ev_seq[8], evict_race[8], "amg-e8",
                              source_location::current(), source_location::current());
    ompscr::EvictionUndocRace(ctx, ev_seq[9], evict_race[9], "amg-e9",
                              source_location::current(), source_location::current());
    ctx.Barrier();

    // -- The multigrid V-cycles.
    for (int cycle = 0; cycle < cycles; cycle++) {
      // Downstroke: smooth, compute residual, restrict.
      for (size_t lev = 0; lev + 1 < levels.size(); lev++) {
        Smooth(ctx, levels[lev], 2);
        Residual(ctx, levels[lev]);
        Level& coarse = levels[lev + 1];
        Level& fine = levels[lev];
        ctx.For(1, coarse.n - 1, [&](int64_t i) {
          const size_t ci = static_cast<size_t>(i);
          const size_t fi2 = 2 * ci;
          const double rv = 0.25 * (instr::load(fine.r[fi2 - 1]) +
                                    2.0 * instr::load(fine.r[fi2]) +
                                    instr::load(fine.r[fi2 + 1]));
          instr::store(coarse.f[ci], rv);
          instr::store(coarse.u[ci], 0.0);
          instr::store(coarse.unew[ci], 0.0);
        });
      }
      // Coarse solve: heavy smoothing.
      Smooth(ctx, levels.back(), 16);
      // Upstroke: prolong + correct, then post-smooth.
      for (size_t lev = levels.size() - 1; lev-- > 0;) {
        Level& coarse = levels[lev + 1];
        Level& fine = levels[lev];
        ctx.For(1, coarse.n - 1, [&](int64_t i) {
          const size_t ci = static_cast<size_t>(i);
          const size_t fi2 = 2 * ci;
          const double uc = instr::load(coarse.u[ci]);
          const double un = instr::load(coarse.u[ci + 1]);
          const double cur0 = instr::load(fine.u[fi2]);
          instr::store(fine.u[fi2], cur0 + uc);
          const double cur1 = instr::load(fine.u[fi2 + 1]);
          instr::store(fine.u[fi2 + 1], cur1 + 0.5 * (uc + un));
        });
        Smooth(ctx, fine, 2);
      }
    }
  });

  // The V-cycles must have reduced the fine-grid residual.
  double final_res = 0.0;
  {
    Level& lv = levels[0];
    for (int64_t i = 1; i + 1 < n_fine; i++) {
      const double au = 2.0 * lv.u[i] - lv.u[i - 1] - lv.u[i + 1];
      final_res += std::abs(lv.f[i] - au);
    }
  }
  assert(final_res < initial_res);
  (void)final_res;
  (void)initial_res;
}

}  // namespace

void RegisterAmg(WorkloadRegistry& r) {
  // One registration per problem size, matching Table IV / Fig. 8's rows.
  for (uint64_t s : {uint64_t{10}, uint64_t{20}, uint64_t{30}, uint64_t{40}}) {
    Workload w;
    w.suite = "hpc";
    w.name = "AMG2013_" + std::to_string(s);
    w.description = "multigrid V-cycle, grid " + std::to_string(s) + "^3; 14 races";
    w.documented_races = 4;   // the 4 previously known ones
    w.total_races = 14;
    w.archer_expected = 4;
    w.run = [s](const WorkloadParams& p) {
      WorkloadParams q = p;
      q.size = s;
      AmgRun(q);
    };
    w.baseline_bytes = [s](const WorkloadParams&) {
      // 4 arrays per level, levels sum to ~2x the fine grid.
      return s * s * s * 4 * 2 * sizeof(double);
    };
    w.default_size = s;
    r.Register(std::move(w));
  }
}

void RegisterHpccg(WorkloadRegistry& r);
void RegisterMiniFe(WorkloadRegistry& r);
void RegisterLulesh(WorkloadRegistry& r);

void RegisterHpc(WorkloadRegistry& r) {
  RegisterHpccg(r);
  RegisterMiniFe(r);
  RegisterLulesh(r);
  RegisterAmg(r);
}

}  // namespace sword::workloads
