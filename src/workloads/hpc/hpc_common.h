// Shared pieces for the mini HPC applications (paper SIV-C).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "somp/instr.h"
#include "somp/runtime.h"
#include "somp/sequencer.h"
#include "workloads/workload.h"

namespace sword::workloads::hpc {

/// Instrumented dot product: private partials + critical combine + barrier;
/// race-free. `scratch` is the shared accumulator (reset by Single).
/// Returns the completed dot product (read after the ordering barrier).
inline double Dot(somp::Ctx& ctx, const std::vector<double>& a,
                  const std::vector<double>& b, int64_t n, double& scratch,
                  const char* lock_name) {
  ctx.Single([&] { instr::store(scratch, 0.0); });  // implicit barrier
  double partial = 0.0;
  ctx.For(0, n,
          [&](int64_t i) {
            partial += instr::load(a[static_cast<size_t>(i)]) *
                       instr::load(b[static_cast<size_t>(i)]);
          },
          {.nowait = true});
  ctx.Critical(lock_name, [&] {
    const double cur = instr::load(scratch);
    instr::store(scratch, cur + partial);
  });
  ctx.Barrier();  // all contributions visible below
  const double result = instr::load(scratch);
  ctx.Barrier();  // protect the reads from the next caller's reset
  return result;
}

/// y[i] = alpha*x[i] + y[i] over static blocks; implicit barrier.
inline void Axpy(somp::Ctx& ctx, double alpha, const std::vector<double>& x,
                 std::vector<double>& y, int64_t n) {
  ctx.For(0, n, [&](int64_t i) {
    const size_t idx = static_cast<size_t>(i);
    const double yi = instr::load(y[idx]);
    instr::store(y[idx], alpha * instr::load(x[idx]) + yi);
  });
}

/// q = A*p for the 1D Laplacian tridiag(-1, 2+shift, -1); implicit barrier.
inline void TridiagMatVec(somp::Ctx& ctx, const std::vector<double>& p,
                          std::vector<double>& q, int64_t n, double shift) {
  ctx.For(0, n, [&](int64_t i) {
    const size_t idx = static_cast<size_t>(i);
    double v = (2.0 + shift) * instr::load(p[idx]);
    if (idx > 0) v -= instr::load(p[idx - 1]);
    if (idx + 1 < static_cast<size_t>(n)) v -= instr::load(p[idx + 1]);
    instr::store(q[idx], v);
  });
}

}  // namespace sword::workloads::hpc
