// HPCCG-mini: conjugate gradient on a 1D Laplacian (Mantevo's HPCCG shape).
//
// Carries exactly one race, the one the paper reports (SIV-C): "a parallel
// region where all threads are writing the same value into a shared
// variable. While this race may seem harmless, it in fact results in
// undefined behavior" - here, every team member stores the freshly computed
// residual norm into a shared `normr` scalar each iteration. Both detectors
// are expected to report it (Table IV: archer 1, sword 1).
#include <cassert>

#include "workloads/hpc/hpc_common.h"

namespace sword::workloads {
namespace {

using namespace hpc;
using somp::Ctx;

void Hpccg(const WorkloadParams& p) {
  const int64_t n = static_cast<int64_t>(p.size ? p.size : 20000);
  const int max_iters = 12;

  // System: A = tridiag(-1, 3.0, -1), b = A * ones -> solution is ones.
  std::vector<double> x(n, 0.0), b(n), r(n), pvec(n), q(n, 0.0);
  {
    std::vector<double> ones(n, 1.0);
    for (int64_t i = 0; i < n; i++) {
      double v = 3.0 * ones[i];
      if (i > 0) v -= 1.0;
      if (i + 1 < n) v -= 1.0;
      b[i] = v;
    }
  }

  double scratch = 0.0;
  double normr = 0.0;  // the benign-but-UB shared write target

  somp::Parallel(p.threads, [&](Ctx& ctx) {
    // r = b (x starts at 0), p = r.
    ctx.For(0, n, [&](int64_t i) {
      const size_t idx = static_cast<size_t>(i);
      instr::store(r[idx], b[idx]);
      instr::store(pvec[idx], b[idx]);
    });

    double rtrans = Dot(ctx, r, r, n, scratch, "cg-dot");

    for (int iter = 0; iter < max_iters; iter++) {
      TridiagMatVec(ctx, pvec, q, n, 1.0);
      const double pq = Dot(ctx, pvec, q, n, scratch, "cg-dot");
      const double alpha = rtrans / pq;

      Axpy(ctx, alpha, pvec, x, n);    // x += alpha p
      Axpy(ctx, -alpha, q, r, n);      // r -= alpha q

      const double new_rtrans = Dot(ctx, r, r, n, scratch, "cg-dot");
      const double beta = new_rtrans / rtrans;
      rtrans = new_rtrans;

      // HPCCG's race: every thread writes the same norm value, unprotected.
      instr::store(normr, new_rtrans);

      // p = r + beta p.
      ctx.For(0, n, [&](int64_t i) {
        const size_t idx = static_cast<size_t>(i);
        const double pi = instr::load(pvec[idx]);
        instr::store(pvec[idx], instr::load(r[idx]) + beta * pi);
      });
    }
  });

  // CG on this SPD system converges well within max_iters.
  double err = 0.0;
  for (int64_t i = 0; i < n; i++) err += (x[i] - 1.0) * (x[i] - 1.0);
  assert(err < 1e-6 * static_cast<double>(n));
  (void)err;
  (void)normr;
}

}  // namespace

void RegisterHpccg(WorkloadRegistry& r) {
  Workload w;
  w.suite = "hpc";
  w.name = "HPCCG";
  w.description = "mini conjugate gradient; one benign-but-UB shared write race";
  w.documented_races = 1;
  w.total_races = 1;
  w.archer_expected = 1;
  w.run = Hpccg;
  w.baseline_bytes = [](const WorkloadParams& p) {
    return (p.size ? p.size : 20000) * 5 * sizeof(double);
  };
  w.default_size = 20000;
  r.Register(std::move(w));
}

}  // namespace sword::workloads
