// LULESH-mini: explicit shock-hydrodynamics skeleton; race-free.
//
// What matters for the paper's evaluation is LULESH's STRUCTURE, not its
// physics: it "executes a large number of parallel regions and barriers
// that significantly increase the number of I/O operations during the log
// collection phase" (SIV-C) and "generates almost 300,000 independent
// parallel regions" that blow up SWORD's offline analysis time (Table V).
// This mini version runs a time-step loop that opens SIX tiny parallel
// regions per step - scaled down in count, identical in shape: regions
// dominate, per-region work is small.
#include <cassert>

#include "workloads/hpc/hpc_common.h"

namespace sword::workloads {
namespace {

using somp::Ctx;

void Lulesh(const WorkloadParams& p) {
  // size = number of time steps; elements per mesh kept modest so region
  // overhead dominates, like the real code's many tiny regions.
  const int64_t steps = static_cast<int64_t>(p.size ? p.size : 60);
  const int64_t nelem = 1500;
  const int64_t nnode = nelem + 1;

  std::vector<double> coord(nnode), vel(nnode, 0.0), accel(nnode, 0.0);
  std::vector<double> force(nnode, 0.0), energy(nelem, 1.0), pressure(nelem, 0.0);
  for (int64_t i = 0; i < nnode; i++) coord[i] = static_cast<double>(i);
  const double dt = 1e-4;

  for (int64_t s = 0; s < steps; s++) {
    // 1. Element pressure from energy (EOS).
    somp::Parallel(p.threads, [&](Ctx& ctx) {
      ctx.For(0, nelem, [&](int64_t e) {
        const double en = instr::load(energy[static_cast<size_t>(e)]);
        instr::store(pressure[static_cast<size_t>(e)], 0.4 * en);
      });
    });
    // 2. Nodal forces from element pressures (gather: node reads its two
    // adjacent elements; writes are node-disjoint).
    somp::Parallel(p.threads, [&](Ctx& ctx) {
      ctx.For(0, nnode, [&](int64_t i) {
        double f = 0.0;
        if (i > 0) f += instr::load(pressure[static_cast<size_t>(i) - 1]);
        if (i < nelem) f -= instr::load(pressure[static_cast<size_t>(i)]);
        instr::store(force[static_cast<size_t>(i)], f);
      });
    });
    // 3. Acceleration.
    somp::Parallel(p.threads, [&](Ctx& ctx) {
      ctx.For(0, nnode, [&](int64_t i) {
        instr::store(accel[static_cast<size_t>(i)],
                     instr::load(force[static_cast<size_t>(i)]));
      });
    });
    // 4. Velocity update.
    somp::Parallel(p.threads, [&](Ctx& ctx) {
      ctx.For(0, nnode, [&](int64_t i) {
        const double v = instr::load(vel[static_cast<size_t>(i)]);
        instr::store(vel[static_cast<size_t>(i)],
                     v + dt * instr::load(accel[static_cast<size_t>(i)]));
      });
    });
    // 5. Position update.
    somp::Parallel(p.threads, [&](Ctx& ctx) {
      ctx.For(0, nnode, [&](int64_t i) {
        const double c = instr::load(coord[static_cast<size_t>(i)]);
        instr::store(coord[static_cast<size_t>(i)],
                     c + dt * instr::load(vel[static_cast<size_t>(i)]));
      });
    });
    // 6. Element energy update (work done by nodal motion; element reads
    // its two nodes, writes itself).
    somp::Parallel(p.threads, [&](Ctx& ctx) {
      ctx.For(0, nelem, [&](int64_t e) {
        const size_t idx = static_cast<size_t>(e);
        const double dv = instr::load(vel[idx + 1]) - instr::load(vel[idx]);
        const double en = instr::load(energy[idx]);
        instr::store(energy[idx],
                     en - dt * instr::load(pressure[idx]) * dv);
      });
    });
  }

  // Sanity: energies stay finite and positive under this mild forcing.
  for (int64_t e = 0; e < nelem; e++) assert(energy[e] > 0.0);
}

}  // namespace

void RegisterLulesh(WorkloadRegistry& r) {
  Workload w;
  w.suite = "hpc";
  w.name = "LULESH";
  w.description = "hydro skeleton: six tiny regions per step; race-free";
  w.documented_races = 0;
  w.total_races = 0;
  w.archer_expected = 0;
  w.run = Lulesh;
  w.baseline_bytes = [](const WorkloadParams&) {
    return uint64_t{1500 * 6 * sizeof(double)};
  };
  w.default_size = 60;  // steps -> 360 parallel regions
  r.Register(std::move(w));
}

}  // namespace sword::workloads
