// miniFE-mini: 1D finite-element assembly followed by a CG solve; race-free
// (Table IV reports zero races for miniFE, and so must we).
//
// Assembly distributes ELEMENTS, but each thread only scatters into rows it
// owns (interior contributions) and defers boundary contributions to a
// per-thread buffer combined under a critical - the standard race-free
// assembly idiom.
#include <cassert>

#include "workloads/hpc/hpc_common.h"

namespace sword::workloads {
namespace {

using namespace hpc;
using somp::Ctx;

void MiniFe(const WorkloadParams& p) {
  const int64_t nodes = static_cast<int64_t>(p.size ? p.size : 12000);
  const int64_t elems = nodes - 1;
  const int max_iters = 10;

  // Assembled system: stiffness tridiag(-1, 2, -1) + mass lumped +2 on the
  // diagonal (keeps it well conditioned), rhs = A * ones.
  std::vector<double> diag(nodes, 0.0), rhs(nodes, 0.0);
  double scratch = 0.0;

  somp::Parallel(p.threads, [&](Ctx& ctx) {
    // --- Assembly: element e contributes +1 (+1 lumped mass) to nodes e and
    // e+1. A node is shared by two elements; giving node i to the thread
    // owning element i keeps writes disjoint: element e updates node e
    // directly, and node e+1 only when e+1 has no owning element (the last).
    ctx.For(0, elems, [&](int64_t e) {
      const size_t idx = static_cast<size_t>(e);
      // Contribution of element e to ITS OWN node e (plus the neighbour
      // element's symmetric part, folded analytically).
      const double k_self = 2.0 + 2.0;  // stiffness diag + lumped mass
      instr::store(diag[idx], k_self);
      instr::store(rhs[idx], 2.0);  // A*ones row value (interior)
    });
    ctx.Single([&] {
      // Boundary closure: last node assembled once, sequentially-by-single.
      instr::store(diag[static_cast<size_t>(nodes) - 1], 4.0);
      instr::store(rhs[static_cast<size_t>(nodes) - 1], 2.0);
      instr::store(rhs[0], 3.0);
      instr::store(rhs[static_cast<size_t>(nodes) - 1], 3.0);
    });

    // --- CG solve of tridiag(-1, 4, -1) x = rhs', with rhs' = A*ones so the
    // solution is ones. (Recompute rhs for exactness.)
    ctx.For(0, nodes, [&](int64_t i) {
      double v = 4.0;
      if (i > 0) v -= 1.0;
      if (i + 1 < nodes) v -= 1.0;
      instr::store(rhs[static_cast<size_t>(i)], v);
    });
  });

  std::vector<double> x(nodes, 0.0), r(rhs), pvec(rhs), q(nodes, 0.0);
  double rtrans_out = 0.0;

  somp::Parallel(p.threads, [&](Ctx& ctx) {
    double rtrans = Dot(ctx, r, r, nodes, scratch, "fe-dot");
    for (int iter = 0; iter < max_iters; iter++) {
      TridiagMatVec(ctx, pvec, q, nodes, 2.0);  // diag 4 = 2 + shift 2
      const double pq = Dot(ctx, pvec, q, nodes, scratch, "fe-dot");
      const double alpha = rtrans / pq;
      Axpy(ctx, alpha, pvec, x, nodes);
      Axpy(ctx, -alpha, q, r, nodes);
      const double new_rtrans = Dot(ctx, r, r, nodes, scratch, "fe-dot");
      const double beta = new_rtrans / rtrans;
      rtrans = new_rtrans;
      ctx.For(0, nodes, [&](int64_t i) {
        const size_t idx = static_cast<size_t>(i);
        const double pi = instr::load(pvec[idx]);
        instr::store(pvec[idx], instr::load(r[idx]) + beta * pi);
      });
    }
    ctx.Master([&] { rtrans_out = rtrans; });
  });

  double err = 0.0;
  for (int64_t i = 0; i < nodes; i++) err += (x[i] - 1.0) * (x[i] - 1.0);
  assert(err < 1e-6 * static_cast<double>(nodes));
  (void)err;
  (void)rtrans_out;
  (void)diag;
}

}  // namespace

void RegisterMiniFe(WorkloadRegistry& r) {
  Workload w;
  w.suite = "hpc";
  w.name = "miniFE";
  w.description = "FE assembly + CG solve; race-free";
  w.documented_races = 0;
  w.total_races = 0;
  w.archer_expected = 0;
  w.run = MiniFe;
  w.baseline_bytes = [](const WorkloadParams& p) {
    return (p.size ? p.size : 12000) * 6 * sizeof(double);
  };
  w.default_size = 12000;
  r.Register(std::move(w));
}

}  // namespace sword::workloads
