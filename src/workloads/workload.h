// Workload framework: every benchmark program the paper evaluates on is
// registered here with its ground truth, so detectors can be scored
// mechanically (the methodology of DataRaceBench / the paper's SIV).
//
// Suites:
//   "drb"    - DataRaceBench-style microkernels, one known property each
//              (racy kernels end in "-yes", race-free in "-no");
//   "ompscr" - OmpSCR-style application kernels (md, quicksorts, fft, ...)
//              with documented and UNdocumented real races;
//   "hpc"    - mini HPC apps (hpccg, minife, lulesh, amg) for the
//              performance/memory evaluation.
//
// Ground truth per workload:
//   documented_races - races the original suite authors documented;
//   total_races      - real distinct races (pc pairs), including the
//                      undocumented ones the paper reports SWORD finding;
//   archer_expected  - races the HB baseline is expected to catch given its
//                      eviction/masking blind spots (paper Tables II/IV).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace sword::workloads {

struct WorkloadParams {
  uint32_t threads = 8;
  uint64_t size = 0;  // problem-size knob; 0 = workload default
};

struct Workload {
  std::string suite;
  std::string name;
  std::string description;

  int documented_races = 0;
  int total_races = 0;
  int archer_expected = 0;

  /// Runs the workload under whatever Tool is configured on the somp
  /// runtime. Must be deterministic given params.
  std::function<void(const WorkloadParams&)> run;

  /// Application data footprint in bytes for the given params (the
  /// "baseline" of the memory-overhead figures).
  std::function<uint64_t(const WorkloadParams&)> baseline_bytes;

  uint64_t default_size = 0;

  bool racy() const { return total_races > 0; }
};

class WorkloadRegistry {
 public:
  /// The process-wide registry; all suites are registered on first use.
  static WorkloadRegistry& Get();

  void Register(Workload workload);

  const Workload* Find(const std::string& suite, const std::string& name) const;
  std::vector<const Workload*> BySuite(const std::string& suite) const;
  std::vector<const Workload*> All() const;

 private:
  WorkloadRegistry() = default;
  std::vector<Workload> workloads_;
};

// Suite registration hooks (called once by WorkloadRegistry::Get).
void RegisterDrb(WorkloadRegistry& registry);
void RegisterOmpscr(WorkloadRegistry& registry);
void RegisterHpc(WorkloadRegistry& registry);

}  // namespace sword::workloads
