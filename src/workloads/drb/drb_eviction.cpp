// DataRaceBench-style kernels, part 2: the races ARCHER misses (paper SII,
// SIV-A) and SWORD catches.
//
// Two miss mechanisms are reproduced deterministically:
//
//  SHADOW-CELL EVICTION ("nowait", "privatemissing", "evictionshowcase"):
//    thread 0 writes a shared variable, then re-reads it from inside a
//    critical section several times. Each release ticks thread 0's epoch, so
//    every re-read is a DISTINCT shadow cell (TSan never merges same-thread
//    accesses from different epochs) - four of them purge the write record.
//    A later unordered read by another thread then finds only read cells:
//    read-read, no race reported. The offline analysis still sees the write
//    (SWORD logs every access), so SWORD reports it.
//
//  HAPPENS-BEFORE MASKING ("fig1-schedule-a/b"):
//    the two interleavings of Fig. 1, pinned with a Sequencer. In schedule
//    (b) thread 0's lock release happens-before thread 1's acquire, covering
//    the unprotected write - the HB detector stays silent. The offset-span
//    judgment is schedule-independent, so SWORD reports the race under both
//    schedules.
#include "workloads/drb/drb_common.h"

namespace sword::workloads {
namespace {

using namespace drb;
using somp::Ctx;

/// The eviction pattern described above, parameterized so several kernels
/// (and the shadow-cell ablation bench) can share it. `extra_reads` controls
/// how many distinct-epoch same-thread reads flood the shadow line. The
/// racy write/read locations are taken from the CALLER so that two uses of
/// the pattern in one kernel count as two distinct races.
void EvictionPattern(Ctx& ctx, somp::Sequencer& seq, double& x, int extra_reads,
                     const char* lock_name, uint64_t gate,
                     const std::source_location& write_loc,
                     const std::source_location& read_loc) {
  if (ctx.thread_num() == 0) {
    instr::store(x, 1.0, write_loc);  // the racy write; evicted from shadow below
    double acc = 0.0;
    for (int k = 0; k < extra_reads; k++) {
      // Same-thread reads at distinct epochs (the release after each
      // critical ticks the epoch): each one occupies a fresh shadow cell.
      ctx.Critical(lock_name, [&] { acc += instr::load(x); });
    }
    (void)acc;
    seq.Await(gate);  // open the gate for the unordered reader
  } else if (ctx.thread_num() == 1) {
    seq.WaitUntil(gate + 1);
    (void)instr::load(x, read_loc);  // races with thread 0's write; HB misses
  }
}

// nowait-orig-yes: the first loop's write escapes past the nowait; the
// paper reports ARCHER missing this read-write race via cell eviction.
void NowaitRace(const WorkloadParams& p) {
  double x = 0.0;
  somp::Sequencer seq;
  somp::Parallel(std::max(2u, p.threads), [&](Ctx& ctx) {
    EvictionPattern(ctx, seq, x, 6, "nowait-red", 0,
                    std::source_location::current(),
                    std::source_location::current());
  });
}

// privatemissing-orig-yes: a temporary that should have been private. TWO
// real races (the documentation lists one; the second is the undocumented
// one SWORD additionally reports in SIV-A). Both use the eviction pattern,
// so ARCHER misses both.
void PrivateMissing(const WorkloadParams& p) {
  double tmp = 0.0;    // documented race
  double tmp2 = 0.0;   // undocumented race
  somp::Sequencer seq1, seq2;
  somp::Parallel(std::max(2u, p.threads), [&](Ctx& ctx) {
    EvictionPattern(ctx, seq1, tmp, 6, "pm-red1", 0,
                    std::source_location::current(),
                    std::source_location::current());
    ctx.Barrier();
    EvictionPattern(ctx, seq2, tmp2, 6, "pm-red2", 0,
                    std::source_location::current(),
                    std::source_location::current());
  });
}

// evictionshowcase-yes: SII's "a[i] = a[i] + a[0]" shape, engineered so the
// write record of a[0] is deterministically purged before the unordered
// reads arrive. Used by bench_eviction to sweep the cell count: with enough
// cells the HB detector finds the race again.
void EvictionShowcase(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> a(n, 1.0);
  somp::Sequencer seq;
  somp::Parallel(std::max(2u, p.threads), [&](Ctx& ctx) {
    if (ctx.thread_num() == 0) {
      instr::store(a[0], 3.0);  // the write every other thread races with
      double acc = 0.0;
      for (int k = 0; k < 8; k++) {
        ctx.Critical("ev-red", [&] { acc += instr::load(a[0]); });
      }
      (void)acc;
      seq.Await(0);
    } else {
      seq.WaitUntil(1);
      // Every other thread reads a[0] while updating its own block. The
      // nowait keeps thread 0 (which skips this loop) from deadlocking the
      // workshare barrier.
      ctx.For(0, static_cast<int64_t>(n),
              [&](int64_t i) {
                const double base = instr::load(a[0]);
                if (i > 0) instr::store(a[static_cast<size_t>(i)], base + 1.0);
              },
              {.nowait = true});
    }
  });
}

// fig1 program: T0 writes x unprotected, then uses the lock; T1 reads and
// writes x under the lock. `mask` pins which thread wins the lock first.
void Fig1(const WorkloadParams& p, bool mask) {
  double x = 0.0;
  somp::Sequencer seq;
  somp::Parallel(std::max(2u, p.threads), [&](Ctx& ctx) {
    if (ctx.thread_num() == 0) {
      if (mask) {
        // Schedule (b): T0 entirely first; release->acquire covers the write.
        instr::store(x, 1.0);
        ctx.Critical("fig1-L", [&] { (void)instr::load(x); });
        seq.Await(0);
      } else {
        // Schedule (a): T1's critical section completes BEFORE T0's write,
        // so no happens-before path covers the conflict.
        seq.WaitUntil(1);
        instr::store(x, 1.0);
        ctx.Critical("fig1-L", [&] { (void)instr::load(x); });
      }
    } else if (ctx.thread_num() == 1) {
      if (mask) seq.WaitUntil(1);
      // Load+store share one source location so the write-read and
      // write-write conflicts with T0's store count as ONE race.
      ctx.Critical("fig1-L", [&] { instr::racy_increment(x, 2.0); });
      if (!mask) seq.Await(0);
    }
  });
}

void Fig1ScheduleA(const WorkloadParams& p) { Fig1(p, /*mask=*/false); }
void Fig1ScheduleB(const WorkloadParams& p) { Fig1(p, /*mask=*/true); }

}  // namespace

void RegisterDrbEviction(WorkloadRegistry& r) {
  auto add = [&](const char* name, const char* desc, int doc, int total, int archer,
                 std::function<void(const WorkloadParams&)> run) {
    Workload w;
    w.suite = "drb";
    w.name = name;
    w.description = desc;
    w.documented_races = doc;
    w.total_races = total;
    w.archer_expected = archer;
    w.run = std::move(run);
    w.baseline_bytes = drb::DoubleArrays(1);
    w.default_size = drb::kDefaultN;
    r.Register(std::move(w));
  };

  add("nowait-orig-yes", "write escapes nowait; HB misses via cell eviction",
      1, 1, 0, NowaitRace);
  add("privatemissing-orig-yes",
      "missing private(tmp); 2 real races (1 undocumented), HB misses both",
      1, 2, 0, PrivateMissing);
  add("evictionshowcase-yes", "SII's a[i]=a[i]+a[0] with deterministic eviction",
      1, 1, 0, EvictionShowcase);
  add("fig1-schedule-a-yes", "Fig. 1(a): no HB path, both tools report",
      1, 1, 1, Fig1ScheduleA);
  add("fig1-schedule-b-yes", "Fig. 1(b): release->acquire masks the HB tool",
      1, 1, 0, Fig1ScheduleB);
}

}  // namespace sword::workloads
