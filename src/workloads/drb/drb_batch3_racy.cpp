// DataRaceBench-style kernels, part 6: additional racy patterns - tree
// dependences, min/max reductions, packing through a shared cursor,
// memoization tables, missing double buffers, strided boundary writes,
// small shared-counter arrays, unbarriered master init, and exit-flag
// polling. None of them use locks, so the HB baseline catches them all
// deterministically (no release->acquire edges to mask through).
#include <algorithm>
#include <thread>

#include "workloads/drb/drb_common.h"

namespace sword::workloads {
namespace {

using namespace drb;
using somp::Ctx;

// treedep-orig-yes: a[i] += a[i/2] - the tree-shaped dependence; upper-half
// elements read lower-half elements owned by other threads.
void TreeDep(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> a(n, 1.0);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(1, static_cast<int64_t>(n), [&](int64_t i) {
      const double parent = instr::load(a[static_cast<size_t>(i) / 2]);
      instr::racy_increment(a[static_cast<size_t>(i)], parent);
    });
  });
}

// minmaxreduction-orig-yes: the classic racy global-minimum update; the
// check and the update are two distinct racing statements (documented as
// one race, two real pc pairs).
void MinMaxMissing(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> v(n);
  // Strictly decreasing data: every thread's block contains new minima, so
  // every thread writes and the races manifest on every schedule.
  for (uint64_t i = 0; i < n; i++) v[i] = 1000.0 - static_cast<double>(i);
  double global_min = 1e9;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
      // The racy read-min-write update. (Unconditional store rather than a
      // guarded one so BOTH real pc pairs - read/write and write/write -
      // manifest on every schedule; a guarded store would only write from
      // whichever threads happened to observe a stale minimum.)
      const double cur = instr::load(global_min);          // racy read
      instr::store(global_min,
                   std::min(cur, v[static_cast<size_t>(i)]));  // racy update
    });
  });
  (void)global_min;
}

// packing-orig-yes: a shared output cursor bumped without atomicity, and
// collided writes through it into a small table.
void PackingRace(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<int64_t> table(8, 0);
  int64_t cursor = 0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
      instr::racy_increment(cursor);  // race 1: the cursor itself
      // race 2: slots collide because the cursor values repeat across
      // threads (pigeonhole over 8 slots guarantees it).
      instr::store(table[static_cast<size_t>(i) % table.size()],
                   instr::load(cursor));
    });
  });
}

// fibtable-orig-yes: memoization filled in parallel; f[i] needs f[i-1] and
// f[i-2], which cross chunk boundaries (two real pc pairs).
void FibTable(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> f(n, 0.0);
  f[0] = 0.0;
  f[1] = 1.0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(2, static_cast<int64_t>(n), [&](int64_t i) {
      const double f1 = instr::load(f[static_cast<size_t>(i) - 1]);
      const double f2 = instr::load(f[static_cast<size_t>(i) - 2]);
      instr::store(f[static_cast<size_t>(i)], 0.5 * f1 + 0.25 * f2);
    });
  });
}

// doublebuffer-missing-yes: a stencil sweep updating IN PLACE - reads of
// neighbours race with their in-place updates (the bug the jacobi kernel's
// second buffer exists to prevent).
void DoubleBufferMissing(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> u(n, 1.0);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(1, static_cast<int64_t>(n) - 1, [&](int64_t i) {
      const size_t idx = static_cast<size_t>(i);
      const double left = instr::load(u[idx - 1]);
      const double right = instr::load(u[idx + 1]);
      instr::store(u[idx], 0.5 * (left + right));
    });
  });
}

// stride2boundary-orig-yes: each chunk-1 iteration writes its even slot and
// the NEXT even slot - adjacent iterations live on different lanes, so the
// shared slot races on every run.
void Stride2Boundary(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> a(2 * n + 4, 0.0);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n),
            [&](int64_t i) {
              instr::store(a[static_cast<size_t>(2 * i)], 1.0);
              instr::store(a[static_cast<size_t>(2 * i) + 2], 2.0);
            },
            {.schedule = somp::Schedule::kStatic, .chunk = 1});
  });
}

// sharedcounters-orig-yes: a small array of counters hashed by iteration -
// every counter is bumped from many threads.
void SharedCounters(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<int64_t> counters(4, 0);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
      instr::racy_increment(counters[static_cast<size_t>(i) % counters.size()]);
    });
  });
}

// masterinit-orig-yes: master initializes the table while the workers are
// already reading it (the missing-barrier variant of broadcast).
void MasterInit(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> table(n, 0.0);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.Master([&] {
      for (uint64_t i = 0; i < n; i++) instr::store(table[i], 1.0);
    });
    // no barrier: workers read while the master still writes
    double acc = 0.0;
    ctx.For(0, static_cast<int64_t>(n),
            [&](int64_t i) { acc += instr::load(table[static_cast<size_t>(i)]); },
            {.nowait = true});
    (void)acc;
  });
}

// exitflag-orig-yes: workers poll a completion flag the master sets with a
// plain (non-atomic) store.
void ExitFlag(const WorkloadParams& p) {
  int64_t done = 0;
  somp::Parallel(std::max(2u, p.threads), [&](Ctx& ctx) {
    if (ctx.thread_num() == 0) {
      instr::store(done, int64_t{1});  // plain store: races with the polls
    } else {
      for (int spin = 0; spin < 50; spin++) {
        if (instr::load(done) != 0) break;
        std::this_thread::yield();
      }
    }
  });
}

// wrongorderwrite-orig-yes: two phases separated by a nowait loop; the
// second phase re-writes elements the first phase's laggards still touch.
void WrongOrderWrite(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> a(n, 0.0);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n),
            [&](int64_t i) { instr::store(a[static_cast<size_t>(i)], 1.0); },
            {.schedule = somp::Schedule::kStatic, .chunk = 1, .nowait = true});
    // no barrier; chunk-1 interleaving means another lane's slot is written
    // below while that lane may still be in the first loop.
    ctx.For(0, static_cast<int64_t>(n),
            [&](int64_t i) {
              instr::racy_increment(a[static_cast<size_t>(i)], 2.0);
            },
            {.nowait = true});
  });
}

}  // namespace

void RegisterDrbBatch3Racy(WorkloadRegistry& r) {
  auto add = [&](const char* name, const char* desc, int doc, int total, int archer,
                 std::function<void(const WorkloadParams&)> run) {
    Workload w;
    w.suite = "drb";
    w.name = name;
    w.description = desc;
    w.documented_races = doc;
    w.total_races = total;
    w.archer_expected = archer;
    w.run = std::move(run);
    w.baseline_bytes = drb::DoubleArrays(1);
    w.default_size = drb::kDefaultN;
    r.Register(std::move(w));
  };

  add("treedep-orig-yes", "a[i] += a[i/2] tree dependence", 1, 1, 1, TreeDep);
  add("minmaxreduction-orig-yes", "racy global-min check+update (2 real pairs)",
      1, 2, 2, MinMaxMissing);
  // Three real pc pairs: cursor RMW vs itself, cursor RMW vs the publishing
  // load, and the collided table writes.
  add("packing-orig-yes", "shared cursor + collided table writes", 1, 3, 3,
      PackingRace);
  add("fibtable-orig-yes", "memoized recurrence needs two predecessors",
      1, 2, 2, FibTable);
  // Two pairs: the left-neighbour read and the right-neighbour read each
  // race with the in-place store at chunk boundaries.
  add("doublebuffer-missing-yes", "in-place stencil without the second buffer",
      1, 2, 2, DoubleBufferMissing);
  add("stride2boundary-orig-yes", "even-slot writes overlap at chunk boundaries",
      1, 1, 1, Stride2Boundary);
  add("sharedcounters-orig-yes", "hashed counter array bumped racily", 1, 1, 1,
      SharedCounters);
  add("masterinit-orig-yes", "master init vs unbarriered reads", 1, 1, 1,
      MasterInit);
  add("exitflag-orig-yes", "non-atomic completion flag polling", 1, 1, 1, ExitFlag);
  add("wrongorderwrite-orig-yes", "phase 2 re-writes behind a nowait", 1, 1, 1,
      WrongOrderWrite);
}

}  // namespace sword::workloads
