// DataRaceBench-style kernels, part 5: coverage of the remaining runtime
// features - the reduction construct, locks held across barriers (the
// meta-file lockset column), deep nesting, read-only sharing, and
// phase-crossing nowait escapes.
#include "somp/reduce.h"
#include "workloads/drb/drb_common.h"

namespace sword::workloads {
namespace {

using namespace drb;
using somp::Ctx;

// forreduce-no: the reduction construct, race-free by construction.
void ForReduceClean(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> data(n, 0.25);
  double sum = 0.0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    somp::ForReduce<double>(
        ctx, 0, static_cast<int64_t>(n), sum, 0.0,
        [](double a, double b) { return a + b; },
        [&](int64_t i, double& acc) { acc += data[static_cast<size_t>(i)]; });
    // Safe to read the combined result after the construct's barrier.
    (void)instr::load(sum);
  });
}

// lockacrossbarrier-no: thread 0 acquires a lock BEFORE a barrier and
// accesses the shared variable AFTER it, so the access's barrier-interval
// segment opens with the lock already held - exercising the meta file's
// initial-lockset column end to end. Thread 1 accesses under the same lock.
void LockAcrossBarrier(const WorkloadParams& p) {
  double x = 0.0;
  somp::Lock lock;
  somp::Parallel(std::max(2u, p.threads), [&](Ctx& ctx) {
    if (ctx.thread_num() == 0) lock.Acquire();
    ctx.Barrier();
    if (ctx.thread_num() == 0) {
      instr::store(x, 1.0);  // segment opened with `lock` held
      lock.Release();
    } else if (ctx.thread_num() == 1) {
      lock.Acquire();  // blocks until thread 0 releases
      (void)instr::load(x);
      lock.Release();
    }
  });
}

// readonly-no: shared data read by everyone, written by no one.
void ReadOnlyShared(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> table(n, 1.5);
  std::vector<double> out(n, 0.0);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
      const size_t idx = static_cast<size_t>(i);
      // Every thread reads the SAME few hot entries plus its own: all reads.
      const double hot = instr::load(table[0]) + instr::load(table[n / 2]);
      instr::store(out[idx], hot * table[idx]);
    });
  });
}

// minusminus-orig-yes: the decrement twin of plusplus (DataRaceBench has
// both); one unsynchronized shared countdown.
void MinusMinus(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  int64_t remaining = static_cast<int64_t>(n);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
      (void)i;
      instr::racy_increment(remaining, int64_t{-1});
    });
  });
  (void)remaining;
}

// nestedlevel3-yes: a race between leaves of a depth-3 region tree - the
// offset-span judgment must see through three label components.
void NestedLevel3(const WorkloadParams& p) {
  (void)p;
  double shared_leaf = 0.0;
  somp::Parallel(2, [&](Ctx& outer) {
    outer.Parallel(2, [&](Ctx& mid) {
      mid.Parallel(2, [&](Ctx& inner) {
        if (inner.thread_num() == 0) instr::store(shared_leaf, 1.0);
      });
    });
  });
  (void)shared_leaf;
}

// nowaitphases-yes: loop 1's writes escape a nowait while the other threads
// are already in phase-2 work - a cross-PHASE race that only exists because
// the escaping thread never crossed the barrier in between. (The escaping
// lane skips the barrier via nowait loops; the reader lane proceeds through
// an explicit barrier of its own.) Kept simple: lane 0 writes late, lane 1
// reads in what it thinks is a later interval, with NO barrier between them.
void NowaitPhases(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> a(n, 0.0);
  somp::Sequencer seq;
  somp::Parallel(std::max(2u, p.threads), [&](Ctx& ctx) {
    if (ctx.thread_num() == 0) {
      seq.WaitUntil(1);  // write LATE, after lane 1 already read
      instr::store(a[0], 1.0);
    } else if (ctx.thread_num() == 1) {
      ctx.For(1, static_cast<int64_t>(n),
              [&](int64_t i) { instr::store(a[static_cast<size_t>(i)], 2.0); },
              {.nowait = true});
      (void)instr::load(a[0]);
      seq.Await(0);
    }
  });
}

// memsetrace-orig-yes: a bulk clear (ranged write, like an instrumented
// memset) racing with element reads - exercises the >8-byte range events
// through the whole pipeline (shadow granule splitting, interval nodes with
// size 128, ILP overlap on mixed sizes).
void MemsetRace(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> buffer(n, 1.0);
  somp::Sequencer seq;
  somp::Parallel(std::max(2u, p.threads), [&](Ctx& ctx) {
    if (ctx.thread_num() == 0) {
      seq.WaitUntil(1);  // clear AFTER the reader sampled: no HB either way
      instr::write_range(buffer.data(), n * sizeof(double));
    } else if (ctx.thread_num() == 1) {
      (void)instr::load(buffer[n / 2]);
      seq.Await(0);
    }
  });
}

// memsetdisjoint-no: bulk clears of per-thread slices - ranged writes that
// are provably disjoint.
void MemsetDisjoint(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p) & ~uint64_t{7};
  std::vector<double> buffer(n, 1.0);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    const uint64_t slice = n / ctx.num_threads();
    const uint64_t begin = slice * ctx.thread_num();
    const uint64_t end =
        ctx.thread_num() + 1 == ctx.num_threads() ? n : begin + slice;
    if (end > begin) {
      instr::write_range(&buffer[begin], (end - begin) * sizeof(double));
    }
  });
}

}  // namespace

void RegisterDrbExtra(WorkloadRegistry& r) {
  auto add = [&](const char* name, const char* desc, int doc, int total, int archer,
                 std::function<void(const WorkloadParams&)> run, int arrays = 1) {
    Workload w;
    w.suite = "drb";
    w.name = name;
    w.description = desc;
    w.documented_races = doc;
    w.total_races = total;
    w.archer_expected = archer;
    w.run = std::move(run);
    w.baseline_bytes = drb::DoubleArrays(arrays);
    w.default_size = drb::kDefaultN;
    r.Register(std::move(w));
  };

  add("forreduce-no", "the ForReduce construct; race-free by construction", 0, 0, 0,
      ForReduceClean);
  add("lockacrossbarrier-no", "lock held across a barrier (meta lockset column)",
      0, 0, 0, LockAcrossBarrier);
  add("readonly-no", "hot read-only shared data", 0, 0, 0, ReadOnlyShared, 2);
  add("minusminus-orig-yes", "unsynchronized shared countdown", 1, 1, 1, MinusMinus);
  add("nestedlevel3-yes", "race across depth-3 nested regions", 1, 1, 1,
      NestedLevel3);
  add("nowaitphases-yes", "write escapes past a nowait into a reader", 1, 1, 1,
      NowaitPhases);
  add("memsetrace-orig-yes", "bulk ranged clear races with an element read",
      1, 1, 1, MemsetRace);
  add("memsetdisjoint-no", "per-thread bulk clears, provably disjoint", 0, 0, 0,
      MemsetDisjoint);
}

}  // namespace sword::workloads
