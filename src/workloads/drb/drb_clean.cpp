// DataRaceBench-style kernels, part 4: race-free ("-no") kernels.
//
// These guard the FALSE-ALARM side of the evaluation: the paper stresses
// that neither tool reports false positives on any DataRaceBench or OmpSCR
// benchmark. Each kernel pairs with a racy cousin and fixes it with the
// appropriate construct (critical, atomic, barrier, privatization,
// reduction, locks, disjoint partitioning).
#include "workloads/drb/drb_common.h"

namespace sword::workloads {
namespace {

using namespace drb;
using somp::Ctx;

// plusplus-critical-no: the counter race fixed with a critical section.
void PlusPlusCritical(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  int64_t count = 0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
      (void)i;
      ctx.Critical("ppc-count", [&] { instr::racy_increment(count); });
    });
  });
}

// plusplus-atomic-no: fixed with an atomic update.
void PlusPlusAtomic(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  int64_t count = 0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
      (void)i;
      instr::atomic_add(count, int64_t{1});
    });
  });
}

// lock-no: explicit runtime locks protect the shared counter.
void LockProtected(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  int64_t count = 0;
  somp::Lock lock;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
      (void)i;
      somp::Lock::Guard guard(lock);
      instr::racy_increment(count);
    });
  });
}

// privateclause-no: each thread works on stack-local state.
void PrivateClause(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> out(n, 0.0);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    double tmp = 0.0;  // properly "private": one per team member
    ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
      instr::store(tmp, static_cast<double>(i));
      instr::store(out[static_cast<size_t>(i)], instr::load(tmp) * 2.0);
    });
  });
}

// barrier-no: producer and consumer separated by an explicit barrier.
void BarrierSeparated(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> a(n, 0.0);
  double total = 0.0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n),
            [&](int64_t i) { instr::store(a[static_cast<size_t>(i)], 1.0); },
            {.nowait = true});
    ctx.Barrier();  // orders every write before every read below
    double local = 0.0;
    ctx.For(0, static_cast<int64_t>(n),
            [&](int64_t i) {
              local += instr::load(a[static_cast<size_t>(n - 1 - i)]);
            },
            {.nowait = true});
    ctx.Critical("bn-total", [&] { instr::atomic_add(total, local); });
  });
  (void)total;
}

// single-no: one thread initializes, the workshare barrier publishes.
void SingleInit(const WorkloadParams& p) {
  double config_value = 0.0;
  double sink = 0.0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.Single([&] { instr::store(config_value, 42.0); });
    // Single's implicit barrier orders the write before these reads.
    const double v = instr::load(config_value);
    ctx.Critical("sn-sink", [&] { instr::atomic_add(sink, v); });
  });
  (void)sink;
}

// master-barrier-no: master's write published by an explicit barrier
// (the fixed version of master-orig-yes).
void MasterBarrier(const WorkloadParams& p) {
  int64_t flag = 0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.Master([&] { instr::store(flag, int64_t{1}); });
    ctx.Barrier();
    (void)instr::load(flag);
  });
}

// sections-no: the two sections touch different variables.
void SectionsDisjoint(const WorkloadParams& p) {
  double va = 0.0, vb = 0.0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.Sections(
        {
            [&] { instr::store(va, 1.0); },
            [&] { instr::store(vb, 2.0); },
        },
        /*nowait=*/false, /*static_dist=*/true);
  });
  (void)va;
  (void)vb;
}

// reduction-no: manual reduction - private partials combined in a critical.
void ManualReduction(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> data(n, 0.5);
  double sum = 0.0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    double partial = 0.0;
    ctx.For(0, static_cast<int64_t>(n),
            [&](int64_t i) { partial += data[static_cast<size_t>(i)]; },
            {.nowait = true});
    ctx.Critical("red-sum", [&] {
      const double cur = instr::load(sum);
      instr::store(sum, cur + partial);
    });
  });
  (void)sum;
}

// indep-loop-no: the canonical disjoint parallel-for.
void IndependentLoop(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> a(n, 0.0), b(n, 3.0);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
      instr::store(a[static_cast<size_t>(i)], b[static_cast<size_t>(i)] + 1.0);
    });
  });
}

// dynamicdisjoint-no: dynamic scheduling interleaves each thread's elements
// through the whole array. The per-thread summarized intervals RANGE-overlap
// heavily while touching disjoint addresses - the exact ILP check (Fig. 4)
// is what keeps this kernel false-alarm-free.
void DynamicDisjoint(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<int64_t> a(n, 0);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n),
            [&](int64_t i) { instr::store(a[static_cast<size_t>(i)], i); },
            {.schedule = somp::Schedule::kDynamic, .chunk = 1});
  });
}

// nestedparallel-no: nested teams write disjoint slices (Fig. 2 without the
// races).
void NestedParallelDisjoint(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p) & ~uint64_t{3};
  std::vector<double> a(n, 0.0);
  const uint32_t outer = p.threads >= 4 ? 2 : 2;
  somp::Parallel(outer, [&](Ctx& ctx) {
    const uint64_t outer_lane = ctx.thread_num();
    ctx.Parallel(2, [&](Ctx& inner) {
      const uint64_t quarter = n / 4;
      const uint64_t slice = outer_lane * 2 + inner.thread_num();
      for (uint64_t i = slice * quarter; i < (slice + 1) * quarter; i++) {
        instr::store(a[i], 1.0);
      }
    });
  });
}

// guided-no: guided scheduling, still disjoint writes.
void GuidedDisjoint(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> a(n, 0.0);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n),
            [&](int64_t i) { instr::store(a[static_cast<size_t>(i)], 2.0); },
            {.schedule = somp::Schedule::kGuided});
  });
}

}  // namespace

void RegisterDrbClean(WorkloadRegistry& r) {
  auto add = [&](const char* name, const char* desc,
                 std::function<void(const WorkloadParams&)> run, int arrays = 1) {
    Workload w;
    w.suite = "drb";
    w.name = name;
    w.description = desc;
    w.documented_races = 0;
    w.total_races = 0;
    w.archer_expected = 0;
    w.run = std::move(run);
    w.baseline_bytes = drb::DoubleArrays(arrays);
    w.default_size = drb::kDefaultN;
    r.Register(std::move(w));
  };

  add("plusplus-critical-no", "counter protected by critical", PlusPlusCritical);
  add("plusplus-atomic-no", "counter updated atomically", PlusPlusAtomic);
  add("lock-no", "counter protected by a runtime lock", LockProtected);
  add("privateclause-no", "temporary properly privatized", PrivateClause);
  add("barrier-no", "produce/consume separated by a barrier", BarrierSeparated);
  add("single-no", "single + implicit barrier publishes the init", SingleInit);
  add("master-barrier-no", "master write published by explicit barrier",
      MasterBarrier);
  add("sections-no", "sections touch disjoint variables", SectionsDisjoint);
  add("reduction-no", "manual reduction with critical combine", ManualReduction);
  add("indep-loop-no", "disjoint parallel-for", IndependentLoop, 2);
  add("dynamicdisjoint-no", "dynamic,1 interleaving; exact ILP avoids false alarms",
      DynamicDisjoint);
  add("nestedparallel-no", "nested teams on disjoint slices", NestedParallelDisjoint);
  add("guided-no", "guided schedule, disjoint writes", GuidedDisjoint);
}

void RegisterDrbBasic(WorkloadRegistry& r);
void RegisterDrbEviction(WorkloadRegistry& r);
void RegisterDrbIndirect(WorkloadRegistry& r);
void RegisterDrbExtra(WorkloadRegistry& r);
void RegisterDrbBatch3Racy(WorkloadRegistry& r);
void RegisterDrbBatch3Clean(WorkloadRegistry& r);

void RegisterDrb(WorkloadRegistry& r) {
  RegisterDrbBasic(r);
  RegisterDrbEviction(r);
  RegisterDrbIndirect(r);
  RegisterDrbClean(r);
  RegisterDrbExtra(r);
  RegisterDrbBatch3Racy(r);
  RegisterDrbBatch3Clean(r);
}

}  // namespace sword::workloads
