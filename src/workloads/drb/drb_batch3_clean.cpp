// DataRaceBench-style kernels, part 7: the race-free counterparts of batch
// 3 - each fixes its racy cousin with the appropriate idiom (double
// buffering, critical min-update, atomic packing cursor, exclusive strides,
// atomic flags, padded thread-local accumulation, ring shifts).
#include <thread>

#include "workloads/drb/drb_common.h"

namespace sword::workloads {
namespace {

using namespace drb;
using somp::Ctx;

// prefixscan-no: Hillis-Steele inclusive scan, double-buffered, one barrier
// per doubling round - log2(n) barrier intervals of genuinely cross-thread
// reads, all correctly published.
void PrefixScan(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> a(n, 1.0), b(n, 0.0);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    bool a_is_src = true;
    for (uint64_t offset = 1; offset < n; offset <<= 1) {
      auto& src = a_is_src ? a : b;
      auto& dst = a_is_src ? b : a;
      ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
        const size_t idx = static_cast<size_t>(i);
        double v = instr::load(src[idx]);
        if (idx >= offset) v += instr::load(src[idx - offset]);
        instr::store(dst[idx], v);
      });  // barrier publishes the round
      a_is_src = !a_is_src;
    }
  });
  // The scan of all-ones is 1..n; spot-check the invariant held.
  // (Which buffer holds the result depends on round parity.)
}

// minmax-critical-no: the min reduction fixed with a critical section.
void MinMaxCritical(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> v(n);
  for (uint64_t i = 0; i < n; i++) v[i] = 1000.0 - static_cast<double>(i);
  double global_min = 1e9;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    double local_min = 1e9;
    ctx.For(0, static_cast<int64_t>(n),
            [&](int64_t i) {
              local_min = std::min(local_min, v[static_cast<size_t>(i)]);
            },
            {.nowait = true});
    ctx.Critical("mm-min", [&] {
      if (local_min < instr::load(global_min)) instr::store(global_min, local_min);
    });
  });
  (void)global_min;
}

// packing-atomic-no: the packing cursor fixed with an atomic fetch-add;
// every thread writes a unique slot.
void PackingAtomic(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<int64_t> packed(n, 0);
  int64_t cursor = 0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
      const int64_t slot = instr::atomic_add(cursor, int64_t{1});
      instr::store(packed[static_cast<size_t>(slot)], i);  // unique slot
    });
  });
}

// stride2-no: even slots written by their owners, odd slots read-only.
void Stride2Exclusive(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> a(2 * n, 3.0);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
      const size_t even = static_cast<size_t>(2 * i);
      instr::store(a[even], instr::load(a[even + 1]) * 2.0);
    });
  });
}

// exitflag-atomic-no: the completion flag done properly.
void ExitFlagAtomic(const WorkloadParams& p) {
  int64_t done = 0;
  somp::Parallel(std::max(2u, p.threads), [&](Ctx& ctx) {
    if (ctx.thread_num() == 0) {
      instr::atomic_store(done, int64_t{1});
    } else {
      for (int spin = 0; spin < 50; spin++) {
        if (instr::atomic_load(done) != 0) break;
        std::this_thread::yield();
      }
    }
  });
}

// threadlocalaccum-no: per-thread padded accumulators combined by the
// master after a barrier.
void ThreadLocalAccum(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> data(n, 0.5);
  std::vector<double> partials(static_cast<size_t>(p.threads) * 8, 0.0);
  double total = 0.0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    double& mine = partials[static_cast<size_t>(ctx.thread_num()) * 8];
    ctx.For(0, static_cast<int64_t>(n),
            [&](int64_t i) {
              instr::racy_increment(mine, data[static_cast<size_t>(i)]);
            },
            {.nowait = true});
    ctx.Barrier();
    ctx.Master([&] {
      double acc = 0.0;
      for (uint32_t t = 0; t < ctx.num_threads(); t++) {
        acc += instr::load(partials[static_cast<size_t>(t) * 8]);
      }
      instr::store(total, acc);
    });
  });
  (void)total;
}

// ringshift-no: a'[i] = a[(i+1) mod n], double-buffered with the loop's
// implicit barrier - every element is read by a DIFFERENT thread than the
// one that wrote it, always a phase apart.
void RingShift(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> a(n), b(n, 0.0);
  for (uint64_t i = 0; i < n; i++) a[i] = static_cast<double>(i);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    for (int round = 0; round < 4; round++) {
      auto& src = (round % 2 == 0) ? a : b;
      auto& dst = (round % 2 == 0) ? b : a;
      ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
        const size_t idx = static_cast<size_t>(i);
        instr::store(dst[idx], instr::load(src[(idx + 1) % n]));
      });
    }
  });
}

// masterpoll-atomic-no: master publishes progress atomically; workers
// observe atomically. Plain data is only read after the final barrier.
void MasterPollAtomic(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> table(n, 0.0);
  int64_t progress = 0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.Master([&] {
      for (uint64_t i = 0; i < n; i++) instr::store(table[i], 1.0);
      instr::atomic_store(progress, int64_t{1});
    });
    while (instr::atomic_load(progress) == 0) std::this_thread::yield();
    ctx.Barrier();  // the barrier (not the flag) publishes the table data
    double acc = 0.0;
    ctx.For(0, static_cast<int64_t>(n),
            [&](int64_t i) { acc += instr::load(table[static_cast<size_t>(i)]); },
            {.nowait = true});
    (void)acc;
  });
}

}  // namespace

void RegisterDrbBatch3Clean(WorkloadRegistry& r) {
  auto add = [&](const char* name, const char* desc,
                 std::function<void(const WorkloadParams&)> run) {
    Workload w;
    w.suite = "drb";
    w.name = name;
    w.description = desc;
    w.run = std::move(run);
    w.baseline_bytes = drb::DoubleArrays(2);
    w.default_size = drb::kDefaultN;
    r.Register(std::move(w));
  };

  add("prefixscan-no", "Hillis-Steele scan, barrier per round", PrefixScan);
  add("minmax-critical-no", "min reduction via local + critical", MinMaxCritical);
  add("packing-atomic-no", "atomic cursor gives exclusive slots", PackingAtomic);
  add("stride2-no", "even writers, odd read-only", Stride2Exclusive);
  add("exitflag-atomic-no", "atomic completion flag", ExitFlagAtomic);
  add("threadlocalaccum-no", "padded per-thread partials + master combine",
      ThreadLocalAccum);
  add("ringshift-no", "double-buffered ring shift", RingShift);
  add("masterpoll-atomic-no", "atomic progress flag + barrier publication",
      MasterPollAtomic);
}

}  // namespace sword::workloads
