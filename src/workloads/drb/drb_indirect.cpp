// DataRaceBench-style kernels, part 3: indirectaccess1-4.
//
// These kernels write through an index array: a[idx[i]] += b[i]. The race is
// real in general (two iterations may alias), but on the DEFAULT input the
// index map is collision-free, so the race never manifests in the executed
// trace. The paper (SIV-A): "These data races do not manifest along all
// program paths, and given that both SWORD and ARCHER are dynamic analysis
// tools that analyze only the executed control flow, they can miss such
// races" - ALL tools miss all four, and so must we (documented=1,
// manifesting total=0).
#include "workloads/drb/drb_common.h"

namespace sword::workloads {
namespace {

using namespace drb;
using somp::Ctx;

/// Shared shape: a[perm(i)] += b[i] where perm is a collision-free
/// permutation for the default input (mirroring the benchmarks' provided
/// input files, which happen to avoid aliasing).
void IndirectKernel(const WorkloadParams& p, uint64_t multiplier, uint64_t offset) {
  const uint64_t n = SizeOf(p) | 1;  // odd so the multiplicative maps permute
  std::vector<int64_t> a(n, 0), b(n, 1);
  std::vector<uint64_t> idx(n);
  for (uint64_t i = 0; i < n; i++) idx[i] = (i * multiplier + offset) % n;

  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
      int64_t& target = a[idx[static_cast<size_t>(i)]];
      const int64_t cur = instr::load(target);
      instr::store(target, cur + b[static_cast<size_t>(i)]);
    });
  });
}

void Indirect1(const WorkloadParams& p) { IndirectKernel(p, 2, 0); }
void Indirect2(const WorkloadParams& p) { IndirectKernel(p, 4, 1); }
void Indirect3(const WorkloadParams& p) { IndirectKernel(p, 8, 3); }
void Indirect4(const WorkloadParams& p) { IndirectKernel(p, 16, 7); }

// inputdep-var-yes: DataRaceBench's "-var-" family - whether the race
// manifests depends on the RUNTIME input size. Small inputs use a
// collision-free index map; past the threshold the map wraps and two
// iterations on different threads hit the same element. Dynamic tools see
// the race only when the executed input exposes it
// (tests/test_detection.cpp sweeps both sides of the threshold).
constexpr uint64_t kInputDepThreshold = 512;

void InputDepVar(const WorkloadParams& p) {
  const uint64_t n = p.size ? p.size : 1024;  // default input: collisions
  std::vector<int64_t> a(n, 0);
  std::vector<uint64_t> idx(n);
  for (uint64_t i = 0; i < n; i++) {
    idx[i] = (n <= kInputDepThreshold) ? i : i % (n / 2);
  }
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
      instr::racy_increment(a[idx[static_cast<size_t>(i)]]);
    });
  });
}

}  // namespace

void RegisterDrbIndirect(WorkloadRegistry& r) {
  auto add = [&](const char* name, std::function<void(const WorkloadParams&)> run) {
    Workload w;
    w.suite = "drb";
    w.name = name;
    w.description = "indirect writes; race does not manifest on default input";
    w.documented_races = 1;
    w.total_races = 0;  // not manifesting in the executed trace
    w.archer_expected = 0;
    w.run = std::move(run);
    w.baseline_bytes = [](const WorkloadParams& p) {
      return drb::SizeOf(p) * (2 * sizeof(int64_t) + sizeof(uint64_t));
    };
    w.default_size = drb::kDefaultN;
    r.Register(std::move(w));
  };
  add("indirectaccess1-orig-yes", Indirect1);
  add("indirectaccess2-orig-yes", Indirect2);
  add("indirectaccess3-orig-yes", Indirect3);
  add("indirectaccess4-orig-yes", Indirect4);

  {
    Workload w;
    w.suite = "drb";
    w.name = "inputdep-var-yes";
    w.description = "race manifests only for inputs above the wrap threshold";
    w.documented_races = 1;
    w.total_races = 1;  // at the DEFAULT (racy) input size
    w.archer_expected = 1;
    w.run = InputDepVar;
    w.baseline_bytes = [](const WorkloadParams& p) {
      return (p.size ? p.size : 1024) * 16;
    };
    w.default_size = 1024;
    r.Register(std::move(w));
  }
}

}  // namespace sword::workloads
