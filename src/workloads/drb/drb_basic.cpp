// DataRaceBench-style kernels, part 1: the classic racy patterns.
//
// Every kernel mirrors a DataRaceBench family (the suffix convention is
// theirs: "-yes" = contains a race). Ground truth is documented per kernel;
// the undocumented-but-real extra races in plusplus/privatemissing are the
// ones the paper reports (SIV-A: "not false alarms, but rather real races
// that the authors of the benchmarks have failed to document").
#include "workloads/drb/drb_common.h"

namespace sword::workloads {
namespace {

using namespace drb;
using somp::Ctx;

// plusplus-orig-yes: unsynchronized increments of TWO shared counters from a
// parallel loop. The suite documents the race on `count`; the race on
// `index` is the real-but-undocumented one every tool additionally reports.
void PlusPlus(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> input(n, 1.0);
  int64_t count = 0;  // documented race
  int64_t index = 0;  // undocumented race (the "unknown race" of SIV-A)
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
      if (input[static_cast<size_t>(i)] > 0) {
        instr::racy_increment(index);
        instr::racy_increment(count);
      }
    });
  });
}

// antidep1-orig-yes: a[i] = a[i+1] + 1 - the read of a neighbour element
// races with its write by the adjacent thread.
void AntiDep(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> a(n + 1, 1.0);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
      const double next = instr::load(a[static_cast<size_t>(i) + 1]);
      instr::store(a[static_cast<size_t>(i)], next + 1.0);
    });
  });
}

// truedep1-orig-yes: the paper's own interval-tree example (SIII-B):
// a[i] = a[i-1] with two threads.
void TrueDep(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<int64_t> a(n, 7);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(1, static_cast<int64_t>(n), [&](int64_t i) {
      const int64_t prev = instr::load(a[static_cast<size_t>(i) - 1]);
      instr::store(a[static_cast<size_t>(i)], prev);
    });
  });
}

// outputdep-orig-yes: every iteration writes the same shared scalar.
void OutputDep(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> c(n, 2.0);
  double x = 0.0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
      instr::store(x, c[static_cast<size_t>(i)]);
    });
  });
  (void)x;
}

// lastprivatemissing-orig-yes: x should have been lastprivate.
void LastPrivateMissing(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  int64_t x = 0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
      instr::store(x, i);
    });
  });
  (void)x;
}

// simdtruedep-orig-yes: a[i+1] = a[i] + b[i], a forward dependence.
void SimdTrueDep(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> a(n + 1, 0.0), b(n, 0.5);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
      const double cur = instr::load(a[static_cast<size_t>(i)]);
      instr::store(a[static_cast<size_t>(i) + 1], cur + b[static_cast<size_t>(i)]);
    });
  });
}

// master-orig-yes: master initializes a shared flag while the other threads
// read it without an intervening barrier.
void MasterNoBarrier(const WorkloadParams& p) {
  int64_t flag = 0;
  int64_t observed = 0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.Master([&] { instr::store(flag, int64_t{1}); });
    // no barrier here: the read below races with the master's write
    const int64_t f = instr::load(flag);
    if (f != 0) {
      ctx.Critical("master-obs", [&] { instr::racy_increment(observed); });
    }
  });
  (void)observed;
}

// sections-orig-yes: both sections write the same scalar. Static section
// distribution pins the sections to different lanes so the race manifests
// on every run (FCFS dispensing could hand both to one thread).
void SectionsRace(const WorkloadParams& p) {
  double shared_val = 0.0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.Sections(
        {
            [&] { instr::store(shared_val, 1.0); },
            [&] { instr::store(shared_val, 2.0); },
        },
        /*nowait=*/false, /*static_dist=*/true);
  });
  (void)shared_val;
}

// criticalmissing-orig-yes: lane 0's update bypasses the critical section
// that protects everyone else's updates. Lane 0 never touches the lock, so
// no release->acquire chain can cover its write.
void CriticalMissing(const WorkloadParams& p) {
  int64_t sum = 0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    if (ctx.thread_num() == 0) {
      instr::racy_increment(sum);  // forgot the critical here
    } else {
      for (int k = 0; k < 8; k++) {
        ctx.Critical("cm-sum", [&] { instr::racy_increment(sum); });
      }
    }
  });
  (void)sum;
}

// atomicmissing-orig-yes: lane 0 updates atomically, everyone else plainly.
// Two real races: plain-vs-plain and plain-vs-atomic (the documentation only
// lists one).
void AtomicMissing(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  int64_t counter = 0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
      if (ctx.thread_num() == 0) {
        instr::atomic_add(counter, int64_t{1});
      } else {
        instr::racy_increment(counter);
      }
      (void)i;
    });
  });
  (void)counter;
}

// nobarrier-orig-yes: producer/consumer without the barrier in between.
void NoBarrier(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> a(n, 0.0);
  double total = 0.0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n),
            [&](int64_t i) { instr::store(a[static_cast<size_t>(i)], 1.0); },
            {.nowait = true});
    // missing ctx.Barrier();
    double local = 0.0;
    ctx.For(0, static_cast<int64_t>(n),
            [&](int64_t i) { local += instr::load(a[static_cast<size_t>(i)]); },
            {.schedule = somp::Schedule::kDynamic, .nowait = true});
    ctx.Critical("nb-total", [&] { instr::atomic_add(total, local); });
  });
  (void)total;
}

// staticchunk1-orig-yes: schedule(static,1) assigns adjacent iterations to
// different lanes, and each iteration also writes its right neighbour - so
// every boundary element is written by two threads, regardless of timing.
void StaticChunk1Race(const WorkloadParams& p) {
  const uint64_t n = SizeOf(p);
  std::vector<double> a(n + 1, 0.0);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n),
            [&](int64_t i) {
              instr::store(a[static_cast<size_t>(i)], 1.0);
              instr::store(a[static_cast<size_t>(i) + 1], 2.0);
            },
            {.schedule = somp::Schedule::kStatic, .chunk = 1});
  });
}

// nestedparallel-orig-yes: Fig. 2's R2 - sibling nested teams write one
// shared variable.
void NestedParallelRace(const WorkloadParams& p) {
  double y = 0.0;
  const uint32_t outer = p.threads >= 4 ? 2 : p.threads;
  somp::Parallel(outer, [&](Ctx& ctx) {
    ctx.Parallel(2, [&](Ctx& inner) {
      (void)inner;
      instr::store(y, 1.0);
    });
  });
  (void)y;
}

}  // namespace

void RegisterDrbBasic(WorkloadRegistry& r) {
  auto add = [&](const char* name, const char* desc, int doc, int total, int archer,
                 std::function<void(const WorkloadParams&)> run, int arrays = 1) {
    Workload w;
    w.suite = "drb";
    w.name = name;
    w.description = desc;
    w.documented_races = doc;
    w.total_races = total;
    w.archer_expected = archer;
    w.run = std::move(run);
    w.baseline_bytes = drb::DoubleArrays(arrays);
    w.default_size = drb::kDefaultN;
    r.Register(std::move(w));
  };

  add("plusplus-orig-yes", "two unsynchronized shared counters (one undocumented)",
      1, 2, 2, PlusPlus);
  add("antidep1-orig-yes", "a[i] = a[i+1] + 1", 1, 1, 1, AntiDep, 1);
  add("truedep1-orig-yes", "a[i] = a[i-1] (paper SIII-B example)", 1, 1, 1, TrueDep);
  add("outputdep-orig-yes", "shared scalar written every iteration", 1, 1, 1,
      OutputDep);
  add("lastprivatemissing-orig-yes", "missing lastprivate(x)", 1, 1, 1,
      LastPrivateMissing);
  add("simdtruedep-orig-yes", "a[i+1] = a[i] + b[i]", 1, 1, 1, SimdTrueDep, 2);
  add("master-orig-yes", "master write vs unbarriered reads", 1, 1, 1,
      MasterNoBarrier);
  add("sections-orig-yes", "both sections write one scalar", 1, 1, 1, SectionsRace);
  add("criticalmissing-orig-yes", "one update outside the critical", 1, 1, 1,
      CriticalMissing);
  add("atomicmissing-orig-yes", "plain updates race with atomic ones (2 real races)",
      1, 2, 2, AtomicMissing);
  add("nobarrier-orig-yes", "missing barrier between produce and consume", 1, 1, 1,
      NoBarrier);
  add("staticchunk1-orig-yes", "static,1 chunks write overlapping neighbours", 1, 1, 1,
      StaticChunk1Race);
  add("nestedparallel-orig-yes", "sibling nested teams write one variable (Fig. 2 R2)",
      1, 1, 1, NestedParallelRace);
}

}  // namespace sword::workloads
