// Shared helpers for the DataRaceBench-style kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "somp/instr.h"
#include "somp/runtime.h"
#include "somp/sequencer.h"
#include "workloads/workload.h"

namespace sword::workloads::drb {

/// Default element count for array kernels; small enough that the whole
/// suite runs in milliseconds, large enough that every thread gets work.
constexpr uint64_t kDefaultN = 400;

inline uint64_t SizeOf(const WorkloadParams& p) {
  return p.size ? p.size : kDefaultN;
}

/// Footprint helper for kernels over k double arrays of n elements.
inline std::function<uint64_t(const WorkloadParams&)> DoubleArrays(int k) {
  return [k](const WorkloadParams& p) { return SizeOf(p) * sizeof(double) * k; };
}

}  // namespace sword::workloads::drb
