#include "workloads/workload.h"

#include <mutex>

namespace sword::workloads {

WorkloadRegistry& WorkloadRegistry::Get() {
  static WorkloadRegistry* registry = [] {
    auto* r = new WorkloadRegistry();
    RegisterDrb(*r);
    RegisterOmpscr(*r);
    RegisterHpc(*r);
    return r;
  }();
  return *registry;
}

void WorkloadRegistry::Register(Workload workload) {
  workloads_.push_back(std::move(workload));
}

const Workload* WorkloadRegistry::Find(const std::string& suite,
                                       const std::string& name) const {
  for (const auto& w : workloads_) {
    if (w.suite == suite && w.name == name) return &w;
  }
  return nullptr;
}

std::vector<const Workload*> WorkloadRegistry::BySuite(const std::string& suite) const {
  std::vector<const Workload*> out;
  for (const auto& w : workloads_) {
    if (w.suite == suite) out.push_back(&w);
  }
  return out;
}

std::vector<const Workload*> WorkloadRegistry::All() const {
  std::vector<const Workload*> out;
  out.reserve(workloads_.size());
  for (const auto& w : workloads_) out.push_back(&w);
  return out;
}

}  // namespace sword::workloads
