// OmpSCR-style kernels, part 4: FFT and LU - the race-free numerical codes.
//
// Both are real computations (verified in tests): an iterative radix-2 FFT
// with one barrier per butterfly stage, and a blocked LU factorization with
// one barrier per elimination step. They contribute the "race-free, many
// barrier intervals" end of the OmpSCR overhead study (Table III's runtime
// depends on the number of parallel regions/intervals to analyze).
#include <cmath>

#include "workloads/ompscr/ompscr_common.h"

namespace sword::workloads {
namespace {

using namespace ompscr;
using somp::Ctx;

// c_fft: iterative radix-2 FFT over `size` complex points (power of two).
// Stage s pairs elements (i, i+half) within blocks; blocks are distributed
// disjointly, and a barrier separates stages.
void Fft(const WorkloadParams& p) {
  uint64_t n = p.size ? p.size : 1024;
  // Round down to a power of two.
  while (n & (n - 1)) n &= n - 1;
  std::vector<double> re(n), im(n, 0.0);
  for (uint64_t i = 0; i < n; i++) {
    re[i] = std::sin(0.37 * static_cast<double>(i));
  }

  // Bit-reversal permutation (sequential prologue, uninstrumented).
  for (uint64_t i = 1, j = 0; i < n; i++) {
    uint64_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }

  somp::Parallel(p.threads, [&](Ctx& ctx) {
    for (uint64_t len = 2; len <= n; len <<= 1) {
      const uint64_t half = len / 2;
      const double ang = -2.0 * M_PI / static_cast<double>(len);
      const int64_t blocks = static_cast<int64_t>(n / len);
      // Each block is one unit of work; blocks are disjoint in memory.
      ctx.For(0, blocks, [&](int64_t b) {
        const uint64_t base = static_cast<uint64_t>(b) * len;
        for (uint64_t k = 0; k < half; k++) {
          const double wr = std::cos(ang * static_cast<double>(k));
          const double wi = std::sin(ang * static_cast<double>(k));
          const uint64_t u = base + k;
          const uint64_t v = base + k + half;
          const double ur = instr::load(re[u]);
          const double ui = instr::load(im[u]);
          const double vr = instr::load(re[v]);
          const double vi = instr::load(im[v]);
          const double tr = vr * wr - vi * wi;
          const double ti = vr * wi + vi * wr;
          instr::store(re[u], ur + tr);
          instr::store(im[u], ui + ti);
          instr::store(re[v], ur - tr);
          instr::store(im[v], ui - ti);
        }
      });  // implicit barrier between stages
    }
  });
}

// c_lu: LU factorization (Doolittle, no pivoting) of a diagonally dominant
// matrix; step k eliminates column k below the diagonal, rows distributed
// across the team, one barrier per step.
void Lu(const WorkloadParams& p) {
  const uint64_t n = p.size ? p.size : 48;
  std::vector<double> m(n * n);
  Rng rng(99);
  for (uint64_t i = 0; i < n; i++) {
    for (uint64_t j = 0; j < n; j++) {
      m[i * n + j] = rng.NextDouble();
    }
    m[i * n + i] += static_cast<double>(n);  // dominance: no pivoting needed
  }

  somp::Parallel(p.threads, [&](Ctx& ctx) {
    for (uint64_t k = 0; k + 1 < n; k++) {
      ctx.For(static_cast<int64_t>(k) + 1, static_cast<int64_t>(n), [&](int64_t ri) {
        const uint64_t i = static_cast<uint64_t>(ri);
        const double pivot = instr::load(m[k * n + k]);
        const double factor = instr::load(m[i * n + k]) / pivot;
        instr::store(m[i * n + k], factor);
        for (uint64_t j = k + 1; j < n; j++) {
          const double mkj = instr::load(m[k * n + j]);
          const double mij = instr::load(m[i * n + j]);
          instr::store(m[i * n + j], mij - factor * mkj);
        }
      });  // barrier: step k's updates published before step k+1 reads row k+1
    }
  });
}

}  // namespace

void RegisterOmpscrFft(WorkloadRegistry& r) {
  AddOmpscr(r, "c_fft", "radix-2 FFT, barrier per stage; race-free",
            0, 0, 0, Fft,
            [](const WorkloadParams& p) { return (p.size ? p.size : 1024) * 16; },
            1024);
  AddOmpscr(r, "c_lu", "LU factorization, barrier per step; race-free",
            0, 0, 0, Lu,
            [](const WorkloadParams& p) {
              const uint64_t n = p.size ? p.size : 48;
              return n * n * 8;
            },
            48);
}

void RegisterOmpscrLoops(WorkloadRegistry& r);
void RegisterOmpscrMd(WorkloadRegistry& r);
void RegisterOmpscrQsort(WorkloadRegistry& r);
void RegisterOmpscrGraph(WorkloadRegistry& r);

void RegisterOmpscr(WorkloadRegistry& r) {
  RegisterOmpscrLoops(r);
  RegisterOmpscrMd(r);
  RegisterOmpscrQsort(r);
  RegisterOmpscrFft(r);
  RegisterOmpscrGraph(r);
}

}  // namespace sword::workloads
