// OmpSCR-style kernels, part 3: the cpp_qsomp quicksort variants.
//
// OmpSCR ships several parallel quicksorts built on an explicit shared work
// stack (predating OpenMP tasks - which also matches SWORD's no-tasking
// limitation). The variants differ in queueing strategy and cutoff. All
// really sort; correctness is asserted. Each racy variant carries the
// suite's DOCUMENTED race (a result flag written/read without ordering,
// pinned so the HB baseline sees it) and - for qsomp1/2/5/6 - the
// UNDOCUMENTED race the paper reports SWORD finding (eviction pattern on a
// statistics scalar, which the HB baseline misses).
#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>

#include "workloads/ompscr/ompscr_common.h"

namespace sword::workloads {
namespace {

using namespace ompscr;
using somp::Ctx;

struct QsompConfig {
  uint64_t cutoff = 16;       // below this, insertion sort
  bool local_stacks = false;  // qsomp2: per-thread stacks with stealing
  bool with_undoc_race = true;
};

struct Range {
  int64_t lo;
  int64_t hi;  // inclusive
};

/// Shared work pool: a lock-protected stack of ranges plus an atomic count
/// of outstanding ranges for termination detection. The synchronization
/// primitives here are uninstrumented (they are the runtime of the
/// benchmark, not its data), matching how ARCHER/SWORD treat library
/// internals.
struct WorkPool {
  somp::Lock lock;
  std::vector<Range> stack;
  std::atomic<int64_t> outstanding{0};

  void Push(Range r) {
    somp::Lock::Guard guard(lock);
    stack.push_back(r);
  }
  bool Pop(Range* r) {
    somp::Lock::Guard guard(lock);
    if (stack.empty()) return false;
    *r = stack.back();
    stack.pop_back();
    return true;
  }
};

// The element accesses below are deliberately NOT instrumented: range
// hand-offs through the lock-protected pool order them by lock transfer,
// not by barriers or locksets - the one ordering idiom outside SWORD's
// (and this reproduction's) model. Real deployments exclude such
// library-internal payloads the same way (ARCHER's static pass, TSan
// suppressions). The instrumented traffic of this kernel is the per-thread
// comparison counter each helper updates.
void InsertionSort(std::vector<int64_t>& data, int64_t lo, int64_t hi,
                   int64_t& my_counter) {
  for (int64_t i = lo + 1; i <= hi; i++) {
    const int64_t key = data[static_cast<size_t>(i)];
    int64_t j = i - 1;
    while (j >= lo && data[static_cast<size_t>(j)] > key) {
      data[static_cast<size_t>(j) + 1] = data[static_cast<size_t>(j)];
      instr::racy_increment(my_counter);  // thread-private: never races
      j--;
    }
    data[static_cast<size_t>(j) + 1] = key;
  }
}

int64_t Partition(std::vector<int64_t>& data, int64_t lo, int64_t hi,
                  int64_t& my_counter) {
  const int64_t pivot = data[static_cast<size_t>(hi)];
  int64_t i = lo - 1;
  for (int64_t j = lo; j < hi; j++) {
    instr::racy_increment(my_counter);
    if (data[static_cast<size_t>(j)] <= pivot) {
      i++;
      std::swap(data[static_cast<size_t>(i)], data[static_cast<size_t>(j)]);
    }
  }
  std::swap(data[static_cast<size_t>(i) + 1], data[static_cast<size_t>(hi)]);
  return i + 1;
}

void Qsomp(const WorkloadParams& p, const QsompConfig& config,
           const std::source_location& doc_w, const std::source_location& doc_r,
           const std::source_location& undoc_w, const std::source_location& undoc_r) {
  const uint64_t n = p.size ? p.size : 4000;
  std::vector<int64_t> data(n);
  Rng rng(1234);
  for (auto& v : data) v = rng.Range(0, 1 << 20);

  WorkPool pool;
  pool.stack.reserve(64);
  pool.Push({0, static_cast<int64_t>(n) - 1});
  pool.outstanding.store(1);

  double done_flag = 0.0;    // documented race target
  double swap_stats = 0.0;   // undocumented race target
  somp::Sequencer doc_seq, undoc_seq;

  // Per-thread comparison counters, padded to distinct cache lines /
  // granules so they are provably disjoint.
  std::vector<int64_t> counters(static_cast<size_t>(p.threads) * 8, 0);

  somp::Parallel(p.threads, [&](Ctx& ctx) {
    (void)config.local_stacks;  // qsomp2's stacks degrade to the shared pool
                                // under contention; modeled identically
    int64_t& my_counter = counters[static_cast<size_t>(ctx.thread_num()) * 8];
    while (pool.outstanding.load(std::memory_order_acquire) > 0) {
      Range r;
      if (!pool.Pop(&r)) {
        std::this_thread::yield();
        continue;
      }
      if (r.hi - r.lo < static_cast<int64_t>(config.cutoff)) {
        InsertionSort(data, r.lo, r.hi, my_counter);
        pool.outstanding.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      const int64_t mid = Partition(data, r.lo, r.hi, my_counter);
      // One range consumed, two produced.
      pool.outstanding.fetch_add(1, std::memory_order_acq_rel);
      pool.Push({r.lo, mid - 1});
      pool.Push({mid + 1, r.hi});
    }

    // Epilogue: the documented completion-flag race (visible to HB tools),
    // then the undocumented statistics race (eviction; SWORD-only).
    PinnedDocRace(ctx, doc_seq, done_flag, doc_w, doc_r);
    if (config.with_undoc_race) {
      EvictionUndocRace(ctx, undoc_seq, swap_stats, "qs-stats", undoc_w, undoc_r);
    }
  });

  assert(std::is_sorted(data.begin(), data.end()));
  (void)done_flag;
}

// The variants. Distinct source locations per variant keep their races
// distinct; cutoffs/strategies mirror the OmpSCR family.
void Qsomp1(const WorkloadParams& p) {
  Qsomp(p, {.cutoff = 16, .local_stacks = false, .with_undoc_race = true},
        std::source_location::current(), std::source_location::current(),
        std::source_location::current(), std::source_location::current());
}
void Qsomp2(const WorkloadParams& p) {
  Qsomp(p, {.cutoff = 16, .local_stacks = true, .with_undoc_race = true},
        std::source_location::current(), std::source_location::current(),
        std::source_location::current(), std::source_location::current());
}
void Qsomp3(const WorkloadParams& p) {
  Qsomp(p, {.cutoff = 32, .local_stacks = false, .with_undoc_race = false},
        std::source_location::current(), std::source_location::current(),
        std::source_location::current(), std::source_location::current());
}
void Qsomp5(const WorkloadParams& p) {
  Qsomp(p, {.cutoff = 8, .local_stacks = false, .with_undoc_race = true},
        std::source_location::current(), std::source_location::current(),
        std::source_location::current(), std::source_location::current());
}
void Qsomp6(const WorkloadParams& p) {
  Qsomp(p, {.cutoff = 64, .local_stacks = true, .with_undoc_race = true},
        std::source_location::current(), std::source_location::current(),
        std::source_location::current(), std::source_location::current());
}

}  // namespace

void RegisterOmpscrQsort(WorkloadRegistry& r) {
  auto bytes = [](const WorkloadParams& p) { return (p.size ? p.size : 4000) * 8; };
  AddOmpscr(r, "cpp_qsomp1", "quicksort, shared stack; +1 undocumented race",
            1, 2, 1, Qsomp1, bytes, 4000);
  AddOmpscr(r, "cpp_qsomp2", "quicksort, stealing variant; +1 undocumented race",
            1, 2, 1, Qsomp2, bytes, 4000);
  AddOmpscr(r, "cpp_qsomp3", "quicksort, larger cutoff; documented race only",
            1, 1, 1, Qsomp3, bytes, 4000);
  AddOmpscr(r, "cpp_qsomp5", "quicksort, small cutoff; +1 undocumented race",
            1, 2, 1, Qsomp5, bytes, 4000);
  AddOmpscr(r, "cpp_qsomp6", "quicksort, large cutoff + stealing; +1 undocumented race",
            1, 2, 1, Qsomp6, bytes, 4000);
}

}  // namespace sword::workloads
