// OmpSCR-style kernels, part 5: c_fft6 and c_GraphSearch, plus the
// ordered-construct kernel.
#include <cmath>

#include "workloads/ompscr/ompscr_common.h"

namespace sword::workloads {
namespace {

using namespace ompscr;
using somp::Ctx;

// c_fft6: OmpSCR's six-step FFT variant; carries a DOCUMENTED race (the
// twiddle scratch table is shared where it should be private). Modeled as a
// transpose-based two-stage FFT whose shared scratch scalar races.
void Fft6(const WorkloadParams& p) {
  uint64_t n = p.size ? p.size : 1024;
  while (n & (n - 1)) n &= n - 1;
  const uint64_t rows = 1ULL << (63 - __builtin_clzll(n)) / 2;
  const uint64_t cols = n / rows;
  std::vector<double> re(n), im(n, 0.0);
  for (uint64_t i = 0; i < n; i++) re[i] = std::cos(0.11 * double(i));

  double twiddle_scratch = 0.0;  // should be private: the documented race
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    // Stage 1: row FFT-like smoothing (disjoint rows).
    ctx.For(0, static_cast<int64_t>(rows), [&](int64_t r) {
      const uint64_t base = static_cast<uint64_t>(r) * cols;
      for (uint64_t c = 0; c + 1 < cols; c++) {
        const double a = instr::load(re[base + c]);
        const double b = instr::load(re[base + c + 1]);
        instr::store(re[base + c], a + b);
        instr::store(im[base + c], a - b);
      }
      // The bug: the shared twiddle scratch is written per row.
      instr::store(twiddle_scratch, std::cos(double(r)));
    });
    // Stage 2: column pass (disjoint columns; barrier from stage 1's For).
    ctx.For(0, static_cast<int64_t>(cols), [&](int64_t c) {
      for (uint64_t r = 0; r + 1 < rows; r++) {
        const double a = instr::load(re[r * cols + static_cast<uint64_t>(c)]);
        const double b = instr::load(re[(r + 1) * cols + static_cast<uint64_t>(c)]);
        instr::store(im[r * cols + static_cast<uint64_t>(c)], a * 0.5 + b * 0.5);
      }
    });
  });
  (void)twiddle_scratch;
}

// c_GraphSearch: BFS over a layered DAG; frontier double-buffered with a
// barrier per level - race-free. Uses ranged reads for the adjacency scan,
// exercising the bulk-access instrumentation.
void GraphSearch(const WorkloadParams& p) {
  const uint64_t nodes = p.size ? p.size : 1024;
  const uint64_t degree = 4;
  std::vector<uint32_t> adjacency(nodes * degree);
  Rng rng(21);
  for (uint64_t v = 0; v < nodes; v++) {
    for (uint64_t d = 0; d < degree; d++) {
      adjacency[v * degree + d] = static_cast<uint32_t>(rng.Below(nodes));
    }
  }
  std::vector<int64_t> dist(nodes, -1), next_dist(nodes, -1);
  dist[0] = 0;
  next_dist[0] = 0;

  const int levels = 6;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    for (int level = 0; level < levels; level++) {
      auto& cur = (level % 2 == 0) ? dist : next_dist;
      auto& nxt = (level % 2 == 0) ? next_dist : dist;
      ctx.For(0, static_cast<int64_t>(nodes), [&](int64_t v) {
        const size_t idx = static_cast<size_t>(v);
        // Bulk-read this vertex's adjacency row (ranged access event).
        instr::read_range(&adjacency[idx * degree], degree * sizeof(uint32_t));
        int64_t best = instr::load(cur[idx]);
        for (uint64_t d = 0; d < degree; d++) {
          const uint32_t u = adjacency[idx * degree + d];
          const int64_t du = instr::load(cur[u]);
          if (du >= 0 && (best < 0 || du + 1 < best)) best = du + 1;
        }
        instr::store(nxt[idx], best);  // own slot; published by the barrier
      });
    }
  });
}

// c_loopD.orderedSolution: the study's FIXED carried-dependence loop using
// the ordered construct - race-free because ordered serializes the bodies
// (and is visible to both detectors as mutex + HB edges).
void LoopOrdered(const WorkloadParams& p) {
  const uint64_t n = p.size ? p.size : 400;
  std::vector<double> a(n, 1.0);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(1, static_cast<int64_t>(n), [&](int64_t i) {
      ctx.Ordered(i, 1, [&] {
        const double prev = instr::load(a[static_cast<size_t>(i) - 1]);
        instr::store(a[static_cast<size_t>(i)], prev * 0.5 + 1.0);
      });
    });
  });
  // The serialized recurrence has a closed fixed point near 2.
  (void)a;
}

}  // namespace

void RegisterOmpscrGraph(WorkloadRegistry& r) {
  AddOmpscr(r, "c_fft6", "six-step FFT; shared twiddle scratch races",
            1, 1, 1, Fft6,
            [](const WorkloadParams& p) { return (p.size ? p.size : 1024) * 16; },
            1024);
  AddOmpscr(r, "c_GraphSearch", "level-synchronous BFS; race-free, ranged reads",
            0, 0, 0, GraphSearch,
            [](const WorkloadParams& p) {
              return (p.size ? p.size : 1024) * (4 * 4 + 16);
            },
            1024);
  AddOmpscr(r, "c_loopD.orderedSolution",
            "carried dependence fixed with the ordered construct; race-free",
            0, 0, 0, LoopOrdered,
            [](const WorkloadParams& p) { return (p.size ? p.size : 400) * 8; },
            400);
}

}  // namespace sword::workloads
