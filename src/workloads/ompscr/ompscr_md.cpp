// OmpSCR-style kernels, part 2: molecular dynamics and path search.
#include <cmath>

#include "workloads/ompscr/ompscr_common.h"

namespace sword::workloads {
namespace {

using namespace ompscr;
using somp::Ctx;

// c_md: a Lennard-Jones-flavoured MD force computation. Particles are
// partitioned statically; each thread accumulates forces for its own
// particles but ALSO adds the symmetric contribution to the neighbour
// particle - the unsynchronized cross-partition f[j] update is the
// DOCUMENTED OmpSCR race. The UNDOCUMENTED race (found by SWORD in SIV-B,
// missed by the HB baseline via cell eviction) is on the shared potential-
// energy accumulator.
void Md(const WorkloadParams& p) {
  const uint64_t n = p.size ? p.size : 512;
  std::vector<double> pos(n), vel(n, 0.0), f(n, 0.0);
  Rng rng(42);
  for (auto& x : pos) x = rng.NextDouble() * 10.0;

  double potential = 0.0;  // undocumented race target
  somp::Sequencer undoc_seq;

  somp::Parallel(p.threads, [&](Ctx& ctx) {
    // Force pass: thread-own f[i] plus symmetric neighbour update f[i+1].
    ctx.For(0, static_cast<int64_t>(n) - 1,
            [&](int64_t i) {
              const size_t idx = static_cast<size_t>(i);
              const double d = pos[idx + 1] - pos[idx] + 1e-3;
              const double inv = 1.0 / (d * d + 0.5);
              const double w = inv * inv * (inv - 0.5);
              instr::racy_increment(f[idx], w);
              // Symmetric push to the neighbour: races at chunk boundaries
              // (the documented race; one source-location pair).
              instr::racy_increment(f[idx + 1], -w);
            },
            {.nowait = true});
    ctx.Barrier();

    // Integration pass: disjoint, race-free.
    ctx.For(0, static_cast<int64_t>(n),
            [&](int64_t i) {
              const size_t idx = static_cast<size_t>(i);
              const double fv = instr::load(f[idx]);
              instr::store(vel[idx], vel[idx] + 0.01 * fv);
            },
            {.nowait = true});

    // The undocumented potential-energy race (eviction pattern).
    EvictionUndocRace(ctx, undoc_seq, potential, "md-pot",
                      std::source_location::current(),
                      std::source_location::current());
  });
}

// c_testPath: counts accepting paths through a layered random graph. Each
// thread explores a slice of start nodes; the DOCUMENTED race is the
// unsynchronized global path counter; the UNDOCUMENTED one (per the paper,
// SWORD-only) is on the shared best-path-length scalar.
void TestPath(const WorkloadParams& p) {
  const uint64_t nodes = p.size ? p.size : 600;
  const int layers = 12;
  std::vector<int64_t> edge_weight(nodes * layers);
  Rng rng(7);
  for (auto& w : edge_weight) w = rng.Range(1, 9);

  int64_t path_count = 0;   // documented race
  double best_len = 0.0;    // undocumented race
  somp::Sequencer undoc_seq;

  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(nodes),
            [&](int64_t start) {
              int64_t len = 0;
              uint64_t node = static_cast<uint64_t>(start);
              for (int layer = 0; layer < layers; layer++) {
                const int64_t w =
                    instr::load(edge_weight[node * layers + layer]);
                len += w;
                node = (node * 31 + static_cast<uint64_t>(w)) % nodes;
              }
              if (len % 3 == 0) {
                instr::racy_increment(path_count);  // documented race
              }
            },
            {.nowait = true});

    EvictionUndocRace(ctx, undoc_seq, best_len, "tp-best",
                      std::source_location::current(),
                      std::source_location::current());
  });
  (void)path_count;
}

}  // namespace

void RegisterOmpscrMd(WorkloadRegistry& r) {
  AddOmpscr(r, "c_md", "LJ-style MD; racy symmetric force update + undocumented race",
            1, 2, 1, Md,
            [](const WorkloadParams& p) { return (p.size ? p.size : 512) * 3 * 8; },
            512);
  AddOmpscr(r, "c_testPath",
            "layered path search; racy counter + undocumented race",
            1, 2, 1, TestPath,
            [](const WorkloadParams& p) {
              return (p.size ? p.size : 600) * 12 * 8;
            },
            600);
}

}  // namespace sword::workloads
