// OmpSCR-style kernels, part 1: loop studies, Mandelbrot, pi, Jacobi.
#include <cmath>

#include "workloads/ompscr/ompscr_common.h"

namespace sword::workloads {
namespace {

using namespace ompscr;
using somp::Ctx;

// c_loopA.badSolution: the study's broken parallelization of a loop with a
// carried dependence - a[i] reads a[i-1] written by the neighbouring thread.
void LoopABad(const WorkloadParams& p) {
  const uint64_t n = p.size ? p.size : 2000;
  std::vector<double> a(n, 1.0);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(1, static_cast<int64_t>(n), [&](int64_t i) {
      const double prev = instr::load(a[static_cast<size_t>(i) - 1]);
      instr::store(a[static_cast<size_t>(i)], prev * 0.5 + 1.0);
    });
  });
}

// c_loopB.badSolution1: forward dependence variant (writes the successor).
void LoopBBad(const WorkloadParams& p) {
  const uint64_t n = p.size ? p.size : 2000;
  std::vector<double> a(n + 1, 2.0);
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(n), [&](int64_t i) {
      const double cur = instr::load(a[static_cast<size_t>(i)]);
      instr::store(a[static_cast<size_t>(i) + 1], cur * 0.25 + 0.5);
    });
  });
}

// c_mandel: Mandelbrot set area estimation. Pixels are partitioned
// disjointly; the DOCUMENTED race is the unsynchronized update of the
// shared `numoutside` counter (the well-known OmpSCR race).
void Mandel(const WorkloadParams& p) {
  const uint64_t npoints = p.size ? p.size : 2048;
  std::vector<int64_t> iters(npoints, 0);
  int64_t numoutside = 0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    ctx.For(0, static_cast<int64_t>(npoints), [&](int64_t idx) {
      // One sample point per index, deterministic grid.
      const double cre = -2.0 + 2.5 * static_cast<double>(idx) /
                                    static_cast<double>(npoints);
      const double cim = 1.125 * static_cast<double>(idx % 64) / 64.0;
      double zre = 0.0, zim = 0.0;
      int it = 0;
      for (; it < 64; it++) {
        const double zre2 = zre * zre - zim * zim + cre;
        zim = 2.0 * zre * zim + cim;
        zre = zre2;
        if (zre * zre + zim * zim > 4.0) break;
      }
      instr::store(iters[static_cast<size_t>(idx)], static_cast<int64_t>(it));
      if (it < 64) {
        instr::racy_increment(numoutside);  // the documented race
      }
    });
  });
  (void)numoutside;
}

// c_pi: midpoint integration of 4/(1+x^2); race-free (private partials,
// critical combine).
void Pi(const WorkloadParams& p) {
  const uint64_t n = p.size ? p.size : 100000;
  double pi = 0.0;
  somp::Parallel(p.threads, [&](Ctx& ctx) {
    double partial = 0.0;
    const double w = 1.0 / static_cast<double>(n);
    ctx.For(0, static_cast<int64_t>(n),
            [&](int64_t i) {
              const double x = (static_cast<double>(i) + 0.5) * w;
              partial += 4.0 / (1.0 + x * x);
            },
            {.nowait = true});
    ctx.Critical("pi-sum", [&] {
      const double cur = instr::load(pi);
      instr::store(pi, cur + partial * w);
    });
  });
}

// c_jacobi01: Jacobi relaxation on a 2D grid, two buffers, one barrier per
// sweep; race-free. Exercises many barrier intervals.
void Jacobi(const WorkloadParams& p) {
  const uint64_t dim = p.size ? p.size : 48;
  const int sweeps = 10;
  std::vector<double> u(dim * dim, 0.0), unew(dim * dim, 0.0);
  for (uint64_t i = 0; i < dim; i++) u[i] = 1.0;  // boundary

  somp::Parallel(p.threads, [&](Ctx& ctx) {
    for (int s = 0; s < sweeps; s++) {
      auto& src = (s % 2 == 0) ? u : unew;
      auto& dst = (s % 2 == 0) ? unew : u;
      ctx.For(1, static_cast<int64_t>(dim) - 1, [&](int64_t r) {
        for (uint64_t c = 1; c + 1 < dim; c++) {
          const size_t row = static_cast<size_t>(r);
          const double north = instr::load(src[(row - 1) * dim + c]);
          const double south = instr::load(src[(row + 1) * dim + c]);
          const double west = instr::load(src[row * dim + c - 1]);
          const double east = instr::load(src[row * dim + c + 1]);
          instr::store(dst[row * dim + c], 0.25 * (north + south + west + east));
        }
      });  // implicit barrier separates sweeps
    }
  });
}

// c_jacobi02: the same relaxation with an explicit copy-back sweep instead
// of the buffer swap; race-free. Every loop site touches the SAME arrays
// with the SAME bounds on every sweep, so the static pre-filter can prove
// both sites disjoint after one observed sweep and elide the rest - this is
// the regular-stencil shape the pre-filter is built for (c_jacobi01's
// base swap deliberately defeats it).
void JacobiCopyback(const WorkloadParams& p) {
  const uint64_t dim = p.size ? p.size : 48;
  const int sweeps = 10;
  std::vector<double> u(dim * dim, 0.0), unew(dim * dim, 0.0);
  for (uint64_t i = 0; i < dim; i++) u[i] = 1.0;  // boundary

  somp::Parallel(p.threads, [&](Ctx& ctx) {
    for (int s = 0; s < sweeps; s++) {
      ctx.For(1, static_cast<int64_t>(dim) - 1, [&](int64_t r) {
        for (uint64_t c = 1; c + 1 < dim; c++) {
          const size_t row = static_cast<size_t>(r);
          const double north = instr::load(u[(row - 1) * dim + c]);
          const double south = instr::load(u[(row + 1) * dim + c]);
          const double west = instr::load(u[row * dim + c - 1]);
          const double east = instr::load(u[row * dim + c + 1]);
          instr::store(unew[row * dim + c],
                       0.25 * (north + south + west + east));
        }
      });  // implicit barrier: all of unew written before the copy-back
      ctx.For(1, static_cast<int64_t>(dim) - 1, [&](int64_t r) {
        for (uint64_t c = 1; c + 1 < dim; c++) {
          const size_t row = static_cast<size_t>(r);
          instr::store(u[row * dim + c], instr::load(unew[row * dim + c]));
        }
      });  // implicit barrier separates sweeps
    }
  });
}

}  // namespace

void RegisterOmpscrLoops(WorkloadRegistry& r) {
  AddOmpscr(r, "c_loopA.badSolution", "broken carried-dependence parallelization",
            1, 1, 1, LoopABad,
            [](const WorkloadParams& p) { return (p.size ? p.size : 2000) * 8; },
            2000);
  AddOmpscr(r, "c_loopB.badSolution1", "forward-dependence variant",
            1, 1, 1, LoopBBad,
            [](const WorkloadParams& p) { return (p.size ? p.size : 2000) * 8; },
            2000);
  AddOmpscr(r, "c_mandel", "Mandelbrot area; racy numoutside counter",
            1, 1, 1, Mandel,
            [](const WorkloadParams& p) { return (p.size ? p.size : 2048) * 8; },
            2048);
  AddOmpscr(r, "c_pi", "midpoint integration; race-free",
            0, 0, 0, Pi, [](const WorkloadParams&) { return uint64_t{64}; }, 100000);
  AddOmpscr(r, "c_jacobi01", "Jacobi relaxation; race-free, many barriers",
            0, 0, 0, Jacobi,
            [](const WorkloadParams& p) {
              const uint64_t d = p.size ? p.size : 48;
              return 2 * d * d * 8;
            },
            48);
  AddOmpscr(r, "c_jacobi02",
            "Jacobi with copy-back sweep; race-free, pre-filter showcase",
            0, 0, 0, JacobiCopyback,
            [](const WorkloadParams& p) {
              const uint64_t d = p.size ? p.size : 48;
              return 2 * d * d * 8;
            },
            48);
}

}  // namespace sword::workloads
