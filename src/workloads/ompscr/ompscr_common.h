// Shared scaffolding for the OmpSCR-style kernels.
//
// Two reusable race idioms keep the suite's ground truth deterministic on
// any machine (including a single-core one, where long sequential thread
// slices plus lock transfers would otherwise let the HB baseline's
// release->acquire edges cover almost everything):
//
//  PinnedDocRace   - the benchmark's DOCUMENTED race: lane 0 writes a shared
//                    variable after its last lock release, lane 1 reads it
//                    before any further acquire, order pinned by a
//                    Sequencer. No happens-before path can cover it, so the
//                    HB baseline reliably reports it - as ARCHER does in the
//                    paper's Table II.
//  EvictionUndocRace - the UNDOCUMENTED race SWORD additionally finds: the
//                    shadow-cell eviction pattern (see drb_eviction.cpp).
//                    The HB baseline deterministically misses it.
#pragma once

#include <cstdint>
#include <source_location>
#include <vector>

#include "common/rng.h"
#include "somp/instr.h"
#include "somp/runtime.h"
#include "somp/sequencer.h"
#include "workloads/workload.h"

namespace sword::workloads::ompscr {

/// Lane 0 -> lane 1 pinned write/read with no intervening lock activity.
/// Call from every team member after all worksharing in the region is done.
inline void PinnedDocRace(somp::Ctx& ctx, somp::Sequencer& seq, double& var,
                          const std::source_location& write_loc,
                          const std::source_location& read_loc) {
  if (ctx.num_threads() < 2) return;
  if (ctx.thread_num() == 0) {
    instr::store(var, 1.0, write_loc);
    seq.Await(0);
  } else if (ctx.thread_num() == 1) {
    seq.WaitUntil(1);
    (void)instr::load(var, read_loc);
  }
}

/// The shadow-eviction pattern: lane 0 writes, floods the granule's cells
/// with same-thread distinct-epoch reads, then lane 1 reads unordered.
inline void EvictionUndocRace(somp::Ctx& ctx, somp::Sequencer& seq, double& var,
                              const char* lock_name,
                              const std::source_location& write_loc,
                              const std::source_location& read_loc) {
  if (ctx.num_threads() < 2) return;
  if (ctx.thread_num() == 0) {
    instr::store(var, 2.0, write_loc);
    double acc = 0.0;
    for (int k = 0; k < 6; k++) {
      ctx.Critical(lock_name, [&] { acc += instr::load(var); });
    }
    (void)acc;
    seq.Await(0);
  } else if (ctx.thread_num() == 1) {
    seq.WaitUntil(1);
    (void)instr::load(var, read_loc);
  }
}

/// Registration shorthand.
inline void AddOmpscr(WorkloadRegistry& r, const char* name, const char* desc,
                      int doc, int total, int archer,
                      std::function<void(const WorkloadParams&)> run,
                      std::function<uint64_t(const WorkloadParams&)> bytes,
                      uint64_t default_size) {
  Workload w;
  w.suite = "ompscr";
  w.name = name;
  w.description = desc;
  w.documented_races = doc;
  w.total_races = total;
  w.archer_expected = archer;
  w.run = std::move(run);
  w.baseline_bytes = std::move(bytes);
  w.default_size = default_size;
  r.Register(std::move(w));
}

}  // namespace sword::workloads::ompscr
