// Lock-free building blocks for the online trace plane.
//
// Three structures, modeled on the progress64 designs the ROADMAP names
// (p64_ringbuf / p64_lfring / p64_qsbr):
//
//  - MpmcRing<T>: a bounded multi-producer multi-consumer ring with a
//    per-slot sequence number (Vyukov's design). Producers and consumers
//    claim positions with a CAS on a cache-line-isolated head/tail and then
//    synchronize on the slot's own sequence word, so a claim in progress
//    never blocks other slots. Used as the flusher's per-worker lane (many
//    producers, one consumer).
//
//  - FreeList<T>: a bounded lock-free free list built from TWO Treiber
//    stacks over one fixed node array - a "spare" stack of empty nodes and
//    a "full" stack of populated ones. Heads pack {tag, index} into a
//    single 64-bit word (tag bumped on every successful CAS), which kills
//    ABA without double-width CAS and without ever freeing a node, so a
//    racing reader can at worst read a stale-but-allocated node and fail
//    its CAS. Used by the flusher's BufferPool.
//
//  - QsbrDomain: quiescent-state-based reclamation. Each participating
//    thread owns one cache-line slot holding either 0 (offline = quiescent)
//    or (epoch << 1) | 1 (online since `epoch`). A grace period begun at
//    epoch G has passed once every slot is offline or online-since >= G: at
//    that point no thread can still hold a reference acquired before the
//    grace began. The somp runtime maps barriers and implicit-task ends to
//    Quiescent(), which is what lets tool finalization retire per-thread
//    sinks without a stop-the-world epoch bump.
//
// Memory ordering invariants (per structure) are documented inline and in
// docs/ARCHITECTURE.md. Everything here is TSan-clean by construction: all
// cross-thread state is std::atomic.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

namespace sword::lockfree {

/// Destructive-interference span: hot atomics owned by different threads
/// are kept on separate lines with alignas(kCacheLine).
inline constexpr std::size_t kCacheLine = 64;

inline std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Bounded MPMC ring buffer (Vyukov). Capacity is rounded up to a power of
/// two. TryPush moves from `v` only on success; TryPop move-assigns into
/// `*out` and destroys the slot's element only on success.
///
/// Ordering: a producer publishes the element with a release store of the
/// slot sequence (seq = pos + 1); the consumer's acquire load of that same
/// word is the ONLY synchronization edge for the payload. head_/tail_ CAS
/// operations are relaxed - they only arbitrate position ownership, never
/// publish data.
template <typename T>
class MpmcRing {
 public:
  explicit MpmcRing(std::size_t min_capacity)
      : capacity_(RoundUpPow2(min_capacity < 2 ? 2 : min_capacity)),
        mask_(capacity_ - 1),
        slots_(new Slot[capacity_]) {
    for (std::size_t i = 0; i < capacity_; i++) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  ~MpmcRing() {
    T drop;
    while (TryPop(&drop)) {
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// False when the ring is full. `v` is untouched on failure.
  bool TryPush(T&& v) {
    uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          new (slot.storage) T(std::move(v));
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // the slot still holds an element from one lap ago
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// False when the ring is empty.
  bool TryPop(T* out) {
    uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const int64_t dif =
          static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          T* elem = std::launder(reinterpret_cast<T*>(slot.storage));
          *out = std::move(*elem);
          elem->~T();
          // Hand the slot to producers one lap ahead.
          slot.seq.store(pos + capacity_, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  bool Empty() const { return ApproxSize() == 0; }

  /// Racy by nature; exact once producers and consumers are quiescent.
  std::size_t ApproxSize() const {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_relaxed);
    return tail > head ? static_cast<std::size_t>(tail - head) : 0;
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq;
    alignas(T) unsigned char storage[sizeof(T)];
  };

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  alignas(kCacheLine) std::atomic<uint64_t> head_{0};
  alignas(kCacheLine) std::atomic<uint64_t> tail_{0};
};

/// Bounded lock-free free list: TryPut parks a value, TryGet takes any
/// parked value (LIFO-ish, no ordering guarantee). Rejects instead of
/// blocking or allocating when full/empty.
///
/// ABA defense: stack heads are {tag:32 | index:32}; every successful
/// push/pop bumps the tag, and nodes live in one fixed array for the list's
/// lifetime, so a stale head can never be re-validated by coincidence and a
/// stale node read can never fault.
///
/// Ordering: Push publishes node payload with the release CAS on the stack
/// head; Pop's acquire load + acquire CAS failure reload pair with it. The
/// node's `next` word is only ever written by the node's exclusive owner
/// (the thread that popped it from the other stack) before the publishing
/// CAS.
template <typename T>
class FreeList {
 public:
  explicit FreeList(std::size_t capacity)
      : capacity_(capacity), nodes_(capacity ? new Node[capacity] : nullptr) {
    for (std::size_t i = 0; i + 1 < capacity_; i++) {
      nodes_[i].next.store(static_cast<uint32_t>(i + 1),
                           std::memory_order_relaxed);
    }
    if (capacity_ > 0) {
      nodes_[capacity_ - 1].next.store(kNil, std::memory_order_relaxed);
      spare_.store(Pack(0, 0), std::memory_order_relaxed);
    }
  }

  FreeList(const FreeList&) = delete;
  FreeList& operator=(const FreeList&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// False when all nodes are in use (list full). `v` is untouched then.
  bool TryPut(T&& v) {
    const uint32_t idx = Pop(spare_);
    if (idx == kNil) return false;
    nodes_[idx].value = std::move(v);
    Push(full_, idx);
    size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// False when no value is parked.
  bool TryGet(T* out) {
    const uint32_t idx = Pop(full_);
    if (idx == kNil) return false;
    size_.fetch_sub(1, std::memory_order_relaxed);
    *out = std::move(nodes_[idx].value);
    nodes_[idx].value = T{};  // drop any moved-from residue eagerly
    Push(spare_, idx);
    return true;
  }

  /// Racy by nature; exact once all threads are quiescent.
  std::size_t ApproxSize() const {
    return size_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr uint32_t kNil = 0xffffffffu;

  struct Node {
    std::atomic<uint32_t> next{kNil};
    T value{};
  };

  static uint64_t Pack(uint32_t index, uint32_t tag) {
    return (static_cast<uint64_t>(tag) << 32) | index;
  }

  uint32_t Pop(std::atomic<uint64_t>& head) {
    uint64_t h = head.load(std::memory_order_acquire);
    for (;;) {
      const uint32_t idx = static_cast<uint32_t>(h);
      if (idx == kNil) return kNil;
      // Possibly stale (another thread may pop `idx` first), but always a
      // live node in nodes_: the CAS below fails on any interleaving.
      const uint32_t next = nodes_[idx].next.load(std::memory_order_relaxed);
      const uint64_t replacement =
          Pack(next, static_cast<uint32_t>(h >> 32) + 1);
      if (head.compare_exchange_weak(h, replacement,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        return idx;
      }
    }
  }

  void Push(std::atomic<uint64_t>& head, uint32_t idx) {
    uint64_t h = head.load(std::memory_order_relaxed);
    for (;;) {
      nodes_[idx].next.store(static_cast<uint32_t>(h),
                             std::memory_order_relaxed);
      const uint64_t replacement =
          Pack(idx, static_cast<uint32_t>(h >> 32) + 1);
      if (head.compare_exchange_weak(h, replacement,
                                     std::memory_order_release,
                                     std::memory_order_relaxed)) {
        return;
      }
    }
  }

  const std::size_t capacity_;
  std::unique_ptr<Node[]> nodes_;
  alignas(kCacheLine) std::atomic<uint64_t> full_{Pack(kNil, 0)};
  alignas(kCacheLine) std::atomic<uint64_t> spare_{Pack(kNil, 0)};
  alignas(kCacheLine) std::atomic<std::size_t> size_{0};
};

/// Quiescent-state-based reclamation domain.
///
/// Participants: a thread calls Register() once (slot id), then brackets
/// every read-side section with Online(slot) ... Quiescent(slot), and
/// Unregister(slot) before exiting. Online/Quiescent are a single seq_cst
/// store each - paid once per SEGMENT (barrier interval), not per access.
///
/// Retirers: BeginGrace() advances the global epoch and returns the new
/// value G; GracePassed(G) is true once every registered slot is offline or
/// went online at epoch >= G - i.e. every reference taken before the grace
/// began has been dropped at a quiescent point. Retire(fn) defers `fn`
/// until the grace that is current at call time has passed; deferred work
/// runs inside Poll(), which Quiescent() calls opportunistically (the
/// retire list is mutex-guarded - it is the cold path by design).
///
/// Ordering: Online/Quiescent stores and the BeginGrace epoch bump are all
/// seq_cst so that "slot went online before the bump" and "retirer saw the
/// slot offline" cannot both be false - the classic store/load (Dekker)
/// pattern between participant and retirer.
class QsbrDomain {
 public:
  static constexpr uint32_t kMaxParticipants = 256;
  static constexpr uint32_t kInvalidSlot = 0xffffffffu;

  QsbrDomain() = default;
  QsbrDomain(const QsbrDomain&) = delete;
  QsbrDomain& operator=(const QsbrDomain&) = delete;

  /// Claims a participant slot; kInvalidSlot when all are taken (the caller
  /// must then stay on its fallback path - it is simply not tracked).
  uint32_t Register() {
    for (uint32_t i = 0; i < kMaxParticipants; i++) {
      uint32_t expected = 0;
      if (slots_[i].used.compare_exchange_strong(expected, 1,
                                                 std::memory_order_acq_rel)) {
        slots_[i].state.store(0, std::memory_order_seq_cst);
        return i;
      }
    }
    return kInvalidSlot;
  }

  void Unregister(uint32_t slot) {
    if (slot >= kMaxParticipants) return;
    slots_[slot].state.store(0, std::memory_order_seq_cst);
    slots_[slot].used.store(0, std::memory_order_release);
  }

  /// Enters a read-side section: records "online since the current epoch".
  void Online(uint32_t slot) {
    if (slot >= kMaxParticipants) return;
    const uint64_t epoch = epoch_.load(std::memory_order_seq_cst);
    slots_[slot].state.store((epoch << 1) | 1, std::memory_order_seq_cst);
  }

  /// Leaves the read-side section (a quiescent point). Drains any ripe
  /// deferred retirements while here - the check is one relaxed load.
  void Quiescent(uint32_t slot) {
    if (slot < kMaxParticipants) {
      slots_[slot].state.store(0, std::memory_order_seq_cst);
    }
    if (retired_count_.load(std::memory_order_relaxed) > 0) (void)Poll();
  }

  bool IsOnline(uint32_t slot) const {
    return slot < kMaxParticipants &&
           (slots_[slot].state.load(std::memory_order_seq_cst) & 1) != 0;
  }

  /// Starts a grace period; returns its epoch G for GracePassed(G).
  uint64_t BeginGrace() {
    return epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  /// True once no participant can still hold a pre-grace reference.
  bool GracePassed(uint64_t grace_epoch) const {
    for (uint32_t i = 0; i < kMaxParticipants; i++) {
      if (slots_[i].used.load(std::memory_order_acquire) == 0) continue;
      const uint64_t state = slots_[i].state.load(std::memory_order_seq_cst);
      if ((state & 1) != 0 && (state >> 1) < grace_epoch) return false;
    }
    return true;
  }

  /// One-shot: begins a grace and reports whether it passed immediately
  /// (all participants quiescent) - the normal Configure/Finalize case.
  bool SynchronizeIfQuiescent() { return GracePassed(BeginGrace()); }

  /// Defers `fn` until the grace begun now has passed, then runs it from
  /// Poll() (possibly on another thread).
  void Retire(std::function<void()> fn) {
    const uint64_t grace = BeginGrace();
    {
      std::lock_guard lock(retire_mutex_);
      retired_.push_back({grace, std::move(fn)});
    }
    retired_count_.fetch_add(1, std::memory_order_relaxed);
    (void)Poll();
  }

  /// Runs every deferred retirement whose grace has passed; returns how
  /// many ran. Callbacks execute outside the internal lock.
  std::size_t Poll() {
    std::vector<std::function<void()>> ripe;
    {
      std::lock_guard lock(retire_mutex_);
      for (auto it = retired_.begin(); it != retired_.end();) {
        if (GracePassed(it->grace)) {
          ripe.push_back(std::move(it->fn));
          it = retired_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (!ripe.empty()) {
      retired_count_.fetch_sub(ripe.size(), std::memory_order_relaxed);
      for (auto& fn : ripe) fn();
    }
    return ripe.size();
  }

  std::size_t retired_pending() const {
    return retired_count_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(kCacheLine) Slot {
    std::atomic<uint64_t> state{0};  // 0 = offline; else (epoch << 1) | 1
    std::atomic<uint32_t> used{0};
  };

  Slot slots_[kMaxParticipants];
  alignas(kCacheLine) std::atomic<uint64_t> epoch_{1};
  alignas(kCacheLine) std::atomic<std::size_t> retired_count_{0};
  std::mutex retire_mutex_;
  struct Retired {
    uint64_t grace;
    std::function<void()> fn;
  };
  std::vector<Retired> retired_;
};

}  // namespace sword::lockfree
