// Minimal command-line flag parser for the CLI tools: supports
// --flag=value, --flag value, bare --flag (boolean), and positional
// arguments. No external dependencies, deliberately small.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sword {

class ArgParser {
 public:
  ArgParser(int argc, char** argv);

  /// Positional arguments in order (non-flag tokens).
  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& flag) const { return flags_.count(flag) > 0; }

  std::string GetString(const std::string& flag, const std::string& def = "") const;
  int64_t GetInt(const std::string& flag, int64_t def) const;
  bool GetBool(const std::string& flag, bool def = false) const;

  /// Flags that were provided but never queried (typo detection).
  std::vector<std::string> UnknownFlags() const;

 private:
  std::map<std::string, std::string> flags_;  // name -> value ("" for bare)
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace sword
