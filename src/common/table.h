// Plain-text table formatter used by the bench binaries to print paper-style
// tables (Table II/III/IV/V rows, figure series).
#pragma once

#include <string>
#include <vector>

namespace sword {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders with a header rule and right-padded columns.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
std::string Fmt(double v, int precision = 2);
std::string FmtX(double v, int precision = 2);  // "3.21x"

}  // namespace sword
