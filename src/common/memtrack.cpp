#include "common/memtrack.h"

namespace sword {

Status MemoryScope::Charge(uint64_t n) {
  uint64_t cur = current_.load(std::memory_order_relaxed);
  while (true) {
    const uint64_t next = cur + n;
    if (cap_ != 0 && next > cap_) {
      return Status::Oom(name_ + ": cap " + std::to_string(cap_) +
                         " bytes exceeded (would reach " + std::to_string(next) + ")");
    }
    if (current_.compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
      // Peak update may lose a race with a concurrent larger peak, which is
      // fine: we only ever under-report by a transient amount.
      uint64_t pk = peak_.load(std::memory_order_relaxed);
      while (next > pk &&
             !peak_.compare_exchange_weak(pk, next, std::memory_order_relaxed)) {
      }
      return Status::Ok();
    }
  }
}

void MemoryScope::Release(uint64_t n) {
  uint64_t cur = current_.load(std::memory_order_relaxed);
  while (true) {
    const uint64_t next = cur >= n ? cur - n : 0;
    if (current_.compare_exchange_weak(cur, next, std::memory_order_relaxed)) return;
  }
}

}  // namespace sword
