// Wall-clock timing helpers used by the harness to measure dynamic-analysis
// slowdown and offline-analysis latency (paper Figs. 6-8, Tables III/V).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace sword {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// "1.234 s", "12.3 ms", "456 us" - human-friendly duration formatting for the
/// table printers.
std::string FormatSeconds(double seconds);

/// "1.2 GB", "3.4 MB", "512 B".
std::string FormatBytes(uint64_t bytes);

}  // namespace sword
