// Lightweight status / expected types used across the SWORD reproduction.
//
// We avoid exceptions on hot paths (trace collection runs inside instrumented
// parallel regions); fallible operations return Status or Result<T>.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace sword {

enum class ErrorCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kCorruptData,
  kIoError,
  kOutOfMemory,   // used by the HB baseline to signal the simulated node OOM
  kUnsupported,
  kInternal,
  kUnavailable,   // transient I/O failure (EINTR/EAGAIN); safe to retry
  kNoSpace,       // ENOSPC/EDQUOT; retrying immediately is pointless
};

/// Human-readable name of an ErrorCode ("ok", "io-error", ...).
const char* ErrorCodeName(ErrorCode code);

/// A cheap, copyable status: an error code plus an optional message.
/// The OK status carries no allocation.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(ErrorCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(ErrorCode::kNotFound, std::move(msg));
  }
  static Status Corrupt(std::string msg) {
    return Status(ErrorCode::kCorruptData, std::move(msg));
  }
  static Status Io(std::string msg) {
    return Status(ErrorCode::kIoError, std::move(msg));
  }
  static Status Oom(std::string msg) {
    return Status(ErrorCode::kOutOfMemory, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(ErrorCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(ErrorCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(ErrorCode::kUnavailable, std::move(msg));
  }
  static Status NoSpace(std::string msg) {
    return Status(ErrorCode::kNoSpace, std::move(msg));
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

 private:
  ErrorCode code_;
  std::string message_;
};

/// Result<T> holds either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}       // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) { // NOLINT(google-explicit-constructor)
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace sword

/// Propagate a non-OK Status out of the enclosing function.
#define SWORD_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::sword::Status sword_status_ = (expr);          \
    if (!sword_status_.ok()) return sword_status_;   \
  } while (0)
