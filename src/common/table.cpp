#include "common/table.h"

#include <algorithm>
#include <cstdio>

namespace sword {

std::string TextTable::ToString() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); c++) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); c++) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < width.size(); c++) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += cell;
      if (c + 1 < width.size()) line += std::string(width[c] - cell.size() + 2, ' ');
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); c++) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  out += std::string(total, '-') + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FmtX(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fx", precision, v);
  return buf;
}

}  // namespace sword
