#include "common/bytes.h"

namespace sword {

void ByteWriter::PutU16(uint16_t v) {
  uint8_t b[2] = {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8)};
  Push(b, 2);
}

void ByteWriter::PutU32(uint32_t v) {
  uint8_t b[4];
  for (int i = 0; i < 4; i++) b[i] = static_cast<uint8_t>(v >> (8 * i));
  Push(b, 4);
}

void ByteWriter::PutU64(uint64_t v) {
  uint8_t b[8];
  for (int i = 0; i < 8; i++) b[i] = static_cast<uint8_t>(v >> (8 * i));
  Push(b, 8);
}

void ByteWriter::PutVarU64(uint64_t v) {
  uint8_t b[10];
  int n = 0;
  while (v >= 0x80) {
    b[n++] = static_cast<uint8_t>(v | 0x80);
    v >>= 7;
  }
  b[n++] = static_cast<uint8_t>(v);
  Push(b, static_cast<size_t>(n));
}

void ByteWriter::PutVarI64(int64_t v) {
  // Zigzag encoding keeps small negative values short.
  uint64_t z = (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  PutVarU64(z);
}

void ByteWriter::PutBytes(const uint8_t* data, size_t n) {
  PutVarU64(n);
  Push(data, n);
}

void ByteWriter::PutString(const std::string& s) {
  PutBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

Status ByteReader::GetU8(uint8_t* v) {
  if (remaining() < 1) return Status::Corrupt("truncated u8");
  *v = data_[pos_++];
  return Status::Ok();
}

Status ByteReader::GetU16(uint16_t* v) {
  if (remaining() < 2) return Status::Corrupt("truncated u16");
  *v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return Status::Ok();
}

Status ByteReader::GetU32(uint32_t* v) {
  if (remaining() < 4) return Status::Corrupt("truncated u32");
  uint32_t r = 0;
  for (int i = 0; i < 4; i++) r |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  *v = r;
  return Status::Ok();
}

Status ByteReader::GetU64(uint64_t* v) {
  if (remaining() < 8) return Status::Corrupt("truncated u64");
  uint64_t r = 0;
  for (int i = 0; i < 8; i++) r |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  *v = r;
  return Status::Ok();
}

Status ByteReader::GetVarU64(uint64_t* v) {
  uint64_t r = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_) return Status::Corrupt("truncated varint");
    if (shift >= 64) return Status::Corrupt("varint overflow");
    uint8_t byte = data_[pos_++];
    r |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) break;
    shift += 7;
  }
  *v = r;
  return Status::Ok();
}

Status ByteReader::GetVarI64(int64_t* v) {
  uint64_t z;
  SWORD_RETURN_IF_ERROR(GetVarU64(&z));
  *v = static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  return Status::Ok();
}

Status ByteReader::GetBytes(Bytes* out) {
  uint64_t n;
  SWORD_RETURN_IF_ERROR(GetVarU64(&n));
  if (remaining() < n) return Status::Corrupt("truncated byte string");
  out->assign(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return Status::Ok();
}

Status ByteReader::GetString(std::string* out) {
  uint64_t n;
  SWORD_RETURN_IF_ERROR(GetVarU64(&n));
  if (remaining() < n) return Status::Corrupt("truncated string");
  out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return Status::Ok();
}

Status ByteReader::Skip(size_t n) {
  if (remaining() < n) return Status::Corrupt("skip past end");
  pos_ += n;
  return Status::Ok();
}

uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; i++) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace sword
