// Filesystem helpers for the trace log/meta files: whole-file read/write, a
// pluggable write backend (so tests can inject I/O faults below the flush
// pipeline), crash-consistent atomic file replacement, and a self-cleaning
// temporary directory for tests and benches.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace sword {

/// The raw file-write layer the trace pipeline sits on. One implementation
/// talks to the real filesystem; sword::testing::FaultFile wraps it to
/// inject deterministic failures (ENOSPC, EINTR, short writes, bit flips,
/// crash-style truncation). Methods are single-attempt: transient errors
/// (kUnavailable) and short writes are reported to the caller, which owns
/// the retry policy - that keeps retries testable instead of buried.
class FileBackend {
 public:
  virtual ~FileBackend() = default;

  /// Appends up to `n` bytes to `path`, creating it if needed. `*written`
  /// (required) receives how many bytes actually reached the file, which on
  /// failure may be any prefix of `n` - exactly the short-write case a
  /// crashed or signal-interrupted writer leaves behind. Error codes:
  /// kUnavailable = transient (EINTR/EAGAIN), retry; kNoSpace = ENOSPC.
  virtual Status Append(const std::string& path, const uint8_t* data, size_t n,
                        size_t* written) = 0;

  /// Replaces `path`'s contents wholesale (truncate + write).
  virtual Status WriteWhole(const std::string& path, const Bytes& data) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Truncates `path` to `size` bytes. The flusher uses this to roll back a
  /// partial append so a failed frame never leaves a torn tail.
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  /// Flushes `path`'s data to stable storage (fsync). The default is a
  /// no-op so purely in-memory test backends stay trivial; the real backend
  /// overrides it. kUnavailable = transient (EINTR), retry.
  virtual Status Sync(const std::string& path) {
    (void)path;
    return Status::Ok();
  }
};

/// The process-wide real-filesystem backend.
FileBackend& RealFileBackend();

/// Retry policy for transient append failures. Retries apply to
/// kUnavailable errors and to short writes (continuing from the written
/// prefix); kNoSpace and hard I/O errors are surfaced immediately.
struct RetryPolicy {
  uint32_t max_attempts = 5;   // total attempts, including the first
  uint32_t backoff_us = 200;   // base backoff; doubles per retry, capped
  uint32_t max_backoff_us = 10 * 1000;
};

struct AppendOutcome {
  Status status;
  size_t written = 0;   // bytes that reached the file (prefix on failure)
  uint32_t retries = 0; // extra attempts beyond the first
};

/// The ONE transient-failure retry loop every backend interaction in the
/// flush pipeline goes through (append, fsync): tracks attempts against
/// `policy`, sleeps the bounded exponential backoff between them, and counts
/// the retries it granted. Historically the write path had this logic inline
/// while fsync/close handled EINTR ad hoc; unifying them here is what makes
/// the retry counters in FlusherStats mean the same thing everywhere.
class TransientRetry {
 public:
  explicit TransientRetry(const RetryPolicy& policy) : policy_(policy) {}

  /// Returns true if `status` is transient (kUnavailable) and the attempt
  /// budget allows another try; sleeps the current backoff before returning.
  bool ShouldRetry(const Status& status);

  uint32_t retries() const { return retries_; }

 private:
  const RetryPolicy policy_;
  uint32_t attempts_ = 0;
  uint32_t retries_ = 0;
  uint32_t backoff_us_ = 0;  // initialized from policy on first retry
};

/// Appends with retry-on-transient-failure per `policy`. Short successful
/// writes continue from the written prefix without consuming an attempt's
/// backoff. Gives up with the last error once attempts are exhausted.
AppendOutcome AppendWithRetry(FileBackend& backend, const std::string& path,
                              const uint8_t* data, size_t n,
                              const RetryPolicy& policy = {});

struct SyncOutcome {
  Status status;
  uint32_t retries = 0;  // extra attempts beyond the first
};

/// backend.Sync(path) through the same TransientRetry loop as the append
/// path (EINTR on fsync retries with bounded exponential backoff). Note
/// close(2) is deliberately NOT retried anywhere: on Linux the descriptor is
/// freed even when close fails with EINTR, so a retry could close an
/// unrelated freshly-opened descriptor.
SyncOutcome SyncWithRetry(FileBackend& backend, const std::string& path,
                          const RetryPolicy& policy = {});

/// Crash-consistent whole-file replacement: writes `path`.tmp, then renames
/// it over `path`. A reader (or a rebooted machine) sees either the old or
/// the new contents, never a torn mix - this is what makes incremental meta
/// checkpoints safe against mid-write death.
Status WriteFileAtomic(const std::string& path, const Bytes& data,
                       FileBackend* backend = nullptr);

Status WriteFile(const std::string& path, const Bytes& data);
Status AppendFile(const std::string& path, const uint8_t* data, size_t n);
Result<Bytes> ReadFileBytes(const std::string& path);
/// Reads n bytes starting at byte `offset`; fails if the range is past EOF.
Result<Bytes> ReadFileRange(const std::string& path, uint64_t offset, uint64_t n);
Result<uint64_t> FileSize(const std::string& path);
bool FileExists(const std::string& path);
Status RemoveFile(const std::string& path);
/// Truncates the file to `n` bytes (crash/corruption simulation in tests).
Status TruncateFile(const std::string& path, uint64_t n);

/// Creates `path` and any missing parents; ok if it already exists.
Status MakeDirs(const std::string& path);

/// Creates a unique directory under the system temp dir; removes it (and all
/// contents) on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "sword");
  ~TempDir();
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

}  // namespace sword
