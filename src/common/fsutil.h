// Filesystem helpers for the trace log/meta files: whole-file read/write and
// a self-cleaning temporary directory for tests and benches.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace sword {

Status WriteFile(const std::string& path, const Bytes& data);
Status AppendFile(const std::string& path, const uint8_t* data, size_t n);
Result<Bytes> ReadFileBytes(const std::string& path);
/// Reads n bytes starting at byte `offset`; fails if the range is past EOF.
Result<Bytes> ReadFileRange(const std::string& path, uint64_t offset, uint64_t n);
Result<uint64_t> FileSize(const std::string& path);
bool FileExists(const std::string& path);
Status RemoveFile(const std::string& path);

/// Creates a unique directory under the system temp dir; removes it (and all
/// contents) on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "sword");
  ~TempDir();
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

}  // namespace sword
