#include "common/fsutil.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace sword {

namespace fs = std::filesystem;

Status WriteFile(const std::string& path, const Bytes& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return Status::Io("cannot open for write: " + path);
  size_t written = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  const int rc = std::fclose(f);
  if (written != data.size() || rc != 0) {
    return Status::Io("short write: " + path);
  }
  return Status::Ok();
}

Status AppendFile(const std::string& path, const uint8_t* data, size_t n) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (!f) return Status::Io("cannot open for append: " + path);
  size_t written = n == 0 ? 0 : std::fwrite(data, 1, n, f);
  const int rc = std::fclose(f);
  if (written != n || rc != 0) return Status::Io("short append: " + path);
  return Status::Ok();
}

Result<Bytes> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::Io("cannot open for read: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  Bytes out(static_cast<size_t>(size));
  size_t got = out.empty() ? 0 : std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (got != out.size()) return Status::Io("short read: " + path);
  return out;
}

Result<Bytes> ReadFileRange(const std::string& path, uint64_t offset, uint64_t n) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::Io("cannot open for read: " + path);
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
    std::fclose(f);
    return Status::Io("seek failed: " + path);
  }
  Bytes out(static_cast<size_t>(n));
  size_t got = out.empty() ? 0 : std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (got != out.size()) {
    return Status::Io("range read past EOF: " + path);
  }
  return out;
}

Result<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) return Status::Io("file_size failed: " + path);
  return static_cast<uint64_t>(size);
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Status::Io("remove failed: " + path);
  return Status::Ok();
}

TempDir::TempDir(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  const auto base = fs::temp_directory_path();
  // PID + counter keeps concurrently running test binaries apart.
  path_ = (base / (prefix + "-" + std::to_string(::getpid()) + "-" +
                   std::to_string(counter.fetch_add(1))))
              .string();
  fs::create_directories(path_);
}

TempDir::~TempDir() {
  std::error_code ec;
  fs::remove_all(path_, ec);
}

}  // namespace sword
