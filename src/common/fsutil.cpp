#include "common/fsutil.h"

#include <errno.h>
#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace sword {

namespace fs = std::filesystem;

namespace {

Status StatusFromErrno(int err, const std::string& what,
                       const std::string& path) {
  std::string msg = what + ": " + path + " (" + std::strerror(err) + ")";
  switch (err) {
    case EINTR:
    case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
      return Status::Unavailable(std::move(msg));
    case ENOSPC:
#ifdef EDQUOT
    case EDQUOT:
#endif
      return Status::NoSpace(std::move(msg));
    default:
      return Status::Io(std::move(msg));
  }
}

/// The real-filesystem backend: POSIX open/write so errno survives to be
/// classified (stdio folds everything into ferror).
class PosixFileBackend final : public FileBackend {
 public:
  Status Append(const std::string& path, const uint8_t* data, size_t n,
                size_t* written) override {
    *written = 0;
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) return StatusFromErrno(errno, "open for append", path);
    Status st = Status::Ok();
    while (*written < n) {
      const ssize_t got = ::write(fd, data + *written, n - *written);
      if (got < 0) {
        st = StatusFromErrno(errno, "append", path);
        break;
      }
      *written += static_cast<size_t>(got);
      // A zero-byte write would loop forever; treat it as transient.
      if (got == 0) {
        st = Status::Unavailable("zero-byte write: " + path);
        break;
      }
    }
    ::close(fd);
    return st;
  }

  Status WriteWhole(const std::string& path, const Bytes& data) override {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return StatusFromErrno(errno, "open for write", path);
    size_t written = 0;
    Status st = Status::Ok();
    while (written < data.size()) {
      const ssize_t got =
          ::write(fd, data.data() + written, data.size() - written);
      if (got < 0) {
        if (errno == EINTR) continue;  // whole-file writes just retry inline
        st = StatusFromErrno(errno, "write", path);
        break;
      }
      written += static_cast<size_t>(got);
    }
    ::close(fd);
    return st;
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return StatusFromErrno(errno, "rename to " + to, from);
    }
    return Status::Ok();
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return StatusFromErrno(errno, "truncate", path);
    }
    return Status::Ok();
  }

  Status Sync(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd < 0) return StatusFromErrno(errno, "open for fsync", path);
    Status st = Status::Ok();
    if (::fsync(fd) != 0) st = StatusFromErrno(errno, "fsync", path);
    // close is NOT retried on EINTR: Linux frees the descriptor either way,
    // and a retry could close a descriptor another thread just opened.
    ::close(fd);
    return st;
  }
};

}  // namespace

FileBackend& RealFileBackend() {
  static PosixFileBackend backend;
  return backend;
}

bool TransientRetry::ShouldRetry(const Status& status) {
  ++attempts_;
  if (status.code() != ErrorCode::kUnavailable) return false;
  if (attempts_ >= policy_.max_attempts) return false;
  ++retries_;
  if (policy_.backoff_us > 0) {
    if (backoff_us_ == 0) {
      backoff_us_ = policy_.backoff_us;
    } else {
      backoff_us_ = backoff_us_ * 2 > policy_.max_backoff_us
                        ? policy_.max_backoff_us
                        : backoff_us_ * 2;
    }
    ::usleep(backoff_us_);
  }
  return true;
}

AppendOutcome AppendWithRetry(FileBackend& backend, const std::string& path,
                              const uint8_t* data, size_t n,
                              const RetryPolicy& policy) {
  AppendOutcome out;
  TransientRetry retry(policy);
  while (true) {
    size_t got = 0;
    out.status =
        backend.Append(path, data + out.written, n - out.written, &got);
    out.written += got;
    if (out.status.ok() && out.written < n) {
      // Successful short write: keep going from the written prefix without
      // burning an attempt (the backend made progress).
      continue;
    }
    if (out.status.ok()) {
      out.retries = retry.retries();
      return out;
    }
    if (!retry.ShouldRetry(out.status)) {
      out.retries = retry.retries();
      return out;
    }
  }
}

SyncOutcome SyncWithRetry(FileBackend& backend, const std::string& path,
                          const RetryPolicy& policy) {
  SyncOutcome out;
  TransientRetry retry(policy);
  do {
    out.status = backend.Sync(path);
  } while (!out.status.ok() && retry.ShouldRetry(out.status));
  out.retries = retry.retries();
  return out;
}

Status WriteFileAtomic(const std::string& path, const Bytes& data,
                       FileBackend* backend) {
  FileBackend& b = backend ? *backend : RealFileBackend();
  const std::string tmp = path + ".tmp";
  SWORD_RETURN_IF_ERROR(b.WriteWhole(tmp, data));
  return b.Rename(tmp, path);
}

Status WriteFile(const std::string& path, const Bytes& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return Status::Io("cannot open for write: " + path);
  size_t written = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  const int rc = std::fclose(f);
  if (written != data.size() || rc != 0) {
    return Status::Io("short write: " + path);
  }
  return Status::Ok();
}

Status AppendFile(const std::string& path, const uint8_t* data, size_t n) {
  size_t written = 0;
  return RealFileBackend().Append(path, data, n, &written);
}

Result<Bytes> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::Io("cannot open for read: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  Bytes out(static_cast<size_t>(size));
  size_t got = out.empty() ? 0 : std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (got != out.size()) return Status::Io("short read: " + path);
  return out;
}

Result<Bytes> ReadFileRange(const std::string& path, uint64_t offset, uint64_t n) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::Io("cannot open for read: " + path);
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
    std::fclose(f);
    return Status::Io("seek failed: " + path);
  }
  Bytes out(static_cast<size_t>(n));
  size_t got = out.empty() ? 0 : std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (got != out.size()) {
    return Status::Io("range read past EOF: " + path);
  }
  return out;
}

Result<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) return Status::Io("file_size failed: " + path);
  return static_cast<uint64_t>(size);
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Status::Io("remove failed: " + path);
  return Status::Ok();
}

Status MakeDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::Io("mkdir failed: " + path + " (" + ec.message() + ")");
  return Status::Ok();
}

Status TruncateFile(const std::string& path, uint64_t n) {
  if (::truncate(path.c_str(), static_cast<off_t>(n)) != 0) {
    return StatusFromErrno(errno, "truncate", path);
  }
  return Status::Ok();
}

TempDir::TempDir(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  const auto base = fs::temp_directory_path();
  // PID + counter keeps concurrently running test binaries apart.
  path_ = (base / (prefix + "-" + std::to_string(::getpid()) + "-" +
                   std::to_string(counter.fetch_add(1))))
              .string();
  fs::create_directories(path_);
}

TempDir::~TempDir() {
  std::error_code ec;
  fs::remove_all(path_, ec);
}

}  // namespace sword
