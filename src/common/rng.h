// Deterministic xoshiro256** RNG. All randomized tests, fuzzers, and workload
// generators use this so results reproduce across runs and machines
// (std::mt19937 distributions are not portable across standard libraries).
#pragma once

#include <cstdint>

namespace sword {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound) via Lemire's rejection-free mapping; bound > 0.
  uint64_t Below(uint64_t bound);

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Chance(double p);

 private:
  uint64_t s_[4];
};

}  // namespace sword
