#include "common/status.h"

namespace sword {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kInvalidArgument:
      return "invalid-argument";
    case ErrorCode::kNotFound:
      return "not-found";
    case ErrorCode::kOutOfRange:
      return "out-of-range";
    case ErrorCode::kCorruptData:
      return "corrupt-data";
    case ErrorCode::kIoError:
      return "io-error";
    case ErrorCode::kOutOfMemory:
      return "out-of-memory";
    case ErrorCode::kUnsupported:
      return "unsupported";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kUnavailable:
      return "unavailable";
    case ErrorCode::kNoSpace:
      return "no-space";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = ErrorCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sword
