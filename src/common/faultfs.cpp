#include "common/faultfs.h"

#include <algorithm>

namespace sword {
namespace testing {

void FaultFile::TransientErrors(uint32_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  transient_left_ = count;
}

void FaultFile::ShortWrites(size_t max_bytes_per_call) {
  std::lock_guard<std::mutex> lock(mu_);
  short_write_max_ = max_bytes_per_call;
}

void FaultFile::EnospcAfterBytes(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_at_ = n;
  fail_code_ = ErrorCode::kNoSpace;
}

void FaultFile::FailAfterBytes(uint64_t n, ErrorCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_at_ = n;
  fail_code_ = code;
}

void FaultFile::FlipBit(uint64_t stream_offset, uint8_t mask) {
  std::lock_guard<std::mutex> lock(mu_);
  flips_.push_back({stream_offset, mask});
}

void FaultFile::TruncateAfterBytes(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  truncate_at_ = n;
}

void FaultFile::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  transient_left_ = 0;
  short_write_max_ = 0;
  fail_at_ = UINT64_MAX;
  fail_code_ = ErrorCode::kNoSpace;
  truncate_at_ = UINT64_MAX;
  flips_.clear();
  bytes_written_ = 0;
  bytes_lost_ = 0;
}

uint64_t FaultFile::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

uint64_t FaultFile::bytes_lost() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_lost_;
}

Status FaultFile::Append(const std::string& path, const uint8_t* data,
                         size_t n, size_t* written) {
  std::lock_guard<std::mutex> lock(mu_);
  *written = 0;

  if (transient_left_ > 0) {
    --transient_left_;
    return Status::Unavailable("injected transient error: " + path);
  }

  size_t allow = n;
  bool fail_after = false;
  if (bytes_written_ + allow > fail_at_) {
    // Write only the prefix that fits below the failure threshold.
    allow = fail_at_ > bytes_written_
                ? static_cast<size_t>(fail_at_ - bytes_written_)
                : 0;
    fail_after = true;
  }
  bool short_after = false;
  if (short_write_max_ > 0 && allow > short_write_max_) {
    allow = short_write_max_;
    short_after = true;
  }

  // Apply bit flips inside the window, then split around the truncation
  // threshold: bytes below it are forwarded, bytes above are swallowed but
  // still reported as written.
  Bytes chunk(data, data + allow);
  for (const BitFlip& f : flips_) {
    if (f.offset >= bytes_written_ && f.offset < bytes_written_ + allow) {
      chunk[static_cast<size_t>(f.offset - bytes_written_)] ^= f.mask;
    }
  }
  size_t forward = chunk.size();
  if (bytes_written_ + forward > truncate_at_) {
    forward = truncate_at_ > bytes_written_
                  ? static_cast<size_t>(truncate_at_ - bytes_written_)
                  : 0;
  }

  if (forward > 0) {
    size_t got = 0;
    Status st = base_->Append(path, chunk.data(), forward, &got);
    *written = got;
    bytes_written_ += got;
    if (!st.ok() || got < forward) return st;
  }
  // Swallowed tail: pretend it was written.
  const size_t swallowed = chunk.size() - forward;
  *written += swallowed;
  bytes_written_ += swallowed;
  bytes_lost_ += swallowed;

  if (fail_after) {
    if (fail_code_ == ErrorCode::kNoSpace) {
      return Status::NoSpace("injected ENOSPC: " + path);
    }
    return Status(fail_code_, "injected failure: " + path);
  }
  if (short_after) return Status::Ok();  // short success; caller continues
  return Status::Ok();
}

Status FaultFile::WriteWhole(const std::string& path, const Bytes& data) {
  // Whole-file writes (meta checkpoints) bypass the byte-stream faults --
  // they model a different file. Only the transient knob applies, so tests
  // can exercise checkpoint failure too.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (transient_left_ > 0) {
      --transient_left_;
      return Status::Unavailable("injected transient error: " + path);
    }
  }
  return base_->WriteWhole(path, data);
}

Status FaultFile::Rename(const std::string& from, const std::string& to) {
  return base_->Rename(from, to);
}

Status FaultFile::Truncate(const std::string& path, uint64_t size) {
  // The cumulative stream position deliberately does NOT rewind: a disk
  // that hit ENOSPC stays full after the roll-back truncation, so retries
  // keep failing at offset zero until the test lifts the threshold.
  return base_->Truncate(path, size);
}

}  // namespace testing
}  // namespace sword
