#include "common/faultfs.h"

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <cstring>

namespace sword {
namespace testing {

void FaultFile::TransientErrors(uint32_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  transient_left_ = count;
}

void FaultFile::ShortWrites(size_t max_bytes_per_call) {
  std::lock_guard<std::mutex> lock(mu_);
  short_write_max_ = max_bytes_per_call;
}

void FaultFile::EnospcAfterBytes(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_at_ = n;
  fail_code_ = ErrorCode::kNoSpace;
}

void FaultFile::EnospcAppends(uint64_t from_call, uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  storm_from_ = from_call;
  storm_count_ = count;
}

void FaultFile::FailAfterBytes(uint64_t n, ErrorCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_at_ = n;
  fail_code_ = code;
}

void FaultFile::FlipBit(uint64_t stream_offset, uint8_t mask) {
  std::lock_guard<std::mutex> lock(mu_);
  flips_.push_back({stream_offset, mask});
}

void FaultFile::TruncateAfterBytes(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  truncate_at_ = n;
}

void FaultFile::SlowAppends(uint32_t usec, uint64_t from_call, uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  slow_usec_ = usec;
  slow_from_ = from_call;
  slow_count_ = count;
}

void FaultFile::SyncTransientErrors(uint32_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  sync_transient_left_ = count;
}

void FaultFile::RaiseAtAppend(int signo, uint64_t nth_call) {
  std::lock_guard<std::mutex> lock(mu_);
  raise_signo_ = signo;
  raise_at_call_ = nth_call;
}

void FaultFile::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  transient_left_ = 0;
  short_write_max_ = 0;
  fail_at_ = UINT64_MAX;
  fail_code_ = ErrorCode::kNoSpace;
  storm_from_ = 0;
  storm_count_ = 0;
  truncate_at_ = UINT64_MAX;
  slow_usec_ = 0;
  slow_from_ = 0;
  slow_count_ = 0;
  sync_transient_left_ = 0;
  raise_signo_ = 0;
  raise_at_call_ = 0;
  flips_.clear();
  bytes_written_ = 0;
  bytes_lost_ = 0;
  append_calls_ = 0;
  sync_calls_ = 0;
}

uint64_t FaultFile::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

uint64_t FaultFile::bytes_lost() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_lost_;
}

uint64_t FaultFile::append_calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return append_calls_;
}

uint64_t FaultFile::sync_calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sync_calls_;
}

Status FaultFile::Append(const std::string& path, const uint8_t* data,
                         size_t n, size_t* written) {
  uint32_t sleep_usec = 0;
  int raise_signo = 0;
  {
    // Decide call-numbered faults under the lock, act on them outside it: a
    // raised signal can run a handler (crash drain, sealer) that re-enters
    // this backend, and sleeping here would serialize unrelated lanes.
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t call = ++append_calls_;
    if (slow_count_ > 0 && call >= slow_from_ && call < slow_from_ + slow_count_) {
      sleep_usec = slow_usec_;
    }
    if (raise_signo_ != 0 && call == raise_at_call_) {
      raise_signo = raise_signo_;
      raise_signo_ = 0;
    }
  }
  if (sleep_usec > 0) ::usleep(sleep_usec);
  if (raise_signo != 0) ::raise(raise_signo);

  std::lock_guard<std::mutex> lock(mu_);
  *written = 0;

  if (transient_left_ > 0) {
    --transient_left_;
    return Status::Unavailable("injected transient error: " + path);
  }
  if (storm_count_ > 0 && append_calls_ >= storm_from_ &&
      append_calls_ < storm_from_ + storm_count_) {
    return Status::NoSpace("injected ENOSPC storm: " + path);
  }

  size_t allow = n;
  bool fail_after = false;
  if (bytes_written_ + allow > fail_at_) {
    // Write only the prefix that fits below the failure threshold.
    allow = fail_at_ > bytes_written_
                ? static_cast<size_t>(fail_at_ - bytes_written_)
                : 0;
    fail_after = true;
  }
  bool short_after = false;
  if (short_write_max_ > 0 && allow > short_write_max_) {
    allow = short_write_max_;
    short_after = true;
  }

  // Apply bit flips inside the window, then split around the truncation
  // threshold: bytes below it are forwarded, bytes above are swallowed but
  // still reported as written.
  Bytes chunk(data, data + allow);
  for (const BitFlip& f : flips_) {
    if (f.offset >= bytes_written_ && f.offset < bytes_written_ + allow) {
      chunk[static_cast<size_t>(f.offset - bytes_written_)] ^= f.mask;
    }
  }
  size_t forward = chunk.size();
  if (bytes_written_ + forward > truncate_at_) {
    forward = truncate_at_ > bytes_written_
                  ? static_cast<size_t>(truncate_at_ - bytes_written_)
                  : 0;
  }

  if (forward > 0) {
    size_t got = 0;
    Status st = base_->Append(path, chunk.data(), forward, &got);
    *written = got;
    bytes_written_ += got;
    if (!st.ok() || got < forward) return st;
  }
  // Swallowed tail: pretend it was written.
  const size_t swallowed = chunk.size() - forward;
  *written += swallowed;
  bytes_written_ += swallowed;
  bytes_lost_ += swallowed;

  if (fail_after) {
    if (fail_code_ == ErrorCode::kNoSpace) {
      return Status::NoSpace("injected ENOSPC: " + path);
    }
    return Status(fail_code_, "injected failure: " + path);
  }
  if (short_after) return Status::Ok();  // short success; caller continues
  return Status::Ok();
}

Status FaultFile::WriteWhole(const std::string& path, const Bytes& data) {
  // Whole-file writes (meta checkpoints) bypass the byte-stream faults --
  // they model a different file. Only the transient knob applies, so tests
  // can exercise checkpoint failure too.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (transient_left_ > 0) {
      --transient_left_;
      return Status::Unavailable("injected transient error: " + path);
    }
  }
  return base_->WriteWhole(path, data);
}

Status FaultFile::Rename(const std::string& from, const std::string& to) {
  return base_->Rename(from, to);
}

Status FaultFile::Truncate(const std::string& path, uint64_t size) {
  // The cumulative stream position deliberately does NOT rewind: a disk
  // that hit ENOSPC stays full after the roll-back truncation, so retries
  // keep failing at offset zero until the test lifts the threshold.
  return base_->Truncate(path, size);
}

Status FaultFile::Sync(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++sync_calls_;
    if (sync_transient_left_ > 0) {
      --sync_transient_left_;
      return Status::Unavailable("injected fsync EINTR: " + path);
    }
  }
  return base_->Sync(path);
}

// ------------------------------------------------------------------ FaultPlan

void FaultPlan::ApplyTo(FaultFile& file) const {
  if (transient) file.TransientErrors(transient);
  if (sync_transient) file.SyncTransientErrors(sync_transient);
  if (short_writes) file.ShortWrites(short_writes);
  if (enospc_after_bytes != UINT64_MAX) file.EnospcAfterBytes(enospc_after_bytes);
  if (io_fail_after_bytes != UINT64_MAX) {
    file.FailAfterBytes(io_fail_after_bytes, ErrorCode::kIoError);
  }
  if (storm_count) file.EnospcAppends(storm_from, storm_count);
  if (truncate_after_bytes != UINT64_MAX) {
    file.TruncateAfterBytes(truncate_after_bytes);
  }
  if (flip_offset != UINT64_MAX) file.FlipBit(flip_offset, flip_mask);
  if (slow_count) file.SlowAppends(slow_usec, slow_from, slow_count);
  if (raise_signo) file.RaiseAtAppend(raise_signo, raise_at_call);
}

namespace {

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

/// "F+C" window → (from, count); a bare "F" means count = 1.
bool ParseWindow(const std::string& s, uint64_t* from, uint64_t* count) {
  const size_t plus = s.find('+');
  if (plus == std::string::npos) {
    if (!ParseU64(s, from)) return false;
    *count = 1;
    return true;
  }
  return ParseU64(s.substr(0, plus), from) &&
         ParseU64(s.substr(plus + 1), count);
}

int SignalFromName(const std::string& name) {
  if (name == "segv") return SIGSEGV;
  if (name == "bus") return SIGBUS;
  if (name == "abrt") return SIGABRT;
  if (name == "fpe") return SIGFPE;
  if (name == "ill") return SIGILL;
  if (name == "term") return SIGTERM;
  if (name == "int") return SIGINT;
  return 0;
}

uint64_t Splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Expands `seed=N` into a deterministic fault mix. The same N always makes
/// the same plan, so a CI failure replays from the plan string alone.
void ExpandSeed(uint64_t seed, FaultPlan* plan) {
  uint64_t s = seed * 0x2545f4914f6cdd1dull + 0x9e3779b97f4a7c15ull;
  const uint64_t kinds = Splitmix64(s) % 3 + 1;  // 1..3 faults per seed
  for (uint64_t i = 0; i < kinds; ++i) {
    switch (Splitmix64(s) % 6) {
      case 0:
        plan->transient = 1 + Splitmix64(s) % 4;
        break;
      case 1:
        plan->short_writes = 64 << (Splitmix64(s) % 5);
        break;
      case 2:
        plan->enospc_after_bytes = 1024 + Splitmix64(s) % (64 * 1024);
        break;
      case 3:
        plan->storm_from = 2 + Splitmix64(s) % 8;
        plan->storm_count = 2 + Splitmix64(s) % 8;
        break;
      case 4:
        plan->slow_usec = 500 + Splitmix64(s) % 2000;
        plan->slow_from = 1 + Splitmix64(s) % 4;
        plan->slow_count = 4 + Splitmix64(s) % 8;
        break;
      case 5:
        plan->sync_transient = 1 + Splitmix64(s) % 3;
        break;
    }
  }
}

}  // namespace

Result<FaultPlan> ParseFaultPlan(const std::string& spec) {
  FaultPlan plan;
  plan.spec = spec;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find_first_of(";,", pos);
    if (end == std::string::npos) end = spec.size();
    const std::string op = spec.substr(pos, end - pos);
    pos = end + 1;
    if (op.empty()) continue;

    const size_t eq = op.find('=');
    const size_t at = op.find('@');
    const std::string name = op.substr(0, std::min(eq, at));
    const auto bad = [&op]() {
      return Status::Invalid("bad fault-plan op: " + op);
    };

    if (name == "transient") {
      uint64_t v;
      if (eq == std::string::npos || !ParseU64(op.substr(eq + 1), &v)) return bad();
      plan.transient = static_cast<uint32_t>(v);
    } else if (name == "sync_fail") {
      uint64_t v;
      if (eq == std::string::npos || !ParseU64(op.substr(eq + 1), &v)) return bad();
      plan.sync_transient = static_cast<uint32_t>(v);
    } else if (name == "short") {
      uint64_t v;
      if (eq == std::string::npos || !ParseU64(op.substr(eq + 1), &v)) return bad();
      plan.short_writes = static_cast<size_t>(v);
    } else if (name == "enospc") {
      if (at == std::string::npos || !ParseU64(op.substr(at + 1), &plan.enospc_after_bytes)) {
        return bad();
      }
    } else if (name == "io") {
      if (at == std::string::npos || !ParseU64(op.substr(at + 1), &plan.io_fail_after_bytes)) {
        return bad();
      }
    } else if (name == "enospc_calls") {
      if (at == std::string::npos ||
          !ParseWindow(op.substr(at + 1), &plan.storm_from, &plan.storm_count)) {
        return bad();
      }
    } else if (name == "trunc") {
      if (at == std::string::npos || !ParseU64(op.substr(at + 1), &plan.truncate_after_bytes)) {
        return bad();
      }
    } else if (name == "flip") {
      // flip=OFFSET:MASK (mask decimal; 0 < mask < 256)
      if (eq == std::string::npos) return bad();
      const std::string rest = op.substr(eq + 1);
      const size_t colon = rest.find(':');
      uint64_t off, mask;
      if (colon == std::string::npos || !ParseU64(rest.substr(0, colon), &off) ||
          !ParseU64(rest.substr(colon + 1), &mask) || mask == 0 || mask > 255) {
        return bad();
      }
      plan.flip_offset = off;
      plan.flip_mask = static_cast<uint8_t>(mask);
    } else if (name == "slow") {
      // slow=USEC@FROM+COUNT
      if (eq == std::string::npos || at == std::string::npos || at < eq) return bad();
      uint64_t usec;
      if (!ParseU64(op.substr(eq + 1, at - eq - 1), &usec) ||
          !ParseWindow(op.substr(at + 1), &plan.slow_from, &plan.slow_count)) {
        return bad();
      }
      plan.slow_usec = static_cast<uint32_t>(usec);
    } else if (name == "raise") {
      // raise=SIG@NTH
      if (eq == std::string::npos || at == std::string::npos || at < eq) return bad();
      const int signo = SignalFromName(op.substr(eq + 1, at - eq - 1));
      if (signo == 0 || !ParseU64(op.substr(at + 1), &plan.raise_at_call)) return bad();
      plan.raise_signo = signo;
    } else if (name == "alloc_fail") {
      if (at == std::string::npos ||
          !ParseWindow(op.substr(at + 1), &plan.alloc_fail_from,
                       &plan.alloc_fail_count)) {
        return bad();
      }
    } else if (name == "read_transient") {
      uint64_t v;
      if (eq == std::string::npos || !ParseU64(op.substr(eq + 1), &v)) return bad();
      plan.read_transient = static_cast<uint32_t>(v);
    } else if (name == "read_fail") {
      // read_fail@FROM+COUNT (ingest read calls, 1-based)
      if (at == std::string::npos ||
          !ParseWindow(op.substr(at + 1), &plan.read_fail_from,
                       &plan.read_fail_count)) {
        return bad();
      }
    } else if (name == "read_slow") {
      // read_slow=USEC@FROM+COUNT
      if (eq == std::string::npos || at == std::string::npos || at < eq) return bad();
      uint64_t usec;
      if (!ParseU64(op.substr(eq + 1, at - eq - 1), &usec) ||
          !ParseWindow(op.substr(at + 1), &plan.read_slow_from,
                       &plan.read_slow_count)) {
        return bad();
      }
      plan.read_slow_usec = static_cast<uint32_t>(usec);
    } else if (name == "seed") {
      uint64_t v;
      if (eq == std::string::npos || !ParseU64(op.substr(eq + 1), &v)) return bad();
      ExpandSeed(v, &plan);
    } else {
      return bad();
    }
  }
  return plan;
}

}  // namespace testing
}  // namespace sword
