// Race report record shared by the online HB baseline (src/hb) and the SWORD
// offline analyzer (src/offline).
//
// Reports are deduplicated by unordered source-location pair: the same code
// pair racing on many addresses (every element of an array) is one report,
// which is how the paper counts races in Tables II and IV.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace sword {

/// How solid the evidence behind a report is. kProven: the solver exhibited
/// a concrete shared address. kUnproven: the solver's step budget ran out
/// before the overlap query was decided, so the pair MAY race - reported
/// conservatively (sound: a potential race is surfaced, never silently
/// dropped) and tagged so consumers can triage it separately.
enum class RaceConfidence : uint8_t { kProven = 0, kUnproven = 1 };

struct RaceReport {
  uint32_t pc1 = 0;        // interned source location of the first access
  uint32_t pc2 = 0;        // ... and the conflicting one
  uint64_t address = 0;    // a witness address they share
  uint8_t size1 = 0;
  uint8_t size2 = 0;
  bool write1 = false;
  bool write2 = false;
  RaceConfidence confidence = RaceConfidence::kProven;

  /// Order-insensitive dedup key over the code pair.
  uint64_t Key() const {
    const uint32_t a = std::min(pc1, pc2);
    const uint32_t b = std::max(pc1, pc2);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  /// Renders via a pc -> "file:line" resolver.
  std::string ToString(const std::function<std::string(uint32_t)>& pc_name) const {
    std::string out = "data race: ";
    out += write1 ? "write" : "read";
    out += " of " + std::to_string(int(size1)) + " bytes at " + pc_name(pc1);
    out += " vs ";
    out += write2 ? "write" : "read";
    out += " of " + std::to_string(int(size2)) + " bytes at " + pc_name(pc2);
    out += " (addr 0x";
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%llx", static_cast<unsigned long long>(address));
    out += buf;
    out += ")";
    if (confidence == RaceConfidence::kUnproven) {
      out += " [unproven: solver budget exhausted]";
    }
    return out;
  }
};

/// Dedup accumulator: keeps the first report for each code pair. A proven
/// report upgrades an earlier unproven one for the same pair in place (same
/// position in the report list), so a pair first seen as a solver bail-out
/// and later decided exactly ends up with the concrete witness.
class RaceReportSet {
 public:
  enum class AddOutcome : uint8_t { kNew, kUpgraded, kDuplicate };

  AddOutcome AddReport(const RaceReport& report) {
    const auto [it, inserted] = keys_.try_emplace(report.Key(), reports_.size());
    if (inserted) {
      reports_.push_back(report);
      return AddOutcome::kNew;
    }
    RaceReport& existing = reports_[it->second];
    if (existing.confidence == RaceConfidence::kUnproven &&
        report.confidence == RaceConfidence::kProven) {
      existing = report;
      return AddOutcome::kUpgraded;
    }
    return AddOutcome::kDuplicate;
  }

  /// Returns true if this is a new code pair.
  bool Add(const RaceReport& report) {
    return AddReport(report) == AddOutcome::kNew;
  }

  const std::vector<RaceReport>& reports() const { return reports_; }
  size_t size() const { return reports_.size(); }
  size_t unproven_count() const {
    size_t n = 0;
    for (const RaceReport& r : reports_) {
      if (r.confidence == RaceConfidence::kUnproven) n++;
    }
    return n;
  }
  bool Contains(uint32_t pc1, uint32_t pc2) const {
    RaceReport probe;
    probe.pc1 = pc1;
    probe.pc2 = pc2;
    return keys_.count(probe.Key()) > 0;
  }

  void Clear() {
    keys_.clear();
    reports_.clear();
  }

 private:
  std::map<uint64_t, size_t> keys_;  // dedup key -> index into reports_
  std::vector<RaceReport> reports_;
};

}  // namespace sword
