// Race report record shared by the online HB baseline (src/hb) and the SWORD
// offline analyzer (src/offline).
//
// Reports are deduplicated by unordered source-location pair: the same code
// pair racing on many addresses (every element of an array) is one report,
// which is how the paper counts races in Tables II and IV.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

namespace sword {

struct RaceReport {
  uint32_t pc1 = 0;        // interned source location of the first access
  uint32_t pc2 = 0;        // ... and the conflicting one
  uint64_t address = 0;    // a witness address they share
  uint8_t size1 = 0;
  uint8_t size2 = 0;
  bool write1 = false;
  bool write2 = false;

  /// Order-insensitive dedup key over the code pair.
  uint64_t Key() const {
    const uint32_t a = std::min(pc1, pc2);
    const uint32_t b = std::max(pc1, pc2);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  /// Renders via a pc -> "file:line" resolver.
  std::string ToString(const std::function<std::string(uint32_t)>& pc_name) const {
    std::string out = "data race: ";
    out += write1 ? "write" : "read";
    out += " of " + std::to_string(int(size1)) + " bytes at " + pc_name(pc1);
    out += " vs ";
    out += write2 ? "write" : "read";
    out += " of " + std::to_string(int(size2)) + " bytes at " + pc_name(pc2);
    out += " (addr 0x";
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%llx", static_cast<unsigned long long>(address));
    out += buf;
    out += ")";
    return out;
  }
};

/// Dedup accumulator: keeps the first report for each code pair.
class RaceReportSet {
 public:
  /// Returns true if this is a new code pair.
  bool Add(const RaceReport& report) {
    if (!keys_.insert(report.Key()).second) return false;
    reports_.push_back(report);
    return true;
  }

  const std::vector<RaceReport>& reports() const { return reports_; }
  size_t size() const { return reports_.size(); }
  bool Contains(uint32_t pc1, uint32_t pc2) const {
    RaceReport probe;
    probe.pc1 = pc1;
    probe.pc2 = pc2;
    return keys_.count(probe.Key()) > 0;
  }

  void Clear() {
    keys_.clear();
    reports_.clear();
  }

 private:
  std::set<uint64_t> keys_;
  std::vector<RaceReport> reports_;
};

}  // namespace sword
