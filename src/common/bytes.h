// Byte-buffer reader/writer with fixed-width little-endian and LEB128 varint
// codecs. The trace log format (src/trace) and the compressed block framing
// (src/compress) are built on these primitives.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace sword {

using Bytes = std::vector<uint8_t>;

/// Appends fixed-width and varint-encoded values to a growable byte buffer.
/// All fixed-width encodings are little-endian regardless of host order.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(Bytes* out) : external_(out) {}

  void PutU8(uint8_t v) { Push(&v, 1); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// Unsigned LEB128.
  void PutVarU64(uint64_t v);
  /// Signed value via zigzag + LEB128.
  void PutVarI64(int64_t v);
  /// Length-prefixed (varint) byte string.
  void PutBytes(const uint8_t* data, size_t n);
  void PutString(const std::string& s);
  /// Raw bytes, no length prefix.
  void PutRaw(const void* data, size_t n) { Push(data, n); }

  const Bytes& buffer() const { return external_ ? *external_ : owned_; }
  Bytes& buffer() { return external_ ? *external_ : owned_; }
  size_t size() const { return buffer().size(); }
  void Clear() { buffer().clear(); }

 private:
  void Push(const void* data, size_t n) {
    Bytes& b = buffer();
    const uint8_t* p = static_cast<const uint8_t*>(data);
    b.insert(b.end(), p, p + n);
  }

  Bytes owned_;
  Bytes* external_ = nullptr;
};

/// Reads the encodings produced by ByteWriter. All getters are bounds-checked
/// and return kCorruptData / kOutOfRange on truncated input.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t n) : data_(data), size_(n) {}
  explicit ByteReader(const Bytes& b) : data_(b.data()), size_(b.size()) {}

  Status GetU8(uint8_t* v);
  Status GetU16(uint16_t* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetVarU64(uint64_t* v);
  Status GetVarI64(int64_t* v);
  Status GetBytes(Bytes* out);
  Status GetString(std::string* out);
  Status Skip(size_t n);

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == size_; }
  const uint8_t* cursor() const { return data_ + pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// FNV-1a 64-bit hash; used as the block checksum in the compressed framing
/// and for report deduplication keys.
uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed = 0xcbf29ce484222325ULL);

}  // namespace sword
