// Minimal leveled logger. Quiet by default (warnings+) so test and bench
// output stays readable; set SWORD_LOG=debug|info|warn|error or call
// SetLogLevel to change.
#pragma once

#include <sstream>
#include <string>

namespace sword {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Initializes the level from the SWORD_LOG environment variable once.
void InitLogFromEnv();

namespace detail {
void Emit(LogLevel level, const char* file, int line, const std::string& msg);

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { Emit(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace sword

#define SWORD_LOG(level)                                             \
  if (static_cast<int>(level) < static_cast<int>(::sword::GetLogLevel())) {} else \
    ::sword::detail::LogLine(level, __FILE__, __LINE__)

#define SWORD_DEBUG() SWORD_LOG(::sword::LogLevel::kDebug)
#define SWORD_INFO() SWORD_LOG(::sword::LogLevel::kInfo)
#define SWORD_WARN() SWORD_LOG(::sword::LogLevel::kWarn)
#define SWORD_ERROR() SWORD_LOG(::sword::LogLevel::kError)
