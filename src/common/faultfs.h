// Deterministic fault-injecting FileBackend for tests.
//
// FaultFile wraps another backend (the real filesystem by default) and
// injects failures keyed on the cumulative number of bytes appended through
// it — not on wall-clock time — so every fault test is exactly reproducible.
// Supported faults:
//   - TransientErrors(k): next k Append calls fail with kUnavailable before
//     writing anything (EINTR/EAGAIN simulation; exercises retry).
//   - ShortWrites(max): each Append call writes at most `max` bytes,
//     reporting the short count (exercises continue-from-prefix logic).
//   - EnospcAfterBytes(n): appends succeed until the cumulative stream
//     offset reaches n, then fail with kNoSpace after writing the prefix
//     that still fits (exercises drop-with-accounting).
//   - FailAfterBytes(n, code): like EnospcAfterBytes but with an arbitrary
//     error code, and the failing call writes nothing past offset n.
//   - FlipBit(offset, mask): XORs `mask` into the byte at stream offset
//     `offset` as it passes through (silent corruption).
//   - TruncateAfterBytes(n): bytes past stream offset n are reported as
//     written but never reach the file (crash-style torn tail: the process
//     believed the write happened).
// All knobs compose; Reset() clears them and the byte counter.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/fsutil.h"

namespace sword {
namespace testing {

class FaultFile final : public FileBackend {
 public:
  explicit FaultFile(FileBackend* base = nullptr)
      : base_(base ? base : &RealFileBackend()) {}

  // --- knobs (call before the writes they should affect) ---
  void TransientErrors(uint32_t count);
  void ShortWrites(size_t max_bytes_per_call);
  void EnospcAfterBytes(uint64_t n);
  void FailAfterBytes(uint64_t n, ErrorCode code);
  void FlipBit(uint64_t stream_offset, uint8_t mask);
  void TruncateAfterBytes(uint64_t n);
  void Reset();

  /// Cumulative bytes the caller believes were appended (includes bytes
  /// swallowed by TruncateAfterBytes).
  uint64_t bytes_written() const;
  /// Bytes silently dropped by TruncateAfterBytes.
  uint64_t bytes_lost() const;

  // --- FileBackend ---
  Status Append(const std::string& path, const uint8_t* data, size_t n,
                size_t* written) override;
  Status WriteWhole(const std::string& path, const Bytes& data) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Truncate(const std::string& path, uint64_t size) override;

 private:
  struct BitFlip {
    uint64_t offset;
    uint8_t mask;
  };

  FileBackend* base_;
  mutable std::mutex mu_;
  uint32_t transient_left_ = 0;
  size_t short_write_max_ = 0;       // 0 = off
  uint64_t fail_at_ = UINT64_MAX;    // cumulative-offset threshold
  ErrorCode fail_code_ = ErrorCode::kNoSpace;
  uint64_t truncate_at_ = UINT64_MAX;
  std::vector<BitFlip> flips_;
  uint64_t bytes_written_ = 0;
  uint64_t bytes_lost_ = 0;
};

}  // namespace testing
}  // namespace sword
