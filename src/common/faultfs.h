// Deterministic fault-injecting FileBackend for tests.
//
// FaultFile wraps another backend (the real filesystem by default) and
// injects failures keyed on the cumulative number of bytes appended through
// it — not on wall-clock time — so every fault test is exactly reproducible.
// Supported faults:
//   - TransientErrors(k): next k Append calls fail with kUnavailable before
//     writing anything (EINTR/EAGAIN simulation; exercises retry).
//   - ShortWrites(max): each Append call writes at most `max` bytes,
//     reporting the short count (exercises continue-from-prefix logic).
//   - EnospcAfterBytes(n): appends succeed until the cumulative stream
//     offset reaches n, then fail with kNoSpace after writing the prefix
//     that still fits (exercises drop-with-accounting).
//   - EnospcAppends(from, count): an ENOSPC *storm*: append CALLS numbered
//     [from, from+count) (1-based) fail with kNoSpace writing nothing, then
//     the disk "clears" and later appends succeed — the shape that drives
//     the degradation governor down and back up.
//   - FailAfterBytes(n, code): like EnospcAfterBytes but with an arbitrary
//     error code, and the failing call writes nothing past offset n.
//   - FlipBit(offset, mask): XORs `mask` into the byte at stream offset
//     `offset` as it passes through (silent corruption).
//   - TruncateAfterBytes(n): bytes past stream offset n are reported as
//     written but never reach the file (crash-style torn tail: the process
//     believed the write happened).
//   - SlowAppends(usec, from, count): append calls [from, from+count) sleep
//     `usec` before touching the base backend (slow/hung device; drives the
//     flusher's latency EWMA and the enqueue watchdog).
//   - SyncTransientErrors(k): next k Sync calls fail with kUnavailable
//     (EINTR on fsync; exercises the unified retry helper).
//   - RaiseAtAppend(signo, nth): delivers `signo` to the calling thread at
//     the start of the nth append (1-based) — crash exactly at a chosen I/O
//     point, for the fatal-signal sealing tests.
// All knobs compose; Reset() clears them and the byte counter.
//
// FaultPlan packages a set of knobs as a replayable one-line spec (the
// `--fault-plan` flag): semicolon/comma-separated ops, e.g.
//   "transient=3;short=512;enospc@8192"
//   "slow=2000@4+16;enospc_calls@6+10"
//   "raise=segv@5"    "seed=42"
// `seed=N` expands deterministically into a pseudo-random combination of the
// other ops, so a CI sweep can explore plans while any failure replays from
// the plan string alone.
//
// Read-side ops — `read_transient=K`, `read_fail@FROM+COUNT`,
// `read_slow=USEC@FROM+COUNT` — ride in the same plan string but are applied
// by the serve daemon's ingest layer (serve/ingest.h), since FaultFile
// models the write path only.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/fsutil.h"

namespace sword {
namespace testing {

class FaultFile final : public FileBackend {
 public:
  explicit FaultFile(FileBackend* base = nullptr)
      : base_(base ? base : &RealFileBackend()) {}

  // --- knobs (call before the writes they should affect) ---
  void TransientErrors(uint32_t count);
  void ShortWrites(size_t max_bytes_per_call);
  void EnospcAfterBytes(uint64_t n);
  void EnospcAppends(uint64_t from_call, uint64_t count);
  void FailAfterBytes(uint64_t n, ErrorCode code);
  void FlipBit(uint64_t stream_offset, uint8_t mask);
  void TruncateAfterBytes(uint64_t n);
  void SlowAppends(uint32_t usec, uint64_t from_call, uint64_t count);
  void SyncTransientErrors(uint32_t count);
  void RaiseAtAppend(int signo, uint64_t nth_call);
  void Reset();

  /// Cumulative bytes the caller believes were appended (includes bytes
  /// swallowed by TruncateAfterBytes).
  uint64_t bytes_written() const;
  /// Bytes silently dropped by TruncateAfterBytes.
  uint64_t bytes_lost() const;
  /// Append calls observed (successful or not).
  uint64_t append_calls() const;
  /// Sync calls observed (successful or not).
  uint64_t sync_calls() const;

  // --- FileBackend ---
  Status Append(const std::string& path, const uint8_t* data, size_t n,
                size_t* written) override;
  Status WriteWhole(const std::string& path, const Bytes& data) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status Sync(const std::string& path) override;

 private:
  struct BitFlip {
    uint64_t offset;
    uint8_t mask;
  };

  FileBackend* base_;
  mutable std::mutex mu_;
  uint32_t transient_left_ = 0;
  size_t short_write_max_ = 0;       // 0 = off
  uint64_t fail_at_ = UINT64_MAX;    // cumulative-offset threshold
  ErrorCode fail_code_ = ErrorCode::kNoSpace;
  uint64_t storm_from_ = 0;          // ENOSPC storm window (append calls)
  uint64_t storm_count_ = 0;
  uint64_t truncate_at_ = UINT64_MAX;
  uint32_t slow_usec_ = 0;           // slow-append window (append calls)
  uint64_t slow_from_ = 0;
  uint64_t slow_count_ = 0;
  uint32_t sync_transient_left_ = 0;
  int raise_signo_ = 0;              // signal at the nth append call
  uint64_t raise_at_call_ = 0;
  std::vector<BitFlip> flips_;
  uint64_t bytes_written_ = 0;
  uint64_t bytes_lost_ = 0;
  uint64_t append_calls_ = 0;
  uint64_t sync_calls_ = 0;
};

/// A parsed `--fault-plan`. Backend faults apply to a FaultFile; the pool
/// fault applies to the flusher's BufferPool (allocation failure at the Nth
/// acquire) — both deterministic, so any plan replays exactly.
struct FaultPlan {
  std::string spec;  // the original string (the replay artifact)

  uint32_t transient = 0;
  uint32_t sync_transient = 0;
  size_t short_writes = 0;
  uint64_t enospc_after_bytes = UINT64_MAX;
  uint64_t io_fail_after_bytes = UINT64_MAX;
  uint64_t storm_from = 0, storm_count = 0;
  uint64_t truncate_after_bytes = UINT64_MAX;
  uint64_t flip_offset = UINT64_MAX;
  uint8_t flip_mask = 0;
  uint32_t slow_usec = 0;
  uint64_t slow_from = 0, slow_count = 0;
  int raise_signo = 0;
  uint64_t raise_at_call = 0;
  /// Pool acquire calls [from, from+count) (1-based) fail (empty buffer).
  uint64_t alloc_fail_from = 0, alloc_fail_count = 0;

  // --- Read-side faults (applied by the serve daemon's ingest layer, not
  // by FaultFile, which models the WRITE path). Call numbering counts
  // whole-file ingest reads, 1-based, like the append-call windows above.
  /// Next `read_transient` read calls fail with kUnavailable (retryable).
  uint32_t read_transient = 0;
  /// Read calls [from, from+count) fail hard with kIoError.
  uint64_t read_fail_from = 0, read_fail_count = 0;
  /// Read calls [from, from+count) sleep `read_slow_usec` first.
  uint32_t read_slow_usec = 0;
  uint64_t read_slow_from = 0, read_slow_count = 0;

  /// Applies every backend-level fault to `file`.
  void ApplyTo(FaultFile& file) const;

  bool empty() const { return spec.empty(); }
};

/// Parses a fault-plan spec (see the header comment for the grammar).
/// `seed=N` ops expand into a deterministic combination derived from N.
Result<FaultPlan> ParseFaultPlan(const std::string& spec);

}  // namespace testing
}  // namespace sword
