#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace sword {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_emit_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void InitLogFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("SWORD_LOG");
    if (!env) return;
    if (!std::strcmp(env, "debug")) SetLogLevel(LogLevel::kDebug);
    else if (!std::strcmp(env, "info")) SetLogLevel(LogLevel::kInfo);
    else if (!std::strcmp(env, "warn")) SetLogLevel(LogLevel::kWarn);
    else if (!std::strcmp(env, "error")) SetLogLevel(LogLevel::kError);
    else if (!std::strcmp(env, "off")) SetLogLevel(LogLevel::kOff);
  });
}

namespace detail {

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file), line,
               msg.c_str());
}

}  // namespace detail
}  // namespace sword
