#include "common/args.h"

#include <cstdlib>

namespace sword {

ArgParser::ArgParser(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(std::move(token));
      continue;
    }
    token = token.substr(2);
    const size_t eq = token.find('=');
    if (eq != std::string::npos) {
      flags_[token.substr(0, eq)] = token.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[token] = argv[++i];
    } else {
      flags_[token] = "";
    }
  }
}

std::string ArgParser::GetString(const std::string& flag,
                                 const std::string& def) const {
  queried_[flag] = true;
  auto it = flags_.find(flag);
  return it == flags_.end() ? def : it->second;
}

int64_t ArgParser::GetInt(const std::string& flag, int64_t def) const {
  queried_[flag] = true;
  auto it = flags_.find(flag);
  if (it == flags_.end() || it->second.empty()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

bool ArgParser::GetBool(const std::string& flag, bool def) const {
  queried_[flag] = true;
  auto it = flags_.find(flag);
  if (it == flags_.end()) return def;
  return it->second.empty() || it->second == "true" || it->second == "1";
}

std::vector<std::string> ArgParser::UnknownFlags() const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (!queried_.count(name)) unknown.push_back("--" + name);
  }
  return unknown;
}

}  // namespace sword
