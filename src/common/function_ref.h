// Non-owning callable reference.
//
// FunctionRef<R(Args...)> is a two-word (object pointer + trampoline) view of
// any callable. Unlike std::function it never allocates and never copies the
// target, which makes it suitable for per-event / per-pair hot loops such as
// offline::CheckTreePair and trace::LogReader::StreamRange where a capturing
// lambda is invoked millions of times: the callee receives the caller's
// lambda by reference at zero setup cost.
//
// Lifetime rule: a FunctionRef must not outlive the callable it was built
// from. It is safe as a function PARAMETER (the temporary lambda lives for
// the full call) and unsafe as a stored member.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace sword {

template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        fn_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return fn_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*fn_)(void*, Args...);
};

}  // namespace sword
