// Byte-exact memory accounting.
//
// The paper's evaluation contrasts ARCHER's baseline-proportional 5-7x memory
// overhead against SWORD's bounded ~3.3 MB/thread, and shows ARCHER OOM-ing
// on AMG2013 at large problem sizes. RSS measurements would be noisy and
// machine-dependent, so instead every subsystem charges its allocations to a
// named MemoryScope; the harness reads exact byte counters. The HB baseline
// additionally enforces a cap to emulate the node's memory limit: exceeding
// the cap makes the analysis fail with kOutOfMemory, reproducing Table IV's
// OOM entries deterministically.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace sword {

/// Tracks current and peak bytes charged to one subsystem. Thread-safe.
class MemoryScope {
 public:
  explicit MemoryScope(std::string name, uint64_t cap_bytes = 0)
      : name_(std::move(name)), cap_(cap_bytes) {}

  /// Charge n bytes. Returns kOutOfMemory (without charging) if a cap is set
  /// and would be exceeded.
  Status Charge(uint64_t n);

  /// Release n bytes (clamped at zero).
  void Release(uint64_t n);

  void SetCap(uint64_t cap_bytes) { cap_ = cap_bytes; }
  uint64_t cap() const { return cap_; }

  uint64_t current() const { return current_.load(std::memory_order_relaxed); }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

  void ResetPeak() { peak_.store(current(), std::memory_order_relaxed); }
  void ResetAll() {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::atomic<uint64_t> current_{0};
  std::atomic<uint64_t> peak_{0};
  uint64_t cap_;  // 0 = unlimited
};

/// RAII charge; releases on destruction. Check ok() after construction when
/// the scope has a cap.
class ScopedCharge {
 public:
  ScopedCharge(MemoryScope& scope, uint64_t n) : scope_(scope), n_(n) {
    status_ = scope_.Charge(n_);
    if (!status_.ok()) n_ = 0;
  }
  ~ScopedCharge() {
    if (n_) scope_.Release(n_);
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

 private:
  MemoryScope& scope_;
  uint64_t n_;
  Status status_;
};

}  // namespace sword
