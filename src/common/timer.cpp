#include "common/timer.h"

#include <cstdio>

namespace sword {

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  }
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1ULL << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / (1ULL << 30));
  } else if (bytes >= (1ULL << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / (1ULL << 20));
  } else if (bytes >= (1ULL << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", b / (1ULL << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace sword
