// Tree-vs-tree race checking (paper SIII-B, Fig. 5).
//
// Given the interval summaries of two CONCURRENT barrier intervals, every
// node of one side is checked against the range-overlapping nodes of the
// other:
//   1. cheap filters: read-read pairs and atomic-atomic pairs cannot race;
//      intersecting mutex sets mean common lock protection;
//   2. exact strided-address intersection - range overlap alone is NOT
//      sufficient for strided accesses (Fig. 4) - via the closed-form fast
//      paths (when enabled) with the ILP/Diophantine engine as fallback;
//   3. surviving pairs are data races, reported at the two source locations.
//
// Two enumeration back ends produce the identical candidate-pair set:
//   - CheckTreePair: the legacy path, per-node QueryRange on the pointer
//     red-black tree (kept as the A/B baseline, reachable via --no-sweep);
//   - CheckFrozenPair: the default path, a sort-merge sweep over two frozen
//     flat sets (O(M + M' + matches), sequential memory), switching to
//     galloping per-node queries when one set is much smaller.
// Both buffer each pair's reports and emit them in one canonical order with
// exact duplicates suppressed, so the confirmed-race output is byte-for-byte
// independent of which back end enumerated the pairs.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/function_ref.h"
#include "common/race_report.h"
#include "ilp/overlap.h"
#include "itree/frozen_set.h"
#include "itree/interval_tree.h"
#include "itree/mutexset.h"

namespace sword::offline {

struct CheckStats {
  uint64_t node_pairs_ranged = 0;   // pairs surviving the tree range query
  uint64_t solver_calls = 0;        // general-engine intersection decisions
  uint64_t fastpath_hits = 0;       // closed-form intersection decisions
  uint64_t solver_bailouts = 0;     // queries whose step budget ran out
  uint64_t races_found = 0;         // emitted reports, before global dedup
  uint64_t duplicates_suppressed = 0;  // identical reports dropped pre-merge
};

/// Caps the resource governor imposes on one tree-pair comparison.
struct CheckLimits {
  /// Per-overlap-query solver step budget; 0 = unlimited. An exhausted
  /// query reports the node pair as an UNPROVEN race (sound: never dropped).
  uint64_t solver_step_budget = 0;
  /// When non-null and set (by the watchdog on a deadline/memory breach),
  /// the comparison stops at the next node pair. Races already reported
  /// stand; the bucket is accounted as governed in AnalysisStats.
  const std::atomic<bool>* cancel = nullptr;
  /// Try the closed-form fast paths before the general engine (exact; the
  /// verdicts and witnesses are engine-identical). Off by default so that
  /// direct callers get the pure-engine baseline; the analyzer turns it on
  /// unless --no-fastpath.
  bool use_fastpath = false;
};

/// Compares two interval trees from concurrent barrier intervals; reports
/// every racing node pair through `on_race` (a non-owning view). Thread-safe
/// for concurrent calls on distinct tree pairs (the mutex table is shared
/// and thread-safe). Reports are emitted in a canonical sorted order with
/// exact duplicates suppressed, so the output is deterministic and identical
/// to CheckFrozenPair on the frozen forms of the same trees.
void CheckTreePair(const itree::IntervalTree& a, const itree::IntervalTree& b,
                   const itree::MutexSetTable& mutexes,
                   ilp::OverlapEngine engine,
                   FunctionRef<void(const RaceReport&)> on_race,
                   CheckStats* stats = nullptr, const CheckLimits& limits = {});

/// Same contract as CheckTreePair, over frozen flat sets: the sort-merge
/// sweep enumerates range-touching pairs in O(M + M' + matches); when one
/// set is >= 8x smaller it instead gallops - per-node O(log M) queries into
/// the big set - so tiny-vs-huge comparisons don't pay a full linear merge.
void CheckFrozenPair(const itree::FrozenIntervalSet& a,
                     const itree::FrozenIntervalSet& b,
                     const itree::MutexSetTable& mutexes,
                     ilp::OverlapEngine engine,
                     FunctionRef<void(const RaceReport&)> on_race,
                     CheckStats* stats = nullptr, const CheckLimits& limits = {});

}  // namespace sword::offline
