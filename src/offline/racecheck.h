// Tree-vs-tree race checking (paper SIII-B, Fig. 5).
//
// Given the interval trees of two CONCURRENT barrier intervals, every node of
// one tree is checked against the range-overlapping nodes of the other:
//   1. cheap filters: read-read pairs and atomic-atomic pairs cannot race;
//      intersecting mutex sets mean common lock protection;
//   2. exact strided-address intersection via the ILP/Diophantine engine -
//      range overlap alone is NOT sufficient for strided accesses (Fig. 4);
//   3. surviving pairs are data races, reported at the two source locations.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/function_ref.h"
#include "common/race_report.h"
#include "ilp/overlap.h"
#include "itree/interval_tree.h"
#include "itree/mutexset.h"

namespace sword::offline {

struct CheckStats {
  uint64_t node_pairs_ranged = 0;   // pairs surviving the tree range query
  uint64_t solver_calls = 0;        // exact intersection decisions
  uint64_t solver_bailouts = 0;     // queries whose step budget ran out
  uint64_t races_found = 0;         // before global dedup
};

/// Caps the resource governor imposes on one tree-pair comparison.
struct CheckLimits {
  /// Per-overlap-query solver step budget; 0 = unlimited. An exhausted
  /// query reports the node pair as an UNPROVEN race (sound: never dropped).
  uint64_t solver_step_budget = 0;
  /// When non-null and set (by the watchdog on a deadline/memory breach),
  /// the comparison stops at the next node pair. Races already reported
  /// stand; the bucket is accounted as governed in AnalysisStats.
  const std::atomic<bool>* cancel = nullptr;
};

/// Compares two interval trees from concurrent barrier intervals; reports
/// every racing node pair through `on_race` (a non-owning view - this is the
/// hottest callback in the analyzer and must not allocate). Thread-safe for
/// concurrent calls on distinct tree pairs (the mutex table is shared and
/// thread-safe). Report order is deterministic for a given tree pair, which
/// the checkpoint/resume journal relies on.
void CheckTreePair(const itree::IntervalTree& a, const itree::IntervalTree& b,
                   const itree::MutexSetTable& mutexes,
                   ilp::OverlapEngine engine,
                   FunctionRef<void(const RaceReport&)> on_race,
                   CheckStats* stats = nullptr, const CheckLimits& limits = {});

}  // namespace sword::offline
