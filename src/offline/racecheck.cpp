#include "offline/racecheck.h"

namespace sword::offline {

void CheckTreePair(const itree::IntervalTree& a, const itree::IntervalTree& b,
                   const itree::MutexSetTable& mutexes, ilp::OverlapEngine engine,
                   FunctionRef<void(const RaceReport&)> on_race,
                   CheckStats* stats) {
  if (a.Empty() || b.Empty()) return;
  // Iterate the smaller tree, range-query the larger: O(M log M') with
  // M <= M' (the paper's comparison bound).
  const bool a_smaller = a.NodeCount() <= b.NodeCount();
  const itree::IntervalTree& outer = a_smaller ? a : b;
  const itree::IntervalTree& inner = a_smaller ? b : a;

  outer.ForEach([&](const itree::AccessNode& x) {
    inner.QueryRange(x.interval.lo(), x.interval.hi(),
                     [&](const itree::AccessNode& y) {
      if (stats) stats->node_pairs_ranged++;

      // Filter: at least one write.
      if (!x.key.is_write() && !y.key.is_write()) return true;
      // Filter: two atomics synchronize with each other.
      if (x.key.is_atomic() && y.key.is_atomic()) return true;
      // Filter: common lock.
      if (mutexes.Intersects(x.key.mutexset, y.key.mutexset)) return true;

      // Exact strided intersection (the ILP constraint of SIII-B).
      if (stats) stats->solver_calls++;
      const auto witness = ilp::Intersect(x.interval, y.interval, engine);
      if (!witness) return true;

      RaceReport report;
      report.pc1 = a_smaller ? x.key.pc : y.key.pc;
      report.pc2 = a_smaller ? y.key.pc : x.key.pc;
      report.address = witness->address;
      report.size1 = a_smaller ? x.key.size : y.key.size;
      report.size2 = a_smaller ? y.key.size : x.key.size;
      report.write1 = a_smaller ? x.key.is_write() : y.key.is_write();
      report.write2 = a_smaller ? y.key.is_write() : x.key.is_write();
      if (stats) stats->races_found++;
      on_race(report);
      return true;
    });
  });
}

}  // namespace sword::offline
