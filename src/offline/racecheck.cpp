#include "offline/racecheck.h"

#include <algorithm>
#include <tuple>
#include <vector>

namespace sword::offline {
namespace {

/// Canonical total order over reports. Both enumeration back ends sort what
/// they collected under this order before emitting, which makes the emitted
/// stream - and therefore the downstream deterministic merge - independent
/// of pair enumeration order (tree DFS vs frozen sweep vs gallop).
auto ReportKey(const RaceReport& r) {
  return std::make_tuple(r.pc1, r.pc2, r.address, r.size1, r.size2, r.write1,
                         r.write2, static_cast<uint8_t>(r.confidence));
}

/// Decides one candidate node pair and collects any resulting report.
/// `x` comes from the smaller ("outer") side, `y` from the larger; the
/// a_smaller flag maps them back onto the caller's (a, b) argument order so
/// report fields do not depend on which side was iterated.
class PairDecider {
 public:
  PairDecider(const itree::MutexSetTable& mutexes, ilp::OverlapEngine engine,
              bool a_smaller, CheckStats* stats, const CheckLimits& limits)
      : mutexes_(mutexes), a_smaller_(a_smaller), stats_(stats) {
    options_.engine = engine;
    options_.budget.max_steps = limits.solver_step_budget;
    options_.allow_fastpath = limits.use_fastpath;
  }

  void Decide(const itree::AccessNode& x, const itree::AccessNode& y) {
    if (stats_) stats_->node_pairs_ranged++;

    // Filter: at least one write.
    if (!x.key.is_write() && !y.key.is_write()) return;
    // Filter: two atomics synchronize with each other.
    if (x.key.is_atomic() && y.key.is_atomic()) return;
    // Filter: common lock.
    if (mutexes_.Intersects(x.key.mutexset, y.key.mutexset)) return;

    // Exact strided intersection (the ILP constraint of SIII-B): the
    // closed-form fast paths when enabled, the general engine - under the
    // per-query step budget - otherwise.
    const ilp::OverlapResult overlap =
        ilp::IntersectBounded(x.interval, y.interval, options_);
    if (stats_) {
      if (overlap.via_fastpath) stats_->fastpath_hits++;
      else stats_->solver_calls++;
    }
    if (overlap.verdict == ilp::OverlapVerdict::kDisjoint) return;

    RaceReport report;
    report.pc1 = a_smaller_ ? x.key.pc : y.key.pc;
    report.pc2 = a_smaller_ ? y.key.pc : x.key.pc;
    report.size1 = a_smaller_ ? x.key.size : y.key.size;
    report.size2 = a_smaller_ ? y.key.size : x.key.size;
    report.write1 = a_smaller_ ? x.key.is_write() : y.key.is_write();
    report.write2 = a_smaller_ ? y.key.is_write() : x.key.is_write();
    if (overlap.verdict == ilp::OverlapVerdict::kOverlap) {
      report.address = overlap.witness.address;
    } else {
      // Budget exhausted: the pair MAY overlap. Report it - conservatively
      // sound - tagged unproven, with the range-intersection start as the
      // best available address hint (no proven shared byte exists).
      if (stats_) stats_->solver_bailouts++;
      report.address = std::max(x.interval.lo(), y.interval.lo());
      report.confidence = RaceConfidence::kUnproven;
    }
    reports_.push_back(report);
  }

  /// Sorts collected reports into the canonical order and emits them with
  /// exact duplicates suppressed (summarized runs re-colliding across node
  /// pairs otherwise inflate the report stream).
  void Emit(FunctionRef<void(const RaceReport&)> on_race) {
    std::sort(reports_.begin(), reports_.end(),
              [](const RaceReport& l, const RaceReport& r) {
                return ReportKey(l) < ReportKey(r);
              });
    const RaceReport* prev = nullptr;
    for (const RaceReport& report : reports_) {
      if (prev && ReportKey(*prev) == ReportKey(report)) {
        if (stats_) stats_->duplicates_suppressed++;
        continue;
      }
      prev = &report;
      if (stats_) stats_->races_found++;
      on_race(report);
    }
  }

 private:
  const itree::MutexSetTable& mutexes_;
  ilp::OverlapOptions options_;
  const bool a_smaller_;
  CheckStats* stats_;
  std::vector<RaceReport> reports_;
};

/// The governor's breach flag is polled per candidate pair: cheap (one
/// relaxed load) yet bounds the abort latency by a single solver query, so a
/// runaway bucket stops promptly after its deadline.
inline bool Cancelled(const CheckLimits& limits) {
  return limits.cancel && limits.cancel->load(std::memory_order_relaxed);
}

// When one frozen set is at least this many times smaller than the other,
// CheckFrozenPair gallops (per-node O(log M) queries into the big set)
// instead of sweeping: the sweep's O(M + M') merge would be dominated by
// walking the big side for a handful of outer nodes.
constexpr size_t kGallopRatio = 8;

}  // namespace

void CheckTreePair(const itree::IntervalTree& a, const itree::IntervalTree& b,
                   const itree::MutexSetTable& mutexes, ilp::OverlapEngine engine,
                   FunctionRef<void(const RaceReport&)> on_race,
                   CheckStats* stats, const CheckLimits& limits) {
  if (a.Empty() || b.Empty()) return;
  // Iterate the smaller tree, range-query the larger: O(M log M') with
  // M <= M' (the paper's comparison bound).
  const bool a_smaller = a.NodeCount() <= b.NodeCount();
  const itree::IntervalTree& outer = a_smaller ? a : b;
  const itree::IntervalTree& inner = a_smaller ? b : a;

  PairDecider decider(mutexes, engine, a_smaller, stats, limits);
  bool cancelled = false;
  outer.ForEach([&](const itree::AccessNode& x) {
    if (cancelled || Cancelled(limits)) {
      cancelled = true;
      return;
    }
    inner.QueryRange(x.interval.lo(), x.interval.hi(),
                     [&](const itree::AccessNode& y) {
      if (Cancelled(limits)) {
        cancelled = true;
        return false;
      }
      decider.Decide(x, y);
      return true;
    });
  });
  decider.Emit(on_race);
}

void CheckFrozenPair(const itree::FrozenIntervalSet& a,
                     const itree::FrozenIntervalSet& b,
                     const itree::MutexSetTable& mutexes,
                     ilp::OverlapEngine engine,
                     FunctionRef<void(const RaceReport&)> on_race,
                     CheckStats* stats, const CheckLimits& limits) {
  if (a.Empty() || b.Empty()) return;
  const bool a_smaller = a.size() <= b.size();
  const itree::FrozenIntervalSet& outer = a_smaller ? a : b;
  const itree::FrozenIntervalSet& inner = a_smaller ? b : a;

  PairDecider decider(mutexes, engine, a_smaller, stats, limits);
  if (inner.size() / outer.size() >= kGallopRatio) {
    // Gallop: the outer side is tiny; per-node binary-search queries into
    // the big frozen set beat a linear merge of both.
    for (size_t i = 0; i < outer.size(); i++) {
      if (Cancelled(limits)) break;
      if (!inner.QueryRange(outer.lo(i), outer.hi(i), [&](uint32_t inner_idx) {
            if (Cancelled(limits)) return false;
            decider.Decide(outer.node(i), inner.node(inner_idx));
            return true;
          })) {
        break;
      }
    }
  } else {
    // Sweep: sort-merge both sets once; every range-touching pair surfaces
    // in O(size(a) + size(b) + matches) with sequential access.
    itree::SweepMatchingPairs(
        outer, inner, [&](uint32_t outer_idx, uint32_t inner_idx) {
          if (Cancelled(limits)) return false;
          decider.Decide(outer.node(outer_idx), inner.node(inner_idx));
          return true;
        });
  }
  decider.Emit(on_race);
}

}  // namespace sword::offline
