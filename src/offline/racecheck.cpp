#include "offline/racecheck.h"

#include <algorithm>

namespace sword::offline {

void CheckTreePair(const itree::IntervalTree& a, const itree::IntervalTree& b,
                   const itree::MutexSetTable& mutexes, ilp::OverlapEngine engine,
                   FunctionRef<void(const RaceReport&)> on_race,
                   CheckStats* stats, const CheckLimits& limits) {
  if (a.Empty() || b.Empty()) return;
  // Iterate the smaller tree, range-query the larger: O(M log M') with
  // M <= M' (the paper's comparison bound).
  const bool a_smaller = a.NodeCount() <= b.NodeCount();
  const itree::IntervalTree& outer = a_smaller ? a : b;
  const itree::IntervalTree& inner = a_smaller ? b : a;

  const ilp::OverlapBudget budget{limits.solver_step_budget};
  bool cancelled = false;

  outer.ForEach([&](const itree::AccessNode& x) {
    if (cancelled ||
        (limits.cancel && limits.cancel->load(std::memory_order_relaxed))) {
      cancelled = true;
      return;
    }
    inner.QueryRange(x.interval.lo(), x.interval.hi(),
                     [&](const itree::AccessNode& y) {
      // The governor's breach flag is polled per candidate pair: cheap
      // (one relaxed load) yet bounds the abort latency by a single solver
      // query, so a runaway bucket stops promptly after its deadline.
      if (limits.cancel && limits.cancel->load(std::memory_order_relaxed)) {
        cancelled = true;
        return false;
      }
      if (stats) stats->node_pairs_ranged++;

      // Filter: at least one write.
      if (!x.key.is_write() && !y.key.is_write()) return true;
      // Filter: two atomics synchronize with each other.
      if (x.key.is_atomic() && y.key.is_atomic()) return true;
      // Filter: common lock.
      if (mutexes.Intersects(x.key.mutexset, y.key.mutexset)) return true;

      // Exact strided intersection (the ILP constraint of SIII-B), under
      // the per-query step budget.
      if (stats) stats->solver_calls++;
      const ilp::OverlapResult overlap =
          ilp::IntersectBounded(x.interval, y.interval, engine, budget);
      if (overlap.verdict == ilp::OverlapVerdict::kDisjoint) return true;

      RaceReport report;
      report.pc1 = a_smaller ? x.key.pc : y.key.pc;
      report.pc2 = a_smaller ? y.key.pc : x.key.pc;
      report.size1 = a_smaller ? x.key.size : y.key.size;
      report.size2 = a_smaller ? y.key.size : x.key.size;
      report.write1 = a_smaller ? x.key.is_write() : y.key.is_write();
      report.write2 = a_smaller ? y.key.is_write() : x.key.is_write();
      if (overlap.verdict == ilp::OverlapVerdict::kOverlap) {
        report.address = overlap.witness.address;
      } else {
        // Budget exhausted: the pair MAY overlap. Report it - conservatively
        // sound - tagged unproven, with the range-intersection start as the
        // best available address hint (no proven shared byte exists).
        if (stats) stats->solver_bailouts++;
        report.address = std::max(x.interval.lo(), y.interval.lo());
        report.confidence = RaceConfidence::kUnproven;
      }
      if (stats) stats->races_found++;
      on_race(report);
      return true;
    });
  });
}

}  // namespace sword::offline
