// Persistent work-stealing worker pool for the offline analyzer.
//
// The analyzer previously spawned and joined a fresh std::thread batch per
// bucket, twice (tree build, then pair comparison). Real traces have many
// small buckets, so thread start/join latency dominated them. The pool is
// created once per Analyze() call and fed per-bucket work lists: ParallelFor
// splits [0, count) into blocks, deals them round-robin onto per-worker
// deques, and blocks until all are done. A worker drains its own deque from
// the front and steals from the back of others when it runs dry, so a bucket
// with one huge pair-block and many tiny ones still finishes at the speed of
// the slowest single block, not the unluckiest initial deal.
//
// Determinism note: the analyzer's outputs never depend on which worker runs
// which block - per-worker results are folded in index order by the caller -
// so stealing is free to be timing-dependent.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/function_ref.h"

namespace sword::offline {

class CheckerPool {
 public:
  /// Starts `workers` (>= 1) persistent threads.
  explicit CheckerPool(uint32_t workers);

  /// Joins all workers. Must not be called while a ParallelFor is running.
  ~CheckerPool();

  uint32_t workers() const { return static_cast<uint32_t>(threads_.size()); }

  /// Runs fn(index, worker) for every index in [0, count), where worker is
  /// the id (< workers()) of the thread executing the call. Indices are
  /// grouped into blocks of `block` consecutive indices; block k is dealt to
  /// worker k % workers(), matching the stable modulo assignment the
  /// spawn-per-bucket code used (so per-worker caches keep their locality),
  /// and idle workers steal whole blocks from the back of busy workers'
  /// deques. Blocks until every index has been processed. The calling thread
  /// participates as worker 0. Not reentrant.
  void ParallelFor(size_t count, size_t block,
                   FunctionRef<void(size_t, uint32_t)> fn);

  /// Lifetime counters (informational, for stats/benches).
  uint64_t blocks_executed() const { return blocks_executed_; }
  uint64_t blocks_stolen() const { return blocks_stolen_; }

 private:
  // Blocks are tagged with their epoch so a worker that raced past the end
  // of one ParallelFor can never execute a block of the next one under the
  // old callable.
  struct Block {
    size_t begin;
    size_t end;
    uint64_t epoch;
  };
  // Per-worker deque with its own lock: owners pop the front, thieves pop
  // the back, so they contend only when a deque is nearly empty.
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Block> blocks;
  };

  void WorkerLoop(uint32_t id);
  /// Pops the front of `id`'s own deque, else steals the back of another;
  /// returns false when no block of `epoch` is available anywhere.
  bool TakeBlock(uint32_t id, uint64_t epoch, Block* out, bool* stolen);
  /// Runs available blocks of `epoch` until none remain, as worker `id`.
  void DrainAsWorker(uint32_t id, uint64_t epoch,
                     FunctionRef<void(size_t, uint32_t)> fn);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;  // workers 1..N-1 (0 is the caller)

  // Epoch/fence state, guarded by control_mu_.
  std::mutex control_mu_;
  std::condition_variable work_cv_;   // workers: new epoch or shutdown
  std::condition_variable done_cv_;   // caller: all blocks of the epoch done
  uint64_t epoch_ = 0;
  size_t blocks_remaining_ = 0;
  FunctionRef<void(size_t, uint32_t)>* job_ = nullptr;
  bool shutdown_ = false;

  uint64_t blocks_executed_ = 0;  // guarded by control_mu_
  uint64_t blocks_stolen_ = 0;    // guarded by control_mu_
};

}  // namespace sword::offline
