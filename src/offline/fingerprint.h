// Segment-stream fingerprints for repeated-subtrace memoization.
//
// Region-heavy OpenMP programs (LULESH runs ~300k near-identical regions)
// produce huge numbers of (thread, label) groups whose DECODED event streams
// are byte-for-byte equal: same access pattern, same pcs, same locksets,
// different label. The analyzer fingerprints every group's canonical event
// stream while it is being decoded anyway; groups with equal fingerprints
// inside a bucket share one frozen interval set, and concurrent pairs whose
// ordered fingerprint pair was already checked replay the first pair's
// verdicts by reference (offline/analysis.cpp).
//
// The fingerprint covers exactly the inputs that determine a group's frozen
// set and race verdicts: each segment's initial lockset (meta-recovered) and
// every decoded event's kind/flags/size/pc/address geometry - the POST-delta
// canonical stream, not the raw frame bytes (delta state is frame-position
// dependent, so equal streams can have unequal encodings). MutexSetTable
// interning is content-addressed, so equal streams summarize to equal
// mutex-set ids regardless of which group was decoded first.
//
// 128 bits of well-mixed state: two independent splitmix64 chains. A
// collision would silently merge two distinct subtraces, so the width is
// chosen to make that probability negligible (~2^-64 even at billions of
// segments), and the property tests cross-check dedup'd output against the
// memoization-free path.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "trace/event.h"

namespace sword::offline {

struct SegmentFingerprint {
  // Fractional bits of sqrt(2) and sqrt(3): nothing-up-my-sleeve seeds.
  uint64_t a = 0x6a09e667f3bcc908ULL;
  uint64_t b = 0xbb67ae8584caa73bULL;

  static uint64_t Mix64(uint64_t h) {
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return h;
  }

  void Mix(uint64_t v) {
    a = Mix64(a ^ v);
    b = Mix64(b + v + 0x9e3779b97f4a7c15ULL);
  }

  /// Folds one decoded event. Mutex events contribute their lock id; runs
  /// contribute their full (base, stride, count) geometry.
  void MixEvent(const trace::RawEvent& e) {
    Mix((static_cast<uint64_t>(e.kind) << 48) |
        (static_cast<uint64_t>(e.flags) << 40) |
        (static_cast<uint64_t>(e.size) << 32) | e.pc);
    Mix(e.addr);
    if (e.kind == trace::EventKind::kAccessRun) {
      Mix(e.stride);
      Mix(e.count);
    }
  }

  /// Marks a segment boundary and folds its meta-recovered initial lockset
  /// (sorted lock-id content). Two groups concatenating the same events
  /// across DIFFERENT segment boundaries must not collide.
  template <typename LockIdRange>
  void BeginSegment(const LockIdRange& lockset) {
    Mix(0x5345474dULL);  // "SEGM"
    uint64_t n = 0;
    for (const auto id : lockset) {
      Mix(static_cast<uint64_t>(id));
      n++;
    }
    Mix(n);
  }

  std::string Hex() const {
    char buf[36];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(b));
    return buf;
  }

  friend bool operator==(const SegmentFingerprint&,
                         const SegmentFingerprint&) = default;
  friend bool operator<(const SegmentFingerprint& x, const SegmentFingerprint& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  }
};

}  // namespace sword::offline
