// Race-report rendering: text and JSON writers for analysis results, used
// by the sword-offline CLI and available to downstream consumers (the real
// SWORD feeds a desktop GUI; a stable JSON schema is the equivalent here).
#pragma once

#include <functional>
#include <string>

#include "common/race_report.h"
#include "offline/analysis.h"

namespace sword::offline {

/// Resolves an interned pc to a human-readable location. The default used
/// by the CLI falls back to "pc#N" when the analyzing process never
/// executed the program (ids are process-local).
using PcNamer = std::function<std::string(uint32_t)>;

/// Multi-line human-readable report: one line per race plus a summary.
std::string RenderText(const AnalysisResult& result, const PcNamer& pc_namer);

/// Stable JSON: {"races":[{pc1,loc1,pc2,loc2,address,write1,write2,
/// size1,size2}...],"stats":{...}}. Addresses are decimal strings (JSON
/// numbers lose 64-bit precision).
std::string RenderJson(const AnalysisResult& result, const PcNamer& pc_namer);

}  // namespace sword::offline
