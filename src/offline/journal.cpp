#include "offline/journal.h"

#include "common/bytes.h"
#include "common/fsutil.h"

namespace sword::offline {
namespace {

/// Frames one record the way the trace log frames blocks (compress/frame.h
/// idiom): magic | payload_size (varu64) | fnv1a64(payload) | payload.
/// The checksum is validated before any payload byte is trusted, so a record
/// torn by mid-append death can never half-apply.
void AppendFramed(uint32_t magic, const Bytes& payload, ByteWriter& out) {
  out.PutU32(magic);
  out.PutVarU64(payload.size());
  out.PutU64(Fnv1a64(payload.data(), payload.size()));
  out.PutRaw(payload.data(), payload.size());
}

/// Reads one framed record. Returns kNotFound cleanly at end-of-input,
/// kCorruptData on any torn/invalid frame (magic mismatch, short payload,
/// checksum failure).
Status ReadFramed(ByteReader& reader, uint32_t expected_magic, Bytes* payload) {
  if (reader.AtEnd()) return Status::NotFound("end of journal");
  uint32_t magic = 0;
  SWORD_RETURN_IF_ERROR(reader.GetU32(&magic));
  if (magic != expected_magic) return Status::Corrupt("journal record magic mismatch");
  uint64_t size = 0;
  SWORD_RETURN_IF_ERROR(reader.GetVarU64(&size));
  uint64_t crc = 0;
  SWORD_RETURN_IF_ERROR(reader.GetU64(&crc));
  if (size > reader.remaining()) return Status::Corrupt("journal record truncated");
  payload->assign(reader.cursor(), reader.cursor() + size);
  SWORD_RETURN_IF_ERROR(reader.Skip(static_cast<size_t>(size)));
  if (Fnv1a64(payload->data(), payload->size()) != crc) {
    return Status::Corrupt("journal record checksum mismatch");
  }
  return Status::Ok();
}

void SerializeHeader(const JournalHeader& h, Bytes* out) {
  ByteWriter w(out);
  w.PutU8(kJournalVersion);
  w.PutU32(h.shard_index);
  w.PutU32(h.shard_count);
  w.PutU8(h.engine);
  w.PutU8(h.use_sweep);
  w.PutU8(h.use_fastpath);
  w.PutU8(h.use_stream);
  w.PutU8(h.use_symbolic);
  w.PutU8(h.use_dedup);
  w.PutU8(h.salvage);
  w.PutVarU64(h.solver_step_budget);
  w.PutVarU64(h.bucket_deadline_ms);
  w.PutVarU64(h.max_tree_bytes);
  w.PutU32(h.thread_count);
  w.PutVarU64(h.total_intervals);
  w.PutVarU64(h.total_log_bytes);
}

Status ParseHeader(const Bytes& payload, JournalHeader* h) {
  ByteReader r(payload);
  uint8_t version = 0;
  SWORD_RETURN_IF_ERROR(r.GetU8(&version));
  if (version != kJournalVersion) {
    return Status::Unsupported("journal version " + std::to_string(version));
  }
  SWORD_RETURN_IF_ERROR(r.GetU32(&h->shard_index));
  SWORD_RETURN_IF_ERROR(r.GetU32(&h->shard_count));
  SWORD_RETURN_IF_ERROR(r.GetU8(&h->engine));
  SWORD_RETURN_IF_ERROR(r.GetU8(&h->use_sweep));
  SWORD_RETURN_IF_ERROR(r.GetU8(&h->use_fastpath));
  SWORD_RETURN_IF_ERROR(r.GetU8(&h->use_stream));
  SWORD_RETURN_IF_ERROR(r.GetU8(&h->use_symbolic));
  SWORD_RETURN_IF_ERROR(r.GetU8(&h->use_dedup));
  SWORD_RETURN_IF_ERROR(r.GetU8(&h->salvage));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&h->solver_step_budget));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&h->bucket_deadline_ms));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&h->max_tree_bytes));
  SWORD_RETURN_IF_ERROR(r.GetU32(&h->thread_count));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&h->total_intervals));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&h->total_log_bytes));
  return Status::Ok();
}

void SerializeBucket(const JournalBucketRecord& rec, Bytes* out) {
  ByteWriter w(out);
  w.PutVarU64(rec.ordinal);
  w.PutU8(rec.flags);
  SerializeRaceList(rec.races, w);
  w.PutVarU64(rec.trees_built);
  w.PutVarU64(rec.tree_nodes);
  w.PutVarU64(rec.raw_events);
  w.PutVarU64(rec.label_pairs_checked);
  w.PutVarU64(rec.concurrent_pairs);
  w.PutVarU64(rec.node_pairs_ranged);
  w.PutVarU64(rec.solver_calls);
  w.PutVarU64(rec.fastpath_hits);
  w.PutVarU64(rec.dedup_hits);
  w.PutVarU64(rec.dedup_bytes_saved);
  w.PutVarU64(rec.duplicates_suppressed);
  w.PutVarU64(rec.solver_bailouts);
  w.PutVarU64(rec.segments_skipped);
  w.PutVarU64(rec.events_missing);
  w.PutVarU64(rec.bytes_skipped_read);
  w.PutVarU64(rec.tree_bytes);
}

Status ParseBucket(const Bytes& payload, JournalBucketRecord* rec) {
  ByteReader r(payload);
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&rec->ordinal));
  SWORD_RETURN_IF_ERROR(r.GetU8(&rec->flags));
  SWORD_RETURN_IF_ERROR(ParseRaceList(r, payload.size(), &rec->races));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&rec->trees_built));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&rec->tree_nodes));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&rec->raw_events));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&rec->label_pairs_checked));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&rec->concurrent_pairs));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&rec->node_pairs_ranged));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&rec->solver_calls));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&rec->fastpath_hits));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&rec->dedup_hits));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&rec->dedup_bytes_saved));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&rec->duplicates_suppressed));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&rec->solver_bailouts));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&rec->segments_skipped));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&rec->events_missing));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&rec->bytes_skipped_read));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&rec->tree_bytes));
  return Status::Ok();
}

}  // namespace

void SerializeRaceList(const std::vector<RaceReport>& races, ByteWriter& w) {
  w.PutVarU64(races.size());
  for (const RaceReport& race : races) {
    w.PutU32(race.pc1);
    w.PutU32(race.pc2);
    w.PutU64(race.address);
    w.PutU8(race.size1);
    w.PutU8(race.size2);
    const uint8_t bits =
        static_cast<uint8_t>((race.write1 ? 1 : 0) | (race.write2 ? 2 : 0) |
                             (race.confidence == RaceConfidence::kUnproven ? 4 : 0));
    w.PutU8(bits);
  }
}

Status ParseRaceList(ByteReader& r, uint64_t payload_bound,
                     std::vector<RaceReport>* out) {
  uint64_t race_count = 0;
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&race_count));
  // A checksummed payload cannot claim more races than it has bytes for
  // (>= 19 bytes each); still, bound the reserve like any untrusted length.
  if (race_count > payload_bound) return Status::Corrupt("journal race count");
  out->reserve(out->size() + static_cast<size_t>(race_count));
  for (uint64_t i = 0; i < race_count; i++) {
    RaceReport race;
    SWORD_RETURN_IF_ERROR(r.GetU32(&race.pc1));
    SWORD_RETURN_IF_ERROR(r.GetU32(&race.pc2));
    SWORD_RETURN_IF_ERROR(r.GetU64(&race.address));
    SWORD_RETURN_IF_ERROR(r.GetU8(&race.size1));
    SWORD_RETURN_IF_ERROR(r.GetU8(&race.size2));
    uint8_t bits = 0;
    SWORD_RETURN_IF_ERROR(r.GetU8(&bits));
    race.write1 = bits & 1;
    race.write2 = bits & 2;
    race.confidence =
        (bits & 4) ? RaceConfidence::kUnproven : RaceConfidence::kProven;
    out->push_back(race);
  }
  return Status::Ok();
}

std::string JournalPathFor(const std::string& trace_dir, uint32_t shard_index,
                           uint32_t shard_count) {
  return trace_dir + "/sword_analysis_" + std::to_string(shard_index) + "of" +
         std::to_string(shard_count ? shard_count : 1) + ".journal";
}

Result<JournalWriter> JournalWriter::Create(const std::string& path,
                                            const JournalHeader& header,
                                            FileBackend* backend) {
  if (backend == nullptr) backend = &RealFileBackend();
  Bytes payload;
  SerializeHeader(header, &payload);
  ByteWriter file;
  AppendFramed(kJournalHeaderMagic, payload, file);
  // write-temp+rename: creation is all-or-nothing, and it atomically
  // truncates a stale journal from a previous (differently-configured) run.
  SWORD_RETURN_IF_ERROR(WriteFileAtomic(path, file.buffer(), backend));
  JournalWriter writer(path, backend);
  writer.bytes_appended_ = file.size();
  return writer;
}

Result<JournalWriter> JournalWriter::Continue(const std::string& path,
                                              uint64_t valid_bytes,
                                              FileBackend* backend) {
  if (backend == nullptr) backend = &RealFileBackend();
  const auto size = FileSize(path);
  if (!size.ok()) return size.status();
  if (size.value() > valid_bytes) {
    // Drop the torn tail before appending: the journal must stay a clean
    // sequence of framed records.
    SWORD_RETURN_IF_ERROR(backend->Truncate(path, valid_bytes));
  }
  return JournalWriter(path, backend);
}

Status JournalWriter::AppendBucket(const JournalBucketRecord& record) {
  Bytes payload;
  SerializeBucket(record, &payload);
  ByteWriter framed;
  AppendFramed(kJournalBucketMagic, payload, framed);
  const AppendOutcome outcome = AppendWithRetry(
      *backend_, path_, framed.buffer().data(), framed.size());
  if (!outcome.status.ok()) {
    write_failures_++;
    // A partial append leaves a torn record; trim it so a LATER successful
    // append cannot bury garbage mid-file (load would then stop early and
    // drop every record after the tear).
    if (outcome.written > 0) {
      const auto size = FileSize(path_);
      if (size.ok() && size.value() >= outcome.written) {
        (void)backend_->Truncate(path_, size.value() - outcome.written);
      }
    }
    return outcome.status;
  }
  bytes_appended_ += framed.size();
  return Status::Ok();
}

Result<JournalLoadResult> LoadJournal(const std::string& path) {
  const auto file = ReadFileBytes(path);
  if (!file.ok()) return file.status();
  ByteReader reader(file.value());
  JournalLoadResult result;

  Bytes payload;
  Status s = ReadFramed(reader, kJournalHeaderMagic, &payload);
  if (!s.ok()) {
    return Status::Corrupt("journal header unreadable: " + s.ToString());
  }
  s = ParseHeader(payload, &result.header);
  if (!s.ok()) return s;
  result.valid_bytes = reader.position();

  while (!reader.AtEnd()) {
    s = ReadFramed(reader, kJournalBucketMagic, &payload);
    if (!s.ok()) {
      // Torn tail (mid-append SIGKILL) or trailing corruption: everything
      // up to here is trustworthy, the rest is dropped and re-analyzed.
      result.records_dropped++;
      break;
    }
    JournalBucketRecord rec;
    s = ParseBucket(payload, &rec);
    if (!s.ok()) {
      result.records_dropped++;
      break;
    }
    result.records.push_back(std::move(rec));
    result.valid_bytes = reader.position();
  }
  return result;
}

}  // namespace sword::offline
