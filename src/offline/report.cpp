#include "offline/report.h"

#include <cstdio>

namespace sword::offline {
namespace {

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string RenderText(const AnalysisResult& result, const PcNamer& pc_namer) {
  std::string out;
  out += std::to_string(result.races.size()) + " data race(s)\n";
  for (const RaceReport& race : result.races.reports()) {
    out += "  " + race.ToString(pc_namer) + "\n";
  }
  const auto& s = result.stats;
  out += "analyzed " + std::to_string(s.intervals) + " interval(s) in " +
         std::to_string(s.buckets) + " region(s), " + std::to_string(s.raw_events) +
         " event(s) -> " + std::to_string(s.tree_nodes) + " tree node(s)\n";
  return out;
}

std::string RenderJson(const AnalysisResult& result, const PcNamer& pc_namer) {
  std::string out = "{\"races\":[";
  bool first = true;
  for (const RaceReport& race : result.races.reports()) {
    if (!first) out += ",";
    first = false;
    out += "{";
    out += "\"pc1\":" + std::to_string(race.pc1);
    out += ",\"loc1\":\"" + JsonEscape(pc_namer(race.pc1)) + "\"";
    out += ",\"pc2\":" + std::to_string(race.pc2);
    out += ",\"loc2\":\"" + JsonEscape(pc_namer(race.pc2)) + "\"";
    out += ",\"address\":\"" + std::to_string(race.address) + "\"";
    out += ",\"write1\":" + std::string(race.write1 ? "true" : "false");
    out += ",\"write2\":" + std::string(race.write2 ? "true" : "false");
    out += ",\"size1\":" + std::to_string(int(race.size1));
    out += ",\"size2\":" + std::to_string(int(race.size2));
    out += "}";
  }
  out += "],\"stats\":{";
  const auto& s = result.stats;
  out += "\"intervals\":" + std::to_string(s.intervals);
  out += ",\"buckets\":" + std::to_string(s.buckets);
  out += ",\"trees_built\":" + std::to_string(s.trees_built);
  out += ",\"tree_nodes\":" + std::to_string(s.tree_nodes);
  out += ",\"raw_events\":" + std::to_string(s.raw_events);
  out += ",\"label_pairs_checked\":" + std::to_string(s.label_pairs_checked);
  out += ",\"concurrent_pairs\":" + std::to_string(s.concurrent_pairs);
  out += ",\"solver_calls\":" + std::to_string(s.solver_calls);
  out += ",\"total_seconds\":" + std::to_string(s.total_seconds);
  out += "}}";
  return out;
}

}  // namespace sword::offline
