#include "offline/report.h"

#include <cstdio>

namespace sword::offline {
namespace {

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string RenderText(const AnalysisResult& result, const PcNamer& pc_namer) {
  std::string out;
  out += std::to_string(result.races.size()) + " data race(s)\n";
  for (const RaceReport& race : result.races.reports()) {
    out += "  " + race.ToString(pc_namer) + "\n";
  }
  const auto& s = result.stats;
  out += "analyzed " + std::to_string(s.intervals) + " interval(s) in " +
         std::to_string(s.buckets) + " region(s), " + std::to_string(s.raw_events) +
         " event(s) -> " + std::to_string(s.tree_nodes) + " tree node(s)\n";
  // Resource-governor outcomes are part of the answer's integrity: a capped
  // bucket or an unproven race means the report is sound but not exhaustive.
  // (Journal/resume accounting is deliberately NOT rendered here - a resumed
  // run's report must be bit-identical to an uninterrupted one.)
  if (s.buckets_deadline_exceeded > 0 || s.buckets_memory_capped > 0 ||
      s.solver_bailouts > 0 || s.races_unproven > 0) {
    out += "resource governor: DEGRADED\n";
    out += "  " + std::to_string(s.buckets_deadline_exceeded) +
           " bucket(s) over deadline, " + std::to_string(s.buckets_memory_capped) +
           " memory-capped, " + std::to_string(s.solver_bailouts) +
           " solver bail-out(s), " + std::to_string(s.races_unproven) +
           " unproven race(s)\n";
  }
  const auto& in = s.integrity;
  // A crash-sealed run and a degraded run each get a headline of their own:
  // neither is frame damage, but both change what the report's silence
  // means (the trace ends early / the event lists may be subsets).
  if (in.crash_sealed) {
    out += "crash-sealed run: fatal signal " + std::to_string(int(in.crash_signo)) +
           ", " + std::to_string(in.crash_markers) +
           " crash marker(s); everything recorded before the seal is trusted\n";
  }
  if (s.intervals_degraded > 0 || in.degraded_dropped > 0) {
    out += "degradation governor: ACTIVE\n";
    out += "  " + std::to_string(s.intervals_degraded) +
           " interval(s) at reduced fidelity, " +
           std::to_string(in.degraded_dropped) + " access(es) shed (" +
           std::to_string(in.degradation_transitions) +
           " level change(s)); races found are real, absence is not proof\n";
  }
  // Pre-filter elision is informational, never damage: receipts keep the
  // decoded stream address-equivalent, so nothing is missing from analysis.
  if (in.elided_accesses > 0) {
    out += "static pre-filter: " + std::to_string(in.elided_accesses) +
           " access(es) elided at proven-safe sites (receipts in stream)\n";
  }
  if (in.elided_lost > 0) {
    out += "  WARNING: " + std::to_string(in.elided_lost) +
           " elided access(es) lost their receipts; treated as damage\n";
  }
  const bool damaged = !in.clean() || s.segments_skipped > 0 ||
                       s.buckets_skipped > 0 || s.events_missing > 0 ||
                       s.bytes_skipped_read > 0;
  if (damaged || in.salvaged) {
    out += "trace integrity: ";
    out += damaged ? "DAMAGED" : "clean";
    out += in.salvaged ? " (salvage mode)\n" : "\n";
  }
  if (damaged) {
    out += "  frames: " + std::to_string(in.frames_ok) + " ok, " +
           std::to_string(in.frames_corrupt) + " corrupt, " +
           std::to_string(in.frames_unaddressable) + " unaddressable, " +
           std::to_string(in.gap_frames) + " gap(s)\n";
    out += "  log damage: " + std::to_string(in.resyncs) + " resync(s), " +
           std::to_string(in.bytes_skipped) + " byte(s) skipped, " +
           std::to_string(in.truncated_tail_bytes) + " truncated tail byte(s)\n";
    out += "  dropped at record time: " +
           std::to_string(in.events_dropped_at_record) + " event(s), " +
           std::to_string(in.bytes_dropped_at_record) + " byte(s)\n";
    out += "  meta: " + std::to_string(in.meta_records_dropped) +
           " record(s) torn, " + std::to_string(in.meta_records_rejected) +
           " rejected, " + std::to_string(in.threads_missing_meta) +
           " thread(s) missing meta, " + std::to_string(in.threads_missing_log) +
           " missing log\n";
    out += "  analysis: " + std::to_string(s.segments_skipped) +
           " segment(s) skipped, " + std::to_string(s.buckets_skipped) +
           " bucket(s) skipped, " + std::to_string(s.events_missing) +
           " event(s) missing, " + std::to_string(s.bytes_skipped_read) +
           " byte(s) unread\n";
    if (!result.first_error.ok()) {
      out += "  first error: " + result.first_error.ToString() + "\n";
    }
  }
  return out;
}

std::string RenderJson(const AnalysisResult& result, const PcNamer& pc_namer) {
  std::string out = "{\"races\":[";
  bool first = true;
  for (const RaceReport& race : result.races.reports()) {
    if (!first) out += ",";
    first = false;
    out += "{";
    out += "\"pc1\":" + std::to_string(race.pc1);
    out += ",\"loc1\":\"" + JsonEscape(pc_namer(race.pc1)) + "\"";
    out += ",\"pc2\":" + std::to_string(race.pc2);
    out += ",\"loc2\":\"" + JsonEscape(pc_namer(race.pc2)) + "\"";
    out += ",\"address\":\"" + std::to_string(race.address) + "\"";
    out += ",\"write1\":" + std::string(race.write1 ? "true" : "false");
    out += ",\"write2\":" + std::string(race.write2 ? "true" : "false");
    out += ",\"size1\":" + std::to_string(int(race.size1));
    out += ",\"size2\":" + std::to_string(int(race.size2));
    out += ",\"confidence\":\"";
    out += race.confidence == RaceConfidence::kUnproven ? "unproven" : "proven";
    out += "\"}";
  }
  out += "],\"stats\":{";
  const auto& s = result.stats;
  out += "\"intervals\":" + std::to_string(s.intervals);
  out += ",\"buckets\":" + std::to_string(s.buckets);
  out += ",\"trees_built\":" + std::to_string(s.trees_built);
  out += ",\"tree_nodes\":" + std::to_string(s.tree_nodes);
  out += ",\"raw_events\":" + std::to_string(s.raw_events);
  out += ",\"label_pairs_checked\":" + std::to_string(s.label_pairs_checked);
  out += ",\"concurrent_pairs\":" + std::to_string(s.concurrent_pairs);
  out += ",\"node_pairs_ranged\":" + std::to_string(s.node_pairs_ranged);
  out += ",\"solver_calls\":" + std::to_string(s.solver_calls);
  out += ",\"fastpath_hits\":" + std::to_string(s.fastpath_hits);
  out += ",\"dedup_hits\":" + std::to_string(s.dedup_hits);
  out += ",\"dedup_bytes_saved\":" + std::to_string(s.dedup_bytes_saved);
  out += ",\"duplicates_suppressed\":" + std::to_string(s.duplicates_suppressed);
  out += ",\"intervals_degraded\":" + std::to_string(s.intervals_degraded);
  out += ",\"degraded_events_dropped\":" +
         std::to_string(s.degraded_events_dropped);
  out += ",\"solver_bailouts\":" + std::to_string(s.solver_bailouts);
  out += ",\"races_unproven\":" + std::to_string(s.races_unproven);
  out += ",\"buckets_deadline_exceeded\":" +
         std::to_string(s.buckets_deadline_exceeded);
  out += ",\"buckets_memory_capped\":" + std::to_string(s.buckets_memory_capped);
  out += ",\"peak_tree_bytes\":" + std::to_string(s.peak_tree_bytes);
  out += ",\"peak_tree_bucket\":" + std::to_string(s.peak_tree_bucket);
  out += ",\"total_seconds\":" + std::to_string(s.total_seconds);
  out += "}";
  out += ",\"journal\":{";
  out += "\"buckets_resumed\":" + std::to_string(s.buckets_resumed);
  out += ",\"records_dropped\":" + std::to_string(s.journal_records_dropped);
  out += ",\"bytes_appended\":" + std::to_string(s.journal_bytes);
  out += ",\"write_failures\":" + std::to_string(s.journal_write_failures);
  out += ",\"journal_seconds\":" + std::to_string(s.journal_seconds);
  out += "}";
  const auto& in = s.integrity;
  out += ",\"integrity\":{";
  out += "\"salvaged\":" + std::string(in.salvaged ? "true" : "false");
  out += ",\"frames_ok\":" + std::to_string(in.frames_ok);
  out += ",\"frames_corrupt\":" + std::to_string(in.frames_corrupt);
  out += ",\"frames_unaddressable\":" + std::to_string(in.frames_unaddressable);
  out += ",\"gap_frames\":" + std::to_string(in.gap_frames);
  out += ",\"events_dropped_at_record\":" +
         std::to_string(in.events_dropped_at_record);
  out += ",\"bytes_dropped_at_record\":" +
         std::to_string(in.bytes_dropped_at_record);
  out += ",\"resyncs\":" + std::to_string(in.resyncs);
  out += ",\"bytes_skipped\":" + std::to_string(in.bytes_skipped);
  out += ",\"truncated_tail_bytes\":" + std::to_string(in.truncated_tail_bytes);
  out += ",\"meta_records_dropped\":" + std::to_string(in.meta_records_dropped);
  out += ",\"meta_records_rejected\":" + std::to_string(in.meta_records_rejected);
  out += ",\"threads_missing_meta\":" + std::to_string(in.threads_missing_meta);
  out += ",\"threads_missing_log\":" + std::to_string(in.threads_missing_log);
  out += ",\"crash_sealed\":" + std::string(in.crash_sealed ? "true" : "false");
  out += ",\"crash_signo\":" + std::to_string(int(in.crash_signo));
  out += ",\"crash_markers\":" + std::to_string(in.crash_markers);
  out += ",\"degraded_dropped\":" + std::to_string(in.degraded_dropped);
  out += ",\"degradation_transitions\":" +
         std::to_string(in.degradation_transitions);
  out += ",\"elided_accesses\":" + std::to_string(in.elided_accesses);
  out += ",\"elided_lost\":" + std::to_string(in.elided_lost);
  out += ",\"segments_skipped\":" + std::to_string(s.segments_skipped);
  out += ",\"buckets_skipped\":" + std::to_string(s.buckets_skipped);
  out += ",\"events_missing\":" + std::to_string(s.events_missing);
  out += ",\"bytes_skipped_read\":" + std::to_string(s.bytes_skipped_read);
  out += ",\"first_error\":\"" +
         JsonEscape(result.first_error.ok() ? "" : result.first_error.ToString()) +
         "\"";
  out += "}}";
  return out;
}

}  // namespace sword::offline
