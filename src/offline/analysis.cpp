#include "offline/analysis.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/timer.h"
#include "itree/interval_tree.h"
#include "itree/mutexset.h"
#include "offline/racecheck.h"
#include "osl/label.h"
#include "trace/event.h"

namespace sword::offline {
namespace {

/// Serialized label bytes; used as an ordered map key for grouping.
std::string LabelKey(const osl::Label& label) {
  ByteWriter w;
  label.Serialize(w);
  return std::string(reinterpret_cast<const char*>(w.buffer().data()),
                     w.buffer().size());
}

struct Group {
  uint32_t thread_idx;
  osl::Label label;
  std::vector<const trace::IntervalMeta*> segments;
  itree::IntervalTree tree;
};

/// Streams one segment's events into the group's tree, recovering the
/// lockset from mutex events (paper: "synchronization recovery"). `cache`
/// avoids re-decompressing a frame shared by many small segments.
Status BuildSegment(const TraceStore& store, Group& group,
                    const trace::IntervalMeta& meta, itree::MutexSetTable& mutexes,
                    AnalysisStats& stats, trace::FrameCache* cache) {
  std::vector<itree::MutexId> initial(meta.lockset.begin(), meta.lockset.end());
  itree::MutexSetId cur = mutexes.Intern(std::move(initial));

  const auto& thread = store.threads()[group.thread_idx];
  uint64_t events = 0;
  uint64_t bytes_skipped = 0;
  const Status s = thread.log->StreamRange(
      meta.data_begin, meta.data_size,
      [&](const trace::RawEvent& e) {
        events++;
        switch (e.kind) {
          case trace::EventKind::kMutexAcquire:
            cur = mutexes.WithMutex(cur, static_cast<itree::MutexId>(e.addr));
            break;
          case trace::EventKind::kMutexRelease:
            cur = mutexes.WithoutMutex(cur, static_cast<itree::MutexId>(e.addr));
            break;
          case trace::EventKind::kAccess: {
            itree::AccessKey key;
            key.pc = e.pc;
            key.flags = e.flags;
            key.size = e.size;
            key.mutexset = cur;
            group.tree.AddAccess(e.addr, key);
            break;
          }
        }
      },
      cache, &bytes_skipped);
  stats.raw_events += events;
  stats.bytes_skipped_read += bytes_skipped;
  // Honest accounting for salvage runs: the meta claimed event_count events
  // for this segment; whatever did not stream (holes, truncation) is missing.
  if (s.ok() && meta.event_count > events) {
    stats.events_missing += meta.event_count - events;
  }
  return s;
}

}  // namespace

AnalysisResult Analyze(const TraceStore& store, const AnalysisConfig& config) {
  AnalysisResult result;
  Timer total_timer;
  itree::MutexSetTable mutexes;
  result.stats.integrity = store.integrity();
  // The store's opening discipline decides the analysis's failure policy:
  // a salvage store degrades per segment/bucket with accounting, a strict
  // store aborts on the first defect.
  const bool salvage = store.integrity().salvaged;

  // --- 1+2: bucket interval segments by top-level region (root pair offset).
  // Cross-bucket interval pairs are sequential by OSL case 2 on the root
  // pair, so they are pruned wholesale.
  std::map<uint32_t, std::vector<std::pair<uint32_t, const trace::IntervalMeta*>>>
      buckets;
  for (uint32_t t = 0; t < store.thread_count(); t++) {
    for (const auto& meta : store.threads()[t].meta.intervals) {
      result.stats.intervals++;
      const auto& pairs = meta.label.pairs();
      if (pairs.empty()) {
        if (!salvage) {
          result.status = Status::Corrupt("interval with empty label");
          return result;
        }
        result.stats.integrity.meta_records_rejected++;
        if (result.first_error.ok()) {
          result.first_error = Status::Corrupt("interval with empty label");
        }
        continue;
      }
      buckets[pairs.front().offset].push_back({t, &meta});
    }
  }
  result.stats.buckets = buckets.size();
  uint64_t buckets_attempted = 0;

  std::mutex races_mutex;
  // Frame caches live across buckets so consecutive buckets whose segments
  // share a frame (the common case: many tiny top-level regions per frame)
  // reuse the decompression. One bounded LRU cache per builder worker -
  // entries are keyed by (log reader, frame), so a single cache serves every
  // trace thread the worker touches while its byte cap keeps a long analysis
  // from retaining every frame it ever decompressed. Groups are assigned to
  // workers by a stable modulo so the same lane's frames keep hitting the
  // same worker's cache bucket after bucket.
  std::vector<trace::FrameCache> worker_caches(std::max<uint32_t>(1, config.threads));

  uint64_t bucket_ordinal = ~0ULL;
  for (auto& [root_offset, segments] : buckets) {
    (void)root_offset;
    bucket_ordinal++;
    if (config.shard_count > 1 &&
        bucket_ordinal % config.shard_count != config.shard_index) {
      continue;  // another shard's bucket
    }
    buckets_attempted++;
    Timer bucket_timer;

    // --- 3: group by (thread, label); stream logs into per-group trees.
    Timer build_timer;
    std::map<std::pair<uint32_t, std::string>, std::unique_ptr<Group>> group_map;
    for (auto& [thread_idx, meta] : segments) {
      auto key = std::make_pair(thread_idx, LabelKey(meta->label));
      auto [it, inserted] = group_map.try_emplace(std::move(key));
      if (inserted) {
        it->second = std::make_unique<Group>();
        it->second->thread_idx = thread_idx;
        it->second->label = meta->label;
      }
      it->second->segments.push_back(meta);
    }
    std::vector<Group*> groups;
    groups.reserve(group_map.size());
    for (auto& [key, group] : group_map) groups.push_back(group.get());

    // Tree construction parallelizes per GROUP without locks: each
    // (thread, label) tree is private to its builder, log readers are
    // stateless, and the mutex-set table is thread-safe. (The paper calls
    // this out as future work - "the tree generation cannot be efficiently
    // parallelized since it would require the use of locks" - which the
    // per-group decomposition sidesteps.)
    std::atomic<uint64_t> bucket_segments{0};
    std::atomic<uint64_t> bucket_segment_failures{0};
    {
      std::mutex status_mutex;
      auto build_group = [&](Group* group, AnalysisStats* stats,
                             trace::FrameCache* cache) {
        // Small segments sharing a frame decode it once, not once per
        // segment, courtesy of the worker's LRU frame cache. A segment that
        // fails to stream poisons only itself in salvage mode (the group's
        // tree keeps every segment that did stream); a strict store aborts
        // the whole analysis, as before.
        for (const trace::IntervalMeta* meta : group->segments) {
          bucket_segments.fetch_add(1, std::memory_order_relaxed);
          const Status s = BuildSegment(store, *group, *meta, mutexes, *stats, cache);
          if (!s.ok()) {
            std::lock_guard lock(status_mutex);
            if (result.first_error.ok()) result.first_error = s;
            if (!salvage) {
              if (result.status.ok()) result.status = s;
              return;
            }
            bucket_segment_failures.fetch_add(1, std::memory_order_relaxed);
            stats->segments_skipped++;
          }
        }
        stats->trees_built++;
        stats->tree_nodes += group->tree.NodeCount();
      };

      if (config.threads <= 1 || groups.size() < 2) {
        for (Group* group : groups) {
          build_group(group, &result.stats, &worker_caches[0]);
        }
      } else {
        const uint32_t workers =
            std::min<uint32_t>(config.threads, static_cast<uint32_t>(groups.size()));
        std::vector<AnalysisStats> stats(workers);
        std::vector<std::thread> threads;
        threads.reserve(workers);
        for (uint32_t w = 0; w < workers; w++) {
          threads.emplace_back([&, w] {
            // Stable modulo assignment keeps lane k on worker k%workers, so
            // each worker's frame cache stays hot across buckets.
            for (size_t k = w; k < groups.size(); k += workers) {
              build_group(groups[k], &stats[w], &worker_caches[w]);
            }
          });
        }
        for (auto& th : threads) th.join();
        for (const auto& s : stats) {
          result.stats.trees_built += s.trees_built;
          result.stats.tree_nodes += s.tree_nodes;
          result.stats.raw_events += s.raw_events;
          result.stats.segments_skipped += s.segments_skipped;
          result.stats.events_missing += s.events_missing;
          result.stats.bytes_skipped_read += s.bytes_skipped_read;
        }
      }
      if (!result.status.ok()) return result;
    }
    result.stats.build_seconds += build_timer.ElapsedSeconds();
    // A bucket where not a single segment streamed has nothing to compare;
    // count it and move on (salvage only - strict never gets here damaged).
    if (salvage && bucket_segments.load() > 0 &&
        bucket_segment_failures.load() == bucket_segments.load()) {
      result.stats.buckets_skipped++;
      result.stats.max_bucket_seconds =
          std::max(result.stats.max_bucket_seconds, bucket_timer.ElapsedSeconds());
      continue;
    }

    uint64_t bucket_tree_bytes = 0;
    for (Group* group : groups) bucket_tree_bytes += group->tree.MemoryBytes();
    result.stats.peak_tree_bytes =
        std::max(result.stats.peak_tree_bytes, bucket_tree_bytes);

    // --- 4: concurrency judgment per label pair, then tree comparison.
    Timer compare_timer;
    std::vector<std::pair<Group*, Group*>> concurrent;
    concurrent.reserve(groups.size());
    // Concurrency is judged purely on labels: one OS thread may have hosted
    // two different lanes back to back (worker reuse), and those lanes'
    // intervals still race in the OpenMP abstract machine even though this
    // particular schedule serialized them. Equal labels (the same logical
    // execution point) come out Sequential, so self-pairs prune themselves.
    for (size_t i = 0; i < groups.size(); i++) {
      for (size_t j = i + 1; j < groups.size(); j++) {
        result.stats.label_pairs_checked++;
        if (osl::Concurrent(groups[i]->label, groups[j]->label)) {
          concurrent.push_back({groups[i], groups[j]});
        }
      }
    }
    result.stats.concurrent_pairs += concurrent.size();

    auto check_range = [&](size_t begin, size_t end, CheckStats* stats) {
      for (size_t k = begin; k < end; k++) {
        CheckTreePair(concurrent[k].first->tree, concurrent[k].second->tree, mutexes,
                      config.engine,
                      [&](const RaceReport& report) {
                        std::lock_guard lock(races_mutex);
                        result.races.Add(report);
                      },
                      stats);
      }
    };

    if (config.threads <= 1 || concurrent.size() < 2) {
      CheckStats stats;
      check_range(0, concurrent.size(), &stats);
      result.stats.node_pairs_ranged += stats.node_pairs_ranged;
      result.stats.solver_calls += stats.solver_calls;
    } else {
      const uint32_t workers =
          std::min<uint32_t>(config.threads, static_cast<uint32_t>(concurrent.size()));
      std::vector<CheckStats> stats(workers);
      std::vector<std::thread> threads;
      threads.reserve(workers);
      std::atomic<size_t> next{0};
      for (uint32_t w = 0; w < workers; w++) {
        threads.emplace_back([&, w] {
          while (true) {
            const size_t k = next.fetch_add(1);
            if (k >= concurrent.size()) break;
            check_range(k, k + 1, &stats[w]);
          }
        });
      }
      for (auto& th : threads) th.join();
      for (const auto& s : stats) {
        result.stats.node_pairs_ranged += s.node_pairs_ranged;
        result.stats.solver_calls += s.solver_calls;
      }
    }
    result.stats.compare_seconds += compare_timer.ElapsedSeconds();

    result.stats.max_bucket_seconds =
        std::max(result.stats.max_bucket_seconds, bucket_timer.ElapsedSeconds());
  }

  // Salvage policy: partial damage is reported through the stats while the
  // status stays Ok - but an analysis where EVERY attempted bucket failed
  // produced nothing, and pretending otherwise would be dishonest.
  if (salvage && result.status.ok() && buckets_attempted > 0 &&
      result.stats.buckets_skipped == buckets_attempted) {
    result.status = result.first_error.ok()
                        ? Status::Corrupt("no bucket survived salvage analysis")
                        : result.first_error;
  }

  result.stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace sword::offline
