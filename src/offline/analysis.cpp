#include "offline/analysis.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <tuple>
#include <unordered_map>

#include "itree/frozen_set.h"
#include "itree/interval_tree.h"
#include "itree/mutexset.h"
#include "itree/streaming_builder.h"
#include "offline/checker_pool.h"
#include "offline/fingerprint.h"
#include "offline/journal.h"
#include "offline/racecheck.h"
#include "osl/label.h"
#include "trace/event.h"

namespace sword::offline {
namespace {

/// Stopwatch over the analyzer's injected clock. With the default
/// steady_clock hook this reads identically to common/timer.h's Timer; with
/// a test clock, elapsed-time stats become deterministic.
class EnvTimer {
 public:
  explicit EnvTimer(const std::function<uint64_t()>& now)
      : now_(&now), start_(now()) {}
  double ElapsedSeconds() const {
    return static_cast<double>((*now_)() - start_) * 1e-9;
  }

 private:
  const std::function<uint64_t()>* now_;
  uint64_t start_;
};

/// Serialized label bytes; used as an ordered map key for grouping.
std::string LabelKey(const osl::Label& label) {
  ByteWriter w;
  label.Serialize(w);
  return std::string(reinterpret_cast<const char*>(w.buffer().data()),
                     w.buffer().size());
}

struct Group {
  uint32_t thread_idx;
  osl::Label label;
  std::vector<const trace::IntervalMeta*> segments;
  /// Legacy summarizer (use_stream off): the red-black interval tree.
  itree::IntervalTree tree;
  /// Streaming summarizer (use_stream on): flat creation-order store with
  /// sorted-append + spill; Freeze() emits the frozen set directly, the tree
  /// above stays empty and is never touched.
  itree::StreamingSetBuilder builder;
  /// Canonical-decoded-stream identity, folded during the build when
  /// use_dedup is on (zero-state otherwise).
  SegmentFingerprint fingerprint;
  /// The group's immutable comparison form, built once after the summarizer
  /// closes (only for groups that appear in a concurrent pair). Comparisons
  /// run on this; the summarizer is never traversed again.
  itree::FrozenIntervalSet frozen;
  /// What the checkers actually read: `&frozen` for groups that froze their
  /// own summarizer, a fingerprint-equal leader's `&frozen` for dedup
  /// followers, null for groups only tree-backend pairs touch.
  const itree::FrozenIntervalSet* frozen_view = nullptr;
  bool freeze_marked = false;

  uint64_t SummaryNodes(bool stream) const {
    return stream ? builder.NodeCount() : tree.NodeCount();
  }
  uint64_t SummaryBytes(bool stream) const {
    return stream ? builder.MemoryBytes() : tree.MemoryBytes();
  }
};

/// Full-identity key: two reports with equal keys are indistinguishable, so
/// dropping the second is outcome-neutral for the global RaceReportSet.
std::tuple<uint64_t, uint64_t, uint64_t> ReportIdentity(const RaceReport& r) {
  return std::make_tuple(
      (static_cast<uint64_t>(r.pc1) << 32) | r.pc2, r.address,
      (static_cast<uint64_t>(r.size1) << 24) | (static_cast<uint64_t>(r.size2) << 16) |
          (static_cast<uint64_t>(r.write1) << 2) | (static_cast<uint64_t>(r.write2) << 1) |
          static_cast<uint64_t>(r.confidence));
}

/// The per-bucket wall-clock governor. One background thread sleeps until
/// the armed deadline; on expiry it sets `breach`, which the builders and
/// checkers poll (one relaxed load) to abandon the bucket promptly. Armed
/// once per bucket; disarmed when the bucket closes so an idle analyzer
/// never wakes it.
class BucketWatchdog {
 public:
  explicit BucketWatchdog(uint32_t deadline_ms)
      : deadline_ms_(deadline_ms), thread_([this] { Run(); }) {}

  ~BucketWatchdog() {
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
      armed_ = false;
    }
    cv_.notify_all();
    thread_.join();
  }

  void Arm() {
    {
      std::lock_guard lock(mutex_);
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(deadline_ms_);
      armed_ = true;
      breach_.store(false, std::memory_order_relaxed);
    }
    cv_.notify_all();
  }

  void Disarm() {
    std::lock_guard lock(mutex_);
    armed_ = false;
  }

  const std::atomic<bool>& breach() const { return breach_; }
  bool breached() const { return breach_.load(std::memory_order_relaxed); }

 private:
  void Run() {
    std::unique_lock lock(mutex_);
    while (!stop_) {
      if (!armed_) {
        cv_.wait(lock);
        continue;
      }
      if (cv_.wait_until(lock, deadline_) == std::cv_status::timeout &&
          armed_ && !stop_) {
        breach_.store(true, std::memory_order_relaxed);
        armed_ = false;  // one breach per Arm(); next bucket re-arms
      }
    }
  }

  const uint32_t deadline_ms_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::chrono::steady_clock::time_point deadline_{};
  bool armed_ = false;
  bool stop_ = false;
  std::atomic<bool> breach_{false};
  std::thread thread_;
};

/// Folds one bucket's record into the global stats - the SINGLE merge path
/// shared by freshly analyzed buckets and journal-replayed ones, which is
/// what makes a resumed run's stats equal a clean run's.
void ApplyBucketRecord(const JournalBucketRecord& rec, AnalysisStats& stats) {
  stats.trees_built += rec.trees_built;
  stats.tree_nodes += rec.tree_nodes;
  stats.raw_events += rec.raw_events;
  stats.label_pairs_checked += rec.label_pairs_checked;
  stats.concurrent_pairs += rec.concurrent_pairs;
  stats.node_pairs_ranged += rec.node_pairs_ranged;
  stats.solver_calls += rec.solver_calls;
  stats.fastpath_hits += rec.fastpath_hits;
  stats.dedup_hits += rec.dedup_hits;
  stats.dedup_bytes_saved += rec.dedup_bytes_saved;
  stats.duplicates_suppressed += rec.duplicates_suppressed;
  stats.solver_bailouts += rec.solver_bailouts;
  stats.segments_skipped += rec.segments_skipped;
  stats.events_missing += rec.events_missing;
  stats.bytes_skipped_read += rec.bytes_skipped_read;
  if (rec.flags & JournalBucketRecord::kDeadlineExceeded) {
    stats.buckets_deadline_exceeded++;
  }
  if (rec.flags & JournalBucketRecord::kMemoryCapped) stats.buckets_memory_capped++;
  if (rec.flags & JournalBucketRecord::kBucketSkipped) stats.buckets_skipped++;
  if (rec.tree_bytes > stats.peak_tree_bytes) {
    stats.peak_tree_bytes = rec.tree_bytes;
    stats.peak_tree_bucket = rec.ordinal;
  }
}

/// Streams one segment's events into the group's summarizer - the streaming
/// builder (use_stream) or the legacy tree - recovering the lockset from
/// mutex events (paper: "synchronization recovery"). `cache` avoids
/// re-decompressing a frame shared by many small segments. With use_dedup,
/// the group's fingerprint folds the segment's canonical decoded stream as a
/// side effect of the same pass.
Status BuildSegment(const TraceStore& store, Group& group,
                    const trace::IntervalMeta& meta, itree::MutexSetTable& mutexes,
                    const AnalysisConfig& config, AnalysisStats& stats,
                    trace::FrameCache* cache, trace::DecodeCursor* cursor) {
  std::vector<itree::MutexId> initial(meta.lockset.begin(), meta.lockset.end());
  itree::MutexSetId cur = mutexes.Intern(std::move(initial));
  if (config.use_dedup) group.fingerprint.BeginSegment(meta.lockset);

  const auto& thread = store.threads()[group.thread_idx];
  uint64_t events = 0;
  uint64_t bytes_skipped = 0;
  const Status s = thread.log->StreamRange(
      meta.data_begin, meta.data_size,
      [&](const trace::RawEvent& e) {
        events++;
        if (config.use_dedup) group.fingerprint.MixEvent(e);
        switch (e.kind) {
          case trace::EventKind::kMutexAcquire:
            cur = mutexes.WithMutex(cur, static_cast<itree::MutexId>(e.addr));
            break;
          case trace::EventKind::kMutexRelease:
            cur = mutexes.WithoutMutex(cur, static_cast<itree::MutexId>(e.addr));
            break;
          case trace::EventKind::kAccess: {
            itree::AccessKey key;
            key.pc = e.pc;
            key.flags = e.flags;
            key.size = e.size;
            key.mutexset = cur;
            if (config.use_stream) {
              group.builder.AddAccess(e.addr, key);
            } else {
              group.tree.AddAccess(e.addr, key);
            }
            break;
          }
          case trace::EventKind::kAccessRun: {
            itree::AccessKey key;
            key.pc = e.pc;
            key.flags = e.flags;
            key.size = e.size;
            key.mutexset = cur;
            if (config.use_symbolic) {
              // A writer-coalesced strided run materializes directly as a
              // symbolic strided interval - no per-element expansion
              // (AddRun's bulk path), but replay-identical to one.
              if (config.use_stream) {
                group.builder.AddRun(e.addr, e.stride, e.count, key);
              } else {
                group.tree.AddRun(e.addr, e.stride, e.count, key);
              }
            } else {
              // Ablation (--no-symbolic): expand the run element by element.
              // AddRun is DEFINED as this loop (its bulk path is a proven
              // optimization), so output is byte-identical either way.
              for (uint64_t i = 0; i < e.count; i++) {
                const uint64_t addr = e.addr + i * e.stride;
                if (config.use_stream) {
                  group.builder.AddAccess(addr, key);
                } else {
                  group.tree.AddAccess(addr, key);
                }
              }
            }
            break;
          }
        }
      },
      cache, &bytes_skipped, cursor);
  stats.raw_events += events;
  stats.bytes_skipped_read += bytes_skipped;
  // Honest accounting for salvage runs: the meta claimed event_count events
  // for this segment; whatever did not stream (holes, truncation) is missing.
  if (s.ok() && meta.event_count > events) {
    stats.events_missing += meta.event_count - events;
  }
  return s;
}

}  // namespace

Analyzer::Analyzer(uint32_t threads, AnalyzerEnv env)
    : threads_(std::max<uint32_t>(1, threads)), env_(std::move(env)) {
  if (!env_.now_ns) {
    env_.now_ns = [] {
      return static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
    };
  }
  if (threads_ > 1) pool_.emplace(threads_);
}

AnalysisResult Analyzer::Analyze(const TraceStore& store,
                                 const AnalysisConfig& config) {
  // The pool is not reentrant; a long-lived caller (the serve daemon) may
  // issue Analyze from several places, so calls queue here.
  std::lock_guard analyze_lock(mutex_);
  AnalysisResult result;
  EnvTimer total_timer(env_.now_ns);
  itree::MutexSetTable mutexes;
  result.stats.integrity = store.integrity();
  // The store's opening discipline decides the analysis's failure policy:
  // a salvage store degrades per segment/bucket with accounting, a strict
  // store aborts on the first defect.
  const bool salvage = store.integrity().salvaged;

  // --- Checkpoint/resume plumbing. The header binds the journal to this
  // exact run: shard key, every result-affecting knob, and a fingerprint of
  // the trace. Resume against anything else is refused outright.
  JournalHeader journal_header;
  journal_header.shard_index = config.shard_index;
  journal_header.shard_count = config.shard_count;
  journal_header.engine = static_cast<uint8_t>(config.engine);
  journal_header.use_sweep = config.use_sweep ? 1 : 0;
  journal_header.use_fastpath = config.use_fastpath ? 1 : 0;
  journal_header.use_stream = config.use_stream ? 1 : 0;
  journal_header.use_symbolic = config.use_symbolic ? 1 : 0;
  journal_header.use_dedup = config.use_dedup ? 1 : 0;
  journal_header.salvage = salvage ? 1 : 0;
  journal_header.solver_step_budget = config.solver_step_budget;
  journal_header.bucket_deadline_ms = config.bucket_deadline_ms;
  journal_header.max_tree_bytes = config.max_tree_bytes;
  journal_header.thread_count = static_cast<uint32_t>(store.thread_count());
  journal_header.total_intervals = store.TotalIntervals();
  journal_header.total_log_bytes = store.TotalLogBytes();

  std::map<uint64_t, JournalBucketRecord> replay;
  std::optional<JournalWriter> journal;
  if (!config.journal_path.empty()) {
    if (config.resume) {
      auto loaded = LoadJournal(config.journal_path);
      if (!loaded.ok()) {
        result.status = loaded.status();
        return result;
      }
      if (!(loaded.value().header == journal_header)) {
        result.status = Status::Invalid(
            "journal does not match this run (shard, analysis knobs, or "
            "trace changed): " + config.journal_path);
        return result;
      }
      result.stats.journal_records_dropped = loaded.value().records_dropped;
      for (auto& rec : loaded.value().records) {
        const uint64_t ordinal = rec.ordinal;
        replay.insert_or_assign(ordinal, std::move(rec));
      }
      auto writer = JournalWriter::Continue(config.journal_path,
                                            loaded.value().valid_bytes, env_.fs);
      if (!writer.ok()) {
        result.status = writer.status();
        return result;
      }
      journal.emplace(std::move(writer.value()));
    } else {
      auto writer =
          JournalWriter::Create(config.journal_path, journal_header, env_.fs);
      if (!writer.ok()) {
        result.status = writer.status();
        return result;
      }
      journal.emplace(std::move(writer.value()));
    }
  }

  // --- 1+2: bucket interval segments by top-level region (root pair offset).
  // Cross-bucket interval pairs are sequential by OSL case 2 on the root
  // pair, so they are pruned wholesale.
  std::map<uint32_t, std::vector<std::pair<uint32_t, const trace::IntervalMeta*>>>
      buckets;
  for (uint32_t t = 0; t < store.thread_count(); t++) {
    for (const auto& meta : store.threads()[t].meta.intervals) {
      result.stats.intervals++;
      if (meta.degradation_level > 0 || meta.degraded_dropped > 0) {
        result.stats.intervals_degraded++;
        result.stats.degraded_events_dropped += meta.degraded_dropped;
      }
      const auto& pairs = meta.label.pairs();
      if (pairs.empty()) {
        if (!salvage) {
          result.status = Status::Corrupt("interval with empty label");
          return result;
        }
        result.stats.integrity.meta_records_rejected++;
        if (result.first_error.ok()) {
          result.first_error = Status::Corrupt("interval with empty label");
        }
        continue;
      }
      buckets[pairs.front().offset].push_back({t, &meta});
    }
  }
  result.stats.buckets = buckets.size();
  uint64_t buckets_attempted = 0;

  // Frame caches live across buckets so consecutive buckets whose segments
  // share a frame (the common case: many tiny top-level regions per frame)
  // reuse the decompression. One bounded LRU cache per builder worker -
  // entries are keyed by (log reader, frame), so a single cache serves every
  // trace thread the worker touches while its byte cap keeps a long analysis
  // from retaining every frame it ever decompressed. Groups are assigned to
  // workers by a stable modulo so the same lane's frames keep hitting the
  // same worker's cache bucket after bucket.
  std::vector<trace::FrameCache> worker_caches(threads_);
  // Streaming-build decode cursors, one per (worker, log reader), persisted
  // across buckets like the frame caches. Buckets iterate in root-offset
  // order - chronological, hence log order - and each group's segments are
  // log-ordered too, so in stream mode the decoder almost always RESUMES
  // where the previous segment stopped instead of re-decoding the frame's
  // delta-coded prefix (quadratic when many small segments share a frame).
  // The legacy arm (--no-stream) keeps the per-segment decode it always had.
  std::vector<std::unordered_map<const void*, trace::DecodeCursor>>
      worker_cursors(threads_);

  // The persistent checker pool (an Analyzer member): buckets are often
  // tiny, and spawning + joining a std::thread batch per bucket (twice: once
  // to build, once to compare) used to cost more than the bucket itself.
  // The pool's workers idle between buckets - and now between whole Analyze
  // calls - and are fed per-bucket work lists; work stealing rebalances
  // skewed pair blocks.
  CheckerPool* pool = pool_ ? &*pool_ : nullptr;

  std::unique_ptr<BucketWatchdog> watchdog;
  if (config.bucket_deadline_ms > 0) {
    watchdog = std::make_unique<BucketWatchdog>(config.bucket_deadline_ms);
  }

  const bool stream = config.use_stream;

  uint64_t bucket_ordinal = ~0ULL;
  for (auto& [root_offset, segments] : buckets) {
    (void)root_offset;
    bucket_ordinal++;
    if (config.shard_count > 1 &&
        bucket_ordinal % config.shard_count != config.shard_index) {
      continue;  // another shard's bucket
    }
    buckets_attempted++;

    // Resume fast path: a bucket whose record survived in the journal is
    // replayed, not re-analyzed. Its races go through the SAME AddReport
    // sequence (record order == the clean run's deterministic merge order)
    // and its stats through the same ApplyBucketRecord fold, so the final
    // report is bit-identical to an uninterrupted run.
    if (const auto it = replay.find(bucket_ordinal); it != replay.end()) {
      for (const RaceReport& race : it->second.races) {
        result.races.AddReport(race);
      }
      ApplyBucketRecord(it->second, result.stats);
      result.stats.buckets_resumed++;
      continue;
    }

    EnvTimer bucket_timer(env_.now_ns);
    JournalBucketRecord rec;
    rec.ordinal = bucket_ordinal;
    AnalysisStats bucket_stats;  // this bucket's additive deltas only

    // --- 3: group by (thread, label); stream logs into per-group trees.
    EnvTimer build_timer(env_.now_ns);
    std::map<std::pair<uint32_t, std::string>, std::unique_ptr<Group>> group_map;
    for (auto& [thread_idx, meta] : segments) {
      auto key = std::make_pair(thread_idx, LabelKey(meta->label));
      auto [it, inserted] = group_map.try_emplace(std::move(key));
      if (inserted) {
        it->second = std::make_unique<Group>();
        it->second->thread_idx = thread_idx;
        it->second->label = meta->label;
      }
      it->second->segments.push_back(meta);
    }
    std::vector<Group*> groups;
    groups.reserve(group_map.size());
    for (auto& [key, group] : group_map) groups.push_back(group.get());

    // Tree construction parallelizes per GROUP without locks: each
    // (thread, label) tree is private to its builder, log readers are
    // stateless, and the mutex-set table is thread-safe. (The paper calls
    // this out as future work - "the tree generation cannot be efficiently
    // parallelized since it would require the use of locks" - which the
    // per-group decomposition sidesteps.)
    //
    // The memory governor runs synchronously inside the build: workers sum
    // the bytes of CLOSED trees into one atomic and add their own group's
    // live footprint per segment, so the cap is enforced while the trees
    // grow, not after the damage is done.
    std::atomic<uint64_t> bucket_segments{0};
    std::atomic<uint64_t> bucket_segment_failures{0};
    std::atomic<uint64_t> closed_tree_bytes{0};
    std::atomic<bool> memory_capped{false};
    if (watchdog) watchdog->Arm();
    {
      std::mutex status_mutex;
      auto build_group = [&](Group* group, AnalysisStats* stats,
                             trace::FrameCache* cache,
                             std::unordered_map<const void*, trace::DecodeCursor>*
                                 cursors) {
        trace::DecodeCursor* cursor =
            stream ? &(*cursors)[store.threads()[group->thread_idx].log.get()]
                   : nullptr;
        // Small segments sharing a frame decode it once, not once per
        // segment, courtesy of the worker's LRU frame cache. A segment that
        // fails to stream poisons only itself in salvage mode (the group's
        // tree keeps every segment that did stream); a strict store aborts
        // the whole analysis, as before.
        for (const trace::IntervalMeta* meta : group->segments) {
          if (memory_capped.load(std::memory_order_relaxed) ||
              (watchdog && watchdog->breached())) {
            return;  // governed bucket: stop feeding the trees
          }
          bucket_segments.fetch_add(1, std::memory_order_relaxed);
          const Status s = BuildSegment(store, *group, *meta, mutexes, config,
                                        *stats, cache, cursor);
          if (!s.ok()) {
            std::lock_guard lock(status_mutex);
            if (result.first_error.ok()) result.first_error = s;
            if (!salvage) {
              if (result.status.ok()) result.status = s;
              return;
            }
            bucket_segment_failures.fetch_add(1, std::memory_order_relaxed);
            stats->segments_skipped++;
          }
          if (config.max_tree_bytes > 0 &&
              closed_tree_bytes.load(std::memory_order_relaxed) +
                      group->SummaryBytes(stream) >
                  config.max_tree_bytes) {
            memory_capped.store(true, std::memory_order_relaxed);
            return;
          }
        }
        closed_tree_bytes.fetch_add(group->SummaryBytes(stream),
                                    std::memory_order_relaxed);
        stats->trees_built++;
        stats->tree_nodes += group->SummaryNodes(stream);
      };

      // Dispatch order for the build only (pair enumeration keeps the
      // deterministic `groups` order): in stream mode groups are walked in
      // (thread, log-position) order so each worker's decode cursor moves
      // forward through its logs instead of ping-ponging between labels.
      std::vector<Group*> build_order = groups;
      if (stream) {
        std::sort(build_order.begin(), build_order.end(),
                  [](const Group* a, const Group* b) {
                    if (a->thread_idx != b->thread_idx) {
                      return a->thread_idx < b->thread_idx;
                    }
                    return a->segments.front()->data_begin <
                           b->segments.front()->data_begin;
                  });
      }

      if (!pool || groups.size() < 2) {
        for (Group* group : build_order) {
          build_group(group, &bucket_stats, &worker_caches[0],
                      &worker_cursors[0]);
          if (!result.status.ok()) break;
        }
      } else {
        // Legacy: block size 1 deals group k to worker k % workers - the
        // stable modulo assignment that keeps each lane's frames hitting the
        // same worker's cache bucket after bucket; stealing only kicks in
        // when a worker runs dry. Stream mode deals CONTIGUOUS log spans
        // instead, so each worker's cursor chains across its whole block.
        const size_t block =
            stream ? (build_order.size() + pool->workers() - 1) / pool->workers()
                   : 1;
        std::vector<AnalysisStats> stats(pool->workers());
        pool->ParallelFor(build_order.size(), block, [&](size_t k, uint32_t w) {
          build_group(build_order[k], &stats[w], &worker_caches[w],
                      &worker_cursors[w]);
        });
        for (const auto& s : stats) {
          bucket_stats.trees_built += s.trees_built;
          bucket_stats.tree_nodes += s.tree_nodes;
          bucket_stats.raw_events += s.raw_events;
          bucket_stats.segments_skipped += s.segments_skipped;
          bucket_stats.events_missing += s.events_missing;
          bucket_stats.bytes_skipped_read += s.bytes_skipped_read;
        }
      }
      if (!result.status.ok()) {
        if (watchdog) watchdog->Disarm();
        return result;
      }
    }
    result.stats.build_seconds += build_timer.ElapsedSeconds();

    // The bucket's full tree footprint: closed trees plus any group a
    // governor abort left open (its bytes are real, and the peak should
    // reflect what the governor actually saw).
    uint64_t bucket_tree_bytes = closed_tree_bytes.load();
    if (memory_capped.load() || (watchdog && watchdog->breached())) {
      bucket_tree_bytes = 0;
      for (Group* group : groups) bucket_tree_bytes += group->SummaryBytes(stream);
    }
    rec.tree_bytes = bucket_tree_bytes;

    // A bucket where not a single segment streamed has nothing to compare;
    // count it and move on (salvage only - strict never gets here damaged).
    const bool bucket_skipped =
        salvage && bucket_segments.load() > 0 &&
        bucket_segment_failures.load() == bucket_segments.load();

    if (bucket_skipped) {
      rec.flags |= JournalBucketRecord::kBucketSkipped;
    } else if (!memory_capped.load() && !(watchdog && watchdog->breached())) {
      // --- 4: concurrency judgment per label pair, then tree comparison.
      // A governed (capped or expired) bucket skips this phase: its trees
      // are incomplete, and comparing half-built trees proves nothing.
      EnvTimer compare_timer(env_.now_ns);
      std::vector<std::pair<Group*, Group*>> concurrent;
      concurrent.reserve(groups.size());
      // Concurrency is judged purely on labels: one OS thread may have hosted
      // two different lanes back to back (worker reuse), and those lanes'
      // intervals still race in the OpenMP abstract machine even though this
      // particular schedule serialized them. Equal labels (the same logical
      // execution point) come out Sequential, so self-pairs prune themselves.
      for (size_t i = 0; i < groups.size(); i++) {
        for (size_t j = i + 1; j < groups.size(); j++) {
          bucket_stats.label_pairs_checked++;
          if (osl::Concurrent(groups[i]->label, groups[j]->label)) {
            concurrent.push_back({groups[i], groups[j]});
          }
        }
      }
      bucket_stats.concurrent_pairs += concurrent.size();

      // Adaptive back-end choice per pair (legacy mode only): freezing two
      // trees and setting up the sweep costs a full in-order walk plus
      // flat-array builds, so it only pays off once the pair holds enough
      // nodes to enumerate. Region-heavy traces produce thousands of tiny
      // trees where the legacy per-node range query wins outright; both
      // back ends emit byte-identical reports, so the cutover is invisible
      // in the output. In streaming mode there is no tree to fall back on -
      // every pair runs on the frozen form, whose builder already paid the
      // sort cost incrementally.
      constexpr size_t kSweepMinNodes = 128;
      std::vector<char> sweep_pair(concurrent.size(), 0);
      size_t pair_nodes_total = 0;
      for (size_t k = 0; k < concurrent.size(); k++) {
        const size_t nodes = concurrent[k].first->SummaryNodes(stream) +
                             concurrent[k].second->SummaryNodes(stream);
        pair_nodes_total += nodes;
        sweep_pair[k] = stream || (config.use_sweep && nodes >= kSweepMinNodes);
      }

      // Freeze step: every group named by a frozen-backend pair gets its
      // immutable flat comparison form (one in-order walk per tree, or the
      // builder's spill merge, parallel on the pool). Groups only tiny
      // legacy pairs touch stay on the tree back end and are never frozen.
      //
      // Repeated-subtrace memoization (use_dedup): groups whose canonical
      // decoded streams fingerprinted identically summarize to identical
      // frozen sets, so only the FIRST such group (the leader, in the
      // deterministic group order) freezes; followers alias its set. The
      // leader partition runs sequentially before the parallel freeze, so
      // who leads never depends on the schedule.
      EnvTimer freeze_timer(env_.now_ns);
      std::vector<Group*> to_freeze;
      for (size_t k = 0; k < concurrent.size(); k++) {
        if (!sweep_pair[k]) continue;
        for (Group* g : {concurrent[k].first, concurrent[k].second}) {
          if (!g->freeze_marked) {
            g->freeze_marked = true;
            to_freeze.push_back(g);
          }
        }
      }
      std::vector<Group*> freeze_leaders;
      std::vector<std::pair<Group*, Group*>> freeze_shares;  // {follower, leader}
      if (config.use_dedup) {
        std::map<SegmentFingerprint, Group*> leader_by_fp;
        for (Group* g : to_freeze) {
          auto [it, inserted] = leader_by_fp.try_emplace(g->fingerprint, g);
          if (inserted) {
            freeze_leaders.push_back(g);
          } else {
            freeze_shares.push_back({g, it->second});
          }
        }
      } else {
        freeze_leaders = to_freeze;
      }
      if (!freeze_leaders.empty()) {
        auto freeze_one = [&](Group* g) {
          g->frozen = stream ? g->builder.Freeze()
                             : itree::FrozenIntervalSet(g->tree);
          g->frozen_view = &g->frozen;
        };
        if (pool && freeze_leaders.size() >= 2) {
          pool->ParallelFor(freeze_leaders.size(), 1, [&](size_t k, uint32_t) {
            freeze_one(freeze_leaders[k]);
          });
        } else {
          for (Group* g : freeze_leaders) freeze_one(g);
        }
        result.stats.freeze_seconds += freeze_timer.ElapsedSeconds();
      }
      for (auto& [follower, leader] : freeze_shares) {
        follower->frozen_view = &leader->frozen;
        bucket_stats.dedup_hits++;
        bucket_stats.dedup_bytes_saved += leader->frozen.MemoryBytes();
      }

      CheckLimits limits;
      limits.solver_step_budget = config.solver_step_budget;
      limits.cancel = watchdog ? &watchdog->breach() : nullptr;
      limits.use_fastpath = config.use_fastpath;
      // Each pair collects its races privately; the merge below walks pairs
      // in index order, so the global report set's content and order do not
      // depend on the checker thread count or schedule. The journal (and
      // with it "resume == clean run") relies on exactly this determinism.
      std::vector<std::vector<RaceReport>> pair_races(concurrent.size());

      // Pair-check memoization (use_dedup): a pair whose ORDERED fingerprint
      // pair was already scheduled this bucket would re-derive the leader
      // pair's exact race list (identical streams, content-addressed mutex
      // ids, deterministic checker), so it skips the check and copies the
      // leader's results after the parallel phase - by reference, no solver
      // work. Ordered because CheckPair(a, b) and CheckPair(b, a) may swap
      // pc1/pc2 in the reports. Computed sequentially: who memoizes whom
      // never depends on the checker schedule.
      constexpr size_t kNoMemo = ~size_t{0};
      std::vector<size_t> memo_src(concurrent.size(), kNoMemo);
      if (config.use_dedup) {
        std::map<std::pair<SegmentFingerprint, SegmentFingerprint>, size_t>
            pair_by_fp;
        for (size_t k = 0; k < concurrent.size(); k++) {
          auto key = std::make_pair(concurrent[k].first->fingerprint,
                                    concurrent[k].second->fingerprint);
          auto [it, inserted] = pair_by_fp.try_emplace(std::move(key), k);
          if (!inserted) memo_src[k] = it->second;
        }
      }

      auto check_pair = [&](size_t k, CheckStats* stats) {
        if (memo_src[k] != kNoMemo) return;  // replayed from the leader below
        auto on_race = [&](const RaceReport& report) {
          pair_races[k].push_back(report);
        };
        if (sweep_pair[k]) {
          CheckFrozenPair(*concurrent[k].first->frozen_view,
                          *concurrent[k].second->frozen_view, mutexes,
                          config.engine, on_race, stats, limits);
        } else {
          CheckTreePair(concurrent[k].first->tree, concurrent[k].second->tree,
                        mutexes, config.engine, on_race, stats, limits);
        }
      };

      // Tiny buckets run on the caller: waking the pool for a handful of
      // near-empty pairs costs more than the comparisons themselves.
      constexpr size_t kPoolMinPairNodes = 4096;
      if (!pool || concurrent.size() < 2 ||
          pair_nodes_total < kPoolMinPairNodes) {
        CheckStats stats;
        for (size_t k = 0; k < concurrent.size(); k++) check_pair(k, &stats);
        bucket_stats.node_pairs_ranged += stats.node_pairs_ranged;
        bucket_stats.solver_calls += stats.solver_calls;
        bucket_stats.fastpath_hits += stats.fastpath_hits;
        bucket_stats.solver_bailouts += stats.solver_bailouts;
        bucket_stats.duplicates_suppressed += stats.duplicates_suppressed;
      } else {
        // Pair blocks a few pairs wide: coarse enough to amortize the deque
        // traffic, fine enough that stealing can still rebalance a bucket
        // whose first blocks hold the big trees.
        std::vector<CheckStats> stats(pool->workers());
        const size_t block =
            std::max<size_t>(1, concurrent.size() / (size_t{4} * pool->workers()));
        pool->ParallelFor(concurrent.size(), block, [&](size_t k, uint32_t w) {
          check_pair(k, &stats[w]);
        });
        for (const auto& s : stats) {
          bucket_stats.node_pairs_ranged += s.node_pairs_ranged;
          bucket_stats.solver_calls += s.solver_calls;
          bucket_stats.fastpath_hits += s.fastpath_hits;
          bucket_stats.solver_bailouts += s.solver_bailouts;
          bucket_stats.duplicates_suppressed += s.duplicates_suppressed;
        }
      }

      // Replay memoized pairs by reference: the leader pair's list IS the
      // follower's (same streams, same checker). Copied after the parallel
      // barrier so the leader's list is complete.
      for (size_t k = 0; k < concurrent.size(); k++) {
        if (memo_src[k] == kNoMemo) continue;
        pair_races[k] = pair_races[memo_src[k]];
        bucket_stats.dedup_hits++;
      }

      // Deterministic merge: pair order, then report order within the pair
      // (the checkers emit each pair's reports in one canonical sorted
      // order). Reports identical to one already merged in this bucket are
      // dropped here - they cannot change the global set - and counted.
      // Only reports that changed the global set (new race or
      // unproven->proven upgrade) enter the journal record - replaying them
      // reproduces the set.
      std::set<std::tuple<uint64_t, uint64_t, uint64_t>> bucket_seen;
      for (const auto& races : pair_races) {
        for (const RaceReport& report : races) {
          if (!bucket_seen.insert(ReportIdentity(report)).second) {
            bucket_stats.duplicates_suppressed++;
            continue;
          }
          if (result.races.AddReport(report) !=
              RaceReportSet::AddOutcome::kDuplicate) {
            rec.races.push_back(report);
          }
        }
      }
      result.stats.compare_seconds += compare_timer.ElapsedSeconds();
    }
    if (watchdog) {
      watchdog->Disarm();
      if (watchdog->breached()) rec.flags |= JournalBucketRecord::kDeadlineExceeded;
    }
    if (memory_capped.load()) rec.flags |= JournalBucketRecord::kMemoryCapped;

    // External memory accounting: the bucket's whole summarization footprint
    // (builders or trees, plus every frozen set actually materialized -
    // dedup followers alias their leader's, so sharing shows up as a real
    // peak reduction). Charged and released here so an injected MemoryScope
    // records the per-bucket high-water mark; never affects the analysis.
    if (env_.mem) {
      uint64_t footprint = bucket_tree_bytes;
      for (Group* g : groups) {
        if (g->frozen_view == &g->frozen) footprint += g->frozen.MemoryBytes();
      }
      (void)env_.mem->Charge(footprint);
      env_.mem->Release(footprint);
    }

    rec.trees_built = bucket_stats.trees_built;
    rec.tree_nodes = bucket_stats.tree_nodes;
    rec.raw_events = bucket_stats.raw_events;
    rec.label_pairs_checked = bucket_stats.label_pairs_checked;
    rec.concurrent_pairs = bucket_stats.concurrent_pairs;
    rec.node_pairs_ranged = bucket_stats.node_pairs_ranged;
    rec.solver_calls = bucket_stats.solver_calls;
    rec.fastpath_hits = bucket_stats.fastpath_hits;
    rec.dedup_hits = bucket_stats.dedup_hits;
    rec.dedup_bytes_saved = bucket_stats.dedup_bytes_saved;
    rec.duplicates_suppressed = bucket_stats.duplicates_suppressed;
    rec.solver_bailouts = bucket_stats.solver_bailouts;
    rec.segments_skipped = bucket_stats.segments_skipped;
    rec.events_missing = bucket_stats.events_missing;
    rec.bytes_skipped_read = bucket_stats.bytes_skipped_read;
    ApplyBucketRecord(rec, result.stats);

    result.stats.max_bucket_seconds =
        std::max(result.stats.max_bucket_seconds, bucket_timer.ElapsedSeconds());

    // Checkpoint: the bucket is durable once its record lands. A failed
    // append costs nothing but resume granularity - the bucket would simply
    // be re-analyzed - so failures degrade (counted) instead of aborting.
    if (journal) {
      EnvTimer journal_timer(env_.now_ns);
      (void)journal->AppendBucket(rec);
      result.stats.journal_seconds += journal_timer.ElapsedSeconds();
    }
  }

  if (journal) {
    result.stats.journal_bytes = journal->bytes_appended();
    result.stats.journal_write_failures = journal->write_failures();
  }
  result.stats.races_unproven = result.races.unproven_count();

  // Salvage policy: partial damage is reported through the stats while the
  // status stays Ok - but an analysis where EVERY attempted bucket failed
  // produced nothing, and pretending otherwise would be dishonest.
  if (salvage && result.status.ok() && buckets_attempted > 0 &&
      result.stats.buckets_skipped == buckets_attempted) {
    result.status = result.first_error.ok()
                        ? Status::Corrupt("no bucket survived salvage analysis")
                        : result.first_error;
  }

  result.stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

AnalysisResult Analyze(const TraceStore& store, const AnalysisConfig& config) {
  Analyzer analyzer(config.threads);
  return analyzer.Analyze(store, config);
}

}  // namespace sword::offline
