#include "offline/checker_pool.h"

#include <algorithm>

namespace sword::offline {

CheckerPool::CheckerPool(uint32_t workers) {
  if (workers == 0) workers = 1;
  queues_.reserve(workers);
  for (uint32_t i = 0; i < workers; i++) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(workers);
  // Worker 0 is the ParallelFor caller; only 1..N-1 are pool threads, but
  // workers() must report N, so thread slot 0 stays empty.
  threads_.resize(1);
  for (uint32_t id = 1; id < workers; id++) {
    threads_.emplace_back([this, id] { WorkerLoop(id); });
  }
}

CheckerPool::~CheckerPool() {
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void CheckerPool::ParallelFor(size_t count, size_t block,
                              FunctionRef<void(size_t, uint32_t)> fn) {
  if (count == 0) return;
  if (block == 0) block = 1;
  const uint32_t n = workers();

  // epoch_ is only written here, and ParallelFor is not reentrant, so the
  // unlocked read is safe; workers read it under control_mu_.
  const uint64_t tag = epoch_ + 1;

  // Deal blocks round-robin: block k to worker k % n, the same stable
  // modulo assignment the old spawn-per-bucket loops used.
  size_t nblocks = 0;
  for (size_t begin = 0; begin < count; begin += block, nblocks++) {
    Block blk{begin, std::min(begin + block, count), tag};
    WorkerQueue& q = *queues_[nblocks % n];
    std::lock_guard<std::mutex> lock(q.mu);
    q.blocks.push_back(blk);
  }

  {
    std::lock_guard<std::mutex> lock(control_mu_);
    epoch_ = tag;
    blocks_remaining_ = nblocks;
    job_ = &fn;
  }
  work_cv_.notify_all();

  // The caller works too, then waits for stolen/dealt blocks still running
  // on other workers.
  DrainAsWorker(0, tag, fn);
  std::unique_lock<std::mutex> lock(control_mu_);
  done_cv_.wait(lock, [&] { return blocks_remaining_ == 0; });
  job_ = nullptr;  // fn dies with this frame; never leave a dangling view
}

void CheckerPool::WorkerLoop(uint32_t id) {
  uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lock(control_mu_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || (epoch_ != seen_epoch && blocks_remaining_ > 0);
    });
    if (shutdown_) return;
    seen_epoch = epoch_;
    const FunctionRef<void(size_t, uint32_t)> fn = *job_;
    lock.unlock();
    DrainAsWorker(id, seen_epoch, fn);
    lock.lock();
  }
}

bool CheckerPool::TakeBlock(uint32_t id, uint64_t epoch, Block* out,
                            bool* stolen) {
  const uint32_t n = workers();
  {
    WorkerQueue& own = *queues_[id];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.blocks.empty()) {
      // A block from a different epoch means this worker raced past its
      // epoch's end; leave it for the workers of that epoch.
      if (own.blocks.front().epoch != epoch) return false;
      *out = own.blocks.front();
      own.blocks.pop_front();
      *stolen = false;
      return true;
    }
  }
  for (uint32_t k = 1; k < n; k++) {
    WorkerQueue& victim = *queues_[(id + k) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.blocks.empty()) continue;
    if (victim.blocks.back().epoch != epoch) return false;
    *out = victim.blocks.back();
    victim.blocks.pop_back();
    *stolen = true;
    return true;
  }
  return false;
}

void CheckerPool::DrainAsWorker(uint32_t id, uint64_t epoch,
                                FunctionRef<void(size_t, uint32_t)> fn) {
  Block blk{0, 0, 0};
  bool stolen = false;
  while (TakeBlock(id, epoch, &blk, &stolen)) {
    for (size_t i = blk.begin; i < blk.end; i++) fn(i, id);
    std::lock_guard<std::mutex> lock(control_mu_);
    blocks_executed_++;
    if (stolen) blocks_stolen_++;
    if (--blocks_remaining_ == 0) done_cv_.notify_all();
  }
}

}  // namespace sword::offline
