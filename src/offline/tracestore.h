// Loading of a SWORD trace directory (one .log + .meta pair per thread) into
// the structures the analyzer walks.
//
// Two opening disciplines:
//  - strict (default): any damage - corrupt frame, missing file, meta record
//    pointing past the log - fails the open. Right for tests and CI.
//  - salvage (StoreOptions::salvage): the production-postmortem mode. Logs
//    are opened with the reader's salvage policy (resynchronize past
//    corruption), metas tolerate a torn tail, missing files are counted
//    instead of fatal, and implausible meta records are rejected
//    individually. Everything recovered is analyzable; everything lost is
//    accounted for in TraceIntegrity.
//
// Meta records are validated against the log with the same distrust applied
// to frame headers: a record whose claimed byte range or event count cannot
// fit the log it points into is rejected (strict: the whole open fails)
// rather than trusted downstream. In salvage mode a range that merely runs
// past the log's end is KEPT - that is the expected shape of a killed run,
// and the reader clamps and accounts for the missing tail at stream time.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "trace/meta.h"
#include "trace/reader.h"

namespace sword::offline {

struct StoreOptions {
  bool salvage = false;
};

/// Aggregate damage report for a store (all threads). All zero / false for a
/// healthy strict open.
struct TraceIntegrity {
  bool salvaged = false;  // store was opened in salvage mode
  // From the log readers (sums over threads; see trace::SalvageStats).
  uint64_t frames_ok = 0;
  uint64_t frames_corrupt = 0;
  uint64_t frames_unaddressable = 0;
  uint64_t gap_frames = 0;
  uint64_t events_dropped_at_record = 0;
  uint64_t bytes_dropped_at_record = 0;
  uint64_t resyncs = 0;
  uint64_t bytes_skipped = 0;
  uint64_t truncated_tail_bytes = 0;
  // From the meta files.
  uint64_t meta_records_dropped = 0;   // lost to a torn meta tail
  uint64_t meta_records_rejected = 0;  // failed plausibility validation
  uint64_t threads_missing_meta = 0;
  uint64_t threads_missing_log = 0;
  // Fatal-signal sealing. A sealed run is NOT damage: the sealer's whole
  // point is that everything recorded up to the crash is trustworthy. The
  // report surfaces it so nobody mistakes a sealed trace for a full run.
  bool crash_sealed = false;   // any thread's meta carries the sealed flag
  uint8_t crash_signo = 0;     // the sealing signal (last nonzero seen)
  uint64_t crash_markers = 0;  // in-band "SWCR" markers across all logs
  // Degradation-governor loss (sums over threads' v5 metas). Unlike a
  // crash seal this IS loss - shed accesses mean races can be missed (never
  // invented) - so it participates in clean().
  uint64_t degraded_dropped = 0;         // accesses shed by the governor
  uint64_t degradation_transitions = 0;  // recorded level changes
  // Static pre-filter accounting (sums over threads' v6 metas). Elided
  // accesses are NOT loss: the writer appended compact footprint receipts
  // that make the decoded stream address-equivalent to the uninstrumented
  // one, so elision never participates in clean(). elided_lost counts
  // elided accesses whose receipts could NOT be written (no open segment at
  // flush time) - that IS loss and is folded into clean().
  uint64_t elided_accesses = 0;
  uint64_t elided_lost = 0;

  bool clean() const {
    return frames_corrupt == 0 && frames_unaddressable == 0 &&
           gap_frames == 0 && resyncs == 0 && bytes_skipped == 0 &&
           truncated_tail_bytes == 0 && events_dropped_at_record == 0 &&
           meta_records_dropped == 0 && meta_records_rejected == 0 &&
           threads_missing_meta == 0 && threads_missing_log == 0 &&
           degraded_dropped == 0 && elided_lost == 0;
  }
};

/// One thread's collected data: its parsed meta file and an open streaming
/// reader over its log file.
struct ThreadTrace {
  uint32_t tid = 0;
  trace::MetaFile meta;
  std::unique_ptr<trace::LogReader> log;
  trace::SalvageStats salvage;  // what salvage found in THIS thread's log
};

class TraceStore {
 public:
  /// Opens pairwise (log_paths[i], meta_paths[i]). An empty meta path means
  /// "known missing" (salvage mode only).
  static Result<TraceStore> Open(const std::vector<std::string>& log_paths,
                                 const std::vector<std::string>& meta_paths,
                                 const StoreOptions& options = {});

  /// Opens every sword_t<k>.{log,meta} pair in `dir`, k = 0,1,2,...
  /// In salvage mode a missing meta (or log) does not stop the enumeration.
  static Result<TraceStore> OpenDir(const std::string& dir,
                                    const StoreOptions& options = {});

  const std::vector<ThreadTrace>& threads() const { return threads_; }
  size_t thread_count() const { return threads_.size(); }

  /// Damage found while opening (all zeroes for a clean trace).
  const TraceIntegrity& integrity() const { return integrity_; }

  uint64_t TotalIntervals() const;
  uint64_t TotalLogBytes() const;  // compressed, on disk

 private:
  std::vector<ThreadTrace> threads_;
  TraceIntegrity integrity_;
};

}  // namespace sword::offline
