// Loading of a SWORD trace directory (one .log + .meta pair per thread) into
// the structures the analyzer walks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "trace/meta.h"
#include "trace/reader.h"

namespace sword::offline {

/// One thread's collected data: its parsed meta file and an open streaming
/// reader over its log file.
struct ThreadTrace {
  uint32_t tid = 0;
  trace::MetaFile meta;
  std::unique_ptr<trace::LogReader> log;
};

class TraceStore {
 public:
  /// Opens pairwise (log_paths[i], meta_paths[i]).
  static Result<TraceStore> Open(const std::vector<std::string>& log_paths,
                                 const std::vector<std::string>& meta_paths);

  /// Opens every sword_t<k>.{log,meta} pair in `dir`, k = 0,1,2,...
  static Result<TraceStore> OpenDir(const std::string& dir);

  const std::vector<ThreadTrace>& threads() const { return threads_; }
  size_t thread_count() const { return threads_.size(); }

  uint64_t TotalIntervals() const;
  uint64_t TotalLogBytes() const;  // compressed, on disk

 private:
  std::vector<ThreadTrace> threads_;
};

}  // namespace sword::offline
