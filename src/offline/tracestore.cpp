#include "offline/tracestore.h"

#include "common/fsutil.h"

namespace sword::offline {

Result<TraceStore> TraceStore::Open(const std::vector<std::string>& log_paths,
                                    const std::vector<std::string>& meta_paths) {
  if (log_paths.size() != meta_paths.size()) {
    return Status::Invalid("log/meta path count mismatch");
  }
  TraceStore store;
  for (size_t i = 0; i < log_paths.size(); i++) {
    ThreadTrace tt;
    auto meta_bytes = ReadFileBytes(meta_paths[i]);
    if (!meta_bytes.ok()) return meta_bytes.status();
    SWORD_RETURN_IF_ERROR(trace::MetaFile::Decode(meta_bytes.value(), &tt.meta));
    tt.tid = tt.meta.thread_id;

    auto reader = trace::LogReader::Open(log_paths[i]);
    if (!reader.ok()) return reader.status();
    tt.log = std::make_unique<trace::LogReader>(std::move(reader).value());
    store.threads_.push_back(std::move(tt));
  }
  return store;
}

Result<TraceStore> TraceStore::OpenDir(const std::string& dir) {
  std::vector<std::string> logs, metas;
  for (uint32_t k = 0;; k++) {
    const std::string log = dir + "/sword_t" + std::to_string(k) + ".log";
    const std::string meta = dir + "/sword_t" + std::to_string(k) + ".meta";
    if (!FileExists(log) || !FileExists(meta)) break;
    logs.push_back(log);
    metas.push_back(meta);
  }
  if (logs.empty()) return Status::NotFound("no sword_t*.log traces in " + dir);
  return Open(logs, metas);
}

uint64_t TraceStore::TotalIntervals() const {
  uint64_t total = 0;
  for (const auto& t : threads_) total += t.meta.intervals.size();
  return total;
}

uint64_t TraceStore::TotalLogBytes() const {
  uint64_t total = 0;
  for (const auto& t : threads_) {
    // Sum of on-disk frame sizes == logical file size; approximate with the
    // reader's knowledge of frames.
    total += t.log->total_logical_bytes();
  }
  return total;
}

}  // namespace sword::offline
