#include "offline/tracestore.h"

#include <algorithm>
#include <cstddef>

#include "common/fsutil.h"
#include "trace/event.h"

namespace sword::offline {

namespace {

void FoldSalvage(const trace::SalvageStats& s, TraceIntegrity* out) {
  out->frames_ok += s.frames_ok;
  out->frames_corrupt += s.frames_corrupt;
  out->frames_unaddressable += s.frames_unaddressable;
  out->gap_frames += s.gap_frames;
  out->resyncs += s.resyncs;
  out->bytes_skipped += s.bytes_skipped;
  out->truncated_tail_bytes += s.truncated_tail_bytes;
  out->crash_markers += s.crash_markers;
  if (s.crash_signo != 0) out->crash_signo = s.crash_signo;
}

/// Plausibility check for one meta record against the log it addresses.
/// `log_logical` is the log's trusted logical byte count (decompressed).
/// A record that merely runs past the end of the log is implausible in
/// strict mode but EXPECTED in salvage mode (a killed run's last interval);
/// every other failure is an implausible claim regardless of mode.
Status ValidateRecord(const trace::IntervalMeta& m, uint8_t log_format,
                      uint64_t log_logical, bool salvage) {
  if (m.data_begin > UINT64_MAX - m.data_size) {
    return Status::Corrupt("meta record byte range overflows");
  }
  if (!salvage && m.data_begin + m.data_size > log_logical) {
    return Status::Corrupt("meta record addresses past the end of the log");
  }
  if (log_format == trace::kTraceFormatV1) {
    if (m.data_size % trace::kEventBytes != 0) {
      return Status::Corrupt("v1 meta record size not event-aligned");
    }
    // Old (version-1) records carry no event count; 0 means "unknown".
    if (m.event_count != 0 && m.event_count != m.data_size / trace::kEventBytes) {
      return Status::Corrupt("v1 meta record event count mismatches size");
    }
  } else {
    // v2/v3 events are variable-size, at least 1 byte and at most the
    // format's per-event bound. event_count counts ENCODED events (a v3
    // run counts once), matching the writer's accounting.
    const uint64_t max_event = log_format >= trace::kTraceFormatV3
                                   ? trace::kMaxEventBytesV3
                                   : trace::kMaxEventBytesV2;
    if (m.event_count != 0) {
      if (m.event_count > m.data_size ||
          m.event_count > UINT64_MAX / max_event ||
          m.event_count * max_event < m.data_size) {
        return Status::Corrupt("meta record event count implausible for size");
      }
    } else if (m.data_size != 0) {
      return Status::Corrupt("meta record has bytes but no events");
    }
  }
  return Status::Ok();
}

}  // namespace

Result<TraceStore> TraceStore::Open(const std::vector<std::string>& log_paths,
                                    const std::vector<std::string>& meta_paths,
                                    const StoreOptions& options) {
  if (log_paths.size() != meta_paths.size()) {
    return Status::Invalid("log/meta path count mismatch");
  }
  TraceStore store;
  store.integrity_.salvaged = options.salvage;
  for (size_t i = 0; i < log_paths.size(); i++) {
    ThreadTrace tt;

    // --- meta ---
    bool have_meta = false;
    uint64_t meta_events_dropped = 0;
    uint64_t meta_bytes_dropped = 0;
    if (meta_paths[i].empty() || !FileExists(meta_paths[i])) {
      if (!options.salvage) {
        return Status::NotFound("missing meta file: " +
                                (meta_paths[i].empty() ? "(none)" : meta_paths[i]));
      }
      store.integrity_.threads_missing_meta++;
    } else {
      auto meta_bytes = ReadFileBytes(meta_paths[i]);
      if (!meta_bytes.ok()) {
        if (!options.salvage) return meta_bytes.status();
        store.integrity_.threads_missing_meta++;
      } else {
        uint64_t records_dropped = 0;
        const Status ds = trace::MetaFile::Decode(
            meta_bytes.value(), &tt.meta, options.salvage, &records_dropped);
        if (!ds.ok()) {
          if (!options.salvage) return ds;
          // Undecodable even with a tolerant parser (bad magic, torn
          // header): treat as missing and fall back to an empty meta.
          tt.meta = trace::MetaFile{};
          store.integrity_.threads_missing_meta++;
        } else {
          have_meta = true;
          store.integrity_.meta_records_dropped += records_dropped;
          meta_events_dropped = tt.meta.events_dropped;
          meta_bytes_dropped = tt.meta.bytes_dropped;
          if (tt.meta.crash_sealed) {
            store.integrity_.crash_sealed = true;
            if (tt.meta.seal_signo != 0) {
              store.integrity_.crash_signo = tt.meta.seal_signo;
            }
          }
          store.integrity_.degraded_dropped += tt.meta.degraded_dropped;
          store.integrity_.degradation_transitions += tt.meta.transitions.size();
          store.integrity_.elided_accesses += tt.meta.elided_accesses;
          store.integrity_.elided_lost += tt.meta.elided_lost;
        }
      }
    }
    tt.tid = have_meta ? tt.meta.thread_id : static_cast<uint32_t>(i);

    // --- log ---
    if (!FileExists(log_paths[i])) {
      if (!options.salvage) {
        return Status::NotFound("missing log file: " + log_paths[i]);
      }
      // No events to analyze for this thread; its meta alone is useless.
      store.integrity_.threads_missing_log++;
      continue;
    }
    trace::SalvagePolicy policy;
    policy.enabled = options.salvage;
    auto reader = trace::LogReader::Open(log_paths[i], policy);
    if (!reader.ok()) {
      if (!options.salvage) return reader.status();
      store.integrity_.threads_missing_log++;
      continue;
    }
    tt.log = std::make_unique<trace::LogReader>(std::move(reader).value());
    tt.salvage = tt.log->salvage_stats();
    FoldSalvage(tt.salvage, &store.integrity_);
    // Record-time drops are visible twice: as gap frames in the log and as
    // totals in the meta's v3 header. The meta is a superset (drops at the
    // very tail of a run have no following frame to anchor a gap marker),
    // so take the larger of the two per thread.
    store.integrity_.events_dropped_at_record +=
        std::max(tt.salvage.events_dropped_at_record, meta_events_dropped);
    store.integrity_.bytes_dropped_at_record +=
        std::max(tt.salvage.bytes_dropped_at_record, meta_bytes_dropped);

    // --- meta-vs-log validation ---
    const uint64_t log_logical = tt.log->total_logical_bytes();
    auto& records = tt.meta.intervals;
    for (size_t r = 0; r < records.size();) {
      const Status vs = ValidateRecord(records[r], tt.meta.log_format,
                                       log_logical, options.salvage);
      if (vs.ok()) {
        r++;
        continue;
      }
      if (!options.salvage) {
        return Status::Corrupt(meta_paths[i] + " record " + std::to_string(r) +
                               ": " + vs.message());
      }
      records.erase(records.begin() + static_cast<ptrdiff_t>(r));
      store.integrity_.meta_records_rejected++;
    }

    store.threads_.push_back(std::move(tt));
  }
  return store;
}

Result<TraceStore> TraceStore::OpenDir(const std::string& dir,
                                       const StoreOptions& options) {
  std::vector<std::string> logs, metas;
  for (uint32_t k = 0;; k++) {
    const std::string log = dir + "/sword_t" + std::to_string(k) + ".log";
    const std::string meta = dir + "/sword_t" + std::to_string(k) + ".meta";
    const bool have_log = FileExists(log);
    const bool have_meta = FileExists(meta);
    if (options.salvage ? (!have_log && !have_meta) : (!have_log || !have_meta)) {
      break;
    }
    logs.push_back(log);
    metas.push_back(meta);
  }
  if (logs.empty()) return Status::NotFound("no sword_t*.log traces in " + dir);
  return Open(logs, metas, options);
}

uint64_t TraceStore::TotalIntervals() const {
  uint64_t total = 0;
  for (const auto& t : threads_) total += t.meta.intervals.size();
  return total;
}

uint64_t TraceStore::TotalLogBytes() const {
  uint64_t total = 0;
  for (const auto& t : threads_) {
    // Sum of on-disk frame sizes == logical file size; approximate with the
    // reader's knowledge of frames.
    total += t.log->total_logical_bytes();
  }
  return total;
}

}  // namespace sword::offline
