// The analysis progress journal: what makes `sword-offline` survivable.
//
// The offline phase is where SWORD spends hours on production traces
// (Table III), and before this journal existed a SIGKILL or OOM at hour
// three discarded every bucket already analyzed. The journal checkpoints
// analysis progress at the natural unit - the bucket (top-level region;
// no race spans buckets) - so `sword-offline --resume` replays completed
// buckets from disk and re-analyzes only what is missing, producing a
// report bit-identical to an uninterrupted run.
//
// On-disk shape (one file per shard, `sword_analysis_<I>of<N>.journal`
// inside the trace directory):
//
//   header record   - written ONCE via fsutil write-temp+rename (atomic:
//                     a crash during creation leaves either no journal or
//                     a complete header, never a torn one). Carries the
//                     shard key, the result-affecting analysis knobs, and
//                     a fingerprint of the trace, so a journal can never
//                     be replayed against the wrong trace or config.
//   bucket records  - APPENDED after each bucket completes. Each is
//                     self-framed like a log frame (magic | size | crc64 |
//                     payload): a record torn by mid-append death fails
//                     its checksum, is dropped on load, and its bucket is
//                     simply re-analyzed. Every record carries the bucket
//                     ordinal, the races that bucket contributed (in the
//                     analyzer's deterministic merge order), its governor
//                     flags, and its additive stats deltas.
//
// The journal is an optimization, never a source of wrong answers: any
// subset of valid records resumes correctly, because the analyzer walks
// buckets in ordinal order and replays or re-analyzes each independently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/fsutil.h"
#include "common/race_report.h"
#include "common/status.h"

namespace sword::offline {

constexpr uint32_t kJournalHeaderMagic = 0x53574148;  // "SWAH"
constexpr uint32_t kJournalBucketMagic = 0x53574142;  // "SWAB"
// v2: header binds use_sweep/use_fastpath; bucket records carry
// fastpath_hits and duplicates_suppressed. v3: header binds the store's
// salvage policy - a salvage analysis skips damaged segments with
// accounting, so replaying its buckets under a strict open (or vice versa)
// would silently diverge. v4: header binds the streaming-pipeline knobs
// (use_stream/use_symbolic/use_dedup) - their race output is byte-identical
// but their stats are not, so replaying across modes would fold the wrong
// deltas; bucket records carry dedup_hits/dedup_bytes_saved. Older journals
// are refused (their stats cannot be folded faithfully into a current run).
constexpr uint8_t kJournalVersion = 4;

/// Identifies what a journal belongs to: shard key + the analysis knobs
/// that change results + a cheap fingerprint of the trace itself. Resume
/// refuses a journal whose header does not match the current run exactly -
/// mixing configs would make "resume equals clean" silently false.
struct JournalHeader {
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
  uint8_t engine = 0;                 // ilp::OverlapEngine as int
  uint8_t use_sweep = 1;              // frozen-sweep comparison path
  uint8_t use_fastpath = 1;           // closed-form overlap fast paths
  uint8_t use_stream = 1;             // decoder-to-frozen streaming build
  uint8_t use_symbolic = 1;           // symbolic strided-run intervals
  uint8_t use_dedup = 1;              // repeated-subtrace memoization
  uint8_t salvage = 0;                // store opened with salvage policy
  uint64_t solver_step_budget = 0;
  uint64_t bucket_deadline_ms = 0;
  uint64_t max_tree_bytes = 0;
  // Trace fingerprint.
  uint32_t thread_count = 0;
  uint64_t total_intervals = 0;
  uint64_t total_log_bytes = 0;

  friend bool operator==(const JournalHeader&, const JournalHeader&) = default;
};

/// One completed bucket: its contributed races and additive stat deltas.
struct JournalBucketRecord {
  uint64_t ordinal = 0;

  // Governor outcome flags.
  static constexpr uint8_t kDeadlineExceeded = 1 << 0;
  static constexpr uint8_t kMemoryCapped = 1 << 1;
  static constexpr uint8_t kBucketSkipped = 1 << 2;  // salvage: no segment streamed
  uint8_t flags = 0;

  /// Races this bucket newly added to (or upgraded in) the global report
  /// set, in the analyzer's deterministic merge order. Replaying them with
  /// RaceReportSet::AddReport in record order reproduces the clean run's
  /// set exactly - content, order, and confidence tiers.
  std::vector<RaceReport> races;

  // Additive AnalysisStats deltas for this bucket.
  uint64_t trees_built = 0;
  uint64_t tree_nodes = 0;
  uint64_t raw_events = 0;
  uint64_t label_pairs_checked = 0;
  uint64_t concurrent_pairs = 0;
  uint64_t node_pairs_ranged = 0;
  uint64_t solver_calls = 0;
  uint64_t fastpath_hits = 0;
  uint64_t dedup_hits = 0;
  uint64_t dedup_bytes_saved = 0;
  uint64_t duplicates_suppressed = 0;
  uint64_t solver_bailouts = 0;
  uint64_t segments_skipped = 0;
  uint64_t events_missing = 0;
  uint64_t bytes_skipped_read = 0;
  uint64_t tree_bytes = 0;  // bucket tree footprint (drives peak accounting)
};

struct JournalLoadResult {
  JournalHeader header;
  std::vector<JournalBucketRecord> records;  // valid records, file order
  uint64_t valid_bytes = 0;       // prefix length covered by valid records
  uint64_t records_dropped = 0;   // torn/corrupt tail records discarded
};

/// Canonical journal path for a shard, under the trace directory.
std::string JournalPathFor(const std::string& trace_dir, uint32_t shard_index,
                           uint32_t shard_count);

/// Compact wire form of a race list (the journal's bucket-record layout),
/// shared with the serve ledger so both sides replay races byte-for-byte
/// through one serializer.
void SerializeRaceList(const std::vector<RaceReport>& races, ByteWriter& w);
Status ParseRaceList(ByteReader& r, uint64_t payload_bound,
                     std::vector<RaceReport>* out);

/// Appends bucket records to a journal file. Append failures are counted,
/// not fatal: a bucket whose record never landed is re-analyzed on resume,
/// so a full disk degrades checkpoint granularity, not correctness.
class JournalWriter {
 public:
  /// Starts a fresh journal: atomically writes the header (temp + rename),
  /// truncating any previous journal at `path`. `backend` is the write
  /// layer (null = real filesystem); the serve daemon injects a fault
  /// backend here so ENOSPC-on-journal chaos is reproducible.
  static Result<JournalWriter> Create(const std::string& path,
                                      const JournalHeader& header,
                                      FileBackend* backend = nullptr);

  /// Continues an existing journal after a successful Load: truncates the
  /// torn tail (if any) at `valid_bytes`, then appends after it.
  static Result<JournalWriter> Continue(const std::string& path,
                                        uint64_t valid_bytes,
                                        FileBackend* backend = nullptr);

  Status AppendBucket(const JournalBucketRecord& record);

  uint64_t bytes_appended() const { return bytes_appended_; }
  uint64_t write_failures() const { return write_failures_; }
  const std::string& path() const { return path_; }

 private:
  JournalWriter(std::string path, FileBackend* backend)
      : path_(std::move(path)), backend_(backend) {}

  std::string path_;
  FileBackend* backend_;  // never null after Create/Continue
  uint64_t bytes_appended_ = 0;
  uint64_t write_failures_ = 0;
};

/// Parses a journal file: header first, then bucket records until the file
/// ends or a record fails its frame checks (torn tail - everything after is
/// dropped and counted). Fails only when the file is missing/unreadable or
/// the HEADER is invalid; damaged bucket records degrade, not fail.
Result<JournalLoadResult> LoadJournal(const std::string& path);

}  // namespace sword::offline
