// The SWORD offline analysis driver (paper SIII-B).
//
// Pipeline, per the paper:
//   1. read meta files; recover the concurrency structure from the stored
//      offset-span labels (synchronization recovery);
//   2. bucket barrier intervals by top-level region - intervals of different
//      top-level regions are provably sequential (the root label pair
//      orders them, OSL case 2), so only intra-bucket pairs are candidates;
//   3. per bucket: stream each interval's events from the log files
//      (decompressing one frame at a time), recover locksets from the
//      acquire/release events, and build one summarizing red-black interval
//      tree per (thread, label);
//   4. for every CONCURRENT label pair (OSL judgment - no happens-before,
//      hence no Fig. 1 masking), compare the two trees with the exact
//      ILP-backed overlap check;
//   5. deduplicate races by source-location pair.
//
// Buckets are processed one at a time so resident memory is bounded by the
// largest top-level region, not the whole execution; within a bucket, tree
// comparisons fan out across `threads` checker threads (the paper's
// distributed mode - Table III's MT column is the per-bucket maximum).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>

#include "common/fsutil.h"
#include "common/memtrack.h"
#include "common/race_report.h"
#include "common/status.h"
#include "ilp/overlap.h"
#include "offline/checker_pool.h"
#include "offline/tracestore.h"

namespace sword::offline {

struct AnalysisConfig {
  ilp::OverlapEngine engine = ilp::OverlapEngine::kDiophantine;
  uint32_t threads = 1;  // checker threads for tree-pair comparisons

  /// Compare frozen flat interval sets with the sort-merge sweep (or the
  /// galloping fallback) instead of per-node QueryRange on the pointer
  /// trees. Off = the legacy path (--no-sweep), kept for A/B comparison;
  /// the confirmed-race output is byte-identical either way.
  bool use_sweep = true;
  /// Decide the dominant access shapes with the closed-form fast paths and
  /// keep the general engine for the rest. Off = every surviving pair goes
  /// to the engine (--no-fastpath); output is byte-identical either way.
  bool use_fastpath = true;
  /// Build each (thread, label) group's frozen flat set directly from the
  /// decoder's event stream (sorted-append + out-of-order spill buffer),
  /// never materializing the red-black tree. Off = the legacy tree build
  /// (--no-stream), kept for A/B ablation; the confirmed-race output is
  /// byte-identical either way.
  bool use_stream = true;
  /// Carry v3 kAccessRun events as symbolic (base, stride, count) intervals
  /// end to end - one summarized node per run, closed-form overlap checks.
  /// Off = runs are expanded element by element at decode time
  /// (--no-symbolic); output is byte-identical either way.
  bool use_symbolic = true;
  /// Share one frozen set among same-bucket groups whose canonical decoded
  /// event streams are identical (fingerprint match), and replay pair
  /// verdicts for already-checked fingerprint pairs by reference. Off =
  /// every group builds and every pair is checked (--no-dedup); output is
  /// byte-identical either way.
  bool use_dedup = true;

  // Distributed sharding (the paper's cluster mode: "we distributed the
  // offline analysis across a cluster of nodes"). Buckets - top-level
  // regions - are the unit of distribution because no race can span two of
  // them; shard i of n analyzes buckets with ordinal % n == i, and the
  // union of all shards' reports equals the full analysis.
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;

  // --- Resource governor (all 0 = ungoverned, the historical behavior).
  // Production analyses run for hours; these caps guarantee that one
  // pathological bucket degrades the answer (with exact accounting in
  // AnalysisStats and the report's integrity section) instead of hanging
  // or OOM-killing the whole run.
  /// Wall-clock budget per bucket. On breach the watchdog aborts ONLY that
  /// bucket (races already found stand) and counts it in
  /// `buckets_deadline_exceeded`.
  uint32_t bucket_deadline_ms = 0;
  /// Cap on one bucket's summarized interval-tree footprint. On breach the
  /// bucket is abandoned mid-build and counted in `buckets_memory_capped`.
  uint64_t max_tree_bytes = 0;
  /// Per-overlap-query solver step budget; an exhausted query reports the
  /// node pair as an UNPROVEN race (RaceConfidence::kUnproven) - sound,
  /// never a silent drop. 0 = unlimited.
  uint64_t solver_step_budget = 0;

  // --- Checkpoint/resume (see offline/journal.h).
  /// When non-empty, append a progress record to this journal after every
  /// completed bucket. Append failures degrade (counted in stats), never
  /// abort the analysis.
  std::string journal_path;
  /// Replay completed buckets from `journal_path` instead of re-analyzing
  /// them, then continue journaling new buckets. The journal's header must
  /// match this run's shard key, governor knobs, and trace fingerprint.
  bool resume = false;
};

struct AnalysisStats {
  uint64_t intervals = 0;            // meta records analyzed
  uint64_t buckets = 0;              // top-level regions
  uint64_t trees_built = 0;          // (thread, label) groups
  uint64_t tree_nodes = 0;           // summarized interval nodes
  uint64_t raw_events = 0;           // events streamed from logs
  uint64_t label_pairs_checked = 0;  // OSL concurrency judgments
  uint64_t concurrent_pairs = 0;     // pairs that proceeded to tree compare
  uint64_t node_pairs_ranged = 0;
  uint64_t solver_calls = 0;    // general-engine intersection decisions
  uint64_t fastpath_hits = 0;   // closed-form intersection decisions
  /// Repeated-subtrace memoization (use_dedup): groups that reused another
  /// group's frozen set because their canonical event streams fingerprinted
  /// identically, and the summarized-node bytes that sharing avoided.
  uint64_t dedup_hits = 0;
  uint64_t dedup_bytes_saved = 0;
  /// Identical (pc, pc, address) reports dropped before the deterministic
  /// merge (summarized runs re-colliding across node pairs).
  uint64_t duplicates_suppressed = 0;
  double build_seconds = 0;
  double freeze_seconds = 0;  // building frozen flat sets from the trees
  double compare_seconds = 0;
  double total_seconds = 0;
  /// Longest single-bucket time: the paper's distributed-analysis (MT)
  /// latency proxy - with one node per region, the slowest region bounds
  /// the wall clock.
  double max_bucket_seconds = 0;
  /// Largest per-bucket tree footprint. Tracked as a per-bucket high-water
  /// mark (accumulated during the build, reset at bucket close) so the
  /// governor can act on it mid-bucket; `peak_tree_bucket` names the
  /// offending bucket ordinal.
  uint64_t peak_tree_bytes = 0;
  uint64_t peak_tree_bucket = 0;

  // Resource-governor accounting (see AnalysisConfig). A governed bucket is
  // degraded honestly: counted here and surfaced in the report's integrity
  // section, while the process exits normally.
  uint64_t buckets_deadline_exceeded = 0;  // aborted by the wall-clock watchdog
  uint64_t buckets_memory_capped = 0;      // abandoned at the tree-byte cap
  uint64_t solver_bailouts = 0;   // overlap queries whose step budget ran out
  uint64_t races_unproven = 0;    // final reports tagged kUnproven

  // Checkpoint/resume accounting (see offline/journal.h).
  uint64_t buckets_resumed = 0;          // replayed from the journal
  uint64_t journal_records_dropped = 0;  // torn-tail records ignored on resume
  uint64_t journal_bytes = 0;            // journal bytes appended by this run
  uint64_t journal_write_failures = 0;   // appends that failed (bucket re-analyzed on resume)
  double journal_seconds = 0;            // wall clock spent appending records

  // Degraded-analysis accounting: what the analysis could NOT use, so a
  // salvage run reports races from the surviving data without pretending
  // the data was whole. All zero on a clean trace.
  uint64_t segments_skipped = 0;    // meta records whose events failed to stream
  uint64_t buckets_skipped = 0;     // regions where every segment failed
  uint64_t events_missing = 0;      // claimed by meta but never streamed
  uint64_t bytes_skipped_read = 0;  // logical bytes the reader skipped (holes)
  /// Barrier intervals traced under a non-zero degradation-governor level
  /// (or with shed accesses). Races found in them are real; their event
  /// lists may be subsets, so absence of a race there is not proof.
  uint64_t intervals_degraded = 0;
  uint64_t degraded_events_dropped = 0;  // sum of those intervals' shed counts
  TraceIntegrity integrity;         // store-open damage, copied at Analyze()
};

struct AnalysisResult {
  /// Strict store: first failure (analysis aborted there). Salvage store:
  /// Ok unless EVERY bucket failed - partial damage degrades the stats, not
  /// the status.
  Status status;
  /// First per-segment/per-bucket failure in a salvage run, preserved even
  /// when `status` stays Ok. Ok when nothing failed.
  Status first_error;
  RaceReportSet races;
  AnalysisStats stats;
};

/// Injected environment for an Analyzer. Both hooks default to the real
/// thing; the serve daemon injects a fault backend (deterministic ENOSPC on
/// journal appends) and a controllable clock (deterministic stats timing in
/// tests). Neither hook can change WHAT races are found - only how progress
/// is persisted and how elapsed time is measured.
struct AnalyzerEnv {
  /// Write layer for journal creation/appends. Null = real filesystem.
  FileBackend* fs = nullptr;
  /// Monotonic nanosecond clock for the stats timers. Null = steady_clock.
  std::function<uint64_t()> now_ns;
  /// Optional ledger charged with each bucket's summarization footprint
  /// (builder or tree bytes plus frozen-set bytes) and released at bucket
  /// close. Null = no external accounting. Lets benchmarks compare the
  /// legacy and streaming paths' peaks apples-to-apples; charging NEVER
  /// changes what races are found (cap failures are ignored here - the
  /// analysis governor is `max_tree_bytes`).
  MemoryScope* mem = nullptr;
};

/// A reentrant analysis engine: owns the persistent checker pool so a
/// long-lived caller (the serve daemon) pays thread spawn/join once, not per
/// run. One Analyzer may be shared by many runs; Analyze() calls are
/// serialized internally because CheckerPool::ParallelFor is not reentrant.
/// No global or static state - two Analyzer instances never interfere.
class Analyzer {
 public:
  explicit Analyzer(uint32_t threads = 1, AnalyzerEnv env = {});

  Analyzer(const Analyzer&) = delete;
  Analyzer& operator=(const Analyzer&) = delete;

  /// Runs the full pipeline on `store`. `config.threads` is ignored in favor
  /// of the pool this Analyzer was built with. Thread-safe; concurrent calls
  /// queue on an internal mutex.
  AnalysisResult Analyze(const TraceStore& store,
                         const AnalysisConfig& config = {});

  uint32_t threads() const { return threads_; }

 private:
  const uint32_t threads_;
  AnalyzerEnv env_;
  std::mutex mutex_;  // serializes Analyze: the pool is not reentrant
  // Persistent across Analyze calls (the expensive part: thread start/join).
  // Frame caches stay per-call: they key on log-reader addresses, which a
  // freed store's allocator may hand to the next store.
  std::optional<CheckerPool> pool_;
};

/// One-shot convenience used by sword-offline: builds a throwaway Analyzer
/// with `config.threads` workers. Byte-identical output to the class form.
AnalysisResult Analyze(const TraceStore& store, const AnalysisConfig& config = {});

}  // namespace sword::offline
