// The SWORD offline analysis driver (paper SIII-B).
//
// Pipeline, per the paper:
//   1. read meta files; recover the concurrency structure from the stored
//      offset-span labels (synchronization recovery);
//   2. bucket barrier intervals by top-level region - intervals of different
//      top-level regions are provably sequential (the root label pair
//      orders them, OSL case 2), so only intra-bucket pairs are candidates;
//   3. per bucket: stream each interval's events from the log files
//      (decompressing one frame at a time), recover locksets from the
//      acquire/release events, and build one summarizing red-black interval
//      tree per (thread, label);
//   4. for every CONCURRENT label pair (OSL judgment - no happens-before,
//      hence no Fig. 1 masking), compare the two trees with the exact
//      ILP-backed overlap check;
//   5. deduplicate races by source-location pair.
//
// Buckets are processed one at a time so resident memory is bounded by the
// largest top-level region, not the whole execution; within a bucket, tree
// comparisons fan out across `threads` checker threads (the paper's
// distributed mode - Table III's MT column is the per-bucket maximum).
#pragma once

#include <cstdint>

#include "common/race_report.h"
#include "common/status.h"
#include "ilp/overlap.h"
#include "offline/tracestore.h"

namespace sword::offline {

struct AnalysisConfig {
  ilp::OverlapEngine engine = ilp::OverlapEngine::kDiophantine;
  uint32_t threads = 1;  // checker threads for tree-pair comparisons

  // Distributed sharding (the paper's cluster mode: "we distributed the
  // offline analysis across a cluster of nodes"). Buckets - top-level
  // regions - are the unit of distribution because no race can span two of
  // them; shard i of n analyzes buckets with ordinal % n == i, and the
  // union of all shards' reports equals the full analysis.
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
};

struct AnalysisStats {
  uint64_t intervals = 0;            // meta records analyzed
  uint64_t buckets = 0;              // top-level regions
  uint64_t trees_built = 0;          // (thread, label) groups
  uint64_t tree_nodes = 0;           // summarized interval nodes
  uint64_t raw_events = 0;           // events streamed from logs
  uint64_t label_pairs_checked = 0;  // OSL concurrency judgments
  uint64_t concurrent_pairs = 0;     // pairs that proceeded to tree compare
  uint64_t node_pairs_ranged = 0;
  uint64_t solver_calls = 0;
  double build_seconds = 0;
  double compare_seconds = 0;
  double total_seconds = 0;
  /// Longest single-bucket time: the paper's distributed-analysis (MT)
  /// latency proxy - with one node per region, the slowest region bounds
  /// the wall clock.
  double max_bucket_seconds = 0;
  uint64_t peak_tree_bytes = 0;  // largest per-bucket tree footprint

  // Degraded-analysis accounting: what the analysis could NOT use, so a
  // salvage run reports races from the surviving data without pretending
  // the data was whole. All zero on a clean trace.
  uint64_t segments_skipped = 0;    // meta records whose events failed to stream
  uint64_t buckets_skipped = 0;     // regions where every segment failed
  uint64_t events_missing = 0;      // claimed by meta but never streamed
  uint64_t bytes_skipped_read = 0;  // logical bytes the reader skipped (holes)
  TraceIntegrity integrity;         // store-open damage, copied at Analyze()
};

struct AnalysisResult {
  /// Strict store: first failure (analysis aborted there). Salvage store:
  /// Ok unless EVERY bucket failed - partial damage degrades the stats, not
  /// the status.
  Status status;
  /// First per-segment/per-bucket failure in a salvage run, preserved even
  /// when `status` stays Ok. Ok when nothing failed.
  Status first_error;
  RaceReportSet races;
  AnalysisStats stats;
};

AnalysisResult Analyze(const TraceStore& store, const AnalysisConfig& config = {});

}  // namespace sword::offline
