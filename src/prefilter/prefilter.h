// Static pre-filter: prove worksharing sites race-free ahead of time and
// elide their per-access instrumentation cost (ISSUE 10; LLOV and "Compiling
// Away the Overhead of Race Detection" motivate the analysis).
//
// Lifecycle per For-callsite (summarize -> prove -> suppress):
//
//  1. OBSERVE. The first complete execution of a worksharing loop records,
//     per lane and per (pc, flags, size) access slot, whether the address
//     stream fits the affine model
//         addr(i, k) = B + i*delta + k*s,   i in [begin,end), k in [0,c)
//     (i = loop iteration, k = the slot's k-th access within one iteration).
//     Any deviation - irregular strides, conditional accesses, bulk ranges,
//     synchronization inside the loop body - permanently rejects the site.
//
//  2. PROVE. When every lane finished observing, the per-lane fits are merged
//     into one global model per slot and every raceable model pair (at least
//     one write, not both atomic) is checked for cross-lane disjointness with
//     the existing exact engines (ilp::IntersectBounded, Diophantine closed
//     forms) under a step budget. Budget exhaustion is a sound "unproven":
//     the site simply stays instrumented.
//
//  3. SUPPRESS. Later executions of a proven site run ARMED: the hot path
//     predicts the exact next address per slot and elides the access on a
//     match - one compare + one add. Because elision admits only an exact
//     prefix of the predicted sequence, the elided accesses are known
//     precisely, and an equivalent strided-run "footprint receipt" is
//     appended to the trace at the workshare end (or at any interruption,
//     BEFORE the interrupting event). The decoded event stream is therefore
//     address-equivalent with and without the pre-filter - elision can never
//     hide a race (missed-not-false is structural, not proof-dependent), and
//     the proof is purely the arming policy.
//
// Invalidation is conservative: any signature change (bounds, schedule,
// chunking, team size), any predicted-sequence deviation, and any mid-loop
// synchronization flushes receipts, demotes the site to re-observation, and
// after `max_invalidations` flips disarms it for good. Elided accesses are
// accounted in their own meta channel (IntervalMeta::elided / kElided), so
// dropped-by-proof is never confused with dropped-by-degradation.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "somp/tool.h"
#include "trace/writer.h"

namespace sword::prefilter {

struct PrefilterConfig {
  /// ilp::IntersectBounded step cap per model-pair query (0 = unlimited).
  uint64_t solver_budget = 4096;
  /// Proven -> re-observe flips before the site is disarmed permanently.
  uint32_t max_invalidations = 3;
  /// Arming cap on a model's per-iteration access count c: receipts emit at
  /// most min(full_groups, c) + 1 run events per slot, so c bounds the
  /// receipt cost. Densely strided models collapse to one run and are armed
  /// regardless of c.
  uint32_t max_inner_count = 64;
  /// Prover cap on per-k interval expansion for sparse inner strides.
  uint32_t max_inner_products = 4;
  /// Largest team size the prover will enumerate lane pairs for.
  uint32_t max_span = 256;
};

enum class SiteVerdict : uint8_t {
  kObserving,            // summarizing (or re-summarizing after invalidation)
  kProvenSafe,           // all raceable model pairs proven disjoint; armed
  kUnprovenOverlap,      // solver found a cross-lane overlap; never armed
  kUnsupportedSchedule,  // not static/no-chunk/level-1/with-barrier
  kIrregular,            // accesses do not fit the affine model
  kHasSync,              // synchronization inside the loop body
  kBudget,               // solver budget or receipt/prover caps exceeded
  kDisarmed,             // too many invalidations (or concurrent episodes)
};

const char* VerdictName(SiteVerdict v);

/// One slot's merged affine model in the canonical iteration space:
/// iteration i (global, in [begin,end)), inner index k in [0, inner_count)
/// touches [base + i*iter_stride + k*inner_stride, +size).
struct PcModel {
  uint32_t pc = 0;
  uint8_t flags = 0;
  uint8_t size = 0;
  int64_t base = 0;          // B: address at iteration `begin`, k = 0
  int64_t iter_stride = 0;   // delta
  int64_t inner_stride = 0;  // s (meaningful when inner_count > 1)
  uint32_t inner_count = 1;  // c
};

/// Everything a proof depends on. Any change invalidates the site's verdict.
struct SiteSignature {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t chunk = 0;
  uint32_t span = 0;
  somp::Schedule schedule = somp::Schedule::kStatic;
  bool nowait = false;
  bool operator==(const SiteSignature&) const = default;
};

struct SiteStats {
  uint64_t episodes = 0;        // complete workshare executions seen
  uint64_t armed_episodes = 0;  // executions that started armed
  uint64_t elided = 0;          // accesses elided under proof
  uint64_t receipts = 0;        // receipt run events appended
  uint64_t deviations = 0;      // armed-mode prediction misses
  uint64_t invalidations = 0;   // proven -> observe demotions
  uint64_t prover_pairs = 0;    // IntersectBounded queries issued
  uint64_t prover_steps = 0;    // solver steps actually spent
};

/// Point-in-time copy of one site's state (tests, sword-dump, prefilter.json).
struct SiteSnapshot {
  uint32_t pc = 0;
  SiteVerdict verdict = SiteVerdict::kObserving;
  SiteSignature sig;
  std::vector<PcModel> models;  // populated for kProvenSafe sites
  SiteStats stats;
};

namespace detail {

/// Observation state for one (pc, flags, size) slot on one lane. A "group"
/// is the run of accesses issued by one loop iteration at this slot.
struct ObserveSlot {
  uint32_t pc = 0;
  uint8_t flags = 0;
  uint8_t size = 0;
  bool regular = true;
  bool inner_known = false;
  bool delta_known = false;
  bool first_group_done = false;
  int64_t first_iter = 0;    // iteration of the first group
  int64_t cur_iter = 0;      // iteration of the current group
  int64_t first_addr = 0;    // A: first address of the first group
  int64_t group_first = 0;   // first address of the current group
  int64_t prev_addr = 0;     // previous address within the current group
  int64_t inner_stride = 0;  // s
  int64_t iter_stride = 0;   // delta
  uint32_t group_len = 0;    // accesses in the current group so far
  uint32_t inner_count = 0;  // c, fixed when the first group closes
  uint64_t total = 0;
};

/// Armed-mode prediction state for one slot on one lane. `expect` is the
/// exact next address; only a match elides, so `elided` accesses are always
/// an exact prefix of the predicted sequence.
struct ElideSlot {
  uint32_t pc = 0;
  uint8_t flags = 0;
  uint8_t size = 0;
  uint32_t k = 0;            // inner index of the next access
  uint32_t inner_count = 1;  // c
  int64_t inner_stride = 0;  // s
  int64_t group_jump = 0;    // delta - (c-1)*s: advance on k wrap
  int64_t iter_stride = 0;   // delta (receipt emission)
  uint64_t start = 0;        // address the current elided prefix begins at
  uint64_t expect = 0;
  uint64_t remaining = 0;    // predicted accesses left on this lane
  uint64_t elided = 0;       // prefix length elided since the last flush
};

struct Site;  // internal; defined in prefilter.cpp

}  // namespace detail

/// Per-lane, per-workshare-execution state. Allocated by BeginEpisode and
/// owned by the caller's thread state until EndEpisode. The hot-path methods
/// (HandleAccess/HandleRange in observe and elide modes) touch only this
/// lane-local state - no locks; Deviate/Suspend/End take the Prefilter
/// mutex (rare).
struct LaneEpisode {
  enum class Mode : uint8_t {
    kObserve,  // summarizing this execution
    kElide,    // armed: predicting + eliding
    kInert,    // passthrough (deviated, suspended, or rejected)
  };

  class Prefilter* owner = nullptr;
  detail::Site* site = nullptr;
  Mode mode = Mode::kInert;
  bool suspended = false;
  bool saw_range = false;
  uint32_t lane = 0;
  int64_t lane_begin = 0;
  int64_t lane_end = 0;
  const int64_t* iter = nullptr;  // &WorkshareFrame::iter (observe mode)
  std::vector<detail::ObserveSlot> obs;
  std::vector<detail::ElideSlot> slots;
};

class Prefilter {
 public:
  // Both out-of-line: detail::Site is incomplete here and the site map's
  // destructor must not be instantiated in including translation units.
  explicit Prefilter(const PrefilterConfig& config = {});
  ~Prefilter();

  /// A worksharing loop begins on one lane. Returns the lane's episode, or
  /// null when the site is rejected (permanent negative verdict, unsupported
  /// shape) - a null episode costs the hot path nothing. `span`/`level` come
  /// from the lane's Ctx; `ws` from OnWorkshareBegin.
  LaneEpisode* BeginEpisode(const somp::WorkshareInfo& ws, somp::RegionId region,
                            uint32_t lane, uint32_t span, uint32_t level);

  /// The loop finished on this lane (before its implicit barrier). Flushes
  /// receipts into `writer`'s open segment, folds observations into the
  /// site, and - on the last lane - merges and proves. Frees `ep`.
  void EndEpisode(LaneEpisode* ep, trace::ThreadTraceWriter* writer);

  /// Synchronization (or a nested construct) interrupted the loop body.
  /// Flushes receipts FIRST - the caller must invoke this BEFORE appending
  /// the interrupting event or closing the segment - then parks the episode
  /// in passthrough. Armed episodes invalidate the proof; observing episodes
  /// reject the site as kHasSync.
  void SuspendEpisode(LaneEpisode* ep, trace::ThreadTraceWriter* writer);

  /// Hot path: returns true iff the access was elided (the caller must then
  /// NOT append it). Lock-free except on a prediction deviation.
  static bool HandleAccess(LaneEpisode* ep, uint64_t addr, uint8_t size,
                           uint8_t flags, uint32_t pc,
                           trace::ThreadTraceWriter* writer) {
    switch (ep->mode) {
      case LaneEpisode::Mode::kElide: {
        for (auto& s : ep->slots) {
          if (s.pc == pc && s.flags == flags && s.size == size) {
            if (s.remaining != 0 && addr == s.expect) {
              s.elided++;
              s.remaining--;
              if (++s.k >= s.inner_count) {
                s.k = 0;
                s.expect = static_cast<uint64_t>(
                    static_cast<int64_t>(s.expect) + s.group_jump);
              } else {
                s.expect = static_cast<uint64_t>(
                    static_cast<int64_t>(s.expect) + s.inner_stride);
              }
              return true;
            }
            break;
          }
        }
        Deviate(ep, writer);
        return false;
      }
      case LaneEpisode::Mode::kObserve:
        Observe(ep, addr, size, flags, pc);
        return false;
      case LaneEpisode::Mode::kInert:
        return false;
    }
    return false;
  }

  /// Hot path for bulk ranges: never elided. Observing episodes reject the
  /// site (ranges have no per-iteration model); armed episodes deviate.
  static void HandleRange(LaneEpisode* ep, trace::ThreadTraceWriter* writer) {
    if (ep->mode == LaneEpisode::Mode::kObserve) {
      ep->saw_range = true;
    } else if (ep->mode == LaneEpisode::Mode::kElide) {
      Deviate(ep, writer);
    }
  }

  /// Point-in-time copy of every site, ordered by first encounter.
  std::vector<SiteSnapshot> Snapshot() const;

  /// Totals across all sites.
  SiteStats Totals() const;

  /// Pretty-printed JSON of the whole pre-filter state (sites, verdicts,
  /// signatures, models with file:line via the srcloc table, stats) - what
  /// SwordTool writes to <out_dir>/prefilter.json and `sword-dump
  /// --prefilter` renders.
  std::string StateJson() const;

  const PrefilterConfig& config() const { return config_; }

 private:
  static void Observe(LaneEpisode* ep, uint64_t addr, uint8_t size,
                      uint8_t flags, uint32_t pc);
  static void Deviate(LaneEpisode* ep, trace::ThreadTraceWriter* writer);

  /// Emits receipt runs for every slot's elided prefix and books the counts
  /// (NoteElided / NoteElidedLost). Resets the prefixes.
  static void FlushLaneReceipts(LaneEpisode* ep,
                                trace::ThreadTraceWriter* writer);

  void InvalidateLocked(detail::Site* site);
  void MergeAndProveLocked(detail::Site* site);

  PrefilterConfig config_;
  mutable std::mutex mu_;
  std::unordered_map<uint32_t, std::unique_ptr<detail::Site>> sites_;
  std::vector<uint32_t> site_order_;  // first-encounter order for reporting
};

}  // namespace sword::prefilter
