#include "prefilter/prefilter.h"

#include <algorithm>

#include "ilp/overlap.h"
#include "somp/srcloc.h"

namespace sword::prefilter {

Prefilter::Prefilter(const PrefilterConfig& config) : config_(config) {}
Prefilter::~Prefilter() = default;  // here: detail::Site is complete

const char* VerdictName(SiteVerdict v) {
  switch (v) {
    case SiteVerdict::kObserving: return "observing";
    case SiteVerdict::kProvenSafe: return "proven-safe";
    case SiteVerdict::kUnprovenOverlap: return "unproven-overlap";
    case SiteVerdict::kUnsupportedSchedule: return "unsupported-schedule";
    case SiteVerdict::kIrregular: return "irregular";
    case SiteVerdict::kHasSync: return "has-sync";
    case SiteVerdict::kBudget: return "budget";
    case SiteVerdict::kDisarmed: return "disarmed";
  }
  return "?";
}

namespace detail {

/// One lane's finalized affine fit for one slot, fed into the merge.
struct LaneFit {
  uint32_t pc = 0;
  uint8_t flags = 0;
  uint8_t size = 0;
  int64_t first_addr = 0;    // A: address at iteration lane_begin, k = 0
  int64_t inner_stride = 0;  // s
  int64_t iter_stride = 0;   // delta (valid iff delta_known)
  uint32_t inner_count = 1;  // c
  bool delta_known = false;
};

struct LaneObservation {
  uint32_t lane = 0;
  int64_t lb = 0;
  int64_t le = 0;
  std::vector<LaneFit> fits;  // sorted by (pc, flags, size)
};

struct Site {
  uint32_t pc = 0;  // interned For-callsite id
  SiteSignature sig;
  bool sig_known = false;
  SiteVerdict verdict = SiteVerdict::kObserving;
  std::vector<PcModel> models;  // valid while kProvenSafe
  SiteStats stats;
  uint32_t invalidations = 0;

  // Current-episode bookkeeping. An episode is one execution of the
  // worksharing loop by the whole team, identified by (region, seq).
  bool ep_active = false;
  somp::RegionId cur_region = 0;
  uint64_t cur_seq = 0;
  uint32_t began = 0;  // lanes that entered the current episode
  uint32_t ended = 0;  // lanes that finished it
  uint64_t episode_counter = 0;
  uint64_t last_invalidate_ep = ~0ULL;  // invalidate at most once per episode
  SiteVerdict obs_fail = SiteVerdict::kObserving;  // kObserving = no failure
  std::vector<LaneObservation> pending;  // this episode's lane fits
};

}  // namespace detail

using detail::ElideSlot;
using detail::LaneFit;
using detail::LaneObservation;
using detail::ObserveSlot;
using detail::Site;

namespace {

bool SameKey(const LaneFit& a, const LaneFit& b) {
  return a.pc == b.pc && a.flags == b.flags && a.size == b.size;
}

bool KeyLess(const LaneFit& a, const LaneFit& b) {
  if (a.pc != b.pc) return a.pc < b.pc;
  if (a.flags != b.flags) return a.flags < b.flags;
  return a.size < b.size;
}

/// Appends one receipt event standing for `count` accesses stepping by
/// `stride` from `base`. Negative strides normalize to the ascending
/// equivalent; a zero stride (the same address over and over) collapses to a
/// single access - the writer's own dup filter gives repeated identical
/// accesses exactly that treatment, so race judgments are unchanged.
uint64_t EmitRun(trace::ThreadTraceWriter* writer, int64_t base, int64_t stride,
                 uint64_t count, uint8_t size, uint8_t flags, uint32_t pc) {
  if (count == 0) return 0;
  if (count == 1 || stride == 0) {
    writer->AppendReceipt(
        trace::RawEvent::Access(static_cast<uint64_t>(base), size, flags, pc));
    return 1;
  }
  if (stride < 0) {
    base += static_cast<int64_t>(count - 1) * stride;
    stride = -stride;
  }
  writer->AppendReceipt(trace::RawEvent::Run(static_cast<uint64_t>(base),
                                             static_cast<uint64_t>(stride),
                                             count, size, flags, pc));
  return 1;
}

/// Emits the exact footprint of the slot's elided prefix (n accesses from
/// `start`, group-aligned by construction) in at most min(full, c) + 1 runs.
uint64_t EmitSlotReceipts(const ElideSlot& s, trace::ThreadTraceWriter* writer) {
  const uint64_t n = s.elided;
  const int64_t a = static_cast<int64_t>(s.start);
  const uint32_t c = s.inner_count;
  if (c == 1) return EmitRun(writer, a, s.group_jump, n, s.size, s.flags, s.pc);
  if (s.inner_stride == static_cast<int64_t>(s.size) &&
      s.group_jump == s.inner_stride) {
    // Groups are contiguous and adjacent: the whole prefix is one dense run.
    return EmitRun(writer, a, s.inner_stride, n, s.size, s.flags, s.pc);
  }
  const uint64_t full = n / c;
  const uint64_t tail = n % c;
  uint64_t events = 0;
  if (full > 0) {
    if (full <= c) {
      for (uint64_t g = 0; g < full; g++) {
        events += EmitRun(writer, a + static_cast<int64_t>(g) * s.iter_stride,
                          s.inner_stride, c, s.size, s.flags, s.pc);
      }
    } else {
      for (uint32_t k = 0; k < c; k++) {
        events += EmitRun(writer, a + static_cast<int64_t>(k) * s.inner_stride,
                          s.iter_stride, full, s.size, s.flags, s.pc);
      }
    }
  }
  if (tail > 0) {
    events += EmitRun(writer, a + static_cast<int64_t>(full) * s.iter_stride,
                      s.inner_stride, tail, s.size, s.flags, s.pc);
  }
  return events;
}

/// Closes the lane's observation and extracts per-slot fits. False means the
/// lane's accesses do not fit the model (site becomes kIrregular).
bool FinalizeLane(LaneEpisode* ep, LaneObservation* out) {
  const int64_t lb = ep->lane_begin;
  const int64_t le = ep->lane_end;
  const int64_t m = le - lb;
  if (m <= 0) return ep->obs.empty();  // no iterations => no accesses allowed
  for (auto& s : ep->obs) {
    if (!s.regular) return false;
    // Close the final group.
    if (!s.first_group_done) {
      s.inner_count = s.group_len;
    } else if (s.group_len != s.inner_count) {
      return false;
    }
    // Every iteration of the block must have touched the slot, exactly c
    // times each - otherwise the access is conditional and has no model.
    if (s.first_iter != lb || s.cur_iter != le - 1) return false;
    if (s.total != static_cast<uint64_t>(m) * s.inner_count) return false;
    LaneFit f;
    f.pc = s.pc;
    f.flags = s.flags;
    f.size = s.size;
    f.first_addr = s.first_addr;
    f.inner_stride = s.inner_stride;
    f.inner_count = s.inner_count;
    f.iter_stride = s.iter_stride;
    f.delta_known = s.delta_known;
    out->fits.push_back(f);
  }
  std::sort(out->fits.begin(), out->fits.end(), KeyLess);
  return true;
}

/// The strided-interval footprint of `m` on one lane's block [lb, le), for
/// the prover. False = the shape exceeds the expansion cap (kBudget).
bool LaneIntervals(const PcModel& m, int64_t begin, int64_t lb, int64_t le,
                   uint32_t max_inner_products,
                   std::vector<ilp::StridedInterval>* out) {
  const int64_t iters = le - lb;
  if (iters <= 0) return true;
  int64_t a = m.base + (lb - begin) * m.iter_stride;
  int64_t delta = m.iter_stride;
  uint32_t size = m.size;
  uint32_t c = m.inner_count;
  int64_t s = m.inner_stride;
  if (c > 1) {
    if (s == static_cast<int64_t>(size)) {
      // Dense ascending group: [a, a + c*size) per iteration.
      size = c * size;
      c = 1;
    } else if (-s == static_cast<int64_t>(size)) {
      // Dense descending group: same byte set, anchored at its low end.
      a -= static_cast<int64_t>(c - 1) * static_cast<int64_t>(size);
      size = c * size;
      c = 1;
    } else if (c > max_inner_products) {
      return false;
    }
  }
  for (uint32_t k = 0; k < c; k++) {
    int64_t base = a + static_cast<int64_t>(k) * s;
    int64_t stride = delta;
    if (stride < 0) {
      base += (iters - 1) * stride;
      stride = -stride;
    }
    ilp::StridedInterval iv;
    iv.size = size;
    if (stride == 0 || iters == 1) {
      iv.base = static_cast<uint64_t>(base);
      iv.stride = 0;
      iv.count = 1;
    } else {
      iv.base = static_cast<uint64_t>(base);
      iv.stride = static_cast<uint64_t>(stride);
      iv.count = static_cast<uint64_t>(iters);
    }
    out->push_back(iv);
  }
  return true;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char ch : in) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(ch) < 0x20) continue;  // not expected
    out.push_back(ch);
  }
  return out;
}

}  // namespace

LaneEpisode* Prefilter::BeginEpisode(const somp::WorkshareInfo& ws,
                                     somp::RegionId region, uint32_t lane,
                                     uint32_t span, uint32_t level) {
  std::lock_guard<std::mutex> lock(mu_);
  Site* site;
  auto it = sites_.find(ws.site);
  if (it == sites_.end()) {
    auto owned = std::make_unique<Site>();
    site = owned.get();
    site->pc = ws.site;
    sites_.emplace(ws.site, std::move(owned));
    site_order_.push_back(ws.site);
  } else {
    site = it->second.get();
  }

  switch (site->verdict) {
    case SiteVerdict::kUnsupportedSchedule:
    case SiteVerdict::kIrregular:
    case SiteVerdict::kHasSync:
    case SiteVerdict::kUnprovenOverlap:
    case SiteVerdict::kBudget:
    case SiteVerdict::kDisarmed:
      return nullptr;  // permanent negatives: the site stays instrumented
    case SiteVerdict::kObserving:
    case SiteVerdict::kProvenSafe:
      break;
  }

  // Only static no-chunk level-1 loops with their implicit barrier have the
  // contiguous-block iteration footprint the prover models.
  if (ws.schedule != somp::Schedule::kStatic || ws.chunk != 0 || ws.nowait ||
      level != 1 || span == 0 || span > config_.max_span) {
    site->verdict = SiteVerdict::kUnsupportedSchedule;
    site->models.clear();
    site->pending.clear();
    return nullptr;
  }

  const SiteSignature sig{ws.begin, ws.end, ws.chunk,
                          span,     ws.schedule, ws.nowait};
  const bool joining = site->ep_active && site->cur_region == region &&
                       site->cur_seq == ws.seq;
  if (joining) {
    site->began++;
  } else {
    if (site->ep_active && site->began != site->ended) {
      // A second team is executing this site while the first is still in it:
      // episode bookkeeping cannot attribute lanes, so give up for good.
      site->verdict = SiteVerdict::kDisarmed;
      site->models.clear();
      site->pending.clear();
      return nullptr;
    }
    site->episode_counter++;
    if (site->sig_known && !(site->sig == sig) &&
        site->verdict == SiteVerdict::kProvenSafe) {
      // Bounds/team-size change: the proof no longer applies.
      InvalidateLocked(site);
      if (site->verdict == SiteVerdict::kDisarmed) return nullptr;
    }
    site->sig = sig;
    site->sig_known = true;
    site->ep_active = true;
    site->cur_region = region;
    site->cur_seq = ws.seq;
    site->began = 1;
    site->ended = 0;
    site->pending.clear();
    site->obs_fail = SiteVerdict::kObserving;
    site->stats.episodes++;
    if (site->verdict == SiteVerdict::kProvenSafe) site->stats.armed_episodes++;
  }

  auto* ep = new LaneEpisode();
  ep->owner = this;
  ep->site = site;
  ep->lane = lane;
  ep->lane_begin = ws.lane_begin;
  ep->lane_end = ws.lane_end;
  if (site->verdict == SiteVerdict::kProvenSafe) {
    ep->mode = LaneEpisode::Mode::kElide;
    const int64_t m =
        ws.lane_end > ws.lane_begin ? ws.lane_end - ws.lane_begin : 0;
    ep->slots.reserve(site->models.size());
    for (const auto& model : site->models) {
      ElideSlot s;
      s.pc = model.pc;
      s.flags = model.flags;
      s.size = model.size;
      s.inner_count = model.inner_count;
      s.inner_stride = model.inner_stride;
      s.iter_stride = model.iter_stride;
      s.group_jump = model.iter_stride -
                     static_cast<int64_t>(model.inner_count - 1) *
                         model.inner_stride;
      s.expect = static_cast<uint64_t>(
          model.base + (ws.lane_begin - site->sig.begin) * model.iter_stride);
      s.start = s.expect;
      s.remaining = static_cast<uint64_t>(m) * model.inner_count;
      ep->slots.push_back(s);
    }
  } else {
    ep->mode = LaneEpisode::Mode::kObserve;
  }
  return ep;
}

void Prefilter::EndEpisode(LaneEpisode* ep, trace::ThreadTraceWriter* writer) {
  if (ep == nullptr) return;
  if (ep->mode == LaneEpisode::Mode::kElide) FlushLaneReceipts(ep, writer);
  {
    std::lock_guard<std::mutex> lock(mu_);
    Site* site = ep->site;
    if (ep->mode == LaneEpisode::Mode::kObserve && !ep->suspended) {
      if (ep->saw_range) {
        if (site->obs_fail == SiteVerdict::kObserving) {
          site->obs_fail = SiteVerdict::kIrregular;
        }
      } else {
        LaneObservation lo;
        lo.lane = ep->lane;
        lo.lb = ep->lane_begin;
        lo.le = ep->lane_end;
        if (FinalizeLane(ep, &lo)) {
          if (lo.le > lo.lb) site->pending.push_back(std::move(lo));
        } else if (site->obs_fail == SiteVerdict::kObserving) {
          site->obs_fail = SiteVerdict::kIrregular;
        }
      }
    }
    site->ended++;
    if (site->ep_active && site->ended == site->sig.span) {
      site->ep_active = false;
      if (site->verdict == SiteVerdict::kObserving) MergeAndProveLocked(site);
      site->pending.clear();
      site->began = 0;
      site->ended = 0;
    }
  }
  delete ep;
}

void Prefilter::SuspendEpisode(LaneEpisode* ep,
                               trace::ThreadTraceWriter* writer) {
  if (ep == nullptr) return;
  if (ep->mode == LaneEpisode::Mode::kElide) {
    // Receipts first: the caller appends the interrupting event (or closes
    // the segment) after us, so the elided prefix lands at its true position
    // in the stream.
    FlushLaneReceipts(ep, writer);
    ep->mode = LaneEpisode::Mode::kInert;
    ep->suspended = true;
    std::lock_guard<std::mutex> lock(mu_);
    if (ep->site->verdict == SiteVerdict::kProvenSafe) {
      InvalidateLocked(ep->site);
    }
  } else if (ep->mode == LaneEpisode::Mode::kObserve) {
    ep->mode = LaneEpisode::Mode::kInert;
    ep->suspended = true;
    std::lock_guard<std::mutex> lock(mu_);
    if (ep->site->obs_fail == SiteVerdict::kObserving) {
      ep->site->obs_fail = SiteVerdict::kHasSync;
    }
  } else {
    ep->suspended = true;
  }
}

void Prefilter::Observe(LaneEpisode* ep, uint64_t uaddr, uint8_t size,
                        uint8_t flags, uint32_t pc) {
  const int64_t addr = static_cast<int64_t>(uaddr);
  const int64_t iter = ep->iter ? *ep->iter : 0;
  ObserveSlot* slot = nullptr;
  for (auto& s : ep->obs) {
    if (s.pc == pc && s.flags == flags && s.size == size) {
      slot = &s;
      break;
    }
  }
  if (slot == nullptr) {
    ObserveSlot s;
    s.pc = pc;
    s.flags = flags;
    s.size = size;
    s.first_iter = s.cur_iter = iter;
    s.first_addr = s.group_first = s.prev_addr = addr;
    s.group_len = 1;
    s.total = 1;
    ep->obs.push_back(s);
    return;
  }
  if (!slot->regular) {
    slot->total++;
    return;
  }
  if (iter == slot->cur_iter) {
    const int64_t stride = addr - slot->prev_addr;
    if (!slot->first_group_done) {
      if (!slot->inner_known) {
        slot->inner_stride = stride;
        slot->inner_known = true;
      } else if (stride != slot->inner_stride) {
        slot->regular = false;
      }
    } else if (slot->group_len >= slot->inner_count ||
               stride != slot->inner_stride) {
      slot->regular = false;
    }
    slot->group_len++;
    slot->prev_addr = addr;
    slot->total++;
  } else if (iter == slot->cur_iter + 1) {
    if (!slot->first_group_done) {
      slot->inner_count = slot->group_len;
      slot->first_group_done = true;
    } else if (slot->group_len != slot->inner_count) {
      slot->regular = false;
    }
    const int64_t d = addr - slot->group_first;
    if (!slot->delta_known) {
      slot->iter_stride = d;
      slot->delta_known = true;
    } else if (d != slot->iter_stride) {
      slot->regular = false;
    }
    slot->cur_iter = iter;
    slot->group_first = slot->prev_addr = addr;
    slot->group_len = 1;
    slot->total++;
  } else {
    slot->regular = false;
    slot->total++;
  }
}

void Prefilter::Deviate(LaneEpisode* ep, trace::ThreadTraceWriter* writer) {
  // The elided prefix up to here is exact; flush its receipts BEFORE the
  // caller appends the deviating access, preserving stream order.
  FlushLaneReceipts(ep, writer);
  ep->mode = LaneEpisode::Mode::kInert;
  std::lock_guard<std::mutex> lock(ep->owner->mu_);
  ep->site->stats.deviations++;
  if (ep->site->verdict == SiteVerdict::kProvenSafe) {
    ep->owner->InvalidateLocked(ep->site);
  }
}

void Prefilter::FlushLaneReceipts(LaneEpisode* ep,
                                  trace::ThreadTraceWriter* writer) {
  uint64_t total = 0;
  for (const auto& s : ep->slots) total += s.elided;
  if (total == 0) return;
  uint64_t receipts = 0;
  if (writer != nullptr && writer->HasOpenSegment()) {
    for (const auto& s : ep->slots) {
      if (s.elided != 0) receipts += EmitSlotReceipts(s, writer);
    }
    writer->NoteElided(total);
  } else if (writer != nullptr) {
    writer->NoteElidedLost(total);
  }
  for (auto& s : ep->slots) s.elided = 0;
  std::lock_guard<std::mutex> lock(ep->owner->mu_);
  ep->site->stats.elided += total;
  ep->site->stats.receipts += receipts;
}

void Prefilter::InvalidateLocked(Site* site) {
  site->models.clear();
  site->verdict = SiteVerdict::kObserving;
  if (site->last_invalidate_ep != site->episode_counter) {
    site->last_invalidate_ep = site->episode_counter;
    site->invalidations++;
    site->stats.invalidations++;
    if (site->invalidations >= config_.max_invalidations) {
      site->verdict = SiteVerdict::kDisarmed;
    }
  }
}

void Prefilter::MergeAndProveLocked(Site* site) {
  if (site->obs_fail != SiteVerdict::kObserving) {
    site->verdict = site->obs_fail;
    site->models.clear();
    site->pending.clear();
    return;
  }
  const SiteSignature& g = site->sig;
  const int64_t n = g.end - g.begin;

  // The canonical static no-chunk block per lane (mirrors somp's dispatch).
  std::vector<std::pair<int64_t, int64_t>> blocks(g.span, {0, 0});
  uint32_t nonempty = 0;
  if (n > 0) {
    const int64_t block = (n + g.span - 1) / g.span;
    for (uint32_t t = 0; t < g.span; t++) {
      const int64_t lb = g.begin + static_cast<int64_t>(t) * block;
      const int64_t le = std::min<int64_t>(g.end, lb + block);
      if (le > lb) {
        blocks[t] = {lb, le};
        nonempty++;
      }
    }
  }

  std::vector<const LaneObservation*> lanes(g.span, nullptr);
  uint32_t reported = 0;
  for (const auto& lo : site->pending) {
    if (lo.lane < g.span && lanes[lo.lane] == nullptr) {
      lanes[lo.lane] = &lo;
      reported++;
    }
  }
  // A mixed episode (a deviation mid-way flipped later lanes to observe
  // mode) reports fewer lanes than the block math requires: stay observing
  // and try again on a clean episode.
  if (reported != nonempty) return;

  // Merge the per-lane fits into global models.
  std::vector<PcModel> models;
  const LaneObservation* first = nullptr;
  for (uint32_t t = 0; t < g.span; t++) {
    if (lanes[t] != nullptr) {
      first = lanes[t];
      break;
    }
  }
  if (first != nullptr) {
    const size_t n_fits = first->fits.size();
    for (uint32_t t = 0; t < g.span; t++) {
      if (lanes[t] != nullptr && lanes[t]->fits.size() != n_fits) {
        site->verdict = SiteVerdict::kIrregular;  // conditional access sites
        return;
      }
    }
    for (size_t i = 0; i < n_fits; i++) {
      const LaneFit& ref = first->fits[i];
      int64_t delta = 0;
      bool delta_known = false;
      for (uint32_t t = 0; t < g.span; t++) {
        if (lanes[t] == nullptr) continue;
        const LaneFit& f = lanes[t]->fits[i];
        if (!SameKey(f, ref) || f.inner_count != ref.inner_count ||
            (f.inner_count > 1 && f.inner_stride != ref.inner_stride)) {
          site->verdict = SiteVerdict::kIrregular;
          return;
        }
        if (f.delta_known) {
          if (delta_known && f.iter_stride != delta) {
            site->verdict = SiteVerdict::kIrregular;
            return;
          }
          delta = f.iter_stride;
          delta_known = true;
        }
      }
      if (!delta_known) {
        // Every lane ran a single iteration; recover delta across lanes.
        const LaneObservation* a = nullptr;
        const LaneObservation* b = nullptr;
        for (uint32_t t = 0; t < g.span; t++) {
          if (lanes[t] == nullptr) continue;
          if (a == nullptr) {
            a = lanes[t];
          } else {
            b = lanes[t];
            break;
          }
        }
        if (b != nullptr) {
          const int64_t denom = b->lb - a->lb;
          const int64_t num = b->fits[i].first_addr - a->fits[i].first_addr;
          if (denom == 0 || num % denom != 0) {
            site->verdict = SiteVerdict::kIrregular;
            return;
          }
          delta = num / denom;
        }
        // A single one-iteration lane: any delta is consistent; use 0.
      }
      PcModel m;
      m.pc = ref.pc;
      m.flags = ref.flags;
      m.size = ref.size;
      m.iter_stride = delta;
      m.inner_stride = ref.inner_count > 1 ? ref.inner_stride : 0;
      m.inner_count = ref.inner_count;
      m.base = first->fits[i].first_addr - (first->lb - g.begin) * delta;
      // The model must place EVERY lane's first address; one lane off means
      // the access is not a pure function of the iteration index.
      for (uint32_t t = 0; t < g.span; t++) {
        if (lanes[t] == nullptr) continue;
        if (lanes[t]->fits[i].first_addr !=
            m.base + (lanes[t]->lb - g.begin) * delta) {
          site->verdict = SiteVerdict::kIrregular;
          return;
        }
      }
      models.push_back(m);
    }
  }

  // Receipt-cost cap: an armed slot may need up to c + 1 runs per flush.
  for (const auto& m : models) {
    const bool dense =
        m.inner_count > 1 && m.inner_stride == static_cast<int64_t>(m.size) &&
        m.iter_stride ==
            static_cast<int64_t>(m.inner_count) * m.inner_stride;
    if (!(m.inner_count == 1 || dense ||
          m.inner_count <= config_.max_inner_count)) {
      site->verdict = SiteVerdict::kBudget;
      return;
    }
  }

  // Prove cross-lane disjointness for every raceable model pair. Lanes other
  // than the pair under test never alias these footprints (each lane's block
  // is translated the same way), so pairwise lane checks are exhaustive.
  ilp::OverlapOptions opt;
  opt.budget.max_steps = config_.solver_budget;
  std::vector<std::vector<ilp::StridedInterval>> per_lane(models.size() *
                                                          g.span);
  for (size_t i = 0; i < models.size(); i++) {
    for (uint32_t t = 0; t < g.span; t++) {
      if (lanes[t] == nullptr) continue;
      if (!LaneIntervals(models[i], g.begin, blocks[t].first, blocks[t].second,
                         config_.max_inner_products,
                         &per_lane[i * g.span + t])) {
        site->verdict = SiteVerdict::kBudget;
        return;
      }
    }
  }
  for (size_t i = 0; i < models.size(); i++) {
    for (size_t j = i; j < models.size(); j++) {
      const uint8_t fi = models[i].flags;
      const uint8_t fj = models[j].flags;
      const bool raceable = ((fi | fj) & somp::kAccessWrite) != 0 &&
                            ((fi & fj) & somp::kAccessAtomic) == 0;
      if (!raceable) continue;
      for (uint32_t t1 = 0; t1 < g.span; t1++) {
        for (uint32_t t2 = t1 + 1; t2 < g.span; t2++) {
          for (int swap = 0; swap < (i == j ? 1 : 2); swap++) {
            const auto& as =
                per_lane[i * g.span + (swap == 0 ? t1 : t2)];
            const auto& bs =
                per_lane[j * g.span + (swap == 0 ? t2 : t1)];
            for (const auto& a : as) {
              for (const auto& b : bs) {
                const auto r = ilp::IntersectBounded(a, b, opt);
                site->stats.prover_pairs++;
                site->stats.prover_steps += r.steps;
                if (r.verdict == ilp::OverlapVerdict::kOverlap) {
                  site->verdict = SiteVerdict::kUnprovenOverlap;
                  return;
                }
                if (r.verdict == ilp::OverlapVerdict::kUnknown) {
                  site->verdict = SiteVerdict::kBudget;
                  return;
                }
              }
            }
          }
        }
      }
    }
  }
  site->models = std::move(models);
  site->verdict = SiteVerdict::kProvenSafe;
}

std::vector<SiteSnapshot> Prefilter::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SiteSnapshot> out;
  out.reserve(site_order_.size());
  for (uint32_t pc : site_order_) {
    const auto it = sites_.find(pc);
    if (it == sites_.end()) continue;
    const Site& s = *it->second;
    SiteSnapshot snap;
    snap.pc = s.pc;
    snap.verdict = s.verdict;
    snap.sig = s.sig;
    snap.models = s.models;
    snap.stats = s.stats;
    out.push_back(std::move(snap));
  }
  return out;
}

SiteStats Prefilter::Totals() const {
  SiteStats t;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [pc, site] : sites_) {
    t.episodes += site->stats.episodes;
    t.armed_episodes += site->stats.armed_episodes;
    t.elided += site->stats.elided;
    t.receipts += site->stats.receipts;
    t.deviations += site->stats.deviations;
    t.invalidations += site->stats.invalidations;
    t.prover_pairs += site->stats.prover_pairs;
    t.prover_steps += site->stats.prover_steps;
  }
  return t;
}

std::string Prefilter::StateJson() const {
  const auto sites = Snapshot();
  const SiteStats totals = Totals();
  std::string j = "{\n";
  j += "  \"solver_budget\": " + std::to_string(config_.solver_budget) + ",\n";
  j += "  \"max_invalidations\": " + std::to_string(config_.max_invalidations) +
       ",\n";
  j += "  \"totals\": {\n";
  j += "    \"sites\": " + std::to_string(sites.size()) + ",\n";
  uint64_t proven = 0;
  for (const auto& s : sites) {
    if (s.verdict == SiteVerdict::kProvenSafe) proven++;
  }
  j += "    \"proven_safe\": " + std::to_string(proven) + ",\n";
  j += "    \"episodes\": " + std::to_string(totals.episodes) + ",\n";
  j += "    \"armed_episodes\": " + std::to_string(totals.armed_episodes) +
       ",\n";
  j += "    \"elided\": " + std::to_string(totals.elided) + ",\n";
  j += "    \"receipts\": " + std::to_string(totals.receipts) + ",\n";
  j += "    \"deviations\": " + std::to_string(totals.deviations) + ",\n";
  j += "    \"invalidations\": " + std::to_string(totals.invalidations) +
       ",\n";
  j += "    \"prover_pairs\": " + std::to_string(totals.prover_pairs) + ",\n";
  j += "    \"prover_steps\": " + std::to_string(totals.prover_steps) + "\n";
  j += "  },\n";
  j += "  \"sites\": [\n";
  for (size_t i = 0; i < sites.size(); i++) {
    const SiteSnapshot& s = sites[i];
    j += "    {\n";
    j += "      \"pc\": " + std::to_string(s.pc) + ",\n";
    j += "      \"where\": \"" +
         JsonEscape(somp::LookupSrcLoc(s.pc).ToString()) + "\",\n";
    j += "      \"verdict\": \"" + std::string(VerdictName(s.verdict)) +
         "\",\n";
    j += "      \"signature\": {\"begin\": " + std::to_string(s.sig.begin) +
         ", \"end\": " + std::to_string(s.sig.end) +
         ", \"span\": " + std::to_string(s.sig.span) +
         ", \"schedule\": " +
         std::to_string(static_cast<int>(s.sig.schedule)) +
         ", \"chunk\": " + std::to_string(s.sig.chunk) +
         ", \"nowait\": " + (s.sig.nowait ? "true" : "false") + "},\n";
    j += "      \"models\": [\n";
    for (size_t k = 0; k < s.models.size(); k++) {
      const PcModel& m = s.models[k];
      j += "        {\"pc\": " + std::to_string(m.pc) + ", \"where\": \"" +
           JsonEscape(somp::LookupSrcLoc(m.pc).ToString()) +
           "\", \"flags\": " + std::to_string(m.flags) +
           ", \"size\": " + std::to_string(m.size) +
           ", \"base\": " + std::to_string(m.base) +
           ", \"iter_stride\": " + std::to_string(m.iter_stride) +
           ", \"inner_stride\": " + std::to_string(m.inner_stride) +
           ", \"inner_count\": " + std::to_string(m.inner_count) + "}";
      j += (k + 1 < s.models.size()) ? ",\n" : "\n";
    }
    j += "      ],\n";
    j += "      \"stats\": {\"episodes\": " + std::to_string(s.stats.episodes) +
         ", \"armed_episodes\": " + std::to_string(s.stats.armed_episodes) +
         ", \"elided\": " + std::to_string(s.stats.elided) +
         ", \"receipts\": " + std::to_string(s.stats.receipts) +
         ", \"deviations\": " + std::to_string(s.stats.deviations) +
         ", \"invalidations\": " + std::to_string(s.stats.invalidations) +
         ", \"prover_pairs\": " + std::to_string(s.stats.prover_pairs) +
         ", \"prover_steps\": " + std::to_string(s.stats.prover_steps) +
         "}\n";
    j += (i + 1 < sites.size()) ? "    },\n" : "    }\n";
  }
  j += "  ]\n";
  j += "}\n";
  return j;
}

}  // namespace sword::prefilter
