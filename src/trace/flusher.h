// Asynchronous log-flush pipeline.
//
// When a thread's trace buffer fills, the buffer is handed to a pool of I/O
// workers which COMPRESS it and append the framed result to the thread's log
// file - the application thread resumes immediately, which is the paper's
// "compressed and asynchronously written out" design, scaled past the single
// flusher thread: with many producer threads one compressor becomes the
// bottleneck and backpressure stalls the application, which is exactly the
// overhead the paper claims to avoid.
//
// Ordering: jobs are sharded by destination path (stable hash -> per-worker
// FIFO lane), so appends to any single log file happen in submission order
// while different threads' files compress and write in parallel.
//
// Cross-thread coordination comes in two selectable flavors:
//  - lock-free (default): each lane is a bounded MPMC ring with per-slot
//    sequence numbers (lockfree::MpmcRing; used MPSC here), backpressure is
//    a lock-free credit counter (one credit = one queued job, CAS-acquired
//    by producers, released at dequeue), and a worker that finds its ring
//    empty parks on a per-worker doorbell (Dekker-paired sleeping flag +
//    condvar, so producers touch no mutex unless the worker is actually
//    asleep). Enqueue is wait-free when credits are available.
//  - mutex (FlusherConfig::lockfree = false, the `--no-lockfree` ablation):
//    the historical global-mutex + condvar lanes, preserved for
//    byte-identical report comparison.
//
// Memory is bounded end to end:
//  - global backpressure: at most `max_queued_jobs` buffers may be queued
//    across all lanes; producers block once the queue is full, which bounds
//    trace memory to ~queue_depth x buffer_size instead of growing without
//    limit. Block count and blocked time are surfaced in FlusherStats.
//  - a BufferPool recycles event buffers: writers swap their full buffer in
//    and take a recycled one back, so steady-state flushing performs no
//    2 MB allocations; every pooled buffer is charged to the configured
//    MemoryScope, and the free list is capped.
//  - per-worker CompressScratch reuses the codec working memory (lzs hash
//    chains, frame staging) across jobs.
//
// Drain() blocks until everything reached the filesystem. A synchronous mode
// compresses+writes inline on the calling thread, for the buffer-size
// ablation which wants I/O on the critical path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/fsutil.h"
#include "common/lockfree.h"
#include "common/memtrack.h"
#include "common/status.h"
#include "compress/compressor.h"

namespace sword::trace {

class DegradationGovernor;

/// Recycles byte buffers between trace writers and flusher workers. All
/// buffers that exist because of the pool (handed out or free-listed) are
/// charged to `memory`, so the bounded-memory accounting sees the real
/// buffer population, not just the writers' nominal capacity. Thread-safe;
/// lock-free by default (a bounded lockfree::FreeList), with the historical
/// mutex free list behind `lockfree = false`.
class BufferPool {
 public:
  static constexpr size_t kDefaultMaxFree = 16;

  /// Coherent snapshot of the pool counters (see stats()).
  struct Stats {
    uint64_t allocations = 0;      // fresh buffer allocations
    uint64_t recycles = 0;         // Acquire() served from the free list
    uint64_t releases_kept = 0;    // Release() parked the buffer
    uint64_t releases_freed = 0;   // Release() dropped it (list full)
    size_t free_count = 0;         // buffers parked right now

    bool operator==(const Stats& o) const {
      return allocations == o.allocations && recycles == o.recycles &&
             releases_kept == o.releases_kept &&
             releases_freed == o.releases_freed && free_count == o.free_count;
    }
  };

  explicit BufferPool(size_t max_free = kDefaultMaxFree,
                      MemoryScope* memory = nullptr, bool lockfree = true)
      : max_free_(max_free),
        memory_(memory),
        lockfree_(lockfree),
        freelist_(lockfree ? max_free : 0) {}
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns an empty buffer with capacity >= `capacity`: a recycled one
  /// when available, else a fresh allocation (charged to the scope).
  Bytes Acquire(size_t capacity);

  /// Returns a buffer to the pool. Kept (still charged) while the free list
  /// holds < max_free buffers; freed (and un-charged) beyond that.
  void Release(Bytes buffer);

  uint64_t allocations() const {
    return allocations_.load(std::memory_order_relaxed);
  }
  uint64_t recycles() const {
    return recycles_.load(std::memory_order_relaxed);
  }
  size_t free_count() const;

  /// All counters in one mutually consistent snapshot: the historical
  /// accessors raced against each other (atomics bumped outside the free
  /// list's critical section), so `allocations() - recycles()` could be
  /// transiently nonsensical. This re-reads until two consecutive snapshots
  /// agree - exact at quiescence, best-effort under churn.
  Stats stats() const;

  bool lockfree() const { return lockfree_; }

  /// Deterministic chaos knob: Acquire() calls numbered [from, from+count)
  /// (1-based) fail, returning a zero-capacity buffer — the out-of-memory
  /// shape the degradation governor and the writer's shed path must absorb.
  void InjectAcquireFailures(uint64_t from_call, uint64_t count);
  /// Acquire() calls observed (successful or injected-failed).
  uint64_t acquires() const { return acquires_.load(std::memory_order_relaxed); }
  /// Injected Acquire() failures delivered so far.
  uint64_t acquire_failures() const {
    return acquire_failures_.load(std::memory_order_relaxed);
  }

 private:
  Stats ReadStatsOnce() const;

  const size_t max_free_;
  MemoryScope* const memory_;
  const bool lockfree_;

  // Lock-free path: bounded free list (capacity = max_free_).
  lockfree::FreeList<Bytes> freelist_;

  // Mutex path (--no-lockfree).
  mutable std::mutex mutex_;
  std::vector<Bytes> free_;

  // Counters are relaxed atomics in both modes; stats() makes them
  // coherent. Producer/consumer-shared, so keep them off other hot lines.
  alignas(lockfree::kCacheLine) std::atomic<uint64_t> allocations_{0};
  std::atomic<uint64_t> recycles_{0};
  std::atomic<uint64_t> releases_kept_{0};
  std::atomic<uint64_t> releases_freed_{0};

  // Injected allocation-failure window (deterministic chaos; 1-based calls).
  std::atomic<uint64_t> acquires_{0};
  std::atomic<uint64_t> fail_from_{0};
  std::atomic<uint64_t> fail_count_{0};
  std::atomic<uint64_t> acquire_failures_{0};
};

struct FlusherConfig {
  bool async = true;
  /// Lock-free lanes/pool/backpressure (default); false = the historical
  /// mutex+condvar coordination (`--no-lockfree` ablation). Race reports
  /// are byte-identical either way; only contention behavior differs.
  bool lockfree = true;
  /// Worker threads; 0 = min(4, hardware_concurrency). Ignored in sync mode.
  uint32_t workers = 0;
  /// Global backpressure bound across all lanes.
  size_t max_queued_jobs = 16;
  /// Cap on the buffer pool's free list.
  size_t max_pooled_buffers = BufferPool::kDefaultMaxFree;
  /// Accounting scope for pooled buffers (the trace memory bound).
  MemoryScope* memory = nullptr;
  /// Write layer; null = the real filesystem. Tests plug a
  /// sword::testing::FaultFile here to inject I/O failures.
  FileBackend* backend = nullptr;
  /// Transient-failure (EINTR/EAGAIN, short write) retries per append.
  uint32_t max_io_retries = 4;
  /// Base backoff between retries; doubles per retry. 0 = no sleeping,
  /// which is what the deterministic fault tests use.
  uint32_t retry_backoff_us = 100;
  /// I/O watchdog: the longest a producer may stay blocked on backpressure
  /// before its frame is converted into a drop (gap frame + exact
  /// accounting) instead of an unbounded stall. 0 = no deadline (the
  /// historical behavior; backpressure tests rely on it). `sword-run`
  /// enables it for production runs.
  uint64_t watchdog_deadline_ms = 0;
  /// Optional adaptive-degradation governor: the flusher feeds it producer
  /// blocked time, credit starvation, append latency, and watchdog drops,
  /// and ticks Evaluate() from the worker loop. Not owned.
  DegradationGovernor* governor = nullptr;
};

/// Observability counters (satellite telemetry for the overhead tables; all
/// values are cumulative since construction unless noted).
struct FlusherStats {
  uint64_t jobs_enqueued = 0;
  uint64_t jobs_completed = 0;
  uint64_t producer_blocks = 0;  // producers that hit backpressure
  uint64_t blocked_nanos = 0;    // total producer wait under backpressure
  uint64_t bytes_in = 0;         // raw bytes submitted
  uint64_t bytes_written = 0;    // framed bytes on disk
  uint64_t appends = 0;
  uint64_t io_retries = 0;       // transient-append retries that happened
  uint64_t frames_dropped = 0;   // frames discarded after unrecoverable I/O
  uint64_t events_dropped = 0;   // events inside dropped frames
  uint64_t bytes_dropped = 0;    // raw (logical) bytes inside dropped frames
  uint64_t gap_frames = 0;       // drop markers successfully written
  uint64_t watchdog_drops = 0;   // frames dropped by the enqueue watchdog
  uint64_t syncs = 0;            // fsync passes issued (after gap frames)
  uint64_t sync_retries = 0;     // transient-sync retries that happened
  size_t queued_now = 0;               // snapshot: jobs waiting in lanes
  bool lockfree = false;               // which coordination plane ran
  std::vector<uint64_t> worker_bytes_in;  // raw bytes compressed per worker
};

/// Per-path drop totals (what a writer folds into its meta file).
struct DropRecord {
  uint64_t raw_bytes = 0;  // logical bytes that never reached the log
  uint64_t events = 0;
  uint64_t frames = 0;
};

class Flusher {
 public:
  static constexpr size_t kDefaultMaxQueuedJobs = 16;

  explicit Flusher(const FlusherConfig& config);
  /// Convenience: default config with the given mode.
  explicit Flusher(bool async = true) : Flusher(FlusherConfig{.async = async}) {}
  ~Flusher();
  Flusher(const Flusher&) = delete;
  Flusher& operator=(const Flusher&) = delete;

  /// Queues "compress `raw` with `codec`, frame it tagged `payload_format`,
  /// and append to `path`". Blocks when the queue is full (backpressure).
  /// Sync mode does the work inline. The buffer is recycled into pool()
  /// after the frame is written. `event_count` is how many events `raw`
  /// encodes - the writer knows, the flusher cannot recover it from the
  /// encoded bytes - and it is what makes dropped-event accounting exact
  /// when an unrecoverable I/O error forces the frame to be discarded.
  void AppendFrame(const std::string& path, Bytes raw, const Compressor* codec,
                   uint8_t payload_format = 1, uint64_t event_count = 0);

  /// Queues a raw (pre-encoded) append with no compression or framing.
  void Append(const std::string& path, Bytes data);

  /// Blocks until every queued job has hit the filesystem.
  void Drain();

  /// First I/O error encountered, if any (sticky). Note that after an
  /// unrecoverable error the flusher keeps accepting and writing frames
  /// (drop-with-accounting, not drop-everything-after): the status records
  /// that SOMETHING was lost, the drop counters record exactly what.
  Status status() const;

  /// Cumulative drops for one log file (zeroes if none). The writer folds
  /// this into the meta file at Finish so the offline side sees the loss
  /// even when FlusherStats are gone.
  DropRecord DroppedFor(const std::string& path) const;

  bool async() const { return async_; }
  bool lockfree() const { return lockfree_; }
  uint32_t workers() const { return static_cast<uint32_t>(workers_.size()); }
  BufferPool& pool() { return pool_; }

  uint64_t bytes_written() const { return bytes_written_.load(); }
  uint64_t appends() const { return appends_.load(); }

  /// Snapshot of the observability counters.
  FlusherStats stats() const;

 private:
  struct Job {
    std::string path;
    Bytes data;
    const Compressor* codec = nullptr;  // null = raw append
    uint8_t payload_format = 1;
    uint64_t event_count = 0;  // events encoded in `data` (framed jobs)
    bool recycle = false;  // return `data` to the pool afterwards
  };

  struct Worker {
    std::thread thread;
    // Lock-free lane: bounded MPSC ring + Dekker-paired doorbell. The
    // `sleeping` flag keeps producers off `doorbell_mutex` unless the
    // worker is actually parked (see EnqueueLockfree/RunLockfree).
    std::unique_ptr<lockfree::MpmcRing<Job>> ring;
    std::mutex doorbell_mutex;
    std::condition_variable doorbell;
    alignas(lockfree::kCacheLine) std::atomic<uint32_t> sleeping{0};
    // Mutex lane (--no-lockfree): guarded by the flusher's mutex_.
    std::condition_variable cv;
    std::deque<Job> lane;  // FIFO per worker: per-path order is preserved
    // Job scratch: touched only by this worker's thread.
    CompressScratch scratch;
    Bytes frame;  // reusable frame staging
    // Written by this worker, read by stats(); own line so the increment
    // never bounces another worker's counter.
    alignas(lockfree::kCacheLine) std::atomic<uint64_t> bytes_in{0};
  };

  void Enqueue(Job job);
  void EnqueueLockfree(Job job, size_t lane);
  void EnqueueLocked(Job job, size_t lane);
  void Run(uint32_t index);          // mutex lanes
  void RunLockfree(uint32_t index);  // ring lanes
  /// Process one dequeued job end to end and bump completion counters.
  void CompleteJob(Job job, Worker* worker);
  /// Compress+write one job. `worker` supplies reusable scratch (null in
  /// sync mode, where concurrent producers would contend on it).
  void DoJob(const Job& job, Worker* worker);
  size_t LaneFor(const std::string& path) const;
  /// Appends with retry; rolls the file back to its pre-append size when the
  /// append ultimately fails, so a torn frame never reaches the log.
  Status AppendChecked(const std::string& path, const uint8_t* data, size_t n);
  /// Writes any pending gap marker for `path`, then the frame itself.
  Status WritePathData(const Job& job, const uint8_t* data, size_t n);
  /// Books a discarded frame: sticky status + exact drop accounting, and a
  /// pending gap marker so later frames keep their logical offsets.
  void RecordDrop(const Job& job, const Status& status);
  /// Converts a frame whose enqueue wait exceeded the watchdog deadline into
  /// an accounted drop (the job never entered a lane). Recycles the buffer.
  void WatchdogDrop(Job job);

  const bool async_;
  const bool lockfree_;
  const size_t max_queued_jobs_;
  FileBackend* const backend_;
  const RetryPolicy retry_policy_;
  const uint64_t watchdog_deadline_ms_;
  DegradationGovernor* const governor_;
  BufferPool pool_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};

  // --- hot atomics, grouped by writer to avoid false sharing ---
  // Producer-contended: the backpressure credit counter gets its own line
  // (every enqueue CASes it); in_flight_ is producer-inc / worker-dec and
  // gates Drain, so it must not share the credits line either.
  alignas(lockfree::kCacheLine) std::atomic<int64_t> credits_{0};
  alignas(lockfree::kCacheLine) std::atomic<uint64_t> in_flight_{0};
  // Producer-side statistics (bumped at enqueue).
  alignas(lockfree::kCacheLine) std::atomic<uint64_t> jobs_enqueued_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> producer_blocks_{0};
  std::atomic<uint64_t> blocked_nanos_{0};
  // Worker-side statistics (bumped at completion / append).
  alignas(lockfree::kCacheLine) std::atomic<uint64_t> jobs_completed_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> io_retries_{0};
  // Drop accounting (cold: only after unrecoverable I/O errors).
  alignas(lockfree::kCacheLine) std::atomic<uint64_t> gap_frames_{0};
  std::atomic<uint64_t> frames_dropped_{0};
  std::atomic<uint64_t> events_dropped_{0};
  std::atomic<uint64_t> bytes_dropped_{0};
  std::atomic<uint64_t> watchdog_drops_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> sync_retries_{0};
  /// Number of paths with a pending (unwritten) gap marker: lets the
  /// per-frame WritePathData skip the mutex-guarded map lookup entirely in
  /// the no-drops steady state.
  std::atomic<uint32_t> pending_gap_paths_{0};

  // Mutex plane: lane state for --no-lockfree, and the always-cold maps
  // (drop records, sticky status). Guarded by mutex_.
  mutable std::mutex mutex_;
  std::condition_variable drained_cv_;
  std::condition_variable space_cv_;
  size_t queued_ = 0;  // jobs waiting in lanes (gates producers; mutex mode)
  Status status_;
  // pending_: drops not yet covered by an on-disk gap marker; dropped_:
  // cumulative per-path totals for DroppedFor().
  std::unordered_map<std::string, DropRecord> pending_gaps_;
  std::unordered_map<std::string, DropRecord> dropped_;
};

}  // namespace sword::trace
