// Asynchronous log flusher.
//
// When a thread's trace buffer fills, the buffer is handed to a dedicated
// I/O thread which COMPRESSES it and appends the framed result to the
// thread's log file - the application thread resumes immediately, which is
// the paper's "compressed and asynchronously written out" design. Appends to
// any single file happen in submission order because one thread performs
// them all.
//
// Backpressure keeps memory bounded: at most kMaxQueuedJobs raw buffers may
// be in flight; producers block once the queue is full (on a machine with
// spare cores this never happens; on an oversubscribed one it bounds the
// trace memory to queue_depth x buffer_size instead of growing without
// limit). Drain() blocks until everything reached the filesystem.
//
// A synchronous mode compresses+writes inline, for the buffer-size ablation
// which wants I/O on the critical path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "common/bytes.h"
#include "common/status.h"
#include "compress/compressor.h"

namespace sword::trace {

class Flusher {
 public:
  static constexpr size_t kMaxQueuedJobs = 16;

  explicit Flusher(bool async = true);
  ~Flusher();
  Flusher(const Flusher&) = delete;
  Flusher& operator=(const Flusher&) = delete;

  /// Queues "compress `raw` with `codec` and append the frame to `path`".
  /// Blocks when the queue is full (backpressure). Sync mode does the work
  /// inline.
  void AppendFrame(const std::string& path, Bytes raw, const Compressor* codec);

  /// Queues a raw (pre-encoded) append with no compression.
  void Append(const std::string& path, Bytes data);

  /// Blocks until every queued job has hit the filesystem.
  void Drain();

  /// First I/O error encountered, if any (sticky).
  Status status() const;

  uint64_t bytes_written() const { return bytes_written_.load(); }
  uint64_t appends() const { return appends_.load(); }

 private:
  struct Job {
    std::string path;
    Bytes data;
    const Compressor* codec = nullptr;  // null = raw append
  };

  void Enqueue(Job job);
  void Run();
  void DoJob(const Job& job);

  const bool async_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable drained_cv_;
  std::condition_variable space_cv_;
  std::deque<Job> queue_;
  bool stop_ = false;
  size_t in_flight_ = 0;
  Status status_;
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> appends_{0};
  std::thread thread_;
};

}  // namespace sword::trace
