#include "trace/writer.h"

#include <cassert>

#include "common/fsutil.h"
#include "compress/frame.h"

namespace sword::trace {

ThreadTraceWriter::ThreadTraceWriter(uint32_t thread_id, const WriterConfig& config)
    : thread_id_(thread_id),
      config_(config),
      capacity_events_(config.buffer_bytes / kEventBytes) {
  assert(config_.flusher && "a Flusher is required");
  assert(capacity_events_ > 0 && "buffer too small for a single event");
  if (!config_.codec) config_.codec = DefaultCompressor();
  buffer_.reserve(capacity_events_ * kEventBytes);
  meta_.thread_id = thread_id;
  if (config_.memory) {
    // The bounded charge: the buffer itself. This never grows.
    (void)config_.memory->Charge(capacity_events_ * kEventBytes);
  }
  // Start the log file empty so appends from a previous run never leak in.
  (void)WriteFile(config_.log_path, Bytes{});
}

ThreadTraceWriter::~ThreadTraceWriter() {
  (void)Finish();
  if (config_.memory) config_.memory->Release(capacity_events_ * kEventBytes);
}

void ThreadTraceWriter::Append(const RawEvent& event) {
  if (buffer_.size() + kEventBytes > capacity_events_ * kEventBytes) {
    FlushBuffer();
  }
  // Hot path: one 16-byte append, little-endian (this is EncodeEvent's
  // layout, open-coded so the per-access cost stays in the nanoseconds).
  const size_t offset = buffer_.size();
  buffer_.resize(offset + kEventBytes);
  uint8_t* p = buffer_.data() + offset;
  p[0] = static_cast<uint8_t>(event.kind);
  p[1] = event.flags;
  p[2] = event.size;
  p[3] = 0;
  for (int i = 0; i < 4; i++) p[4 + i] = static_cast<uint8_t>(event.pc >> (8 * i));
  for (int i = 0; i < 8; i++) p[8 + i] = static_cast<uint8_t>(event.addr >> (8 * i));
  logical_offset_ += kEventBytes;
  events_logged_++;
}

void ThreadTraceWriter::FlushBuffer() {
  if (buffer_.empty()) return;
  // Hand the raw buffer to the flusher; compression happens off-thread
  // (paper SIII-A: "compressed and asynchronously written out").
  Bytes raw;
  raw.swap(buffer_);
  buffer_.reserve(capacity_events_ * kEventBytes);
  config_.flusher->AppendFrame(config_.log_path, std::move(raw), config_.codec);
  flushes_++;
}

void ThreadTraceWriter::BeginSegment(const IntervalMeta& meta) {
  assert(!open_segment_ && "close the previous segment first");
  meta_.intervals.push_back(meta);
  meta_.intervals.back().data_begin = logical_offset_;
  meta_.intervals.back().data_size = 0;
  open_segment_ = true;
}

void ThreadTraceWriter::EndSegment() {
  assert(open_segment_);
  IntervalMeta& m = meta_.intervals.back();
  m.data_size = logical_offset_ - m.data_begin;
  open_segment_ = false;
  // Empty segments carry no accesses and cannot participate in a race;
  // dropping them keeps meta files proportional to useful data.
  if (m.data_size == 0) meta_.intervals.pop_back();
}

Status ThreadTraceWriter::Finish() {
  if (finished_) return Status::Ok();
  finished_ = true;
  if (open_segment_) EndSegment();
  FlushBuffer();
  SWORD_RETURN_IF_ERROR(WriteFile(config_.meta_path, meta_.Encode()));
  return Status::Ok();
}

}  // namespace sword::trace
