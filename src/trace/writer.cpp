#include "trace/writer.h"

#include <cassert>

#include "common/fsutil.h"
#include "compress/frame.h"
#include "trace/governor.h"
#include "trace/seal.h"

namespace sword::trace {
namespace {

/// Direct-mapped filter slot index for an access site. The address is left
/// out on purpose: one site always maps to one slot, so a slot hit proves
/// the site's most recent recorded access - which is exactly the filter's
/// soundness requirement.
size_t FilterIndex(uint32_t pc, uint8_t flags, uint8_t size) {
  uint64_t h = (static_cast<uint64_t>(pc) << 16) ^
               (static_cast<uint64_t>(flags) << 8) ^ size;
  h *= 0x9e3779b97f4a7c15ull;  // splitmix64 finalizer
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 32;
  return static_cast<size_t>(h) & 0xff;
}

}  // namespace

ThreadTraceWriter::ThreadTraceWriter(uint32_t thread_id, const WriterConfig& config)
    : thread_id_(thread_id),
      config_(config),
      capacity_events_(config.buffer_bytes / kEventBytes),
      capacity_bytes_(capacity_events_ * kEventBytes),
      max_event_bytes_(config.format >= kTraceFormatV3 ? kMaxEventBytesV3
                                                       : kMaxEventBytesV2),
      fastpath_(config.format >= kTraceFormatV3),
      coalesce_(fastpath_ && config.coalesce) {
  assert(config_.flusher && "a Flusher is required");
  assert(capacity_events_ > 0 && "buffer too small for a single event");
  assert((config_.format >= kTraceFormatV1 && config_.format <= kTraceFormatV3) &&
         "unknown trace format");
  assert((config_.format == kTraceFormatV1 || capacity_bytes_ >= max_event_bytes_) &&
         "buffer too small for one encoded event");
  if (fastpath_ && config_.access_filter) {
    filter_ = std::make_unique<FilterSlot[]>(kFilterSlots);
  }
  if (config_.governor) shed_ = std::make_unique<ShedSlot[]>(kFilterSlots);
  if (!config_.codec) config_.codec = DefaultCompressor();
  if (!config_.backend) config_.backend = &RealFileBackend();
  // The bounded charge: one fixed buffer, owned by the flusher's pool so the
  // accounting follows the buffer through the flush pipeline.
  buffer_ = config_.flusher->pool().Acquire(capacity_bytes_);
  meta_.thread_id = thread_id;
  meta_.log_format = config_.format;
  // Start the log file empty so appends from a previous run never leak in,
  // and drop an empty meta checkpoint so a process killed before the first
  // barrier interval still leaves a well-formed (if empty) trace.
  (void)config_.backend->WriteWhole(config_.log_path, Bytes{});
  if (config_.meta_checkpoint_interval > 0) {
    (void)WriteFileAtomic(config_.meta_path, EncodeMetaSnapshot(),
                          config_.backend);
  }
  if (config_.crash_seal) {
    seal_slot_ =
        SealRegistry::Instance().Register(config_.log_path, config_.meta_path);
    // An image exists from the very first event on: a crash before the first
    // checkpoint still seals to a well-formed (empty) crash-tagged meta.
    PublishSealImage();
  }
}

ThreadTraceWriter::~ThreadTraceWriter() { (void)Finish(); }

void ThreadTraceWriter::Append(const RawEvent& event) {
  // Out-of-band events must keep their position relative to the coalesced
  // access stream, and anything appended around the filter invalidates its
  // "most recent recorded access" knowledge.
  MaterializePending();
  ResetFilter();
  EncodeToBuffer(event);
}

bool ThreadTraceWriter::AppendReceipt(const RawEvent& event) {
  if (!open_segment_) return false;
  // Receipts take the out-of-band path on purpose: they are exact summaries
  // the prefilter already committed to, so the governor and the dup filter
  // must not touch them. (Pool exhaustion can still shed the encode; that is
  // booked as degradation, which marks the segment lossy - sound.)
  Append(event);
  return true;
}

void ThreadTraceWriter::NoteElided(uint64_t n) {
  if (n == 0) return;
  if (open_segment_) {
    segment_elided_ += n;
    events_elided_.Add(n);
  } else {
    // No open segment means no receipt could have been appended either:
    // account the whole batch as potentially missed information.
    elided_lost_.Add(n);
  }
}

void ThreadTraceWriter::NoteElidedLost(uint64_t n) {
  if (n != 0) elided_lost_.Add(n);
}

void ThreadTraceWriter::PoolExhaustedShed() {
  // The pool returned no memory (exhausted allocator, or deterministic
  // injection). Shed the event WITH accounting — logical_offset_ and
  // events_logged_ stay untouched, so segment coordinates remain exact and
  // the loss is visible in the meta totals — rather than growing an
  // unaccounted buffer or crashing the traced application.
  pool_shed_.Add(1);
  degraded_dropped_.Add(1);
  if (open_segment_) segment_degraded_++;
  if (config_.governor) config_.governor->NotePoolExhausted();
}

void ThreadTraceWriter::EncodeToBuffer(const RawEvent& event) {
  if (buffer_.capacity() == 0) {
    buffer_ = config_.flusher->pool().Acquire(capacity_bytes_);
    if (buffer_.capacity() == 0) {
      PoolExhaustedShed();
      return;
    }
  }
  if (config_.format == kTraceFormatV1) {
    if (buffer_.size() + kEventBytes > capacity_bytes_) {
      FlushBuffer(true);
      if (buffer_.capacity() == 0) {  // reacquire failed (pool exhausted)
        PoolExhaustedShed();
        return;
      }
    }
    // Hot path: one 16-byte append, little-endian (this is EncodeEvent's
    // layout, open-coded so the per-access cost stays in the nanoseconds).
    const size_t offset = buffer_.size();
    buffer_.resize(offset + kEventBytes);
    uint8_t* p = buffer_.data() + offset;
    p[0] = static_cast<uint8_t>(event.kind);
    p[1] = event.flags;
    p[2] = event.size;
    p[3] = 0;
    for (int i = 0; i < 4; i++) p[4 + i] = static_cast<uint8_t>(event.pc >> (8 * i));
    for (int i = 0; i < 8; i++) p[8 + i] = static_cast<uint8_t>(event.addr >> (8 * i));
    logical_offset_ += kEventBytes;
  } else {
    // Flush on the logical event-count capacity (the paper's knob) or when
    // the next event might not fit the reserved bytes (tiny-buffer guard).
    if (buffer_events_ >= capacity_events_ ||
        buffer_.size() + max_event_bytes_ > capacity_bytes_) {
      FlushBuffer(true);
      if (buffer_.capacity() == 0) {  // reacquire failed (pool exhausted)
        PoolExhaustedShed();
        return;
      }
    }
    const size_t before = buffer_.size();
    ByteWriter w(&buffer_);
    if (config_.format >= kTraceFormatV3) {
      EncodeEventV3(event, codec_state_, w);
    } else {
      EncodeEventV2(event, codec_state_, w);
    }
    logical_offset_ += buffer_.size() - before;
  }
  buffer_events_++;
  events_logged_.Add(1);
}

void ThreadTraceWriter::MaterializePending() {
  if (pending_.count == 0) return;
  if (pending_.count == 1) {
    EncodeToBuffer(RawEvent::Access(pending_.base, pending_.size,
                                    pending_.flags, pending_.pc));
  } else {
    EncodeToBuffer(RawEvent::Run(pending_.base, pending_.stride, pending_.count,
                                 pending_.size, pending_.flags, pending_.pc));
    runs_emitted_.Add(1);
    events_coalesced_.Add(pending_.count - 1);
  }
  pending_.count = 0;
}

void ThreadTraceWriter::ResetFilter() {
  if (!filter_) return;
  if (++filter_gen_ == 0) {  // generation wrap: actually clear the slots
    for (size_t i = 0; i < kFilterSlots; i++) filter_[i] = FilterSlot{};
    filter_gen_ = 1;
  }
}

void ThreadTraceWriter::PollGovernor() {
  // One atomic load per poll: the packed word carries (seq, reason, level)
  // together, so a transition is recorded with exactly the level/reason pair
  // that caused it even if another transition races in right after.
  const uint64_t packed = config_.governor->PackedState();
  current_level_ = DegradationGovernor::PackedLevel(packed);
  const uint64_t seq = DegradationGovernor::PackedSeq(packed);
  if (seq != governor_seq_) {
    governor_seq_ = seq;
    meta_.transitions.push_back(DegradationTransition{
        current_level_, DegradationGovernor::PackedReason(packed),
        serialized_count_});
  }
  if (open_segment_ && current_level_ > segment_max_level_) {
    segment_max_level_ = current_level_;
  }
}

bool ThreadTraceWriter::ShedAccess(uint32_t pc, uint8_t flags, uint8_t size) {
  ShedSlot& slot = shed_[FilterIndex(pc, flags, size)];
  if (slot.gen != shed_gen_ || slot.pc != pc || slot.flags != flags ||
      slot.size != size) {
    // New site (or a direct-map collision evicted the old one): restart its
    // per-segment count. The FIRST event from a site is always kept at
    // every level, so each active site stays visible in the trace.
    slot = ShedSlot{pc, shed_gen_, 0, flags, size};
  }
  slot.count++;
  const GovernorConfig& gc = config_.governor->config();
  switch (static_cast<DegradationLevel>(current_level_)) {
    case DegradationLevel::kFull:
      return false;
    case DegradationLevel::kAggressive:
      return slot.count > gc.aggressive_site_cap;
    case DegradationLevel::kSampling:
      return (slot.count - 1) % gc.sample_keep_period != 0;
    case DegradationLevel::kSummary:
      return slot.count > 1;
  }
  return false;
}

void ThreadTraceWriter::AppendAccess(uint64_t addr, uint8_t size, uint8_t flags,
                                     uint32_t pc) {
  if (!open_segment_) {
    // An access with no segment has no (data_begin, size) home; appending it
    // anyway would silently skew the NEXT segment's accounting. Count and
    // drop instead; the total surfaces in stats and the meta header.
    accesses_dropped_.Add(1);
    return;
  }
  if (config_.governor) {
    PollGovernor();
    if (current_level_ != 0 && ShedAccess(pc, flags, size)) {
      // Degradation only ever REMOVES events: a kept event is untouched, so
      // every race found in a degraded interval is real. The shed count is
      // exact (per segment and in the meta totals).
      segment_degraded_++;
      degraded_dropped_.Add(1);
      return;
    }
  }
  if (!fastpath_) {
    EncodeToBuffer(RawEvent::Access(addr, size, flags, pc));
    return;
  }
  if (filter_) {
    FilterSlot& slot = filter_[FilterIndex(pc, flags, size)];
    if (slot.gen == filter_gen_ && slot.addr == addr && slot.pc == pc &&
        slot.flags == flags && slot.size == size) {
      // The most recent recorded access from this site in this segment was
      // this exact access: the replayed tree would fold it into the existing
      // node (a hit-count bump, no structural change), so dropping it cannot
      // change any race report.
      events_suppressed_.Add(1);
      return;
    }
    slot.addr = addr;
    slot.pc = pc;
    slot.flags = flags;
    slot.size = size;
    slot.gen = filter_gen_;
  }
  if (!coalesce_) {
    EncodeToBuffer(RawEvent::Access(addr, size, flags, pc));
    return;
  }
  // Strided-run coalescer. The extension rules mirror the interval tree's
  // continuation logic: a fresh single adopts the first ascending step as
  // its stride; an established run extends only on an exact stride match.
  if (pending_.count != 0 && pending_.pc == pc && pending_.flags == flags &&
      pending_.size == size) {
    if (pending_.count == 1) {
      if (addr > pending_.last) {
        pending_.stride = addr - pending_.last;
        pending_.count = 2;
        pending_.last = addr;
        return;
      }
    } else if (addr > pending_.last &&
               addr - pending_.last == pending_.stride) {
      pending_.count++;
      pending_.last = addr;
      return;
    }
  }
  MaterializePending();
  pending_ = PendingRun{addr, 0, 1, addr, pc, flags, size};
}

void ThreadTraceWriter::AppendRange(uint64_t addr, uint64_t bytes,
                                    uint8_t flags, uint32_t pc) {
  constexpr uint64_t kChunk = 128;  // the historical per-event range chunk
  if (bytes == 0) return;
  const uint64_t chunks = bytes / kChunk;
  const uint64_t tail = bytes % kChunk;
  if (!open_segment_) {
    accesses_dropped_.Add(chunks + (tail ? 1 : 0));
    return;
  }
  if (config_.governor) {
    PollGovernor();
    // One shed decision for the whole range (it is one site); the count
    // shed matches what the v1/v2 chunk loop would have appended.
    if (current_level_ != 0 &&
        ShedAccess(pc, flags, static_cast<uint8_t>(kChunk))) {
      const uint64_t shed = chunks + (tail ? 1 : 0);
      segment_degraded_ += shed;
      degraded_dropped_.Add(shed);
      return;
    }
  }
  if (!fastpath_) {
    // v1/v2: the historical loop, one event per <= 128-byte piece.
    uint64_t a = addr;
    for (uint64_t left = bytes; left > 0;) {
      const uint8_t c = left > kChunk ? kChunk : static_cast<uint8_t>(left);
      EncodeToBuffer(RawEvent::Access(a, c, flags, pc));
      a += c;
      left -= c;
    }
    return;
  }
  MaterializePending();
  // A range's chunks can extend same-key tree nodes past addresses the
  // filter remembers; drop its knowledge rather than reason about overlap.
  ResetFilter();
  if (chunks == 1) {
    EncodeToBuffer(RawEvent::Access(addr, kChunk, flags, pc));
  } else if (chunks >= 2) {
    EncodeToBuffer(RawEvent::Run(addr, kChunk, chunks, kChunk, flags, pc));
    runs_emitted_.Add(1);
    events_coalesced_.Add(chunks - 1);
  }
  if (tail) {
    EncodeToBuffer(RawEvent::Access(addr + chunks * kChunk,
                                    static_cast<uint8_t>(tail), flags, pc));
  }
}

void ThreadTraceWriter::FlushBuffer(bool reacquire) {
  if (buffer_.empty()) return;
  // Hand the raw buffer to the flusher; compression happens off-thread
  // (paper SIII-A: "compressed and asynchronously written out"). The buffer
  // returns to the pool once written, and we take a recycled one back. The
  // event count rides along so a frame the flusher cannot get onto the disk
  // is accounted for exactly.
  Bytes raw;
  raw.swap(buffer_);
  config_.flusher->AppendFrame(config_.log_path, std::move(raw), config_.codec,
                               config_.format, buffer_events_);
  if (reacquire) buffer_ = config_.flusher->pool().Acquire(capacity_bytes_);
  buffer_events_ = 0;
  codec_state_ = EventCodecState{};  // frames are independently decodable
  flushes_.Add(1);
}

void ThreadTraceWriter::FlushEvents() {
  if (finished_) return;
  // A pending coalescer run is not in the buffer yet; a drain (crash
  // handler, Finalize) must not lose it.
  MaterializePending();
  // No reacquire: this is the drain path (Finalize, the crash handler),
  // where grabbing a fresh buffer while the flushed one is still in flight
  // would transiently double the pool charge. If the thread does log again,
  // Append lazily takes a new buffer.
  FlushBuffer(/*reacquire=*/false);
}

Bytes ThreadTraceWriter::EncodeMetaSnapshot(bool sealed) const {
  const DropRecord dropped = config_.flusher->DroppedFor(config_.log_path);
  MetaHeaderInfo info;
  info.thread_id = thread_id_;
  info.log_format = config_.format;
  info.crash_sealed = sealed;
  info.seal_signo = 0;  // the signal handler patches the real signo in place
  info.events_dropped = dropped.events;
  info.bytes_dropped = dropped.raw_bytes;
  info.accesses_dropped = accesses_dropped_.Get();
  info.degraded_dropped = degraded_dropped_.Get();
  info.elided_accesses = events_elided_.Get();
  info.elided_lost = elided_lost_.Get();
  info.transitions = &meta_.transitions;
  info.record_count = serialized_count_;
  ByteWriter w;
  EncodeMetaHeader(w, info);
  w.PutRaw(serialized_records_.data(), serialized_records_.size());
  return std::move(w.buffer());
}

void ThreadTraceWriter::PublishSealImage() {
  if (seal_slot_ == SealRegistry::kNoSlot) return;
  SealRegistry::Instance().Publish(seal_slot_,
                                   EncodeMetaSnapshot(/*sealed=*/true));
}

void ThreadTraceWriter::BeginSegment(const IntervalMeta& meta) {
  assert(!open_segment_ && "close the previous segment first");
  assert(pending_.count == 0 && "coalescer pending outside a segment");
  ResetFilter();  // nothing recorded in the new segment yet
  meta_.intervals.push_back(meta);
  meta_.intervals.back().data_begin = logical_offset_;
  meta_.intervals.back().data_size = 0;
  meta_.intervals.back().event_count = 0;
  segment_begin_events_ = events_logged_.Get();
  open_segment_ = true;
  segment_degraded_ = 0;
  segment_elided_ = 0;
  segment_max_level_ = 0;
  if (config_.governor) {
    if (++shed_gen_ == 0) {  // generation wrap: actually clear the slots
      for (size_t i = 0; i < kFilterSlots; i++) shed_[i] = ShedSlot{};
      shed_gen_ = 1;
    }
    PollGovernor();  // folds in transitions; seeds segment_max_level_
  }
}

void ThreadTraceWriter::EndSegment() {
  assert(open_segment_);
  MaterializePending();  // the run belongs to this segment's byte span
  if (config_.governor) PollGovernor();  // capture a mid-segment transition
  ResetFilter();
  IntervalMeta& m = meta_.intervals.back();
  m.data_size = logical_offset_ - m.data_begin;
  m.event_count = events_logged_.Get() - segment_begin_events_;
  m.degradation_level = segment_max_level_;
  m.degraded_dropped = segment_degraded_;
  m.elided = segment_elided_;
  open_segment_ = false;
  segment_degraded_ = 0;
  segment_elided_ = 0;
  // Empty segments carry no accesses and cannot participate in a race;
  // dropping them keeps meta files proportional to useful data. A segment
  // whose events were ALL shed by degradation is kept: its record is the
  // only per-interval evidence of the loss. (Elided > 0 with data_size == 0
  // cannot happen - every elision batch comes with a receipt append.)
  if (m.data_size == 0 && m.degraded_dropped == 0) {
    meta_.intervals.pop_back();
    return;
  }
  ByteWriter w(&serialized_records_);
  m.Serialize(w, /*version=*/4);
  serialized_count_++;
  // Crash-consistency: checkpoint the meta at barrier-interval granularity.
  // The atomic replace means a reader (or the offline analyzer after a
  // kill -9) sees a complete previous checkpoint, never a torn file. The
  // write is best-effort - a failing checkpoint must not take down the
  // traced application; Finish() surfaces persistent meta-write errors.
  if (config_.meta_checkpoint_interval > 0 &&
      ++segments_since_checkpoint_ >= config_.meta_checkpoint_interval) {
    segments_since_checkpoint_ = 0;
    (void)WriteFileAtomic(config_.meta_path, EncodeMetaSnapshot(),
                          config_.backend);
  }
  // The crash-seal image tracks checkpoint cadence: publish AFTER the
  // record was serialized so a seal at any instant covers every closed
  // segment up to here.
  PublishSealImage();
}

Status ThreadTraceWriter::Finish() {
  if (finished_) return Status::Ok();
  finished_ = true;
  if (open_segment_) EndSegment();
  FlushBuffer(/*reacquire=*/false);
  // Return the (possibly never-flushed) buffer to the pool so its memory
  // charge is dropped or recycled.
  if (buffer_.capacity() != 0) config_.flusher->pool().Release(std::move(buffer_));
  // The final meta folds in the flusher's drop totals for this log. They are
  // only complete once the flusher has drained; SwordTool::Finalize orders
  // FlushEvents -> Drain -> Finish for exactly that reason (a sync flusher
  // is always complete here).
  Status status = WriteFileAtomic(config_.meta_path, EncodeMetaSnapshot(),
                                  config_.backend);
  // The trace is complete: a crash from here on must NOT replace the final
  // meta with a crash-tagged image.
  if (seal_slot_ != SealRegistry::kNoSlot) {
    SealRegistry::Instance().Unregister(seal_slot_);
    seal_slot_ = SealRegistry::kNoSlot;
  }
  return status;
}

}  // namespace sword::trace
