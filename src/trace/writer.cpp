#include "trace/writer.h"

#include <cassert>

#include "common/fsutil.h"
#include "compress/frame.h"

namespace sword::trace {

ThreadTraceWriter::ThreadTraceWriter(uint32_t thread_id, const WriterConfig& config)
    : thread_id_(thread_id),
      config_(config),
      capacity_events_(config.buffer_bytes / kEventBytes),
      capacity_bytes_(capacity_events_ * kEventBytes) {
  assert(config_.flusher && "a Flusher is required");
  assert(capacity_events_ > 0 && "buffer too small for a single event");
  assert((config_.format == kTraceFormatV1 || config_.format == kTraceFormatV2) &&
         "unknown trace format");
  assert((config_.format == kTraceFormatV1 || capacity_bytes_ >= kMaxEventBytesV2) &&
         "buffer too small for one v2 event");
  if (!config_.codec) config_.codec = DefaultCompressor();
  if (!config_.backend) config_.backend = &RealFileBackend();
  // The bounded charge: one fixed buffer, owned by the flusher's pool so the
  // accounting follows the buffer through the flush pipeline.
  buffer_ = config_.flusher->pool().Acquire(capacity_bytes_);
  meta_.thread_id = thread_id;
  meta_.log_format = config_.format;
  // Start the log file empty so appends from a previous run never leak in,
  // and drop an empty meta checkpoint so a process killed before the first
  // barrier interval still leaves a well-formed (if empty) trace.
  (void)config_.backend->WriteWhole(config_.log_path, Bytes{});
  if (config_.meta_checkpoint_interval > 0) {
    (void)WriteFileAtomic(config_.meta_path, EncodeMetaSnapshot(),
                          config_.backend);
  }
}

ThreadTraceWriter::~ThreadTraceWriter() { (void)Finish(); }

void ThreadTraceWriter::Append(const RawEvent& event) {
  if (buffer_.capacity() == 0) {
    buffer_ = config_.flusher->pool().Acquire(capacity_bytes_);
  }
  if (config_.format == kTraceFormatV1) {
    if (buffer_.size() + kEventBytes > capacity_bytes_) FlushBuffer(true);
    // Hot path: one 16-byte append, little-endian (this is EncodeEvent's
    // layout, open-coded so the per-access cost stays in the nanoseconds).
    const size_t offset = buffer_.size();
    buffer_.resize(offset + kEventBytes);
    uint8_t* p = buffer_.data() + offset;
    p[0] = static_cast<uint8_t>(event.kind);
    p[1] = event.flags;
    p[2] = event.size;
    p[3] = 0;
    for (int i = 0; i < 4; i++) p[4 + i] = static_cast<uint8_t>(event.pc >> (8 * i));
    for (int i = 0; i < 8; i++) p[8 + i] = static_cast<uint8_t>(event.addr >> (8 * i));
    logical_offset_ += kEventBytes;
  } else {
    // Flush on the logical event-count capacity (the paper's knob) or when
    // the next event might not fit the reserved bytes (tiny-buffer guard).
    if (buffer_events_ >= capacity_events_ ||
        buffer_.size() + kMaxEventBytesV2 > capacity_bytes_) {
      FlushBuffer(true);
    }
    const size_t before = buffer_.size();
    ByteWriter w(&buffer_);
    EncodeEventV2(event, codec_state_, w);
    logical_offset_ += buffer_.size() - before;
  }
  buffer_events_++;
  events_logged_++;
}

void ThreadTraceWriter::FlushBuffer(bool reacquire) {
  if (buffer_.empty()) return;
  // Hand the raw buffer to the flusher; compression happens off-thread
  // (paper SIII-A: "compressed and asynchronously written out"). The buffer
  // returns to the pool once written, and we take a recycled one back. The
  // event count rides along so a frame the flusher cannot get onto the disk
  // is accounted for exactly.
  Bytes raw;
  raw.swap(buffer_);
  config_.flusher->AppendFrame(config_.log_path, std::move(raw), config_.codec,
                               config_.format, buffer_events_);
  if (reacquire) buffer_ = config_.flusher->pool().Acquire(capacity_bytes_);
  buffer_events_ = 0;
  codec_state_ = EventCodecState{};  // frames are independently decodable
  flushes_++;
}

void ThreadTraceWriter::FlushEvents() {
  if (finished_) return;
  // No reacquire: this is the drain path (Finalize, the crash handler),
  // where grabbing a fresh buffer while the flushed one is still in flight
  // would transiently double the pool charge. If the thread does log again,
  // Append lazily takes a new buffer.
  FlushBuffer(/*reacquire=*/false);
}

Bytes ThreadTraceWriter::EncodeMetaSnapshot() const {
  const DropRecord dropped = config_.flusher->DroppedFor(config_.log_path);
  ByteWriter w;
  EncodeMetaHeader(w, thread_id_, config_.format, dropped.events,
                   dropped.raw_bytes, serialized_count_);
  w.PutRaw(serialized_records_.data(), serialized_records_.size());
  return std::move(w.buffer());
}

void ThreadTraceWriter::BeginSegment(const IntervalMeta& meta) {
  assert(!open_segment_ && "close the previous segment first");
  meta_.intervals.push_back(meta);
  meta_.intervals.back().data_begin = logical_offset_;
  meta_.intervals.back().data_size = 0;
  meta_.intervals.back().event_count = 0;
  segment_begin_events_ = events_logged_;
  open_segment_ = true;
}

void ThreadTraceWriter::EndSegment() {
  assert(open_segment_);
  IntervalMeta& m = meta_.intervals.back();
  m.data_size = logical_offset_ - m.data_begin;
  m.event_count = events_logged_ - segment_begin_events_;
  open_segment_ = false;
  // Empty segments carry no accesses and cannot participate in a race;
  // dropping them keeps meta files proportional to useful data.
  if (m.data_size == 0) {
    meta_.intervals.pop_back();
    return;
  }
  ByteWriter w(&serialized_records_);
  m.Serialize(w, /*version=*/2);
  serialized_count_++;
  // Crash-consistency: checkpoint the meta at barrier-interval granularity.
  // The atomic replace means a reader (or the offline analyzer after a
  // kill -9) sees a complete previous checkpoint, never a torn file. The
  // write is best-effort - a failing checkpoint must not take down the
  // traced application; Finish() surfaces persistent meta-write errors.
  if (config_.meta_checkpoint_interval > 0 &&
      ++segments_since_checkpoint_ >= config_.meta_checkpoint_interval) {
    segments_since_checkpoint_ = 0;
    (void)WriteFileAtomic(config_.meta_path, EncodeMetaSnapshot(),
                          config_.backend);
  }
}

Status ThreadTraceWriter::Finish() {
  if (finished_) return Status::Ok();
  finished_ = true;
  if (open_segment_) EndSegment();
  FlushBuffer(/*reacquire=*/false);
  // Return the (possibly never-flushed) buffer to the pool so its memory
  // charge is dropped or recycled.
  if (buffer_.capacity() != 0) config_.flusher->pool().Release(std::move(buffer_));
  // The final meta folds in the flusher's drop totals for this log. They are
  // only complete once the flusher has drained; SwordTool::Finalize orders
  // FlushEvents -> Drain -> Finish for exactly that reason (a sync flusher
  // is always complete here).
  return WriteFileAtomic(config_.meta_path, EncodeMetaSnapshot(),
                         config_.backend);
}

}  // namespace sword::trace
