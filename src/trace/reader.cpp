#include "trace/reader.h"

#include <algorithm>
#include <cstdio>

#include "common/fsutil.h"
#include "compress/frame.h"

namespace sword::trace {

const Bytes* FrameCache::Lookup(const void* reader, uint64_t logical_begin) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->reader == reader && it->logical_begin == logical_begin) {
      entries_.splice(entries_.begin(), entries_, it);  // bump to MRU
      hits++;
      return &entries_.front().data;
    }
  }
  return nullptr;
}

const Bytes* FrameCache::Insert(const void* reader, uint64_t logical_begin, Bytes data) {
  bytes_ += data.size();
  entries_.push_front(Entry{reader, logical_begin, std::move(data)});
  misses++;
  // Evict LRU past the cap; the entry just inserted always survives so an
  // over-cap frame still gets served from the cache it was stored into.
  while (bytes_ > max_bytes_ && entries_.size() > 1) {
    bytes_ -= entries_.back().data.size();
    entries_.pop_back();
  }
  return &entries_.front().data;
}

Result<LogReader> LogReader::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::Io("cannot open log: " + path);

  LogReader reader;
  reader.path_ = path;

  // Header sizes are attacker-controlled until the payload checksum is
  // verified, so every claimed size is validated against the physical file
  // before it can size an allocation.
  std::fseek(f, 0, SEEK_END);
  const uint64_t file_size = static_cast<uint64_t>(std::ftell(f));

  // Walk frame headers without reading payloads. Headers are tiny; 64 bytes
  // always covers magic + codec name + three varints + checksum.
  uint64_t file_offset = 0;
  uint64_t logical = 0;
  while (true) {
    uint8_t header[64];
    if (std::fseek(f, static_cast<long>(file_offset), SEEK_SET) != 0) {
      std::fclose(f);
      return Status::Io("seek failed: " + path);
    }
    const size_t got = std::fread(header, 1, sizeof(header), f);
    if (got == 0) break;  // clean EOF

    ByteReader r(header, got);
    uint32_t magic;
    uint8_t format = 1;
    std::string codec;
    uint64_t raw_size, payload_size, checksum;
    Status s = r.GetU32(&magic);
    if (s.ok()) {
      if (magic == kFrameMagic) {
        format = 1;
      } else if (magic == kFrameMagicV2) {
        format = 2;
      } else {
        s = Status::Corrupt("bad frame magic");
      }
    }
    if (s.ok()) s = r.GetString(&codec);
    if (s.ok()) s = r.GetVarU64(&raw_size);
    if (s.ok()) s = r.GetVarU64(&payload_size);
    if (s.ok()) s = r.GetU64(&checksum);
    if (s.ok() && raw_size > kMaxFrameRawBytes) {
      s = Status::Corrupt("implausible frame raw size");
    }
    if (s.ok() && payload_size > file_size - file_offset) {
      s = Status::Corrupt("frame payload overruns file");
    }
    if (!s.ok()) {
      std::fclose(f);
      return Status::Corrupt("frame header at offset " + std::to_string(file_offset) +
                             ": " + s.ToString());
    }
    const uint64_t header_size = r.position();
    const uint64_t frame_size = header_size + payload_size;
    reader.frames_.push_back(
        FrameIndex{logical, raw_size, file_offset, frame_size, format});
    logical += raw_size;
    file_offset += frame_size;
  }
  std::fclose(f);
  reader.total_logical_ = logical;
  return reader;
}

Status LogReader::StreamRange(uint64_t begin, uint64_t size,
                              FunctionRef<void(const RawEvent&)> fn,
                              FrameCache* cache) const {
  if (size == 0) return Status::Ok();
  const uint64_t end = begin + size;
  if (end > total_logical_) return Status::Corrupt("range past end of log");

  // First frame whose logical range may overlap [begin, end).
  auto it = std::upper_bound(frames_.begin(), frames_.end(), begin,
                             [](uint64_t v, const FrameIndex& fi) {
                               return v < fi.logical_begin;
                             });
  if (it != frames_.begin()) --it;

  Bytes local;  // decompressed frame when no cache is supplied
  for (; it != frames_.end() && it->logical_begin < end; ++it) {
    const Bytes* frame_data = nullptr;
    if (cache) frame_data = cache->Lookup(this, it->logical_begin);
    if (!frame_data) {
      auto raw = ReadFileRange(path_, it->file_offset, it->file_size);
      if (!raw.ok()) return raw.status();
      ByteReader frame_reader(raw.value());
      FrameView view;
      SWORD_RETURN_IF_ERROR(ReadFrame(frame_reader, &view));
      if (view.raw_size != it->raw_size) {
        return Status::Corrupt("frame size changed under reader");
      }
      if (cache) {
        frame_data = cache->Insert(this, it->logical_begin, std::move(view.data));
      } else {
        local = std::move(view.data);
        frame_data = &local;
      }
    }
    const uint64_t frame_lo = it->logical_begin;
    const uint64_t frame_hi = frame_lo + frame_data->size();
    const uint64_t slice_lo = std::max(begin, frame_lo);
    const uint64_t slice_hi = std::min(end, frame_hi);

    if (it->payload_format == kTraceFormatV1) {
      // Fixed-size events: slice the overlap directly.
      if ((slice_lo - frame_lo) % kEventBytes != 0 ||
          (slice_hi - slice_lo) % kEventBytes != 0) {
        return Status::Invalid("range not event-aligned");
      }
      ByteReader events(frame_data->data() + (slice_lo - frame_lo),
                        slice_hi - slice_lo);
      while (!events.AtEnd()) {
        RawEvent e;
        SWORD_RETURN_IF_ERROR(DecodeEvent(events, &e));
        fn(e);
      }
    } else {
      // Variable-length delta events: the coder state is only valid from the
      // frame start, so decode from there and discard events before the
      // slice. Interval boundaries always fall on event boundaries; anything
      // else means the meta and log disagree.
      ByteReader events(frame_data->data(), frame_data->size());
      EventCodecState state;
      uint64_t pos = frame_lo;
      while (pos < slice_hi && !events.AtEnd()) {
        RawEvent e;
        SWORD_RETURN_IF_ERROR(DecodeEventV2(events, state, &e));
        const uint64_t next = frame_lo + events.position();
        if (next <= slice_lo) {
          pos = next;
          continue;  // wholly before the range
        }
        if (pos < slice_lo || next > slice_hi) {
          return Status::Invalid("range not event-aligned");
        }
        fn(e);
        pos = next;
      }
    }
  }
  return Status::Ok();
}

Status LogReader::ReadRange(uint64_t begin, uint64_t size,
                            std::vector<RawEvent>* out) const {
  out->clear();
  // Heuristic: exact for v1 (16 bytes/event); a safe floor for the denser v2.
  // Clamped so a corrupt index claiming a huge logical range cannot force an
  // enormous allocation before streaming even starts.
  out->reserve(std::min<uint64_t>(size / kEventBytes, 1u << 20));
  return StreamRange(begin, size, [&](const RawEvent& e) { out->push_back(e); });
}

}  // namespace sword::trace
