#include "trace/reader.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/fsutil.h"
#include "compress/frame.h"

namespace sword::trace {

const Bytes* FrameCache::Lookup(const void* reader, uint64_t logical_begin) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->reader == reader && it->logical_begin == logical_begin) {
      entries_.splice(entries_.begin(), entries_, it);  // bump to MRU
      hits++;
      return &entries_.front().data;
    }
  }
  return nullptr;
}

const Bytes* FrameCache::Insert(const void* reader, uint64_t logical_begin, Bytes data) {
  bytes_ += data.size();
  entries_.push_front(Entry{reader, logical_begin, std::move(data)});
  misses++;
  // Evict LRU past the cap; the entry just inserted always survives so an
  // over-cap frame still gets served from the cache it was stored into.
  while (bytes_ > max_bytes_ && entries_.size() > 1) {
    bytes_ -= entries_.back().data.size();
    entries_.pop_back();
  }
  return &entries_.front().data;
}

namespace {

/// Matches a frame magic byte-by-byte (the on-disk encoding is little-endian
/// regardless of host order, see ByteWriter::PutU32).
bool MagicAt(const uint8_t* p, uint32_t magic) {
  return p[0] == (magic & 0xffu) && p[1] == ((magic >> 8) & 0xffu) &&
         p[2] == ((magic >> 16) & 0xffu) && p[3] == ((magic >> 24) & 0xffu);
}

bool AnyMagicAt(const uint8_t* p) {
  return MagicAt(p, kFrameMagic) || MagicAt(p, kFrameMagicV2) ||
         MagicAt(p, kFrameMagicV3) || MagicAt(p, kFrameMagicGap) ||
         MagicAt(p, kFrameMagicCrash);
}

/// Offset of the first frame magic at or after `from`, or `size` if none.
size_t FindNextMagic(const uint8_t* data, size_t size, size_t from) {
  for (size_t i = from; i + 4 <= size; ++i) {
    if (AnyMagicAt(data + i)) return i;
  }
  return size;
}

/// One frame or damaged region found by ScanLogBuffer, in file order.
struct ScannedFrame {
  uint64_t file_offset = 0;
  uint64_t encoded_size = 0;
  uint64_t raw_size = 0;
  uint8_t payload_format = 0;  // 0 for gaps and unidentifiable regions
  std::string codec;
  bool is_gap = false;
  uint64_t dropped_events = 0;
  bool is_crash = false;        // fatal-signal crash marker
  uint8_t crash_signo = 0;
  bool offset_trusted = false;  // logical_begin is meaningful
  bool size_known = false;      // raw_size can be trusted (even if corrupt)
  uint64_t logical_begin = 0;
  Status status;
};

/// Salvage scanner: walks the whole file, resynchronizing on damage, and
/// reports every frame and skipped region. This is THE definition of the
/// offset-trust rules (see docs/FORMAT.md):
///   - intact frame: trusted, advances the logical stream;
///   - checksum-mismatch frame whose claimed end lands on a valid next magic
///     (or exactly at EOF): a known-size hole - later offsets stay trusted;
///   - unparseable header / implausible claimed end: unknown-size hole -
///     trust is lost and every later frame is "unaddressable";
///   - gap frame: record-time drop marker, a trusted hole by construction.
void ScanLogBuffer(const uint8_t* data, size_t size, bool verify_payloads,
                   std::vector<ScannedFrame>* frames, SalvageStats* stats) {
  size_t off = 0;
  bool trusted = true;
  uint64_t logical = 0;
  while (off < size) {
    ScannedFrame sf;
    sf.file_offset = off;
    sf.offset_trusted = trusted;
    sf.logical_begin = logical;

    if (size - off < 4 || !AnyMagicAt(data + off)) {
      const size_t next = FindNextMagic(data, size, off + 1);
      if (next == size) {
        stats->truncated_tail_bytes += size - off;
        sf.encoded_size = size - off;
        sf.status = Status::Corrupt("unrecognized bytes to end of file");
        frames->push_back(std::move(sf));
        break;
      }
      stats->resyncs++;
      stats->bytes_skipped += next - off;
      stats->frames_corrupt++;
      trusted = false;  // unknown how many logical bytes the hole held
      sf.encoded_size = next - off;
      sf.status = Status::Corrupt("unrecognized bytes; resynchronized");
      frames->push_back(std::move(sf));
      off = next;
      continue;
    }

    Status bad;  // why this spot failed to parse, for the resync record
    if (MagicAt(data + off, kFrameMagicCrash)) {
      // Fatal-signal crash marker: fixed 13 bytes, zero logical extent. A
      // marker mid-stream is expected evidence (the sealer appends it no
      // matter where a concurrent flush was torn); a checksum failure here
      // falls through to the normal resync path.
      ByteReader cr(data + off, size - off);
      FrameView view;
      Status s = ReadFrame(cr, &view);
      if (s.ok()) {
        sf.is_crash = true;
        sf.crash_signo = view.crash_signo;
        sf.size_known = true;
        sf.raw_size = 0;
        sf.encoded_size = view.frame_size;
        sf.status = Status::Ok();
        stats->crash_markers++;
        stats->crash_signo = view.crash_signo;
        frames->push_back(std::move(sf));
        off += view.frame_size;
        continue;
      }
      bad = s;
    } else if (MagicAt(data + off, kFrameMagicGap)) {
      ByteReader gr(data + off, size - off);
      FrameView view;
      Status s = ReadFrame(gr, &view);  // gap frames have no payload: cheap
      if (s.ok()) {
        sf.is_gap = true;
        sf.size_known = true;
        sf.raw_size = view.raw_size;
        sf.dropped_events = view.dropped_events;
        sf.encoded_size = view.frame_size;
        sf.status = Status::Ok();
        stats->gap_frames++;
        stats->bytes_dropped_at_record += view.raw_size;
        stats->events_dropped_at_record += view.dropped_events;
        if (trusted) logical += view.raw_size;
        frames->push_back(std::move(sf));
        off += view.frame_size;
        continue;
      }
      bad = s;
    } else {
      ByteReader r(data + off, size - off);
      uint32_t magic = 0;
      (void)r.GetU32(&magic);
      const uint8_t format =
          magic == kFrameMagic ? 1 : magic == kFrameMagicV2 ? 2 : 3;
      std::string codec;
      uint64_t raw_size = 0, payload_size = 0, checksum = 0;
      Status s = r.GetString(&codec);
      if (s.ok()) s = r.GetVarU64(&raw_size);
      if (s.ok()) s = r.GetVarU64(&payload_size);
      if (s.ok()) s = r.GetU64(&checksum);
      if (s.ok() && raw_size > kMaxFrameRawBytes) {
        s = Status::Corrupt("implausible frame raw size");
      }
      if (s.ok() && payload_size <= r.remaining()) {
        const uint64_t header_size = r.position();
        const uint64_t frame_size = header_size + payload_size;
        sf.payload_format = format;
        sf.codec = codec;
        sf.raw_size = raw_size;
        sf.encoded_size = frame_size;
        bool checksum_ok = true;
        if (verify_payloads) {
          checksum_ok =
              Fnv1a64(data + off + header_size, payload_size) == checksum;
        }
        // The checksum covers only the payload, so a damaged raw_size field
        // would otherwise verify. The identity codec gives one free cross-
        // check: its raw size must equal its payload size.
        const bool raw_mismatch = codec == "raw" && raw_size != payload_size;
        if (checksum_ok && !raw_mismatch && FindCompressor(codec) != nullptr) {
          sf.size_known = true;
          sf.status = Status::Ok();
          if (trusted) {
            stats->frames_ok++;
            logical += raw_size;
          } else {
            stats->frames_unaddressable++;
          }
          frames->push_back(std::move(sf));
          off += frame_size;
          continue;
        }
        sf.status =
            !checksum_ok ? Status::Corrupt("frame checksum mismatch")
            : raw_mismatch
                ? Status::Corrupt("raw frame size disagrees with payload size")
                : Status::Corrupt("unknown codec: " + codec);
        // Known-size hole? Only if the header's claimed end is corroborated
        // by what actually sits there: the next frame's magic, or EOF.
        const uint64_t end = off + frame_size;
        const bool plausible_end =
            end == size || (end + 4 <= size && AnyMagicAt(data + end));
        if (plausible_end) {
          sf.size_known = true;
          // Identity codec: the payload IS the raw data, so when the two
          // size fields disagree (a damaged raw_size varint) the payload
          // size is the trustworthy logical extent of the hole.
          if (raw_mismatch) sf.raw_size = payload_size;
          stats->frames_corrupt++;
          if (trusted) logical += sf.raw_size;  // hole of known logical extent
          frames->push_back(std::move(sf));
          off = end;
          continue;
        }
        bad = sf.status;
      } else if (s.ok()) {
        bad = Status::Corrupt("frame payload overruns end of file");
      } else {
        bad = s;
      }
    }

    // Unparseable at a magic: resync from just past it so the scan cannot
    // rematch the same offset.
    const size_t next = FindNextMagic(data, size, off + 4);
    sf.raw_size = 0;
    sf.size_known = false;
    sf.is_gap = false;
    sf.is_crash = false;
    if (next == size) {
      // The file ends inside this frame: mid-frame truncation.
      stats->truncated_tail_bytes += size - off;
      sf.encoded_size = size - off;
      sf.status = Status::Corrupt("truncated frame: " + bad.ToString());
      frames->push_back(std::move(sf));
      break;
    }
    stats->resyncs++;
    stats->bytes_skipped += next - off;
    stats->frames_corrupt++;
    trusted = false;
    sf.encoded_size = next - off;
    sf.status = Status::Corrupt("resynchronized past: " + bad.ToString());
    frames->push_back(std::move(sf));
    off = next;
  }
}

}  // namespace

Result<LogReader> LogReader::Open(const std::string& path,
                                  const SalvagePolicy& policy) {
  if (policy.enabled) {
    // Salvage trades the header-only walk for a full read: resynchronization
    // and checksum verification need the actual bytes. Recovery of a damaged
    // trace is a cold path; the streaming guarantees still hold afterwards.
    auto bytes = ReadFileBytes(path);
    if (!bytes.ok()) return bytes.status();
    const Bytes& buf = bytes.value();

    LogReader reader;
    reader.path_ = path;
    reader.policy_ = policy;
    std::vector<ScannedFrame> scanned;
    ScanLogBuffer(buf.data(), buf.size(), policy.verify_payloads, &scanned,
                  &reader.stats_);
    uint64_t logical = 0;
    for (const ScannedFrame& sf : scanned) {
      if (!sf.offset_trusted || !sf.size_known) continue;
      FrameState state = FrameState::kOk;
      if (sf.is_gap) {
        state = FrameState::kGap;
      } else if (sf.is_crash) {
        state = FrameState::kCrash;
      } else if (!sf.status.ok()) {
        state = FrameState::kCorrupt;
      }
      reader.frames_.push_back(FrameIndex{logical, sf.raw_size, sf.file_offset,
                                          sf.encoded_size, sf.payload_format,
                                          state});
      logical += sf.raw_size;
    }
    reader.total_logical_ = logical;
    return reader;
  }

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::Io("cannot open log: " + path);

  LogReader reader;
  reader.path_ = path;
  reader.policy_ = policy;

  // Header sizes are attacker-controlled until the payload checksum is
  // verified, so every claimed size is validated against the physical file
  // before it can size an allocation.
  std::fseek(f, 0, SEEK_END);
  const uint64_t file_size = static_cast<uint64_t>(std::ftell(f));

  // Walk frame headers without reading payloads. Headers are tiny; 64 bytes
  // always covers magic + codec name + three varints + checksum (and a whole
  // gap frame).
  uint64_t file_offset = 0;
  uint64_t logical = 0;
  while (true) {
    uint8_t header[64];
    if (std::fseek(f, static_cast<long>(file_offset), SEEK_SET) != 0) {
      std::fclose(f);
      return Status::Io("seek failed: " + path);
    }
    const size_t got = std::fread(header, 1, sizeof(header), f);
    if (got == 0) break;  // clean EOF

    ByteReader r(header, got);
    uint32_t magic;
    uint8_t format = 1;
    std::string codec;
    uint64_t raw_size, payload_size, checksum;
    Status s = r.GetU32(&magic);

    if (s.ok() && magic == kFrameMagicCrash) {
      // Crash markers are legal in strict mode too: they are the sealer's
      // honest record, occupy zero logical bytes, and never overlap an
      // interval read.
      ByteReader cr(header, got);
      FrameView view;
      s = ReadFrame(cr, &view);
      if (!s.ok()) {
        std::fclose(f);
        return Status::Corrupt("crash marker at offset " +
                               std::to_string(file_offset) + ": " + s.ToString());
      }
      reader.frames_.push_back(FrameIndex{logical, 0, file_offset,
                                          view.frame_size, 0, FrameState::kCrash});
      reader.stats_.crash_markers++;
      reader.stats_.crash_signo = view.crash_signo;
      file_offset += view.frame_size;
      continue;
    }

    if (s.ok() && magic == kFrameMagicGap) {
      // Gap frames fit in the header buffer; parse them wholesale. They are
      // legal in strict mode (the writer recorded the drop honestly) - the
      // error surfaces if an interval read actually touches the hole.
      ByteReader gr(header, got);
      FrameView view;
      s = ReadFrame(gr, &view);
      if (!s.ok()) {
        std::fclose(f);
        return Status::Corrupt("gap frame at offset " +
                               std::to_string(file_offset) + ": " + s.ToString());
      }
      reader.frames_.push_back(FrameIndex{logical, view.raw_size, file_offset,
                                          view.frame_size, 0, FrameState::kGap});
      reader.stats_.gap_frames++;
      reader.stats_.bytes_dropped_at_record += view.raw_size;
      reader.stats_.events_dropped_at_record += view.dropped_events;
      logical += view.raw_size;
      file_offset += view.frame_size;
      continue;
    }

    if (s.ok()) {
      if (magic == kFrameMagic) {
        format = 1;
      } else if (magic == kFrameMagicV2) {
        format = 2;
      } else if (magic == kFrameMagicV3) {
        format = 3;
      } else {
        s = Status::Corrupt("bad frame magic");
      }
    }
    if (s.ok()) s = r.GetString(&codec);
    if (s.ok()) s = r.GetVarU64(&raw_size);
    if (s.ok()) s = r.GetVarU64(&payload_size);
    if (s.ok()) s = r.GetU64(&checksum);
    if (s.ok() && raw_size > kMaxFrameRawBytes) {
      s = Status::Corrupt("implausible frame raw size");
    }
    // r.position() is the header size here; the payload must fit in what is
    // left of the file AFTER the header, or a file truncated inside the
    // final frame would slip through the walk.
    if (s.ok() && payload_size > file_size - file_offset - r.position()) {
      s = Status::Corrupt("frame payload overruns file");
    }
    if (!s.ok()) {
      std::fclose(f);
      return Status::Corrupt("frame header at offset " + std::to_string(file_offset) +
                             ": " + s.ToString());
    }
    const uint64_t header_size = r.position();
    const uint64_t frame_size = header_size + payload_size;
    reader.frames_.push_back(FrameIndex{logical, raw_size, file_offset,
                                        frame_size, format, FrameState::kOk});
    reader.stats_.frames_ok++;
    logical += raw_size;
    file_offset += frame_size;
  }
  std::fclose(f);
  reader.total_logical_ = logical;
  return reader;
}

uint64_t LogReader::CompressedBytesForRange(uint64_t begin, uint64_t size) const {
  if (size == 0) return 0;
  const uint64_t end = begin + size;
  auto it = std::upper_bound(frames_.begin(), frames_.end(), begin,
                             [](uint64_t v, const FrameIndex& fi) {
                               return v < fi.logical_begin;
                             });
  if (it != frames_.begin()) --it;
  uint64_t bytes = 0;
  for (; it != frames_.end() && it->logical_begin < end; ++it) {
    const uint64_t frame_hi = it->logical_begin + it->raw_size;
    if (frame_hi <= begin || it->state != FrameState::kOk) continue;
    bytes += it->file_size;
  }
  return bytes;
}

Status LogReader::StreamRange(uint64_t begin, uint64_t size,
                              FunctionRef<void(const RawEvent&)> fn,
                              FrameCache* cache,
                              uint64_t* bytes_skipped,
                              DecodeCursor* cursor) const {
  if (size == 0) return Status::Ok();
  uint64_t end = begin + size;
  if (end > total_logical_) {
    if (!policy_.enabled) return Status::Corrupt("range past end of log");
    // Salvage: the meta promised more bytes than the log still holds (the
    // tail died with the process). Serve what survived, count the rest.
    if (begin >= total_logical_) {
      if (bytes_skipped) *bytes_skipped += size;
      return Status::Ok();
    }
    if (bytes_skipped) *bytes_skipped += end - total_logical_;
    end = total_logical_;
  }

  // First frame whose logical range may overlap [begin, end).
  auto it = std::upper_bound(frames_.begin(), frames_.end(), begin,
                             [](uint64_t v, const FrameIndex& fi) {
                               return v < fi.logical_begin;
                             });
  if (it != frames_.begin()) --it;

  Bytes local;  // decompressed frame when no cache is supplied
  for (; it != frames_.end() && it->logical_begin < end; ++it) {
    const uint64_t frame_lo = it->logical_begin;
    const uint64_t frame_hi = frame_lo + it->raw_size;
    const uint64_t slice_lo = std::max(begin, frame_lo);
    const uint64_t slice_hi = std::min(end, frame_hi);
    if (slice_hi <= slice_lo) continue;  // zero-size frame or no overlap

    if (it->state != FrameState::kOk) {
      const char* what = it->state == FrameState::kGap
                             ? "events dropped at record time (gap frame)"
                             : "corrupt frame in range";
      if (!policy_.enabled) return Status::Corrupt(what);
      if (bytes_skipped) *bytes_skipped += slice_hi - slice_lo;
      continue;
    }

    // Decode this frame's overlap; in salvage mode a failure here (payload
    // unreadable, decode error) skips the frame's contribution instead of
    // aborting the walk.
    Status s = [&]() -> Status {
      const Bytes* frame_data = nullptr;
      if (cache) frame_data = cache->Lookup(this, it->logical_begin);
      if (!frame_data) {
        auto raw = ReadFileRange(path_, it->file_offset, it->file_size);
        if (!raw.ok()) return raw.status();
        ByteReader frame_reader(raw.value());
        FrameView view;
        SWORD_RETURN_IF_ERROR(ReadFrame(frame_reader, &view));
        if (view.raw_size != it->raw_size) {
          return Status::Corrupt("frame size changed under reader");
        }
        if (cache) {
          frame_data = cache->Insert(this, it->logical_begin, std::move(view.data));
        } else {
          local = std::move(view.data);
          frame_data = &local;
        }
      }

      if (it->payload_format == kTraceFormatV1) {
        // Fixed-size events: slice the overlap directly.
        if ((slice_lo - frame_lo) % kEventBytes != 0 ||
            (slice_hi - slice_lo) % kEventBytes != 0) {
          return Status::Invalid("range not event-aligned");
        }
        ByteReader events(frame_data->data() + (slice_lo - frame_lo),
                          slice_hi - slice_lo);
        while (!events.AtEnd()) {
          RawEvent e;
          SWORD_RETURN_IF_ERROR(DecodeEvent(events, &e));
          fn(e);
        }
      } else {
        // Variable-length delta events: the coder state is only valid from the
        // frame start, so decode from there and discard events before the
        // slice - unless a cursor from a previous call already holds valid
        // state at or before the slice, in which case resume there. Interval
        // boundaries always fall on event boundaries; anything else means the
        // meta and log disagree.
        uint64_t base = 0;
        EventCodecState state;
        uint64_t pos = frame_lo;
        if (cursor && cursor->valid && cursor->frame_begin == frame_lo &&
            cursor->pos <= slice_lo && cursor->byte_offset <= frame_data->size()) {
          base = cursor->byte_offset;
          state = cursor->state;
          pos = cursor->pos;
        }
        if (cursor) cursor->valid = false;  // re-validated on a clean finish
        ByteReader events(frame_data->data() + base, frame_data->size() - base);
        const bool v3 = it->payload_format >= kTraceFormatV3;
        while (pos < slice_hi && !events.AtEnd()) {
          RawEvent e;
          SWORD_RETURN_IF_ERROR(v3 ? DecodeEventV3(events, state, &e)
                                   : DecodeEventV2(events, state, &e));
          const uint64_t next = frame_lo + base + events.position();
          if (next <= slice_lo) {
            pos = next;
            continue;  // wholly before the range
          }
          if (pos < slice_lo || next > slice_hi) {
            return Status::Invalid("range not event-aligned");
          }
          fn(e);
          pos = next;
        }
        if (cursor) {
          cursor->frame_begin = frame_lo;
          cursor->pos = pos;
          cursor->byte_offset = base + events.position();
          cursor->state = state;
          cursor->valid = true;
        }
      }
      return Status::Ok();
    }();
    if (!s.ok()) {
      if (!policy_.enabled) return s;
      if (bytes_skipped) *bytes_skipped += slice_hi - slice_lo;
    }
  }
  return Status::Ok();
}

Status LogReader::ReadRange(uint64_t begin, uint64_t size,
                            std::vector<RawEvent>* out) const {
  out->clear();
  // Heuristic: exact for v1 (16 bytes/event); a safe floor for the denser v2.
  // Clamped so a corrupt index claiming a huge logical range cannot force an
  // enormous allocation before streaming even starts.
  out->reserve(std::min<uint64_t>(size / kEventBytes, 1u << 20));
  return StreamRange(begin, size, [&](const RawEvent& e) { out->push_back(e); });
}

Result<SalvageStats> LogReader::VerifyLog(
    const std::string& path, FunctionRef<void(const FrameRecord&)> fn) {
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  const Bytes& buf = bytes.value();

  std::vector<ScannedFrame> scanned;
  SalvageStats stats;
  ScanLogBuffer(buf.data(), buf.size(), /*verify_payloads=*/true, &scanned,
                &stats);
  uint64_t index = 0;
  for (const ScannedFrame& sf : scanned) {
    FrameRecord rec;
    rec.index = index++;
    rec.file_offset = sf.file_offset;
    rec.encoded_size = sf.encoded_size;
    rec.raw_size = sf.raw_size;
    rec.payload_format = sf.payload_format;
    rec.codec = sf.codec;
    rec.is_gap = sf.is_gap;
    rec.dropped_events = sf.dropped_events;
    rec.is_crash = sf.is_crash;
    rec.crash_signo = sf.crash_signo;
    rec.offset_trusted = sf.offset_trusted && sf.size_known;
    rec.logical_begin = sf.logical_begin;
    rec.status = sf.status;
    fn(rec);
  }
  return stats;
}

}  // namespace sword::trace
