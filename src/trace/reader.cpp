#include "trace/reader.h"

#include <algorithm>
#include <cstdio>

#include "common/fsutil.h"
#include "compress/frame.h"

namespace sword::trace {

Result<LogReader> LogReader::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::Io("cannot open log: " + path);

  LogReader reader;
  reader.path_ = path;

  // Walk frame headers without reading payloads. Headers are tiny; 64 bytes
  // always covers magic + codec name + three varints + checksum.
  uint64_t file_offset = 0;
  uint64_t logical = 0;
  while (true) {
    uint8_t header[64];
    if (std::fseek(f, static_cast<long>(file_offset), SEEK_SET) != 0) {
      std::fclose(f);
      return Status::Io("seek failed: " + path);
    }
    const size_t got = std::fread(header, 1, sizeof(header), f);
    if (got == 0) break;  // clean EOF

    ByteReader r(header, got);
    uint32_t magic;
    std::string codec;
    uint64_t raw_size, payload_size, checksum;
    Status s = r.GetU32(&magic);
    if (s.ok() && magic != kFrameMagic) s = Status::Corrupt("bad frame magic");
    if (s.ok()) s = r.GetString(&codec);
    if (s.ok()) s = r.GetVarU64(&raw_size);
    if (s.ok()) s = r.GetVarU64(&payload_size);
    if (s.ok()) s = r.GetU64(&checksum);
    if (!s.ok()) {
      std::fclose(f);
      return Status::Corrupt("frame header at offset " + std::to_string(file_offset) +
                             ": " + s.ToString());
    }
    const uint64_t header_size = r.position();
    const uint64_t frame_size = header_size + payload_size;
    reader.frames_.push_back(FrameIndex{logical, raw_size, file_offset, frame_size});
    logical += raw_size;
    file_offset += frame_size;
  }
  std::fclose(f);
  reader.total_logical_ = logical;
  return reader;
}

Status LogReader::StreamRange(uint64_t begin, uint64_t size,
                              const std::function<void(const RawEvent&)>& fn,
                              FrameCache* cache) const {
  if (size == 0) return Status::Ok();
  const uint64_t end = begin + size;
  if (end > total_logical_) return Status::Corrupt("range past end of log");
  if (begin % kEventBytes != 0 || size % kEventBytes != 0) {
    return Status::Invalid("range not event-aligned");
  }

  // First frame whose logical range may overlap [begin, end).
  auto it = std::upper_bound(frames_.begin(), frames_.end(), begin,
                             [](uint64_t v, const FrameIndex& fi) {
                               return v < fi.logical_begin;
                             });
  if (it != frames_.begin()) --it;

  Bytes local;  // decompressed frame when no cache is supplied
  for (; it != frames_.end() && it->logical_begin < end; ++it) {
    const Bytes* frame_data = nullptr;
    if (cache && cache->reader == this && cache->logical_begin == it->logical_begin) {
      cache->hits++;
      frame_data = &cache->data;
    } else {
      auto raw = ReadFileRange(path_, it->file_offset, it->file_size);
      if (!raw.ok()) return raw.status();
      ByteReader frame_reader(raw.value());
      FrameView view;
      SWORD_RETURN_IF_ERROR(ReadFrame(frame_reader, &view));
      if (view.raw_size != it->raw_size) {
        return Status::Corrupt("frame size changed under reader");
      }
      if (cache) {
        cache->reader = this;
        cache->logical_begin = it->logical_begin;
        cache->data = std::move(view.data);
        cache->misses++;
        frame_data = &cache->data;
      } else {
        local = std::move(view.data);
        frame_data = &local;
      }
    }
    // Slice the overlap of this frame with the requested range.
    const uint64_t frame_lo = it->logical_begin;
    const uint64_t frame_hi = frame_lo + frame_data->size();
    const uint64_t slice_lo = std::max(begin, frame_lo);
    const uint64_t slice_hi = std::min(end, frame_hi);
    ByteReader events(frame_data->data() + (slice_lo - frame_lo),
                      slice_hi - slice_lo);
    while (!events.AtEnd()) {
      RawEvent e;
      SWORD_RETURN_IF_ERROR(DecodeEvent(events, &e));
      fn(e);
    }
  }
  return Status::Ok();
}

Status LogReader::ReadRange(uint64_t begin, uint64_t size,
                            std::vector<RawEvent>* out) const {
  out->clear();
  out->reserve(size / kEventBytes);
  return StreamRange(begin, size, [&](const RawEvent& e) { out->push_back(e); });
}

}  // namespace sword::trace
