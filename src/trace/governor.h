// Adaptive degradation governor: the tracer's answer to sustained backend
// pressure (slow disks, ENOSPC storms, starved flush credits, exhausted
// buffer pools). Instead of the only two historical responses — block the
// producer or drop wholesale with a gap frame — the governor steps the
// online tracer through explicit fidelity levels:
//
//   kFull        full tracing (level 0)
//   kAggressive  per-site event cap: each PC keeps its first
//                kAggressiveSiteCap events per segment (level 1)
//   kSampling    per-site sampling: each PC keeps 1-in-sample_keep_period
//                events, always including the first (level 2)
//   kSummary     summary only: each PC keeps exactly its first event per
//                segment (level 3)
//
// Every shed event is COUNTED (per-segment degraded_dropped in the interval
// record, totals in the meta header), and every level change is recorded in
// the meta `degradation` section, so offline analysis knows exactly which
// barrier intervals ran at reduced fidelity. Degradation only ever REMOVES
// events: a race found in a degraded interval is still a real race; only
// the absence of a report loses meaning. See docs/RESILIENCE.md.
//
// Pressure inputs are relaxed atomic counters bumped from producer and
// flusher threads; Evaluate() (called from the flusher's worker loop and
// the synchronous flush path) folds the deltas, steps DOWN immediately when
// any threshold trips, and steps back UP one level only after
// calm_evals_to_recover consecutive calm evaluations (hysteresis, so a
// flapping disk cannot make the tracer oscillate per event).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "trace/meta.h"

namespace sword::trace {

enum class DegradationLevel : uint8_t {
  kFull = 0,
  kAggressive = 1,
  kSampling = 2,
  kSummary = 3,
};

constexpr uint8_t kDegradationLevels = 4;

const char* DegradationLevelName(uint8_t level);

/// Reason bits recorded with each transition (DegradationTransition::reason).
constexpr uint8_t kGovernorReasonBlocked = 0x01;   // producer blocked_nanos
constexpr uint8_t kGovernorReasonCredit = 0x02;    // flush credit starvation
constexpr uint8_t kGovernorReasonPool = 0x04;      // buffer pool exhaustion
constexpr uint8_t kGovernorReasonIoLatency = 0x08; // append latency EWMA
constexpr uint8_t kGovernorReasonWatchdog = 0x10;  // I/O watchdog drop
constexpr uint8_t kGovernorReasonRecovered = 0x20; // step back up (calm)

struct GovernorConfig {
  bool enabled = true;
  /// New producer-blocked nanos per evaluation that trigger a step down.
  uint64_t blocked_nanos_step = 2'000'000;
  /// Credit-starvation events (producer found zero credits) per evaluation
  /// that trigger a step down.
  uint64_t credit_stalls_step = 64;
  /// Append-latency EWMA (nanos per append) that triggers a step down.
  uint64_t io_latency_step_nanos = 50'000'000;
  /// Consecutive calm evaluations before stepping one level back up.
  uint32_t calm_evals_to_recover = 8;
  /// kSampling keeps 1 in this many events per site (first always kept).
  uint32_t sample_keep_period = 8;
  /// kAggressive keeps at most this many events per site per segment.
  uint32_t aggressive_site_cap = 1024;
};

class DegradationGovernor {
 public:
  explicit DegradationGovernor(const GovernorConfig& config = {});

  DegradationGovernor(const DegradationGovernor&) = delete;
  DegradationGovernor& operator=(const DegradationGovernor&) = delete;

  // ---- pressure inputs: relaxed atomics, callable from any thread ----
  void NotePoolExhausted() { pool_exhausted_.fetch_add(1, std::memory_order_relaxed); }
  void NoteCreditStall() { credit_stalls_.fetch_add(1, std::memory_order_relaxed); }
  void NoteWatchdogDrop() { watchdog_drops_.fetch_add(1, std::memory_order_relaxed); }
  void NoteBlockedNanos(uint64_t nanos) {
    blocked_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }
  void NoteAppendLatency(uint64_t nanos) {
    append_nanos_.fetch_add(nanos, std::memory_order_relaxed);
    append_count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Current level. Cheap relaxed load, safe on the per-access hot path.
  uint8_t level_ordinal() const {
    return static_cast<uint8_t>(packed_.load(std::memory_order_relaxed));
  }
  DegradationLevel level() const {
    return static_cast<DegradationLevel>(level_ordinal());
  }

  /// Packed (seq << 16 | reason << 8 | level) snapshot. Writers poll this:
  /// a changed seq means a transition happened since they last looked, and
  /// the reason/level in the SAME load are the ones to record — one atomic
  /// word, so a torn (level-from-one-transition, reason-from-another) pair
  /// is impossible.
  uint64_t PackedState() const { return packed_.load(std::memory_order_acquire); }
  static uint8_t PackedLevel(uint64_t packed) { return static_cast<uint8_t>(packed); }
  static uint8_t PackedReason(uint64_t packed) { return static_cast<uint8_t>(packed >> 8); }
  static uint64_t PackedSeq(uint64_t packed) { return packed >> 16; }

  /// Folds pressure-counter deltas and steps the level. Called periodically
  /// from flusher worker loops / the sync flush path; any cadence is safe.
  void Evaluate();

  /// Transition history (level entered, reason, eval ordinal in
  /// DegradationTransition::interval). Snapshot under the mutex.
  std::vector<DegradationTransition> Transitions() const;

  uint64_t evaluations() const { return evals_.load(std::memory_order_relaxed); }

  const GovernorConfig& config() const { return config_; }

 private:
  void TransitionLocked(uint8_t new_level, uint8_t reason);

  const GovernorConfig config_;
  std::atomic<uint64_t> packed_{0};  // seq<<16 | reason<<8 | level

  // Pressure inputs (monotonic totals; Evaluate consumes deltas).
  std::atomic<uint64_t> pool_exhausted_{0};
  std::atomic<uint64_t> credit_stalls_{0};
  std::atomic<uint64_t> watchdog_drops_{0};
  std::atomic<uint64_t> blocked_nanos_{0};
  std::atomic<uint64_t> append_nanos_{0};
  std::atomic<uint64_t> append_count_{0};
  std::atomic<uint64_t> evals_{0};

  mutable std::mutex mu_;
  // Last-consumed totals (guarded by mu_).
  uint64_t seen_pool_ = 0;
  uint64_t seen_credit_ = 0;
  uint64_t seen_watchdog_ = 0;
  uint64_t seen_blocked_ = 0;
  uint64_t seen_append_nanos_ = 0;
  uint64_t seen_append_count_ = 0;
  uint64_t latency_ewma_ = 0;  // nanos per append, alpha = 1/4
  uint32_t calm_streak_ = 0;
  uint64_t seq_ = 0;
  std::vector<DegradationTransition> transitions_;
};

}  // namespace sword::trace
