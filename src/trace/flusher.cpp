#include "trace/flusher.h"

#include <algorithm>
#include <chrono>

#include "common/fsutil.h"
#include "compress/frame.h"

namespace sword::trace {

// ----------------------------------------------------------------- BufferPool

BufferPool::~BufferPool() {
  if (!memory_) return;
  for (const Bytes& b : free_) memory_->Release(b.capacity());
}

Bytes BufferPool::Acquire(size_t capacity) {
  {
    std::lock_guard lock(mutex_);
    if (!free_.empty()) {
      Bytes b = std::move(free_.back());
      free_.pop_back();
      recycles_.fetch_add(1, std::memory_order_relaxed);
      b.clear();
      if (b.capacity() < capacity) {
        const size_t before = b.capacity();
        b.reserve(capacity);
        if (memory_) (void)memory_->Charge(b.capacity() - before);
      }
      return b;
    }
  }
  Bytes b;
  b.reserve(capacity);
  if (memory_) (void)memory_->Charge(b.capacity());
  allocations_.fetch_add(1, std::memory_order_relaxed);
  return b;
}

void BufferPool::Release(Bytes buffer) {
  if (buffer.capacity() == 0) return;
  {
    std::lock_guard lock(mutex_);
    if (free_.size() < max_free_) {
      free_.push_back(std::move(buffer));
      return;
    }
  }
  // Free list full: let the buffer die and un-charge it.
  if (memory_) memory_->Release(buffer.capacity());
}

size_t BufferPool::free_count() const {
  std::lock_guard lock(mutex_);
  return free_.size();
}

// -------------------------------------------------------------------- Flusher

namespace {

uint32_t DefaultWorkers() {
  const uint32_t hw = std::thread::hardware_concurrency();
  return std::min(4u, std::max(1u, hw));
}

}  // namespace

Flusher::Flusher(const FlusherConfig& config)
    : async_(config.async),
      max_queued_jobs_(std::max<size_t>(1, config.max_queued_jobs)),
      backend_(config.backend ? config.backend : &RealFileBackend()),
      retry_policy_{/*max_attempts=*/config.max_io_retries + 1,
                    /*backoff_us=*/config.retry_backoff_us,
                    /*max_backoff_us=*/10 * 1000},
      pool_(config.max_pooled_buffers, config.memory) {
  if (!async_) return;
  const uint32_t n = config.workers ? config.workers : DefaultWorkers();
  workers_.reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Threads start only after the vector is fully built: Run() indexes it.
  for (uint32_t i = 0; i < n; i++) {
    workers_[i]->thread = std::thread([this, i] { Run(i); });
  }
}

Flusher::~Flusher() {
  if (!async_) return;
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  for (auto& w : workers_) w->cv.notify_all();
  for (auto& w : workers_) w->thread.join();
}

void Flusher::AppendFrame(const std::string& path, Bytes raw, const Compressor* codec,
                          uint8_t payload_format, uint64_t event_count) {
  Job job;
  job.path = path;
  job.data = std::move(raw);
  job.codec = codec ? codec : DefaultCompressor();
  job.payload_format = payload_format;
  job.event_count = event_count;
  job.recycle = true;
  Enqueue(std::move(job));
}

void Flusher::Append(const std::string& path, Bytes data) {
  Job job;
  job.path = path;
  job.data = std::move(data);
  Enqueue(std::move(job));
}

size_t Flusher::LaneFor(const std::string& path) const {
  // Stable shard: every frame for one file lands in the same FIFO lane, so
  // per-file append order is submission order.
  return Fnv1a64(path.data(), path.size()) % workers_.size();
}

void Flusher::Enqueue(Job job) {
  const size_t raw_bytes = job.data.size();
  if (!async_) {
    DoJob(job, nullptr);
    if (job.recycle) pool_.Release(std::move(job.data));
    std::lock_guard lock(mutex_);
    jobs_enqueued_++;
    jobs_completed_++;
    bytes_in_ += raw_bytes;
    return;
  }

  const size_t lane = LaneFor(job.path);
  {
    std::unique_lock lock(mutex_);
    if (queued_ >= max_queued_jobs_) {
      producer_blocks_++;
      const auto t0 = std::chrono::steady_clock::now();
      space_cv_.wait(lock, [&] { return queued_ < max_queued_jobs_; });
      blocked_nanos_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    }
    workers_[lane]->lane.push_back(std::move(job));
    queued_++;
    in_flight_++;
    jobs_enqueued_++;
    bytes_in_ += raw_bytes;
  }
  workers_[lane]->cv.notify_one();
}

void Flusher::Drain() {
  std::unique_lock lock(mutex_);
  drained_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

Status Flusher::status() const {
  std::lock_guard lock(mutex_);
  return status_;
}

DropRecord Flusher::DroppedFor(const std::string& path) const {
  std::lock_guard lock(mutex_);
  auto it = dropped_.find(path);
  return it == dropped_.end() ? DropRecord{} : it->second;
}

void Flusher::Run(uint32_t index) {
  Worker& me = *workers_[index];
  std::unique_lock lock(mutex_);
  while (true) {
    me.cv.wait(lock, [&] { return stop_ || !me.lane.empty(); });
    if (me.lane.empty()) {
      if (stop_) return;
      continue;
    }
    Job job = std::move(me.lane.front());
    me.lane.pop_front();
    queued_--;
    space_cv_.notify_one();
    lock.unlock();

    const size_t raw_bytes = job.data.size();
    const bool compressed = job.codec != nullptr;
    DoJob(job, &me);
    if (job.recycle) pool_.Release(std::move(job.data));

    lock.lock();
    if (compressed) me.bytes_in += raw_bytes;
    jobs_completed_++;
    in_flight_--;
    if (in_flight_ == 0) drained_cv_.notify_all();
  }
}

Status Flusher::AppendChecked(const std::string& path, const uint8_t* data,
                              size_t n) {
  // Remember the pre-append size so an ultimately-failed append can be
  // rolled back: a torn half-frame would cost the reader its offset trust
  // for everything after it, which is far worse than the lost frame.
  auto before = FileSize(path);
  const uint64_t old_size = before.ok() ? before.value() : 0;
  AppendOutcome out = AppendWithRetry(*backend_, path, data, n, retry_policy_);
  if (out.retries > 0) io_retries_.fetch_add(out.retries);
  if (out.status.ok()) {
    bytes_written_.fetch_add(n);
    appends_.fetch_add(1);
    return Status::Ok();
  }
  if (out.written > 0) (void)backend_->Truncate(path, old_size);
  return out.status;
}

Status Flusher::WritePathData(const Job& job, const uint8_t* data, size_t n) {
  // If earlier frames for this path were dropped, their gap marker must land
  // before this frame - otherwise every logical offset after the hole would
  // silently shift and the analyzer would attribute events to the wrong
  // intervals. Per-path jobs are serialized (one FIFO lane per path), so
  // this read-then-erase is race-free.
  DropRecord gap;
  {
    std::lock_guard lock(mutex_);
    auto it = pending_gaps_.find(job.path);
    if (it != pending_gaps_.end()) gap = it->second;
  }
  if (gap.frames > 0) {
    Bytes gap_frame;
    WriteGapFrame(&gap_frame, gap.raw_bytes, gap.events);
    SWORD_RETURN_IF_ERROR(
        AppendChecked(job.path, gap_frame.data(), gap_frame.size()));
    gap_frames_.fetch_add(1);
    std::lock_guard lock(mutex_);
    pending_gaps_.erase(job.path);
  }
  return AppendChecked(job.path, data, n);
}

void Flusher::RecordDrop(const Job& job, const Status& status) {
  frames_dropped_.fetch_add(1);
  events_dropped_.fetch_add(job.event_count);
  bytes_dropped_.fetch_add(job.data.size());
  std::lock_guard lock(mutex_);
  if (status_.ok()) status_ = status;
  for (auto* map : {&pending_gaps_, &dropped_}) {
    DropRecord& rec = (*map)[job.path];
    rec.raw_bytes += job.data.size();
    rec.events += job.event_count;
    rec.frames += 1;
  }
}

void Flusher::DoJob(const Job& job, Worker* worker) {
  Status status;
  if (job.codec) {
    Bytes local_frame;
    Bytes& frame = worker ? worker->frame : local_frame;
    frame.clear();
    status = WriteFrame(*job.codec, job.data.data(), job.data.size(), &frame,
                        job.payload_format, worker ? &worker->scratch : nullptr);
    if (status.ok()) status = WritePathData(job, frame.data(), frame.size());
  } else {
    status = WritePathData(job, job.data.data(), job.data.size());
  }
  // Unrecoverable failure: the frame is discarded, but with exact accounting
  // and a pending gap marker - NOT silently, and NOT taking every later
  // frame down with it (the next job for this path tries the disk again).
  if (!status.ok()) RecordDrop(job, status);
}

FlusherStats Flusher::stats() const {
  FlusherStats s;
  std::lock_guard lock(mutex_);
  s.jobs_enqueued = jobs_enqueued_;
  s.jobs_completed = jobs_completed_;
  s.producer_blocks = producer_blocks_;
  s.blocked_nanos = blocked_nanos_;
  s.bytes_in = bytes_in_;
  s.bytes_written = bytes_written_.load();
  s.appends = appends_.load();
  s.io_retries = io_retries_.load();
  s.frames_dropped = frames_dropped_.load();
  s.events_dropped = events_dropped_.load();
  s.bytes_dropped = bytes_dropped_.load();
  s.gap_frames = gap_frames_.load();
  s.queued_now = queued_;
  s.worker_bytes_in.reserve(workers_.size());
  for (const auto& w : workers_) s.worker_bytes_in.push_back(w->bytes_in);
  return s;
}

}  // namespace sword::trace
