#include "trace/flusher.h"

#include <algorithm>
#include <chrono>

#include "common/fsutil.h"
#include "compress/frame.h"
#include "trace/governor.h"

namespace sword::trace {

// ----------------------------------------------------------------- BufferPool

BufferPool::~BufferPool() {
  if (lockfree_) {
    Bytes b;
    while (freelist_.TryGet(&b)) {
      if (memory_) memory_->Release(b.capacity());
    }
    return;
  }
  if (!memory_) return;
  for (const Bytes& b : free_) memory_->Release(b.capacity());
}

void BufferPool::InjectAcquireFailures(uint64_t from_call, uint64_t count) {
  fail_from_.store(from_call, std::memory_order_relaxed);
  fail_count_.store(count, std::memory_order_relaxed);
}

Bytes BufferPool::Acquire(size_t capacity) {
  const uint64_t call = acquires_.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t fail_from = fail_from_.load(std::memory_order_relaxed);
  if (fail_from != 0 && call >= fail_from &&
      call < fail_from + fail_count_.load(std::memory_order_relaxed)) {
    // Injected allocation failure: the zero-capacity buffer is the same
    // shape a genuinely exhausted allocator would produce; callers must
    // shed the event with accounting, never crash.
    acquire_failures_.fetch_add(1, std::memory_order_relaxed);
    return Bytes();
  }
  Bytes b;
  bool recycled = false;
  if (lockfree_) {
    recycled = freelist_.TryGet(&b);
  } else {
    std::lock_guard lock(mutex_);
    if (!free_.empty()) {
      b = std::move(free_.back());
      free_.pop_back();
      recycled = true;
    }
  }
  if (recycled) {
    recycles_.fetch_add(1, std::memory_order_relaxed);
    b.clear();
    if (b.capacity() < capacity) {
      const size_t before = b.capacity();
      b.reserve(capacity);
      if (memory_) (void)memory_->Charge(b.capacity() - before);
    }
    return b;
  }
  b.reserve(capacity);
  if (memory_) (void)memory_->Charge(b.capacity());
  allocations_.fetch_add(1, std::memory_order_relaxed);
  return b;
}

void BufferPool::Release(Bytes buffer) {
  if (buffer.capacity() == 0) return;
  const size_t capacity = buffer.capacity();
  if (lockfree_) {
    if (freelist_.TryPut(std::move(buffer))) {
      releases_kept_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  } else {
    std::lock_guard lock(mutex_);
    if (free_.size() < max_free_) {
      free_.push_back(std::move(buffer));
      releases_kept_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  // Free list full: let the buffer die and un-charge it.
  releases_freed_.fetch_add(1, std::memory_order_relaxed);
  if (memory_) memory_->Release(capacity);
}

size_t BufferPool::free_count() const {
  if (lockfree_) return freelist_.ApproxSize();
  std::lock_guard lock(mutex_);
  return free_.size();
}

BufferPool::Stats BufferPool::ReadStatsOnce() const {
  Stats s;
  s.allocations = allocations_.load(std::memory_order_acquire);
  s.recycles = recycles_.load(std::memory_order_acquire);
  s.releases_kept = releases_kept_.load(std::memory_order_acquire);
  s.releases_freed = releases_freed_.load(std::memory_order_acquire);
  s.free_count = free_count();
  return s;
}

BufferPool::Stats BufferPool::stats() const {
  // Double-read until stable: at quiescence the first pass already agrees;
  // under churn this bounds the skew to one in-progress operation.
  Stats prev = ReadStatsOnce();
  for (int attempt = 0; attempt < 8; attempt++) {
    Stats next = ReadStatsOnce();
    if (next == prev) return next;
    prev = next;
  }
  return prev;
}

// -------------------------------------------------------------------- Flusher

namespace {

uint32_t DefaultWorkers() {
  const uint32_t hw = std::thread::hardware_concurrency();
  return std::min(4u, std::max(1u, hw));
}

}  // namespace

Flusher::Flusher(const FlusherConfig& config)
    : async_(config.async),
      lockfree_(config.lockfree),
      max_queued_jobs_(std::max<size_t>(1, config.max_queued_jobs)),
      backend_(config.backend ? config.backend : &RealFileBackend()),
      retry_policy_{/*max_attempts=*/config.max_io_retries + 1,
                    /*backoff_us=*/config.retry_backoff_us,
                    /*max_backoff_us=*/10 * 1000},
      watchdog_deadline_ms_(config.watchdog_deadline_ms),
      governor_(config.governor),
      pool_(config.max_pooled_buffers, config.memory, config.lockfree) {
  if (!async_) return;
  credits_.store(static_cast<int64_t>(max_queued_jobs_),
                 std::memory_order_relaxed);
  const uint32_t n = config.workers ? config.workers : DefaultWorkers();
  workers_.reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    auto w = std::make_unique<Worker>();
    if (lockfree_) {
      // A lane ring sized to hold EVERY credit can never overflow: jobs in
      // rings never exceed outstanding credits <= max_queued_jobs, even if
      // the hash sends them all to one lane.
      w->ring = std::make_unique<lockfree::MpmcRing<Job>>(max_queued_jobs_);
    }
    workers_.push_back(std::move(w));
  }
  // Threads start only after the vector is fully built: Run() indexes it.
  for (uint32_t i = 0; i < n; i++) {
    workers_[i]->thread = std::thread(
        [this, i] { lockfree_ ? RunLockfree(i) : Run(i); });
  }
}

Flusher::~Flusher() {
  if (!async_) return;
  {
    // Taken for the mutex lanes' wait predicate; harmless for lock-free.
    std::lock_guard lock(mutex_);
    stop_.store(true, std::memory_order_seq_cst);
  }
  for (auto& w : workers_) {
    if (lockfree_) {
      // Pairs with the worker's check-then-wait under doorbell_mutex: once
      // we hold the mutex the worker is either before its stop_ re-check
      // (sees it) or parked (gets the notify).
      std::lock_guard doorbell(w->doorbell_mutex);
      w->doorbell.notify_all();
    } else {
      w->cv.notify_all();
    }
  }
  for (auto& w : workers_) w->thread.join();
}

void Flusher::AppendFrame(const std::string& path, Bytes raw, const Compressor* codec,
                          uint8_t payload_format, uint64_t event_count) {
  Job job;
  job.path = path;
  job.data = std::move(raw);
  job.codec = codec ? codec : DefaultCompressor();
  job.payload_format = payload_format;
  job.event_count = event_count;
  job.recycle = true;
  Enqueue(std::move(job));
}

void Flusher::Append(const std::string& path, Bytes data) {
  Job job;
  job.path = path;
  job.data = std::move(data);
  Enqueue(std::move(job));
}

size_t Flusher::LaneFor(const std::string& path) const {
  // Stable shard: every frame for one file lands in the same FIFO lane, so
  // per-file append order is submission order.
  return Fnv1a64(path.data(), path.size()) % workers_.size();
}

void Flusher::Enqueue(Job job) {
  const size_t raw_bytes = job.data.size();
  if (!async_) {
    DoJob(job, nullptr);
    if (job.recycle) pool_.Release(std::move(job.data));
    jobs_enqueued_.fetch_add(1, std::memory_order_relaxed);
    jobs_completed_.fetch_add(1, std::memory_order_relaxed);
    bytes_in_.fetch_add(raw_bytes, std::memory_order_relaxed);
    if (governor_) governor_->Evaluate();
    return;
  }
  const size_t lane = LaneFor(job.path);
  jobs_enqueued_.fetch_add(1, std::memory_order_relaxed);
  bytes_in_.fetch_add(raw_bytes, std::memory_order_relaxed);
  if (lockfree_) {
    EnqueueLockfree(std::move(job), lane);
  } else {
    EnqueueLocked(std::move(job), lane);
  }
}

void Flusher::EnqueueLockfree(Job job, size_t lane) {
  // Backpressure: acquire one credit. The CAS loop is the entire fast path
  // - no mutex, no condvar - and degrades to yield/sleep backoff only when
  // the pipeline is genuinely full. With a watchdog deadline configured the
  // wait is bounded: a hung device converts this frame into an accounted
  // drop instead of stalling the producer forever.
  bool counted_block = false;
  bool acquired = false;
  std::chrono::steady_clock::time_point block_start;
  uint32_t spins = 0;
  for (;;) {
    int64_t credits = credits_.load(std::memory_order_acquire);
    if (credits > 0 &&
        credits_.compare_exchange_weak(credits, credits - 1,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      acquired = true;
      break;
    }
    if (!counted_block) {
      counted_block = true;
      producer_blocks_.fetch_add(1, std::memory_order_relaxed);
      block_start = std::chrono::steady_clock::now();
      if (governor_) governor_->NoteCreditStall();
    }
    if (watchdog_deadline_ms_ > 0 &&
        std::chrono::steady_clock::now() - block_start >=
            std::chrono::milliseconds(watchdog_deadline_ms_)) {
      break;  // watchdog expired while starved; drop below
    }
    if (spins++ < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  if (counted_block) {
    const uint64_t waited =
        static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  std::chrono::steady_clock::now() - block_start)
                                  .count());
    blocked_nanos_.fetch_add(waited, std::memory_order_relaxed);
    if (governor_) governor_->NoteBlockedNanos(waited);
  }
  if (!acquired) {
    WatchdogDrop(std::move(job));
    return;
  }
  // Holding a credit guarantees ring space (ring capacity >= total
  // credits); the spin only covers a consumer mid-pop on the target slot.
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  Worker& w = *workers_[lane];
  while (!w.ring->TryPush(std::move(job))) std::this_thread::yield();
  // Doorbell, Dekker-paired with the worker's sleep sequence: our push
  // then fence then sleeping-load vs. its sleeping-store then fence then
  // empty-check. At least one side always sees the other.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (w.sleeping.load(std::memory_order_relaxed) != 0) {
    std::lock_guard doorbell(w.doorbell_mutex);
    w.doorbell.notify_one();
  }
}

void Flusher::EnqueueLocked(Job job, size_t lane) {
  {
    std::unique_lock lock(mutex_);
    if (queued_ >= max_queued_jobs_) {
      producer_blocks_.fetch_add(1, std::memory_order_relaxed);
      if (governor_) governor_->NoteCreditStall();
      const auto t0 = std::chrono::steady_clock::now();
      bool have_space;
      if (watchdog_deadline_ms_ > 0) {
        have_space = space_cv_.wait_for(
            lock, std::chrono::milliseconds(watchdog_deadline_ms_),
            [&] { return queued_ < max_queued_jobs_; });
      } else {
        space_cv_.wait(lock, [&] { return queued_ < max_queued_jobs_; });
        have_space = true;
      }
      const uint64_t waited = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      blocked_nanos_.fetch_add(waited, std::memory_order_relaxed);
      if (governor_) governor_->NoteBlockedNanos(waited);
      if (!have_space) {
        // RecordDrop takes mutex_, so drop outside the lock.
        lock.unlock();
        WatchdogDrop(std::move(job));
        return;
      }
    }
    workers_[lane]->lane.push_back(std::move(job));
    queued_++;
    in_flight_.fetch_add(1, std::memory_order_relaxed);
  }
  workers_[lane]->cv.notify_one();
}

void Flusher::WatchdogDrop(Job job) {
  // The frame never entered a lane: no credit was taken and in_flight_ was
  // not bumped, so Drain() stays correct. The loss is booked exactly like
  // an unrecoverable I/O failure - sticky status, drop counters, pending
  // gap marker - and the buffer is recycled.
  watchdog_drops_.fetch_add(1, std::memory_order_relaxed);
  if (governor_) governor_->NoteWatchdogDrop();
  RecordDrop(job, Status::Unavailable(
                      "flusher watchdog: producer blocked past deadline"));
  if (job.recycle) pool_.Release(std::move(job.data));
}

void Flusher::Drain() {
  if (!async_) return;
  if (lockfree_) {
    // Poll with backoff: Drain is the cold path (finalize, tests), and a
    // condvar here would put a mutex back on every job completion.
    uint32_t spins = 0;
    while (in_flight_.load(std::memory_order_acquire) != 0) {
      if (spins++ < 128) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    return;
  }
  std::unique_lock lock(mutex_);
  drained_cv_.wait(
      lock, [&] { return in_flight_.load(std::memory_order_acquire) == 0; });
}

Status Flusher::status() const {
  std::lock_guard lock(mutex_);
  return status_;
}

DropRecord Flusher::DroppedFor(const std::string& path) const {
  std::lock_guard lock(mutex_);
  auto it = dropped_.find(path);
  return it == dropped_.end() ? DropRecord{} : it->second;
}

void Flusher::CompleteJob(Job job, Worker* worker) {
  const size_t raw_bytes = job.data.size();
  const bool compressed = job.codec != nullptr;
  DoJob(job, worker);
  if (job.recycle) pool_.Release(std::move(job.data));
  if (compressed && worker) {
    worker->bytes_in.fetch_add(raw_bytes, std::memory_order_relaxed);
  }
  jobs_completed_.fetch_add(1, std::memory_order_relaxed);
  // Governor tick on the worker thread: jobs are chunky (whole trace
  // buffers), so one mutex-guarded Evaluate per job is off the producers'
  // hot path entirely.
  if (governor_) governor_->Evaluate();
}

void Flusher::Run(uint32_t index) {
  Worker& me = *workers_[index];
  std::unique_lock lock(mutex_);
  while (true) {
    const auto ready = [&] {
      return stop_.load(std::memory_order_relaxed) || !me.lane.empty();
    };
    if (governor_) {
      // Bounded waits so recovery (calm-streak) evaluations keep ticking
      // while the pipeline is idle; Evaluate never touches mutex_.
      while (!ready()) {
        me.cv.wait_for(lock, std::chrono::milliseconds(50));
        governor_->Evaluate();
      }
    } else {
      me.cv.wait(lock, ready);
    }
    if (me.lane.empty()) {
      if (stop_.load(std::memory_order_relaxed)) return;
      continue;
    }
    Job job = std::move(me.lane.front());
    me.lane.pop_front();
    queued_--;
    space_cv_.notify_one();
    lock.unlock();

    CompleteJob(std::move(job), &me);

    lock.lock();
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      drained_cv_.notify_all();
    }
  }
}

void Flusher::RunLockfree(uint32_t index) {
  Worker& me = *workers_[index];
  for (;;) {
    Job job;
    if (me.ring->TryPop(&job)) {
      // Release the credit at dequeue (the job left the queue), matching
      // the mutex path's queued_-- semantics; the release pairs with
      // producers' acquire CAS so a freed ring slot is visible to them.
      credits_.fetch_add(1, std::memory_order_release);
      CompleteJob(std::move(job), &me);
      // Release-ordered so Drain's acquire load also orders the job's
      // stats/IO before a drained observer reads them.
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // Producers enqueue-then-set-stop is not a supported shutdown order,
      // but a ring drained here stays drained: one last check suffices.
      if (me.ring->Empty()) return;
      continue;
    }
    // Park: announce, re-check, then wait. The seq_cst fence pairs with the
    // producer's post-push fence (see EnqueueLockfree).
    std::unique_lock doorbell(me.doorbell_mutex);
    me.sleeping.store(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (me.ring->Empty() && !stop_.load(std::memory_order_relaxed)) {
      // Bounded wait as a belt-and-braces backstop; the doorbell is the
      // real wake path.
      me.doorbell.wait_for(doorbell, std::chrono::milliseconds(50));
    }
    me.sleeping.store(0, std::memory_order_relaxed);
    // Idle governor tick: the 50 ms backstop doubles as the cadence for
    // calm-streak recovery evaluations when no jobs are flowing.
    if (governor_) governor_->Evaluate();
  }
}

Status Flusher::AppendChecked(const std::string& path, const uint8_t* data,
                              size_t n) {
  // Remember the pre-append size so an ultimately-failed append can be
  // rolled back: a torn half-frame would cost the reader its offset trust
  // for everything after it, which is far worse than the lost frame.
  auto before = FileSize(path);
  const uint64_t old_size = before.ok() ? before.value() : 0;
  const auto t0 = std::chrono::steady_clock::now();
  AppendOutcome out = AppendWithRetry(*backend_, path, data, n, retry_policy_);
  if (governor_) {
    governor_->NoteAppendLatency(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
  if (out.retries > 0) io_retries_.fetch_add(out.retries);
  if (out.status.ok()) {
    bytes_written_.fetch_add(n);
    appends_.fetch_add(1);
    return Status::Ok();
  }
  if (out.written > 0) (void)backend_->Truncate(path, old_size);
  return out.status;
}

Status Flusher::WritePathData(const Job& job, const uint8_t* data, size_t n) {
  // If earlier frames for this path were dropped, their gap marker must land
  // before this frame - otherwise every logical offset after the hole would
  // silently shift and the analyzer would attribute events to the wrong
  // intervals. Per-path jobs are serialized (one FIFO lane per path), so
  // this read-then-erase is race-free; the counter guard keeps the mutex
  // off the no-drops steady state entirely (the path's own drops were
  // recorded by this same worker, so program order makes the nonzero count
  // visible here).
  if (pending_gap_paths_.load(std::memory_order_acquire) > 0) {
    DropRecord gap;
    {
      std::lock_guard lock(mutex_);
      auto it = pending_gaps_.find(job.path);
      if (it != pending_gaps_.end()) gap = it->second;
    }
    if (gap.frames > 0) {
      Bytes gap_frame;
      WriteGapFrame(&gap_frame, gap.raw_bytes, gap.events);
      SWORD_RETURN_IF_ERROR(
          AppendChecked(job.path, gap_frame.data(), gap_frame.size()));
      gap_frames_.fetch_add(1);
      // A gap marker is loss ACCOUNTING: losing it to a later crash would
      // silently shift every logical offset after the hole, so it is forced
      // to stable storage now via the same transient-retry helper as the
      // write path. Cold path - gaps only exist after unrecoverable errors.
      const SyncOutcome sync =
          SyncWithRetry(*backend_, job.path, retry_policy_);
      syncs_.fetch_add(1, std::memory_order_relaxed);
      if (sync.retries > 0) {
        sync_retries_.fetch_add(sync.retries, std::memory_order_relaxed);
      }
      std::lock_guard lock(mutex_);
      pending_gaps_.erase(job.path);
      pending_gap_paths_.fetch_sub(1, std::memory_order_release);
    }
  }
  return AppendChecked(job.path, data, n);
}

void Flusher::RecordDrop(const Job& job, const Status& status) {
  frames_dropped_.fetch_add(1);
  events_dropped_.fetch_add(job.event_count);
  bytes_dropped_.fetch_add(job.data.size());
  std::lock_guard lock(mutex_);
  if (status_.ok()) status_ = status;
  for (auto* map : {&pending_gaps_, &dropped_}) {
    DropRecord& rec = (*map)[job.path];
    if (map == &pending_gaps_ && rec.frames == 0) {
      pending_gap_paths_.fetch_add(1, std::memory_order_release);
    }
    rec.raw_bytes += job.data.size();
    rec.events += job.event_count;
    rec.frames += 1;
  }
}

void Flusher::DoJob(const Job& job, Worker* worker) {
  Status status;
  if (job.codec) {
    Bytes local_frame;
    Bytes& frame = worker ? worker->frame : local_frame;
    frame.clear();
    status = WriteFrame(*job.codec, job.data.data(), job.data.size(), &frame,
                        job.payload_format, worker ? &worker->scratch : nullptr);
    if (status.ok()) status = WritePathData(job, frame.data(), frame.size());
  } else {
    status = WritePathData(job, job.data.data(), job.data.size());
  }
  // Unrecoverable failure: the frame is discarded, but with exact accounting
  // and a pending gap marker - NOT silently, and NOT taking every later
  // frame down with it (the next job for this path tries the disk again).
  if (!status.ok()) RecordDrop(job, status);
}

FlusherStats Flusher::stats() const {
  FlusherStats s;
  s.jobs_enqueued = jobs_enqueued_.load(std::memory_order_acquire);
  s.jobs_completed = jobs_completed_.load(std::memory_order_acquire);
  s.producer_blocks = producer_blocks_.load(std::memory_order_relaxed);
  s.blocked_nanos = blocked_nanos_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load();
  s.appends = appends_.load();
  s.io_retries = io_retries_.load();
  s.frames_dropped = frames_dropped_.load();
  s.events_dropped = events_dropped_.load();
  s.bytes_dropped = bytes_dropped_.load();
  s.gap_frames = gap_frames_.load();
  s.watchdog_drops = watchdog_drops_.load(std::memory_order_relaxed);
  s.syncs = syncs_.load(std::memory_order_relaxed);
  s.sync_retries = sync_retries_.load(std::memory_order_relaxed);
  s.lockfree = lockfree_;
  if (async_ && lockfree_) {
    const int64_t credits = credits_.load(std::memory_order_relaxed);
    const int64_t held = static_cast<int64_t>(max_queued_jobs_) - credits;
    s.queued_now = held > 0 ? static_cast<size_t>(held) : 0;
  } else {
    std::lock_guard lock(mutex_);
    s.queued_now = queued_;
  }
  s.worker_bytes_in.reserve(workers_.size());
  for (const auto& w : workers_) {
    s.worker_bytes_in.push_back(w->bytes_in.load(std::memory_order_acquire));
  }
  return s;
}

}  // namespace sword::trace
