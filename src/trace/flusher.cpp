#include "trace/flusher.h"

#include "common/fsutil.h"
#include "compress/frame.h"

namespace sword::trace {

Flusher::Flusher(bool async) : async_(async) {
  if (async_) thread_ = std::thread([this] { Run(); });
}

Flusher::~Flusher() {
  if (async_) {
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }
}

void Flusher::AppendFrame(const std::string& path, Bytes raw, const Compressor* codec) {
  Enqueue(Job{path, std::move(raw), codec ? codec : DefaultCompressor()});
}

void Flusher::Append(const std::string& path, Bytes data) {
  Enqueue(Job{path, std::move(data), nullptr});
}

void Flusher::Enqueue(Job job) {
  if (!async_) {
    DoJob(job);
    return;
  }
  {
    std::unique_lock lock(mutex_);
    space_cv_.wait(lock, [&] { return queue_.size() < kMaxQueuedJobs; });
    queue_.push_back(std::move(job));
    in_flight_++;
  }
  cv_.notify_one();
}

void Flusher::Drain() {
  if (!async_) return;
  std::unique_lock lock(mutex_);
  drained_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

Status Flusher::status() const {
  std::lock_guard lock(mutex_);
  return status_;
}

void Flusher::Run() {
  while (true) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      space_cv_.notify_one();
    }
    DoJob(job);
    {
      std::lock_guard lock(mutex_);
      in_flight_--;
      if (in_flight_ == 0) drained_cv_.notify_all();
    }
  }
}

void Flusher::DoJob(const Job& job) {
  Status status;
  size_t written = 0;
  if (job.codec) {
    Bytes frame;
    status = WriteFrame(*job.codec, job.data.data(), job.data.size(), &frame);
    if (status.ok()) {
      status = AppendFile(job.path, frame.data(), frame.size());
      written = frame.size();
    }
  } else {
    status = AppendFile(job.path, job.data.data(), job.data.size());
    written = job.data.size();
  }
  if (!status.ok()) {
    std::lock_guard lock(mutex_);
    if (status_.ok()) status_ = status;
    return;
  }
  bytes_written_.fetch_add(written);
  appends_.fetch_add(1);
}

}  // namespace sword::trace
