// Per-thread meta-data file (paper Table I).
//
// Each line of a thread's meta file describes one barrier-interval segment:
// which parallel region it belongs to, its position in the concurrency
// structure, and where its event data lives in the thread's log file. The
// paper's columns are all here - pid, ppid, bid, offset, span, level,
// data_begin, size - plus the full serialized offset-span label (the paper
// reconstructs it from the ppid chain; storing it directly is equivalent and
// self-contained) and the lockset held when the segment opened (so lock
// ownership that spans a buffer flush or barrier is never lost).
//
// "Segment" vs "interval": with nested parallelism, lane 0 of an inner team
// runs on the same OS thread as its parent, so a parent's barrier interval
// can be split around the nested region into multiple segments. Segments of
// one interval share (region, phase, label); the analyzer may treat them
// independently because equal labels yield identical concurrency judgments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "osl/label.h"
#include "trace/event.h"

namespace sword::trace {

struct IntervalMeta {
  uint64_t region = 0;          // pid: parallel region id
  uint64_t parent_region = 0;   // ppid (kNoParent at the outermost level)
  uint64_t phase = 0;           // bid: barrier interval index within region
  osl::Label label;             // full offset-span label of this interval
  uint32_t level = 0;           // nesting depth (1 = outermost)
  uint32_t lane = 0;            // thread num within the team
  uint64_t data_begin = 0;      // logical byte offset into the log stream
  uint64_t data_size = 0;       // bytes of event data in this segment
  uint64_t event_count = 0;     // events in this segment (0 in v1 metas)
  /// Highest degradation-governor level active while this segment was open
  /// (record v3; 0 = full tracing). Non-zero means the segment's event list
  /// may be a SUBSET of the accesses that actually happened: races found in
  /// it are still real, but absence of a race is not proof.
  uint32_t degradation_level = 0;
  /// Accesses the writer dropped from THIS segment because of degradation
  /// (sampling / summary-only), record v3. Exact count, so offline
  /// accounting can reconcile observed + dropped totals.
  uint64_t degraded_dropped = 0;
  /// Accesses the static pre-filter elided from THIS segment under a
  /// disjointness proof (record v4). Unlike degraded_dropped this is NOT
  /// loss: every elided access is covered by an exact footprint receipt
  /// appended into the segment's event data, so the decoded stream is
  /// address-equivalent to the unfiltered one.
  uint64_t elided = 0;
  std::vector<uint32_t> lockset;  // mutexes held when the segment opened

  static constexpr uint64_t kNoParent = ~0ULL;

  /// Table I "offset" column: innermost label pair offset.
  uint32_t TableOffset() const { return label.pairs().back().offset; }
  /// Table I "span" column: innermost label pair span.
  uint32_t TableSpan() const { return label.pairs().back().span; }

  /// Events in this segment. v2 metas record the count explicitly (required
  /// for variable-length event encodings); v1 metas derive it from the fixed
  /// 16-byte event size.
  uint64_t EventCount() const {
    return event_count ? event_count : data_size / kEventBytes;
  }

  /// `version` is the RECORD format: 1 omits event_count, 2 records it,
  /// 3 adds degradation_level + degraded_dropped, 4 adds elided.
  void Serialize(ByteWriter& w, uint8_t version = 4) const;
  static Status Deserialize(ByteReader& r, IntervalMeta* out, uint8_t version = 4);

  /// One Table-I-style text line (debugging and the quickstart example).
  std::string ToString() const;
};

/// One degradation-governor level change, recorded in v5 metas so offline
/// reports can annotate which barrier intervals ran under reduced fidelity.
struct DegradationTransition {
  uint8_t level = 0;        // level entered (trace::governor level ordinal)
  uint8_t reason = 0;       // GovernorReason bitmask that triggered it
  uint64_t interval = 0;    // interval-record ordinal open/next at the time

  bool operator==(const DegradationTransition& o) const {
    return level == o.level && reason == o.reason && interval == o.interval;
  }
};

/// Whole meta file: header + interval records.
struct MetaFile {
  uint32_t thread_id = 0;  // dense SWORD thread id (not an OS id)
  /// Event-encoding format of the companion .log file (kTraceFormatV*).
  /// Informational: the log's frames are self-tagging; tools print this.
  uint8_t log_format = kTraceFormatV2;
  /// v5 metas: this checkpoint was written by the fatal-signal sealer while
  /// the process was dying of `seal_signo`. The trace ends at the last
  /// sealed barrier interval; everything recorded is trustworthy, nothing
  /// after it exists.
  bool crash_sealed = false;
  uint8_t seal_signo = 0;
  /// Record-time loss (v3 metas): events/logical bytes the flusher had to
  /// discard for this thread's log (ENOSPC etc). Mirrors the log's gap
  /// frames so the loss is visible even from the meta alone.
  uint64_t events_dropped = 0;
  uint64_t bytes_dropped = 0;
  /// Accesses observed OUTSIDE any barrier-interval segment (v4 metas):
  /// counted and dropped by the writer instead of silently corrupting the
  /// open segment's (data_begin, size) accounting.
  uint64_t accesses_dropped = 0;
  /// Total accesses the degradation governor told the writer to shed
  /// (v5 metas). Sum over intervals[i].degraded_dropped plus any shed while
  /// no segment was open.
  uint64_t degraded_dropped = 0;
  /// Accesses the static pre-filter elided under a disjointness proof
  /// (v6 metas). Sum over intervals[i].elided. Informational, not loss:
  /// each elided access has an exact footprint receipt in the log.
  uint64_t elided_accesses = 0;
  /// Elided accesses whose receipt could not be emitted (v6 metas). This IS
  /// potential loss and is accounted like degradation for soundness.
  uint64_t elided_lost = 0;
  /// Governor level changes, in order (v5 metas).
  std::vector<DegradationTransition> transitions;
  std::vector<IntervalMeta> intervals;

  /// Always writes the current (v6) meta format.
  Bytes Encode() const;
  /// Decodes v1 ("SWMF") through v6 ("SWM6") meta files.
  ///
  /// With `salvage`, a record-level parse failure keeps the cleanly-decoded
  /// prefix instead of failing the whole file (a crashed run's checkpoint
  /// can be torn mid-record despite the atomic rename if the filesystem
  /// itself was damaged); `*records_dropped` receives how many of the
  /// header's claimed records could not be recovered.
  static Status Decode(const Bytes& data, MetaFile* out, bool salvage = false,
                       uint64_t* records_dropped = nullptr);
};

/// Everything EncodeMetaHeader needs. Kept as a struct so the writer's
/// incremental checkpoints and MetaFile::Encode share one serializer.
struct MetaHeaderInfo {
  uint32_t thread_id = 0;
  uint8_t log_format = kTraceFormatV2;
  bool crash_sealed = false;
  uint8_t seal_signo = 0;
  uint64_t events_dropped = 0;
  uint64_t bytes_dropped = 0;
  uint64_t accesses_dropped = 0;
  uint64_t degraded_dropped = 0;
  uint64_t elided_accesses = 0;
  uint64_t elided_lost = 0;
  const std::vector<DegradationTransition>* transitions = nullptr;
  uint64_t record_count = 0;
};

/// Serializes the v5 meta header (everything before the interval records).
/// Shared by MetaFile::Encode and the writer's incremental checkpoints,
/// which append pre-serialized records after it.
void EncodeMetaHeader(ByteWriter& w, const MetaHeaderInfo& info);

constexpr uint32_t kMetaMagic = 0x53574d46;    // "SWMF" (meta format v1)
constexpr uint32_t kMetaMagicV2 = 0x53574d32;  // "SWM2" (meta format v2)
constexpr uint32_t kMetaMagicV3 = 0x53574d33;  // "SWM3" (meta format v3)
constexpr uint32_t kMetaMagicV4 = 0x53574d34;  // "SWM4" (meta format v4)
constexpr uint32_t kMetaMagicV5 = 0x53574d35;  // "SWM5" (meta format v5)
constexpr uint32_t kMetaMagicV6 = 0x53574d36;  // "SWM6" (meta format v6)

/// v5 header flag bits (the byte at kMetaFlagsOffset).
constexpr uint8_t kMetaFlagCrashSealed = 0x01;

/// Fixed byte offsets of the v5 flags and seal-signo bytes. The fatal-signal
/// sealer publishes a pre-serialized meta image built with
/// crash_sealed=true / signo=0 and, inside the handler, only needs to patch
/// the one signo byte at kMetaSealSignoOffset — no serialization runs in
/// signal context. Keep these in sync with EncodeMetaHeader.
constexpr size_t kMetaFlagsOffset = 4;
constexpr size_t kMetaSealSignoOffset = 5;

}  // namespace sword::trace
