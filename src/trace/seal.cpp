#include "trace/seal.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <stdio.h>
#include <string.h>
#include <unistd.h>

#include "common/log.h"
#include "compress/frame.h"
#include "trace/meta.h"

namespace sword::trace {
namespace {

/// write(2) everything, retrying EINTR a bounded number of times. Async-
/// signal-safe: raw syscalls only.
bool WriteAllRaw(int fd, const uint8_t* data, size_t n) {
  size_t done = 0;
  int spins = 0;
  while (done < n) {
    const ssize_t got = ::write(fd, data + done, n - done);
    if (got > 0) {
      done += static_cast<size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR && spins++ < 64) continue;
    return false;
  }
  return true;
}

}  // namespace

SealRegistry& SealRegistry::Instance() {
  // Touched from normal context before any handler can run
  // (InstallSealHandlers and Register both call Instance), so the handler
  // never observes an under-construction static.
  static SealRegistry* registry = new SealRegistry();
  return *registry;
}

int SealRegistry::Register(const std::string& log_path,
                           const std::string& meta_path) {
  const std::string tmp_path = meta_path + ".seal.tmp";
  if (log_path.size() >= kMaxPath || meta_path.size() >= kMaxPath ||
      tmp_path.size() >= kMaxPath) {
    SWORD_WARN() << "seal registry: path too long, trace not crash-sealable: "
                 << log_path;
    return kNoSlot;
  }
  for (size_t i = 0; i < kMaxSlots; ++i) {
    Slot& s = slots_[i];
    uint32_t expected = 0;
    if (!s.state.compare_exchange_strong(expected, 1,
                                         std::memory_order_acq_rel)) {
      continue;
    }
    std::memset(s.log_path, 0, kMaxPath);
    std::memset(s.meta_path, 0, kMaxPath);
    std::memset(s.tmp_path, 0, kMaxPath);
    std::memcpy(s.log_path, log_path.data(), log_path.size());
    std::memcpy(s.meta_path, meta_path.data(), meta_path.size());
    std::memcpy(s.tmp_path, tmp_path.data(), tmp_path.size());
    s.active.store(0, std::memory_order_relaxed);
    for (Image& img : s.image) img.size.store(0, std::memory_order_relaxed);
    s.state.store(2, std::memory_order_release);
    return static_cast<int>(i);
  }
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    SWORD_WARN() << "seal registry full (" << kMaxSlots
                 << " slots): further traces not crash-sealable";
  }
  return kNoSlot;
}

void SealRegistry::Publish(int slot, const Bytes& image) {
  if (slot < 0 || static_cast<size_t>(slot) >= kMaxSlots) return;
  Slot& s = slots_[static_cast<size_t>(slot)];
  if (s.state.load(std::memory_order_acquire) != 2) return;
  // Double buffer: write the INACTIVE image, then flip `active`. A handler
  // that interrupts the memcpy sees either the odd seqlock (and falls back
  // to the other image) or the previous `active` value.
  const uint32_t idx = 1 - s.active.load(std::memory_order_relaxed);
  Image& img = s.image[idx];
  if (img.capacity < image.size()) {
    size_t cap = img.capacity ? img.capacity : 4096;
    while (cap < image.size()) cap *= 2;
    uint8_t* fresh = new uint8_t[cap];
    uint8_t* old = img.data.load(std::memory_order_relaxed);
    if (old) {
      // Never freed while a handler could hold the pointer; see retired_.
      std::lock_guard<std::mutex> lock(retired_mu_);
      retired_.push_back(old);
    }
    img.data.store(fresh, std::memory_order_release);
    img.capacity = cap;
  }
  img.seq.fetch_add(1, std::memory_order_acq_rel);  // odd: in progress
  std::memcpy(img.data.load(std::memory_order_relaxed), image.data(),
              image.size());
  img.size.store(image.size(), std::memory_order_relaxed);
  img.seq.fetch_add(1, std::memory_order_release);  // even: stable
  s.active.store(idx, std::memory_order_release);
}

void SealRegistry::Unregister(int slot) {
  if (slot < 0 || static_cast<size_t>(slot) >= kMaxSlots) return;
  Slot& s = slots_[static_cast<size_t>(slot)];
  uint32_t expected = 2;
  if (!s.state.compare_exchange_strong(expected, 1,
                                       std::memory_order_acq_rel)) {
    return;
  }
  // Image buffers stay attached to the slot (capacity is reused by the next
  // owner); only the published size is cleared.
  for (Image& img : s.image) {
    img.seq.fetch_add(1, std::memory_order_acq_rel);
    img.size.store(0, std::memory_order_relaxed);
    img.seq.fetch_add(1, std::memory_order_release);
  }
  s.state.store(0, std::memory_order_release);
}

size_t SealRegistry::live_slots() const {
  size_t n = 0;
  for (const Slot& s : slots_) {
    if (s.state.load(std::memory_order_acquire) == 2) n++;
  }
  return n;
}

void SealRegistry::SealSlot(Slot& s, int signo) {
  // 1. In-band crash marker into the log, then fsync. O_APPEND keeps the
  // marker atomic w.r.t. a concurrent flusher append's file offset; if that
  // append was itself torn by the crash, the marker lands mid-frame and the
  // salvage reader's resync finds it (a case the corruption matrix covers).
  uint8_t marker[kCrashMarkerBytes];
  EncodeCrashMarker(static_cast<uint8_t>(signo), marker);
  int fd = ::open(s.log_path, O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd >= 0) {
    if (WriteAllRaw(fd, marker, kCrashMarkerBytes)) (void)::fsync(fd);
    (void)::close(fd);
  }

  // 2. Atomic crash-tagged meta checkpoint from the published image. Try
  // the active image, then the other one if a publish was caught mid-copy.
  const uint32_t first = s.active.load(std::memory_order_acquire);
  for (uint32_t attempt = 0; attempt < 2; ++attempt) {
    const Image& img = s.image[(first + attempt) & 1];
    const uint64_t seq_before = img.seq.load(std::memory_order_acquire);
    if (seq_before & 1) continue;  // publish in progress; torn by the crash
    const uint8_t* data = img.data.load(std::memory_order_acquire);
    const size_t size = img.size.load(std::memory_order_acquire);
    if (!data || size <= kMetaSealSignoOffset) continue;  // never published
    fd = ::open(s.tmp_path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return;
    // Stream the image, patching the signo placeholder byte in place.
    const uint8_t signo_byte = static_cast<uint8_t>(signo);
    bool ok = WriteAllRaw(fd, data, kMetaSealSignoOffset) &&
              WriteAllRaw(fd, &signo_byte, 1) &&
              WriteAllRaw(fd, data + kMetaSealSignoOffset + 1,
                          size - kMetaSealSignoOffset - 1);
    if (ok) ok = ::fsync(fd) == 0;
    (void)::close(fd);
    // Publish-tear check: if the image changed under us, the bytes we wrote
    // may mix two checkpoints. Skip the rename — the previous (complete)
    // meta survives, which is strictly better than a torn one.
    if (!ok || img.seq.load(std::memory_order_acquire) != seq_before) continue;
    (void)::rename(s.tmp_path, s.meta_path);
    return;
  }
}

void SealRegistry::SealFromSignal(int signo) {
  seal_passes_.fetch_add(1, std::memory_order_relaxed);
  for (Slot& s : slots_) {
    if (s.state.load(std::memory_order_acquire) != 2) continue;
    SealSlot(s, signo);
  }
}

// ------------------------------------------------------------- installation

namespace {

constexpr int kSealSignals[] = {SIGSEGV, SIGBUS, SIGABRT, SIGFPE, SIGILL};
constexpr size_t kNumSealSignals = sizeof(kSealSignals) / sizeof(int);

struct sigaction g_old_actions[kNumSealSignals];
std::atomic<bool> g_installed{false};
std::atomic<uint32_t> g_sealing{0};

// A dedicated signal stack so sealing still works when the fatal signal IS
// a stack overflow. Static storage: no allocation at crash time.
alignas(16) char g_alt_stack[64 * 1024];

int SignalIndex(int signo) {
  for (size_t i = 0; i < kNumSealSignals; ++i) {
    if (kSealSignals[i] == signo) return static_cast<int>(i);
  }
  return -1;
}

void SealSignalHandler(int signo, siginfo_t* /*info*/, void* /*ucontext*/) {
  const int saved_errno = errno;
  // Re-entrancy guard: a crash INSIDE the sealer (or a second thread dying
  // concurrently) must not seal twice or recurse.
  if (g_sealing.exchange(1) == 0) {
    SealRegistry::Instance().SealFromSignal(signo);
  }
  errno = saved_errno;
  // Chain: restore the pre-existing disposition and re-deliver, so the
  // application's own handler (or the default core dump) still runs and the
  // process exit status reports the ORIGINAL signal.
  const int idx = SignalIndex(signo);
  if (idx >= 0) (void)::sigaction(signo, &g_old_actions[idx], nullptr);
  (void)::raise(signo);
}

}  // namespace

void InstallSealHandlers() {
  bool expected = false;
  if (!g_installed.compare_exchange_strong(expected, true)) return;
  // Construct the registry now, in normal context.
  (void)SealRegistry::Instance();

  stack_t ss;
  std::memset(&ss, 0, sizeof(ss));
  ss.ss_sp = g_alt_stack;
  ss.ss_size = sizeof(g_alt_stack);
  (void)::sigaltstack(&ss, nullptr);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = &SealSignalHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_SIGINFO | SA_ONSTACK;
  for (size_t i = 0; i < kNumSealSignals; ++i) {
    if (::sigaction(kSealSignals[i], &sa, &g_old_actions[i]) != 0) {
      std::memset(&g_old_actions[i], 0, sizeof(g_old_actions[i]));
    }
  }
}

bool SealHandlersInstalled() {
  return g_installed.load(std::memory_order_acquire);
}

}  // namespace sword::trace
