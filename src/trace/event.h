// Trace event encoding.
//
// Each thread's log file is a sequence of compressed frames whose decompressed
// payload is a dense array of 16-byte events. Offsets in the meta file are
// *logical* (decompressed-stream) byte offsets, so the writer knows every
// interval's position without waiting for compression, and the reader can
// skip frames using only their headers (paper SIII-B's streaming reads).
//
// Event kinds:
//   kAccess        - one instrumented load/store; addr/size/flags/pc
//   kMutexAcquire  - lock id in `addr`
//   kMutexRelease  - lock id in `addr`
// Barrier and region boundaries are not log events: they are exactly the
// meta-file interval boundaries (Table I).
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace sword::trace {

enum class EventKind : uint8_t {
  kAccess = 0,
  kMutexAcquire = 1,
  kMutexRelease = 2,
};

struct RawEvent {
  EventKind kind = EventKind::kAccess;
  uint8_t flags = 0;  // somp::AccessFlags for kAccess
  uint8_t size = 0;   // access size in bytes for kAccess
  uint32_t pc = 0;    // interned source location for kAccess
  uint64_t addr = 0;  // address for kAccess; mutex id for kMutex*

  static RawEvent Access(uint64_t addr, uint8_t size, uint8_t flags, uint32_t pc) {
    RawEvent e;
    e.kind = EventKind::kAccess;
    e.flags = flags;
    e.size = size;
    e.pc = pc;
    e.addr = addr;
    return e;
  }
  static RawEvent MutexAcquire(uint32_t mutex) {
    RawEvent e;
    e.kind = EventKind::kMutexAcquire;
    e.addr = mutex;
    return e;
  }
  static RawEvent MutexRelease(uint32_t mutex) {
    RawEvent e;
    e.kind = EventKind::kMutexRelease;
    e.addr = mutex;
    return e;
  }

  friend bool operator==(const RawEvent&, const RawEvent&) = default;
};

/// Encoded size of one event in the log stream.
constexpr uint64_t kEventBytes = 16;

/// Appends the 16-byte little-endian encoding of `e`.
void EncodeEvent(const RawEvent& e, ByteWriter& w);

/// Decodes one event; fails on truncation or unknown kind.
Status DecodeEvent(ByteReader& r, RawEvent* out);

}  // namespace sword::trace
