// Trace event encoding.
//
// Each thread's log file is a sequence of compressed frames whose
// decompressed payload is a stream of events. Offsets in the meta file are
// *logical* (decompressed-stream) byte offsets, so the writer knows every
// interval's position without waiting for compression, and the reader can
// skip frames using only their headers (paper SIII-B's streaming reads).
//
// Three payload formats exist, tagged by the frame magic (compress/frame.h):
//
//   v1 - a dense array of fixed 16-byte events (the original layout).
//   v2 - variable-length events: one packed tag byte (kind / flags / size
//        code), a varint pc, and the ADDRESS DELTA against the previous
//        access in the same frame as a zigzag varint. Typical access events
//        take 3-5 bytes instead of 16 before compression, and the delta
//        stream compresses far better (strided loops become runs of
//        identical bytes). Delta state resets at every frame boundary, so
//        frames stay independently decodable.
//   v3 - v2 plus the kAccessRun kind: one event standing for `count`
//        accesses at base, base+stride, ..., base+(count-1)*stride with
//        equal size/flags/pc - the shape every `parallel for` sweep
//        produces. The writer's coalescer emits runs; the offline analyzer
//        materializes them directly as strided intervals without
//        per-element expansion. Kinds 0-2 encode byte-identically to v2.
//
// Event kinds:
//   kAccess        - one instrumented load/store; addr/size/flags/pc
//   kMutexAcquire  - lock id in `addr`
//   kMutexRelease  - lock id in `addr`
//   kAccessRun     - coalesced strided run (v3 frames only)
// Barrier and region boundaries are not log events: they are exactly the
// meta-file interval boundaries (Table I).
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace sword::trace {

/// Trace event-encoding format versions (the frame magic carries the tag).
constexpr uint8_t kTraceFormatV1 = 1;
constexpr uint8_t kTraceFormatV2 = 2;
constexpr uint8_t kTraceFormatV3 = 3;

enum class EventKind : uint8_t {
  kAccess = 0,
  kMutexAcquire = 1,
  kMutexRelease = 2,
  kAccessRun = 3,  // v3 only; the reserved v2 kind, so v2 decoders reject it
};

struct RawEvent {
  EventKind kind = EventKind::kAccess;
  uint8_t flags = 0;   // somp::AccessFlags for kAccess/kAccessRun
  uint8_t size = 0;    // access size in bytes for kAccess/kAccessRun
  uint32_t pc = 0;     // interned source location for kAccess/kAccessRun
  uint64_t addr = 0;   // address for kAccess(Run); mutex id for kMutex*
  uint64_t stride = 0; // kAccessRun: element spacing in bytes (>= 1)
  uint64_t count = 1;  // kAccessRun: number of elements (>= 2)

  static RawEvent Access(uint64_t addr, uint8_t size, uint8_t flags, uint32_t pc) {
    RawEvent e;
    e.kind = EventKind::kAccess;
    e.flags = flags;
    e.size = size;
    e.pc = pc;
    e.addr = addr;
    return e;
  }
  static RawEvent Run(uint64_t base, uint64_t stride, uint64_t count,
                      uint8_t size, uint8_t flags, uint32_t pc) {
    RawEvent e;
    e.kind = EventKind::kAccessRun;
    e.flags = flags;
    e.size = size;
    e.pc = pc;
    e.addr = base;
    e.stride = stride;
    e.count = count;
    return e;
  }
  static RawEvent MutexAcquire(uint32_t mutex) {
    RawEvent e;
    e.kind = EventKind::kMutexAcquire;
    e.addr = mutex;
    return e;
  }
  static RawEvent MutexRelease(uint32_t mutex) {
    RawEvent e;
    e.kind = EventKind::kMutexRelease;
    e.addr = mutex;
    return e;
  }

  friend bool operator==(const RawEvent&, const RawEvent&) = default;
};

// ---------------------------------------------------------------- format v1

/// Encoded size of one v1 event in the log stream.
constexpr uint64_t kEventBytes = 16;

/// Appends the 16-byte little-endian v1 encoding of `e`.
void EncodeEvent(const RawEvent& e, ByteWriter& w);

/// Decodes one v1 event; fails on truncation or unknown kind.
Status DecodeEvent(ByteReader& r, RawEvent* out);

// ---------------------------------------------------------------- format v2

/// Upper bound on one v2 event's encoded size: tag (1) + extended flags (1)
/// + explicit size varint (2) + pc varint (5) + address-delta varint (10).
constexpr uint64_t kMaxEventBytesV2 = 19;

/// Delta-coder state: the previous ACCESS address seen in the current frame.
/// Encoder and decoder must carry matching state and reset it at every frame
/// boundary (the writer resets on flush; frames stay self-contained).
struct EventCodecState {
  uint64_t prev_addr = 0;
};

/// Appends the variable-length v2 encoding of `e`, updating `state`.
void EncodeEventV2(const RawEvent& e, EventCodecState& state, ByteWriter& w);

/// Decodes one v2 event, updating `state`; fails on truncation, unknown
/// kind, or a reserved tag layout.
Status DecodeEventV2(ByteReader& r, EventCodecState& state, RawEvent* out);

// ---------------------------------------------------------------- format v3

/// Upper bound on one v3 event's encoded size: the v2 bound plus a run's
/// stride and count varints (10 each).
constexpr uint64_t kMaxEventBytesV3 = kMaxEventBytesV2 + 20;

/// Appends the variable-length v3 encoding of `e`, updating `state`. Kinds
/// 0-2 encode exactly as v2; kAccessRun adds varint stride and count after
/// the base-address delta, and advances `prev_addr` to the LAST element's
/// address so a continuation right after the run still gets a small delta.
void EncodeEventV3(const RawEvent& e, EventCodecState& state, ByteWriter& w);

/// Decodes one v3 event, updating `state`; fails on truncation, a reserved
/// tag layout, or an implausible run (count < 2, stride 0, or an extent
/// that overflows the address space).
Status DecodeEventV3(ByteReader& r, EventCodecState& state, RawEvent* out);

}  // namespace sword::trace
