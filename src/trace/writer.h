// Per-thread trace writer: the bounded-memory collection core (paper SIII-A).
//
// One ThreadTraceWriter exists per SWORD thread. It owns
//  - a fixed-capacity event buffer (default 2 MB; user-adjustable, the
//    paper's central knob) that is compressed and handed to the Flusher when
//    full - NEVER grown, which is what bounds memory. The buffer comes from
//    the Flusher's BufferPool (which charges it to the tool's MemoryScope);
//    on flush the full buffer is swapped into the pipeline and a recycled
//    one is taken back, so steady-state tracing allocates nothing;
//  - the accumulating meta records (one per barrier-interval segment);
//  - the logical write offset, which is independent of compression and gives
//    every interval its (data_begin, size) coordinates up front.
//
// The buffer's LOGICAL capacity is counted in events - buffer_bytes /
// kEventBytes - regardless of encoding format, so the paper's "2 MB buffer
// = 128K events" knob means the same thing for every format. With the v2
// encoding the same event count occupies far fewer bytes, which is the
// point: fewer flushes, smaller logs. Format v3 adds the per-access fast
// path on top: AppendAccess routes instrumented accesses through a
// duplicate filter and a strided-run coalescer, so hot sweep loops log one
// kAccessRun event instead of thousands of access events.
//
// Thread-compatibility: a writer is driven by exactly one OS thread; only
// the Flusher is shared.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/lockfree.h"
#include "common/status.h"
#include "compress/compressor.h"
#include "trace/event.h"
#include "trace/flusher.h"
#include "trace/meta.h"

namespace sword::trace {

/// Single-writer statistic counter: bumped only by the writer's owning
/// thread with a plain load+store (compiles to an ordinary increment, no
/// lock prefix), while aggregators (SwordTool summing all writers on
/// demand) may read it concurrently without a data race. Cache-line
/// aligned so a reader polling one writer's counter never bounces the
/// line under a DIFFERENT writer's increments (the counters of all
/// writers would otherwise pack densely inside the states_ array).
class alignas(lockfree::kCacheLine) OwnerCounter {
 public:
  void Add(uint64_t n) {
    v_.store(v_.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }
  uint64_t Get() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

struct WriterConfig {
  std::string log_path;
  std::string meta_path;
  uint64_t buffer_bytes = 2 * 1024 * 1024;  // the paper's default bound
  const Compressor* codec = nullptr;        // null = DefaultCompressor()
  Flusher* flusher = nullptr;               // required
  uint8_t format = kTraceFormatV3;          // event encoding (kTraceFormatV*)
  /// Suppress re-logging of an access identical to the most recent one with
  /// the same (pc, flags, size) in the current segment under the same
  /// lockset. Effective for format v3 only; sound because the replayed tree
  /// folds such a duplicate into the existing node without structural change.
  bool access_filter = true;
  /// Coalesce per-(pc, flags, size) arithmetic address runs into single
  /// kAccessRun events. Effective for format v3 only.
  bool coalesce = true;
  /// Checkpoint the meta file (write-temp + atomic rename) every N closed
  /// segments, so a killed process leaves its trace analyzable up to the
  /// last checkpoint instead of losing the whole meta. 0 = only at Finish
  /// (the pre-crash-tolerance behavior).
  uint32_t meta_checkpoint_interval = 1;
  /// Write layer for meta checkpoints and log-file initialization; null =
  /// the real filesystem (the flusher has its own backend knob).
  FileBackend* backend = nullptr;
  /// Adaptive degradation governor (not owned; usually the one the tool
  /// also wires into the flusher). When set, AppendAccess/AppendRange poll
  /// its level and shed per-site events at reduced-fidelity levels — every
  /// shed access counted per segment and in the meta totals, every level
  /// change recorded as a meta transition. Null = full fidelity always.
  DegradationGovernor* governor = nullptr;
  /// Register the trace with the fatal-signal SealRegistry and publish a
  /// crash-taggable pre-serialized meta image at construction and at every
  /// checkpoint. sword-run / SwordTool enable this for production runs.
  bool crash_seal = false;
};

class ThreadTraceWriter {
 public:
  ThreadTraceWriter(uint32_t thread_id, const WriterConfig& config);
  ~ThreadTraceWriter();
  ThreadTraceWriter(const ThreadTraceWriter&) = delete;
  ThreadTraceWriter& operator=(const ThreadTraceWriter&) = delete;

  uint32_t thread_id() const { return thread_id_; }
  uint8_t format() const { return config_.format; }

  /// Appends one event, flushing the buffer to the log file first if full.
  /// Out-of-band events (mutex ops) materialize any pending coalescer run
  /// first, so the encoded stream preserves program order, and reset the
  /// duplicate filter (the effective lockset changed).
  void Append(const RawEvent& event);

  /// The per-access fast path: appends one instrumented load/store through
  /// the duplicate filter and the strided-run coalescer (format v3; plain
  /// Append otherwise). Outside a segment the access is counted and
  /// dropped - see accesses_dropped().
  void AppendAccess(uint64_t addr, uint8_t size, uint8_t flags, uint32_t pc);

  /// Appends a bulk access over [addr, addr+bytes): one run event of
  /// 128-byte chunks plus a tail access (format v3), or the historical
  /// per-chunk event loop (v1/v2). Equivalent to the chunk loop by
  /// construction.
  void AppendRange(uint64_t addr, uint64_t bytes, uint8_t flags, uint32_t pc);

  /// Appends a pre-filter footprint receipt into the open segment: one run
  /// event standing for accesses the prefilter elided (src/prefilter). The
  /// receipt bypasses filter/coalescer/governor - it is already an exact
  /// summary and must never be shed, or elision would lose information.
  /// Returns false (and appends nothing) when no segment is open; the
  /// caller must then book the covered accesses as elided_lost.
  bool AppendReceipt(const RawEvent& event);

  /// Books `n` accesses elided by the prefilter under a proof + an emitted
  /// receipt: counted in the open segment's record and the meta totals.
  void NoteElided(uint64_t n);

  /// Books `n` elided accesses whose receipt could NOT be emitted (no open
  /// segment). These are potential missed information, accounted like
  /// degradation loss - never silently absorbed.
  void NoteElidedLost(uint64_t n);

  /// Opens a new barrier-interval segment; data_begin is captured from the
  /// current logical offset. Any open segment must be closed first.
  void BeginSegment(const IntervalMeta& meta);

  /// Closes the open segment, fixing its data_size and event_count.
  void EndSegment();

  bool HasOpenSegment() const { return open_segment_; }

  /// Pushes any buffered events into the flush pipeline without closing the
  /// trace. With an async flusher, call this on every writer, then
  /// Flusher::Drain(), then Finish() - that order lets the final meta see
  /// the complete drop totals for events that failed to hit the disk.
  void FlushEvents();

  /// Flushes remaining events and writes the meta file. Idempotent.
  Status Finish();

  // Statistics for the overhead benches and the tool's aggregated stats.
  // events_logged counts ENCODED events (a coalesced run counts once).
  uint64_t events_logged() const { return events_logged_.Get(); }
  uint64_t flushes() const { return flushes_.Get(); }
  uint64_t logical_bytes() const { return logical_offset_; }
  /// Accesses suppressed by the duplicate filter.
  uint64_t events_suppressed() const { return events_suppressed_.Get(); }
  /// Accesses absorbed into run events beyond the first (sum of count-1).
  uint64_t events_coalesced() const { return events_coalesced_.Get(); }
  /// kAccessRun events emitted.
  uint64_t runs_emitted() const { return runs_emitted_.Get(); }
  /// Accesses observed outside any open segment: counted and dropped
  /// (release builds previously corrupted the segment accounting silently).
  uint64_t accesses_dropped() const { return accesses_dropped_.Get(); }
  /// Accesses shed on the degradation governor's orders (exact; also folded
  /// into the per-segment records and the meta totals).
  uint64_t degraded_dropped() const { return degraded_dropped_.Get(); }
  /// Events the writer shed because the buffer pool returned no memory
  /// (deterministic injection or a genuinely exhausted allocator).
  uint64_t pool_shed() const { return pool_shed_.Get(); }
  /// Accesses elided by the static pre-filter under a disjointness proof,
  /// each covered by an exact footprint receipt (kElided channel - distinct
  /// from every "dropped" counter above by construction).
  uint64_t events_elided() const { return events_elided_.Get(); }
  /// Elided accesses whose receipt could not be emitted (information loss).
  uint64_t elided_lost() const { return elided_lost_.Get(); }
  /// The SealRegistry slot, or SealRegistry::kNoSlot (testing).
  int seal_slot() const { return seal_slot_; }

 private:
  void FlushBuffer(bool reacquire);
  /// Current meta file image: v5 header (with the flusher's drop totals for
  /// this log so far) + the incrementally serialized interval records.
  /// `sealed` builds the crash-seal variant: crash_sealed flag set, signo
  /// placeholder zero (the handler patches it in place).
  Bytes EncodeMetaSnapshot(bool sealed = false) const;
  /// Re-reads the governor's packed state: records a meta transition when
  /// the sequence advanced, and tracks the open segment's max level.
  void PollGovernor();
  /// True when the current degradation level says to shed this access.
  /// Counts per-site events in a direct-mapped table reset per segment.
  bool ShedAccess(uint32_t pc, uint8_t flags, uint8_t size);
  /// Publishes the sealed meta image to the SealRegistry (no-op without a
  /// slot) — called at construction, every checkpoint, and Finish.
  void PublishSealImage();
  /// Books one event shed because the buffer pool returned no memory.
  void PoolExhaustedShed();
  /// Encodes one event into the buffer (flushing first if full) and bumps
  /// the logical offset and event counters. Bypasses filter and coalescer.
  void EncodeToBuffer(const RawEvent& event);
  /// Flushes the coalescer's pending run into the buffer, as a kAccessRun
  /// if it grew to count >= 2 or a plain access otherwise.
  void MaterializePending();
  /// Invalidates every duplicate-filter entry (generation bump).
  void ResetFilter();

  const uint32_t thread_id_;
  WriterConfig config_;
  const uint64_t capacity_events_;  // logical capacity: buffer_bytes / 16
  const uint64_t capacity_bytes_;
  const uint64_t max_event_bytes_;  // headroom bound for the format
  const bool fastpath_;             // format >= v3: filter/coalescer legal

  Bytes buffer_;                  // encoded events; acquired from the pool
  uint64_t buffer_events_ = 0;    // events currently in buffer_
  EventCodecState codec_state_;   // v2/v3 delta state; reset at each flush
  uint64_t logical_offset_ = 0;   // total event bytes ever appended
  MetaFile meta_;
  // Each kept record is serialized once, when its segment closes; a meta
  // checkpoint is then header + this byte blob, not an O(records)
  // re-serialization per barrier interval.
  Bytes serialized_records_;
  uint64_t serialized_count_ = 0;
  uint32_t segments_since_checkpoint_ = 0;
  bool open_segment_ = false;
  uint64_t segment_begin_events_ = 0;
  bool finished_ = false;

  // Duplicate-access filter: a direct-mapped cache over (pc, flags, size)
  // remembering the last address each site logged. A hit with an identical
  // address means the replayed tree would only bump a hit counter, so the
  // event is suppressed. Reset (generation bump) on segment begin/end,
  // mutex acquire/release, and range appends.
  struct FilterSlot {
    uint64_t addr = 0;
    uint32_t pc = 0;
    uint32_t gen = 0;  // live iff == filter_gen_
    uint8_t flags = 0;
    uint8_t size = 0;
  };
  static constexpr size_t kFilterSlots = 256;
  std::unique_ptr<FilterSlot[]> filter_;  // null when disabled
  uint32_t filter_gen_ = 1;

  // Strided-run coalescer: ONE pending run, so every materialized event
  // occupies exactly its original position in the stream (replay order is
  // byte-for-byte the raw order; a multi-slot table could reorder).
  struct PendingRun {
    uint64_t base = 0;
    uint64_t stride = 0;
    uint64_t count = 0;  // 0 = empty
    uint64_t last = 0;   // address of the most recent element
    uint32_t pc = 0;
    uint8_t flags = 0;
    uint8_t size = 0;
  };
  PendingRun pending_;  // only ever non-empty inside an open segment
  const bool coalesce_;

  // --- adaptive degradation (config_.governor != null) ---
  // Per-site event counters for the reduced-fidelity levels, direct-mapped
  // like the duplicate filter (collisions merely reset a site's count — the
  // shed decision stays sound, only the shed VOLUME is approximate).
  struct ShedSlot {
    uint32_t pc = 0;
    uint32_t gen = 0;   // live iff == shed_gen_
    uint32_t count = 0; // accesses seen from this site this segment
    uint8_t flags = 0;
    uint8_t size = 0;
  };
  std::unique_ptr<ShedSlot[]> shed_;  // allocated iff governor present
  uint32_t shed_gen_ = 1;
  uint64_t governor_seq_ = 0;        // last transition seq folded into meta
  uint8_t current_level_ = 0;        // cached from the last poll
  uint8_t segment_max_level_ = 0;    // highest level while segment open
  uint64_t segment_degraded_ = 0;    // shed from the open segment
  uint64_t segment_elided_ = 0;      // prefilter-elided from the open segment

  int seal_slot_ = -1;  // SealRegistry slot (kNoSlot when not sealing)

  OwnerCounter events_logged_;
  OwnerCounter flushes_;
  OwnerCounter events_suppressed_;
  OwnerCounter events_coalesced_;
  OwnerCounter runs_emitted_;
  OwnerCounter accesses_dropped_;
  OwnerCounter degraded_dropped_;
  OwnerCounter pool_shed_;
  OwnerCounter events_elided_;
  OwnerCounter elided_lost_;
};

}  // namespace sword::trace
