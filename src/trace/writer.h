// Per-thread trace writer: the bounded-memory collection core (paper SIII-A).
//
// One ThreadTraceWriter exists per SWORD thread. It owns
//  - a fixed-capacity event buffer (default 2 MB; user-adjustable, the
//    paper's central knob) that is compressed and handed to the Flusher when
//    full - NEVER grown, which is what bounds memory. The buffer comes from
//    the Flusher's BufferPool (which charges it to the tool's MemoryScope);
//    on flush the full buffer is swapped into the pipeline and a recycled
//    one is taken back, so steady-state tracing allocates nothing;
//  - the accumulating meta records (one per barrier-interval segment);
//  - the logical write offset, which is independent of compression and gives
//    every interval its (data_begin, size) coordinates up front.
//
// The buffer's LOGICAL capacity is counted in events - buffer_bytes /
// kEventBytes - regardless of encoding format, so the paper's "2 MB buffer
// = 128K events" knob means the same thing for v1 and v2 traces. With the
// v2 encoding the same event count occupies far fewer bytes, which is the
// point: fewer flushes, smaller logs.
//
// Thread-compatibility: a writer is driven by exactly one OS thread; only
// the Flusher is shared.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "compress/compressor.h"
#include "trace/event.h"
#include "trace/flusher.h"
#include "trace/meta.h"

namespace sword::trace {

struct WriterConfig {
  std::string log_path;
  std::string meta_path;
  uint64_t buffer_bytes = 2 * 1024 * 1024;  // the paper's default bound
  const Compressor* codec = nullptr;        // null = DefaultCompressor()
  Flusher* flusher = nullptr;               // required
  uint8_t format = kTraceFormatV2;          // event encoding (kTraceFormatV*)
  /// Checkpoint the meta file (write-temp + atomic rename) every N closed
  /// segments, so a killed process leaves its trace analyzable up to the
  /// last checkpoint instead of losing the whole meta. 0 = only at Finish
  /// (the pre-crash-tolerance behavior).
  uint32_t meta_checkpoint_interval = 1;
  /// Write layer for meta checkpoints and log-file initialization; null =
  /// the real filesystem (the flusher has its own backend knob).
  FileBackend* backend = nullptr;
};

class ThreadTraceWriter {
 public:
  ThreadTraceWriter(uint32_t thread_id, const WriterConfig& config);
  ~ThreadTraceWriter();
  ThreadTraceWriter(const ThreadTraceWriter&) = delete;
  ThreadTraceWriter& operator=(const ThreadTraceWriter&) = delete;

  uint32_t thread_id() const { return thread_id_; }
  uint8_t format() const { return config_.format; }

  /// Appends one event, flushing the buffer to the log file first if full.
  void Append(const RawEvent& event);

  /// Opens a new barrier-interval segment; data_begin is captured from the
  /// current logical offset. Any open segment must be closed first.
  void BeginSegment(const IntervalMeta& meta);

  /// Closes the open segment, fixing its data_size and event_count.
  void EndSegment();

  bool HasOpenSegment() const { return open_segment_; }

  /// Pushes any buffered events into the flush pipeline without closing the
  /// trace. With an async flusher, call this on every writer, then
  /// Flusher::Drain(), then Finish() - that order lets the final meta see
  /// the complete drop totals for events that failed to hit the disk.
  void FlushEvents();

  /// Flushes remaining events and writes the meta file. Idempotent.
  Status Finish();

  // Statistics for the overhead benches.
  uint64_t events_logged() const { return events_logged_; }
  uint64_t flushes() const { return flushes_; }
  uint64_t logical_bytes() const { return logical_offset_; }

 private:
  void FlushBuffer(bool reacquire);
  /// Current meta file image: v3 header (with the flusher's drop totals for
  /// this log so far) + the incrementally serialized interval records.
  Bytes EncodeMetaSnapshot() const;

  const uint32_t thread_id_;
  WriterConfig config_;
  const uint64_t capacity_events_;  // logical capacity: buffer_bytes / 16
  const uint64_t capacity_bytes_;

  Bytes buffer_;                  // encoded events; acquired from the pool
  uint64_t buffer_events_ = 0;    // events currently in buffer_
  EventCodecState codec_state_;   // v2 delta state; reset at each flush
  uint64_t logical_offset_ = 0;   // total event bytes ever appended
  MetaFile meta_;
  // Each kept record is serialized once, when its segment closes; a meta
  // checkpoint is then header + this byte blob, not an O(records)
  // re-serialization per barrier interval.
  Bytes serialized_records_;
  uint64_t serialized_count_ = 0;
  uint32_t segments_since_checkpoint_ = 0;
  bool open_segment_ = false;
  uint64_t segment_begin_events_ = 0;
  bool finished_ = false;

  uint64_t events_logged_ = 0;
  uint64_t flushes_ = 0;
};

}  // namespace sword::trace
