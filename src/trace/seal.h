// Fatal-signal trace sealing (production-run survivability).
//
// A production run that dies of SIGSEGV/SIGBUS/SIGABRT/SIGFPE/SIGILL must
// still yield a salvageable trace. The constraint is brutal: a fatal-signal
// handler may only touch async-signal-safe territory — no malloc, no locks,
// no C++ serialization, no iostreams. The design splits the work so that
// NOTHING interesting happens in signal context:
//
//  - Normal context (the trace writer, at construction and at every meta
//    checkpoint) registers its file paths in a fixed-slot SealRegistry and
//    publishes a fully pre-serialized meta image — the exact bytes of a v5
//    meta checkpoint with the crash_sealed flag already set and a zero
//    signo placeholder at a fixed byte offset. Images live in a per-slot
//    seqlock-protected double buffer, so publication never blocks and the
//    handler can always find a consistent image.
//
//  - Signal context walks the live slots and, per slot, (1) appends a
//    fixed-layout crash-marker frame ("SWCR") to the log and fsyncs it,
//    (2) writes the published image to `<meta>.seal.tmp`, patching the one
//    signo byte while streaming, fsyncs, and renames it over the meta file
//    — the same atomic-replace discipline as a normal checkpoint, skipped
//    entirely if the seqlock shows the image was torn mid-publish (the
//    previous checkpoint then survives untouched). Only open/write/fsync/
//    close/rename/sigaction/raise run in the handler.
//
// Handlers chain: the pre-existing disposition is saved at install, restored
// after sealing, and the signal re-raised, so an application's own crash
// handler (or the default core dump) still runs. A dedicated sigaltstack
// keeps sealing working even when the fault is a stack overflow.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace sword::trace {

/// Fixed-capacity registry of live trace writers the fatal-signal handler
/// seals. All mutation happens in normal context; the handler only reads.
class SealRegistry {
 public:
  static constexpr size_t kMaxSlots = 256;
  static constexpr size_t kMaxPath = 256;
  static constexpr int kNoSlot = -1;

  static SealRegistry& Instance();

  /// Claims a slot for (log_path, meta_path). Returns kNoSlot when the
  /// registry is full or a path does not fit the fixed buffers (the trace
  /// still works; it just cannot be crash-sealed). Thread-safe.
  int Register(const std::string& log_path, const std::string& meta_path);

  /// Publishes `image` (a pre-serialized crash-tagged meta checkpoint) for
  /// `slot`. Called by the owning writer thread only; never blocks the
  /// handler. No-op for kNoSlot.
  void Publish(int slot, const Bytes& image);

  /// Frees the slot (writer Finish). No-op for kNoSlot.
  void Unregister(int slot);

  /// The async-signal-safe sealing pass: walks live slots, appends a crash
  /// marker to each log, and atomically replaces each meta with its
  /// published image patched with `signo`. Public so tests can drive it
  /// without dying.
  void SealFromSignal(int signo);

  /// Slots currently live (testing/stats).
  size_t live_slots() const;
  /// How many times SealFromSignal ran (testing).
  uint64_t seal_passes() const {
    return seal_passes_.load(std::memory_order_relaxed);
  }

 private:
  SealRegistry() = default;

  struct Image {
    std::atomic<uint64_t> seq{0};       // seqlock: odd = publish in progress
    std::atomic<uint8_t*> data{nullptr};
    std::atomic<size_t> size{0};
    size_t capacity = 0;                // owner-thread only
  };

  struct Slot {
    std::atomic<uint32_t> state{0};  // 0 free, 1 claimed/teardown, 2 live
    std::atomic<uint32_t> active{0};  // which image the handler should read
    Image image[2];
    char log_path[kMaxPath] = {0};
    char meta_path[kMaxPath] = {0};
    char tmp_path[kMaxPath] = {0};
  };

  void SealSlot(Slot& slot, int signo);

  Slot slots_[kMaxSlots];
  std::atomic<uint64_t> seal_passes_{0};
  // Image buffers replaced during growth are retired here instead of freed:
  // a handler interrupted mid-publish may still hold the old pointer.
  // Growth is geometric, so the retained total is bounded by the final size.
  std::mutex retired_mu_;
  std::vector<uint8_t*> retired_;
};

/// Installs the sealing handler for SIGSEGV/SIGBUS/SIGABRT/SIGFPE/SIGILL,
/// chaining to any pre-existing disposition. Idempotent; thread-safe.
void InstallSealHandlers();

/// True once InstallSealHandlers has run.
bool SealHandlersInstalled();

}  // namespace sword::trace
