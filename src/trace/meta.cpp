#include "trace/meta.h"

namespace sword::trace {

void IntervalMeta::Serialize(ByteWriter& w, uint8_t version) const {
  w.PutVarU64(region);
  w.PutVarU64(parent_region);
  w.PutVarU64(phase);
  label.Serialize(w);
  w.PutVarU64(level);
  w.PutVarU64(lane);
  w.PutVarU64(data_begin);
  w.PutVarU64(data_size);
  if (version >= 2) w.PutVarU64(event_count);
  w.PutVarU64(lockset.size());
  for (uint32_t m : lockset) w.PutVarU64(m);
  if (version >= 3) {
    w.PutVarU64(degradation_level);
    w.PutVarU64(degraded_dropped);
  }
  if (version >= 4) w.PutVarU64(elided);
}

Status IntervalMeta::Deserialize(ByteReader& r, IntervalMeta* out, uint8_t version) {
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&out->region));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&out->parent_region));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&out->phase));
  SWORD_RETURN_IF_ERROR(osl::Label::Deserialize(r, &out->label));
  uint64_t level, lane;
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&level));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&lane));
  out->level = static_cast<uint32_t>(level);
  out->lane = static_cast<uint32_t>(lane);
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&out->data_begin));
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&out->data_size));
  out->event_count = 0;
  if (version >= 2) SWORD_RETURN_IF_ERROR(r.GetVarU64(&out->event_count));
  uint64_t n;
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&n));
  out->lockset.clear();
  out->lockset.reserve(n);
  for (uint64_t i = 0; i < n; i++) {
    uint64_t m;
    SWORD_RETURN_IF_ERROR(r.GetVarU64(&m));
    out->lockset.push_back(static_cast<uint32_t>(m));
  }
  out->degradation_level = 0;
  out->degraded_dropped = 0;
  if (version >= 3) {
    uint64_t level;
    SWORD_RETURN_IF_ERROR(r.GetVarU64(&level));
    out->degradation_level = static_cast<uint32_t>(level);
    SWORD_RETURN_IF_ERROR(r.GetVarU64(&out->degraded_dropped));
  }
  out->elided = 0;
  if (version >= 4) SWORD_RETURN_IF_ERROR(r.GetVarU64(&out->elided));
  return Status::Ok();
}

std::string IntervalMeta::ToString() const {
  std::string out = "pid=" + std::to_string(region);
  out += " ppid=" +
         (parent_region == kNoParent ? std::string("-") : std::to_string(parent_region));
  out += " bid=" + std::to_string(phase);
  out += " offset=" + std::to_string(TableOffset());
  out += " span=" + std::to_string(TableSpan());
  out += " level=" + std::to_string(level);
  out += " data_begin=" + std::to_string(data_begin);
  out += " size=" + std::to_string(data_size);
  out += " events=" + std::to_string(EventCount());
  out += " label=" + label.ToString();
  return out;
}

void EncodeMetaHeader(ByteWriter& w, const MetaHeaderInfo& info) {
  w.PutU32(kMetaMagicV6);
  // v5+: flags + seal signo as FIXED-offset bytes right after the magic
  // (kMetaFlagsOffset / kMetaSealSignoOffset) so the fatal-signal handler
  // can patch them in a pre-serialized image without running any encoder.
  w.PutU8(info.crash_sealed ? kMetaFlagCrashSealed : 0);
  w.PutU8(info.seal_signo);
  w.PutVarU64(info.thread_id);
  w.PutU8(info.log_format);
  // v3 additions: record-time drop totals, before the interval records so a
  // torn tail cannot hide them. v4 adds the outside-segment access drops,
  // v5 the degradation-governor sheds and the transition history, v6 the
  // pre-filter elision totals.
  w.PutVarU64(info.events_dropped);
  w.PutVarU64(info.bytes_dropped);
  w.PutVarU64(info.accesses_dropped);
  w.PutVarU64(info.degraded_dropped);
  w.PutVarU64(info.elided_accesses);
  w.PutVarU64(info.elided_lost);
  const size_t n_transitions = info.transitions ? info.transitions->size() : 0;
  w.PutVarU64(n_transitions);
  for (size_t i = 0; i < n_transitions; ++i) {
    const DegradationTransition& t = (*info.transitions)[i];
    w.PutU8(t.level);
    w.PutU8(t.reason);
    w.PutVarU64(t.interval);
  }
  w.PutVarU64(info.record_count);
}

Bytes MetaFile::Encode() const {
  ByteWriter w;
  MetaHeaderInfo info;
  info.thread_id = thread_id;
  info.log_format = log_format;
  info.crash_sealed = crash_sealed;
  info.seal_signo = seal_signo;
  info.events_dropped = events_dropped;
  info.bytes_dropped = bytes_dropped;
  info.accesses_dropped = accesses_dropped;
  info.degraded_dropped = degraded_dropped;
  info.elided_accesses = elided_accesses;
  info.elided_lost = elided_lost;
  info.transitions = &transitions;
  info.record_count = intervals.size();
  EncodeMetaHeader(w, info);
  for (const auto& m : intervals) m.Serialize(w, /*version=*/4);
  return w.buffer();
}

Status MetaFile::Decode(const Bytes& data, MetaFile* out, bool salvage,
                        uint64_t* records_dropped) {
  if (records_dropped) *records_dropped = 0;
  ByteReader r(data);
  uint32_t magic;
  SWORD_RETURN_IF_ERROR(r.GetU32(&magic));
  uint8_t version;
  if (magic == kMetaMagic) {
    version = 1;
  } else if (magic == kMetaMagicV2) {
    version = 2;
  } else if (magic == kMetaMagicV3) {
    version = 3;
  } else if (magic == kMetaMagicV4) {
    version = 4;
  } else if (magic == kMetaMagicV5) {
    version = 5;
  } else if (magic == kMetaMagicV6) {
    version = 6;
  } else {
    return Status::Corrupt("bad meta magic");
  }
  out->crash_sealed = false;
  out->seal_signo = 0;
  if (version >= 5) {
    uint8_t flags, signo;
    SWORD_RETURN_IF_ERROR(r.GetU8(&flags));
    SWORD_RETURN_IF_ERROR(r.GetU8(&signo));
    if (flags & ~kMetaFlagCrashSealed) {
      return Status::Corrupt("unknown meta flag bits");
    }
    out->crash_sealed = (flags & kMetaFlagCrashSealed) != 0;
    out->seal_signo = signo;
  }
  uint64_t tid, n;
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&tid));
  out->thread_id = static_cast<uint32_t>(tid);
  if (version >= 2) {
    SWORD_RETURN_IF_ERROR(r.GetU8(&out->log_format));
    if (out->log_format < kTraceFormatV1 || out->log_format > kTraceFormatV3) {
      return Status::Corrupt("unknown log format in meta file");
    }
  } else {
    out->log_format = kTraceFormatV1;  // v1 metas only ever paired v1 logs
  }
  out->events_dropped = 0;
  out->bytes_dropped = 0;
  out->accesses_dropped = 0;
  if (version >= 3) {
    SWORD_RETURN_IF_ERROR(r.GetVarU64(&out->events_dropped));
    SWORD_RETURN_IF_ERROR(r.GetVarU64(&out->bytes_dropped));
  }
  if (version >= 4) {
    SWORD_RETURN_IF_ERROR(r.GetVarU64(&out->accesses_dropped));
  }
  out->degraded_dropped = 0;
  out->transitions.clear();
  out->elided_accesses = 0;
  out->elided_lost = 0;
  if (version >= 5) {
    SWORD_RETURN_IF_ERROR(r.GetVarU64(&out->degraded_dropped));
    // v6 inserts the pre-filter counters between the governor's shed count
    // and the transition history (mirrors EncodeMetaHeader's field order).
    if (version >= 6) {
      SWORD_RETURN_IF_ERROR(r.GetVarU64(&out->elided_accesses));
      SWORD_RETURN_IF_ERROR(r.GetVarU64(&out->elided_lost));
    }
    uint64_t n_transitions;
    SWORD_RETURN_IF_ERROR(r.GetVarU64(&n_transitions));
    if (n_transitions > data.size()) {
      return Status::Corrupt("implausible transition count in meta file");
    }
    out->transitions.reserve(n_transitions);
    for (uint64_t i = 0; i < n_transitions; ++i) {
      DegradationTransition t;
      SWORD_RETURN_IF_ERROR(r.GetU8(&t.level));
      SWORD_RETURN_IF_ERROR(r.GetU8(&t.reason));
      SWORD_RETURN_IF_ERROR(r.GetVarU64(&t.interval));
      out->transitions.push_back(t);
    }
  }
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&n));
  out->intervals.clear();
  out->intervals.reserve(n);
  const uint8_t record_version =
      version >= 6 ? 4 : version >= 5 ? 3 : version >= 2 ? 2 : 1;
  for (uint64_t i = 0; i < n; i++) {
    IntervalMeta m;
    Status s = IntervalMeta::Deserialize(r, &m, record_version);
    if (!s.ok()) {
      if (!salvage) return s;
      // The interval list is written in order; a parse failure means the
      // file was cut mid-record. Everything before it is intact.
      if (records_dropped) *records_dropped = n - i;
      return Status::Ok();
    }
    out->intervals.push_back(std::move(m));
  }
  if (!r.AtEnd() && !salvage) return Status::Corrupt("trailing bytes in meta file");
  return Status::Ok();
}

}  // namespace sword::trace
