// Streaming log-file reader (paper SIII-B).
//
// Log files can be far larger than memory; the analyzer therefore never loads
// one wholesale. On open, the reader scans only the frame HEADERS to build an
// index mapping logical (decompressed) offsets to file offsets. Reading an
// interval's byte range then decompresses just the overlapping frames, one at
// a time, invoking the visitor per event - the paper's "streaming algorithm
// that reads access information from log files in small chunks".
//
// Frames self-tag their payload format (the frame magic, see
// compress/frame.h): v1 frames hold fixed 16-byte events and can be sliced
// at any event boundary; v2 frames hold delta-coded variable-length events
// whose decoder state starts fresh at the frame boundary, so a mid-frame
// range is served by decoding from the frame start and discarding the
// prefix. One file may mix formats; the reader dispatches per frame.
//
// Salvage mode (SalvagePolicy): a production run can be killed mid-flush or
// hit disk corruption; strict open would reject the whole file at the first
// bad byte. With salvage enabled the open scan RESYNCHRONIZES instead: on a
// bad header, checksum mismatch, or truncated tail it scans forward for the
// next frame magic and keeps indexing, recording what it skipped in
// SalvageStats. The offset-trust rules (docs/FORMAT.md) decide whether the
// frames after a hole still have known logical offsets: a corrupt frame
// whose claimed size lands on a valid next frame keeps the logical stream
// addressable (known-size hole); an unparseable header does not, and every
// frame after it becomes "unaddressable" - decodable for sword-dump --verify
// but excluded from interval reads. Strict mode stays the default.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <vector>

#include "common/function_ref.h"
#include "common/status.h"
#include "trace/event.h"

namespace sword::trace {

/// Bounded LRU cache of decompressed frames. A frame typically holds MANY
/// barrier intervals (128K events per 2 MB frame vs a few hundred events per
/// interval in region-heavy programs like LULESH); without a cache every
/// interval read would decompress its whole frame again. The byte cap keeps
/// a long analysis from retaining every frame it ever touched - the cache
/// holds a few frames, not the trace. One cache per analyzer thread keeps
/// reads lock-free; entries are keyed by (reader identity, frame offset) so
/// one cache may serve several threads' logs.
class FrameCache {
 public:
  /// Default cap: a handful of 2 MB frames.
  static constexpr size_t kDefaultMaxBytes = 8 * 1024 * 1024;

  explicit FrameCache(size_t max_bytes = kDefaultMaxBytes) : max_bytes_(max_bytes) {}

  /// Returns the cached decompressed frame, bumping it to most-recent, or
  /// null. Counts a hit on success (the caller counts the miss via Insert).
  const Bytes* Lookup(const void* reader, uint64_t logical_begin);

  /// Inserts a decompressed frame (evicting least-recently-used entries past
  /// the byte cap; the newest entry always stays) and returns a pointer to
  /// the cached copy, valid until the next Lookup/Insert.
  const Bytes* Insert(const void* reader, uint64_t logical_begin, Bytes data);

  size_t entry_count() const { return entries_.size(); }
  size_t byte_size() const { return bytes_; }
  size_t max_bytes() const { return max_bytes_; }

  uint64_t hits = 0;
  uint64_t misses = 0;

 private:
  struct Entry {
    const void* reader;
    uint64_t logical_begin;
    Bytes data;
  };

  size_t max_bytes_;
  size_t bytes_ = 0;
  std::list<Entry> entries_;  // front = most recently used
};

/// How to treat damage found while opening/streaming a log.
struct SalvagePolicy {
  /// Off (default): any corruption fails the open/read - the right behavior
  /// for tests and healthy traces. On: resynchronize and keep going,
  /// accounting for every byte skipped.
  bool enabled = false;
  /// Verify frame payload checksums during the open scan. Costs a full file
  /// read but catches bit flips before analysis trusts the frame.
  bool verify_payloads = true;
};

/// What salvage found (all zero for a clean log).
struct SalvageStats {
  uint64_t frames_ok = 0;
  uint64_t frames_corrupt = 0;           // bad header/checksum regions
  uint64_t frames_unaddressable = 0;     // parseable but logical offset unknown
  uint64_t gap_frames = 0;               // record-time drop markers seen
  uint64_t events_dropped_at_record = 0; // from gap frames
  uint64_t bytes_dropped_at_record = 0;  // logical bytes, from gap frames
  uint64_t resyncs = 0;                  // forward scans for the next magic
  uint64_t bytes_skipped = 0;            // file bytes passed over by resyncs
  uint64_t truncated_tail_bytes = 0;     // incomplete final frame
  /// In-band fatal-signal crash markers ("SWCR") seen. A marker is honest
  /// evidence, not damage: it occupies zero logical bytes and does not make
  /// the log unclean — the trace simply ENDS there.
  uint64_t crash_markers = 0;
  uint8_t crash_signo = 0;               // signo of the last marker seen

  bool clean() const {
    return frames_corrupt == 0 && frames_unaddressable == 0 &&
           gap_frames == 0 && resyncs == 0 && bytes_skipped == 0 &&
           truncated_tail_bytes == 0;
  }
};

/// One frame (or damaged region) seen by VerifyLog, in file order.
struct FrameRecord {
  uint64_t index = 0;        // ordinal in the walk
  uint64_t file_offset = 0;
  uint64_t encoded_size = 0; // on-disk bytes (skipped bytes for bad regions)
  uint64_t raw_size = 0;     // decompressed size (0 if unknown)
  uint8_t payload_format = 0;  // kTraceFormatV*; 0 for gaps/unknown
  std::string codec;
  bool is_gap = false;
  uint64_t dropped_events = 0;
  bool is_crash = false;        // fatal-signal crash marker ("SWCR")
  uint8_t crash_signo = 0;
  bool offset_trusted = false;  // logical_begin is meaningful
  uint64_t logical_begin = 0;
  Status status;  // ok, or why the frame is corrupt
};

/// Resumable decode position inside one delta-coded (v2/v3) frame. The
/// codec state is only valid from a frame's start, so a plain StreamRange
/// re-decodes the frame's prefix on every call - quadratic when many small
/// segments share one frame. A caller that walks a log in mostly-ascending
/// order (the offline streaming build) threads one cursor through its calls
/// instead: each call resumes where the previous one stopped and only
/// re-decodes from the frame start when the walk jumps backwards.
struct DecodeCursor {
  uint64_t frame_begin = 0;  // logical_begin of the frame the state is for
  uint64_t pos = 0;          // logical position the state is valid at
  uint64_t byte_offset = 0;  // offset into the decompressed frame at `pos`
  EventCodecState state;
  bool valid = false;
};

class LogReader {
 public:
  /// Scans frame headers and builds the offset index. The default (strict)
  /// policy fails on corrupt or truncated files; with salvage enabled it
  /// resynchronizes past damage instead and records it in salvage_stats().
  static Result<LogReader> Open(const std::string& path,
                                const SalvagePolicy& policy = {});

  /// Decompresses the frames covering logical range [begin, begin+size) and
  /// calls `fn` for each event in it, in order. At most one decompressed
  /// frame is held in memory at a time. With `cache`, frames decompressed by
  /// previous calls (through the same cache) are reused. With `cursor`, a
  /// delta-coded frame resumes decoding from the cursor's position when the
  /// range starts at or after it (see DecodeCursor); event output and error
  /// behavior are identical either way.
  ///
  /// In strict mode a range touching a hole (corrupt frame, record-time gap,
  /// truncated tail) is an error. In salvage mode the hole's overlap is
  /// added to `*bytes_skipped` (when provided) and streaming continues with
  /// the surviving frames.
  Status StreamRange(uint64_t begin, uint64_t size,
                     FunctionRef<void(const RawEvent&)> fn,
                     FrameCache* cache = nullptr,
                     uint64_t* bytes_skipped = nullptr,
                     DecodeCursor* cursor = nullptr) const;

  /// Convenience: materializes a range (tests, small intervals).
  Status ReadRange(uint64_t begin, uint64_t size, std::vector<RawEvent>* out) const;

  /// Walks every frame of `path` with full header+checksum validation,
  /// calling `fn` per frame (and per damaged region) in file order. Never
  /// fails on corruption - damage is reported in the records and the
  /// returned stats. Powers `sword-dump --verify`.
  static Result<SalvageStats> VerifyLog(const std::string& path,
                                        FunctionRef<void(const FrameRecord&)> fn);

  uint64_t total_logical_bytes() const { return total_logical_; }
  size_t frame_count() const { return frames_.size(); }

  /// Sum of the encoded (on-disk) sizes of the intact frames overlapping
  /// logical range [begin, begin+size). A frame shared by several ranges
  /// counts fully toward each - this reports what the decoder must touch to
  /// stream the range, not an exclusive allocation. Powers
  /// `sword-dump --segments`' compression-ratio column.
  uint64_t CompressedBytesForRange(uint64_t begin, uint64_t size) const;
  const SalvageStats& salvage_stats() const { return stats_; }
  bool salvage_enabled() const { return policy_.enabled; }

 private:
  enum class FrameState : uint8_t {
    kOk,       // intact, streamable
    kCorrupt,  // known-size hole: checksum failed but the size is trusted
    kGap,      // record-time drop marker: events never reached the disk
    kCrash,    // fatal-signal crash marker: zero logical bytes, trace ends
  };

  struct FrameIndex {
    uint64_t logical_begin;  // first logical byte in this frame
    uint64_t raw_size;       // decompressed size (hole size for kCorrupt/kGap)
    uint64_t file_offset;    // where the frame starts in the file
    uint64_t file_size;      // encoded frame size
    uint8_t payload_format;  // event encoding (kTraceFormatV*)
    FrameState state;
  };

  LogReader() = default;

  std::string path_;
  std::vector<FrameIndex> frames_;
  uint64_t total_logical_ = 0;
  SalvagePolicy policy_;
  SalvageStats stats_;
};

}  // namespace sword::trace
