// Streaming log-file reader (paper SIII-B).
//
// Log files can be far larger than memory; the analyzer therefore never loads
// one wholesale. On open, the reader scans only the frame HEADERS to build an
// index mapping logical (decompressed) offsets to file offsets. Reading an
// interval's byte range then decompresses just the overlapping frames, one at
// a time, invoking the visitor per event - the paper's "streaming algorithm
// that reads access information from log files in small chunks".
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "trace/event.h"

namespace sword::trace {

/// Single-frame decompression cache. A frame typically holds MANY barrier
/// intervals (128K events per 2 MB frame vs a few hundred events per
/// interval in region-heavy programs like LULESH); without a cache every
/// interval read would decompress its whole frame again. One cache per
/// analyzer thread keeps reads lock-free. Memory: one decompressed frame.
struct FrameCache {
  const void* reader = nullptr;     // identity of the owning LogReader
  uint64_t logical_begin = ~0ull;   // frame key
  Bytes data;

  uint64_t hits = 0;
  uint64_t misses = 0;
};

class LogReader {
 public:
  /// Scans frame headers and builds the offset index. Fails on corrupt or
  /// truncated files.
  static Result<LogReader> Open(const std::string& path);

  /// Decompresses the frames covering logical range [begin, begin+size) and
  /// calls `fn` for each event in it, in order. At most one decompressed
  /// frame is held in memory at a time. With `cache`, a frame already
  /// decompressed by the previous call (through the same cache) is reused.
  Status StreamRange(uint64_t begin, uint64_t size,
                     const std::function<void(const RawEvent&)>& fn,
                     FrameCache* cache = nullptr) const;

  /// Convenience: materializes a range (tests, small intervals).
  Status ReadRange(uint64_t begin, uint64_t size, std::vector<RawEvent>* out) const;

  uint64_t total_logical_bytes() const { return total_logical_; }
  size_t frame_count() const { return frames_.size(); }

 private:
  struct FrameIndex {
    uint64_t logical_begin;  // first logical byte in this frame
    uint64_t raw_size;       // decompressed size
    uint64_t file_offset;    // where the frame starts in the file
    uint64_t file_size;      // encoded frame size
  };

  LogReader() = default;

  std::string path_;
  std::vector<FrameIndex> frames_;
  uint64_t total_logical_ = 0;
};

}  // namespace sword::trace
