// Streaming log-file reader (paper SIII-B).
//
// Log files can be far larger than memory; the analyzer therefore never loads
// one wholesale. On open, the reader scans only the frame HEADERS to build an
// index mapping logical (decompressed) offsets to file offsets. Reading an
// interval's byte range then decompresses just the overlapping frames, one at
// a time, invoking the visitor per event - the paper's "streaming algorithm
// that reads access information from log files in small chunks".
//
// Frames self-tag their payload format (the frame magic, see
// compress/frame.h): v1 frames hold fixed 16-byte events and can be sliced
// at any event boundary; v2 frames hold delta-coded variable-length events
// whose decoder state starts fresh at the frame boundary, so a mid-frame
// range is served by decoding from the frame start and discarding the
// prefix. One file may mix formats; the reader dispatches per frame.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <vector>

#include "common/function_ref.h"
#include "common/status.h"
#include "trace/event.h"

namespace sword::trace {

/// Bounded LRU cache of decompressed frames. A frame typically holds MANY
/// barrier intervals (128K events per 2 MB frame vs a few hundred events per
/// interval in region-heavy programs like LULESH); without a cache every
/// interval read would decompress its whole frame again. The byte cap keeps
/// a long analysis from retaining every frame it ever touched - the cache
/// holds a few frames, not the trace. One cache per analyzer thread keeps
/// reads lock-free; entries are keyed by (reader identity, frame offset) so
/// one cache may serve several threads' logs.
class FrameCache {
 public:
  /// Default cap: a handful of 2 MB frames.
  static constexpr size_t kDefaultMaxBytes = 8 * 1024 * 1024;

  explicit FrameCache(size_t max_bytes = kDefaultMaxBytes) : max_bytes_(max_bytes) {}

  /// Returns the cached decompressed frame, bumping it to most-recent, or
  /// null. Counts a hit on success (the caller counts the miss via Insert).
  const Bytes* Lookup(const void* reader, uint64_t logical_begin);

  /// Inserts a decompressed frame (evicting least-recently-used entries past
  /// the byte cap; the newest entry always stays) and returns a pointer to
  /// the cached copy, valid until the next Lookup/Insert.
  const Bytes* Insert(const void* reader, uint64_t logical_begin, Bytes data);

  size_t entry_count() const { return entries_.size(); }
  size_t byte_size() const { return bytes_; }
  size_t max_bytes() const { return max_bytes_; }

  uint64_t hits = 0;
  uint64_t misses = 0;

 private:
  struct Entry {
    const void* reader;
    uint64_t logical_begin;
    Bytes data;
  };

  size_t max_bytes_;
  size_t bytes_ = 0;
  std::list<Entry> entries_;  // front = most recently used
};

class LogReader {
 public:
  /// Scans frame headers and builds the offset index. Fails on corrupt or
  /// truncated files.
  static Result<LogReader> Open(const std::string& path);

  /// Decompresses the frames covering logical range [begin, begin+size) and
  /// calls `fn` for each event in it, in order. At most one decompressed
  /// frame is held in memory at a time. With `cache`, frames decompressed by
  /// previous calls (through the same cache) are reused.
  Status StreamRange(uint64_t begin, uint64_t size,
                     FunctionRef<void(const RawEvent&)> fn,
                     FrameCache* cache = nullptr) const;

  /// Convenience: materializes a range (tests, small intervals).
  Status ReadRange(uint64_t begin, uint64_t size, std::vector<RawEvent>* out) const;

  uint64_t total_logical_bytes() const { return total_logical_; }
  size_t frame_count() const { return frames_.size(); }

 private:
  struct FrameIndex {
    uint64_t logical_begin;  // first logical byte in this frame
    uint64_t raw_size;       // decompressed size
    uint64_t file_offset;    // where the frame starts in the file
    uint64_t file_size;      // encoded frame size
    uint8_t payload_format;  // event encoding (kTraceFormatV*)
  };

  LogReader() = default;

  std::string path_;
  std::vector<FrameIndex> frames_;
  uint64_t total_logical_ = 0;
};

}  // namespace sword::trace
