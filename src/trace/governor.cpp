#include "trace/governor.h"

#include "common/log.h"

namespace sword::trace {

const char* DegradationLevelName(uint8_t level) {
  switch (static_cast<DegradationLevel>(level)) {
    case DegradationLevel::kFull: return "full";
    case DegradationLevel::kAggressive: return "aggressive";
    case DegradationLevel::kSampling: return "sampling";
    case DegradationLevel::kSummary: return "summary";
  }
  return "unknown";
}

DegradationGovernor::DegradationGovernor(const GovernorConfig& config)
    : config_(config) {}

void DegradationGovernor::TransitionLocked(uint8_t new_level, uint8_t reason) {
  seq_++;
  transitions_.push_back(
      DegradationTransition{new_level, reason, /*interval=*/evals_.load(std::memory_order_relaxed)});
  packed_.store((seq_ << 16) | (static_cast<uint64_t>(reason) << 8) | new_level,
                std::memory_order_release);
  SWORD_WARN() << "degradation governor -> level " << int(new_level) << " ("
               << DegradationLevelName(new_level) << "), reason 0x" << std::hex
               << int(reason) << std::dec;
}

void DegradationGovernor::Evaluate() {
  if (!config_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  evals_.fetch_add(1, std::memory_order_relaxed);

  const uint64_t pool = pool_exhausted_.load(std::memory_order_relaxed);
  const uint64_t credit = credit_stalls_.load(std::memory_order_relaxed);
  const uint64_t watchdog = watchdog_drops_.load(std::memory_order_relaxed);
  const uint64_t blocked = blocked_nanos_.load(std::memory_order_relaxed);
  const uint64_t ap_nanos = append_nanos_.load(std::memory_order_relaxed);
  const uint64_t ap_count = append_count_.load(std::memory_order_relaxed);

  // Fold the append-latency EWMA from this eval's batch of appends.
  if (ap_count > seen_append_count_) {
    const uint64_t batch_mean =
        (ap_nanos - seen_append_nanos_) / (ap_count - seen_append_count_);
    latency_ewma_ = latency_ewma_ - latency_ewma_ / 4 + batch_mean / 4;
  }

  uint8_t reason = 0;
  if (blocked - seen_blocked_ >= config_.blocked_nanos_step) {
    reason |= kGovernorReasonBlocked;
  }
  if (credit - seen_credit_ >= config_.credit_stalls_step) {
    reason |= kGovernorReasonCredit;
  }
  if (pool > seen_pool_) reason |= kGovernorReasonPool;
  if (watchdog > seen_watchdog_) reason |= kGovernorReasonWatchdog;
  if (latency_ewma_ >= config_.io_latency_step_nanos) {
    reason |= kGovernorReasonIoLatency;
  }

  seen_pool_ = pool;
  seen_credit_ = credit;
  seen_watchdog_ = watchdog;
  seen_blocked_ = blocked;
  seen_append_nanos_ = ap_nanos;
  seen_append_count_ = ap_count;

  const uint8_t level = static_cast<uint8_t>(packed_.load(std::memory_order_relaxed));
  if (reason != 0) {
    calm_streak_ = 0;
    if (level + 1 < kDegradationLevels) TransitionLocked(level + 1, reason);
    return;
  }
  if (level == 0) return;
  // Calm. Step back up one level only after a full quiet streak, and reset
  // the streak on the way so each recovery step needs its own quiet period.
  if (++calm_streak_ >= config_.calm_evals_to_recover) {
    calm_streak_ = 0;
    TransitionLocked(level - 1, kGovernorReasonRecovered);
  }
}

std::vector<DegradationTransition> DegradationGovernor::Transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transitions_;
}

}  // namespace sword::trace
