#include "trace/event.h"

namespace sword::trace {

void EncodeEvent(const RawEvent& e, ByteWriter& w) {
  w.PutU8(static_cast<uint8_t>(e.kind));
  w.PutU8(e.flags);
  w.PutU8(e.size);
  w.PutU8(0);  // reserved
  w.PutU32(e.pc);
  w.PutU64(e.addr);
}

Status DecodeEvent(ByteReader& r, RawEvent* out) {
  uint8_t kind, flags, size, pad;
  SWORD_RETURN_IF_ERROR(r.GetU8(&kind));
  SWORD_RETURN_IF_ERROR(r.GetU8(&flags));
  SWORD_RETURN_IF_ERROR(r.GetU8(&size));
  SWORD_RETURN_IF_ERROR(r.GetU8(&pad));
  SWORD_RETURN_IF_ERROR(r.GetU32(&out->pc));
  SWORD_RETURN_IF_ERROR(r.GetU64(&out->addr));
  if (kind > static_cast<uint8_t>(EventKind::kMutexRelease)) {
    return Status::Corrupt("unknown event kind");
  }
  out->kind = static_cast<EventKind>(kind);
  out->flags = flags;
  out->size = size;
  return Status::Ok();
}

}  // namespace sword::trace
