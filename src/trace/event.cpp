#include "trace/event.h"

namespace sword::trace {

void EncodeEvent(const RawEvent& e, ByteWriter& w) {
  w.PutU8(static_cast<uint8_t>(e.kind));
  w.PutU8(e.flags);
  w.PutU8(e.size);
  w.PutU8(0);  // reserved
  w.PutU32(e.pc);
  w.PutU64(e.addr);
}

Status DecodeEvent(ByteReader& r, RawEvent* out) {
  uint8_t kind, flags, size, pad;
  SWORD_RETURN_IF_ERROR(r.GetU8(&kind));
  SWORD_RETURN_IF_ERROR(r.GetU8(&flags));
  SWORD_RETURN_IF_ERROR(r.GetU8(&size));
  SWORD_RETURN_IF_ERROR(r.GetU8(&pad));
  SWORD_RETURN_IF_ERROR(r.GetU32(&out->pc));
  SWORD_RETURN_IF_ERROR(r.GetU64(&out->addr));
  if (kind > static_cast<uint8_t>(EventKind::kMutexRelease)) {
    return Status::Corrupt("unknown event kind");
  }
  out->kind = static_cast<EventKind>(kind);
  out->flags = flags;
  out->size = size;
  out->stride = 0;
  out->count = 1;
  return Status::Ok();
}

// v2/v3 tag byte layout:
//   bits 0-1  kind (0 access, 1 acquire, 2 release; 3 reserved in v2,
//             kAccessRun in v3)
// for kAccess (and v3 kAccessRun, which shares the access layout):
//   bit 2     write flag   (somp::kAccessWrite)
//   bit 3     atomic flag  (somp::kAccessAtomic)
//   bits 4-7  size code: 1..8 -> size = 1 << (code-1); 0 -> explicit varint
//             size follows; 15 -> "extended": a full flags byte then a
//             varint size follow (future-proofing for flags beyond the two
//             bits above); 9..14 reserved (rejected)
// for kMutex*: bits 2-7 must be zero.
//
// Then, for kAccess: varint pc, zigzag-varint (addr - prev_access_addr).
// For kAccessRun (v3): varint pc, zigzag-varint (base - prev_access_addr),
// varint stride, varint count; prev advances to the LAST element's address.
// For kMutex*: varint mutex id (absolute - lock ids are small and unordered,
// deltas would not help).
namespace {

constexpr uint8_t kInlineFlagsMask = 0x03;  // write | atomic
constexpr uint8_t kSizeCodeExplicit = 0;
constexpr uint8_t kSizeCodeExtended = 15;

/// Size code for power-of-two sizes 1..128, else kSizeCodeExplicit.
uint8_t SizeCode(uint8_t size) {
  if (size == 0 || (size & (size - 1)) != 0) return kSizeCodeExplicit;
  uint8_t code = 1;
  while ((uint8_t)(1u << (code - 1)) != size) code++;
  return code;  // 1..8
}

/// Emits the tag byte plus the optional extended-flags / explicit-size
/// prefix shared by kAccess and kAccessRun.
void EncodeAccessTag(const RawEvent& e, ByteWriter& w) {
  const bool extended = (e.flags & ~kInlineFlagsMask) != 0;
  const uint8_t code = extended ? kSizeCodeExtended : SizeCode(e.size);
  uint8_t tag = static_cast<uint8_t>(e.kind);
  tag |= static_cast<uint8_t>((e.flags & kInlineFlagsMask) << 2);
  tag |= static_cast<uint8_t>(code << 4);
  w.PutU8(tag);
  if (extended) {
    w.PutU8(e.flags);
    w.PutVarU64(e.size);
  } else if (code == kSizeCodeExplicit) {
    w.PutVarU64(e.size);
  }
}

/// Decodes the flags/size/pc/addr-delta payload shared by kAccess and
/// kAccessRun, given the already-consumed tag byte.
Status DecodeAccessPayload(uint8_t tag, ByteReader& r, RawEvent* out,
                           int64_t* delta) {
  const uint8_t code = tag >> 4;
  uint64_t size = 0;
  uint8_t flags = (tag >> 2) & kInlineFlagsMask;
  if (code == kSizeCodeExtended) {
    SWORD_RETURN_IF_ERROR(r.GetU8(&flags));
    SWORD_RETURN_IF_ERROR(r.GetVarU64(&size));
  } else if (code == kSizeCodeExplicit) {
    SWORD_RETURN_IF_ERROR(r.GetVarU64(&size));
  } else if (code <= 8) {
    size = 1ull << (code - 1);
  } else {
    return Status::Corrupt("reserved event size code");
  }
  if (size > 0xff) return Status::Corrupt("event size out of range");

  uint64_t pc;
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&pc));
  if (pc > 0xffffffffull) return Status::Corrupt("event pc out of range");
  SWORD_RETURN_IF_ERROR(r.GetVarI64(delta));

  out->flags = flags;
  out->size = static_cast<uint8_t>(size);
  out->pc = static_cast<uint32_t>(pc);
  return Status::Ok();
}

Status DecodeMutexPayload(uint8_t tag, ByteReader& r, RawEvent* out) {
  if ((tag & ~0x03u) != 0) return Status::Corrupt("nonzero mutex tag bits");
  uint64_t id;
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&id));
  out->flags = 0;
  out->size = 0;
  out->pc = 0;
  out->addr = id;
  return Status::Ok();
}

}  // namespace

void EncodeEventV2(const RawEvent& e, EventCodecState& state, ByteWriter& w) {
  if (e.kind != EventKind::kAccess) {
    w.PutU8(static_cast<uint8_t>(e.kind));
    w.PutVarU64(e.addr);
    return;
  }
  EncodeAccessTag(e, w);
  w.PutVarU64(e.pc);
  w.PutVarI64(static_cast<int64_t>(e.addr - state.prev_addr));
  state.prev_addr = e.addr;
}

Status DecodeEventV2(ByteReader& r, EventCodecState& state, RawEvent* out) {
  uint8_t tag;
  SWORD_RETURN_IF_ERROR(r.GetU8(&tag));
  const uint8_t kind = tag & 0x03;
  if (kind > static_cast<uint8_t>(EventKind::kMutexRelease)) {
    return Status::Corrupt("unknown event kind");
  }
  out->kind = static_cast<EventKind>(kind);
  out->stride = 0;
  out->count = 1;

  if (out->kind != EventKind::kAccess) return DecodeMutexPayload(tag, r, out);

  int64_t delta;
  SWORD_RETURN_IF_ERROR(DecodeAccessPayload(tag, r, out, &delta));
  out->addr = state.prev_addr + static_cast<uint64_t>(delta);
  state.prev_addr = out->addr;
  return Status::Ok();
}

void EncodeEventV3(const RawEvent& e, EventCodecState& state, ByteWriter& w) {
  if (e.kind != EventKind::kAccessRun) {
    EncodeEventV2(e, state, w);
    return;
  }
  EncodeAccessTag(e, w);
  w.PutVarU64(e.pc);
  w.PutVarI64(static_cast<int64_t>(e.addr - state.prev_addr));
  w.PutVarU64(e.stride);
  w.PutVarU64(e.count);
  state.prev_addr = e.addr + (e.count - 1) * e.stride;
}

Status DecodeEventV3(ByteReader& r, EventCodecState& state, RawEvent* out) {
  uint8_t tag;
  SWORD_RETURN_IF_ERROR(r.GetU8(&tag));
  const uint8_t kind = tag & 0x03;
  out->kind = static_cast<EventKind>(kind);
  out->stride = 0;
  out->count = 1;

  if (out->kind == EventKind::kMutexAcquire ||
      out->kind == EventKind::kMutexRelease) {
    return DecodeMutexPayload(tag, r, out);
  }

  int64_t delta;
  SWORD_RETURN_IF_ERROR(DecodeAccessPayload(tag, r, out, &delta));
  out->addr = state.prev_addr + static_cast<uint64_t>(delta);

  if (out->kind == EventKind::kAccessRun) {
    SWORD_RETURN_IF_ERROR(r.GetVarU64(&out->stride));
    SWORD_RETURN_IF_ERROR(r.GetVarU64(&out->count));
    if (out->count < 2) return Status::Corrupt("run count below 2");
    if (out->stride == 0) return Status::Corrupt("run stride zero");
    if (out->stride > (UINT64_MAX - out->addr) / (out->count - 1)) {
      return Status::Corrupt("run extent overflows address space");
    }
    state.prev_addr = out->addr + (out->count - 1) * out->stride;
  } else {
    state.prev_addr = out->addr;
  }
  return Status::Ok();
}

}  // namespace sword::trace
