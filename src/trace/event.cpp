#include "trace/event.h"

namespace sword::trace {

void EncodeEvent(const RawEvent& e, ByteWriter& w) {
  w.PutU8(static_cast<uint8_t>(e.kind));
  w.PutU8(e.flags);
  w.PutU8(e.size);
  w.PutU8(0);  // reserved
  w.PutU32(e.pc);
  w.PutU64(e.addr);
}

Status DecodeEvent(ByteReader& r, RawEvent* out) {
  uint8_t kind, flags, size, pad;
  SWORD_RETURN_IF_ERROR(r.GetU8(&kind));
  SWORD_RETURN_IF_ERROR(r.GetU8(&flags));
  SWORD_RETURN_IF_ERROR(r.GetU8(&size));
  SWORD_RETURN_IF_ERROR(r.GetU8(&pad));
  SWORD_RETURN_IF_ERROR(r.GetU32(&out->pc));
  SWORD_RETURN_IF_ERROR(r.GetU64(&out->addr));
  if (kind > static_cast<uint8_t>(EventKind::kMutexRelease)) {
    return Status::Corrupt("unknown event kind");
  }
  out->kind = static_cast<EventKind>(kind);
  out->flags = flags;
  out->size = size;
  return Status::Ok();
}

// v2 tag byte layout:
//   bits 0-1  kind (0 access, 1 acquire, 2 release; 3 reserved)
// for kAccess:
//   bit 2     write flag   (somp::kAccessWrite)
//   bit 3     atomic flag  (somp::kAccessAtomic)
//   bits 4-7  size code: 1..8 -> size = 1 << (code-1); 0 -> explicit varint
//             size follows; 15 -> "extended": a full flags byte then a
//             varint size follow (future-proofing for flags beyond the two
//             bits above); 9..14 reserved (rejected)
// for kMutex*: bits 2-7 must be zero.
//
// Then, for kAccess: varint pc, zigzag-varint (addr - prev_access_addr).
// For kMutex*: varint mutex id (absolute - lock ids are small and unordered,
// deltas would not help).
namespace {

constexpr uint8_t kInlineFlagsMask = 0x03;  // write | atomic
constexpr uint8_t kSizeCodeExplicit = 0;
constexpr uint8_t kSizeCodeExtended = 15;

/// Size code for power-of-two sizes 1..128, else kSizeCodeExplicit.
uint8_t SizeCode(uint8_t size) {
  if (size == 0 || (size & (size - 1)) != 0) return kSizeCodeExplicit;
  uint8_t code = 1;
  while ((uint8_t)(1u << (code - 1)) != size) code++;
  return code;  // 1..8
}

}  // namespace

void EncodeEventV2(const RawEvent& e, EventCodecState& state, ByteWriter& w) {
  const uint8_t kind = static_cast<uint8_t>(e.kind);
  if (e.kind != EventKind::kAccess) {
    w.PutU8(kind);
    w.PutVarU64(e.addr);
    return;
  }
  const bool extended = (e.flags & ~kInlineFlagsMask) != 0;
  const uint8_t code = extended ? kSizeCodeExtended : SizeCode(e.size);
  uint8_t tag = kind;
  tag |= static_cast<uint8_t>((e.flags & kInlineFlagsMask) << 2);
  tag |= static_cast<uint8_t>(code << 4);
  w.PutU8(tag);
  if (extended) {
    w.PutU8(e.flags);
    w.PutVarU64(e.size);
  } else if (code == kSizeCodeExplicit) {
    w.PutVarU64(e.size);
  }
  w.PutVarU64(e.pc);
  w.PutVarI64(static_cast<int64_t>(e.addr - state.prev_addr));
  state.prev_addr = e.addr;
}

Status DecodeEventV2(ByteReader& r, EventCodecState& state, RawEvent* out) {
  uint8_t tag;
  SWORD_RETURN_IF_ERROR(r.GetU8(&tag));
  const uint8_t kind = tag & 0x03;
  if (kind > static_cast<uint8_t>(EventKind::kMutexRelease)) {
    return Status::Corrupt("unknown event kind");
  }
  out->kind = static_cast<EventKind>(kind);

  if (out->kind != EventKind::kAccess) {
    if ((tag & ~0x03u) != 0) return Status::Corrupt("nonzero mutex tag bits");
    uint64_t id;
    SWORD_RETURN_IF_ERROR(r.GetVarU64(&id));
    out->flags = 0;
    out->size = 0;
    out->pc = 0;
    out->addr = id;
    return Status::Ok();
  }

  const uint8_t code = tag >> 4;
  uint64_t size = 0;
  uint8_t flags = (tag >> 2) & kInlineFlagsMask;
  if (code == kSizeCodeExtended) {
    SWORD_RETURN_IF_ERROR(r.GetU8(&flags));
    SWORD_RETURN_IF_ERROR(r.GetVarU64(&size));
  } else if (code == kSizeCodeExplicit) {
    SWORD_RETURN_IF_ERROR(r.GetVarU64(&size));
  } else if (code <= 8) {
    size = 1ull << (code - 1);
  } else {
    return Status::Corrupt("reserved event size code");
  }
  if (size > 0xff) return Status::Corrupt("event size out of range");

  uint64_t pc;
  int64_t delta;
  SWORD_RETURN_IF_ERROR(r.GetVarU64(&pc));
  if (pc > 0xffffffffull) return Status::Corrupt("event pc out of range");
  SWORD_RETURN_IF_ERROR(r.GetVarI64(&delta));

  out->flags = flags;
  out->size = static_cast<uint8_t>(size);
  out->pc = static_cast<uint32_t>(pc);
  out->addr = state.prev_addr + static_cast<uint64_t>(delta);
  state.prev_addr = out->addr;
  return Status::Ok();
}

}  // namespace sword::trace
