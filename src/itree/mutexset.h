// Interned sets of held mutexes.
//
// Every summarized access node carries the set of locks (critical sections,
// runtime locks) the thread held when performing the access; two conflicting
// accesses only race if their mutex sets are disjoint. Threads hold few locks
// and the same sets recur millions of times, so sets are deduplicated into a
// table and referenced by a 32-bit id. Intersection tests are answered from
// the sorted representations and memoized.
#pragma once

#include <cstdint>
#include <cstddef>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

namespace sword::itree {

using MutexId = uint32_t;
using MutexSetId = uint32_t;

/// Id of the empty set; always valid on any table.
constexpr MutexSetId kEmptyMutexSet = 0;

/// Thread-safe: the offline analyzer interns from one builder thread per
/// trace and queries intersections from many checker threads.
class MutexSetTable {
 public:
  MutexSetTable();

  /// Interns the set; `mutexes` need not be sorted or unique.
  MutexSetId Intern(std::vector<MutexId> mutexes);

  /// Interns (set(id) + mutex).
  MutexSetId WithMutex(MutexSetId id, MutexId mutex);

  /// Interns (set(id) - mutex).
  MutexSetId WithoutMutex(MutexSetId id, MutexId mutex);

  /// Returns a copy (the backing storage may move under concurrent Intern).
  std::vector<MutexId> Get(MutexSetId id) const;

  /// True iff the two sets share at least one mutex.
  bool Intersects(MutexSetId a, MutexSetId b) const;

  size_t size() const;

 private:
  mutable std::shared_mutex mutex_;
  std::vector<std::vector<MutexId>> sets_;           // id -> sorted unique set
  std::map<std::vector<MutexId>, MutexSetId> index_; // sorted set -> id
  mutable std::mutex cache_mutex_;
  mutable std::unordered_map<uint64_t, bool> intersect_cache_;
};

}  // namespace sword::itree
