#include "itree/frozen_set.h"

#include <algorithm>

namespace sword::itree {

FrozenIntervalSet::FrozenIntervalSet(const IntervalTree& tree) {
  const size_t n = tree.NodeCount();
  lo_.reserve(n);
  hi_.reserve(n);
  nodes_.reserve(n);
  // ForEach is the tree's in-order walk: ascending lo, insertion-stable on
  // ties. The columns come out sorted for free - no sort pass needed.
  tree.ForEach([this](const AccessNode& node) {
    lo_.push_back(node.interval.lo());
    hi_.push_back(node.interval.hi());
    nodes_.push_back(node);
  });
  max_hi_.resize(nodes_.size());
  if (!nodes_.empty()) BuildMaxHi(0, nodes_.size());
}

FrozenIntervalSet FrozenIntervalSet::FromSorted(std::vector<AccessNode> sorted) {
  FrozenIntervalSet set;
  const size_t n = sorted.size();
  set.lo_.reserve(n);
  set.hi_.reserve(n);
  set.nodes_.reserve(n);
  for (const AccessNode& node : sorted) {
    set.lo_.push_back(node.interval.lo());
    set.hi_.push_back(node.interval.hi());
    set.nodes_.push_back(node);
  }
  set.max_hi_.resize(n);
  if (n > 0) set.BuildMaxHi(0, n);
  return set;
}

uint64_t FrozenIntervalSet::BuildMaxHi(size_t l, size_t r) {
  if (l >= r) return 0;
  const size_t mid = l + (r - l) / 2;
  uint64_t m = hi_[mid];
  if (l < mid) m = std::max(m, BuildMaxHi(l, mid));
  if (mid + 1 < r) m = std::max(m, BuildMaxHi(mid + 1, r));
  max_hi_[mid] = m;
  return m;
}

bool FrozenIntervalSet::QueryRange(uint64_t query_lo, uint64_t query_hi,
                                   FunctionRef<bool(uint32_t)> fn) const {
  if (nodes_.empty()) return true;
  return QueryRecurse(0, nodes_.size(), query_lo, query_hi, fn);
}

bool FrozenIntervalSet::QueryRecurse(size_t l, size_t r, uint64_t query_lo,
                                     uint64_t query_hi,
                                     FunctionRef<bool(uint32_t)>& fn) const {
  if (l >= r) return true;
  const size_t mid = l + (r - l) / 2;
  // Same pruning rule as the pointer tree: if nothing in this subtree ends
  // at or after query_lo, no interval here can touch the query.
  if (max_hi_[mid] < query_lo) return true;
  if (!QueryRecurse(l, mid, query_lo, query_hi, fn)) return false;
  if (lo_[mid] <= query_hi) {
    if (hi_[mid] >= query_lo) {
      if (!fn(static_cast<uint32_t>(mid))) return false;
    }
    return QueryRecurse(mid + 1, r, query_lo, query_hi, fn);
  }
  // mid starts past the query; everything to its right starts even later.
  return true;
}

uint64_t FrozenIntervalSet::MemoryBytes() const {
  return static_cast<uint64_t>(lo_.capacity() * sizeof(uint64_t) +
                               hi_.capacity() * sizeof(uint64_t) +
                               max_hi_.capacity() * sizeof(uint64_t) +
                               nodes_.capacity() * sizeof(AccessNode));
}

bool SweepMatchingPairs(const FrozenIntervalSet& a, const FrozenIntervalSet& b,
                        FunctionRef<bool(uint32_t, uint32_t)> fn) {
  const size_t na = a.size();
  const size_t nb = b.size();
  size_t i = 0;
  size_t j = 0;
  // Indices whose interval started already and may still touch a later start
  // on the other side. Entries are expired lazily (hi < current start) the
  // next time the list is scanned; each entry is appended once and removed
  // once, and every scan of a surviving entry emits a pair, so the whole
  // sweep is O(na + nb + matches).
  std::vector<uint32_t> active_a;
  std::vector<uint32_t> active_b;
  while (i < na || j < nb) {
    if (i >= na && active_a.empty()) break;  // nothing left for b to match
    if (j >= nb && active_b.empty()) break;  // nothing left for a to match
    // Tie-break lo(a) == lo(b) toward a: b's turn then finds a in its active
    // list (hi >= lo always), so the pair is still emitted exactly once.
    if (j >= nb || (i < na && a.lo(i) <= b.lo(j))) {
      const uint64_t start = a.lo(i);
      size_t keep = 0;
      for (const uint32_t bi : active_b) {
        if (b.hi(bi) < start) continue;  // expired: can never match again
        active_b[keep++] = bi;
        if (!fn(static_cast<uint32_t>(i), bi)) return false;
      }
      active_b.resize(keep);
      active_a.push_back(static_cast<uint32_t>(i));
      ++i;
    } else {
      const uint64_t start = b.lo(j);
      size_t keep = 0;
      for (const uint32_t ai : active_a) {
        if (a.hi(ai) < start) continue;
        active_a[keep++] = ai;
        if (!fn(ai, static_cast<uint32_t>(j))) return false;
      }
      active_a.resize(keep);
      active_b.push_back(static_cast<uint32_t>(j));
      ++j;
    }
  }
  return true;
}

}  // namespace sword::itree
