#include "itree/streaming_builder.h"

#include <algorithm>

namespace sword::itree {

namespace {

/// Erases map[key] only when it currently maps to `id` (the summarization
/// indexes use best-effort emplace, so a slot may belong to another node).
/// Mirrors interval_tree.cpp's helper - the two builders must keep their
/// index discipline identical.
template <typename Map, typename Key>
void EraseIfMapsTo(Map& map, const Key& key, uint32_t id) {
  auto it = map.find(key);
  if (it != map.end() && it->second == id) map.erase(it);
}

}  // namespace

// The branch structure below is IntervalTree::AddAccess verbatim, minus the
// tree maintenance: an extension never changes a node's first byte, so the
// sorted-order bookkeeping only happens in NewNode. Any change here must be
// mirrored there (and vice versa); the equivalence property tests fail loudly
// on divergence.
uint32_t StreamingSetBuilder::AddAccess(uint64_t addr, const AccessKey& key) {
  total_accesses_++;

  // 1. Repeated access to a run's most recent address: fold without growing.
  if (auto dup = last_addr_.find(ContKey{addr, key}); dup != last_addr_.end()) {
    nodes_[dup->second].hits++;
    return dup->second;
  }

  // 2. Continuation of an established run: addr is exactly the next element.
  if (auto it = continuations_.find(ContKey{addr, key}); it != continuations_.end()) {
    const uint32_t id = it->second;
    AccessNode& n = nodes_[id];
    auto& iv = n.interval;
    EraseIfMapsTo(last_addr_, ContKey{iv.base + iv.stride * (iv.count - 1), key}, id);
    if (iv.count == 1) {
      // This continuation was registered at base+size (unit element walk).
      iv.stride = addr - iv.base;
      iv.count = 2;
      open_single_.erase(key);
    } else {
      iv.count++;
    }
    n.hits++;
    continuations_.erase(it);
    continuations_.emplace(ContKey{iv.base + iv.stride * iv.count, key}, id);
    last_addr_.emplace(ContKey{addr, key}, id);
    return id;
  }

  // 3. Second element of an arbitrary-stride ascending walk: the most recent
  // single-access node with this key adopts stride = addr - base.
  if (auto os = open_single_.find(key); os != open_single_.end()) {
    const uint32_t id = os->second;
    AccessNode& n = nodes_[id];
    auto& iv = n.interval;
    if (addr > iv.base) {
      EraseIfMapsTo(continuations_, ContKey{iv.base + key.size, key}, id);
      EraseIfMapsTo(last_addr_, ContKey{iv.base, key}, id);
      iv.stride = addr - iv.base;
      iv.count = 2;
      n.hits++;
      open_single_.erase(os);
      continuations_.emplace(ContKey{iv.base + iv.stride * 2, key}, id);
      last_addr_.emplace(ContKey{addr, key}, id);
      return id;
    }
    // Descending access: leave the old node single and start a new one.
    open_single_.erase(os);
  }

  // 4. Fresh node.
  const uint32_t id = NewNode(ilp::StridedInterval{addr, 0, 1, key.size}, key);
  nodes_[id].hits = 1;
  continuations_.emplace(ContKey{addr + key.size, key}, id);
  last_addr_.emplace(ContKey{addr, key}, id);
  open_single_[key] = id;
  return id;
}

// IntervalTree::AddRun verbatim, dispatching to this builder's AddAccess.
uint32_t StreamingSetBuilder::AddRun(uint64_t base, uint64_t stride,
                                     uint64_t count, const AccessKey& key) {
  // Degenerate shapes are defined by the element loop.
  if (count == 0) return kNil;
  if (stride == 0) {
    uint32_t id = kNil;
    for (uint64_t i = 0; i < count; i++) id = AddAccess(base, key);
    return id;
  }
  uint32_t id = AddAccess(base, key);
  if (count == 1) return id;
  const uint32_t first = id;
  id = AddAccess(base + stride, key);
  if (count == 2) return id;

  // Bulk fast path: the first two elements merged into one fresh-looking run
  // node and no other node shares the key, so every remaining element would
  // take the continuation branch on this exact node. Apply the loop's net
  // effect in O(1).
  const auto& iv = nodes_[id].interval;
  const auto kn = key_nodes_.find(key);
  if (id == first && iv.base == base && iv.stride == stride && iv.count == 2 &&
      kn != key_nodes_.end() && kn->second == 1) {
    const uint64_t extra = count - 2;
    EraseIfMapsTo(continuations_, ContKey{base + 2 * stride, key}, id);
    EraseIfMapsTo(last_addr_, ContKey{base + stride, key}, id);
    AccessNode& run = nodes_[id];
    run.interval.count = count;
    run.hits += extra;
    total_accesses_ += extra;
    continuations_.emplace(ContKey{base + stride * count, key}, id);
    last_addr_.emplace(ContKey{base + stride * (count - 1), key}, id);
    return id;
  }

  // Aliasing with pre-existing same-key state: replay element by element.
  for (uint64_t i = 2; i < count; i++) id = AddAccess(base + i * stride, key);
  return id;
}

uint32_t StreamingSetBuilder::NewNode(const ilp::StridedInterval& interval,
                                      const AccessKey& key) {
  const uint32_t id = static_cast<uint32_t>(nodes_.size());
  AccessNode node;
  node.interval = interval;
  node.key = key;
  nodes_.push_back(node);
  key_nodes_[key]++;
  // Sorted-append or spill. A node's first byte is immutable, so comparing
  // against the LAST in-order node is enough: program-order address walks
  // keep extending the main sequence; only genuine back-jumps spill.
  if (order_.empty() ||
      interval.lo() >= nodes_[order_.back()].interval.lo()) {
    order_.push_back(id);
  } else {
    spill_.push_back(id);
  }
  return id;
}

uint64_t StreamingSetBuilder::MemoryBytes() const {
  return nodes_.capacity() * sizeof(AccessNode) +
         (order_.capacity() + spill_.capacity()) * sizeof(uint32_t) +
         continuations_.size() * (sizeof(ContKey) + sizeof(uint32_t) + 16);
}

FrozenIntervalSet StreamingSetBuilder::Freeze() const {
  // Sort the spill by (first byte, creation id) and merge with the main
  // sequence, which is already sorted by that pair (first bytes are
  // non-decreasing by construction, ids by append order). The merged order
  // equals the RB-tree's in-order walk: the tree keys on first byte, breaks
  // ties to the right (= creation order), and first bytes never change.
  std::vector<uint32_t> sorted_spill = spill_;
  auto less = [this](uint32_t a, uint32_t b) {
    const uint64_t la = nodes_[a].interval.lo();
    const uint64_t lb = nodes_[b].interval.lo();
    return la != lb ? la < lb : a < b;
  };
  std::sort(sorted_spill.begin(), sorted_spill.end(), less);

  std::vector<AccessNode> merged;
  merged.reserve(nodes_.size());
  size_t i = 0;
  size_t j = 0;
  while (i < order_.size() && j < sorted_spill.size()) {
    merged.push_back(less(order_[i], sorted_spill[j]) ? nodes_[order_[i++]]
                                                      : nodes_[sorted_spill[j++]]);
  }
  for (; i < order_.size(); i++) merged.push_back(nodes_[order_[i]]);
  for (; j < sorted_spill.size(); j++) merged.push_back(nodes_[sorted_spill[j]]);
  return FrozenIntervalSet::FromSorted(std::move(merged));
}

void StreamingSetBuilder::Reset() {
  nodes_.clear();
  nodes_.shrink_to_fit();
  nodes_.reserve(64);
  order_.clear();
  order_.shrink_to_fit();
  spill_.clear();
  spill_.shrink_to_fit();
  total_accesses_ = 0;
  continuations_.clear();
  last_addr_.clear();
  open_single_.clear();
  key_nodes_.clear();
}

}  // namespace sword::itree
