#include "itree/mutexset.h"

#include <algorithm>

namespace sword::itree {

MutexSetTable::MutexSetTable() {
  sets_.emplace_back();  // id 0 = empty set
  index_.emplace(std::vector<MutexId>{}, kEmptyMutexSet);
}

MutexSetId MutexSetTable::Intern(std::vector<MutexId> mutexes) {
  std::sort(mutexes.begin(), mutexes.end());
  mutexes.erase(std::unique(mutexes.begin(), mutexes.end()), mutexes.end());
  {
    std::shared_lock lock(mutex_);
    auto it = index_.find(mutexes);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  auto it = index_.find(mutexes);
  if (it != index_.end()) return it->second;
  const MutexSetId id = static_cast<MutexSetId>(sets_.size());
  index_.emplace(mutexes, id);
  sets_.push_back(std::move(mutexes));
  return id;
}

MutexSetId MutexSetTable::WithMutex(MutexSetId id, MutexId mutex) {
  std::vector<MutexId> set = Get(id);
  set.push_back(mutex);
  return Intern(std::move(set));
}

MutexSetId MutexSetTable::WithoutMutex(MutexSetId id, MutexId mutex) {
  std::vector<MutexId> set = Get(id);
  set.erase(std::remove(set.begin(), set.end(), mutex), set.end());
  return Intern(std::move(set));
}

std::vector<MutexId> MutexSetTable::Get(MutexSetId id) const {
  std::shared_lock lock(mutex_);
  return sets_[id];
}

size_t MutexSetTable::size() const {
  std::shared_lock lock(mutex_);
  return sets_.size();
}

bool MutexSetTable::Intersects(MutexSetId a, MutexSetId b) const {
  if (a == kEmptyMutexSet || b == kEmptyMutexSet) return false;
  if (a == b) return true;  // identical non-empty sets
  if (a > b) std::swap(a, b);
  const uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
  {
    std::lock_guard lock(cache_mutex_);
    auto it = intersect_cache_.find(key);
    if (it != intersect_cache_.end()) return it->second;
  }

  bool result = false;
  {
    std::shared_lock lock(mutex_);
    const auto& sa = sets_[a];
    const auto& sb = sets_[b];
    size_t i = 0, j = 0;
    while (i < sa.size() && j < sb.size()) {
      if (sa[i] == sb[j]) {
        result = true;
        break;
      }
      if (sa[i] < sb[j]) i++;
      else j++;
    }
  }
  std::lock_guard lock(cache_mutex_);
  intersect_cache_.emplace(key, result);
  return result;
}

}  // namespace sword::itree
