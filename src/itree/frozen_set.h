// Frozen flat interval sets: the immutable, cache-resident comparison form
// of a summarized interval tree.
//
// Construction and comparison have opposite access patterns. Building wants
// O(log N) insertion with stable handles, which the red-black IntervalTree
// provides; comparison wants sequential scans over sorted data, which a
// pointer-linked tree cannot. So once a (thread, label) tree is fully built,
// the analyzer freezes it: one in-order walk copies the nodes into sorted
// flat arrays (structure-of-arrays: a `lo` column, a `hi` column, and the
// payload column), and every subsequent tree-vs-tree comparison runs on the
// frozen form only. The RB-tree is never touched again.
//
// Two enumeration primitives cover the comparison shapes:
//   - SweepMatchingPairs: a sort-merge sweep over two frozen sets that
//     visits every range-touching pair in O(M + M' + matches) with purely
//     sequential memory access - the analyzer's default.
//   - QueryRange: an implicit-balanced-BST search over the sorted arrays
//     (midpoint recursion + a subtree-max-hi column), O(log M + answer) per
//     query - the fallback when one set is much smaller than the other, so
//     the small side can gallop through the big one instead of paying a
//     full linear merge.
#pragma once

#include <cstdint>
#include <vector>

#include "common/function_ref.h"
#include "itree/interval_tree.h"

namespace sword::itree {

class FrozenIntervalSet {
 public:
  FrozenIntervalSet() = default;

  /// Freezes `tree`: one in-order walk, O(M) time and memory. The frozen set
  /// is an independent copy - the tree may be discarded afterwards.
  explicit FrozenIntervalSet(const IntervalTree& tree);

  /// Builds directly from nodes already in frozen order (ascending first
  /// byte, creation-stable on ties) - the streaming builder's Freeze() path,
  /// which never materializes a tree. Byte-identical (columns, capacities,
  /// MemoryBytes) to freezing the equivalent tree.
  static FrozenIntervalSet FromSorted(std::vector<AccessNode> sorted);

  size_t size() const { return nodes_.size(); }
  bool Empty() const { return nodes_.empty(); }

  /// Nodes are indexed in ascending `lo` order (ties keep the tree's stable
  /// in-order position).
  const AccessNode& node(size_t i) const { return nodes_[i]; }
  uint64_t lo(size_t i) const { return lo_[i]; }
  uint64_t hi(size_t i) const { return hi_[i]; }

  /// Calls `fn(index)` for every node whose byte range [lo,hi] touches
  /// [query_lo, query_hi], in ascending index (= lo) order. Stops early and
  /// returns false if fn returns false. O(log M + answer) via the implicit
  /// balanced-BST layout: node = midpoint of its index range, augmented with
  /// the subtree max-hi, exactly the IntervalTree's pruning rule but over
  /// flat arrays instead of pointer-linked nodes.
  bool QueryRange(uint64_t query_lo, uint64_t query_hi,
                  FunctionRef<bool(uint32_t)> fn) const;

  /// Heap footprint of the frozen columns.
  uint64_t MemoryBytes() const;

 private:
  bool QueryRecurse(size_t l, size_t r, uint64_t query_lo, uint64_t query_hi,
                    FunctionRef<bool(uint32_t)>& fn) const;
  uint64_t BuildMaxHi(size_t l, size_t r);

  // SoA columns, all sorted by lo. max_hi_[mid(l,r)] = max hi over [l,r),
  // the augmentation of the implicit midpoint BST.
  std::vector<uint64_t> lo_;
  std::vector<uint64_t> hi_;
  std::vector<uint64_t> max_hi_;
  std::vector<AccessNode> nodes_;
};

/// Enumerates every range-touching pair (ai, bi) between two frozen sets via
/// a sort-merge sweep: both sets are walked once in ascending lo order; each
/// start event scans the other side's active list, expiring dead intervals
/// (amortized O(1) each) and emitting a pair for every survivor. Total cost
/// O(|a| + |b| + matches), sequential. Pair emission order is deterministic
/// but NOT grouped by either side - callers that need a canonical order must
/// sort what they collect. Stops early and returns false if fn returns false.
bool SweepMatchingPairs(const FrozenIntervalSet& a, const FrozenIntervalSet& b,
                        FunctionRef<bool(uint32_t, uint32_t)> fn);

}  // namespace sword::itree
