#include "itree/interval_tree.h"

#include <algorithm>
#include <string>

namespace sword::itree {

IntervalTree::IntervalTree() { nodes_.reserve(64); }

namespace {

/// Erases map[key] only when it currently maps to `id`; the summarization
/// indexes use best-effort emplace, so a slot may belong to another node.
template <typename Map, typename Key>
void EraseIfMapsTo(Map& map, const Key& key, uint32_t id) {
  auto it = map.find(key);
  if (it != map.end() && it->second == id) map.erase(it);
}

}  // namespace

uint32_t IntervalTree::AddAccess(uint64_t addr, const AccessKey& key) {
  total_accesses_++;

  // 1. Repeated access to a run's most recent address: fold without growing.
  if (auto dup = last_addr_.find(ContKey{addr, key}); dup != last_addr_.end()) {
    nodes_[dup->second].payload.hits++;
    return dup->second;
  }

  // 2. Continuation of an established run: addr is exactly the next element.
  if (auto it = continuations_.find(ContKey{addr, key}); it != continuations_.end()) {
    const uint32_t id = it->second;
    Node& n = nodes_[id];
    auto& iv = n.payload.interval;
    EraseIfMapsTo(last_addr_, ContKey{iv.base + iv.stride * (iv.count - 1), key}, id);
    if (iv.count == 1) {
      // This continuation was registered at base+size (unit element walk).
      iv.stride = addr - iv.base;
      iv.count = 2;
      open_single_.erase(key);
    } else {
      iv.count++;
    }
    n.payload.hits++;
    continuations_.erase(it);
    continuations_.emplace(ContKey{iv.base + iv.stride * iv.count, key}, id);
    last_addr_.emplace(ContKey{addr, key}, id);
    PropagateMaxHi(id);
    return id;
  }

  // 3. Second element of an arbitrary-stride ascending walk: the most recent
  // single-access node with this key adopts stride = addr - base. The
  // resulting interval covers exactly {base, addr}, so this is sound even if
  // the two accesses were unrelated.
  if (auto os = open_single_.find(key); os != open_single_.end()) {
    const uint32_t id = os->second;
    Node& n = nodes_[id];
    auto& iv = n.payload.interval;
    if (addr > iv.base) {
      EraseIfMapsTo(continuations_, ContKey{iv.base + key.size, key}, id);
      EraseIfMapsTo(last_addr_, ContKey{iv.base, key}, id);
      iv.stride = addr - iv.base;
      iv.count = 2;
      n.payload.hits++;
      open_single_.erase(os);
      continuations_.emplace(ContKey{iv.base + iv.stride * 2, key}, id);
      last_addr_.emplace(ContKey{addr, key}, id);
      PropagateMaxHi(id);
      return id;
    }
    // Descending access: leave the old node single and start a new one.
    open_single_.erase(os);
  }

  // 4. Fresh node.
  const uint32_t id = InsertNode(ilp::StridedInterval{addr, 0, 1, key.size}, key);
  nodes_[id].payload.hits = 1;
  continuations_.emplace(ContKey{addr + key.size, key}, id);
  last_addr_.emplace(ContKey{addr, key}, id);
  open_single_[key] = id;
  return id;
}

uint32_t IntervalTree::AddRun(uint64_t base, uint64_t stride, uint64_t count,
                              const AccessKey& key) {
  // Degenerate shapes are defined by the element loop.
  if (count == 0) return kNil;
  if (stride == 0) {
    uint32_t id = kNil;
    for (uint64_t i = 0; i < count; i++) id = AddAccess(base, key);
    return id;
  }
  uint32_t id = AddAccess(base, key);
  if (count == 1) return id;
  const uint32_t first = id;
  id = AddAccess(base + stride, key);
  if (count == 2) return id;

  // Bulk fast path: the first two elements merged into one fresh-looking
  // run node, and no other node shares the key, so every remaining element
  // would take the continuation branch of AddAccess on this exact node.
  // Apply the loop's net effect in O(1): grow the interval, move the
  // continuation and last-address index entries to the run's new end, and
  // bump the counters once.
  const auto& iv = nodes_[id].payload.interval;
  const auto kn = key_nodes_.find(key);
  if (id == first && iv.base == base && iv.stride == stride && iv.count == 2 &&
      kn != key_nodes_.end() && kn->second == 1) {
    const uint64_t extra = count - 2;
    EraseIfMapsTo(continuations_, ContKey{base + 2 * stride, key}, id);
    EraseIfMapsTo(last_addr_, ContKey{base + stride, key}, id);
    auto& run = nodes_[id].payload;
    run.interval.count = count;
    run.hits += extra;
    total_accesses_ += extra;
    continuations_.emplace(ContKey{base + stride * count, key}, id);
    last_addr_.emplace(ContKey{base + stride * (count - 1), key}, id);
    PropagateMaxHi(id);
    return id;
  }

  // Aliasing with pre-existing same-key state: replay element by element.
  for (uint64_t i = 2; i < count; i++) id = AddAccess(base + i * stride, key);
  return id;
}

uint32_t IntervalTree::AddInterval(const ilp::StridedInterval& interval,
                                   const AccessKey& key) {
  total_accesses_ += interval.count;
  const uint32_t id = InsertNode(interval, key);
  nodes_[id].payload.hits = interval.count;
  return id;
}

uint32_t IntervalTree::InsertNode(const ilp::StridedInterval& interval,
                                  const AccessKey& key) {
  const uint32_t z = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(Node{});
  Node& zn = nodes_[z];
  zn.payload.interval = interval;
  zn.payload.key = key;
  zn.max_hi = interval.hi();
  key_nodes_[key]++;

  // Standard BST insert ordered by first byte (ties go right).
  uint32_t y = kNil;
  uint32_t x = root_;
  const uint64_t lo = interval.lo();
  while (x != kNil) {
    y = x;
    x = lo < nodes_[x].payload.interval.lo() ? nodes_[x].left : nodes_[x].right;
  }
  nodes_[z].parent = y;
  if (y == kNil) {
    root_ = z;
  } else if (lo < nodes_[y].payload.interval.lo()) {
    nodes_[y].left = z;
  } else {
    nodes_[y].right = z;
  }
  PropagateMaxHi(z);
  InsertFixup(z);
  return z;
}

void IntervalTree::UpdateMaxHi(uint32_t n) {
  Node& node = nodes_[n];
  uint64_t m = node.payload.interval.hi();
  if (node.left != kNil) m = std::max(m, nodes_[node.left].max_hi);
  if (node.right != kNil) m = std::max(m, nodes_[node.right].max_hi);
  node.max_hi = m;
}

void IntervalTree::PropagateMaxHi(uint32_t n) {
  while (n != kNil) {
    UpdateMaxHi(n);
    n = nodes_[n].parent;
  }
}

void IntervalTree::RotateLeft(uint32_t x) {
  const uint32_t y = nodes_[x].right;
  nodes_[x].right = nodes_[y].left;
  if (nodes_[y].left != kNil) nodes_[nodes_[y].left].parent = x;
  nodes_[y].parent = nodes_[x].parent;
  if (nodes_[x].parent == kNil) {
    root_ = y;
  } else if (x == nodes_[nodes_[x].parent].left) {
    nodes_[nodes_[x].parent].left = y;
  } else {
    nodes_[nodes_[x].parent].right = y;
  }
  nodes_[y].left = x;
  nodes_[x].parent = y;
  UpdateMaxHi(x);
  UpdateMaxHi(y);
}

void IntervalTree::RotateRight(uint32_t x) {
  const uint32_t y = nodes_[x].left;
  nodes_[x].left = nodes_[y].right;
  if (nodes_[y].right != kNil) nodes_[nodes_[y].right].parent = x;
  nodes_[y].parent = nodes_[x].parent;
  if (nodes_[x].parent == kNil) {
    root_ = y;
  } else if (x == nodes_[nodes_[x].parent].right) {
    nodes_[nodes_[x].parent].right = y;
  } else {
    nodes_[nodes_[x].parent].left = y;
  }
  nodes_[y].right = x;
  nodes_[x].parent = y;
  UpdateMaxHi(x);
  UpdateMaxHi(y);
}

void IntervalTree::InsertFixup(uint32_t z) {
  // CLRS red-black insertion fixup, with grandparent max-hi kept correct by
  // the rotations themselves.
  while (nodes_[z].parent != kNil && nodes_[nodes_[z].parent].color == kRed) {
    const uint32_t parent = nodes_[z].parent;
    const uint32_t grand = nodes_[parent].parent;
    if (parent == nodes_[grand].left) {
      const uint32_t uncle = nodes_[grand].right;
      if (uncle != kNil && nodes_[uncle].color == kRed) {
        nodes_[parent].color = kBlack;
        nodes_[uncle].color = kBlack;
        nodes_[grand].color = kRed;
        z = grand;
      } else {
        if (z == nodes_[parent].right) {
          z = parent;
          RotateLeft(z);
        }
        const uint32_t p2 = nodes_[z].parent;
        const uint32_t g2 = nodes_[p2].parent;
        nodes_[p2].color = kBlack;
        nodes_[g2].color = kRed;
        RotateRight(g2);
      }
    } else {
      const uint32_t uncle = nodes_[grand].left;
      if (uncle != kNil && nodes_[uncle].color == kRed) {
        nodes_[parent].color = kBlack;
        nodes_[uncle].color = kBlack;
        nodes_[grand].color = kRed;
        z = grand;
      } else {
        if (z == nodes_[parent].left) {
          z = parent;
          RotateRight(z);
        }
        const uint32_t p2 = nodes_[z].parent;
        const uint32_t g2 = nodes_[p2].parent;
        nodes_[p2].color = kBlack;
        nodes_[g2].color = kRed;
        RotateLeft(g2);
      }
    }
  }
  nodes_[root_].color = kBlack;
}

void IntervalTree::QueryRange(uint64_t query_lo, uint64_t query_hi,
                              FunctionRef<bool(const AccessNode&)> fn) const {
  if (root_ == kNil) return;
  // Explicit stack; prune subtrees whose max_hi ends before the query and
  // right subtrees whose lo starts after it.
  uint32_t stack[256];
  int top = 0;
  stack[top++] = root_;
  while (top > 0) {
    const uint32_t n = stack[--top];
    const Node& node = nodes_[n];
    if (node.max_hi < query_lo) continue;
    if (node.left != kNil) stack[top++] = node.left;
    const uint64_t lo = node.payload.interval.lo();
    if (lo <= query_hi) {
      if (node.payload.interval.hi() >= query_lo) {
        if (!fn(node.payload)) return;
      }
      if (node.right != kNil) stack[top++] = node.right;
    }
  }
}

void IntervalTree::ForEach(FunctionRef<void(const AccessNode&)> fn) const {
  // Morris-free iterative in-order using parent pointers.
  uint32_t n = root_;
  if (n == kNil) return;
  while (nodes_[n].left != kNil) n = nodes_[n].left;
  while (n != kNil) {
    fn(nodes_[n].payload);
    if (nodes_[n].right != kNil) {
      n = nodes_[n].right;
      while (nodes_[n].left != kNil) n = nodes_[n].left;
    } else {
      uint32_t p = nodes_[n].parent;
      while (p != kNil && n == nodes_[p].right) {
        n = p;
        p = nodes_[p].parent;
      }
      n = p;
    }
  }
}

uint64_t IntervalTree::MemoryBytes() const {
  return nodes_.capacity() * sizeof(Node) +
         continuations_.size() * (sizeof(ContKey) + sizeof(uint32_t) + 16);
}

bool IntervalTree::Validate(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  if (root_ == kNil) return nodes_.empty() ? true : fail("nodes but no root");
  if (nodes_[root_].color != kBlack) return fail("root is red");

  // Walk the tree checking order, colors, black height, max_hi.
  struct Frame {
    uint32_t node;
    int black_height;
  };
  int expected_black = -1;
  std::vector<Frame> stack{{root_, 0}};
  size_t visited = 0;
  std::string msg;
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& n = nodes_[f.node];
    visited++;

    if (n.color == kRed) {
      if (n.left != kNil && nodes_[n.left].color == kRed) return fail("red-red (left)");
      if (n.right != kNil && nodes_[n.right].color == kRed)
        return fail("red-red (right)");
    }
    const int bh = f.black_height + (n.color == kBlack ? 1 : 0);

    uint64_t max_hi = n.payload.interval.hi();
    if (n.left != kNil) {
      const Node& l = nodes_[n.left];
      if (l.parent != f.node) return fail("bad parent link (left)");
      if (l.payload.interval.lo() > n.payload.interval.lo())
        return fail("BST order violated (left)");
      max_hi = std::max(max_hi, l.max_hi);
      stack.push_back({n.left, bh});
    }
    if (n.right != kNil) {
      const Node& r = nodes_[n.right];
      if (r.parent != f.node) return fail("bad parent link (right)");
      if (r.payload.interval.lo() < n.payload.interval.lo())
        return fail("BST order violated (right)");
      max_hi = std::max(max_hi, r.max_hi);
      stack.push_back({n.right, bh});
    }
    if (max_hi != n.max_hi) return fail("max_hi augmentation stale");
    if (n.left == kNil || n.right == kNil) {
      // Leaf path: all nil paths must share one black height.
      if (expected_black == -1) expected_black = bh;
      else if (bh != expected_black) return fail("black height mismatch");
    }
  }
  if (visited != nodes_.size()) return fail("unreachable nodes");
  return true;
}

}  // namespace sword::itree
