// Streaming decode-to-frozen builder: FrozenIntervalSet construction
// directly from decoder output, skipping the red-black tree entirely.
//
// The offline analyzer only ever compares FROZEN sets (PR 4); the RB-tree's
// one remaining job on the hot path is to hand the freeze a sorted node
// sequence. But segments close at barriers, and once a segment is finished
// its node set is final - so the sort can be had far cheaper than O(log N)
// balanced insertion per node. This builder runs the EXACT summarization
// algorithm of IntervalTree::AddAccess/AddRun (same continuation,
// last-address, open-single, and per-key-count indexes, same branch order,
// same node ids) over a flat creation-ordered arena, and tracks sortedness
// instead of maintaining it:
//
//   - a node whose first byte is >= the previous appended node's first byte
//     extends the sorted main sequence in O(1) (the overwhelmingly common
//     case: program-order accesses walk addresses upward);
//   - an out-of-order node goes to a small spill buffer.
//
// Freeze() sorts the spill (typically tiny) and merges it with the main
// sequence by (first byte, creation id) - provably the tree's in-order
// sequence, because a node's first byte NEVER changes after creation
// (continuations extend stride/count/hi only; a descending access starts a
// new node) and the tree breaks first-byte ties toward the right, i.e. in
// creation order. The resulting FrozenIntervalSet is byte-identical to
// FrozenIntervalSet(tree) for the same event stream, which the property
// tests pin down.
//
// Per-event cost drops from O(depth) (the tree pays a root-ward max-hi
// propagation on EVERY access, even O(1) continuations) to amortized O(1),
// and per-node memory from sizeof(IntervalTree::Node) (payload + three
// links, a color, and an augmentation word) to sizeof(AccessNode).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "itree/frozen_set.h"
#include "itree/interval_tree.h"

namespace sword::itree {

class StreamingSetBuilder {
 public:
  StreamingSetBuilder() { nodes_.reserve(64); }

  /// Records one access. Identical summarization semantics (node ids, hit
  /// counts, interval shapes) to IntervalTree::AddAccess.
  uint32_t AddAccess(uint64_t addr, const AccessKey& key);

  /// Records a coalesced strided run; identical to IntervalTree::AddRun,
  /// including the O(1) bulk extension for the fresh-run common case.
  uint32_t AddRun(uint64_t base, uint64_t stride, uint64_t count,
                  const AccessKey& key);

  size_t NodeCount() const { return nodes_.size(); }
  uint64_t TotalAccesses() const { return total_accesses_; }
  bool Empty() const { return nodes_.empty(); }

  /// Out-of-order nodes waiting in the spill buffer (diagnostics/accounting).
  size_t SpillCount() const { return spill_.size(); }
  uint64_t SpillBytes() const { return spill_.capacity() * sizeof(uint32_t); }

  /// Approximate heap footprint, same accounting shape as
  /// IntervalTree::MemoryBytes so the memory governor treats both builds
  /// uniformly.
  uint64_t MemoryBytes() const;

  /// Produces the frozen comparison form: sorts the spill, merges by
  /// (first byte, creation id), done. O(N + S log S) for S spilled nodes.
  /// The builder remains valid (more events may follow a salvage probe),
  /// but callers normally Reset() or drop it afterwards.
  FrozenIntervalSet Freeze() const;

  /// Releases every node and index, returning the builder to empty.
  void Reset();

 private:
  static constexpr uint32_t kNil = 0xffffffffu;

  uint32_t NewNode(const ilp::StridedInterval& interval, const AccessKey& key);

  std::vector<AccessNode> nodes_;  // creation order; ids match the tree's
  std::vector<uint32_t> order_;    // ids in non-decreasing first-byte order
  std::vector<uint32_t> spill_;    // out-of-order ids, sorted at Freeze()
  uint64_t total_accesses_ = 0;
  // The same four summarization indexes as IntervalTree (see its header).
  std::unordered_map<ContKey, uint32_t, ContKeyHash> continuations_;
  std::unordered_map<ContKey, uint32_t, ContKeyHash> last_addr_;
  std::unordered_map<AccessKey, uint32_t, AccessKeyHash> open_single_;
  std::unordered_map<AccessKey, uint32_t, AccessKeyHash> key_nodes_;
};

}  // namespace sword::itree
