// Augmented red-black interval tree over summarized strided access runs
// (paper SIII-B, Fig. 5).
//
// The offline analyzer builds one tree per (thread, barrier interval). Each
// node summarizes a run of accesses sharing the same program counter,
// operation, access size, and mutex set, whose addresses form an arithmetic
// progression (base, base+stride, ...). Raw accesses stream in in program
// order; an access that continues a run extends the corresponding node in
// O(1) via a continuation index, otherwise a new node is inserted in
// O(log N). Nodes are kept in a red-black tree ordered by first byte, each
// augmented with the maximum last-byte in its subtree, so all nodes whose
// [lo,hi] byte range touches a query range are enumerable in
// O(log N + answer) - the paper's O(M log M) tree-vs-tree comparison.
//
// Nodes live in a flat arena (indices, not pointers): rotations relink
// indices and never move nodes, so continuation handles stay valid.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/function_ref.h"
#include "ilp/overlap.h"
#include "itree/mutexset.h"

namespace sword::itree {

/// Operation bits for an access node.
enum AccessFlags : uint8_t {
  kRead = 0,
  kWrite = 1 << 0,
  kAtomic = 1 << 1,
};

/// Merge-compatibility key: accesses summarize into one node only if these
/// all match (the paper stores op type, size, stride, pc, mutex set per node).
struct AccessKey {
  uint32_t pc = 0;           // source-location id
  uint8_t flags = kRead;     // AccessFlags
  uint8_t size = 1;          // bytes per access
  MutexSetId mutexset = kEmptyMutexSet;

  friend bool operator==(const AccessKey&, const AccessKey&) = default;

  bool is_write() const { return flags & kWrite; }
  bool is_atomic() const { return flags & kAtomic; }
};

struct AccessNode {
  ilp::StridedInterval interval;
  AccessKey key;
  uint64_t hits = 0;  // raw accesses summarized into this node (>= count)
};

/// Mixes (addr, key) into a well-distributed 64-bit hash. All entropy reaches
/// the low 32 bits, so the value survives truncation to a 32-bit size_t.
/// Exposed (rather than kept inside the hasher functors) so tests can check
/// the distribution directly.
inline uint64_t HashAccess(uint64_t addr, const AccessKey& key) {
  uint64_t h = addr * 0x9e3779b97f4a7c15ULL;
  h ^= (static_cast<uint64_t>(key.pc) << 16) ^ key.flags ^
       (static_cast<uint64_t>(key.size) << 8) ^
       (static_cast<uint64_t>(key.mutexset) << 32);
  // splitmix64 finalizer: without it, the high-half XOR above (notably the
  // mutex-set bits at position 32+) never influences the low bits, and a
  // 32-bit size_t target collides every mutex set sharing its low bits.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// (key, address) lookup key for the summarization indexes, shared by the
/// RB-tree builder and the streaming builder (itree/streaming_builder.h).
struct ContKey {
  uint64_t addr;
  AccessKey key;
  friend bool operator==(const ContKey&, const ContKey&) = default;
};
struct ContKeyHash {
  size_t operator()(const ContKey& k) const {
    return static_cast<size_t>(HashAccess(k.addr, k.key));
  }
};
struct AccessKeyHash {
  size_t operator()(const AccessKey& k) const {
    return ContKeyHash{}(ContKey{0, k});
  }
};

class IntervalTree {
 public:
  IntervalTree();

  /// Records one access at `addr`. Extends an existing summarized run when
  /// possible, otherwise inserts a new node. Returns the node id touched.
  uint32_t AddAccess(uint64_t addr, const AccessKey& key);

  /// Records a coalesced strided run: `count` accesses at base, base+stride,
  /// ..., base+(count-1)*stride. EXACTLY equivalent to that many AddAccess
  /// calls in ascending order - structure, hit counts, and summarization-
  /// index state all match, so traces replay identically whether the writer
  /// coalesced or not. O(log N + 1) when the run lands in a fresh node with
  /// no same-key sibling (the common case); falls back to the per-element
  /// loop otherwise. Returns the node id of the last element.
  uint32_t AddRun(uint64_t base, uint64_t stride, uint64_t count,
                  const AccessKey& key);

  /// Inserts a pre-summarized interval (used by tests and by tree merging).
  uint32_t AddInterval(const ilp::StridedInterval& interval, const AccessKey& key);

  /// Calls `fn` for every node whose byte range [lo,hi] touches
  /// [query_lo, query_hi]. Stops early if fn returns false.
  void QueryRange(uint64_t query_lo, uint64_t query_hi,
                  FunctionRef<bool(const AccessNode&)> fn) const;

  /// In-order traversal over all nodes (ascending lo; insertion-stable on
  /// ties, because equal keys insert to the right).
  void ForEach(FunctionRef<void(const AccessNode&)> fn) const;

  size_t NodeCount() const { return nodes_.size(); }
  uint64_t TotalAccesses() const { return total_accesses_; }
  bool Empty() const { return nodes_.empty(); }

  /// Approximate heap footprint (for the memory-accounting benches).
  uint64_t MemoryBytes() const;

  /// Verifies every structural invariant (BST order on lo, red-black
  /// properties, max-hi augmentation). Returns false and fills `why` on the
  /// first violation. Test-only; O(N).
  bool Validate(std::string* why = nullptr) const;

 private:
  static constexpr uint32_t kNil = 0xffffffffu;
  enum Color : uint8_t { kRed, kBlack };

  struct Node {
    AccessNode payload;
    uint64_t max_hi = 0;    // max over subtree of payload.interval.hi()
    uint32_t left = kNil;
    uint32_t right = kNil;
    uint32_t parent = kNil;
    Color color = kRed;
  };

  uint32_t InsertNode(const ilp::StridedInterval& interval, const AccessKey& key);
  void InsertFixup(uint32_t z);
  void RotateLeft(uint32_t x);
  void RotateRight(uint32_t x);
  void UpdateMaxHi(uint32_t n);
  void PropagateMaxHi(uint32_t n);
  uint64_t SubtreeMaxHi(uint32_t n) const;

  // Summarization indexes (all O(1) per access):
  //  - continuations_: (key, next expected addr) -> run node; extends
  //    established runs (count >= 2) and unit-walk singles.
  //  - last_addr_: (key, last recorded addr) -> node; folds repeated accesses
  //    to the same location (hits++ without growing the run).
  //  - open_single_: key -> most recent single-access node; lets the second
  //    access of an arbitrary-stride walk fix the stride.
  std::vector<Node> nodes_;
  uint32_t root_ = kNil;
  uint64_t total_accesses_ = 0;
  std::unordered_map<ContKey, uint32_t, ContKeyHash> continuations_;
  std::unordered_map<ContKey, uint32_t, ContKeyHash> last_addr_;
  std::unordered_map<AccessKey, uint32_t, AccessKeyHash> open_single_;
  // Nodes per key (never decremented; nodes are never removed). AddRun's
  // bulk fast path is only safe when exactly ONE node carries the run's
  // key: then no foreign same-key index entry can divert any per-element
  // step, so the O(1) bulk extension provably equals the element loop.
  std::unordered_map<AccessKey, uint32_t, AccessKeyHash> key_nodes_;
};

}  // namespace sword::itree
