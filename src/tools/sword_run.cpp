// sword-run: execute a registered benchmark under a detector configuration.
//
//   sword-run --list
//   sword-run --suite drb --name nowait-orig-yes --tool sword [--threads 8]
//             [--size N] [--trace-dir DIR] [--buffer-kb K] [--codec C]
//             [--cap-mb M] [--flush-workers W] [--format 1|2|3]
//             [--no-access-filter] [--no-coalesce] [--no-lockfree]
//             [--no-prefilter] [--prefilter-budget N]
//             [--fault-plan SPEC] [--watchdog-ms N] [--adaptive]
//             [--no-crash-seal] [--salvage]
//
// The workbench the comparative tables are built from, exposed as a CLI so
// individual configurations can be reproduced by hand. With --trace-dir the
// sword run leaves its trace files behind for sword-offline / sword-dump.
#include <cstdio>

#include "common/args.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/sword_tool.h"
#include "harness/harness.h"
#include "somp/srcloc.h"
#include "trace/event.h"
#include "workloads/workload.h"

using namespace sword;

int main(int argc, char** argv) {
  // A terminated run (SIGTERM/SIGINT) drains live trace writers before
  // dying, so --trace-dir output stays analyzable; kill -9 is covered by
  // salvage-mode analysis instead.
  core::InstallCrashDrain();
  ArgParser args(argc, argv);

  if (args.GetBool("list")) {
    TextTable table({"suite", "name", "documented", "real races", "description"});
    for (const auto* w : workloads::WorkloadRegistry::Get().All()) {
      table.AddRow({w->suite, w->name, std::to_string(w->documented_races),
                    std::to_string(w->total_races), w->description});
    }
    table.Print();
    return 0;
  }

  const std::string suite = args.GetString("suite");
  const std::string name = args.GetString("name");
  const std::string tool_name = args.GetString("tool", "sword");
  if (suite.empty() || name.empty()) {
    std::fprintf(stderr,
                 "usage: sword-run --suite S --name N [--tool "
                 "baseline|archer|archer-low|sword|eraser] [--threads K] [--size N]\n"
                 "       sword-run --list\n");
    return 1;
  }

  harness::RunConfig config;
  if (tool_name == "baseline") config.tool = harness::ToolKind::kBaseline;
  else if (tool_name == "archer") config.tool = harness::ToolKind::kArcher;
  else if (tool_name == "archer-low") config.tool = harness::ToolKind::kArcherLow;
  else if (tool_name == "sword") config.tool = harness::ToolKind::kSword;
  else if (tool_name == "eraser") config.tool = harness::ToolKind::kEraser;
  else {
    std::fprintf(stderr, "unknown tool %s\n", tool_name.c_str());
    return 1;
  }
  config.params.threads = static_cast<uint32_t>(args.GetInt("threads", 8));
  config.params.size = static_cast<uint64_t>(args.GetInt("size", 0));
  config.buffer_bytes = static_cast<uint64_t>(args.GetInt("buffer-kb", 2048)) * 1024;
  config.codec = args.GetString("codec", "lzf");
  config.trace_dir = args.GetString("trace-dir", "");
  config.flush_workers = static_cast<uint32_t>(args.GetInt("flush-workers", 0));
  const int64_t format = args.GetInt("format", trace::kTraceFormatV3);
  if (format < trace::kTraceFormatV1 || format > trace::kTraceFormatV3) {
    std::fprintf(stderr, "unknown trace format %lld (use 1, 2 or 3)\n",
                 static_cast<long long>(format));
    return 1;
  }
  config.trace_format = static_cast<uint8_t>(format);
  // Fast-path ablations (report-identical by construction; see FORMAT.md).
  config.access_filter = !args.GetBool("no-access-filter");
  config.coalesce = !args.GetBool("no-coalesce");
  // Trace-plane coordination ablation: mutex/condvar lanes + epoch-bump
  // sink invalidation instead of the lock-free rings/pool/QSBR.
  config.lockfree = !args.GetBool("no-lockfree");
  // Static pre-filter: on by default here (ablation via --no-prefilter).
  // Race output is identical either way - elision only suppresses accesses
  // at sites proven disjoint, and footprint receipts keep the decoded
  // stream address-equivalent. Needs the v3 format; silently off on v1/v2.
  config.prefilter = !args.GetBool("no-prefilter");
  config.prefilter_budget =
      static_cast<uint64_t>(args.GetInt("prefilter-budget", 4096));
  config.archer_memory_cap =
      static_cast<uint64_t>(args.GetInt("cap-mb", 0)) * 1024 * 1024;
  config.offline_threads = static_cast<uint32_t>(args.GetInt("offline-threads", 1));
  // Production-survivability knobs. Fatal-signal sealing is on by default
  // (inert unless the process dies of a fatal signal); the degradation
  // governor and the enqueue watchdog are opt-in.
  config.fault_plan = args.GetString("fault-plan", "");
  config.crash_seal = !args.GetBool("no-crash-seal");
  config.adaptive_degradation = args.GetBool("adaptive");
  config.watchdog_ms = static_cast<uint64_t>(args.GetInt("watchdog-ms", 0));
  config.salvage_offline = args.GetBool("salvage");

  auto result = harness::RunByName(suite, name, config);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const harness::RunResult& r = result.value();

  std::printf("%s/%s under %s, %u threads\n", suite.c_str(), name.c_str(),
              harness::ToolName(r.tool), config.params.threads);
  std::printf("  dynamic time:    %s\n", FormatSeconds(r.dynamic_seconds).c_str());
  if (r.tool == harness::ToolKind::kSword) {
    std::printf("  offline time:    %s (slowest bucket %s)\n",
                FormatSeconds(r.offline_seconds).c_str(),
                FormatSeconds(r.offline_max_bucket).c_str());
    std::printf("  events logged:   %llu (%llu flushes, %s on disk)\n",
                static_cast<unsigned long long>(r.events),
                static_cast<unsigned long long>(r.flushes),
                FormatBytes(r.log_bytes_on_disk).c_str());
    std::printf("  fast path:       %llu suppressed, %llu coalesced into "
                "%llu run(s), %llu dropped outside segments\n",
                static_cast<unsigned long long>(r.events_suppressed),
                static_cast<unsigned long long>(r.events_coalesced),
                static_cast<unsigned long long>(r.runs_emitted),
                static_cast<unsigned long long>(r.accesses_dropped));
    if (r.events_elided > 0 || r.elided_lost > 0) {
      std::printf("  pre-filter:      %llu access(es) elided at proven-safe "
                  "sites%s\n",
                  static_cast<unsigned long long>(r.events_elided),
                  r.elided_lost > 0 ? "  ** RECEIPTS LOST **" : "");
    }
    std::printf("  flush pipeline:  %zu worker(s), %llu job(s), %s in, "
                "%llu stall(s) (%s blocked)\n",
                r.flusher.worker_bytes_in.size(),
                static_cast<unsigned long long>(r.flusher.jobs_completed),
                FormatBytes(r.flusher.bytes_in).c_str(),
                static_cast<unsigned long long>(r.flusher.producer_blocks),
                FormatSeconds(static_cast<double>(r.flusher.blocked_nanos) * 1e-9)
                    .c_str());
  }
  if (r.tool == harness::ToolKind::kSword &&
      (r.degraded_dropped > 0 || r.flusher.watchdog_drops > 0 ||
       r.analysis.integrity.crash_sealed ||
       r.analysis.integrity.degradation_transitions > 0)) {
    std::printf("  survivability:   %llu access(es) shed by the governor "
                "(%llu level change(s)), %llu watchdog drop(s)%s\n",
                static_cast<unsigned long long>(r.degraded_dropped),
                static_cast<unsigned long long>(
                    r.analysis.integrity.degradation_transitions),
                static_cast<unsigned long long>(r.flusher.watchdog_drops),
                r.analysis.integrity.crash_sealed ? ", CRASH-SEALED trace"
                                                  : "");
  }
  std::printf("  app footprint:   %s\n", FormatBytes(r.baseline_bytes).c_str());
  std::printf("  detector memory: %s%s\n", FormatBytes(r.tool_peak_bytes).c_str(),
              r.oom ? "  ** OUT OF MEMORY **" : "");
  std::printf("  races:           %llu\n", static_cast<unsigned long long>(r.races));
  if (!r.status.ok()) {
    std::printf("  status:          %s\n", r.status.ToString().c_str());
  }
  if (r.oom) return 3;
  // Trace I/O or analysis failure: the run is not trustworthy, and silently
  // exiting 0 would let a lossy trace masquerade as a clean one.
  if (!r.status.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status.ToString().c_str());
    return 4;
  }
  return r.races ? 2 : 0;
}
