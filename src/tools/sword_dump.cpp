// sword-dump: inspect SWORD trace files.
//
//   sword-dump <trace-dir> [--events] [--thread N] [--limit K]
//
// Prints each thread's meta file as a Table-I-style listing (pid, ppid,
// bid, offset, span, level, data offsets, offset-span label) and, with
// --events, the decoded event stream per interval.
#include <cstdio>

#include "common/args.h"
#include "common/timer.h"
#include "offline/tracestore.h"

using namespace sword;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const bool dump_events = args.GetBool("events");
  const int64_t only_thread = args.GetInt("thread", -1);
  const int64_t limit = args.GetInt("limit", 32);

  if (args.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: sword-dump <trace-dir> [--events] [--thread N] "
                 "[--limit K]\n");
    return 1;
  }

  auto store = offline::TraceStore::OpenDir(args.positional()[0]);
  if (!store.ok()) {
    std::fprintf(stderr, "error: %s\n", store.status().ToString().c_str());
    return 1;
  }

  for (const auto& thread : store.value().threads()) {
    if (only_thread >= 0 && thread.tid != static_cast<uint32_t>(only_thread)) continue;
    std::printf("=== thread %u: %zu interval(s), %s logical log, format v%u ===\n",
                thread.tid, thread.meta.intervals.size(),
                FormatBytes(thread.log->total_logical_bytes()).c_str(),
                thread.meta.log_format);
    for (const auto& meta : thread.meta.intervals) {
      std::printf("  %s\n", meta.ToString().c_str());
      if (!dump_events) continue;
      int64_t shown = 0;
      const Status s = thread.log->StreamRange(
          meta.data_begin, meta.data_size, [&](const trace::RawEvent& e) {
            if (shown++ >= limit) return;
            switch (e.kind) {
              case trace::EventKind::kAccess:
                std::printf("    %s%s size=%u pc=%u addr=0x%llx\n",
                            (e.flags & 1) ? "write" : "read",
                            (e.flags & 2) ? "(atomic)" : "", e.size, e.pc,
                            static_cast<unsigned long long>(e.addr));
                break;
              case trace::EventKind::kMutexAcquire:
                std::printf("    acquire mutex %llu\n",
                            static_cast<unsigned long long>(e.addr));
                break;
              case trace::EventKind::kMutexRelease:
                std::printf("    release mutex %llu\n",
                            static_cast<unsigned long long>(e.addr));
                break;
            }
          });
      if (!s.ok()) {
        std::fprintf(stderr, "  (stream error: %s)\n", s.ToString().c_str());
      }
      if (shown > limit) {
        std::printf("    ... %lld more event(s)\n",
                    static_cast<long long>(shown - limit));
      }
    }
  }
  return 0;
}
