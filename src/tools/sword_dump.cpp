// sword-dump: inspect SWORD trace files.
//
//   sword-dump <trace-dir> [--events] [--thread N] [--limit K]
//   sword-dump <trace-dir> --segments
//   sword-dump <trace-dir> --verify
//   sword-dump <trace-dir> --prefilter
//
// Prints each thread's meta file as a Table-I-style listing (pid, ppid,
// bid, offset, span, level, data offsets, offset-span label) and, with
// --events, the decoded event stream per interval.
//
// --segments prints one line per barrier-interval segment: decoded event
// counts by kind, the canonical-stream fingerprint the analyzer's
// repeated-subtrace memoization keys on (equal hex = the analyzer shares
// one frozen set), and the segment's decompressed vs on-disk compressed
// byte sizes. This is the triage view for "why did dedup (not) fire" and
// "which segments dominate the log".
//
// --prefilter renders the static pre-filter's state for the run that left
// this trace behind: per-site prover verdicts, the per-PC affine access
// descriptors (models) the proofs were discharged over, and the per-thread
// elision accounting from the v6 metas. The suppression "mask" is exactly
// the set of sites listed as proven-safe. Requires the prefilter.json the
// tool writes at finalize; runs without the pre-filter have no such file.
//
// --verify walks every sword_t*.log frame by frame, validating each header
// and payload checksum, and prints a per-frame table plus an OK/CORRUPT
// summary. It never needs the meta files and works on damaged logs - this
// is the triage tool for a trace a crashed or I/O-starved run left behind.
// Exit: 0 = every frame intact, 2 = damage found, 1 = usage error.
#include <cstdio>

#include "common/args.h"
#include "common/fsutil.h"
#include "common/timer.h"
#include "offline/fingerprint.h"
#include "offline/tracestore.h"
#include "trace/reader.h"

using namespace sword;

namespace {

int VerifyDir(const std::string& dir) {
  bool any = false;
  bool damaged = false;
  for (uint32_t k = 0;; k++) {
    const std::string path = dir + "/sword_t" + std::to_string(k) + ".log";
    if (!FileExists(path)) break;
    any = true;
    std::printf("=== %s ===\n", path.c_str());
    std::printf("  %5s %10s %10s %10s %6s %-6s %s\n", "frame", "offset",
                "encoded", "raw", "fmt", "codec", "status");
    auto stats = trace::LogReader::VerifyLog(path, [](const trace::FrameRecord& f) {
      const char* state;
      if (f.is_crash) {
        state = "CRASH";
      } else if (f.is_gap) {
        state = "GAP";
      } else if (!f.status.ok()) {
        state = f.offset_trusted ? "CORRUPT" : "CORRUPT (unaddressable)";
      } else {
        state = f.offset_trusted ? "OK" : "OK (unaddressable)";
      }
      std::printf("  %5llu %10llu %10llu %10llu %6u %-6s %s",
                  static_cast<unsigned long long>(f.index),
                  static_cast<unsigned long long>(f.file_offset),
                  static_cast<unsigned long long>(f.encoded_size),
                  static_cast<unsigned long long>(f.raw_size), f.payload_format,
                  (f.is_gap || f.is_crash) ? "-" : f.codec.c_str(), state);
      if (f.is_crash) {
        std::printf(" (sealed by fatal signal %d)", int(f.crash_signo));
      } else if (f.is_gap) {
        std::printf(" (%llu event(s), %llu byte(s) dropped at record time)",
                    static_cast<unsigned long long>(f.dropped_events),
                    static_cast<unsigned long long>(f.raw_size));
      } else if (!f.status.ok()) {
        std::printf(" (%s)", f.status.ToString().c_str());
      }
      std::printf("\n");
    });
    if (!stats.ok()) {
      std::fprintf(stderr, "error: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    const trace::SalvageStats& s = stats.value();
    std::printf("  %llu ok, %llu corrupt, %llu unaddressable, %llu gap(s); "
                "%llu resync(s), %llu byte(s) skipped, %llu truncated tail "
                "byte(s)\n",
                static_cast<unsigned long long>(s.frames_ok),
                static_cast<unsigned long long>(s.frames_corrupt),
                static_cast<unsigned long long>(s.frames_unaddressable),
                static_cast<unsigned long long>(s.gap_frames),
                static_cast<unsigned long long>(s.resyncs),
                static_cast<unsigned long long>(s.bytes_skipped),
                static_cast<unsigned long long>(s.truncated_tail_bytes));
    if (s.crash_markers > 0) {
      std::printf("  crash-sealed: %llu marker(s), fatal signal %d\n",
                  static_cast<unsigned long long>(s.crash_markers),
                  int(s.crash_signo));
    }
    if (!s.clean()) damaged = true;
  }
  if (!any) {
    std::fprintf(stderr, "error: no sword_t*.log traces found\n");
    return 1;
  }
  std::printf("verify: %s\n", damaged ? "CORRUPT" : "OK");
  return damaged ? 2 : 0;
}

/// One line per segment: event-kind counts, the dedup fingerprint of the
/// canonical decoded stream, and decompressed vs on-disk compressed sizes.
int DumpSegments(const offline::TraceStore& store, int64_t only_thread) {
  for (const auto& thread : store.threads()) {
    if (only_thread >= 0 && thread.tid != static_cast<uint32_t>(only_thread)) continue;
    std::printf("=== thread %u: %zu segment(s) ===\n", thread.tid,
                thread.meta.intervals.size());
    std::printf("  %4s %6s %8s %8s %6s %6s %10s %10s  %s\n", "seg", "region",
                "accesses", "runs", "mutex", "other", "raw", "ondisk",
                "fingerprint");
    uint32_t seg = 0;
    for (const auto& meta : thread.meta.intervals) {
      uint64_t accesses = 0;
      uint64_t runs = 0;
      uint64_t mutex_ops = 0;
      uint64_t other = 0;
      offline::SegmentFingerprint fp;
      fp.BeginSegment(meta.lockset);
      const Status s = thread.log->StreamRange(
          meta.data_begin, meta.data_size, [&](const trace::RawEvent& e) {
            fp.MixEvent(e);
            switch (e.kind) {
              case trace::EventKind::kAccess:
                accesses++;
                break;
              case trace::EventKind::kAccessRun:
                runs++;
                break;
              case trace::EventKind::kMutexAcquire:
              case trace::EventKind::kMutexRelease:
                mutex_ops++;
                break;
              default:
                other++;
            }
          });
      if (!s.ok()) {
        std::fprintf(stderr, "  segment %u: stream error: %s\n", seg,
                     s.ToString().c_str());
        return 1;
      }
      std::printf("  %4u %6llu %8llu %8llu %6llu %6llu %10llu %10llu  %s\n", seg,
                  static_cast<unsigned long long>(meta.region),
                  static_cast<unsigned long long>(accesses),
                  static_cast<unsigned long long>(runs),
                  static_cast<unsigned long long>(mutex_ops),
                  static_cast<unsigned long long>(other),
                  static_cast<unsigned long long>(meta.data_size),
                  static_cast<unsigned long long>(thread.log->CompressedBytesForRange(
                      meta.data_begin, meta.data_size)),
                  fp.Hex().c_str());
      seg++;
    }
  }
  return 0;
}

/// Render the pre-filter's finalize-time state plus the per-thread elision
/// accounting folded from the v6 metas.
int DumpPrefilter(const std::string& dir) {
  const std::string path = dir + "/prefilter.json";
  auto json = ReadFileBytes(path);
  if (!json.ok()) {
    std::fprintf(stderr,
                 "error: %s: %s (was the trace recorded with the pre-filter "
                 "enabled?)\n",
                 path.c_str(), json.status().ToString().c_str());
    return 1;
  }
  std::fwrite(json.value().data(), 1, json.value().size(), stdout);
  if (!json.value().empty() && json.value().back() != '\n') std::printf("\n");

  auto store = offline::TraceStore::OpenDir(dir);
  if (!store.ok()) {
    std::fprintf(stderr, "error: %s\n", store.status().ToString().c_str());
    return 1;
  }
  std::printf("per-thread elision (from v6 metas):\n");
  std::printf("  %6s %12s %12s %10s\n", "thread", "elided", "lost", "segments");
  for (const auto& thread : store.value().threads()) {
    std::printf("  %6u %12llu %12llu %10zu\n", thread.tid,
                static_cast<unsigned long long>(thread.meta.elided_accesses),
                static_cast<unsigned long long>(thread.meta.elided_lost),
                thread.meta.intervals.size());
  }
  const auto& in = store.value().integrity();
  std::printf("total: %llu elided, %llu receipt(s) lost%s\n",
              static_cast<unsigned long long>(in.elided_accesses),
              static_cast<unsigned long long>(in.elided_lost),
              in.elided_lost > 0 ? "  ** LOSS **" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const bool dump_events = args.GetBool("events");
  const bool verify = args.GetBool("verify");
  const bool segments = args.GetBool("segments");
  const bool prefilter = args.GetBool("prefilter");
  const int64_t only_thread = args.GetInt("thread", -1);
  const int64_t limit = args.GetInt("limit", 32);

  if (args.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: sword-dump <trace-dir> [--events] [--thread N] "
                 "[--limit K]\n"
                 "       sword-dump <trace-dir> --segments [--thread N]\n"
                 "       sword-dump <trace-dir> --verify\n"
                 "       sword-dump <trace-dir> --prefilter\n");
    return 1;
  }

  if (verify) return VerifyDir(args.positional()[0]);
  if (prefilter) return DumpPrefilter(args.positional()[0]);

  auto store = offline::TraceStore::OpenDir(args.positional()[0]);
  if (!store.ok()) {
    std::fprintf(stderr, "error: %s\n", store.status().ToString().c_str());
    return 1;
  }

  if (segments) return DumpSegments(store.value(), only_thread);

  for (const auto& thread : store.value().threads()) {
    if (only_thread >= 0 && thread.tid != static_cast<uint32_t>(only_thread)) continue;
    std::printf("=== thread %u: %zu interval(s), %s logical log, format v%u ===\n",
                thread.tid, thread.meta.intervals.size(),
                FormatBytes(thread.log->total_logical_bytes()).c_str(),
                thread.meta.log_format);
    for (const auto& meta : thread.meta.intervals) {
      std::printf("  %s\n", meta.ToString().c_str());
      if (!dump_events) continue;
      int64_t shown = 0;
      const Status s = thread.log->StreamRange(
          meta.data_begin, meta.data_size, [&](const trace::RawEvent& e) {
            if (shown++ >= limit) return;
            switch (e.kind) {
              case trace::EventKind::kAccess:
                std::printf("    %s%s size=%u pc=%u addr=0x%llx\n",
                            (e.flags & 1) ? "write" : "read",
                            (e.flags & 2) ? "(atomic)" : "", e.size, e.pc,
                            static_cast<unsigned long long>(e.addr));
                break;
              case trace::EventKind::kMutexAcquire:
                std::printf("    acquire mutex %llu\n",
                            static_cast<unsigned long long>(e.addr));
                break;
              case trace::EventKind::kMutexRelease:
                std::printf("    release mutex %llu\n",
                            static_cast<unsigned long long>(e.addr));
                break;
              case trace::EventKind::kAccessRun:
                std::printf("    %s%s run base=0x%llx stride=%llu count=%llu "
                            "size=%u pc=%u\n",
                            (e.flags & 1) ? "write" : "read",
                            (e.flags & 2) ? "(atomic)" : "",
                            static_cast<unsigned long long>(e.addr),
                            static_cast<unsigned long long>(e.stride),
                            static_cast<unsigned long long>(e.count), e.size,
                            e.pc);
                break;
            }
          });
      if (!s.ok()) {
        std::fprintf(stderr, "  (stream error: %s)\n", s.ToString().c_str());
      }
      if (shown > limit) {
        std::printf("    ... %lld more event(s)\n",
                    static_cast<long long>(shown - limit));
      }
    }
  }
  return 0;
}
