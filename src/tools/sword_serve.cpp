// sword-serve: the fleet-scale analysis daemon.
//
//   sword-serve [trace-dir ...] --state-dir DIR [options]
//
// A long-lived service that watches many trace directories at once,
// incrementally ingests them while the traced applications are still
// running (torn tails read through the salvage decoder), schedules settled
// runs onto the shared analysis pool behind an admission controller, and
// aggregates race reports across runs. Verdicts are journaled to an
// append-only ledger under --state-dir, so a daemon killed at any moment
// restarts into the same aggregate, byte for byte.
//
// Modes:
//   --once        batch: register the given dirs (and one --watch scan),
//                 drain them all, print the aggregate, exit.
//   (default)     daemon: keep polling; rescan --watch for new run dirs;
//                 serve the control socket; exit on SIGTERM/SIGINT or a
//                 {"cmd":"shutdown"} request, draining in-flight work.
//
// Control socket (--socket PATH, line-delimited JSON, one object per line):
//   {"cmd":"status"}             full service snapshot
//   {"cmd":"aggregate"}          cross-run aggregated race sites
//   {"cmd":"runs"}               per-run phase/quarantine list
//   {"cmd":"add","dir":"/path"}  register a trace directory
//   {"cmd":"shutdown"}           drain and exit
//
// Exit-code contract (matches sword-offline):
//   0 = drained, no races in the aggregate
//   2 = drained, races found
//   4 = daemon-level failure (state dir, ledger, socket)
//   1 = usage error
#include <dirent.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/faultfs.h"
#include "common/fsutil.h"
#include "serve/control.h"
#include "serve/service.h"

using namespace sword;

namespace {

constexpr int kExitClean = 0;
constexpr int kExitUsage = 1;
constexpr int kExitRaces = 2;
constexpr int kExitFailure = 4;

volatile sig_atomic_t g_signal_stop = 0;
void OnSignal(int) { g_signal_stop = 1; }

void PrintUsage() {
  std::fprintf(stderr,
               "usage: sword-serve [trace-dir ...] --state-dir DIR [options]\n"
               "  --state-dir DIR  ledger + per-run journals (required)\n"
               "  --once           drain the given dirs and exit (batch mode)\n"
               "  --watch DIR      rescan DIR each cycle; every subdirectory\n"
               "                   is registered as a run\n"
               "  --socket PATH    serve the line-JSON control protocol on an\n"
               "                   AF_UNIX socket at PATH\n"
               "  --json           print the final status snapshot as JSON\n"
               "  --threads N      checker threads for the shared analyzer\n"
               "                   pool (default 2)\n"
               "  --no-salvage     open traces strictly (default: salvage,\n"
               "                   the fleet posture - runs may have crashed)\n"
               "  --poll-ms N      service tick cadence (default 50)\n"
               "  --max-inflight N admission: in-flight run cap (default 8)\n"
               "  --queue-limit N  admission: queue soft limit (default 16)\n"
               "  --queue-deadline-ms N  admission: max queued age (default\n"
               "                   30000)\n"
               "  --max-attempts N analysis attempts before quarantine\n"
               "                   (default 2)\n"
               "  --solver-budget N  per-query solver step budget (default\n"
               "                   4000000)\n"
               "  --fault-plan S   chaos harness: deterministic fault spec\n"
               "                   (write ops hit journal/ledger appends, read\n"
               "                   ops hit ingest: transient=K;enospc@N;\n"
               "                   read_transient=K;read_fail@F+C;...)\n"
               "exit codes: 0 no races, 2 races found, 4 daemon failure,\n"
               "1 usage error\n");
}

/// Registers every subdirectory of `watch_dir` as a run. Refusals under
/// admission shedding are counted by the service; everything else is
/// idempotent.
void ScanWatchDir(serve::AnalysisService& service, const std::string& watch_dir) {
  DIR* d = ::opendir(watch_dir.c_str());
  if (d == nullptr) return;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    const std::string path = watch_dir + "/" + name;
    DIR* sub = ::opendir(path.c_str());
    if (sub == nullptr) continue;  // not a directory (or unreadable): skip
    ::closedir(sub);
    (void)service.AddRun(path);
  }
  ::closedir(d);
}

std::string RunsJson(serve::AnalysisService& service) {
  std::string out = "{\"runs\":[";
  bool first = true;
  for (const auto& run : service.Runs()) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + run.name + "\",\"phase\":\"";
    out += serve::RunPhaseName(run.phase);
    out += "\",\"quarantine\":\"";
    out += serve::QuarantineReasonName(run.quarantine);
    out += "\",\"races\":" + std::to_string(run.races);
    out += ",\"attempts\":" + std::to_string(run.attempts) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::string state_dir = args.GetString("state-dir", "");
  const bool once = args.GetBool("once");
  const std::string watch_dir = args.GetString("watch", "");
  const std::string socket_path = args.GetString("socket", "");
  const bool json = args.GetBool("json");
  const int64_t threads = args.GetInt("threads", 2);
  const bool no_salvage = args.GetBool("no-salvage");
  const int64_t poll_ms = args.GetInt("poll-ms", 50);
  const int64_t max_inflight = args.GetInt("max-inflight", 8);
  const int64_t queue_limit = args.GetInt("queue-limit", 16);
  const int64_t queue_deadline_ms = args.GetInt("queue-deadline-ms", 30'000);
  const int64_t max_attempts = args.GetInt("max-attempts", 2);
  const int64_t solver_budget = args.GetInt("solver-budget", 4'000'000);
  const std::string fault_spec = args.GetString("fault-plan", "");

  if (args.GetBool("help")) {
    PrintUsage();
    return kExitClean;
  }
  for (const auto& flag : args.UnknownFlags()) {
    std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
    PrintUsage();
    return kExitUsage;
  }
  if (state_dir.empty()) {
    std::fprintf(stderr, "error: --state-dir is required\n");
    PrintUsage();
    return kExitUsage;
  }
  if (threads < 1 || poll_ms < 1 || max_inflight < 1 || queue_limit < 1 ||
      max_attempts < 1 || queue_deadline_ms < 1 || solver_budget < 0) {
    std::fprintf(stderr, "error: numeric flags must be positive\n");
    return kExitUsage;
  }
  if (args.positional().empty() && watch_dir.empty() && socket_path.empty()) {
    std::fprintf(stderr,
                 "error: nothing to do - give trace dirs, --watch, or "
                 "--socket\n");
    PrintUsage();
    return kExitUsage;
  }

  // The chaos harness: one plan string drives BOTH fault surfaces - write
  // faults (journal/ledger appends) through a FaultFile backend, read faults
  // (ingest) through a FaultIngestIo. Deterministic, so any failing plan
  // replays exactly from its spec.
  testing::FaultFile fault_fs;
  serve::FaultIngestIo fault_io;
  offline::AnalyzerEnv env;
  serve::IngestIo* io = nullptr;
  if (!fault_spec.empty()) {
    auto plan = testing::ParseFaultPlan(fault_spec);
    if (!plan.ok()) {
      std::fprintf(stderr, "error: bad --fault-plan: %s\n",
                   plan.status().ToString().c_str());
      return kExitUsage;
    }
    plan.value().ApplyTo(fault_fs);
    fault_io.ApplyPlan(plan.value());
    env.fs = &fault_fs;
    io = &fault_io;
  }

  serve::ServiceConfig config;
  config.state_dir = state_dir;
  config.analysis_threads = static_cast<uint32_t>(threads);
  config.salvage = !no_salvage;
  config.max_analysis_attempts = static_cast<uint32_t>(max_attempts);
  config.solver_step_budget = static_cast<uint64_t>(solver_budget);
  config.admission.max_inflight = static_cast<uint32_t>(max_inflight);
  config.admission.queue_soft_limit = static_cast<uint32_t>(queue_limit);
  config.admission.queue_deadline_ns =
      static_cast<uint64_t>(queue_deadline_ms) * 1'000'000;

  serve::AnalysisService service(config, env, io);
  const Status recovered = service.Recover();
  if (!recovered.ok()) {
    std::fprintf(stderr, "error: recover %s: %s\n", state_dir.c_str(),
                 recovered.ToString().c_str());
    return kExitFailure;
  }

  for (const auto& dir : args.positional()) (void)service.AddRun(dir);
  if (!watch_dir.empty()) ScanWatchDir(service, watch_dir);

  std::atomic<bool> shutdown_requested{false};
  serve::ControlServer control(
      socket_path, [&](const std::string& line) -> std::string {
        const std::string cmd = serve::JsonField(line, "cmd");
        if (cmd == "status") return service.StatusJson();
        if (cmd == "aggregate") return service.AggregateJson();
        if (cmd == "runs") return RunsJson(service);
        if (cmd == "add") {
          const std::string dir = serve::JsonField(line, "dir");
          if (dir.empty()) {
            return "{\"ok\":false,\"error\":\"add needs a dir field\"}";
          }
          const Status s = service.AddRun(dir);
          if (!s.ok()) {
            return "{\"ok\":false,\"error\":\"" + s.ToString() + "\"}";
          }
          return "{\"ok\":true}";
        }
        if (cmd == "shutdown") {
          shutdown_requested.store(true, std::memory_order_release);
          return "{\"ok\":true,\"draining\":true}";
        }
        return "{\"ok\":false,\"error\":\"unknown cmd\"}";
      });
  if (!socket_path.empty()) {
    const Status started = control.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "error: control socket: %s\n",
                   started.ToString().c_str());
      return kExitFailure;
    }
  }

  struct sigaction sa{};
  sa.sa_handler = OnSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  if (once) {
    service.Drain();
  } else {
    uint64_t cycles = 0;
    while (g_signal_stop == 0 &&
           !shutdown_requested.load(std::memory_order_acquire)) {
      // Rescan the watch dir on a slower cadence than the tick (every ~20
      // ticks): readdir on a big fleet dir is not free.
      if (!watch_dir.empty() && cycles % 20 == 0) {
        ScanWatchDir(service, watch_dir);
      }
      cycles++;
      const bool progress = service.Tick();
      // Throttled admission stretches the cadence; an idle tick sleeps
      // regardless so a quiet daemon costs nothing.
      const uint8_t level = static_cast<uint8_t>(service.AdmissionPacked() & 0xff);
      uint64_t sleep_usec = static_cast<uint64_t>(poll_ms) * 1000;
      if (level >= 1) sleep_usec *= 2;
      if (progress) sleep_usec = std::min<uint64_t>(sleep_usec, 1000);
      ::usleep(static_cast<useconds_t>(sleep_usec));
    }
    // Drain: finish what is queued or mid-ingest, refuse nothing new (the
    // watch dir is no longer scanned). SIGTERM again aborts the drain.
    g_signal_stop = 0;
    while (!service.Idle() && g_signal_stop == 0) service.Tick();
  }

  control.Stop();

  if (json) {
    std::printf("%s\n", service.StatusJson().c_str());
  } else {
    const auto stats = service.Stats();
    std::printf(
        "sword-serve: %llu run(s) done, %llu quarantined, %llu race "
        "site(s) across the fleet\n",
        (unsigned long long)stats.runs_done,
        (unsigned long long)stats.runs_quarantined,
        (unsigned long long)service.SiteCount());
  }
  return service.SiteCount() > 0 ? kExitRaces : kExitClean;
}
