// sword-offline: the offline race-detection command-line tool.
//
//   sword-offline <trace-dir> [--threads N] [--engine dio|ilp] [--stats]
//                 [--json] [--shard I --shards N]
//
// Reads a trace directory produced by SwordTool (sword_t*.log/.meta),
// recovers the concurrency structure, and prints the deduplicated race
// reports. Exit code: 0 = no races, 2 = races found, 1 = error.
// This is the analogue of the sword-offline-analysis driver the real SWORD
// distributes for cluster use.
#include <cstdio>

#include "common/args.h"
#include "common/timer.h"
#include "offline/analysis.h"
#include "offline/report.h"
#include "offline/tracestore.h"
#include "somp/srcloc.h"

using namespace sword;

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: sword-offline <trace-dir> [options]\n"
               "  --threads N      checker threads for tree comparison (default 1)\n"
               "  --engine E       overlap engine: dio (default) or ilp\n"
               "  --stats          print analysis statistics\n"
               "  --json           machine-readable output\n"
               "  --shard I        analyze only shard I (with --shards)\n"
               "  --shards N       total shards for distributed analysis\n"
               "  --salvage        analyze damaged traces (crashed/killed runs):\n"
               "                   resynchronize past corruption and report races\n"
               "                   from surviving data, with integrity accounting\n");
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const int64_t threads = args.GetInt("threads", 1);
  const std::string engine_name = args.GetString("engine", "dio");
  const bool stats = args.GetBool("stats");
  const bool json = args.GetBool("json");
  const int64_t shard = args.GetInt("shard", 0);
  const int64_t shards = args.GetInt("shards", 1);
  const bool salvage = args.GetBool("salvage");

  if (args.positional().size() != 1) {
    PrintUsage();
    return 1;
  }
  for (const auto& flag : args.UnknownFlags()) {
    std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
    PrintUsage();
    return 1;
  }

  offline::StoreOptions store_options;
  store_options.salvage = salvage;
  auto store = offline::TraceStore::OpenDir(args.positional()[0], store_options);
  if (!store.ok()) {
    std::fprintf(stderr, "error: %s\n", store.status().ToString().c_str());
    if (!salvage) {
      std::fprintf(stderr,
                   "(if this trace came from a crashed or killed run, retry "
                   "with --salvage)\n");
    }
    return 1;
  }
  if (!json) {
    std::printf("loaded %zu thread trace(s), %llu barrier interval(s)\n",
                store.value().thread_count(),
                static_cast<unsigned long long>(store.value().TotalIntervals()));
  }

  offline::AnalysisConfig config;
  config.threads = static_cast<uint32_t>(threads);
  config.engine = engine_name == "ilp" ? ilp::OverlapEngine::kIlp
                                       : ilp::OverlapEngine::kDiophantine;
  config.shard_index = static_cast<uint32_t>(shard);
  config.shard_count = static_cast<uint32_t>(shards > 0 ? shards : 1);
  const offline::AnalysisResult result = offline::Analyze(store.value(), config);
  if (!result.status.ok()) {
    std::fprintf(stderr, "analysis error: %s\n", result.status.ToString().c_str());
    if (!salvage) {
      std::fprintf(stderr,
                   "(if this trace came from a crashed or killed run, retry "
                   "with --salvage)\n");
    }
    return 1;
  }

  // PCs are process-local ids; if this analyzer process did not execute the
  // program, ids cannot be resolved to file:line, so print them raw.
  auto pc_name = [](uint32_t pc) {
    if (pc < somp::SrcLocCount()) return somp::LookupSrcLoc(pc).ToString();
    return "pc#" + std::to_string(pc);
  };

  if (json) {
    std::printf("%s\n", offline::RenderJson(result, pc_name).c_str());
    return result.races.size() ? 2 : 0;
  }
  std::printf("\n%s", offline::RenderText(result, pc_name).c_str());

  if (stats) {
    const auto& s = result.stats;
    std::printf("\nanalysis statistics:\n");
    std::printf("  buckets (top-level regions):  %llu\n",
                (unsigned long long)s.buckets);
    std::printf("  interval trees built:         %llu (%llu nodes from %llu events)\n",
                (unsigned long long)s.trees_built, (unsigned long long)s.tree_nodes,
                (unsigned long long)s.raw_events);
    std::printf("  label pairs judged:           %llu (%llu concurrent)\n",
                (unsigned long long)s.label_pairs_checked,
                (unsigned long long)s.concurrent_pairs);
    std::printf("  node pairs range-matched:     %llu (%llu solver calls)\n",
                (unsigned long long)s.node_pairs_ranged,
                (unsigned long long)s.solver_calls);
    std::printf("  build / compare / total:      %s / %s / %s\n",
                FormatSeconds(s.build_seconds).c_str(),
                FormatSeconds(s.compare_seconds).c_str(),
                FormatSeconds(s.total_seconds).c_str());
    std::printf("  slowest bucket (MT proxy):    %s\n",
                FormatSeconds(s.max_bucket_seconds).c_str());
    std::printf("  peak tree memory:             %s\n",
                FormatBytes(s.peak_tree_bytes).c_str());
  }
  return result.races.size() ? 2 : 0;
}
